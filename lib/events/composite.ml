module Value = Oasis_rdl.Value
module Ast = Oasis_rdl.Ast

type value = Value.t

type sexpr = Svar of string | Slit of value | Snow | Sadd of sexpr * sexpr | Ssub of sexpr * sexpr

type satom = Scmp of Ast.relop * sexpr * sexpr | Sassign of string * sexpr

type side = satom list

type without_params = { delay : float option; probability : float option }

type t =
  | Base of Event.template * side
  | Seq of t * t
  | Or of t * t
  | Without of t * t * without_params
  | Whenever of t
  | Null

let no_params = { delay = None; probability = None }

let rec base_templates = function
  | Base (tpl, _) -> [ tpl ]
  | Seq (a, b) | Or (a, b) | Without (a, b, _) -> base_templates a @ base_templates b
  | Whenever c -> base_templates c
  | Null -> []

(* --- side expression evaluation --- *)

let rec eval_sexpr ~now env = function
  | Svar x -> List.assoc_opt x env
  | Slit v -> Some v
  | Snow -> Some (Value.Int (int_of_float now))
  | Sadd (a, b) | Ssub (a, b) as e -> (
      match (eval_sexpr ~now env a, eval_sexpr ~now env b) with
      | Some (Value.Int x), Some (Value.Int y) ->
          Some (Value.Int (match e with Sadd _ -> x + y | _ -> x - y))
      | _ -> None)

let eval_side ~now env side =
  let rec go env = function
    | [] -> Some env
    | Scmp (op, a, b) :: rest -> (
        match (eval_sexpr ~now env a, eval_sexpr ~now env b) with
        | Some va, Some vb -> (
            let truth =
              match op with
              | Ast.Eq -> Some (Value.equal va vb)
              | Ast.Ne -> Some (not (Value.equal va vb))
              | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> (
                  match (va, vb) with
                  | Value.Int x, Value.Int y ->
                      Some
                        (* Total: [Eq]/[Ne] on the integer path answer by the
                           same comparison, consistent with [Value.equal]. *)
                        (match op with
                        | Ast.Lt -> x < y
                        | Ast.Le -> x <= y
                        | Ast.Gt -> x > y
                        | Ast.Ge -> x >= y
                        | Ast.Eq -> x = y
                        | Ast.Ne -> x <> y)
                  | _ -> None)
            in
            match truth with Some true -> go env rest | Some false | None -> None)
        | _ -> None)
    | Sassign (x, e) :: rest -> (
        match eval_sexpr ~now env e with
        | None -> None
        | Some v -> (
            match List.assoc_opt x env with
            | Some existing -> if Value.equal existing v then go env rest else None
            | None -> go ((x, v) :: env) rest))
  in
  go env side

(* --- lexer --- *)

exception Parse_error of string

type tok =
  | TID of string
  | TINT of int
  | TSTR of string
  | TLP
  | TRP
  | TLB
  | TRB
  | TCOMMA
  | TDOT
  | TSEMI
  | TBAR
  | TMINUS
  | TDOLLAR
  | TSTAR
  | TAT
  | TPLUS
  | TASSIGN
  | TEQ
  | TNE
  | TLT
  | TLE
  | TGT
  | TGE
  | TEOF

let lex src =
  let n = String.length src in
  let toks = ref [] in
  let pos = ref 0 in
  let emit t = toks := t :: !toks in
  let peek off = if !pos + off < n then Some src.[!pos + off] else None in
  while !pos < n do
    let c = src.[!pos] in
    match c with
    | ' ' | '\t' | '\n' | '\r' -> incr pos
    | '(' -> emit TLP; incr pos
    | ')' -> emit TRP; incr pos
    | '{' -> emit TLB; incr pos
    | '}' -> emit TRB; incr pos
    | ',' -> emit TCOMMA; incr pos
    | '.' -> emit TDOT; incr pos
    | ';' -> emit TSEMI; incr pos
    | '|' -> emit TBAR; incr pos
    | '-' -> emit TMINUS; incr pos
    | '$' -> emit TDOLLAR; incr pos
    | '*' -> emit TSTAR; incr pos
    | '@' -> emit TAT; incr pos
    | '+' -> emit TPLUS; incr pos
    | '=' -> emit TEQ; incr pos
    | ':' when peek 1 = Some '=' -> emit TASSIGN; pos := !pos + 2
    | '<' when peek 1 = Some '-' -> emit TASSIGN; pos := !pos + 2
    | '<' when peek 1 = Some '>' -> emit TNE; pos := !pos + 2
    | '<' when peek 1 = Some '=' -> emit TLE; pos := !pos + 2
    | '<' -> emit TLT; incr pos
    | '>' when peek 1 = Some '=' -> emit TGE; pos := !pos + 2
    | '>' -> emit TGT; incr pos
    | '"' ->
        incr pos;
        let start = !pos in
        while !pos < n && src.[!pos] <> '"' do
          incr pos
        done;
        if !pos >= n then raise (Parse_error "unterminated string");
        emit (TSTR (String.sub src start (!pos - start)));
        incr pos
    | '0' .. '9' ->
        let start = !pos in
        while !pos < n && src.[!pos] >= '0' && src.[!pos] <= '9' do
          incr pos
        done;
        emit (TINT (int_of_string (String.sub src start (!pos - start))))
    | ('a' .. 'z' | 'A' .. 'Z' | '_') ->
        (* '@' continues an identifier when sandwiched between identifier
           characters, so broker names like "Master@SiteA" work as event
           sources; a standalone '@' is still the "now" token. *)
        let start = !pos in
        while
          !pos < n
          &&
          match src.[!pos] with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' -> true
          | '@' -> (
              match peek 1 with
              | Some ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_') -> true
              | _ -> false)
          | _ -> false
        do
          incr pos
        done;
        emit (TID (String.sub src start (!pos - start)))
    | c -> raise (Parse_error (Printf.sprintf "unexpected character %C" c))
  done;
  emit TEOF;
  List.rev !toks

(* --- parser --- *)

type pstate = { mutable toks : tok list }

let pk st = match st.toks with t :: _ -> t | [] -> TEOF
let pk2 st = match st.toks with _ :: t :: _ -> t | _ -> TEOF
let adv st = match st.toks with _ :: r -> st.toks <- r | [] -> ()

let expect st t what = if pk st = t then adv st else raise (Parse_error ("expected " ^ what))

let relop_of = function
  | TEQ -> Some Ast.Eq
  | TNE -> Some Ast.Ne
  | TLT -> Some Ast.Lt
  | TLE -> Some Ast.Le
  | TGT -> Some Ast.Gt
  | TGE -> Some Ast.Ge
  | _ -> None

let rec parse_sexpr st =
  let base =
    match pk st with
    | TID x ->
        adv st;
        Svar x
    | TINT n ->
        adv st;
        Slit (Value.Int n)
    | TSTR s ->
        adv st;
        Slit (Value.Str s)
    | TAT ->
        adv st;
        Snow
    | TLP ->
        adv st;
        let e = parse_sexpr st in
        expect st TRP "')'";
        e
    | _ -> raise (Parse_error "expected side-expression term")
  in
  match pk st with
  | TPLUS ->
      adv st;
      Sadd (base, parse_sexpr st)
  | TMINUS ->
      adv st;
      Ssub (base, parse_sexpr st)
  | _ -> base

let parse_satom st =
  match (pk st, pk2 st) with
  | TID x, TASSIGN ->
      adv st;
      adv st;
      Sassign (x, parse_sexpr st)
  | _ -> (
      let left = parse_sexpr st in
      match relop_of (pk st) with
      | Some op ->
          adv st;
          Scmp (op, left, parse_sexpr st)
      | None -> raise (Parse_error "expected comparison in side expression"))

let parse_side st =
  (* Caller consumed TLB. *)
  let rec go acc =
    let a = parse_satom st in
    match pk st with
    | TCOMMA ->
        adv st;
        go (a :: acc)
    | TID "and" ->
        adv st;
        go (a :: acc)
    | TRB ->
        adv st;
        List.rev (a :: acc)
    | _ -> raise (Parse_error "expected ',' or '}' in side expression")
  in
  go []

(* A brace group following a [-] right operand may be an operator parameter
   ({Delay = d} / {Probability = p}) rather than a side expression. *)
let brace_is_param st =
  match st.toks with
  | TLB :: TID ("Delay" | "Probability") :: TEQ :: _ -> true
  | _ -> false

let parse_number st =
  match pk st with
  | TINT n ->
      adv st;
      (* Optional fractional part: INT DOT INT *)
      if pk st = TDOT then begin
        adv st;
        match pk st with
        | TINT f ->
            adv st;
            let scale = 10.0 ** float_of_int (String.length (string_of_int f)) in
            float_of_int n +. (float_of_int f /. scale)
        | _ -> raise (Parse_error "expected digits after '.'")
      end
      else float_of_int n
  | _ -> raise (Parse_error "expected number")

let parse_without_params st =
  (* Caller checked brace_is_param; consumes the whole brace group. *)
  adv st (* TLB *);
  let rec go params =
    match pk st with
    | TID "Delay" ->
        adv st;
        expect st TEQ "'='";
        let d = parse_number st in
        continue { params with delay = Some d }
    | TID "Probability" ->
        adv st;
        expect st TEQ "'='";
        let p = parse_number st in
        continue { params with probability = Some p }
    | _ -> raise (Parse_error "expected Delay or Probability")
  and continue params =
    match pk st with
    | TCOMMA ->
        adv st;
        go params
    | TRB ->
        adv st;
        params
    | _ -> raise (Parse_error "expected ',' or '}'")
  in
  go no_params

let parse_template st first =
  (* [first] is the leading identifier (already consumed). *)
  let source, name =
    if pk st = TDOT then begin
      adv st;
      match pk st with
      | TID n ->
          adv st;
          (Some first, n)
      | _ -> raise (Parse_error "expected event name after '.'")
    end
    else (None, first)
  in
  let pats =
    if pk st = TLP then begin
      adv st;
      if pk st = TRP then begin
        adv st;
        []
      end
      else
        let rec go acc =
          let p =
            match pk st with
            | TSTAR ->
                adv st;
                Event.Any
            | TINT n ->
                adv st;
                Event.Lit (Value.Int n)
            | TSTR s ->
                adv st;
                Event.Lit (Value.Str s)
            | TID x ->
                adv st;
                Event.Var x
            | _ -> raise (Parse_error "expected template parameter")
          in
          match pk st with
          | TCOMMA ->
              adv st;
              go (p :: acc)
          | TRP ->
              adv st;
              List.rev (p :: acc)
          | _ -> raise (Parse_error "expected ',' or ')'")
        in
        go []
    end
    else []
  in
  Event.template ?source name pats

let rec parse_seq st =
  let left = parse_or st in
  if pk st = TSEMI then begin
    adv st;
    Seq (left, parse_seq st)
  end
  else left

and parse_or st =
  let left = parse_without st in
  if pk st = TBAR then begin
    adv st;
    Or (left, parse_or st)
  end
  else left

and parse_without st =
  let left = parse_prefix st in
  if pk st = TMINUS then begin
    adv st;
    let right = parse_prefix st in
    let params = if brace_is_param st then parse_without_params st else no_params in
    (* Left-associative chain: (a - b) - c. *)
    let rec continue acc =
      if pk st = TMINUS then begin
        adv st;
        let right = parse_prefix st in
        let params = if brace_is_param st then parse_without_params st else no_params in
        continue (Without (acc, right, params))
      end
      else acc
    in
    continue (Without (left, right, params))
  end
  else left

and parse_prefix st =
  if pk st = TDOLLAR then begin
    adv st;
    Whenever (parse_prefix st)
  end
  else parse_atom st

and parse_atom st =
  match pk st with
  | TLP ->
      adv st;
      let inner = parse_seq st in
      expect st TRP "')'";
      (* A side expression on a group applies to each base template in it. *)
      if pk st = TLB && not (brace_is_param st) then begin
        adv st;
        let side = parse_side st in
        attach_side inner side
      end
      else inner
  | TID "null" ->
      adv st;
      Null
  | TID first ->
      adv st;
      let tpl = parse_template st first in
      let side =
        if pk st = TLB && not (brace_is_param st) then begin
          adv st;
          parse_side st
        end
        else []
      in
      Base (tpl, side)
  | _ -> raise (Parse_error "expected composite event expression")

and attach_side comp side =
  match comp with
  | Base (tpl, existing) -> Base (tpl, existing @ side)
  | Seq (a, b) -> Seq (a, attach_side b side)
  | Or (a, b) -> Or (attach_side a side, attach_side b side)
  | Without (a, b, p) -> Without (attach_side a side, b, p)
  | Whenever c -> Whenever (attach_side c side)
  | Null -> Null

let parse src =
  let st = { toks = lex src } in
  let c = parse_seq st in
  if pk st <> TEOF then raise (Parse_error "trailing input after expression");
  c

let parse_result src =
  match parse src with c -> Ok c | exception Parse_error m -> Error m

(* --- pretty printing --- *)

let string_of_relop = function
  | Ast.Eq -> "="
  | Ast.Ne -> "<>"
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="

let rec pp_sexpr ppf = function
  | Svar x -> Format.pp_print_string ppf x
  | Slit v -> Value.pp ppf v
  | Snow -> Format.pp_print_string ppf "@"
  | Sadd (a, b) -> Format.fprintf ppf "%a + %a" pp_sexpr a pp_sexpr b
  | Ssub (a, b) -> Format.fprintf ppf "%a - %a" pp_sexpr a pp_sexpr b

let pp_side ppf = function
  | [] -> ()
  | atoms ->
      let atom ppf = function
        | Scmp (op, a, b) ->
            Format.fprintf ppf "%a %s %a" pp_sexpr a (string_of_relop op) pp_sexpr b
        | Sassign (x, e) -> Format.fprintf ppf "%s := %a" x pp_sexpr e
      in
      Format.fprintf ppf " {%a}"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") atom)
        atoms

(* Precedence: seq 0, or 1, without 2, prefix 3. *)
let rec pp_prec level ppf c =
  let paren needed body = if needed then Format.fprintf ppf "(%t)" body else body ppf in
  match c with
  | Seq (a, b) ->
      paren (level > 0) (fun ppf -> Format.fprintf ppf "%a; %a" (pp_prec 1) a (pp_prec 0) b)
  | Or (a, b) ->
      paren (level > 1) (fun ppf -> Format.fprintf ppf "%a | %a" (pp_prec 2) a (pp_prec 1) b)
  | Without (a, b, params) ->
      paren (level > 2) (fun ppf ->
          Format.fprintf ppf "%a - %a" (pp_prec 2) a (pp_prec 3) b;
          match (params.delay, params.probability) with
          | None, None -> ()
          | d, p ->
              let parts =
                List.filter_map Fun.id
                  [ Option.map (Printf.sprintf "Delay = %g") d;
                    Option.map (Printf.sprintf "Probability = %g") p ]
              in
              Format.fprintf ppf " {%s}" (String.concat ", " parts))
  | Whenever inner -> Format.fprintf ppf "$%a" (pp_prec 3) inner
  | Null -> Format.pp_print_string ppf "null"
  | Base (tpl, side) -> Format.fprintf ppf "%a%a" Event.pp_template tpl pp_side side

let pp = pp_prec 0
let to_string c = Format.asprintf "%a" pp c
