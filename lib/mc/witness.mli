(** Witness → scenario compiler: executable evidence for the symbolic
    escalation prover.

    [Oasis_core.Federation_lint] proves escalation chains symbolically; this
    module makes each {!Oasis_core.Federation_lint.witness} {e executable}:
    {!compile} turns the chain into a declarative {!Scenario.t} that issues
    the holder (plus the chain's independent obligations and colluding
    electors) through the §4.12 bootstrap, walks the chain hop by hop
    through the real role-entry engine — elections via the §4.4 two-step
    delegation protocol — probes that the target validates, then fires the
    holder and asserts the OASIS006 verdict dynamically: a carried chain
    must see the target revoked at the horizon, a revocation-blind chain
    must see it survive.  {!confirm} runs the compiled scenario under
    {!Explore.explore}; a refutation is a static/dynamic disagreement and
    therefore a bug in either the prover or the engine. *)

val walker : string
(** The principal walking the chain (["mallory"]). *)

(** A compiled witness: the scenario plus what its verdict means. *)
type plan = {
  pl_scenario : Scenario.t;
  pl_target_key : string;  (** ["service.role"] of the escalation target *)
  pl_expect_revoked : bool;
      (** the dynamic OASIS006 verdict asserted after the holder fires:
          carried chains cascade (target revoked), blind chains do not *)
}

val compile :
  fed:Oasis_core.Federation_lint.t ->
  Oasis_core.Federation_lint.witness ->
  (plan, string) result
(** Compile a witness against its federation.  [Error reason] when the
    chain is not executable under the simulator: a hop, obligation or
    elector role lives outside the federation, a constraint uses an
    extension function (scenario services register none), the elector role
    is not local to the hop's service (the engine only delegates local
    roles), or the path constraint has no extractable model.  Concrete
    argument values come from {!Oasis_rdl.Analyze.model} over the path
    constraint, type-hinted by the federation's inferred signatures;
    positive group-membership atoms are seeded into the hop services'
    groups at instantiation. *)

type verdict =
  | Confirmed of { vf_runs : int; vf_exhaustive : bool }
  | Refuted of { vf_runs : int; vf_invariant : string; vf_detail : string }
  | Uncompilable of string

val default_params : Explore.params
(** {!Explore.default_params} narrowed to depth 6 / 2000 runs — witness
    scenarios are fault-free and converge quickly. *)

val confirm :
  ?params:Explore.params ->
  fed:Oasis_core.Federation_lint.t ->
  Oasis_core.Federation_lint.witness ->
  verdict
(** {!compile} then explore.  [Refuted] carries the first counterexample's
    invariant name and detail. *)

val verdict_str : verdict -> string
(** One-line rendering for CLI / CI reports. *)
