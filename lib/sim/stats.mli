(** Per-category traffic, operation and latency accounting.

    Several experiments (E2, E6, E7, E11, E16 in DESIGN.md / EXPERIMENTS.md)
    compare message counts, bytes and latency distributions between schemes;
    every network send and every interesting operation increments a named
    counter here, and latency samples land in fixed log-bucket histograms. *)

type t

type row = {
  r_cat : string;
  r_count : int;
  r_bytes : int;
  r_max : int;  (** largest {!observe} value (0 if none) *)
  r_samples : int;  (** latency samples (0 if none) *)
  r_p50 : float;
  r_p99 : float;
  r_lat_max : float;
}

val create : unit -> t
val incr : t -> ?n:int -> string -> unit
val add_bytes : t -> string -> int -> unit

val observe : t -> string -> int -> unit
(** [observe t cat n] records one sample of value [n] under [cat]: the
    category's count becomes the number of samples, its bytes the running
    sum, and [max_of] the largest sample.  Used as a poor-man's gauge for
    batch sizes alongside the plain message counters. *)

val observe_latency : t -> string -> float -> unit
(** [observe_latency t cat seconds] records one latency sample into the
    category's histogram: 64 fixed log-spaced buckets, bucket [i] holding
    samples up to [1e-6 * 2^i] seconds, so percentiles are exact to within
    one octave.  Negative and NaN samples are clamped to 0.  Independent of
    the count/bytes/max counters of the same category. *)

val percentile : t -> string -> float -> float
(** [percentile t cat p] ([p] in [\[0, 100\]]) — upper bound of the bucket
    containing the [p]-th percentile latency sample, in seconds; [0.0] with
    no samples. *)

val latency_samples : t -> string -> int
val latency_max : t -> string -> float
(** Exact largest latency sample (not bucketed); [0.0] with no samples. *)

val count : t -> string -> int

val max_of : t -> string -> int
(** Largest value passed to {!observe} for the category (0 if none). *)

val bytes : t -> string -> int
val reset : t -> unit

val categories : t -> string list
(** Sorted list of categories seen since the last reset. *)

val report : t -> row list
(** One {!row} per category, sorted by category — counts, bytes, the
    {!observe} max, and the latency summary (sample count, p50/p99, max). *)

val pp : Format.formatter -> t -> unit

val to_json : t -> string
(** Snapshot as one JSON object keyed by category:
    [{"cat":{"count":..,"bytes":..,"max":..,"latency":{"samples","p50","p99","mean","max"}}}]
    (the [latency] member only for categories with samples). *)
