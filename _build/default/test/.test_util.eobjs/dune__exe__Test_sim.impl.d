test/test_sim.ml: Alcotest List Oasis_sim QCheck QCheck_alcotest
