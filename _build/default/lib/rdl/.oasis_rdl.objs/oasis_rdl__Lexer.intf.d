lib/rdl/lexer.mli: Format
