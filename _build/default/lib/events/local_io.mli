(** In-process event source for unit tests and micro-benchmarks: zero
    latency, manually advanced clock, retained buffer for retrospective
    registration, explicit horizon control per source. *)

type t

val create : ?clock_uncertainty:float -> ?retention:float -> unit -> t

val io : t -> Bead.io

val signal : t -> ?source:string -> ?stamp:float -> string -> Event.value list -> Event.t
(** Signal an event (default source ["local"], default stamp = current
    time).  Also advances the source's horizon to the stamp. *)

val set_time : t -> float -> unit
(** Advance the clock; fires due timers and advances horizons of sources
    without an explicit lag. *)

val now : t -> float

val hold_horizon : t -> string -> unit
(** Freeze the named source's horizon (models a delayed/failed source);
    events from it may still be signalled (they arrive "late"). *)

val release_horizon : t -> string -> unit
(** Un-freeze and advance the source's horizon to the current time. *)
