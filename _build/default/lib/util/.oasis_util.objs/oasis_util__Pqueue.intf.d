lib/util/pqueue.mli:
