(** Lowercase hexadecimal byte-string codec.

    Used by the durable-state plane to make arbitrary bytes (marshalled
    values, role arguments) safe to embed between the control-character
    field separators of write-ahead-log records. *)

val encode : string -> string
(** Two lowercase hex digits per input byte. *)

val decode : string -> string option
(** Inverse of {!encode}; [None] on odd length or non-hex characters. *)
