type cell = { mutable count : int; mutable bytes : int; mutable vmax : int }

type t = (string, cell) Hashtbl.t

let create () : t = Hashtbl.create 32

let cell t cat =
  match Hashtbl.find_opt t cat with
  | Some c -> c
  | None ->
      let c = { count = 0; bytes = 0; vmax = 0 } in
      Hashtbl.add t cat c;
      c

let incr t ?(n = 1) cat =
  let c = cell t cat in
  c.count <- c.count + n

let add_bytes t cat n =
  let c = cell t cat in
  c.bytes <- c.bytes + n

let observe t cat n =
  let c = cell t cat in
  c.count <- c.count + 1;
  c.bytes <- c.bytes + n;
  if n > c.vmax then c.vmax <- n

let count t cat = match Hashtbl.find_opt t cat with Some c -> c.count | None -> 0
let max_of t cat = match Hashtbl.find_opt t cat with Some c -> c.vmax | None -> 0
let bytes t cat = match Hashtbl.find_opt t cat with Some c -> c.bytes | None -> 0
let reset = Hashtbl.reset

let categories t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort String.compare

let report t = List.map (fun cat -> (cat, count t cat, bytes t cat)) (categories t)

let pp ppf t =
  List.iter
    (fun (cat, count, bytes) -> Format.fprintf ppf "%-32s %8d msgs %10d bytes@." cat count bytes)
    (report t)
