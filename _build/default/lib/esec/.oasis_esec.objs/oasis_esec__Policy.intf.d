lib/esec/policy.mli: Erdl Oasis_core Oasis_events Oasis_sim
