module Value = Oasis_rdl.Value

type value = Value.t

module Password = struct
  type t = {
    p_service : Service.t;
    p_secrets : (string * string, string) Hashtbl.t;
    p_issued : (string, Cert.rmc list ref) Hashtbl.t;  (* user -> live certs *)
  }

  let create service =
    { p_service = service; p_secrets = Hashtbl.create 16; p_issued = Hashtbl.create 16 }

  let set_secret t ~user ~key ~secret = Hashtbl.replace t.p_secrets (user, key) secret

  let authenticate t ~client ~user ~key ~secret =
    match Hashtbl.find_opt t.p_secrets (user, key) with
    | Some stored when String.equal stored secret ->
        let cert =
          Service.issue_arbitrary t.p_service ~client ~roles:[ "Passwd" ]
            ~args:[ Value.Str user; Value.Str key ]
        in
        let cell =
          match Hashtbl.find_opt t.p_issued user with
          | Some c -> c
          | None ->
              let c = ref [] in
              Hashtbl.replace t.p_issued user c;
              c
        in
        cell := cert :: !cell;
        Ok cert
    | Some _ | None -> Error "authentication failed"

  let revoke_user t ~user =
    match Hashtbl.find_opt t.p_issued user with
    | None -> ()
    | Some cell ->
        List.iter (Service.revoke_certificate t.p_service) !cell;
        cell := []
end

module Loader = struct
  type t = { l_service : Service.t; l_trusted : (string, unit) Hashtbl.t }

  let create ?(trusted_hosts = []) service =
    let t = { l_service = service; l_trusted = Hashtbl.create 8 } in
    List.iter (fun h -> Hashtbl.replace t.l_trusted h ()) trusted_hosts;
    t

  let certify t ~client ~program =
    let host = (Principal.vci_client client).Principal.host in
    if Hashtbl.mem t.l_trusted host then
      Ok
        (Service.issue_arbitrary t.l_service ~client ~roles:[ "Running" ]
           ~args:[ Value.Str program ])
    else Error ("host " ^ host ^ " is not trusted by the loader")

  let trust_host t h = Hashtbl.replace t.l_trusted h ()
  let distrust_host t h = Hashtbl.remove t.l_trusted h
end

module Orgroles = struct
  type t = {
    o_service : Service.t;
    o_issued : (string * string, Cert.rmc) Hashtbl.t;  (* (client, org role) -> cert *)
  }

  let create service = { o_service = service; o_issued = Hashtbl.create 16 }

  let assert_role t ~client ~org_role =
    let cert =
      Service.issue_arbitrary t.o_service ~client ~roles:[ "OrgRole" ]
        ~args:[ Value.Str org_role ]
    in
    Hashtbl.replace t.o_issued (Principal.vci_to_string client, org_role) cert;
    Ok cert

  let retract_role t ~client ~org_role =
    let key = (Principal.vci_to_string client, org_role) in
    match Hashtbl.find_opt t.o_issued key with
    | Some cert ->
        Service.revoke_certificate t.o_service cert;
        Hashtbl.remove t.o_issued key
    | None -> ()
end
