type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let add_float b f =
  if not (Float.is_finite f) then Buffer.add_string b "null"
  else
    (* %.9f matches the precision the metric/trace exports always used;
       values are simulated seconds, where nanoseconds are plenty. *)
    Buffer.add_string b (Printf.sprintf "%.9f" f)

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> add_float b f
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | Arr items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          to_buffer b item)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          to_buffer b v)
        fields;
      Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 256 in
  to_buffer b j;
  Buffer.contents b

let raw_to_buffer = Buffer.add_string
