open Ast

exception Parse_error of string * int

type state = {
  mutable toks : (Lexer.token * int) list;
  resolve_literal : string -> Value.t option;
}

let peek st = match st.toks with (t, _) :: _ -> t | [] -> Lexer.EOF
let peek2 st = match st.toks with _ :: (t, _) :: _ -> t | _ -> Lexer.EOF
let line st = match st.toks with (_, l) :: _ -> l | [] -> 0

let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let error st msg = raise (Parse_error (msg, line st))

let expect st tok what =
  if peek st = tok then advance st else error st ("expected " ^ what)

let ident st =
  match peek st with
  | Lexer.IDENT name ->
      advance st;
      name
  | _ -> error st "expected identifier"

(* --- lookahead: does the token stream start with "head <-"?  Used to decide
   whether an IDENT begins the next entry statement rather than continuing the
   current one (credential lists and constraints are newline-insensitive). --- *)

let starts_new_entry st =
  let rec skip_args depth = function
    | (Lexer.RPAREN, _) :: rest -> if depth = 1 then rest else skip_args (depth - 1) rest
    | (Lexer.LPAREN, _) :: rest -> skip_args (depth + 1) rest
    | (Lexer.EOF, _) :: _ as rest -> rest
    | _ :: rest -> skip_args depth rest
    | [] -> []
  in
  match st.toks with
  | (Lexer.IDENT _, _) :: rest -> (
      let rest = match rest with (Lexer.LPAREN, _) :: r -> skip_args 1 r | _ -> rest in
      match rest with (Lexer.ARROW, _) :: _ -> true | _ -> false)
  | _ -> false

(* --- arguments and literals --- *)

let parse_literal_opt st =
  match peek st with
  | Lexer.INT n ->
      advance st;
      Some (Value.Int n)
  | Lexer.STRING s ->
      advance st;
      Some (Value.Str s)
  | Lexer.SETLIT s ->
      advance st;
      Some (Value.set_of_chars s)
  | Lexer.OBJLIT (ty, id) ->
      advance st;
      Some (Value.Obj (ty, id))
  | _ -> None

let parse_arg st =
  match parse_literal_opt st with
  | Some v -> Alit v
  | None -> (
      match peek st with
      | Lexer.IDENT name -> (
          advance st;
          match st.resolve_literal name with Some v -> Alit v | None -> Avar name)
      | _ -> error st "expected argument (literal or variable)")

let parse_arg_list st =
  (* Caller has consumed LPAREN. *)
  if peek st = Lexer.RPAREN then begin
    advance st;
    []
  end
  else begin
    let rec go acc =
      let arg = parse_arg st in
      match peek st with
      | Lexer.COMMA ->
          advance st;
          go (arg :: acc)
      | Lexer.RPAREN ->
          advance st;
          List.rev (arg :: acc)
      | _ -> error st "expected ',' or ')' in argument list"
    in
    go []
  end

(* --- role references --- *)

let parse_role_ref st =
  let first = ident st in
  let sref, role =
    match peek st with
    | Lexer.LBRACKET ->
        advance st;
        let rf = ident st in
        expect st Lexer.RBRACKET "']'";
        expect st Lexer.DOT "'.' after service reference";
        let role = ident st in
        ({ service = Some first; rolefile = Some rf }, role)
    | Lexer.DOT ->
        advance st;
        let role = ident st in
        ({ service = Some first; rolefile = None }, role)
    | _ -> (local_service, first)
  in
  let ref_args =
    if peek st = Lexer.LPAREN then begin
      advance st;
      parse_arg_list st
    end
    else []
  in
  let starred =
    if peek st = Lexer.STAR then begin
      advance st;
      true
    end
    else false
  in
  { sref; role; ref_args; starred }

(* --- expressions (constraint grammar, fig 3.3) --- *)

let rec parse_expr st =
  match parse_literal_opt st with
  | Some v -> Elit v
  | None -> (
      match peek st with
      | Lexer.IDENT name -> (
          advance st;
          if peek st = Lexer.LPAREN then begin
            advance st;
            let args = parse_expr_list st in
            Ecall (name, args)
          end
          else match st.resolve_literal name with Some v -> Elit v | None -> Evar name)
      | _ -> error st "expected expression")

and parse_expr_list st =
  (* Caller has consumed LPAREN. *)
  if peek st = Lexer.RPAREN then begin
    advance st;
    []
  end
  else
    let rec go acc =
      let e = parse_expr st in
      match peek st with
      | Lexer.COMMA ->
          advance st;
          go (e :: acc)
      | Lexer.RPAREN ->
          advance st;
          List.rev (e :: acc)
      | _ -> error st "expected ',' or ')' in call"
    in
    go []

let relop_of_token = function
  | Lexer.EQ -> Some Eq
  | Lexer.NE -> Some Ne
  | Lexer.LT -> Some Lt
  | Lexer.LE -> Some Le
  | Lexer.GT -> Some Gt
  | Lexer.GE -> Some Ge
  | _ -> None

let rec parse_constr st = parse_or st

and parse_or st =
  let left = parse_and st in
  if peek st = Lexer.KW_OR then begin
    advance st;
    Cor (left, parse_or st)
  end
  else left

and parse_and st =
  let left = parse_not st in
  if peek st = Lexer.KW_AND then begin
    advance st;
    Cand (left, parse_and st)
  end
  else left

and parse_not st =
  if peek st = Lexer.KW_NOT then begin
    advance st;
    Cnot (parse_not st)
  end
  else parse_atom st

and parse_atom st =
  let maybe_star atom =
    if peek st = Lexer.STAR then begin
      advance st;
      Cstar atom
    end
    else atom
  in
  match peek st with
  | Lexer.LPAREN ->
      advance st;
      let inner = parse_constr st in
      expect st Lexer.RPAREN "')'";
      maybe_star inner
  | _ -> (
      (* Special form: "x <- expr" is an explicit binding. *)
      match (peek st, peek2 st) with
      | Lexer.IDENT x, Lexer.ARROW when st.resolve_literal x = None ->
          advance st;
          advance st;
          maybe_star (Cbind (x, parse_expr st))
      | _ -> (
          let left = parse_expr st in
          match peek st with
          | Lexer.KW_IN ->
              advance st;
              let group = ident st in
              maybe_star (Cin (left, group))
          | Lexer.KW_SUBSET ->
              advance st;
              let right = parse_expr st in
              maybe_star (Csubset (left, right))
          | tok -> (
              match relop_of_token tok with
              | Some op ->
                  advance st;
                  let right = parse_expr st in
                  maybe_star (Crel (op, left, right))
              | None -> (
                  (* A bare call is a boolean extension predicate. *)
                  match left with
                  | Ecall (name, args) -> maybe_star (Ccall (name, args))
                  | Elit _ | Evar _ ->
                      error st "expected relational operator, 'in' or 'subset'"))))

(* --- items --- *)

let parse_type st =
  match peek st with
  | Lexer.IDENT "Integer" ->
      advance st;
      Ty.Int
  | Lexer.IDENT "String" ->
      advance st;
      Ty.Str
  | Lexer.SETLIT alphabet ->
      advance st;
      Ty.Set (Value.normalise_set alphabet)
  | Lexer.IDENT name ->
      advance st;
      Ty.Obj name
  | _ -> error st "expected type"

let parse_def ~line st =
  (* "def" consumed by caller. *)
  let name = ident st in
  expect st Lexer.LPAREN "'(' after role name";
  let params =
    if peek st = Lexer.RPAREN then begin
      advance st;
      []
    end
    else
      let rec go acc =
        let p = ident st in
        match peek st with
        | Lexer.COMMA ->
            advance st;
            go (p :: acc)
        | Lexer.RPAREN ->
            advance st;
            List.rev (p :: acc)
        | _ -> error st "expected ',' or ')' in parameter list"
      in
      go []
  in
  (* Zero or more "param : type" declarations follow, until something that is
     not "IDENT COLON". *)
  let rec types acc =
    match (peek st, peek2 st) with
    | Lexer.IDENT p, Lexer.COLON ->
        advance st;
        advance st;
        let ty = parse_type st in
        types ((p, ty) :: acc)
    | _ -> List.rev acc
  in
  let param_types = types [] in
  List.iter
    (fun (p, _) ->
      if not (List.mem p params) then
        error st (Printf.sprintf "type declared for unknown parameter %s of %s" p name))
    param_types;
  Def { decl_name = name; params; param_types; decl_line = line }

let parse_entry st =
  let line = line st in
  let name = ident st in
  let head_args =
    if peek st = Lexer.LPAREN then begin
      advance st;
      parse_arg_list st
    end
    else []
  in
  expect st Lexer.ARROW "'<-'";
  (* Credentials: role refs separated by /\, ending at <| |> : or a new item. *)
  let rec parse_creds acc =
    match peek st with
    | Lexer.ELECT | Lexer.REVOKE | Lexer.COLON | Lexer.EOF | Lexer.KW_IMPORT | Lexer.KW_DEF ->
        List.rev acc
    | Lexer.IDENT _ when starts_new_entry st -> List.rev acc
    | Lexer.IDENT _ ->
        let r = parse_role_ref st in
        if peek st = Lexer.WEDGE then begin
          advance st;
          parse_creds (r :: acc)
        end
        else List.rev (r :: acc)
    | _ -> error st "expected credential role reference"
  in
  let creds = parse_creds [] in
  let elector, elect_starred =
    if peek st = Lexer.ELECT then begin
      advance st;
      let starred =
        if peek st = Lexer.STAR then begin
          advance st;
          true
        end
        else false
      in
      (Some (parse_role_ref st), starred)
    end
    else (None, false)
  in
  let revoker =
    if peek st = Lexer.REVOKE then begin
      advance st;
      (* "|>*" and "|>" are equivalent: role-based revocation always arms a
         revocable credential record; accept the star for fidelity to the
         paper's examples. *)
      if peek st = Lexer.STAR then advance st;
      Some (parse_role_ref st)
    end
    else None
  in
  let constr =
    if peek st = Lexer.COLON then begin
      advance st;
      Some (parse_constr st)
    end
    else None
  in
  Entry { head = (name, head_args); creds; elector; elect_starred; revoker; constr; entry_line = line }

let parse ?(resolve_literal = fun _ -> None) src =
  let st = { toks = Lexer.tokenize src; resolve_literal } in
  let rec go acc =
    match peek st with
    | Lexer.EOF -> List.rev acc
    | Lexer.KW_IMPORT ->
        let ln = line st in
        advance st;
        let service = ident st in
        expect st Lexer.DOT "'.' in import";
        let tyname = ident st in
        go (Import { line = ln; service; tyname } :: acc)
    | Lexer.KW_DEF ->
        let ln = line st in
        advance st;
        go (parse_def ~line:ln st :: acc)
    | Lexer.IDENT _ -> go (parse_entry st :: acc)
    | _ -> error st "expected 'import', 'def' or a role entry statement"
  in
  go []

let parse_result ?resolve_literal src =
  match parse ?resolve_literal src with
  | rolefile -> Ok rolefile
  | exception Parse_error (msg, line) -> Error (Printf.sprintf "parse error: %s (line %d)" msg line)
  | exception Lexer.Lex_error (msg, line) ->
      Error (Printf.sprintf "lexical error: %s (line %d)" msg line)
