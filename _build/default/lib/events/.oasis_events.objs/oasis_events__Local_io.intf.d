lib/events/local_io.mli: Bead Event
