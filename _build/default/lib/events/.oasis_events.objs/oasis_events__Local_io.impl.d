lib/events/local_io.ml: Bead Event Hashtbl List Oasis_util
