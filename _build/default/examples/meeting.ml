(* Open meeting (§3.4.2) and golf-club quorum election (§3.4.5).

   - any member of staff may join the meeting;
   - any member may invite someone else (unrestricted recursive delegation);
   - the Chair may eject anyone — role-based revocation with the `|>`
     operator, including hire / fire / re-hire semantics (§4.11);
   - joining the golf club needs recommendations from two DIFFERENT members.

   Run with: dune exec examples/meeting.exe *)

module Engine = Oasis_sim.Engine
module Net = Oasis_sim.Net
module Service = Oasis_core.Service
module Group = Oasis_core.Group
module Principal = Oasis_core.Principal
module V = Oasis_rdl.Value

let say fmt = Printf.printf (fmt ^^ "\n")

let () =
  let engine = Engine.create () in
  let net = Net.create ~latency:(Net.Fixed 0.01) engine in
  let registry = Service.create_registry () in
  let client_host = Net.add_host net "client" in
  let run dt = Engine.run ~until:(Engine.now engine +. dt) engine in
  let host h = Net.add_host net h in

  let login =
    Result.get_ok
      (Service.create net (host "login") registry ~name:"Login"
         ~rolefile:{|
def LoggedOn(u, h) u: String h: String
LoggedOn(u, h) <-
|} ())
  in
  let principals = Principal.Host.create "office" in
  let dom = Principal.Host.boot_domain principals in
  let user name =
    let vci = Principal.Host.new_vci principals dom in
    ( vci,
      Service.issue_arbitrary login ~client:vci ~roles:[ "LoggedOn" ]
        ~args:[ V.Str name; V.Str "office" ] )
  in

  (* --------------------------------------------------------------- *)
  say "--- open meeting (§3.4.2) ---";
  let meet =
    Result.get_ok
      (Service.create net (host "meet") registry ~name:"Meet"
         ~rolefile:
           {|
Chair <- Login.LoggedOn("jmb", h)
Candidate(u) <- Login.LoggedOn(u, h) : u in staff
Member(u) <- Candidate(u)* |>* Chair
Guest(u) <- Login.LoggedOn(u, h)* <|* Member(m)
|}
         ())
  in
  List.iter (fun u -> Group.add (Service.group meet "staff") (V.Str u)) [ "fred"; "mary" ];

  let jmb, jmb_login = user "jmb" in
  let fred, fred_login = user "fred" in
  let visitor, visitor_login = user "visitor" in

  let enter svc client role ?delegation creds =
    let out = ref None in
    Service.request_entry svc ~client_host ~client ~role ~creds ?delegation (fun r -> out := Some r);
    run 1.0;
    Option.get !out
  in
  let chair = Result.get_ok (enter meet jmb "Chair" [ jmb_login ]) in
  say "jmb is Chair";
  let fred_member = Result.get_ok (enter meet fred "Member" [ fred_login ]) in
  say "fred (staff) joined as Member; the intermediate role Candidate was entered automatically";

  (* Any member may invite someone else — fred invites a visitor. *)
  let d = ref None in
  Service.request_delegation meet ~client_host ~delegator:fred ~using:fred_member ~role:"Guest"
    ~required:[ ("Login", "LoggedOn", [ V.Str "visitor"; V.Str "*" ]) ]
    (function Ok (dc, _) -> d := Some dc | Error e -> say "invite failed: %s" e);
  run 1.0;
  let guest = Result.get_ok (enter meet visitor "Guest" ~delegation:(Option.get !d) [ visitor_login ]) in
  say "fred invited a visitor (member-to-guest election)";

  (* The Chair ejects fred — role-based revocation. *)
  let fired = ref None in
  Service.revoke_role_instance meet ~client_host ~revoker:chair ~role:"Member"
    ~args:[ V.Str "fred" ] (fun r -> fired := Some r);
  run 1.0;
  (match !fired with
  | Some (Ok n) -> say "Chair ejected fred (%d membership revoked)" n
  | _ -> say "ejection failed");
  (match Service.validate meet ~client:fred fred_member with
  | Error _ -> say "fred's certificate is dead"
  | Ok () -> say "unexpected: fred still a member");
  (match enter meet fred "Member" [ fred_login ] with
  | Error _ -> say "fred cannot re-enter: the instance is blacklisted"
  | Ok _ -> say "unexpected re-entry");

  (* Hire / fire / re-hire: the Chair reinstates. *)
  let rehired = ref None in
  Service.reinstate_role_instance meet ~client_host ~revoker:chair ~role:"Member"
    ~args:[ V.Str "fred" ] (fun r -> rehired := Some r);
  run 1.0;
  (match enter meet fred "Member" [ fred_login ] with
  | Ok _ -> say "after re-hire, fred joined again"
  | Error e -> say "re-hire failed: %s" e);
  ignore guest;

  (* --------------------------------------------------------------- *)
  say "\n--- golf club quorum (§3.4.5) ---";
  let golf =
    Result.get_ok
      (Service.create net (host "golf") registry ~name:"Golf"
         ~rolefile:
           {|
def Person(p) p: String
Person(p) <- Login.LoggedOn(p, h)
Rec1(p, q) <- Person(p) <| Member(q)
Rec2(p, q) <- Person(p) <| Member(q)
Member(p) <- Rec1(p, q1)* /\ Rec2(p, q2)* : q1 <> q2
|}
         ())
  in
  let alice, _ = user "alice" in
  let bertie, _ = user "bertie" in
  let charlie, charlie_login = user "charlie" in
  let alice_m = Service.issue_arbitrary golf ~client:alice ~roles:[ "Member" ] ~args:[ V.Str "alice" ] in
  let bertie_m = Service.issue_arbitrary golf ~client:bertie ~roles:[ "Member" ] ~args:[ V.Str "bertie" ] in
  say "alice and bertie are founding members";
  let recommend member_vci member_cert role =
    let d = ref None in
    Service.request_delegation golf ~client_host ~delegator:member_vci ~using:member_cert ~role
      ~required:[ ("Login", "LoggedOn", [ V.Str "charlie"; V.Str "*" ]) ]
      (function Ok (dc, _) -> d := Some dc | Error e -> say "recommendation failed: %s" e);
    run 1.0;
    Result.get_ok (enter golf charlie role ~delegation:(Option.get !d) [ charlie_login ])
  in
  let rec1 = recommend alice alice_m "Rec1" in
  say "alice recommended charlie";
  let rec2 = recommend bertie bertie_m "Rec2" in
  say "bertie recommended charlie";
  (* One recommendation is not enough: *)
  (match enter golf charlie "Member" [ charlie_login; rec1 ] with
  | Error _ -> say "one recommendation is not enough"
  | Ok _ -> say "unexpected");
  (* Two from the same member would fail the q1 <> q2 constraint; two from
     different members succeed: *)
  (match enter golf charlie "Member" [ charlie_login; rec1; rec2 ] with
  | Ok c ->
      say "charlie admitted with two distinct recommendations: %s"
        (Format.asprintf "%a" Oasis_core.Cert.pp_rmc c)
  | Error e -> say "quorum entry failed: %s" e);
  (* Revoking a recommendation revokes the membership (starred creds). *)
  Service.revoke_certificate golf rec1;
  run 1.0;
  say "alice withdrew her recommendation: charlie's membership dies with it"
