examples/quickstart.ml: Format List Oasis_core Oasis_rdl Oasis_sim Option Printf Result
