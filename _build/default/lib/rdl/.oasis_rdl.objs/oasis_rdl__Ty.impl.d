lib/rdl/ty.ml: Format Printf String Value
