lib/events/composite.mli: Event Format Oasis_rdl
