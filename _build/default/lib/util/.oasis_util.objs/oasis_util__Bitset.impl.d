lib/util/bitset.ml: Format Int List Printf String
