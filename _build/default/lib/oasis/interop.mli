(** Bootstrap and legacy-interworking services (§3.4.1, §3.4.3, §4.12).

    These services issue certificates for reasons {e not} expressed in RDL —
    the auxiliary mechanism without which a client could never acquire its
    first certificate.  Each wraps {!Service.issue_arbitrary} behind a
    domain-specific check. *)

type value = Oasis_rdl.Value.t

(** A central password service (§3.4.3): stores secrets per (user, key) and
    issues [Passwd(user, key)] certificates after a successful exchange. *)
module Password : sig
  type t

  val create : Service.t -> t
  (** Wrap an OASIS service whose rolefile declares
      [def Passwd(u, k) u: String k: String]. *)

  val set_secret : t -> user:string -> key:string -> secret:string -> unit

  val authenticate :
    t -> client:Principal.vci -> user:string -> key:string -> secret:string ->
    (Cert.rmc, string) result
  (** Issues [Passwd(user, key)]; failures are audited as fraud. *)

  val revoke_user : t -> user:string -> unit
  (** Invalidate every live certificate issued for the user (e.g. a
      password change). *)
end

(** A loader service (§3.4.1): a host-local part certifies which program
    image a client runs; the central part rules on the host's integrity and
    issues [Running(program)] certificates. *)
module Loader : sig
  type t

  val create : ?trusted_hosts:string list -> Service.t -> t

  val certify :
    t -> client:Principal.vci -> program:string -> (Cert.rmc, string) result
  (** Succeeds only when the client's host is in the trusted set — the
      central loader's ruling on "the assumed integrity of the client
      host". *)

  val trust_host : t -> string -> unit
  val distrust_host : t -> string -> unit
end

(** Organisational-role bridging (§4.12): mirror roles like [manager] or
    [project_leader] held in a non-OASIS scheme as OASIS certificates, and
    revoke them when the foreign scheme says so. *)
module Orgroles : sig
  type t

  val create : Service.t -> t

  val assert_role :
    t -> client:Principal.vci -> org_role:string -> (Cert.rmc, string) result

  val retract_role : t -> client:Principal.vci -> org_role:string -> unit
end
