type cref = { index : int; magic : int }

type state = True | False | Unknown

type op = And | Or | Nand | Nor

(* Adjacency is indexed: every parent->child edge gets a table-unique id,
   stored forward in the parent's [children] and backward in the child's
   [in_edges].  The back index is what makes detach O(1): freeing a record
   unlinks it from every parent by direct key removal instead of rebuilding
   the parent's child list.  [ph_true]/[ph_false] count "phantom" parents
   that were already dead when attached — they contribute a frozen input to
   the counters but need no edge, because a dangling reference reads
   permanently False and can never change again. *)
type record = {
  mutable magic : int;
  mutable used : bool;
  mutable is_leaf : bool;
  mutable op : op;
  mutable n_parents : int;
  mutable p_true : int;
  mutable p_false : int;
  mutable p_unknown : int;
  children : (int, cref * bool) Hashtbl.t;  (* edge id -> (child, edge negated) *)
  in_edges : (int, cref) Hashtbl.t;  (* edge id -> parent *)
  mutable ph_true : int;
  mutable ph_false : int;
  mutable st : state;
  mutable permanent : bool;
  mutable direct_use : bool;
  mutable auto_revoke : bool;
  mutable hooks : (state -> unit) list;
  mutable gen : int;  (* cascade generation this record is queued under *)
}

type table = {
  mutable slots : record array;
  mutable free : int list;
  mutable high_water : int;
  mutable next_edge : int;
  mutable generation : int;  (* bumped once per cascade *)
  mutable edge_ops : int;  (* elementary edge attach/detach/visit counter *)
}

let blank () =
  {
    magic = 0;
    used = false;
    is_leaf = true;
    op = And;
    n_parents = 0;
    p_true = 0;
    p_false = 0;
    p_unknown = 0;
    children = Hashtbl.create 4;
    in_edges = Hashtbl.create 4;
    ph_true = 0;
    ph_false = 0;
    st = True;
    permanent = false;
    direct_use = false;
    auto_revoke = false;
    hooks = [];
    gen = 0;
  }

let create_table () =
  {
    slots = Array.init 64 (fun _ -> blank ());
    free = [];
    high_water = 0;
    next_edge = 0;
    generation = 0;
    edge_ops = 0;
  }

let get t r =
  if r.index < 0 || r.index >= Array.length t.slots then None
  else
    let slot = t.slots.(r.index) in
    if slot.used && slot.magic = r.magic then Some slot else None

let alloc t =
  match t.free with
  | i :: rest ->
      t.free <- rest;
      i
  | [] ->
      if t.high_water >= Array.length t.slots then begin
        let bigger = Array.init (2 * Array.length t.slots) (fun _ -> blank ()) in
        Array.blit t.slots 0 bigger 0 (Array.length t.slots);
        t.slots <- bigger
      end;
      let i = t.high_water in
      t.high_water <- t.high_water + 1;
      i

let fresh t =
  let i = alloc t in
  let slot = t.slots.(i) in
  slot.used <- true;
  slot.magic <- slot.magic + 1;
  slot.is_leaf <- true;
  slot.op <- And;
  slot.n_parents <- 0;
  slot.p_true <- 0;
  slot.p_false <- 0;
  slot.p_unknown <- 0;
  Hashtbl.reset slot.children;
  Hashtbl.reset slot.in_edges;
  slot.ph_true <- 0;
  slot.ph_false <- 0;
  slot.st <- True;
  slot.permanent <- false;
  slot.direct_use <- false;
  slot.auto_revoke <- false;
  slot.hooks <- [];
  slot.gen <- 0;
  ({ index = i; magic = slot.magic }, slot)

(* State of a combining record from its counters (§4.8). *)
let computed_state slot =
  let base =
    match slot.op with
    | And | Nand ->
        if slot.p_false > 0 then False else if slot.p_unknown > 0 then Unknown else True
    | Or | Nor ->
        if slot.p_true > 0 then True else if slot.p_unknown > 0 then Unknown else False
  in
  match (slot.op, base) with
  | (And | Or), s -> s
  | (Nand | Nor), True -> False
  | (Nand | Nor), False -> True
  | (Nand | Nor), Unknown -> Unknown

let seen_through negated s =
  if not negated then s else match s with True -> False | False -> True | Unknown -> Unknown

let update_counters child ~from ~into =
  if from <> into then begin
    (match from with
    | True -> child.p_true <- child.p_true - 1
    | False -> child.p_false <- child.p_false - 1
    | Unknown -> child.p_unknown <- child.p_unknown - 1);
    match into with
    | True -> child.p_true <- child.p_true + 1
    | False -> child.p_false <- child.p_false + 1
    | Unknown -> child.p_unknown <- child.p_unknown + 1
  end

(* Cascade machinery: a state change is applied to the children's counters
   immediately, but the children themselves are recomputed from a worklist.
   The per-table generation counter dedups enqueues, so a record reached
   over many diamond paths is recomputed once with its settled counters
   instead of once per path (the old recursion re-walked whole subtrees).
   The marker is cleared on dequeue: if a later counter update arrives after
   a record was processed, it is simply re-enqueued — needed for uneven-depth
   DAGs where a short path reaches a record before a long one. *)
let enqueue t q child_ref child =
  if child.gen <> t.generation then begin
    child.gen <- t.generation;
    Queue.push child_ref q
  end

(* Fire hooks for [slot]'s (already applied) old -> current transition and
   push the counter delta into every child.  The edge set is snapshotted
   because hooks may attach or detach edges re-entrantly. *)
let apply_change t q slot ~old_state =
  List.iter (fun hook -> hook slot.st) slot.hooks;
  let edges = Hashtbl.fold (fun _eid e acc -> e :: acc) slot.children [] in
  List.iter
    (fun (child_ref, negated) ->
      t.edge_ops <- t.edge_ops + 1;
      match get t child_ref with
      | None -> ()  (* unreachable: frees unlink their in-edges eagerly *)
      | Some child ->
          update_counters child ~from:(seen_through negated old_state)
            ~into:(seen_through negated slot.st);
          enqueue t q child_ref child)
    edges

let drain t q =
  while not (Queue.is_empty q) do
    let child_ref = Queue.pop q in
    match get t child_ref with
    | None -> ()
    | Some child ->
        child.gen <- 0;
        if not child.permanent then begin
          let old_state = child.st in
          let next = computed_state child in
          if next <> old_state then begin
            child.st <- next;
            apply_change t q child ~old_state
          end
        end
  done

let cascade t slot ~old_state =
  if slot.st <> old_state then begin
    t.generation <- t.generation + 1;
    let q = Queue.create () in
    apply_change t q slot ~old_state;
    drain t q
  end

let recompute t slot =
  if not slot.permanent then begin
    let old_state = slot.st in
    slot.st <- computed_state slot;
    cascade t slot ~old_state
  end

let leaf t ?(state = True) () =
  let r, slot = fresh t in
  slot.st <- state;
  r

let incr_counter child = function
  | True -> child.p_true <- child.p_true + 1
  | False -> child.p_false <- child.p_false + 1
  | Unknown -> child.p_unknown <- child.p_unknown + 1

let add_parent t ~child ?(negated = false) parent_ref =
  match get t child with
  | None -> ()
  | Some child_slot ->
      if child_slot.is_leaf then invalid_arg "Credrec.add_parent: child is a leaf";
      t.edge_ops <- t.edge_ops + 1;
      child_slot.n_parents <- child_slot.n_parents + 1;
      (match get t parent_ref with
      | Some p ->
          let eid = t.next_edge in
          t.next_edge <- t.next_edge + 1;
          Hashtbl.replace p.children eid (child, negated);
          Hashtbl.replace child_slot.in_edges eid parent_ref;
          incr_counter child_slot (seen_through negated p.st)
      | None ->
          (* A dead parent reads permanently False: record the frozen
             contribution, no edge needed. *)
          let c = seen_through negated False in
          (match c with
          | True -> child_slot.ph_true <- child_slot.ph_true + 1
          | False -> child_slot.ph_false <- child_slot.ph_false + 1
          | Unknown -> ());
          incr_counter child_slot c);
      recompute t child_slot

let combine_fresh t ?(op = And) parents =
  let r, slot = fresh t in
  slot.is_leaf <- false;
  slot.op <- op;
  slot.st <- computed_state slot;
  List.iter (fun (p, negated) -> add_parent t ~child:r ~negated p) parents;
  r

let combine t ?(op = And) parents =
  match (op, parents) with
  | And, [ (single, false) ] -> single (* §4.7's one-record optimisation *)
  | _ -> combine_fresh t ~op parents

let state t r = match get t r with Some slot -> slot.st | None -> False

let is_permanent t r = match get t r with Some slot -> slot.permanent | None -> true

let live t r = get t r <> None

let set_leaf t r new_state =
  match get t r with
  | None -> ()
  | Some slot ->
      if (not slot.permanent) && slot.st <> new_state then begin
        if not slot.is_leaf then invalid_arg "Credrec.set_leaf: not a leaf record";
        let old_state = slot.st in
        slot.st <- new_state;
        cascade t slot ~old_state
      end

let make_permanent t r =
  match get t r with None -> () | Some slot -> slot.permanent <- true

let invalidate t r =
  match get t r with
  | None -> ()
  | Some slot ->
      if not slot.permanent then begin
        let old_state = slot.st in
        slot.st <- False;
        slot.permanent <- true;
        cascade t slot ~old_state
      end

let set_direct_use t r v = match get t r with Some slot -> slot.direct_use <- v | None -> ()
let set_auto_revoke t r v = match get t r with Some slot -> slot.auto_revoke <- v | None -> ()

let on_change t r hook =
  match get t r with Some slot -> slot.hooks <- hook :: slot.hooks | None -> ()

let clear_hooks t r = match get t r with Some slot -> slot.hooks <- [] | None -> ()

let children_count t r = match get t r with Some slot -> Hashtbl.length slot.children | None -> 0

let edge_ops t = t.edge_ops

(* Forced-input analysis for GC: for And/Nand a permanently-False parent
   forces the child; for Or/Nor a permanently-True parent does. *)
let forcing_input op = match op with And | Nand -> False | Or | Nor -> True

(* Detach the child end of edge [eid] (the parent keeps or clears its own
   entry at the call site).  O(1) per edge thanks to the back index. *)
let unlink_in_edge t child eid =
  t.edge_ops <- t.edge_ops + 1;
  Hashtbl.remove child.in_edges eid

let gc_sweep t =
  let reclaimed = ref 0 in
  (* Phase 1: unlink edges whose parent is permanent, baking the frozen
     contribution into the child. *)
  for i = 0 to t.high_water - 1 do
    let parent = t.slots.(i) in
    if parent.used && parent.permanent && Hashtbl.length parent.children > 0 then begin
      let edges = Hashtbl.fold (fun eid e acc -> (eid, e) :: acc) parent.children [] in
      Hashtbl.reset parent.children;
      List.iter
        (fun (eid, (child_ref, negated)) ->
          match get t child_ref with
          | None -> ()
          | Some child ->
              unlink_in_edge t child eid;
              let contribution = seen_through negated parent.st in
              child.n_parents <- child.n_parents - 1;
              (match contribution with
              | True -> child.p_true <- child.p_true - 1
              | False -> child.p_false <- child.p_false - 1
              | Unknown -> child.p_unknown <- child.p_unknown - 1);
              if contribution = forcing_input child.op then begin
                (* The frozen input pins the child's output forever. *)
                let forced =
                  match child.op with And | Or -> contribution | Nand | Nor ->
                    seen_through true contribution
                in
                if not child.permanent then begin
                  let old_state = child.st in
                  child.st <- forced;
                  child.permanent <- true;
                  cascade t child ~old_state
                end
              end
              else recompute t child)
        edges
    end
  done;
  (* Phase 2: delete records that can never again change an observable
     answer: a dangling reference reads permanently-False, so a record may
     go only when every future read would already be False (revoked) or when
     nobody can read it (uninteresting: no certificate embeds it, no
     children, no notify hooks).  Candidates are decided before any record
     is freed, so a parent whose last child dies this sweep is collected
     next sweep — the paper's iterated-sweep settling behaviour. *)
  let candidates = ref [] in
  for i = 0 to t.high_water - 1 do
    let slot = t.slots.(i) in
    if slot.used && Hashtbl.length slot.children = 0 && slot.hooks = [] then begin
      let uninteresting = not slot.direct_use in
      let dead_permanent = slot.permanent && (slot.st = False || not slot.direct_use) in
      if uninteresting || dead_permanent then candidates := i :: !candidates
    end
  done;
  List.iter
    (fun i ->
      let slot = t.slots.(i) in
      (* Detach from every parent in O(1) per edge via the back index
         (this is what the old per-sweep List.filter rebuild cost O(n) per
         dead child to discover). *)
      Hashtbl.iter
        (fun eid parent_ref ->
          t.edge_ops <- t.edge_ops + 1;
          match get t parent_ref with
          | Some p -> Hashtbl.remove p.children eid
          | None -> ())
        slot.in_edges;
      Hashtbl.reset slot.in_edges;
      slot.ph_true <- 0;
      slot.ph_false <- 0;
      slot.used <- false;
      slot.hooks <- [];
      Hashtbl.reset slot.children;
      t.free <- i :: t.free;
      incr reclaimed)
    !candidates;
  !reclaimed

(* --- Durable recovery support (lib/store) ---

   [forget] models a crash taking a record with it: the slot is freed
   without bumping the magic (so a persisted reference can later be
   [restore]d at the same identity), every child now holds a dangling
   reference — which reads permanently False — and that frozen
   contribution is baked into the child exactly as {!gc_sweep} bakes
   permanent parents.  [restore] re-materialises a slot at a persisted
   [(index, magic)] so that references embedded in certificates held by
   remote parties resolve again after recovery.  Recovery must restore
   {e every} persisted reference (including ones it will immediately
   invalidate) before allocating fresh records, otherwise a fresh
   allocation could reuse a persisted identity. *)

let forget t r =
  match get t r with
  | None -> ()
  | Some slot ->
      let old_st = slot.st in
      (* Unlink from every parent in O(1) per edge via the back index. *)
      Hashtbl.iter
        (fun eid parent_ref ->
          t.edge_ops <- t.edge_ops + 1;
          match get t parent_ref with
          | Some p -> Hashtbl.remove p.children eid
          | None -> ())
        slot.in_edges;
      Hashtbl.reset slot.in_edges;
      let edges = Hashtbl.fold (fun eid e acc -> (eid, e) :: acc) slot.children [] in
      Hashtbl.reset slot.children;
      slot.ph_true <- 0;
      slot.ph_false <- 0;
      slot.used <- false;
      slot.hooks <- [];
      slot.direct_use <- false;
      t.free <- r.index :: t.free;
      (* Children see a dangling (permanently-False) reference from now on;
         bake the frozen contribution, forcing the child permanent when the
         dangling value pins its operator. *)
      List.iter
        (fun (eid, (child_ref, negated)) ->
          match get t child_ref with
          | None -> ()
          | Some child ->
              unlink_in_edge t child eid;
              child.n_parents <- child.n_parents - 1;
              (match seen_through negated old_st with
              | True -> child.p_true <- child.p_true - 1
              | False -> child.p_false <- child.p_false - 1
              | Unknown -> child.p_unknown <- child.p_unknown - 1);
              let frozen = seen_through negated False in
              if frozen = forcing_input child.op then begin
                if not child.permanent then begin
                  let old_state = child.st in
                  child.st <-
                    (match child.op with
                    | And | Or -> frozen
                    | Nand | Nor -> seen_through true frozen);
                  child.permanent <- true;
                  cascade t child ~old_state
                end
              end
              else recompute t child)
        edges

let restore t r =
  if r.index < 0 || r.magic <= 0 then false
  else begin
    if r.index >= Array.length t.slots then begin
      let n = ref (Array.length t.slots) in
      while r.index >= !n do
        n := 2 * !n
      done;
      let bigger = Array.init !n (fun _ -> blank ()) in
      Array.blit t.slots 0 bigger 0 (Array.length t.slots);
      t.slots <- bigger
    end;
    let slot = t.slots.(r.index) in
    if r.index < t.high_water && (slot.used || slot.magic > r.magic) then false
    else begin
      if r.index >= t.high_water then begin
        for i = t.high_water to r.index - 1 do
          t.free <- i :: t.free
        done;
        t.high_water <- r.index + 1
      end
      else t.free <- List.filter (fun i -> i <> r.index) t.free;
      slot.used <- true;
      slot.magic <- r.magic;
      (* An empty And record: no parents, so it computes True — the caller
         re-attaches dependency parents (or invalidates it) afterwards. *)
      slot.is_leaf <- false;
      slot.op <- And;
      slot.n_parents <- 0;
      slot.p_true <- 0;
      slot.p_false <- 0;
      slot.p_unknown <- 0;
      Hashtbl.reset slot.children;
      Hashtbl.reset slot.in_edges;
      slot.ph_true <- 0;
      slot.ph_false <- 0;
      slot.st <- True;
      slot.permanent <- false;
      slot.direct_use <- false;
      slot.auto_revoke <- false;
      slot.hooks <- [];
      slot.gen <- 0;
      true
    end
  end

let live_records t =
  let n = ref 0 in
  for i = 0 to t.high_water - 1 do
    if t.slots.(i).used then incr n
  done;
  !n

(* Structural audit used by the randomized credential-graph suite: edge
   symmetry, counter bookkeeping and state consistency.  Only meaningful at
   quiescence (not from inside a hook, where a cascade is mid-flight). *)
let self_check t =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let exception Bad of string in
  try
    for i = 0 to t.high_water - 1 do
      let slot = t.slots.(i) in
      if slot.used then begin
        let me = { index = i; magic = slot.magic } in
        Hashtbl.iter
          (fun eid (child_ref, _neg) ->
            match get t child_ref with
            | None -> raise (Bad (Printf.sprintf "slot %d: dangling child edge %d" i eid))
            | Some child -> (
                match Hashtbl.find_opt child.in_edges eid with
                | Some p when p = me -> ()
                | _ ->
                    raise
                      (Bad (Printf.sprintf "slot %d: edge %d missing from child back index" i eid))))
          slot.children;
        Hashtbl.iter
          (fun eid parent_ref ->
            match get t parent_ref with
            | None -> raise (Bad (Printf.sprintf "slot %d: dangling in-edge %d" i eid))
            | Some parent -> (
                match Hashtbl.find_opt parent.children eid with
                | Some (c, _) when c = me -> ()
                | _ ->
                    raise
                      (Bad (Printf.sprintf "slot %d: in-edge %d missing from parent" i eid))))
          slot.in_edges;
        if slot.p_true + slot.p_false + slot.p_unknown <> slot.n_parents then
          raise
            (Bad
               (Printf.sprintf "slot %d: counters sum %d <> n_parents %d" i
                  (slot.p_true + slot.p_false + slot.p_unknown)
                  slot.n_parents));
        (* Recount contributions from the back index plus phantoms. *)
        let rt = ref slot.ph_true and rf = ref slot.ph_false and ru = ref 0 in
        Hashtbl.iter
          (fun eid parent_ref ->
            match get t parent_ref with
            | None -> ()
            | Some parent -> (
                let negated =
                  match Hashtbl.find_opt parent.children eid with
                  | Some (_, n) -> n
                  | None -> false
                in
                match seen_through negated parent.st with
                | True -> incr rt
                | False -> incr rf
                | Unknown -> incr ru))
          slot.in_edges;
        if !rt <> slot.p_true || !rf <> slot.p_false || !ru <> slot.p_unknown then
          raise
            (Bad
               (Printf.sprintf "slot %d: counters (%d,%d,%d) <> recount (%d,%d,%d)" i slot.p_true
                  slot.p_false slot.p_unknown !rt !rf !ru));
        if (not slot.permanent) && not slot.is_leaf then
          if slot.st <> computed_state slot then
            raise (Bad (Printf.sprintf "slot %d: state out of date w.r.t. counters" i))
      end
    done;
    Ok ()
  with Bad m -> fail "%s" m

let fp_key = Oasis_util.Siphash.key_of_string "oasis.credrec.fingerprint"

let fingerprint t =
  let b = Buffer.create 1024 in
  let add_int n =
    Buffer.add_string b (string_of_int n);
    Buffer.add_char b ','
  in
  for i = 0 to t.high_water - 1 do
    let slot = t.slots.(i) in
    if slot.used then begin
      add_int i;
      add_int slot.magic;
      Buffer.add_char b (if slot.is_leaf then 'l' else 'c');
      Buffer.add_char b (match slot.op with And -> '&' | Or -> '|' | Nand -> '^' | Nor -> '!');
      Buffer.add_char b (match slot.st with True -> 'T' | False -> 'F' | Unknown -> 'U');
      Buffer.add_char b (if slot.permanent then 'P' else '-');
      Buffer.add_char b (if slot.direct_use then 'D' else '-');
      add_int slot.n_parents;
      add_int slot.p_true;
      add_int slot.p_false;
      add_int slot.p_unknown;
      add_int slot.ph_true;
      add_int slot.ph_false;
      (* Forward edges in edge-id order: edge ids are allocated by a
         deterministic counter, so equal histories render equal bytes. *)
      let edges = Hashtbl.fold (fun eid e acc -> (eid, e) :: acc) slot.children [] in
      let edges = List.sort (fun (a, _) (c, _) -> Int.compare a c) edges in
      List.iter
        (fun (eid, (child, negated)) ->
          add_int eid;
          add_int child.index;
          add_int child.magic;
          Buffer.add_char b (if negated then '~' else '.'))
        edges;
      Buffer.add_char b ';'
    end
  done;
  Oasis_util.Siphash.hash fp_key (Buffer.contents b)

let marshal_ref r = Printf.sprintf "%x.%x" r.index r.magic

let unmarshal_ref s =
  match String.index_opt s '.' with
  | None -> None
  | Some dot -> (
      let a = String.sub s 0 dot and b = String.sub s (dot + 1) (String.length s - dot - 1) in
      match (int_of_string_opt ("0x" ^ a), int_of_string_opt ("0x" ^ b)) with
      | Some index, Some magic -> Some { index; magic }
      | _ -> None)

let pp_state ppf s =
  Format.pp_print_string ppf (match s with True -> "True" | False -> "False" | Unknown -> "Unknown")
