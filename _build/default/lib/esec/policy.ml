module Broker = Oasis_events.Broker
module Event = Oasis_events.Event
module Service = Oasis_core.Service
module Cert = Oasis_core.Cert
module Net = Oasis_sim.Net

(* Token conveyance for certificates-in-session-credentials.  The token
   embeds the marshalled payload; a side table recovers the full
   certificate (the simulation's stand-in for wire marshalling). *)
let cert_table : (string, Cert.rmc) Hashtbl.t = Hashtbl.create 64

let token_of_cert cert =
  let token = "cert:" ^ cert.Cert.service ^ ":" ^ cert.Cert.rmc_sig in
  Hashtbl.replace cert_table token cert;
  token

let resolve_token registry token =
  match Hashtbl.find_opt cert_table token with
  | None -> None
  | Some cert -> (
      match Service.find_service registry cert.Cert.service with
      | None -> None
      | Some issuer -> (
          match Service.validate_for_peer issuer cert with
          | Ok (roles, args, _) -> Some (cert.Cert.service, roles, args)
          | Error _ -> None))

let visibility_of registry rules credentials =
  let creds = List.filter_map (resolve_token registry) credentials in
  Erdl.instantiate rules ~creds

let install broker ~registry ~rules =
  Broker.set_admission broker (fun ~credentials ->
      let vis = visibility_of registry rules credentials in
      vis.Erdl.vis_allowed <> []);
  Broker.set_registration_filter broker (fun ~credentials tpl ->
      let vis = visibility_of registry rules credentials in
      Erdl.filter vis tpl)

module Proxy = struct
  type t = {
    p_broker : Broker.server;
    p_upstream : Broker.server;
    p_net : Net.t;
    p_host : Net.host;
    mutable p_session : Broker.session option;
    mutable p_upstream_regs : int;
    mutable p_pending : (unit -> unit) list;
  }

  let broker t = t.p_broker
  let upstream_registrations t = t.p_upstream_regs

  let create net host ~name ~upstream ~registry ~rules ?(heartbeat = 1.0) () =
    let proxy_broker = Broker.create_server net host ~name ~heartbeat () in
    let t =
      {
        p_broker = proxy_broker;
        p_upstream = upstream;
        p_net = net;
        p_host = host;
        p_session = None;
        p_upstream_regs = 0;
        p_pending = [];
      }
    in
    Broker.connect net host upstream
      ~credentials:[ "proxy:" ^ name ]
      ~on_result:(fun result ->
        match result with
        | Error _ -> ()
        | Ok session ->
            t.p_session <- Some session;
            List.iter (fun k -> k ()) (List.rev t.p_pending);
            t.p_pending <- [])
      ();
    (* Remote clients are admitted if the exporting site's policy gives them
       any visibility at all; their registrations are narrowed by that
       policy, then mirrored upstream. *)
    Broker.set_admission proxy_broker (fun ~credentials ->
        (visibility_of registry rules credentials).Erdl.vis_allowed <> []);
    Broker.set_registration_filter proxy_broker (fun ~credentials tpl ->
        match Erdl.filter (visibility_of registry rules credentials) tpl with
        | None -> None
        | Some narrowed ->
            let mirror () =
              match t.p_session with
              | None -> ()
              | Some session ->
                  t.p_upstream_regs <- t.p_upstream_regs + 1;
                  (* Strip the source pin: the upstream broker only carries
                     its own events. *)
                  let up_tpl = { narrowed with Event.tsource = None } in
                  ignore
                    (Broker.register session up_tpl (fun e ->
                         ignore
                           (Broker.signal t.p_broker ~stamp:e.Event.stamp e.Event.name
                              (Array.to_list e.Event.params))))
            in
            if t.p_session = None then t.p_pending <- mirror :: t.p_pending else mirror ();
            Some narrowed);
    t
end
