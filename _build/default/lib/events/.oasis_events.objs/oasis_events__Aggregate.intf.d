lib/events/aggregate.mli: Bead Composite Event Oasis_rdl
