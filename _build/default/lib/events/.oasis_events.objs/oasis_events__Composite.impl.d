lib/events/composite.ml: Event Format Fun List Oasis_rdl Option Printf String
