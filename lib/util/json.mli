(** Minimal JSON emission (no external dependency in the image).

    The simulator exports metrics ({!Oasis_sim.Stats}), traces
    ({!Oasis_sim.Trace}) and bench snapshots as JSON.  Each of those used to
    carry its own hand-rolled escaper; this module is the single shared
    emitter, so string escaping has exactly one implementation.

    Emission only — the repository never parses JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
      (** Rendered with enough digits to round-trip; non-finite values
          (nan/inf) are emitted as [null], since JSON has no spelling for
          them. *)
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val escape : string -> string
(** Escape a string for inclusion between double quotes: the quote and
    backslash characters and control characters (with the common short
    forms for newline, carriage return and tab, [\u00XX] otherwise).
    Does not add the surrounding quotes. *)

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

val raw_to_buffer : Buffer.t -> string -> unit
(** Append a pre-rendered JSON fragment verbatim.  For emitters that build
    large documents incrementally around already-serialised parts. *)
