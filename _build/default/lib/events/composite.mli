(** The composite event specification language (§6.5).

    Operators (ASCII concrete syntax in braces):

    - base event templates, e.g. [Seen(b, r)] — parameters are literals,
      variables, or [*] wildcards; a [source.Name(...)] prefix pins the
      issuing service;
    - [C1 ; C2] — {e sequence}: C2 evaluated from each occurrence of C1;
    - [C1 | C2] — {e inclusive or};
    - [C1 - C2] — {e without}: C1 occurs without C2 having occurred first;
      optional parameters [{Delay = d}] (§6.8.3) and [{Probability = p}]
      (§6.8.4) attach to the operator;
    - [$C] — {e whenever} (§6.4.2): a new evaluation starts each time the
      previous one completes;
    - [null] — the trivial event.

    Precedence, tightest first: [$], [-], [|], [;] (§6.6: whenever binds most
    closely, sequence least).

    {e Side expressions} (§6.5.1) attach to a base template or parenthesised
    group in braces: [Seen(x, y) {x <> "rjh21"}].  They are conjunctions of
    comparisons and assignments over event parameters; [@] denotes the
    current (local) time, e.g. [{t <- @ + 60}]. *)

type value = Oasis_rdl.Value.t

(** Side-expression terms. *)
type sexpr =
  | Svar of string
  | Slit of value
  | Snow  (** [@]: evaluation-local current time (seconds, as an Int) *)
  | Sadd of sexpr * sexpr
  | Ssub of sexpr * sexpr

type satom =
  | Scmp of Oasis_rdl.Ast.relop * sexpr * sexpr
  | Sassign of string * sexpr  (** [x <- e]: bind or test-equal *)

type side = satom list  (** conjunction *)

type without_params = { delay : float option; probability : float option }

type t =
  | Base of Event.template * side
  | Seq of t * t
  | Or of t * t
  | Without of t * t * without_params
  | Whenever of t
  | Null

val no_params : without_params

val base_templates : t -> Event.template list
(** Every base template appearing in the expression (used to compute the
    covering event-horizon for [without], §6.8.2). *)

val eval_side : now:float -> Event.env -> side -> Event.env option
(** Evaluate a side expression: [Some env'] with any new bindings if all
    atoms hold, [None] otherwise. *)

exception Parse_error of string

val parse : string -> t
(** Parse the concrete syntax above.  Raises {!Parse_error}. *)

val parse_result : string -> (t, string) result

val pp : Format.formatter -> t -> unit
val to_string : t -> string
