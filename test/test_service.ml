(* Behavioural tests for the OASIS service: the role-entry engine, election
   and delegation, revocation (explicit, conditional, role-based),
   inter-service cascade via event notification, failure semantics and
   interworking (chapters 3 and 4). *)

module Service = Oasis_core.Service
module Cert = Oasis_core.Cert
module Group = Oasis_core.Group
module Principal = Oasis_core.Principal
module Interop = Oasis_core.Interop
module Engine = Oasis_sim.Engine
module Net = Oasis_sim.Net
module V = Oasis_rdl.Value

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

type world = {
  engine : Engine.t;
  net : Net.t;
  reg : Service.registry;
  client_host : Net.host;
  mutable hosts : int;
}

let make_world () =
  let engine = Engine.create () in
  let net = Net.create ~latency:(Net.Fixed 0.005) engine in
  let client_host = Net.add_host net "client" in
  { engine; net; reg = Service.create_registry (); client_host; hosts = 0 }

let add_service w ~name ~rolefile ?funcs ?fixpoint_entry ?compound_certificates ?sig_cache_cap ()
    =
  w.hosts <- w.hosts + 1;
  let host = Net.add_host w.net (Printf.sprintf "h%d" w.hosts) in
  match
    Service.create w.net host w.reg ~name ~rolefile ?funcs ?fixpoint_entry ?compound_certificates
      ?sig_cache_cap ()
  with
  | Ok s -> s
  | Error e -> Alcotest.failf "service %s: %s" name e

let run w dt = Engine.run ~until:(Engine.now w.engine +. dt) w.engine

let fresh_vci =
  let host = Principal.Host.create "clienthost" in
  let domain = Principal.Host.boot_domain host in
  fun () -> Principal.Host.new_vci host domain

let entry w svc ~client ~role ?args ?creds ?delegation () =
  let result = ref None in
  Service.request_entry svc ~client_host:w.client_host ~client ~role ?args ?creds ?delegation
    (fun r -> result := Some r);
  run w 2.0;
  match !result with Some r -> r | None -> Alcotest.fail "entry did not complete"

let entry_ok w svc ~client ~role ?args ?creds ?delegation () =
  match entry w svc ~client ~role ?args ?creds ?delegation () with
  | Ok c -> c
  | Error e -> Alcotest.failf "entry to %s failed: %s" role e

let delegate w svc ~delegator ~using ~role ~required ?expires_in ?revoke_on_exit () =
  let result = ref None in
  Service.request_delegation svc ~client_host:w.client_host ~delegator ~using ~role ~required
    ?expires_in ?revoke_on_exit (fun r -> result := Some r);
  run w 2.0;
  match !result with
  | Some (Ok dr) -> dr
  | Some (Error e) -> Alcotest.failf "delegation failed: %s" e
  | None -> Alcotest.fail "delegation did not complete"

let login_rolefile = {|
def LoggedOn(u, h) u: String h: String
LoggedOn(u, h) <-
|}

(* A standard world: Login service + conference service. *)
let conference_world () =
  let w = make_world () in
  let login = add_service w ~name:"Login" ~rolefile:login_rolefile () in
  let conf =
    add_service w ~name:"Conf"
      ~rolefile:
        {|
Chair <- Login.LoggedOn("jmb", h)
Member(u) <- Login.LoggedOn(u, h)* <|* Chair : (u in staff)*
|}
      ()
  in
  (w, login, conf)

let logged_on login user host =
  let vci = fresh_vci () in
  (vci, Service.issue_arbitrary login ~client:vci ~roles:[ "LoggedOn" ] ~args:[ V.Str user; V.Str host ])

(* --- basic role entry --- *)

let test_entry_with_external_credential () =
  let w, login, conf = conference_world () in
  let jmb, jmb_cert = logged_on login "jmb" "ely" in
  let cert = entry_ok w conf ~client:jmb ~role:"Chair" ~creds:[ jmb_cert ] () in
  checkb "validates" true (Service.validate conf ~client:jmb ~need_role:"Chair" cert = Ok ())

let test_entry_denied_without_credential () =
  let w, _login, conf = conference_world () in
  let nobody = fresh_vci () in
  checkb "denied" true (Result.is_error (entry w conf ~client:nobody ~role:"Chair" ()))

let test_entry_literal_argument_discriminates () =
  let w, login, conf = conference_world () in
  let dm, dm_cert = logged_on login "dm" "ely" in
  (* dm is not jmb: cannot become Chair. *)
  checkb "dm refused Chair" true
    (Result.is_error (entry w conf ~client:dm ~role:"Chair" ~creds:[ dm_cert ] ()))

let test_entry_first_matching_rule_wins () =
  (* §3.4.3: Login levels — the first rule whose constraint holds is used. *)
  let w = make_world () in
  let pw = add_service w ~name:"Pw" ~rolefile:{|
def Passwd(u, k) u: String k: String
Passwd(u, k) <-
|} () in
  let login =
    add_service w ~name:"LoginSvc"
      ~rolefile:
        {|
def Login(l, u) l: Integer u: String
Login(3, u) <- Pw.Passwd(u, "Login") : u in secure
Login(2, u) <- Pw.Passwd(u, "Login") : u in hosts
Login(1, u) <- Pw.Passwd(u, "Login")
|}
      ()
  in
  Group.add (Service.group login "hosts") (V.Str "dm");
  let dm = fresh_vci () in
  let pwc = Service.issue_arbitrary pw ~client:dm ~roles:[ "Passwd" ] ~args:[ V.Str "dm"; V.Str "Login" ] in
  let cert = entry_ok w login ~client:dm ~role:"Login" ~creds:[ pwc ] () in
  (* dm is in hosts but not secure: level 2, not 3 or 1. *)
  checkb "level 2" true (List.hd cert.Cert.args = V.Int 2)

let test_entry_intermediate_roles_automatic () =
  (* §3.2.2: intermediate roles entered automatically; later statements can
     consume memberships produced by earlier ones (fig 3.2). *)
  let w = make_world () in
  let svc =
    add_service w ~name:"S"
      ~rolefile:{|
def Foo()
Foo <-
Bas(1) <- Foo
Bas(2) <- Foo
Bar(1) <- Bas(2)
Bar(2) <- Foo
|}
      ()
  in
  let c = fresh_vci () in
  let foo = Service.issue_arbitrary svc ~client:c ~roles:[ "Foo" ] ~args:[] in
  let cert = entry_ok w svc ~client:c ~role:"Bar" ~creds:[ foo ] () in
  (* fig 3.2: the list is Bas(1), Bas(2), Bar(1), Bar(2); first Bar is Bar(1). *)
  checkb "Bar(1) returned" true (cert.Cert.args = [ V.Int 1 ])

let test_entry_requested_args_select () =
  let w = make_world () in
  let svc = add_service w ~name:"S" ~rolefile:{|
def Foo()
Foo <-
Bar(1) <- Foo
Bar(2) <- Foo
|} () in
  let c = fresh_vci () in
  let foo = Service.issue_arbitrary svc ~client:c ~roles:[ "Foo" ] ~args:[] in
  let cert = entry_ok w svc ~client:c ~role:"Bar" ~args:[ V.Int 2 ] ~creds:[ foo ] () in
  checkb "explicit args honoured" true (cert.Cert.args = [ V.Int 2 ])

let test_entry_constraint_functions () =
  (* §3.4.4 shared authorship: creator() extension function. *)
  let w = make_world () in
  let svc =
    add_service w ~name:"Doc"
      ~funcs:[ ("creator", fun _ -> Ok (V.Str "rjh21")) ]
      ~rolefile:
        {|
import Login.userid
Author <- Login.LoggedOn(u, h) : u = creator(@fileid"DOC")
def Rights(r) r: {aef}
Rights({ae}) <- Author
|}
      ()
  in
  let login = add_service w ~name:"Login" ~rolefile:login_rolefile () in
  let rjh, rjh_cert = logged_on login "rjh21" "ely" in
  let dm, dm_cert = logged_on login "dm" "ely" in
  let rights = entry_ok w svc ~client:rjh ~role:"Rights" ~creds:[ rjh_cert ] () in
  checkb "author gets {ae}" true (rights.Cert.args = [ V.Set "ae" ]);
  checkb "non-creator refused" true
    (Result.is_error (entry w svc ~client:dm ~role:"Rights" ~creds:[ dm_cert ] ()))

let test_entry_compound_certificates () =
  let w = make_world () in
  let svc =
    add_service w ~name:"S" ~rolefile:{|
def Foo()
Foo <-
A <- Foo
B <- A
|} ()
  in
  let c = fresh_vci () in
  let foo = Service.issue_arbitrary svc ~client:c ~roles:[ "Foo" ] ~args:[] in
  let cert = entry_ok w svc ~client:c ~role:"B" ~creds:[ foo ] () in
  (* A and B both entered with identical (empty) args: compounded (§4.3). *)
  let bits = Service.role_bits svc in
  checkb "has A too" true (Cert.has_role ~role_bits:bits cert "A");
  checkb "has B" true (Cert.has_role ~role_bits:bits cert "B")

let test_entry_no_compound_when_disabled () =
  let w = make_world () in
  let svc =
    add_service w ~name:"S" ~compound_certificates:false
      ~rolefile:{|
def Foo()
Foo <-
A <- Foo
B <- A
|} ()
  in
  let c = fresh_vci () in
  let foo = Service.issue_arbitrary svc ~client:c ~roles:[ "Foo" ] ~args:[] in
  let cert = entry_ok w svc ~client:c ~role:"B" ~creds:[ foo ] () in
  checkb "only B" false (Cert.has_role ~role_bits:(Service.role_bits svc) cert "A")

let test_fixpoint_ablation () =
  (* A statement textually before its dependency only fires in fixpoint
     mode. *)
  let rolefile = {|
def Foo()
Foo <-
Bar <- Bas
Bas <- Foo
|} in
  let try_mode fixpoint =
    let w = make_world () in
    let svc = add_service w ~name:"S" ~fixpoint_entry:fixpoint ~rolefile () in
    let c = fresh_vci () in
    let foo = Service.issue_arbitrary svc ~client:c ~roles:[ "Foo" ] ~args:[] in
    Result.is_ok (entry w svc ~client:c ~role:"Bar" ~creds:[ foo ] ())
  in
  checkb "single pass misses forward dependency" false (try_mode false);
  checkb "fixpoint reaches it" true (try_mode true)

(* --- membership rules and revocation --- *)

let test_group_change_revokes () =
  let w, login, conf = conference_world () in
  Group.add (Service.group conf "staff") (V.Str "dm");
  let jmb, jmb_cert = logged_on login "jmb" "ely" in
  let chair = entry_ok w conf ~client:jmb ~role:"Chair" ~creds:[ jmb_cert ] () in
  let dm, dm_cert = logged_on login "dm" "ely" in
  let d, _r =
    delegate w conf ~delegator:jmb ~using:chair ~role:"Member"
      ~required:[ ("Login", "LoggedOn", [ V.Str "dm"; V.Str "*" ]) ] ()
  in
  let member = entry_ok w conf ~client:dm ~role:"Member" ~creds:[ dm_cert ] ~delegation:d () in
  checkb "valid" true (Service.validate conf ~client:dm member = Ok ());
  Group.remove (Service.group conf "staff") (V.Str "dm");
  checkb "revoked on group removal" true
    (Service.validate conf ~client:dm member = Error Service.Revoked)

let test_revocation_certificate () =
  let w, login, conf = conference_world () in
  Group.add (Service.group conf "staff") (V.Str "dm");
  let jmb, jmb_cert = logged_on login "jmb" "ely" in
  let chair = entry_ok w conf ~client:jmb ~role:"Chair" ~creds:[ jmb_cert ] () in
  let dm, dm_cert = logged_on login "dm" "ely" in
  let d, r =
    delegate w conf ~delegator:jmb ~using:chair ~role:"Member"
      ~required:[ ("Login", "LoggedOn", [ V.Str "dm"; V.Str "*" ]) ] ()
  in
  let member = entry_ok w conf ~client:dm ~role:"Member" ~creds:[ dm_cert ] ~delegation:d () in
  let result = ref None in
  Service.request_revocation conf ~client_host:w.client_host r (fun x -> result := Some x);
  run w 2.0;
  checkb "revocation accepted" true (!result = Some (Ok ()));
  checkb "member revoked" true (Service.validate conf ~client:dm member = Error Service.Revoked)

let test_revocation_denied_after_delegator_loses_role () =
  let w, login, conf = conference_world () in
  Group.add (Service.group conf "staff") (V.Str "dm");
  let jmb, jmb_cert = logged_on login "jmb" "ely" in
  let chair = entry_ok w conf ~client:jmb ~role:"Chair" ~creds:[ jmb_cert ] () in
  let _d, r =
    delegate w conf ~delegator:jmb ~using:chair ~role:"Member"
      ~required:[ ("Login", "LoggedOn", [ V.Str "dm"; V.Str "*" ]) ] ()
  in
  (* fig 4.3: the first CRR in the revocation certificate ensures the
     delegator still holds the delegating role. *)
  Service.revoke_certificate conf chair;
  let result = ref None in
  Service.request_revocation conf ~client_host:w.client_host r (fun x -> result := Some x);
  run w 2.0;
  checkb "refused" true (match !result with Some (Error _) -> true | _ -> false)

let test_delegation_expiry () =
  let w, login, conf = conference_world () in
  Group.add (Service.group conf "staff") (V.Str "dm");
  let jmb, jmb_cert = logged_on login "jmb" "ely" in
  let chair = entry_ok w conf ~client:jmb ~role:"Chair" ~creds:[ jmb_cert ] () in
  let dm, dm_cert = logged_on login "dm" "ely" in
  let d, _ =
    delegate w conf ~delegator:jmb ~using:chair ~role:"Member"
      ~required:[ ("Login", "LoggedOn", [ V.Str "dm"; V.Str "*" ]) ]
      ~expires_in:5.0 ()
  in
  let member = entry_ok w conf ~client:dm ~role:"Member" ~creds:[ dm_cert ] ~delegation:d () in
  checkb "valid before expiry" true (Service.validate conf ~client:dm member = Ok ());
  run w 10.0;
  checkb "auto-revoked at expiry" true
    (Service.validate conf ~client:dm member = Error Service.Revoked)

let test_delegation_revoke_on_exit () =
  let w, login, conf = conference_world () in
  Group.add (Service.group conf "staff") (V.Str "dm");
  let jmb, jmb_cert = logged_on login "jmb" "ely" in
  let chair = entry_ok w conf ~client:jmb ~role:"Chair" ~creds:[ jmb_cert ] () in
  let dm, dm_cert = logged_on login "dm" "ely" in
  let d, _ =
    delegate w conf ~delegator:jmb ~using:chair ~role:"Member"
      ~required:[ ("Login", "LoggedOn", [ V.Str "dm"; V.Str "*" ]) ]
      ~revoke_on_exit:true ()
  in
  let member = entry_ok w conf ~client:dm ~role:"Member" ~creds:[ dm_cert ] ~delegation:d () in
  (* jmb exits the Chair role: the delegation — and dm's membership — die. *)
  let result = ref None in
  Service.exit_role conf ~client_host:w.client_host chair (fun r -> result := Some r);
  run w 2.0;
  checkb "exit ok" true (!result = Some (Ok ()));
  checkb "delegated membership revoked" true
    (Service.validate conf ~client:dm member = Error Service.Revoked)

let test_delegation_requires_elector_role () =
  let w, login, conf = conference_world () in
  let dm, dm_cert = logged_on login "dm" "ely" in
  (* dm's login certificate is not a Chair certificate at Conf. *)
  let result = ref None in
  Service.request_delegation conf ~client_host:w.client_host ~delegator:dm ~using:dm_cert
    ~role:"Member" ~required:[] (fun r -> result := Some r);
  run w 2.0;
  checkb "refused" true (match !result with Some (Error _) -> true | _ -> false)

let test_delegation_electorless_role_refused () =
  (* Regression: a delegation request naming a role whose statements carry no
     elector used to be able to reach an [assert false] and kill the whole
     service host.  The request arrives off the wire, so it must be answered
     with a protocol error and the service must keep serving. *)
  let w, login, conf = conference_world () in
  let jmb, jmb_cert = logged_on login "jmb" "ely" in
  let chair = entry_ok w conf ~client:jmb ~role:"Chair" ~creds:[ jmb_cert ] () in
  (* "Chair" itself is defined without an elector ("<|*"), so it cannot be
     delegated — by anyone, including a Chair holder. *)
  let result = ref None in
  Service.request_delegation conf ~client_host:w.client_host ~delegator:jmb ~using:chair
    ~role:"Chair" ~required:[] (fun r -> result := Some r);
  run w 2.0;
  checkb "protocol error, not a crash" true
    (match !result with Some (Error _) -> true | _ -> false);
  (* The host survived: the service still answers entry requests. *)
  let jmb2, jmb2_cert = logged_on login "jmb" "cam" in
  let chair2 = entry_ok w conf ~client:jmb2 ~role:"Chair" ~creds:[ jmb2_cert ] () in
  checkb "service still alive" true (Service.validate conf ~client:jmb2 chair2 = Ok ())

let test_truncated_certificate_rejected () =
  (* Regression: verification used to take the expected signature length from
     the certificate itself, so a truncated signature prefix verified. *)
  let w, login, conf = conference_world () in
  let jmb, jmb_cert = logged_on login "jmb" "ely" in
  let chair = entry_ok w conf ~client:jmb ~role:"Chair" ~creds:[ jmb_cert ] () in
  let forged = { chair with Cert.rmc_sig = String.sub chair.Cert.rmc_sig 0 4 } in
  checkb "truncated signature is Forged" true
    (Service.validate conf ~client:jmb forged = Error Service.Forged)

let test_delegation_required_roles_enforced () =
  let w, login, conf = conference_world () in
  Group.add (Service.group conf "staff") (V.Str "dm");
  Group.add (Service.group conf "staff") (V.Str "eve");
  let jmb, jmb_cert = logged_on login "jmb" "ely" in
  let chair = entry_ok w conf ~client:jmb ~role:"Chair" ~creds:[ jmb_cert ] () in
  let d, _ =
    delegate w conf ~delegator:jmb ~using:chair ~role:"Member"
      ~required:[ ("Login", "LoggedOn", [ V.Str "dm"; V.Str "*" ]) ] ()
  in
  (* eve (staff, logged on) tries to use a delegation naming dm. *)
  let eve, eve_cert = logged_on login "eve" "ely" in
  checkb "eve cannot use dm's delegation" true
    (Result.is_error (entry w conf ~client:eve ~role:"Member" ~creds:[ eve_cert ] ~delegation:d ()))


let test_delegate_revocation_right () =
  (* §4.4: the Chair passes the right to revoke a delegation to another
     Chair-role holder; a non-Chair is refused (the fixed policy). *)
  let w = make_world () in
  let login = add_service w ~name:"Login" ~rolefile:login_rolefile () in
  let conf =
    add_service w ~name:"Conf"
      ~rolefile:
        {|
Chair <- Login.LoggedOn(u, h) : u in chairs
Member(u) <- Login.LoggedOn(u, h)* <|* Chair : (u in staff)*
|}
      ()
  in
  List.iter (fun u -> Group.add (Service.group conf "chairs") (V.Str u)) [ "jmb"; "km" ];
  Group.add (Service.group conf "staff") (V.Str "dm");
  let jmb, jmb_cert = logged_on login "jmb" "ely" in
  let km, km_cert = logged_on login "km" "ely" in
  let chair_jmb = entry_ok w conf ~client:jmb ~role:"Chair" ~creds:[ jmb_cert ] () in
  let chair_km = entry_ok w conf ~client:km ~role:"Chair" ~creds:[ km_cert ] () in
  let dm, dm_cert = logged_on login "dm" "ely" in
  let d, r =
    delegate w conf ~delegator:jmb ~using:chair_jmb ~role:"Member"
      ~required:[ ("Login", "LoggedOn", [ V.Str "dm"; V.Str "*" ]) ] ()
  in
  let member = entry_ok w conf ~client:dm ~role:"Member" ~creds:[ dm_cert ] ~delegation:d () in
  (* Passing the right to a non-Chair is refused. *)
  let refused = ref None in
  Service.delegate_revocation conf ~client_host:w.client_host ~rcert:r ~to_cert:dm_cert
    (fun x -> refused := Some x);
  run w 2.0;
  checkb "non-member of elector role refused" true
    (match !refused with Some (Error _) -> true | _ -> false);
  (* Passing it to km (a Chair) works, and km's certificate revokes. *)
  let km_rcert = ref None in
  Service.delegate_revocation conf ~client_host:w.client_host ~rcert:r ~to_cert:chair_km
    (fun x -> km_rcert := Some x);
  run w 2.0;
  let km_r = match !km_rcert with Some (Ok x) -> x | _ -> Alcotest.fail "redelegation failed" in
  let outcome = ref None in
  Service.request_revocation conf ~client_host:w.client_host km_r (fun x -> outcome := Some x);
  run w 2.0;
  checkb "km's revocation accepted" true (!outcome = Some (Ok ()));
  checkb "member revoked by the second chair" true
    (Service.validate conf ~client:dm member = Error Service.Revoked)

let test_delegate_revocation_dies_with_role () =
  (* The re-issued certificate is bound to the recipient's membership: if
     they lose the Chair role, the right to revoke goes with it. *)
  let w = make_world () in
  let login = add_service w ~name:"Login" ~rolefile:login_rolefile () in
  let conf =
    add_service w ~name:"Conf"
      ~rolefile:
        {|
Chair <- Login.LoggedOn(u, h) : (u in chairs)*
Member(u) <- Login.LoggedOn(u, h)* <|* Chair : (u in staff)*
|}
      ()
  in
  List.iter (fun u -> Group.add (Service.group conf "chairs") (V.Str u)) [ "jmb"; "km" ];
  Group.add (Service.group conf "staff") (V.Str "dm");
  let jmb, jmb_cert = logged_on login "jmb" "ely" in
  let km, km_cert = logged_on login "km" "ely" in
  let chair_jmb = entry_ok w conf ~client:jmb ~role:"Chair" ~creds:[ jmb_cert ] () in
  let chair_km = entry_ok w conf ~client:km ~role:"Chair" ~creds:[ km_cert ] () in
  let dm, dm_cert = logged_on login "dm" "ely" in
  let d, r =
    delegate w conf ~delegator:jmb ~using:chair_jmb ~role:"Member"
      ~required:[ ("Login", "LoggedOn", [ V.Str "dm"; V.Str "*" ]) ] ()
  in
  let _member = entry_ok w conf ~client:dm ~role:"Member" ~creds:[ dm_cert ] ~delegation:d () in
  let km_rcert = ref None in
  Service.delegate_revocation conf ~client_host:w.client_host ~rcert:r ~to_cert:chair_km
    (fun x -> km_rcert := Some x);
  run w 2.0;
  let km_r = match !km_rcert with Some (Ok x) -> x | _ -> Alcotest.fail "redelegation failed" in
  (* km loses the Chair role (removed from the chairs group). *)
  Group.remove (Service.group conf "chairs") (V.Str "km");
  let outcome = ref None in
  Service.request_revocation conf ~client_host:w.client_host km_r (fun x -> outcome := Some x);
  run w 2.0;
  checkb "ex-chair cannot revoke" true (match !outcome with Some (Error _) -> true | _ -> false)


let test_entry_fails_closed_when_issuer_unreachable () =
  (* The validation RPC to the issuing service times out during a
     partition: the credential is unusable and entry is denied (§4.2's
     fail-closed footnote applied at entry time). *)
  let w, login, conf = conference_world () in
  let jmb, jmb_cert = logged_on login "jmb" "ely" in
  Net.partition w.net (Service.host conf) (Service.host login);
  let result = ref None in
  Service.request_entry conf ~client_host:w.client_host ~client:jmb ~role:"Chair"
    ~creds:[ jmb_cert ] (fun r -> result := Some r);
  run w 10.0;
  checkb "denied while issuer unreachable" true
    (match !result with Some (Error _) -> true | _ -> false);
  (* After healing, the same request succeeds. *)
  Net.heal w.net (Service.host conf) (Service.host login);
  checkb "succeeds after heal" true
    (Result.is_ok (entry w conf ~client:jmb ~role:"Chair" ~creds:[ jmb_cert ] ()))

(* --- role-based revocation (§3.3.2, §4.11) --- *)

let meeting_world () =
  let w = make_world () in
  let login = add_service w ~name:"Login" ~rolefile:login_rolefile () in
  let meet =
    add_service w ~name:"Meet"
      ~rolefile:
        {|
Chair <- Login.LoggedOn("jmb", h)
Candidate(u) <- Login.LoggedOn(u, h) : u in staff
Member(u) <- Candidate(u) |>* Chair
|}
      ()
  in
  (w, login, meet)

let test_role_based_revocation_fire () =
  let w, login, meet = meeting_world () in
  Group.add (Service.group meet "staff") (V.Str "fred");
  let fred, fred_cert = logged_on login "fred" "ely" in
  let member = entry_ok w meet ~client:fred ~role:"Member" ~creds:[ fred_cert ] () in
  checkb "member valid" true (Service.validate meet ~client:fred member = Ok ());
  let jmb, jmb_cert = logged_on login "jmb" "ely" in
  let chair = entry_ok w meet ~client:jmb ~role:"Chair" ~creds:[ jmb_cert ] () in
  let result = ref None in
  Service.revoke_role_instance meet ~client_host:w.client_host ~revoker:chair ~role:"Member"
    ~args:[ V.Str "fred" ] (fun r -> result := Some r);
  run w 2.0;
  checkb "one revoked" true (!result = Some (Ok 1));
  checkb "fred ejected" true (Service.validate meet ~client:fred member = Error Service.Revoked);
  (* Blacklist: fred cannot re-enter (§4.11). *)
  checkb "re-entry blocked" true
    (Result.is_error (entry w meet ~client:fred ~role:"Member" ~creds:[ fred_cert ] ()))

let test_role_based_revocation_rehire () =
  let w, login, meet = meeting_world () in
  Group.add (Service.group meet "staff") (V.Str "fred");
  let fred, fred_cert = logged_on login "fred" "ely" in
  let _member = entry_ok w meet ~client:fred ~role:"Member" ~creds:[ fred_cert ] () in
  let jmb, jmb_cert = logged_on login "jmb" "ely" in
  let chair = entry_ok w meet ~client:jmb ~role:"Chair" ~creds:[ jmb_cert ] () in
  let done1 = ref false in
  Service.revoke_role_instance meet ~client_host:w.client_host ~revoker:chair ~role:"Member"
    ~args:[ V.Str "fred" ] (fun _ -> done1 := true);
  run w 2.0;
  (* Re-hire: the Chair removes the blacklist entry. *)
  let done2 = ref None in
  Service.reinstate_role_instance meet ~client_host:w.client_host ~revoker:chair ~role:"Member"
    ~args:[ V.Str "fred" ] (fun r -> done2 := Some r);
  run w 2.0;
  checkb "reinstate ok" true (!done2 = Some (Ok ()));
  checkb "fred can re-enter" true
    (Result.is_ok (entry w meet ~client:fred ~role:"Member" ~creds:[ fred_cert ] ()))

let test_role_based_revocation_wrong_revoker () =
  let w, login, meet = meeting_world () in
  Group.add (Service.group meet "staff") (V.Str "fred");
  Group.add (Service.group meet "staff") (V.Str "mallory");
  let fred, fred_cert = logged_on login "fred" "ely" in
  let _member = entry_ok w meet ~client:fred ~role:"Member" ~creds:[ fred_cert ] () in
  let mallory, mallory_cert = logged_on login "mallory" "ely" in
  let mcert = entry_ok w meet ~client:mallory ~role:"Member" ~creds:[ mallory_cert ] () in
  let result = ref None in
  Service.revoke_role_instance meet ~client_host:w.client_host ~revoker:mcert ~role:"Member"
    ~args:[ V.Str "fred" ] (fun r -> result := Some r);
  run w 2.0;
  checkb "member cannot fire member" true
    (match !result with Some (Error _) -> true | _ -> false)

(* --- quorum election (§3.4.5 golf club) --- *)

let test_golf_quorum () =
  let w = make_world () in
  let login = add_service w ~name:"Login" ~rolefile:login_rolefile () in
  let golf =
    add_service w ~name:"Golf"
      ~rolefile:
        {|
def Person(p) p: String
Person(p) <- Login.LoggedOn(p, h)
Rec1(p, q) <- Person(p) <| Member(q)
Rec2(p, q) <- Person(p) <| Member(q)
Member(p) <- Login.LoggedOn(p, h)
|}
      ()
  in
  (* Bootstrap one member. *)
  let alice = fresh_vci () in
  let alice_member = Service.issue_arbitrary golf ~client:alice ~roles:[ "Member" ] ~args:[ V.Str "alice" ] in
  checkb "bootstrap ok" true (Service.validate golf ~client:alice alice_member = Ok ());
  (* A recommendation requires an existing member's delegation. *)
  let bob, bob_login = logged_on login "bob" "ely" in
  let d, _ =
    delegate w golf ~delegator:alice ~using:alice_member ~role:"Rec1"
      ~required:[ ("Login", "LoggedOn", [ V.Str "bob"; V.Str "*" ]) ] ()
  in
  let rec1 = entry_ok w golf ~client:bob ~role:"Rec1" ~creds:[ bob_login ] ~delegation:d () in
  checkb "recommendation issued" true
    (Service.validate golf ~client:bob ~need_role:"Rec1" rec1 = Ok ())

(* --- validation failure classes and auditing (§4.2, §4.13) --- *)

let test_validation_failure_classes () =
  let w, login, conf = conference_world () in
  let jmb, jmb_cert = logged_on login "jmb" "ely" in
  let chair = entry_ok w conf ~client:jmb ~role:"Chair" ~creds:[ jmb_cert ] () in
  (* Wrong client (stolen certificate). *)
  let thief = fresh_vci () in
  checkb "stolen" true (Service.validate conf ~client:thief chair = Error Service.Wrong_client);
  (* Forged: tamper with the role bits. *)
  let forged = { chair with Cert.roles = Oasis_util.Bitset.of_list [ 0; 1 ] } in
  checkb "forged" true (Service.validate conf ~client:jmb forged = Error Service.Forged);
  (* Wrong context: a Login certificate at Conf. *)
  checkb "wrong context" true
    (Service.validate conf ~client:jmb jmb_cert = Error Service.Wrong_context);
  (* Insufficient: Chair certificate used for Member. *)
  checkb "insufficient" true
    (Service.validate conf ~client:jmb ~need_role:"Member" chair = Error Service.Insufficient);
  (* Revoked. *)
  Service.revoke_certificate conf chair;
  checkb "revoked" true (Service.validate conf ~client:jmb chair = Error Service.Revoked);
  (* Audit distinguishes fraud from erroneous use. *)
  let log = Service.audit_log conf in
  checkb "fraud audited" true (List.exists (fun e -> e.Service.kind = Service.Fraud) log);
  checkb "erroneous audited" true (List.exists (fun e -> e.Service.kind = Service.Erroneous) log)

let test_validation_cache () =
  let w, login, conf = conference_world () in
  let jmb, jmb_cert = logged_on login "jmb" "ely" in
  let chair = entry_ok w conf ~client:jmb ~role:"Chair" ~creds:[ jmb_cert ] () in
  let before = Service.crypto_checks conf in
  for _ = 1 to 50 do
    ignore (Service.validate conf ~client:jmb chair)
  done;
  let crypto_used = Service.crypto_checks conf - before in
  checkb "at most one crypto check for 50 validations" true (crypto_used <= 1);
  checkb "cache hits recorded" true (Service.cache_hits conf >= 49)

let test_rolling_secret_invalidates_old_certs () =
  let w, login, conf = conference_world () in
  let jmb, jmb_cert = logged_on login "jmb" "ely" in
  let chair = entry_ok w conf ~client:jmb ~role:"Chair" ~creds:[ jmb_cert ] () in
  (* Roll past the table capacity (default 4). *)
  for _ = 1 to 5 do
    Service.roll_secret conf
  done;
  checkb "old certificate no longer verifies" true
    (Service.validate conf ~client:jmb chair = Error Service.Forged)

(* --- inter-service cascade (§4.9–4.10) --- *)

let test_cross_service_cascade_on_logout () =
  let w, login, conf = conference_world () in
  Group.add (Service.group conf "staff") (V.Str "dm");
  let jmb, jmb_cert = logged_on login "jmb" "ely" in
  let chair = entry_ok w conf ~client:jmb ~role:"Chair" ~creds:[ jmb_cert ] () in
  let dm, dm_cert = logged_on login "dm" "ely" in
  let d, _ =
    delegate w conf ~delegator:jmb ~using:chair ~role:"Member"
      ~required:[ ("Login", "LoggedOn", [ V.Str "dm"; V.Str "*" ]) ] ()
  in
  let member = entry_ok w conf ~client:dm ~role:"Member" ~creds:[ dm_cert ] ~delegation:d () in
  run w 3.0 (* let the Modified-event subscription settle *);
  checkb "valid while logged on" true (Service.validate conf ~client:dm member = Ok ());
  (* dm logs off at the Login service: the starred LoggedOn credential dies,
     the external record at Conf flips by event notification, and the
     Member certificate is revoked — across services. *)
  Service.revoke_certificate login dm_cert;
  run w 3.0;
  checkb "revocation cascaded across services" true
    (Service.validate conf ~client:dm member = Error Service.Revoked)

let test_partition_marks_unknown () =
  let w, login, conf = conference_world () in
  Group.add (Service.group conf "staff") (V.Str "dm");
  let jmb, jmb_cert = logged_on login "jmb" "ely" in
  let chair = entry_ok w conf ~client:jmb ~role:"Chair" ~creds:[ jmb_cert ] () in
  let dm, dm_cert = logged_on login "dm" "ely" in
  let d, _ =
    delegate w conf ~delegator:jmb ~using:chair ~role:"Member"
      ~required:[ ("Login", "LoggedOn", [ V.Str "dm"; V.Str "*" ]) ] ()
  in
  let member = entry_ok w conf ~client:dm ~role:"Member" ~creds:[ dm_cert ] ~delegation:d () in
  run w 3.0;
  checkb "valid" true (Service.validate conf ~client:dm member = Ok ());
  (* Partition Conf from Login: heartbeats stop, external records go
     Unknown, and validation fails closed (§4.10, §4.2 footnote). *)
  Net.partition w.net (Service.host conf) (Service.host login);
  run w 5.0;
  checkb "unknown state fails closed" true
    (Service.validate conf ~client:dm member = Error Service.Unknown_state);
  (* Healing recovers: state is re-read and validity returns. *)
  Net.heal w.net (Service.host conf) (Service.host login);
  run w 5.0;
  checkb "recovers after heal" true (Service.validate conf ~client:dm member = Ok ())

(* --- interworking (§4.12, §3.4.1, §3.4.3) --- *)

let test_password_service () =
  let w = make_world () in
  let svc = add_service w ~name:"Pw" ~rolefile:{|
def Passwd(u, k) u: String k: String
Passwd(u, k) <-
|} () in
  let pw = Interop.Password.create svc in
  Interop.Password.set_secret pw ~user:"dm" ~key:"Login" ~secret:"hunter2";
  let dm = fresh_vci () in
  checkb "wrong password" true
    (Result.is_error (Interop.Password.authenticate pw ~client:dm ~user:"dm" ~key:"Login" ~secret:"nope"));
  let cert =
    match Interop.Password.authenticate pw ~client:dm ~user:"dm" ~key:"Login" ~secret:"hunter2" with
    | Ok c -> c
    | Error e -> Alcotest.failf "auth: %s" e
  in
  checkb "cert valid" true (Service.validate svc ~client:dm cert = Ok ());
  Interop.Password.revoke_user pw ~user:"dm";
  checkb "revoked on password change" true
    (Service.validate svc ~client:dm cert = Error Service.Revoked)

let test_loader_service () =
  let w = make_world () in
  let svc = add_service w ~name:"Loader" ~rolefile:{|
def Running(p) p: String
Running(p) <-
|} () in
  let loader = Interop.Loader.create ~trusted_hosts:[ "clienthost" ] svc in
  let c = fresh_vci () in
  (match Interop.Loader.certify loader ~client:c ~program:"game" with
  | Ok cert -> checkb "certified" true (Service.validate svc ~client:c cert = Ok ())
  | Error e -> Alcotest.failf "loader: %s" e);
  Interop.Loader.distrust_host loader "clienthost";
  checkb "untrusted host refused" true
    (Result.is_error (Interop.Loader.certify loader ~client:c ~program:"game"))

let test_orgrole_bridge () =
  let w = make_world () in
  let svc = add_service w ~name:"Org" ~rolefile:{|
def OrgRole(r) r: String
OrgRole(r) <-
|} () in
  let bridge = Interop.Orgroles.create svc in
  let c = fresh_vci () in
  let cert =
    match Interop.Orgroles.assert_role bridge ~client:c ~org_role:"manager" with
    | Ok cert -> cert
    | Error e -> Alcotest.failf "org: %s" e
  in
  checkb "bridged role valid" true (Service.validate svc ~client:c cert = Ok ());
  Interop.Orgroles.retract_role bridge ~client:c ~org_role:"manager";
  checkb "retraction revokes" true (Service.validate svc ~client:c cert = Error Service.Revoked)

(* --- high score table (§3.4.1) --- *)

let test_high_score_table () =
  let w = make_world () in
  let loader_svc = add_service w ~name:"Loader" ~rolefile:{|
def Running(p) p: String
Running(p) <-
|} () in
  let login = add_service w ~name:"Login" ~rolefile:login_rolefile () in
  let hst =
    add_service w ~name:"Scores"
      ~rolefile:{|
Write <- Loader.Running("game")
Read <- Login.LoggedOn(u, h)
|}
      ()
  in
  let loader = Interop.Loader.create ~trusted_hosts:[ "clienthost" ] loader_svc in
  let game = fresh_vci () in
  let game_cert = Result.get_ok (Interop.Loader.certify loader ~client:game ~program:"game") in
  let writer = entry_ok w hst ~client:game ~role:"Write" ~creds:[ game_cert ] () in
  checkb "game writes" true (Service.validate hst ~client:game ~need_role:"Write" writer = Ok ());
  let dm, dm_cert = logged_on login "dm" "ely" in
  let reader = entry_ok w hst ~client:dm ~role:"Read" ~creds:[ dm_cert ] () in
  checkb "user reads" true (Service.validate hst ~client:dm ~need_role:"Read" reader = Ok ());
  checkb "user cannot write" true
    (Result.is_error (entry w hst ~client:dm ~role:"Write" ~creds:[ dm_cert ] ()))

let test_gc_after_churn () =
  let w, login, conf = conference_world () in
  Group.add (Service.group conf "staff") (V.Str "dm");
  let jmb, jmb_cert = logged_on login "jmb" "ely" in
  for _ = 1 to 10 do
    let c = entry_ok w conf ~client:jmb ~role:"Chair" ~creds:[ jmb_cert ] () in
    let done_ = ref false in
    Service.exit_role conf ~client_host:w.client_host c (fun _ -> done_ := true);
    run w 1.0
  done;
  let reclaimed = Service.gc conf in
  checkb "gc reclaims exited memberships" true (reclaimed > 0)

(* --- cache bounds and counters --- *)

module Stats = Oasis_sim.Stats

(* The signature-verification cache must stay within its configured cap
   under churn (two-generation eviction), and hits/misses must be
   accounted in the net's stats. *)
let test_sig_cache_cap_holds () =
  let w = make_world () in
  let login = add_service w ~name:"Login" ~rolefile:login_rolefile ~sig_cache_cap:4 () in
  let stats = Net.stats w.net in
  let certs =
    List.init 12 (fun i ->
        let vci, cert = logged_on login (Printf.sprintf "u%d" i) "ely" in
        (vci, cert))
  in
  List.iter
    (fun (vci, cert) ->
      checkb "validates" true (Service.validate login ~client:vci cert = Ok ());
      checkb "cap holds under churn" true (Service.sig_cache_size login <= 4))
    certs;
  let misses = Stats.count stats "oasis.sigcache.miss" in
  checkb "every first check missed" true (misses >= 12);
  (* An immediate re-validation of the newest certificate is a hit... *)
  let hits0 = Stats.count stats "oasis.sigcache.hit" in
  let vci, cert = List.nth certs 11 in
  checkb "revalidates" true (Service.validate login ~client:vci cert = Ok ());
  checki "hot entry hits" (hits0 + 1) (Stats.count stats "oasis.sigcache.hit");
  (* ...while the oldest was evicted long ago and misses again. *)
  let vci0, cert0 = List.hd certs in
  ignore (Service.validate login ~client:vci0 cert0);
  checkb "evicted entry misses again" true (Stats.count stats "oasis.sigcache.miss" > misses);
  checkb "cap still holds" true (Service.sig_cache_size login <= 4)

(* Repeated role entries with the same constraint and bindings reuse the
   compiled residual instead of recompiling it. *)
let test_residual_cache_reused () =
  let w = make_world () in
  let login = add_service w ~name:"Login" ~rolefile:login_rolefile () in
  let conf =
    add_service w ~name:"Conf"
      ~rolefile:{|
Member(u) <- Login.LoggedOn(u, h)* : ((u in staff) and (u in eng))*
|}
      ()
  in
  Group.add (Service.group conf "staff") (V.Str "dm");
  Group.add (Service.group conf "eng") (V.Str "dm");
  let stats = Net.stats w.net in
  let dm, dm_cert = logged_on login "dm" "ely" in
  let m1 = entry_ok w conf ~client:dm ~role:"Member" ~creds:[ dm_cert ] () in
  let misses = Stats.count stats "oasis.residual.miss" in
  checkb "first entry compiled the residual" true (misses >= 1);
  checkb "residual retained" true (Service.residual_cache_size conf >= 1);
  let m2 = entry_ok w conf ~client:dm ~role:"Member" ~creds:[ dm_cert ] () in
  checkb "re-entry hit the residual cache" true (Stats.count stats "oasis.residual.hit" >= 1);
  checki "no recompilation on re-entry" misses (Stats.count stats "oasis.residual.miss");
  (* The cached compilation must stay live policy: a group change still
     revokes both memberships. *)
  checkb "m1 valid" true (Service.validate conf ~client:dm m1 = Ok ());
  checkb "m2 valid" true (Service.validate conf ~client:dm m2 = Ok ());
  Group.remove (Service.group conf "eng") (V.Str "dm");
  checkb "cached residual still revocable (m1)" true
    (Service.validate conf ~client:dm m1 = Error Service.Revoked);
  checkb "cached residual still revocable (m2)" true
    (Service.validate conf ~client:dm m2 = Error Service.Revoked)

(* §4.3: role rights are a 62-bit set; a 63-role rolefile must be refused
   with a diagnostic, not mis-encoded. *)
let test_role_bitset_limit () =
  let roles n = String.concat "" (List.init n (fun i -> Printf.sprintf "R%d <-\n" i)) in
  let w = make_world () in
  let host = Net.add_host w.net "h.limit" in
  (match Service.create w.net host w.reg ~name:"Wide" ~rolefile:(roles 63) () with
  | Ok _ -> Alcotest.fail "63 roles must not fit a 62-bit set"
  | Error e ->
      Alcotest.(check string)
        "diagnostic" "too many roles for the role bit-set (max 62)" e);
  (* 62 is still fine. *)
  let host62 = Net.add_host w.net "h.limit62" in
  match Service.create w.net host62 w.reg ~name:"Wide62" ~rolefile:(roles 62) () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "62 roles must fit: %s" e

let () =
  Alcotest.run "service"
    [
      ( "entry",
        [
          Alcotest.test_case "external credential" `Quick test_entry_with_external_credential;
          Alcotest.test_case "denied without credential" `Quick test_entry_denied_without_credential;
          Alcotest.test_case "literal discriminates" `Quick test_entry_literal_argument_discriminates;
          Alcotest.test_case "first rule wins (login levels)" `Quick test_entry_first_matching_rule_wins;
          Alcotest.test_case "intermediate roles (fig 3.2)" `Quick test_entry_intermediate_roles_automatic;
          Alcotest.test_case "requested args select" `Quick test_entry_requested_args_select;
          Alcotest.test_case "constraint functions (authorship)" `Quick test_entry_constraint_functions;
          Alcotest.test_case "compound certificates" `Quick test_entry_compound_certificates;
          Alcotest.test_case "compound disabled" `Quick test_entry_no_compound_when_disabled;
          Alcotest.test_case "fixpoint ablation" `Quick test_fixpoint_ablation;
        ] );
      ( "revocation",
        [
          Alcotest.test_case "group change revokes" `Quick test_group_change_revokes;
          Alcotest.test_case "revocation certificate" `Quick test_revocation_certificate;
          Alcotest.test_case "revoker must hold role" `Quick test_revocation_denied_after_delegator_loses_role;
          Alcotest.test_case "delegation expiry" `Quick test_delegation_expiry;
          Alcotest.test_case "revoke on exit" `Quick test_delegation_revoke_on_exit;
          Alcotest.test_case "delegation needs elector" `Quick test_delegation_requires_elector_role;
          Alcotest.test_case "elector-less role refused, host survives" `Quick
            test_delegation_electorless_role_refused;
          Alcotest.test_case "truncated certificate rejected" `Quick
            test_truncated_certificate_rejected;
          Alcotest.test_case "required roles enforced" `Quick test_delegation_required_roles_enforced;
          Alcotest.test_case "delegate revocation right" `Quick test_delegate_revocation_right;
          Alcotest.test_case "revocation right dies with role" `Quick test_delegate_revocation_dies_with_role;
        ] );
      ( "role-based-revocation",
        [
          Alcotest.test_case "fire" `Quick test_role_based_revocation_fire;
          Alcotest.test_case "rehire" `Quick test_role_based_revocation_rehire;
          Alcotest.test_case "wrong revoker" `Quick test_role_based_revocation_wrong_revoker;
        ] );
      ("election", [ Alcotest.test_case "golf quorum" `Quick test_golf_quorum ]);
      ( "validation",
        [
          Alcotest.test_case "failure classes" `Quick test_validation_failure_classes;
          Alcotest.test_case "cache" `Quick test_validation_cache;
          Alcotest.test_case "rolling secrets" `Quick test_rolling_secret_invalidates_old_certs;
        ] );
      ( "distribution",
        [
          Alcotest.test_case "cascade on logout" `Quick test_cross_service_cascade_on_logout;
          Alcotest.test_case "partition marks unknown" `Quick test_partition_marks_unknown;
          Alcotest.test_case "entry fails closed" `Quick test_entry_fails_closed_when_issuer_unreachable;
        ] );
      ( "interop",
        [
          Alcotest.test_case "password service" `Quick test_password_service;
          Alcotest.test_case "loader service" `Quick test_loader_service;
          Alcotest.test_case "org role bridge" `Quick test_orgrole_bridge;
          Alcotest.test_case "high score table" `Quick test_high_score_table;
        ] );
      ("gc", [ Alcotest.test_case "after churn" `Quick test_gc_after_churn ]);
      ( "caches",
        [
          Alcotest.test_case "sig cache cap holds" `Quick test_sig_cache_cap_holds;
          Alcotest.test_case "residual cache reused" `Quick test_residual_cache_reused;
          Alcotest.test_case "62-role bit-set limit" `Quick test_role_bitset_limit;
        ] );
    ]
