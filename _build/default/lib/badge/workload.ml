module Engine = Oasis_sim.Engine
module Prng = Oasis_util.Prng

type person = { p_name : string; p_badge : int; p_home : string }

type roamer = {
  r_person : person;
  mutable r_site : Site.t;
}

type t = {
  w_engine : Engine.t;
  w_prng : Prng.t;
  w_sites : Site.t array;
  w_roamers : roamer list;
  w_mean_dwell : float;
  w_travel_probability : float;
  w_zipf_s : float;
  mutable w_sightings : int;
  mutable w_site_changes : int;
  mutable w_started : bool;
}

let create engine ~seed ~sites ~people_per_site ?(mean_dwell = 5.0)
    ?(travel_probability = 0.05) ?(zipf_s = 1.1) () =
  let prng = Prng.create seed in
  let next_badge = ref 100 in
  let roamers =
    List.concat_map
      (fun site ->
        List.init people_per_site (fun i ->
            let badge = !next_badge in
            incr next_badge;
            let name = Printf.sprintf "%s-user%d" (Site.name site) i in
            Site.register_badge site ~badge ~user:name;
            { r_person = { p_name = name; p_badge = badge; p_home = Site.name site }; r_site = site }))
      sites
  in
  {
    w_engine = engine;
    w_prng = prng;
    w_sites = Array.of_list sites;
    w_roamers = roamers;
    w_mean_dwell = mean_dwell;
    w_travel_probability = travel_probability;
    w_zipf_s = zipf_s;
    w_sightings = 0;
    w_site_changes = 0;
    w_started = false;
  }

let move t roamer =
  (* Occasionally travel to a uniformly chosen other site; otherwise pick a
     room by Zipf popularity within the current site. *)
  if Array.length t.w_sites > 1 && Prng.float t.w_prng 1.0 < t.w_travel_probability then begin
    let rec other () =
      let s = t.w_sites.(Prng.int t.w_prng (Array.length t.w_sites)) in
      if String.equal (Site.name s) (Site.name roamer.r_site) then other () else s
    in
    roamer.r_site <- other ();
    t.w_site_changes <- t.w_site_changes + 1
  end;
  let site = roamer.r_site in
  let rooms = Array.of_list (Site.rooms site) in
  let room = rooms.(Prng.zipf t.w_prng ~n:(Array.length rooms) ~s:t.w_zipf_s) in
  Site.sight site ~badge:roamer.r_person.p_badge ~home:roamer.r_person.p_home ~room;
  t.w_sightings <- t.w_sightings + 1

let start t =
  if not t.w_started then begin
    t.w_started <- true;
    List.iter
      (fun roamer ->
        let rec schedule () =
          let dwell = Prng.exponential t.w_prng ~mean:t.w_mean_dwell in
          Engine.schedule t.w_engine ~delay:dwell (fun () ->
              move t roamer;
              schedule ())
        in
        schedule ())
      t.w_roamers
  end

let people t = List.map (fun r -> r.r_person) t.w_roamers
let sightings t = t.w_sightings
let site_changes t = t.w_site_changes
