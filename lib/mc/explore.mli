(** Exhaustive small-scope exploration of fault interleavings.

    Stateless (CHESS-style) model checking over {!Scenario} specs: a
    schedule is the list of choice indices taken at counted decision points,
    and each run re-executes the whole deterministic scenario under its
    schedule via the engine's single-step scheduler hook
    ({!Oasis_sim.Engine.set_scheduler}).  Depth-first search over schedule
    prefixes covers every reachable interleaving of message deliveries,
    timers, stable-storage flushes, scenario actions and fault injections
    inside the scenario's branching window, up to the depth bound — reduced
    (soundly) by sleep sets over commuting events and by state-fingerprint
    pruning ({!Scenario.fingerprint}). *)

type params = {
  depth : int;  (** max counted decision points per run *)
  window : float;
      (** reorder window: an event is eligible at a decision point when its
          deadline is within this many seconds of the earliest pending one *)
  max_branch : int;  (** alternatives considered per decision point *)
  max_runs : int;  (** exploration budget; exceeding it is reported *)
  reduce : bool;  (** sleep sets + fingerprint pruning (off = naive) *)
}

val default_params : params
(** depth 12, window 0.1 s, max_branch 3, max_runs 100_000, reduce on. *)

(** {1 Single runs} *)

type decision = {
  d_fp : int64;
  d_eligible : Oasis_sim.Engine.event array;
  d_choice : int;
  d_sleep : int list;
}

type run_result = {
  r_decisions : decision list;
  r_choices : int list;
  r_violations : (string * string) list;  (** (invariant, detail), oldest first *)
  r_marks : (string * string) list;
  r_outcomes : (string * string * string * string) list;
      (** principal, key, expected, found *)
}

val run_schedule :
  ?seed:int64 -> ?twin:Scenario.twin -> Scenario.t -> params -> int list -> run_result
(** Execute one schedule to the scenario horizon and judge all invariants.
    Choices beyond the schedule follow the default (earliest-deadline)
    order. *)

val twin_of : ?seed:int64 -> Scenario.t -> params -> Scenario.twin option
(** The crash-free reference run, when the scenario asserts
    [Crash_equiv]. *)

val host_of_tag : string -> string option
(** The commutation domain of an engine tag: [d:]/[t:]/[s:] events name
    their host; actions and fault injections ([a:]/[f:]) are global. *)

(** {1 Exploration} *)

type counterexample = { cx_schedule : int list; cx_invariant : string; cx_detail : string }

type report = {
  rp_runs : int;
  rp_decisions : int;
  rp_distinct_states : int;  (** distinct fingerprints expanded *)
  rp_pruned_sleep : int;  (** branches skipped by sleep sets *)
  rp_pruned_fp : int;  (** frontier nodes skipped as already-expanded states *)
  rp_frontier_peak : int;
  rp_exhaustive : bool;  (** false when [max_runs] cut exploration short *)
  rp_violations : counterexample list;
}

val explore : ?seed:int64 -> Scenario.t -> params -> report
(** Explore every (unreduced-reachable) interleaving within the window and
    depth bound.  With [reduce = false], pure enumeration — the naive
    baseline the reductions are measured against. *)

val seed_sweep : ?twin:Scenario.twin -> Scenario.t -> params -> seeds:int -> counterexample list
(** The conventional-testing baseline: the scenario under [seeds] different
    network seeds, default scheduling throughout.  Returns whatever
    violations those runs happen to hit. *)

val minimize : ?seed:int64 -> Scenario.t -> params -> counterexample -> counterexample
(** Greedily shrink a counterexample schedule (zero choices from the tail,
    keep what still violates the same invariant, strip trailing zeros).
    Every probe is one re-execution. *)

(** {1 Persistent, replayable schedules} *)

type schedule_file = {
  sf_scenario : string;
  sf_invariant : string;
  sf_detail : string;
  sf_choices : int list;
  sf_depth : int;
  sf_window : float;
  sf_max_branch : int;
  sf_seed : int64;
}

val schedule_file_of_cx : Scenario.t -> params -> ?seed:int64 -> counterexample -> schedule_file
val schedule_to_json : schedule_file -> Oasis_util.Json.t
val schedule_of_json : Oasis_util.Json.t -> (schedule_file, string) result
val save_schedule : string -> schedule_file -> unit
val load_schedule : string -> (schedule_file, string) result

val replay : Scenario.t -> schedule_file -> run_result
(** Re-execute a persisted schedule under its recorded parameters and
    seed. *)
