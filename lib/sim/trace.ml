(* Causal spans over simulated time.

   A context is deliberately tiny — trace id, span id, and the true time at
   which the trace's root opened — so it can ride any message: [Net.send]
   captures the ambient context at send time and restores it around the
   delivery closure, and the event broker stores one per coalesced item.
   Carrying [origin] in the context means any downstream hop can compute
   the end-to-end latency of the causal chain it sits on without a registry
   of open spans. *)

type ctx = { c_trace : int; c_span : int; c_origin : float }

type span = {
  sp_trace : int;
  sp_id : int;
  sp_parent : int option;
  sp_name : string;
  sp_origin : float;  (* root start of the enclosing trace *)
  sp_start : float;
  mutable sp_end : float;  (* [nan] while the span is open *)
  mutable sp_attrs : (string * string) list;  (* reverse order of addition *)
}

type t = {
  clock : unit -> float;  (* deterministic sim-time source *)
  mutable enabled : bool;
  capacity : int;
  ring : span option array;  (* finished spans, circular *)
  mutable head : int;  (* next write slot *)
  mutable stored : int;
  mutable dropped : int;
  mutable next_trace : int;
  mutable next_span : int;
  mutable ambient : ctx option;
  open_tbl : (int, span) Hashtbl.t;  (* span id -> still-open span *)
}

let create ?(capacity = 4096) clock =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be >= 1";
  {
    clock;
    enabled = false;
    capacity;
    ring = Array.make capacity None;
    head = 0;
    stored = 0;
    dropped = 0;
    next_trace = 1;
    next_span = 1;
    ambient = None;
    open_tbl = Hashtbl.create 64;
  }

let enabled t = t.enabled
let set_enabled t on = t.enabled <- on

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.head <- 0;
  t.stored <- 0;
  t.dropped <- 0;
  Hashtbl.reset t.open_tbl

let current t = if t.enabled then t.ambient else None

let with_ctx t ctx f =
  if not t.enabled then f ()
  else begin
    let saved = t.ambient in
    t.ambient <- ctx;
    Fun.protect ~finally:(fun () -> t.ambient <- saved) f
  end

(* Spans from a disabled tracer are this shared placeholder: [finish] and
   [add_attr] recognise it physically and do nothing, so instrumented code
   needs no enabled-checks of its own. *)
let null_span =
  {
    sp_trace = 0;
    sp_id = 0;
    sp_parent = None;
    sp_name = "";
    sp_origin = 0.0;
    sp_start = 0.0;
    sp_end = 0.0;
    sp_attrs = [];
  }

let start t ?parent name =
  if not t.enabled then null_span
  else begin
    let parent = match parent with Some _ as p -> p | None -> t.ambient in
    let now = t.clock () in
    let trace, origin, parent_id =
      match parent with
      | Some c -> (c.c_trace, c.c_origin, Some c.c_span)
      | None ->
          let id = t.next_trace in
          t.next_trace <- id + 1;
          (id, now, None)
    in
    let id = t.next_span in
    t.next_span <- id + 1;
    let sp =
      {
        sp_trace = trace;
        sp_id = id;
        sp_parent = parent_id;
        sp_name = name;
        sp_origin = origin;
        sp_start = now;
        sp_end = Float.nan;
        sp_attrs = [];
      }
    in
    Hashtbl.replace t.open_tbl id sp;
    sp
  end

let ctx_of sp = { c_trace = sp.sp_trace; c_span = sp.sp_id; c_origin = sp.sp_origin }

let add_attr sp k v = if sp != null_span then sp.sp_attrs <- (k, v) :: sp.sp_attrs

let finish t sp =
  if sp != null_span && Float.is_nan sp.sp_end then begin
    sp.sp_end <- t.clock ();
    Hashtbl.remove t.open_tbl sp.sp_id;
    if t.ring.(t.head) <> None then t.dropped <- t.dropped + 1 else t.stored <- t.stored + 1;
    t.ring.(t.head) <- Some sp;
    t.head <- (t.head + 1) mod t.capacity
  end

let with_span t ?parent name f =
  if not t.enabled then f ()
  else begin
    let sp = start t ?parent name in
    let saved = t.ambient in
    t.ambient <- Some (ctx_of sp);
    Fun.protect
      ~finally:(fun () ->
        t.ambient <- saved;
        finish t sp)
      f
  end

let spans t =
  (* Oldest first: the slot after [head] (when full) is the oldest survivor. *)
  let acc = ref [] in
  for i = t.capacity - 1 downto 0 do
    match t.ring.((t.head + i) mod t.capacity) with
    | Some sp -> acc := sp :: !acc
    | None -> ()
  done;
  !acc

let open_spans t = Hashtbl.fold (fun _ sp acc -> sp :: acc) t.open_tbl []
let dropped t = t.dropped

(* --- span accessors --- *)

let span_name sp = sp.sp_name
let span_trace sp = sp.sp_trace
let span_id sp = sp.sp_id
let span_parent sp = sp.sp_parent
let span_start sp = sp.sp_start
let span_end sp = sp.sp_end
let span_attrs sp = List.rev sp.sp_attrs
let duration sp = sp.sp_end -. sp.sp_start

let since_origin t ctx = t.clock () -. ctx.c_origin
let origin ctx = ctx.c_origin

(* --- JSON export (via the shared Oasis_util.Json emitter) --- *)

let span_to_json sp =
  let module J = Oasis_util.Json in
  let base =
    [
      ("trace", J.Int sp.sp_trace);
      ("span", J.Int sp.sp_id);
      ("parent", match sp.sp_parent with Some p -> J.Int p | None -> J.Null);
      ("name", J.Str sp.sp_name);
      ("start", J.Float sp.sp_start);
      ("end", J.Float sp.sp_end);
    ]
  in
  let attrs =
    match span_attrs sp with
    | [] -> []
    | attrs -> [ ("attrs", J.Obj (List.map (fun (k, v) -> (k, J.Str v)) attrs)) ]
  in
  J.Obj (base @ attrs)

let to_json t =
  let module J = Oasis_util.Json in
  J.to_string
    (J.Obj
       [ ("dropped", J.Int t.dropped); ("spans", J.Arr (List.map span_to_json (spans t))) ])
