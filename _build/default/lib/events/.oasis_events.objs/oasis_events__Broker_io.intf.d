lib/events/broker_io.mli: Bead Broker Oasis_sim
