type t = { mutable state : int64; mutable draws : int }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed; draws = 0 }

let copy g = { state = g.state; draws = g.draws }

let draws g = g.draws

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  g.draws <- g.draws + 1;
  mix64 g.state

let split g =
  let seed = bits64 g in
  { state = mix64 seed; draws = 0 }

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Drop to 62 bits so the value is non-negative as a native OCaml int. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 g) 2) in
  r mod bound

let float g bound =
  (* 53 random bits scaled into [0, 1). *)
  let bits = Int64.to_float (Int64.shift_right_logical (bits64 g) 11) in
  bits /. 9007199254740992.0 *. bound

let bool g = Int64.logand (bits64 g) 1L = 1L

let exponential g ~mean =
  let u = float g 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-12 else u in
  -. mean *. log u

let uniform_in g ~lo ~hi = lo +. float g (hi -. lo)

let zipf g ~n ~s =
  if n <= 0 then invalid_arg "Prng.zipf: n must be positive";
  (* Inverse-CDF sampling over the finite harmonic weights.  [n] is small in
     our workloads (rooms, files), so O(n) per sample is acceptable; weights
     are not cached because [s] may vary between calls. *)
  let total = ref 0.0 in
  for k = 1 to n do
    total := !total +. (1.0 /. Float.pow (Float.of_int k) s)
  done;
  let target = float g !total in
  let rec scan k acc =
    if k > n then n - 1
    else
      let acc = acc +. (1.0 /. Float.pow (Float.of_int k) s) in
      if acc >= target then k - 1 else scan (k + 1) acc
  in
  scan 1 0.0

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick g a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int g (Array.length a))
