(** Baseline: a {e global-view} composite detector (§6.4.1, §6.8.2).

    Prior composite-event systems (the paper cites Schwiderski-style
    buffer-and-reorder schemes) require a total order over all events: every
    notification is held until the detector is certain no earlier-stamped
    event from {e any} source can still arrive, then processed in stamp
    order.  Correct, but the detector inherits the latency of the single
    most-delayed source (fig 6.4).

    [wrap io] produces an io with exactly those semantics: subscriptions
    deliver events only once the {e global} horizon (min over all known
    sources) passes their stamp, in global stamp order.  Plugging the result
    into {!Bead.detect} yields the baseline detector measured against the
    bead machine in experiment E5. *)

val wrap : Bead.io -> Bead.io
