(* Benchmark harness: regenerates the shape of every figure / quantitative
   claim in the paper's evaluation-bearing chapters.  One experiment per
   section below; the experiment index lives in DESIGN.md and the measured
   outcomes are recorded in EXPERIMENTS.md.

   Usage: dune exec bench/main.exe            -- run everything
          dune exec bench/main.exe -- e1 e5   -- run selected experiments *)

module Engine = Oasis_sim.Engine
module Net = Oasis_sim.Net
module Stats = Oasis_sim.Stats
module Trace = Oasis_sim.Trace
module Service = Oasis_core.Service
module Cert = Oasis_core.Cert
module Credrec = Oasis_core.Credrec
module Group = Oasis_core.Group
module Principal = Oasis_core.Principal
module Baseline = Oasis_core.Baseline
module Event = Oasis_events.Event
module Broker = Oasis_events.Broker
module Broker_io = Oasis_events.Broker_io
module Bead = Oasis_events.Bead
module Composite = Oasis_events.Composite
module Local_io = Oasis_events.Local_io
module Globalview = Oasis_events.Globalview
module Custode = Oasis_mssa.Custode
module Vac = Oasis_mssa.Vac
module Bypass = Oasis_mssa.Bypass
module Site = Oasis_badge.Site
module Workload = Oasis_badge.Workload
module Disk = Oasis_store.Disk
module Wal = Oasis_store.Wal
module J = Oasis_util.Json
module V = Oasis_rdl.Value

let header title = Printf.printf "\n=== %s ===\n" title
let row fmt = Printf.printf fmt

let fresh_vci =
  let host = Principal.Host.create "benchclient" in
  let domain = Principal.Host.boot_domain host in
  fun () -> Principal.Host.new_vci host domain

type world = {
  engine : Engine.t;
  net : Net.t;
  reg : Service.registry;
  client_host : Net.host;
  mutable nhosts : int;
}

let make_world ?(latency = Net.Fixed 0.005) () =
  let engine = Engine.create () in
  let net = Net.create ~latency engine in
  let client_host = Net.add_host net "client" in
  { engine; net; reg = Service.create_registry (); client_host; nhosts = 0 }

let add_host w =
  w.nhosts <- w.nhosts + 1;
  Net.add_host w.net (Printf.sprintf "bh%d" w.nhosts)

let service ?batch w ~name ~rolefile =
  Result.get_ok (Service.create w.net (add_host w) w.reg ~name ~rolefile ?batch_notifications:batch ())

let run_for w dt = Engine.run ~until:(Engine.now w.engine +. dt) w.engine

let login_rolefile = {|
def LoggedOn(u, h) u: String h: String
LoggedOn(u, h) <-
|}

(* ------------------------------------------------------------------ *)
(* E1 — fig 4.4 vs 4.5: validation cost vs delegation-chain depth      *)
(* ------------------------------------------------------------------ *)

let e1 () =
  header "E1: validation cost vs delegation depth (fig 4.4 chaining vs fig 4.5 credential records)";
  row "%6s  %18s  %18s  %18s\n" "depth" "chain checks/use" "oasis cold checks" "oasis warm checks";
  List.iter
    (fun depth ->
      (* Baseline: capability chaining. *)
      let issuer = Baseline.Chain.create_issuer ~seed:101L () in
      let cap = ref (Baseline.Chain.issue issuer ~holder:"u0" ~role:"r" ~args:[]) in
      for i = 1 to depth - 1 do
        cap := Baseline.Chain.delegate issuer !cap ~to_:(Printf.sprintf "u%d" i)
      done;
      let c0 = Baseline.Chain.crypto_checks issuer in
      assert (Baseline.Chain.validate issuer !cap);
      let chain_checks = Baseline.Chain.crypto_checks issuer - c0 in
      (* OASIS: recursive delegation (open-meeting style), then validate. *)
      let w = make_world () in
      let svc =
        service w ~name:"Meet"
          ~rolefile:{|
def Member()
Member <- <|* Member
|}
      in
      let holder = ref (fresh_vci ()) in
      let cert =
        ref (Service.issue_arbitrary svc ~client:!holder ~roles:[ "Member" ] ~args:[])
      in
      for _ = 1 to depth - 1 do
        let next = fresh_vci () in
        let d = ref None in
        Service.request_delegation svc ~client_host:w.client_host ~delegator:!holder
          ~using:!cert ~role:"Member" ~required:[]
          (function Ok (dc, _) -> d := Some dc | Error e -> failwith e);
        run_for w 1.0;
        let got = ref None in
        Service.request_entry svc ~client_host:w.client_host ~client:next ~role:"Member"
          ~delegation:(Option.get !d)
          (function Ok c -> got := Some c | Error e -> failwith e);
        run_for w 1.0;
        holder := next;
        cert := Option.get !got
      done;
      let c1 = Service.crypto_checks svc in
      assert (Service.validate svc ~client:!holder !cert = Ok ());
      let cold = Service.crypto_checks svc - c1 in
      let c2 = Service.crypto_checks svc in
      for _ = 1 to 10 do
        ignore (Service.validate svc ~client:!holder !cert)
      done;
      let warm = Service.crypto_checks svc - c2 in
      row "%6d  %18d  %18d  %18d\n" depth chain_checks cold warm)
    [ 1; 2; 4; 8; 16; 32; 64 ];
  row "shape: chaining is O(depth) signature checks per use; OASIS is O(1) cold and 0 warm.\n"

(* ------------------------------------------------------------------ *)
(* E2 — §4.14: background traffic vs number of live credentials        *)
(* ------------------------------------------------------------------ *)

let e2 () =
  header "E2: background message traffic, refresh-based capabilities vs event-driven OASIS (§4.14)";
  let horizon = 60.0 in
  row "%8s  %22s  %26s\n" "ncerts" "refresh msgs/min" "oasis background msgs/min";
  List.iter
    (fun n ->
      (* Refresh-based: every capability re-requested before its 5 s
         lifetime expires. *)
      let w = make_world () in
      let issuer_host = add_host w in
      let issuer = Baseline.Refresh.create_issuer ~seed:77L ~lifetime:5.0 w.net issuer_host in
      for i = 1 to n do
        Baseline.Refresh.start_refresher issuer ~client_host:w.client_host
          ~holder:(Printf.sprintf "u%d" i) ~role:"r" ~on_refresh:(fun _ -> ())
      done;
      Engine.run ~until:horizon w.engine;
      let refresh_msgs =
        Stats.count (Net.stats w.net) "refresh" + Stats.count (Net.stats w.net) "refresh.reply"
      in
      (* OASIS: n certificates at a conference service resting on a login
         service; with no revocations the only background traffic is the
         single heartbeat stream between the two services. *)
      let w2 = make_world () in
      let login = service w2 ~name:"Login" ~rolefile:login_rolefile in
      let conf = service w2 ~name:"Conf" ~rolefile:{|
Member(u) <- Login.LoggedOn(u, h)*
|} in
      for i = 1 to n do
        let vci = fresh_vci () in
        let lc =
          Service.issue_arbitrary login ~client:vci ~roles:[ "LoggedOn" ]
            ~args:[ V.Str (Printf.sprintf "u%d" i); V.Str "h" ]
        in
        Service.request_entry conf ~client_host:w2.client_host ~client:vci ~role:"Member"
          ~creds:[ lc ]
          (fun _ -> ())
      done;
      Engine.run ~until:5.0 w2.engine;
      Stats.reset (Net.stats w2.net);
      Engine.run ~until:(5.0 +. horizon) w2.engine;
      let oasis_msgs =
        List.fold_left
          (fun acc (r : Stats.row) ->
            if String.length r.Stats.r_cat >= 4 && String.sub r.Stats.r_cat 0 4 = "evt." then
              acc + r.Stats.r_count
            else acc)
          0
          (Stats.report (Net.stats w2.net))
      in
      row "%8d  %22.1f  %26.1f\n" n
        (float_of_int refresh_msgs /. horizon *. 60.0)
        (float_of_int oasis_msgs /. horizon *. 60.0))
    [ 10; 50; 100; 200 ];
  row "shape: refresh traffic grows linearly with live certificates; OASIS background\n";
  row "       (heartbeats) is constant per service pair, independent of certificates.\n"

(* ------------------------------------------------------------------ *)
(* E3 — fig 5.8: custode bypassing                                     *)
(* ------------------------------------------------------------------ *)

let e3 () =
  header "E3: MSSA operation latency through a custode stack (fig 5.8)";
  row "%6s  %14s  %14s  %14s\n" "depth" "via stack (ms)" "bypass cold" "bypass warm";
  List.iter
    (fun depth ->
      let w = make_world () in
      let login = service w ~name:"Login" ~rolefile:login_rolefile in
      let bottom =
        Result.get_ok (Custode.create w.net (add_host w) w.reg ~name:"Bottom" ~admins:[ "root" ] ())
      in
      let get_access user acl =
        let vci = fresh_vci () in
        let lc =
          Service.issue_arbitrary login ~client:vci ~roles:[ "LoggedOn" ]
            ~args:[ V.Str user; V.Str "h" ]
        in
        let result = ref None in
        Custode.request_access bottom ~client_host:w.client_host ~client:vci ~login:lc ~acl
          (fun r -> result := Some r);
        run_for w 1.0;
        match !result with Some (Ok c) -> c | _ -> failwith "access"
      in
      let root_cert = get_access "root" "system" in
      ignore
        (Custode.create_acl bottom ~cert:root_cert ~id:"vacdata" ~entries:"+vac0=adrwx"
           ~meta:"system");
      let bottom_cert = get_access "vac0" "vacdata" in
      let file = Result.get_ok (Custode.create_file bottom ~cert:bottom_cert ~acl:"vacdata" ()) in
      ignore (Custode.write_file bottom ~cert:bottom_cert ~file "data");
      let rec build i below below_cert =
        if i > depth then (below, below_cert)
        else
          let vac =
            Result.get_ok
              (Vac.create w.net (add_host w) w.reg ~name:(Printf.sprintf "V%d_%d" depth i) ~below
                 ~below_cert)
          in
          build (i + 1) (Vac.Below_vac vac) (Vac.grant vac ~client:(fresh_vci ()))
      in
      let top, top_cert =
        match build 1 (Vac.Below_custode bottom) bottom_cert with
        | Vac.Below_vac v, c -> (v, c)
        | _ -> assert false
      in
      let time_read f =
        let t0 = Engine.now w.engine in
        let done_at = ref None in
        f (fun (_ : (string, string) result) -> done_at := Some (Engine.now w.engine));
        run_for w 5.0;
        match !done_at with Some t -> (t -. t0) *. 1000.0 | None -> nan
      in
      let via_stack =
        time_read (fun k -> Vac.read top ~client_host:w.client_host ~cert:top_cert ~file k)
      in
      let bp = Bypass.create bottom in
      Bypass.register_route bp ~top;
      let cold =
        time_read (fun k -> Bypass.read bp ~client_host:w.client_host ~cert:top_cert ~file k)
      in
      let warm =
        time_read (fun k -> Bypass.read bp ~client_host:w.client_host ~cert:top_cert ~file k)
      in
      row "%6d  %14.2f  %14.2f  %14.2f\n" depth via_stack cold warm)
    [ 1; 2; 3; 4; 5 ];
  row "shape: stack latency grows with depth; warm bypass is flat (~one round trip).\n"

(* ------------------------------------------------------------------ *)
(* E4 — §5.4–5.7: shared ACLs vs per-file ACLs                         *)
(* ------------------------------------------------------------------ *)

let e4 () =
  header "E4: ACL objects and signature checks, per-file vs shared ACLs (§5.4)";
  let nfiles = 60 in
  let login_and_custode name =
    let w = make_world () in
    let login = service w ~name:"Login" ~rolefile:login_rolefile in
    let cust =
      Result.get_ok (Custode.create w.net (add_host w) w.reg ~name ~admins:[ "root" ] ())
    in
    let get_access user acl =
      let vci = fresh_vci () in
      let lc =
        Service.issue_arbitrary login ~client:vci ~roles:[ "LoggedOn" ]
          ~args:[ V.Str user; V.Str "h" ]
      in
      let result = ref None in
      Custode.request_access cust ~client_host:w.client_host ~client:vci ~login:lc ~acl (fun r ->
          result := Some r);
      run_for w 1.0;
      match !result with Some (Ok c) -> c | _ -> failwith "access"
    in
    (w, cust, get_access)
  in
  (* Shared: one ACL, one certificate, N files. *)
  let _, cust, get_access = login_and_custode "FFC1" in
  let root = get_access "root" "system" in
  ignore (Custode.create_acl cust ~cert:root ~id:"proj" ~entries:"+dm=adrwx" ~meta:"system");
  let dm = get_access "dm" "proj" in
  let c0 = Service.crypto_checks (Custode.service cust) in
  let files =
    List.init nfiles (fun _ -> Result.get_ok (Custode.create_file cust ~cert:dm ~acl:"proj" ()))
  in
  List.iter (fun f -> ignore (Custode.read_file cust ~cert:dm ~file:f)) files;
  let shared_checks = Service.crypto_checks (Custode.service cust) - c0 in
  let shared_acls = Custode.acl_count cust in
  (* Per-file: one ACL and one certificate per file. *)
  let _, cust2, get_access2 = login_and_custode "FFC2" in
  let root2 = get_access2 "root" "system" in
  let certs = List.init nfiles (fun i ->
      let acl = Printf.sprintf "acl%d" i in
      ignore (Custode.create_acl cust2 ~cert:root2 ~id:acl ~entries:"+dm=adrwx" ~meta:"system");
      (get_access2 "dm" acl, acl))
  in
  let c1 = Service.crypto_checks (Custode.service cust2) in
  let certs_and_files =
    List.map (fun (cert, acl) ->
        (cert, Result.get_ok (Custode.create_file cust2 ~cert ~acl ()))) certs
  in
  List.iter (fun (cert, file) -> ignore (Custode.read_file cust2 ~cert ~file)) certs_and_files;
  let perfile_checks = Service.crypto_checks (Custode.service cust2) - c1 in
  let perfile_acls = Custode.acl_count cust2 in
  row "%-28s  %12s  %16s\n" "scheme" "ACL objects" "sig checks, create+read N";
  row "%-28s  %12d  %16d\n" "shared ACL (1 group)" shared_acls shared_checks;
  row "%-28s  %12d  %16d\n" "per-file ACLs" perfile_acls perfile_checks;
  row "shape: shared ACLs collapse both the policy objects and the crypto cost.\n"

(* ------------------------------------------------------------------ *)
(* E5 — fig 6.4: composite detection latency under per-source delay    *)
(* ------------------------------------------------------------------ *)

let e5 () =
  header "E5: composite-event detection latency under a delayed source (fig 6.4)";
  row "%12s  %18s  %20s\n" "delay (s)" "bead machine (s)" "global view (s)";
  List.iter
    (fun delta ->
      let run wrap =
        let l = Local_io.create () in
        let io = wrap (Local_io.io l) in
        let detected_at = ref None in
        let _ =
          Bead.detect io ~start:0.0
            (Composite.parse "$s15.Seen(A, R); $s15.Seen(B, R) - s15.Seen(A, Rp)")
            ~on_occur:(fun _ -> if !detected_at = None then detected_at := Some (Local_io.now l))
        in
        (* The delayed source (room T14's sensor) holds its horizon. *)
        Local_io.hold_horizon l "s14";
        ignore (Local_io.signal l ~source:"s14" ~stamp:0.1 "Ping" []);
        Local_io.set_time l 1.0;
        ignore (Local_io.signal l ~source:"s15" "Seen" [ V.Str "roger"; V.Str "T15" ]);
        Local_io.set_time l 2.0;
        ignore (Local_io.signal l ~source:"s15" "Seen" [ V.Str "giles"; V.Str "T15" ]);
        (* The delayed source catches up delta seconds later. *)
        Local_io.set_time l (2.0 +. delta);
        Local_io.release_horizon l "s14";
        Local_io.set_time l (3.0 +. delta);
        match !detected_at with Some t -> t -. 2.0 | None -> nan
      in
      let bead = run (fun io -> io) in
      let gv = run Globalview.wrap in
      row "%12.1f  %18.3f  %20.3f\n" delta bead gv)
    [ 0.0; 0.5; 1.0; 2.0; 4.0 ];
  row "shape: the bead machine's latency is independent of the delayed source;\n";
  row "       the global-view baseline inherits the worst source delay.\n"

(* ------------------------------------------------------------------ *)
(* E6 — §6.8.1: the registration race                                  *)
(* ------------------------------------------------------------------ *)

let e6 () =
  header "E6: registration race — pre/retrospective registration vs alternatives (§6.8.1)";
  (* Scenario: OwnsBadge(u, b) is learned, then Seen(b, r) fires before the
     (latency-delayed) registration for Seen can reach the server. *)
  let trial strategy =
    let engine = Engine.create () in
    let net = Net.create ~latency:(Net.Fixed 0.05) engine in
    let shost = Net.add_host net "server" in
    let chost = Net.add_host net "watcher" in
    let srv = Broker.create_server net shost ~name:"badge" ~heartbeat:0.5 () in
    let session = ref None in
    Broker.connect net chost srv ~on_result:(function Ok s -> session := Some s | Error _ -> ()) ();
    Engine.run ~until:1.0 engine;
    let s = Option.get !session in
    let detections = ref 0 and deliveries = ref 0 in
    let seen_tpl b = Event.template "Seen" [ Event.Lit (V.Int b); Event.Any ] in
    (match strategy with
    | `Eager ->
        (* Register for every Seen up front: correct but noisy. *)
        ignore
          (Broker.register s (Event.template "Seen" [ Event.Any; Event.Any ]) (fun e ->
               incr deliveries;
               if e.Event.params.(0) = V.Int 7 then incr detections))
    | `Naive | `Retro ->
        ignore
          (Broker.register s (Event.template "OwnsBadge" [ Event.Any; Event.Any ]) (fun e ->
               match e.Event.params with
               | [| _; V.Int b |] ->
                   let since = match strategy with `Retro -> Some e.Event.stamp | _ -> None in
                   ignore
                     (Broker.register s ?since (seen_tpl b) (fun _ ->
                          incr deliveries;
                          incr detections))
               | _ -> ())));
    Engine.run ~until:2.0 engine;
    (* Background sightings of other badges. *)
    for i = 0 to 199 do
      Engine.schedule engine ~delay:(0.01 *. float_of_int i) (fun () ->
          ignore (Broker.signal srv "Seen" [ V.Int (100 + (i mod 20)); V.Str "hall" ]))
    done;
    (* The race: ownership learned, the badge seen 20 ms later — inside the
       50 ms registration latency. *)
    Engine.schedule engine ~delay:1.0 (fun () ->
        ignore (Broker.signal srv "OwnsBadge" [ V.Str "rjh"; V.Int 7 ]));
    Engine.schedule engine ~delay:1.02 (fun () ->
        ignore (Broker.signal srv "Seen" [ V.Int 7; V.Str "T14" ]));
    Engine.run ~until:10.0 engine;
    (!detections, !deliveries)
  in
  let naive_d, naive_t = trial `Naive in
  let retro_d, retro_t = trial `Retro in
  let eager_d, eager_t = trial `Eager in
  row "%-34s  %10s  %14s\n" "strategy" "detected" "notifications";
  row "%-34s  %10d  %14d\n" "lookup-then-register (racy)" naive_d naive_t;
  row "%-34s  %10d  %14d\n" "retrospective registration" retro_d retro_t;
  row "%-34s  %10d  %14d\n" "eager wildcard registration" eager_d eager_t;
  row "shape: naive misses the raced event; retrospective catches it with minimal traffic;\n";
  row "       eager catches it but pays a notification per irrelevant sighting.\n"

(* ------------------------------------------------------------------ *)
(* E7 — §6.8.2–6.8.3: heartbeat period trade-off                       *)
(* ------------------------------------------------------------------ *)

let e7 () =
  header "E7: heartbeat period vs detection delay and message cost (§6.8.2-6.8.3)";
  row "%14s  %20s  %18s\n" "heartbeat (s)" "A-B detect delay (s)" "hb msgs / minute";
  List.iter
    (fun hb ->
      let engine = Engine.create () in
      let net = Net.create ~latency:(Net.Fixed 0.005) engine in
      let ahost = Net.add_host net "srvA" and bhost = Net.add_host net "srvB" in
      let chost = Net.add_host net "watcher" in
      let sa = Broker.create_server net ahost ~name:"A" ~heartbeat:hb () in
      let sb = Broker.create_server net bhost ~name:"B" ~heartbeat:hb () in
      ignore sb;
      let sessions = ref [] in
      List.iter
        (fun srv ->
          Broker.connect net chost srv
            ~on_result:(function Ok s -> sessions := s :: !sessions | Error _ -> ())
            ())
        [ sa; sb ];
      Engine.run ~until:1.0 engine;
      let io = Broker_io.make net chost !sessions in
      let detected = ref None in
      let _ =
        Bead.detect io ~start:1.0
          (Composite.parse "A.Evt() - B.Evt()")
          ~on_occur:(fun _ -> if !detected = None then detected := Some (Engine.now engine))
      in
      Engine.run ~until:2.0 engine;
      Stats.reset (Net.stats net);
      let fired_at = 5.0 in
      Engine.schedule engine ~delay:(fired_at -. Engine.now engine) (fun () ->
          ignore (Broker.signal sa "Evt" []));
      Engine.run ~until:60.0 engine;
      let delay = match !detected with Some t -> t -. fired_at | None -> nan in
      let msgs = Stats.count (Net.stats net) "evt.heartbeat" in
      row "%14.2f  %20.3f  %18.1f\n" hb delay (float_of_int msgs /. 58.0 *. 60.0))
    [ 0.25; 0.5; 1.0; 2.0; 4.0 ];
  row "shape: detection delay grows with the heartbeat period (~up to one period);\n";
  row "       heartbeat traffic falls as 1/period — the paper's tunable trade-off.\n"

(* ------------------------------------------------------------------ *)
(* E8 — §4.9–4.10: revocation cascade across service chains            *)
(* ------------------------------------------------------------------ *)

let e8 () =
  header "E8: revocation propagation latency across a chain of services (§4.9)";
  row "%8s  %22s\n" "services" "cascade latency (ms)";
  List.iter
    (fun chain ->
      let w = make_world () in
      (* Unbatched notifications: this experiment measures the ms-scale
         per-event cascade latency; batching trades that latency for
         message count (measured by e15). *)
      let first = service ~batch:false w ~name:"S1" ~rolefile:{|
def R(u) u: String
R(u) <-
|} in
      let services =
        first
        :: List.init (chain - 1) (fun i ->
               let n = i + 2 in
               service ~batch:false w ~name:(Printf.sprintf "S%d" n)
                 ~rolefile:(Printf.sprintf "R(u) <- S%d.R(u)*" (n - 1)))
      in
      let client = fresh_vci () in
      let base = Service.issue_arbitrary first ~client ~roles:[ "R" ] ~args:[ V.Str "u" ] in
      let cert =
        List.fold_left
          (fun prev svc ->
            if Service.name svc = "S1" then prev
            else begin
              let got = ref None in
              Service.request_entry svc ~client_host:w.client_host ~client ~role:"R"
                ~creds:[ prev ]
                (function Ok c -> got := Some c | Error e -> failwith e);
              run_for w 1.0;
              Option.get !got
            end)
          base services
      in
      let last = List.nth services (chain - 1) in
      run_for w 3.0;
      assert (Service.validate last ~client cert = Ok ());
      (* Revoke at the root and watch the leaf. *)
      let t0 = Engine.now w.engine in
      Service.revoke_certificate first base;
      let revoked_at = ref None in
      let rec poll () =
        if Service.validate last ~client cert <> Ok () then revoked_at := Some (Engine.now w.engine)
        else if Engine.now w.engine -. t0 < 10.0 then Engine.schedule w.engine ~delay:0.002 poll
      in
      poll ();
      run_for w 12.0;
      let latency = match !revoked_at with Some t -> (t -. t0) *. 1000.0 | None -> nan in
      row "%8d  %22.1f\n" chain latency)
    [ 1; 2; 3; 4; 6; 8 ];
  row "shape: cascade latency is linear in chain length (one event hop per service).\n"

(* ------------------------------------------------------------------ *)
(* E9 — micro-benchmarks (Bechamel)                                    *)
(* ------------------------------------------------------------------ *)

let e9 () =
  header "E9: micro-costs (Bechamel; ns per operation)";
  let open Bechamel in
  let rolefile_src =
    {|
def LoggedOn(u, h) u: String h: String
Chair <- Login.LoggedOn("jmb", h)
Member(u) <- Login.LoggedOn(u, h)* <|* Chair : (u in staff)*
|}
  in
  let secrets = Oasis_util.Signing.Rolling.create (Oasis_util.Prng.create 9L) in
  let cert =
    Cert.sign_rmc secrets ~length:16
      {
        Cert.holder = fresh_vci ();
        service = "svc";
        rolefile = "main";
        roles = Oasis_util.Bitset.of_list [ 0 ];
        args = [ V.Str "dm" ];
        crr = { Credrec.index = 0; magic = 1 };
        issued_at = 0.0;
        rmc_sig = "";
      }
  in
  let tpl = Event.template "Seen" [ Event.Var "b"; Event.Lit (V.Str "T14") ] in
  let ev = Event.make ~name:"Seen" ~source:"m" ~stamp:1.0 [ V.Int 12; V.Str "T14" ] in
  let table = Credrec.create_table () in
  let deep_leaf = Credrec.leaf table () in
  let _top =
    let rec build node n =
      if n = 0 then node
      else
        build (Credrec.combine_fresh table [ (node, false); (Credrec.leaf table (), false) ]) (n - 1)
    in
    build deep_leaf 10
  in
  let flip = ref Credrec.False in
  let conf, jmb, chair =
    let w = make_world () in
    let login = service w ~name:"Login" ~rolefile:login_rolefile in
    let conf = service w ~name:"Conf" ~rolefile:rolefile_src in
    Group.add (Service.group conf "staff") (V.Str "dm");
    let jmb = fresh_vci () in
    let jc =
      Service.issue_arbitrary login ~client:jmb ~roles:[ "LoggedOn" ]
        ~args:[ V.Str "jmb"; V.Str "h" ]
    in
    let chair = ref None in
    Service.request_entry conf ~client_host:w.client_host ~client:jmb ~role:"Chair" ~creds:[ jc ]
      (function Ok c -> chair := Some c | Error e -> failwith e);
    run_for w 2.0;
    (conf, jmb, Option.get !chair)
  in
  let tests =
    [
      Test.make ~name:"rdl-parse+infer"
        (Staged.stage (fun () ->
             match Oasis_rdl.Parser.parse_result rolefile_src with
             | Ok rf -> ignore (Oasis_rdl.Infer.infer rf)
             | Error _ -> assert false));
      Test.make ~name:"cert-sign"
        (Staged.stage (fun () -> ignore (Cert.sign_rmc secrets ~length:16 cert)));
      Test.make ~name:"cert-verify"
        (Staged.stage (fun () -> ignore (Cert.verify_rmc secrets cert)));
      Test.make ~name:"validate-cached"
        (Staged.stage (fun () -> ignore (Service.validate conf ~client:jmb chair)));
      Test.make ~name:"template-match" (Staged.stage (fun () -> ignore (Event.matches tpl ev)));
      Test.make ~name:"credrec-flip-depth10"
        (Staged.stage (fun () ->
             flip := (match !flip with Credrec.True -> Credrec.False | _ -> Credrec.True);
             Credrec.set_leaf table deep_leaf !flip));
      Test.make ~name:"composite-parse"
        (Staged.stage (fun () ->
             ignore (Composite.parse "$Seen(A, R); $Seen(B, R) - Seen(A, Rp)")));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analysed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> row "%-28s  %12.1f ns/op\n" name est
          | _ -> row "%-28s  %12s\n" name "n/a")
        analysed)
    tests

(* ------------------------------------------------------------------ *)
(* E10 — ch. 7: event-security overhead                                *)
(* ------------------------------------------------------------------ *)

let e10 () =
  header "E10: event security overhead — unpoliced vs ERDL-filtered vs proxy (fig 7.3)";
  let deliver_through ~policed ~proxied =
    let engine = Engine.create () in
    let net = Net.create ~latency:(Net.Fixed 0.005) engine in
    let reg = Service.create_registry () in
    let site = Site.create net reg ~name:"S" ~rooms:[ "r1" ] ~heartbeat:0.5 () in
    Site.register_badge site ~badge:7 ~user:"me";
    let nsvc =
      Result.get_ok
        (Service.create net (Net.add_host net "ns") reg ~name:"Namer"
           ~rolefile:{|
def OwnsBadge(u, b) u: String b: Integer
OwnsBadge(u, b) <-
|} ())
    in
    let rules =
      Result.get_ok (Oasis_esec.Erdl.parse "allow Namer.OwnsBadge(u, b) : Seen(b, *)")
    in
    if policed then Oasis_esec.Policy.install (Site.master site) ~registry:reg ~rules;
    let upstream = Site.master site in
    let target =
      if proxied then
        Oasis_esec.Policy.Proxy.broker
          (Oasis_esec.Policy.Proxy.create net (Net.add_host net "proxyh") ~name:"S-export"
             ~upstream ~registry:reg ~rules ())
      else upstream
    in
    Engine.run ~until:1.0 engine;
    let me = fresh_vci () in
    let cert =
      Service.issue_arbitrary nsvc ~client:me ~roles:[ "OwnsBadge" ] ~args:[ V.Str "me"; V.Int 7 ]
    in
    let chost = Net.add_host net "watcher" in
    let got_at = ref None in
    Broker.connect net chost target
      ~credentials:
        (if policed || proxied then [ Oasis_esec.Policy.token_of_cert cert ] else [])
      ~on_result:(function
        | Ok s ->
            ignore
              (Broker.register s (Event.template "Seen" [ Event.Any; Event.Any ]) (fun _ ->
                   if !got_at = None then got_at := Some (Engine.now engine)))
        | Error e -> failwith e)
      ();
    Engine.run ~until:3.0 engine;
    let t0 = Engine.now engine in
    Site.sight site ~badge:7 ~home:"S" ~room:"r1";
    Engine.run ~until:6.0 engine;
    match !got_at with Some t -> (t -. t0) *. 1000.0 | None -> nan
  in
  let plain = deliver_through ~policed:false ~proxied:false in
  let policed = deliver_through ~policed:true ~proxied:false in
  (* With a proxy the exporting site's policy lives at the proxy; the master
     itself stays open to trusted local infrastructure (fig 7.3). *)
  let proxied = deliver_through ~policed:false ~proxied:true in
  row "%-32s  %16s\n" "configuration" "delivery (ms)";
  row "%-32s  %16.2f\n" "unpoliced local" plain;
  row "%-32s  %16.2f\n" "ERDL-filtered local" policed;
  row "%-32s  %16.2f\n" "remote via policy proxy" proxied;
  row "shape: local filtering costs nothing at delivery time; the proxy adds one hop.\n"

(* ------------------------------------------------------------------ *)
(* E11 — figs 6.2–6.3: inter-site protocol message economy             *)
(* ------------------------------------------------------------------ *)

let e11 () =
  header "E11: inter-site badge protocol messages (fig 6.2) vs naive broadcast";
  let engine = Engine.create () in
  let net = Net.create ~latency:(Net.Fixed 0.005) engine in
  let reg = Service.create_registry () in
  let nsites = 3 in
  let sites =
    List.init nsites (fun i ->
        Site.create net reg
          ~name:(Printf.sprintf "Site%d" i)
          ~rooms:[ "a"; "b"; "c"; "d" ] ~heartbeat:1.0 ())
  in
  let wl =
    Workload.create engine ~seed:13L ~sites ~people_per_site:8 ~mean_dwell:2.0
      ~travel_probability:0.1 ()
  in
  Workload.start wl;
  Engine.run ~until:300.0 engine;
  let intersite =
    Stats.count (Net.stats net) "badge.intersite"
    + Stats.count (Net.stats net) "badge.intersite.reply"
    + Stats.count (Net.stats net) "badge.purge"
  in
  let naive = Workload.sightings wl * (nsites - 1) in
  row "sightings:             %8d\n" (Workload.sightings wl);
  row "site changes:          %8d\n" (Workload.site_changes wl);
  row "home-pointer protocol: %8d inter-site msgs (O(site changes))\n" intersite;
  row "naive broadcast:       %8d inter-site msgs (O(sightings x sites))\n" naive;
  row "shape: the protocol's traffic tracks movement between sites, not raw sightings.\n"

(* ------------------------------------------------------------------ *)
(* E12 — §3.2.2: role-entry engine scaling with rolefile size          *)
(* ------------------------------------------------------------------ *)

let e12 () =
  header "E12: role-entry cost vs rolefile size (§3.2.2, single-pass fig 3.2 semantics)";
  row "%12s  %20s  %20s\n" "statements" "single-pass (ms)" "fixpoint mode (ms)";
  List.iter
    (fun nstatements ->
      let time_mode fixpoint =
        let w = make_world ~latency:(Net.Fixed 0.0001) () in
        let buf = Buffer.create 1024 in
        Buffer.add_string buf "def Base()\nBase <-\n";
        for i = 1 to nstatements do
          Buffer.add_string buf
            (Printf.sprintf "R%d <- %s\n" i
               (if i = 1 then "Base" else Printf.sprintf "R%d" (i - 1)))
        done;
        let svc =
          Result.get_ok
            (Service.create w.net (add_host w) w.reg
               ~name:(Printf.sprintf "Scale%d%b" nstatements fixpoint)
               ~rolefile:(Buffer.contents buf) ~fixpoint_entry:fixpoint ())
        in
        let client = fresh_vci () in
        let base = Service.issue_arbitrary svc ~client ~roles:[ "Base" ] ~args:[] in
        let trials = 50 in
        let t0 = Sys.time () in
        for _ = 1 to trials do
          Service.request_entry svc ~client_host:w.client_host ~client
            ~role:(Printf.sprintf "R%d" nstatements) ~creds:[ base ]
            (fun _ -> ());
          run_for w 0.5
        done;
        (Sys.time () -. t0) /. float_of_int trials *. 1000.0
      in
      row "%12d  %20.3f  %20.3f\n" nstatements (time_mode false) (time_mode true))
    [ 1; 4; 16; 32; 60 ];
  row "shape: single-pass entry is linear in rolefile size; fixpoint mode pays extra passes.\n"

(* ------------------------------------------------------------------ *)
(* E13 — §4.8: credential-record garbage collection under churn        *)
(* ------------------------------------------------------------------ *)

let e13 () =
  header "E13: credential-record GC under membership churn (§4.8)";
  row "%10s  %12s  %12s  %14s\n" "certs" "live before" "live after" "sweep (ms)";
  List.iter
    (fun n ->
      let table = Credrec.create_table () in
      (* Each certificate: one group-membership leaf and one combining
         record; half of the certificates are then revoked (exited). *)
      let certs =
        List.init n (fun _ ->
            let leaf = Credrec.leaf table () in
            let crr = Credrec.combine_fresh table [ (leaf, false) ] in
            Credrec.set_direct_use table crr true;
            crr)
      in
      List.iteri (fun i crr -> if i mod 2 = 0 then Credrec.invalidate table crr) certs;
      let before = Credrec.live_records table in
      let t0 = Sys.time () in
      let reclaimed = ref (Credrec.gc_sweep table) in
      (* Iterate: unlinking permanent parents frees their leaves next pass. *)
      let rec settle () =
        let r = Credrec.gc_sweep table in
        if r > 0 then begin
          reclaimed := !reclaimed + r;
          settle ()
        end
      in
      settle ();
      let dt = (Sys.time () -. t0) *. 1000.0 in
      row "%10d  %12d  %12d  %14.2f\n" n before (Credrec.live_records table) dt)
    [ 100; 1000; 10000; 50000 ];
  row "shape: a sweep reclaims every revoked certificate's records; live certificates\n";
  row "       (and the leaves they depend on) survive.  Dangling references read False.\n"

(* ------------------------------------------------------------------ *)
(* E14 — §4.10: revocation convergence across a fault schedule         *)
(* ------------------------------------------------------------------ *)

let e14 () =
  header "E14: revocation convergence vs fault schedule (§4.10)";
  (* The issuing service's host crashes; the revocation happens while it
     is down; dependent services must converge (validation answers
     Revoked) shortly after the host heals.  §4.10's claim is that
     staleness — and hence recovery — is bounded by the heartbeat period,
     so the interesting number is the convergence delay measured in
     heartbeat periods, across heartbeat settings and outage lengths. *)
  let scenario ~heartbeat ~down =
    let w = make_world () in
    let svc name rolefile =
      Result.get_ok (Service.create w.net (add_host w) w.reg ~name ~rolefile ~heartbeat ())
    in
    let login = svc "Login" login_rolefile in
    let conf =
      svc "Conf"
        {|
Chair <- Login.LoggedOn("jmb", h)
Member(u) <- Login.LoggedOn(u, h)* <|* Chair : (u in staff)*
|}
    in
    Group.add (Service.group conf "staff") (V.Str "dm");
    let entry ~client ~role ?creds ?delegation () =
      let result = ref None in
      Service.request_entry conf ~client_host:w.client_host ~client ~role ?creds ?delegation
        (fun r -> result := Some r);
      run_for w 2.0;
      match !result with Some (Ok c) -> c | _ -> failwith "e14: entry failed"
    in
    let jmb = fresh_vci () in
    let jmb_cert =
      Service.issue_arbitrary login ~client:jmb ~roles:[ "LoggedOn" ]
        ~args:[ V.Str "jmb"; V.Str "ely" ]
    in
    let chair = entry ~client:jmb ~role:"Chair" ~creds:[ jmb_cert ] () in
    let dm = fresh_vci () in
    let dm_cert =
      Service.issue_arbitrary login ~client:dm ~roles:[ "LoggedOn" ]
        ~args:[ V.Str "dm"; V.Str "ely" ]
    in
    let d =
      let result = ref None in
      Service.request_delegation conf ~client_host:w.client_host ~delegator:jmb ~using:chair
        ~role:"Member"
        ~required:[ ("Login", "LoggedOn", [ V.Str "dm"; V.Str "*" ]) ]
        (fun r -> result := Some r);
      run_for w 2.0;
      match !result with Some (Ok (d, _)) -> d | _ -> failwith "e14: delegation failed"
    in
    let member = entry ~client:dm ~role:"Member" ~creds:[ dm_cert ] ~delegation:d () in
    run_for w (4.0 *. heartbeat);
    assert (Service.validate conf ~client:dm member = Ok ());
    Net.crash_host w.net (Service.host login);
    run_for w 1.0;
    Service.revoke_certificate login dm_cert;
    run_for w (down -. 1.0);
    Net.restart_host w.net (Service.host login);
    let healed = Engine.now w.engine in
    let deadline = healed +. (20.0 *. heartbeat) in
    let rec poll () =
      if Service.validate conf ~client:dm member = Error Service.Revoked then
        Some (Engine.now w.engine -. healed)
      else if Engine.now w.engine >= deadline then None
      else begin
        run_for w 0.02;
        poll ()
      end
    in
    (poll (), Net.stats w.net)
  in
  row "%10s %10s %14s %14s\n" "heartbeat" "downtime" "converge (s)" "(hb periods)";
  let last_stats = ref None in
  List.iter
    (fun (heartbeat, down) ->
      let converged, stats = scenario ~heartbeat ~down in
      last_stats := Some stats;
      match converged with
      | Some dt -> row "%10.2f %10.1f %14.2f %14.2f\n" heartbeat down dt (dt /. heartbeat)
      | None -> row "%10.2f %10.1f %14s %14s\n" heartbeat down "-" "no convergence")
    [ (0.5, 2.0); (0.5, 5.0); (1.0, 2.0); (1.0, 5.0); (2.0, 2.0); (2.0, 5.0) ];
  (match !last_stats with
  | None -> ()
  | Some stats ->
      row "\nfault & reliability counters (last run: heartbeat 2.0, downtime 5.0):\n";
      List.iter
        (fun (r : Stats.row) ->
          let cat = r.Stats.r_cat and n = r.Stats.r_count in
          let keep =
            String.starts_with ~prefix:"fault." cat
            || List.exists
                 (fun suffix -> String.ends_with ~suffix cat)
                 [ ".attempt"; ".giveup"; ".late_reply"; ".dead"; ".partitioned" ]
          in
          if keep && n > 0 then row "  %-28s %8d\n" cat n)
        (Stats.report stats));
  row "shape: convergence delay scales with the heartbeat period (a bounded number of\n";
  row "       periods after the heal), not with how long the host stayed down.\n"

(* ------------------------------------------------------------------ *)
(* E15 — scaling the revocation hot path: batched heartbeats & the     *)
(* indexed credential graph (role-entry throughput, messages per       *)
(* revocation burst at 1k/10k/100k memberships)                        *)
(* ------------------------------------------------------------------ *)

let e15 () =
  header "E15: revocation hot path at scale (batched vs per-event notification)";
  let sizes =
    match Sys.getenv_opt "OASIS_E15_SIZES" with
    | Some s -> List.filter_map int_of_string_opt (String.split_on_char ',' s)
    | None -> [ 1000; 10_000; 100_000 ]
  in
  let total_msgs w =
    List.fold_left
      (fun acc (r : Stats.row) -> acc + r.Stats.r_count)
      0
      (Stats.report (Net.stats w.net))
  in
  (* n memberships of Conf.Member(u), each resting on an external record
     mirroring a Login credential, plus a compound residual constraint so
     repeated entry exercises the compiled-residual cache.  The burst
     revokes the first min(n,1000) Login certificates and counts every
     network message until the cascade settles. *)
  let scenario ~batch ~n =
    let w = make_world () in
    let svc name rolefile = service ~batch w ~name ~rolefile in
    let login = svc "Login" login_rolefile in
    let conf =
      svc "Conf" {|
Member(u) <- Login.LoggedOn(u, h)* : ((u in staff) and (u in eng))*
|}
    in
    let staff = Service.group conf "staff" and eng = Service.group conf "eng" in
    let users = Array.init n (fun i -> Printf.sprintf "u%d" i) in
    Array.iter
      (fun u ->
        Group.add staff (V.Str u);
        Group.add eng (V.Str u))
      users;
    let clients = Array.map (fun _ -> fresh_vci ()) users in
    let login_certs =
      Array.mapi
        (fun i u ->
          Service.issue_arbitrary login ~client:clients.(i) ~roles:[ "LoggedOn" ]
            ~args:[ V.Str u; V.Str "ely" ])
        users
    in
    let enter () =
      let certs = Array.make n None in
      let t0 = Sys.time () in
      Array.iteri
        (fun i _ ->
          Service.request_entry conf ~client_host:w.client_host ~client:clients.(i)
            ~role:"Member"
            ~creds:[ login_certs.(i) ]
            (function Ok c -> certs.(i) <- Some c | Error e -> failwith ("e15 entry: " ^ e)))
        users;
      run_for w 60.0;
      let dt = Sys.time () -. t0 in
      (Array.map (function Some c -> c | None -> failwith "e15: entry did not complete") certs, dt)
    in
    let _, dt_first = enter () in
    let member_certs, dt_again = enter () in
    run_for w 5.0;
    (* Revocation burst. *)
    let burst = min n 1000 in
    let before = total_msgs w in
    for i = 0 to burst - 1 do
      Service.revoke_certificate login login_certs.(i)
    done;
    run_for w 5.0;
    let burst_msgs = total_msgs w - before in
    let final =
      Array.mapi (fun i cert -> Service.validate conf ~client:clients.(i) cert = Ok ()) member_certs
    in
    (* The cascade must reach exactly the burst's dependent memberships. *)
    Array.iteri
      (fun i ok ->
        if ok <> (i >= burst) then
          failwith (Printf.sprintf "e15: membership %d in wrong final state" i))
      final;
    let s = Net.stats w.net in
    let residual_hits = Stats.count s "oasis.residual.hit" in
    let residual_misses = Stats.count s "oasis.residual.miss" in
    (dt_first, dt_again, burst, burst_msgs, final, residual_hits, residual_misses)
  in
  row "%8s %10s %14s %14s %10s %12s %16s\n" "n" "mode" "entry (e/s)" "re-entry (e/s)" "burst"
    "burst msgs" "residual hit/miss";
  List.iter
    (fun n ->
      let fn = float_of_int n in
      let batched = scenario ~batch:true ~n in
      let d1, d2, burst, msgs_b, final_b, rh, rm = batched in
      row "%8d %10s %14.0f %14.0f %10d %12d %11d/%d\n" n "batched" (fn /. d1) (fn /. d2) burst
        msgs_b rh rm;
      (* The unbatched scheme needs one registration and one message per
         record, so it is only feasible (and only measured) at the smallest
         size — which is where the acceptance comparison is defined. *)
      if n <= 1000 then begin
        let d1', d2', _, msgs_u, final_u, _, _ = scenario ~batch:false ~n in
        row "%8d %10s %14.0f %14.0f %10d %12d\n" n "per-event" (fn /. d1') (fn /. d2') burst
          msgs_u;
        assert (final_b = final_u);
        if msgs_u < 5 * msgs_b then
          failwith
            (Printf.sprintf "e15: expected >=5x fewer messages batched (%d vs %d)" msgs_b msgs_u)
      end)
    sizes;
  row "shape: batching turns a 1k-record revocation burst from O(records) messages into\n";
  row "       O(peer links) heartbeat-piggybacked digests (>=5x fewer, same final state);\n";
  row "       re-entry outpaces first entry via the compiled-residual and signature caches.\n"

(* ------------------------------------------------------------------ *)
(* E16 — end-to-end revocation-propagation latency: causal spans over   *)
(* the invalidate -> digest -> heartbeat flush -> peer apply pipeline,  *)
(* percentiles from both the span tree and the Stats histograms, JSON   *)
(* snapshot dumped for the perf trajectory (BENCH_e16_<n>.json)         *)
(* ------------------------------------------------------------------ *)

let e16 () =
  header "E16: revocation propagation latency, end to end (spans + histograms)";
  let sizes =
    match Sys.getenv_opt "OASIS_E16_SIZES" with
    | Some s -> List.filter_map int_of_string_opt (String.split_on_char ',' s)
    | None -> [ 1000; 10_000 ]
  in
  let heartbeat = 1.0 in
  let scenario ~n =
    let w = make_world () in
    let login = service ~batch:true w ~name:"Login" ~rolefile:login_rolefile in
    let conf = service ~batch:true w ~name:"Conf" ~rolefile:{|
Member(u) <- Login.LoggedOn(u, h)*
|} in
    let users = Array.init n (fun i -> Printf.sprintf "u%d" i) in
    let clients = Array.map (fun _ -> fresh_vci ()) users in
    let login_certs =
      Array.mapi
        (fun i u ->
          Service.issue_arbitrary login ~client:clients.(i) ~roles:[ "LoggedOn" ]
            ~args:[ V.Str u; V.Str "ely" ])
        users
    in
    Array.iteri
      (fun i _ ->
        Service.request_entry conf ~client_host:w.client_host ~client:clients.(i) ~role:"Member"
          ~creds:[ login_certs.(i) ]
          (function Ok _ -> () | Error e -> failwith ("e16 entry: " ^ e)))
      users;
    run_for w 60.0;
    (* Trace only the burst: entry-phase spans would otherwise age the
       ring buffer out from under the measurement. *)
    let tr = Net.trace w.net in
    Trace.set_enabled tr true;
    Trace.clear tr;
    Stats.reset (Net.stats w.net);
    (* Stagger the revocations across many heartbeat periods so their
       arrival phase relative to the coalescing tick varies: each flush
       window yields one end-to-end sample and the samples trace out the
       full 0..heartbeat coalescing-delay distribution, not one point. *)
    let burst = min n 500 in
    let gap = 0.2 in
    for i = 0 to burst - 1 do
      Engine.schedule w.engine
        ~delay:(float_of_int i *. gap)
        (fun () -> Service.revoke_certificate login login_certs.(i))
    done;
    run_for w ((float_of_int burst *. gap) +. 10.0);
    Trace.set_enabled tr false;
    (* End-to-end latency per flush window, derived from the spans: a
       window's trace is rooted at its earliest [revoke.invalidate] and
       closed by the peer's [revoke.apply]. *)
    let spans = Trace.spans tr in
    let roots = Hashtbl.create 64 in
    List.iter
      (fun sp ->
        if Trace.span_parent sp = None && Trace.span_name sp = "revoke.invalidate" then
          Hashtbl.replace roots (Trace.span_trace sp) (Trace.span_start sp))
      spans;
    let e2e =
      List.filter_map
        (fun sp ->
          if Trace.span_name sp = "revoke.apply" then
            Option.map
              (fun root_start -> Trace.span_end sp -. root_start)
              (Hashtbl.find_opt roots (Trace.span_trace sp))
          else None)
        spans
      |> List.sort compare |> Array.of_list
    in
    let pct p =
      match Array.length e2e with
      | 0 -> 0.0
      | len ->
          let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int len)) in
          e2e.(max 0 (min (len - 1) (rank - 1)))
    in
    let samples = Array.length e2e in
    if samples = 0 then failwith "e16: no end-to-end revocation spans recorded";
    if Trace.open_spans tr <> [] then failwith "e16: revocation spans left open after settling";
    let mx = Array.fold_left Float.max 0.0 e2e in
    (* Coalescing bounds propagation by one heartbeat of buffering plus
       delivery latency; anything beyond that is a regression. *)
    if mx > 2.0 *. heartbeat then
      failwith (Printf.sprintf "e16: propagation latency %.3fs exceeds 2 heartbeats" mx);
    let s = Net.stats w.net in
    if Stats.latency_samples s "oasis.revoke.e2e" <> samples then
      failwith "e16: span-derived and histogram sample counts disagree";
    (* Stats/Trace pre-render their own JSON; parse and re-emit through
       the shared emitter with sorted keys so the snapshot diffs cleanly
       against other runs (hash-iteration order used to leak into the
       byte layout). *)
    let reparse what s =
      match J.parse s with Ok j -> j | Error e -> failwith ("e16 " ^ what ^ " json: " ^ e)
    in
    let oc = open_out (Printf.sprintf "BENCH_e16_%d.json" n) in
    output_string oc
      (J.to_string
         (J.sorted
            (J.Obj
               [
                 ("experiment", J.Str "e16");
                 ("backend", J.Str "sim");
                 ("clock_domain", J.Str "sim");
                 ("n", J.Int n);
                 ("burst", J.Int burst);
                 ("heartbeat", J.Float heartbeat);
                 ( "e2e",
                   J.Obj
                     [
                       ("samples", J.Int samples);
                       ("p50", J.Float (pct 50.0));
                       ("p99", J.Float (pct 99.0));
                       ("max", J.Float mx);
                     ] );
                 ("stats", reparse "stats" (Stats.to_json s));
                 ("trace", reparse "trace" (Trace.to_json tr));
               ])));
    output_string oc "\n";
    close_out oc;
    (samples, pct 50.0, pct 99.0, mx,
     Stats.percentile s "oasis.revoke.e2e" 50.0,
     Stats.percentile s "oasis.revoke.e2e" 99.0)
  in
  row "%8s %9s %12s %12s %12s %14s %14s\n" "n" "windows" "span p50 (s)" "span p99 (s)"
    "span max (s)" "hist p50 (s)" "hist p99 (s)";
  List.iter
    (fun n ->
      let samples, p50, p99, mx, h50, h99 = scenario ~n in
      row "%8d %9d %12.4f %12.4f %12.4f %14.4f %14.4f\n" n samples p50 p99 mx h50 h99;
      row "         snapshot written to BENCH_e16_%d.json\n" n)
    sizes;
  row "shape: propagation is bounded by one heartbeat of coalescing delay plus delivery\n";
  row "       latency, independent of membership count; the histogram percentiles agree\n";
  row "       with the span-derived ones to within one log-bucket octave.\n"

(* ------------------------------------------------------------------ *)
(* E17 — durable state: group-commit fsync coalescing, and crash        *)
(* recovery time vs log length with snapshot-bounded vs full replay.    *)
(* Snapshot emitted as BENCH_e17_<n>.json via the shared JSON emitter.  *)
(* ------------------------------------------------------------------ *)

let e17 () =
  header "E17: durability — group commit and recovery (snapshot vs full replay)";
  (* (a) Group commit: 1000 appends arriving 1 ms apart.  The coalesced
     flush must cut physical fsyncs by >=5x against fsync-per-append. *)
  let appends = 1000 in
  let fsyncs ~fsync_each =
    let engine = Engine.create () in
    let net = Net.create ~latency:(Net.Fixed 0.005) engine in
    let h = Net.add_host net "store" in
    let disk = Disk.create net h () in
    let wal = Wal.create disk ~file:"bench.wal" ~fsync_each () in
    for i = 0 to appends - 1 do
      Engine.schedule engine
        ~delay:(0.001 *. float_of_int i)
        (fun () -> Wal.append wal (Printf.sprintf "record-%04d" i))
    done;
    Engine.run ~until:5.0 engine;
    if List.length (Wal.recover wal) <> appends then failwith "e17: appends lost before crash";
    Stats.count (Net.stats net) "store.fsync"
  in
  let baseline = fsyncs ~fsync_each:true in
  let grouped = fsyncs ~fsync_each:false in
  if grouped * 5 > baseline then
    failwith (Printf.sprintf "e17: expected >=5x fsync reduction (%d vs %d)" grouped baseline);
  row "group commit: %d appends -> %d fsyncs coalesced vs %d per-append (%.1fx fewer)\n" appends
    grouped baseline
    (float_of_int baseline /. float_of_int grouped);
  (* (b) Recovery vs log length.  A fixed working set of members churns
     (enter, then revoke last round's certificates), so the log accumulates
     history while the live state stays O(members): full replay scans the
     whole history, a checkpointed service replays snapshot + short suffix. *)
  let sizes =
    match Sys.getenv_opt "OASIS_E17_SIZES" with
    | Some s -> List.filter_map int_of_string_opt (String.split_on_char ',' s)
    | None -> [ 500; 2000; 8000 ]
  in
  let members = 64 in
  let rounds_for n = max 2 ((n + (2 * members) - 1) / (2 * members)) in
  let meet_rolefile =
    {|
Chair <- Login.LoggedOn("jmb", h)
Member(u) <- Login.LoggedOn(u, h)* |>* Chair : u in staff
|}
  in
  let scenario ~rounds ~snapshot =
    let w = make_world () in
    let login = service w ~name:"Login" ~rolefile:login_rolefile in
    let meet_host = add_host w in
    let disk = Disk.create w.net meet_host () in
    let meet =
      Result.get_ok
        (Service.create w.net meet_host w.reg ~name:"Meet" ~rolefile:meet_rolefile ~disk
           ~snapshot_every:(if snapshot then 128 else max_int)
           ())
    in
    let staff = Service.group meet "staff" in
    let users = Array.init members (fun i -> Printf.sprintf "u%d" i) in
    Array.iter (fun u -> Group.add staff (V.Str u)) users;
    let clients = Array.map (fun _ -> fresh_vci ()) users in
    let logins =
      Array.mapi
        (fun i u ->
          Service.issue_arbitrary login ~client:clients.(i) ~roles:[ "LoggedOn" ]
            ~args:[ V.Str u; V.Str "ely" ])
        users
    in
    let jmb = fresh_vci () in
    let jmb_cert =
      Service.issue_arbitrary login ~client:jmb ~roles:[ "LoggedOn" ]
        ~args:[ V.Str "jmb"; V.Str "ely" ]
    in
    let chair = ref None in
    Service.request_entry meet ~client_host:w.client_host ~client:jmb ~role:"Chair"
      ~creds:[ jmb_cert ]
      (function Ok c -> chair := Some c | Error e -> failwith ("e17 chair entry: " ^ e));
    run_for w 2.0;
    let chair = match !chair with Some c -> c | None -> failwith "e17: chair entry stalled" in
    let last = Array.make members None in
    for r = 0 to rounds - 1 do
      Array.iteri
        (fun i _ ->
          Engine.schedule w.engine
            ~delay:(0.5 *. float_of_int r)
            (fun () ->
              Service.request_entry meet ~client_host:w.client_host ~client:clients.(i)
                ~role:"Member" ~creds:[ logins.(i) ]
                (function
                  | Ok c ->
                      last.(i) <- Some c;
                      if r < rounds - 1 then
                        Engine.schedule w.engine ~delay:0.25 (fun () ->
                            Service.revoke_certificate meet c)
                  | Error e -> failwith ("e17 entry: " ^ e))))
        users
    done;
    run_for w ((0.5 *. float_of_int rounds) +. 5.0);
    (* One role-based revocation so the blacklist has durable content. *)
    let fired = ref false in
    Service.revoke_role_instance meet ~client_host:w.client_host ~revoker:chair ~role:"Member"
      ~args:[ V.Str "u0" ]
      (function Ok _ -> fired := true | Error e -> failwith ("e17 fire: " ^ e));
    run_for w 2.0;
    if not !fired then failwith "e17: fire stalled";
    Service.durable_flush meet;
    run_for w 1.0;
    let log_bytes = Disk.durable_size disk ~file:"svc.Meet.wal" in
    let snap_bytes = Disk.durable_size disk ~file:"svc.Meet.snap" in
    Net.crash_host w.net meet_host;
    run_for w 1.0;
    Net.restart_host w.net meet_host;
    run_for w 5.0;
    let s = Net.stats w.net in
    if Stats.count s "oasis.recover" < 1 then failwith "e17: no recovery ran";
    let replayed = Stats.max_of s "oasis.recover.records" in
    let rec_latency = Stats.latency_max s "oasis.recover.e2e" in
    (* Correctness through the crash: the fired instance stays out, a
       surviving membership heals back to valid via reread. *)
    if not (Service.blacklisted meet ~role:"Member" ~args:[ V.Str "u0" ]) then
      failwith "e17: blacklist lost across the crash";
    (match last.(1) with
    | Some c when Service.validate meet ~client:clients.(1) c = Ok () -> ()
    | Some _ -> failwith "e17: surviving membership invalid after recovery"
    | None -> failwith "e17: no surviving certificate");
    (log_bytes, snap_bytes, replayed, rec_latency)
  in
  row "%8s %8s  %6s %11s %11s %9s %13s\n" "target" "rounds" "mode" "log bytes" "snap bytes"
    "replayed" "recover (s)";
  List.iter
    (fun n ->
      let rounds = rounds_for n in
      let flog, fsnap, frec, flat = scenario ~rounds ~snapshot:false in
      let slog, ssnap, srec, slat = scenario ~rounds ~snapshot:true in
      row "%8d %8d  %6s %11d %11d %9d %13.6f\n" n rounds "full" flog fsnap frec flat;
      row "%8d %8d  %6s %11d %11d %9d %13.6f\n" n rounds "snap" slog ssnap srec slat;
      if srec > frec then failwith "e17: snapshot recovery replayed more records than full replay";
      if rounds >= 8 && (srec * 2 > frec || slat > flat) then
        failwith
          (Printf.sprintf "e17: checkpointing did not bound replay (%d vs %d records, %.6f vs %.6f s)"
             srec frec slat flat);
      let mode tag (lb, sb, recs, lat) =
        ( tag,
          J.Obj
            [
              ("log_bytes", J.Int lb);
              ("snapshot_bytes", J.Int sb);
              ("records_replayed", J.Int recs);
              ("recover_latency_s", J.Float lat);
            ] )
      in
      let oc = open_out (Printf.sprintf "BENCH_e17_%d.json" n) in
      output_string oc
        (J.to_string
           (J.sorted
           (J.Obj
              [
                ("experiment", J.Str "e17");
                 ("backend", J.Str "sim");
                 ("clock_domain", J.Str "sim");
                ("n", J.Int n);
                ("churn_rounds", J.Int rounds);
                ("members", J.Int members);
                ( "group_commit",
                  J.Obj
                    [
                      ("appends", J.Int appends);
                      ("fsyncs_coalesced", J.Int grouped);
                      ("fsyncs_per_append", J.Int baseline);
                      ("reduction", J.Float (float_of_int baseline /. float_of_int grouped));
                    ] );
                mode "full_replay" (flog, fsnap, frec, flat);
                mode "snapshot" (slog, ssnap, srec, slat);
              ])));
      output_string oc "\n";
      close_out oc;
      row "         snapshot written to BENCH_e17_%d.json\n" n)
    sizes;
  row "shape: group commit turns 1k appends into O(elapsed/flush-interval) fsyncs (>=5x\n";
  row "       fewer); recovery time grows with durable log length, and checkpointing\n";
  row "       bounds replay to snapshot + suffix regardless of history length.\n"

(* ------------------------------------------------------------------ *)
(* E18 — static policy analysis: rdl-analyze runtime scaling over        *)
(* generated N-role federations, plus defect-corpus recall (every        *)
(* planted defect class must be reported).  Snapshot: BENCH_e18_<n>.json *)
(* ------------------------------------------------------------------ *)

let e18 () =
  let module Analyze = Oasis_rdl.Analyze in
  let module FL = Oasis_core.Federation_lint in
  header "E18: static policy analysis — defect recall and analyzer scaling";
  (* (a) Recall over a seeded defect corpus: one planted defect per check
     family; the analyzer must report every planted code. *)
  let parse = Oasis_rdl.Parser.parse in
  let corpus =
    [
      (* RDL001 unbound, RDL011 unsat, RDL004 duplicate, RDL002 unused bind *)
      ( "Pol",
        {|
Base(u) <-
Leak(u, f) <- Base(u)
Never(u) <- Base(u) : x > 5 and x < 3
Dup(u) <- Base(u)*
Dup(u) <- Base(u)*
Sloppy(u) <- Base(u) : v <- 7
|}
      );
      (* RDL005 arity (external), OASIS003 unknown role, OASIS004 external star *)
      ( "Edge",
        {|
In(u) <- Pol.Base(u, u)
Ghost(u) <- Pol.NoSuchRole(u)
Out(u) <- Elsewhere.Thing(u)*
|}
      );
      (* OASIS001 cycle with no bootstrap, OASIS002 unreachable *)
      ("CycA", {|X(u) <- CycB.Y(u)|});
      ("CycB", {|Y(u) <- CycA.X(u)
Lonely(u) <- Y(u) : u in nowhere and not (u in nowhere)|});
    ]
  in
  let fed =
    FL.make
      (List.map
         (fun (name, src) -> { FL.fl_name = name; fl_file = name; fl_rolefile = parse src })
         corpus)
  in
  let diags = FL.check ~per_file:true fed in
  let planted =
    [
      "RDL001"; "RDL002"; "RDL004"; "RDL005"; "RDL011"; "OASIS001"; "OASIS002"; "OASIS003";
      "OASIS004";
    ]
  in
  let found code = List.exists (fun d -> String.equal d.Analyze.code code) diags in
  List.iter
    (fun code -> if not (found code) then failwith ("e18: planted defect not found: " ^ code))
    planted;
  row "recall: %d/%d planted defect classes reported (%d diagnostics total)\n"
    (List.length planted) (List.length planted) (List.length diags);
  (* (b) Scaling: chain federations of R-role services; lint runtime must be
     measured end to end (inference + per-file checks + federation graph). *)
  let sizes =
    match Sys.getenv_opt "OASIS_E18_SIZES" with
    | Some s -> List.filter_map int_of_string_opt (String.split_on_char ',' s)
    | None -> [ 64; 256; 1024 ]
  in
  let roles_per_service = 8 in
  let gen_federation nroles =
    let nservices = max 1 (nroles / roles_per_service) in
    List.init nservices (fun i ->
        let buf = Buffer.create 256 in
        for j = 0 to roles_per_service - 1 do
          if i = 0 && j = 0 then Buffer.add_string buf "R0(u) <-\n"
          else if j = 0 then
            Buffer.add_string buf
              (Printf.sprintf "R0(u) <- S%d.R%d(u)* : u <> \"root\"\n" (i - 1)
                 (roles_per_service - 1))
          else
            Buffer.add_string buf (Printf.sprintf "R%d(u) <- R%d(u)*\n" j (j - 1))
        done;
        {
          FL.fl_name = Printf.sprintf "S%d" i;
          fl_file = Printf.sprintf "S%d.rdl" i;
          fl_rolefile = parse (Buffer.contents buf);
        })
  in
  row "%12s %12s %12s %14s %14s\n" "roles" "services" "diags" "lint (ms)" "us/role";
  List.iter
    (fun nroles ->
      let members = gen_federation nroles in
      let t0 = Sys.time () in
      let fed = FL.make members in
      let diags = FL.check ~per_file:true fed in
      let dt = (Sys.time () -. t0) *. 1000.0 in
      let gating = List.filter (Analyze.gates ~strict:true) diags in
      if gating <> [] then
        failwith
          (Printf.sprintf "e18: clean corpus flagged: %s"
             (Analyze.diag_to_string (List.hd gating)));
      let total = roles_per_service * List.length members in
      row "%12d %12d %12d %14.2f %14.2f\n" total (List.length members) (List.length diags) dt
        (dt *. 1000.0 /. float_of_int total);
      let oc = open_out (Printf.sprintf "BENCH_e18_%d.json" total) in
      output_string oc
        (J.to_string
           (J.sorted
           (J.Obj
              [
                ("experiment", J.Str "e18");
                 ("backend", J.Str "sim");
                 ("clock_domain", J.Str "sim");
                ("roles", J.Int total);
                ("services", J.Int (List.length members));
                ("roles_per_service", J.Int roles_per_service);
                ("diagnostics", J.Int (List.length diags));
                ("lint_ms", J.Float dt);
                ("us_per_role", J.Float (dt *. 1000.0 /. float_of_int total));
              ])));
      output_string oc "\n";
      close_out oc;
      row "         snapshot written to BENCH_e18_%d.json\n" total)
    sizes;
  row "shape: analyzer cost is near-linear in total roles (per-file passes are\n";
  row "       per-entry; the federation fixpoint converges along the chain).\n"

(* ------------------------------------------------------------------ *)
(* E19 — scenario model checking: exhaustive fault-interleaving           *)
(* exploration of the paper scenarios, DPOR+fingerprint reduction ratio   *)
(* vs naive enumeration, and the planted bug seed sweeps cannot reach.    *)
(* Snapshot: BENCH_e19_<depth>.json                                       *)
(* ------------------------------------------------------------------ *)

let e19 () =
  let module Explore = Oasis_mc.Explore in
  let module Scenarios = Oasis_mc.Scenarios in
  header "E19: scenario model checking — exhaustive exploration and reduction";
  let params depth ~reduce = { Explore.default_params with depth; max_runs = 200_000; reduce } in
  (* (a) Exhaustive exploration of both paper scenarios across depths. *)
  let depths =
    match Sys.getenv_opt "OASIS_E19_DEPTHS" with
    | Some s -> List.filter_map int_of_string_opt (String.split_on_char ',' s)
    | None -> [ 8; 10; 12 ]
  in
  row "%12s %8s %10s %12s %10s %12s %12s\n" "scenario" "depth" "runs" "decisions" "states"
    "pruned" "wall (ms)";
  let scenario_rows =
    List.concat_map
      (fun depth ->
        List.map
          (fun spec ->
            let t0 = Sys.time () in
            let rp = Explore.explore spec (params depth ~reduce:true) in
            let dt = (Sys.time () -. t0) *. 1000.0 in
            if not rp.Explore.rp_exhaustive then
              failwith
                (Printf.sprintf "e19: %s depth %d not exhaustive within budget"
                   spec.Oasis_mc.Scenario.sc_name depth);
            if rp.Explore.rp_violations <> [] then
              failwith
                (Printf.sprintf "e19: %s depth %d violated an invariant"
                   spec.Oasis_mc.Scenario.sc_name depth);
            row "%12s %8d %10d %12d %10d %12d %12.1f\n" spec.Oasis_mc.Scenario.sc_name depth
              rp.Explore.rp_runs rp.Explore.rp_decisions rp.Explore.rp_distinct_states
              (rp.Explore.rp_pruned_sleep + rp.Explore.rp_pruned_fp)
              dt;
            (spec.Oasis_mc.Scenario.sc_name, depth, rp, dt))
          [ Scenarios.golf_club; Scenarios.mssa ])
      depths
  in
  (* (b) Reduction ratio at a depth where naive enumeration still completes. *)
  let ratio_depth =
    match Sys.getenv_opt "OASIS_E19_RATIO_DEPTH" with
    | Some s -> int_of_string s
    | None -> 10
  in
  let t0 = Sys.time () in
  let naive = Explore.explore Scenarios.golf_club (params ratio_depth ~reduce:false) in
  let naive_ms = (Sys.time () -. t0) *. 1000.0 in
  let t0 = Sys.time () in
  let reduced = Explore.explore Scenarios.golf_club (params ratio_depth ~reduce:true) in
  let reduced_ms = (Sys.time () -. t0) *. 1000.0 in
  let ratio = float_of_int naive.Explore.rp_runs /. float_of_int reduced.Explore.rp_runs in
  row "reduction @ depth %d: naive %d runs (%.0f ms) vs reduced %d runs (%.0f ms) = %.1fx\n"
    ratio_depth naive.Explore.rp_runs naive_ms reduced.Explore.rp_runs reduced_ms ratio;
  if ratio < 5.0 then failwith (Printf.sprintf "e19: reduction ratio %.1fx below 5x" ratio);
  (* (c) The planted bug: invisible to a 50-seed sweep, found exhaustively,
     counterexample minimized. *)
  let p = params 8 ~reduce:true in
  let sweep = Explore.seed_sweep Scenarios.planted p ~seeds:50 in
  if sweep <> [] then failwith "e19: seed sweep unexpectedly found the planted bug";
  let rp = Explore.explore Scenarios.planted p in
  (match rp.Explore.rp_violations with
  | [] -> failwith "e19: exhaustive exploration missed the planted bug"
  | cx :: _ ->
      let m = Explore.minimize Scenarios.planted p cx in
      row "planted bug: 0/50 seeds hit it; explorer found %d schedule(s), minimized to [%s]\n"
        (List.length rp.Explore.rp_violations)
        (String.concat ";" (List.map string_of_int m.Explore.cx_schedule)));
  List.iter
    (fun (name, depth, rp, dt) ->
      if name = "golf-club" then begin
        let oc = open_out (Printf.sprintf "BENCH_e19_%d.json" depth) in
        output_string oc
          (J.to_string
             (J.sorted
             (J.Obj
                [
                  ("experiment", J.Str "e19");
                 ("backend", J.Str "sim");
                 ("clock_domain", J.Str "sim");
                  ("scenario", J.Str name);
                  ("depth", J.Int depth);
                  ("runs", J.Int rp.Explore.rp_runs);
                  ("decisions", J.Int rp.Explore.rp_decisions);
                  ("distinct_states", J.Int rp.Explore.rp_distinct_states);
                  ("pruned_sleep", J.Int rp.Explore.rp_pruned_sleep);
                  ("pruned_fp", J.Int rp.Explore.rp_pruned_fp);
                  ("wall_ms", J.Float dt);
                  ("naive_runs_at_ratio_depth", J.Int naive.Explore.rp_runs);
                  ("reduced_runs_at_ratio_depth", J.Int reduced.Explore.rp_runs);
                  ("reduction_ratio", J.Float ratio);
                ])));
        output_string oc "\n";
        close_out oc;
        row "         snapshot written to BENCH_e19_%d.json\n" depth
      end)
    scenario_rows;
  row "shape: the explored state space grows geometrically with depth; sleep sets +\n";
  row "       fingerprint pruning keep exhaustive coverage >=5x cheaper than naive\n";
  row "       enumeration, and adversarial orderings catch what 50 seeds cannot.\n"

(* ------------------------------------------------------------------ *)
(* E20 — sharded credential plane: role-issue throughput vs shard       *)
(* count at large live-membership counts (the per-shard WAL/snapshot    *)
(* maintenance is the superlinear cost sharding divides), and           *)
(* revocation-cascade latency re-measured by e16's span method to show  *)
(* the heartbeat-bounded propagation is independent of shard count.     *)
(* Snapshot: BENCH_e20_<shards>.json                                    *)
(* ------------------------------------------------------------------ *)

let e20 () =
  let module Shard = Oasis_core.Shard in
  header "E20: sharded credential plane — issue throughput and revocation latency vs shards";
  let members =
    match Sys.getenv_opt "OASIS_E20_MEMBERS" with
    | Some s -> int_of_string s
    | None -> 100_000
  in
  let shard_counts =
    match Sys.getenv_opt "OASIS_E20_SHARDS" with
    | Some s -> List.filter_map int_of_string_opt (String.split_on_char ',' s)
    | None -> [ 1; 4; 16 ]
  in
  let heartbeat = 1.0 in
  let run ~shards:n =
    let w = make_world () in
    let login = service ~batch:true w ~name:"Login" ~rolefile:login_rolefile in
    let club =
      match
        Shard.create w.net w.reg ~name:"Club" ~rolefile:{|
Member(u) <- Login.LoggedOn(u, h)*
|}
          ~shards:n ~heartbeat ~durable:true ()
      with
      | Ok c -> c
      | Error e -> failwith ("e20: " ^ e)
    in
    let users = Array.init members (fun i -> Printf.sprintf "u%d" i) in
    let clients = Array.map (fun _ -> fresh_vci ()) users in
    let login_certs =
      Array.mapi
        (fun i u ->
          Service.issue_arbitrary login ~client:clients.(i) ~roles:[ "LoggedOn" ]
            ~args:[ V.Str u; V.Str "ely" ])
        users
    in
    (* Issue phase: every membership enters through the router.  Entries
       are paced in waves of virtual time (steady-state operation, not one
       burst) so each shard's checkpoint cadence actually runs: a single
       burst leaves the WAL compaction permanently in flight and silently
       skips most snapshots, hiding the O(live-mirror) checkpoint cost
       every [snapshot_every] appends — which grows with the PER-SHARD
       table and is exactly what sharding divides.  Wall clock over the
       full drain prices issue + journalling + checkpoint maintenance. *)
    let committed = ref 0 in
    let wave = 256 in
    let wave_gap = 0.25 in
    let t0 = Sys.time () in
    Array.iteri
      (fun i u ->
        Engine.schedule w.engine
          ~delay:(float_of_int (i / wave) *. wave_gap)
          (fun () ->
            Shard.request_entry club ~client_host:w.client_host ~client:clients.(i)
              ~role:"Member" ~args:[ V.Str u ]
              ~creds:[ login_certs.(i) ]
              (function Ok _ -> incr committed | Error e -> failwith ("e20 entry: " ^ e))))
      users;
    run_for w ((float_of_int (members / wave) *. wave_gap) +. 30.0);
    let wall = Sys.time () -. t0 in
    if !committed <> members then
      failwith (Printf.sprintf "e20: only %d/%d entries committed" !committed members);
    let thpt = float_of_int members /. wall in
    (* Revocation phase: e16's method verbatim — a staggered traced burst
       of login-certificate revocations, end-to-end latency from each
       window's [revoke.invalidate] root to the owning shard's
       [revoke.apply]. *)
    let tr = Net.trace w.net in
    Trace.set_enabled tr true;
    Trace.clear tr;
    Stats.reset (Net.stats w.net);
    let burst = min members 500 in
    let gap = 0.2 in
    for i = 0 to burst - 1 do
      Engine.schedule w.engine
        ~delay:(float_of_int i *. gap)
        (fun () -> Service.revoke_certificate login login_certs.(i))
    done;
    run_for w ((float_of_int burst *. gap) +. 10.0);
    Trace.set_enabled tr false;
    let spans = Trace.spans tr in
    let roots = Hashtbl.create 64 in
    List.iter
      (fun sp ->
        if Trace.span_parent sp = None && Trace.span_name sp = "revoke.invalidate" then
          Hashtbl.replace roots (Trace.span_trace sp) (Trace.span_start sp))
      spans;
    let e2e =
      List.filter_map
        (fun sp ->
          if Trace.span_name sp = "revoke.apply" then
            Option.map
              (fun root_start -> Trace.span_end sp -. root_start)
              (Hashtbl.find_opt roots (Trace.span_trace sp))
          else None)
        spans
      |> List.sort compare |> Array.of_list
    in
    let pct p =
      match Array.length e2e with
      | 0 -> 0.0
      | len ->
          let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int len)) in
          e2e.(max 0 (min (len - 1) (rank - 1)))
    in
    let samples = Array.length e2e in
    if samples = 0 then failwith "e20: no end-to-end revocation spans recorded";
    let mx = Array.fold_left Float.max 0.0 e2e in
    if mx > 2.0 *. heartbeat then
      failwith (Printf.sprintf "e20: propagation latency %.3fs exceeds 2 heartbeats" mx);
    let s = Net.stats w.net in
    if Stats.latency_samples s "oasis.revoke.e2e" <> samples then
      failwith "e20: span-derived and histogram sample counts disagree";
    let reparse what str =
      match J.parse str with Ok j -> j | Error e -> failwith ("e20 " ^ what ^ " json: " ^ e)
    in
    let oc = open_out (Printf.sprintf "BENCH_e20_%d.json" n) in
    output_string oc
      (J.to_string
         (J.sorted
            (J.Obj
               [
                 ("experiment", J.Str "e20");
                 ("backend", J.Str "sim");
                 ("clock_domain", J.Str "sim");
                 ("shards", J.Int n);
                 ("members", J.Int members);
                 ("heartbeat", J.Float heartbeat);
                 ("issue_wall_s", J.Float wall);
                 ("issues_per_s", J.Float thpt);
                 ( "e2e",
                   J.Obj
                     [
                       ("samples", J.Int samples);
                       ("p50", J.Float (pct 50.0));
                       ("p99", J.Float (pct 99.0));
                       ("max", J.Float mx);
                     ] );
                 ("stats", reparse "stats" (Stats.to_json s));
               ])));
    output_string oc "\n";
    close_out oc;
    (thpt, pct 50.0, pct 99.0, mx)
  in
  row "%8s %10s %14s %12s %12s %12s\n" "shards" "members" "issues/s" "p50 (s)" "p99 (s)" "max (s)";
  let results =
    List.map
      (fun n ->
        let thpt, p50, p99, mx = run ~shards:n in
        row "%8d %10d %14.0f %12.4f %12.4f %12.4f\n" n members thpt p50 p99 mx;
        row "         snapshot written to BENCH_e20_%d.json\n" n;
        (n, thpt, p99))
      shard_counts
  in
  (* Gates: linear-ish issue scaling and shard-count-independent
     revocation latency — only meaningful at the headline size. *)
  (match (List.assoc_opt 1 (List.map (fun (n, t, _) -> (n, t)) results),
          List.assoc_opt 16 (List.map (fun (n, t, _) -> (n, t)) results)) with
  | Some t1, Some t16 when members >= 100_000 ->
      let ratio = t16 /. t1 in
      row "issue throughput at 16 shards vs 1: %.1fx\n" ratio;
      if ratio < 3.0 then
        failwith (Printf.sprintf "e20: 16-shard/1-shard issue throughput %.2fx below 3x" ratio)
  | _ -> ());
  (match results with
  | (1, _, p99_1) :: rest ->
      List.iter
        (fun (n, _, p99) ->
          if p99 > p99_1 +. heartbeat then
            failwith
              (Printf.sprintf "e20: %d-shard revocation p99 %.3fs exceeds 1-shard %.3fs + 1 heartbeat"
                 n p99 p99_1))
        rest
  | _ -> ());
  row "shape: issue throughput scales with shard count once the per-shard live mirror\n";
  row "       dominates (checkpoint cost is O(mirror) every snapshot_every appends);\n";
  row "       revocation p99 stays ~ heartbeat + 2 hops regardless of shard count.\n"

(* ------------------------------------------------------------------ *)
(* E21 — replicated shards: crash one replica of every shard            *)
(* mid-workload.  For each replication factor K the same seeded         *)
(* workload (an entry stream, a fire stream and a 50 ms-cadence         *)
(* validation probe) runs twice — crash-free twin, then with the        *)
(* current primary of every shard crashed at the midpoint (K = 1        *)
(* restarts it 2 s later; K = 3 never does: failover must carry the     *)
(* epoch).  Gates: no acked entry or fire is lost in any run, and for   *)
(* K >= 2 every probe answers and probe p99 stays within one service    *)
(* heartbeat of the twin's.  Snapshot: BENCH_e21_<K>.json               *)
(* ------------------------------------------------------------------ *)

let e21 () =
  let module Shard = Oasis_core.Shard in
  let module Replica = Oasis_core.Replica in
  header "E21: replicated shards — a primary crash per shard costs nothing";
  let members =
    match Sys.getenv_opt "OASIS_E21_MEMBERS" with Some s -> int_of_string s | None -> 200
  in
  let shards =
    match Sys.getenv_opt "OASIS_E21_SHARDS" with Some s -> int_of_string s | None -> 4
  in
  let ks =
    match Sys.getenv_opt "OASIS_E21_REPLICAS" with
    | Some s -> List.filter_map int_of_string_opt (String.split_on_char ',' s)
    | None -> [ 1; 3 ]
  in
  let heartbeat = 1.0 in
  let duration = 150.0 in
  let club_rolefile = {|
Chair <- Login.LoggedOn("jmb", h)
Member(u) <- Login.LoggedOn(u, h)* |>* Chair
|} in
  let nfires = min 60 (members / 4) in
  let pct arr p =
    match Array.length arr with
    | 0 -> 0.0
    | len ->
        let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int len)) in
        arr.(max 0 (min (len - 1) (rank - 1)))
  in
  let run ~k ~crash =
    let w = make_world () in
    let login = service ~batch:true w ~name:"Login" ~rolefile:login_rolefile in
    let club =
      match
        Shard.create w.net w.reg ~name:"Club" ~rolefile:club_rolefile ~shards ~heartbeat
          ~durable:true ~replicas:k ()
      with
      | Ok c -> c
      | Error e -> failwith ("e21: " ^ e)
    in
    let issue u vci =
      Service.issue_arbitrary login ~client:vci ~roles:[ "LoggedOn" ] ~args:[ V.Str u; V.Str "ely" ]
    in
    let jmb = fresh_vci () in
    let chair = ref None in
    Shard.request_entry club ~client_host:w.client_host ~client:jmb ~role:"Chair" ~args:[]
      ~creds:[ issue "jmb" jmb ]
      (function Ok c -> chair := Some c | Error e -> failwith ("e21 chair: " ^ e));
    run_for w 2.0;
    let chair = match !chair with Some c -> c | None -> failwith "e21: chair never entered" in
    (* Base memberships: everyone enters in waves (fault-free, so every
       entry must commit), and each ack is recorded — the audit below
       holds the crash run to never losing any of them. *)
    let users = Array.init members (fun i -> Printf.sprintf "u%d" i) in
    let clients = Array.map (fun _ -> fresh_vci ()) users in
    let base = Array.make members None in
    Array.iteri
      (fun i u ->
        Engine.schedule w.engine
          ~delay:(float_of_int (i / 64) *. 0.25)
          (fun () ->
            Shard.request_entry club ~client_host:w.client_host ~client:clients.(i)
              ~role:"Member" ~args:[ V.Str u ]
              ~creds:[ issue u clients.(i) ]
              (function Ok c -> base.(i) <- Some c | Error e -> failwith ("e21 entry: " ^ e))))
      users;
    run_for w ((float_of_int (members / 64) *. 0.25) +. 20.0);
    Array.iteri
      (fun i c -> if c = None then failwith (Printf.sprintf "e21: base entry %d never acked" i))
      base;
    (* The measured window: an entry stream (fresh users every 0.5 s), a
       fire stream (every 2.5 s, by the chair) and a validation probe
       rotating over four never-fired members every 50 ms. *)
    let acked_extra = ref [] in
    let acked_fires = ref [] in
    let probe_lat = ref [] in
    let probe_err = ref 0 in
    let nprobes = int_of_float (duration /. 0.05) in
    let probe_pool =
      Array.init 4 (fun j ->
          let i = members - 1 - j in
          (clients.(i), Option.get base.(i)))
    in
    for p = 0 to nprobes - 1 do
      Engine.schedule w.engine
        ~delay:(float_of_int p *. 0.05)
        (fun () ->
          let vci, cert = probe_pool.(p mod 4) in
          let t0 = Engine.now w.engine in
          Shard.validate club ~client_host:w.client_host ~client:vci cert (function
            | Ok () -> probe_lat := (Engine.now w.engine -. t0) :: !probe_lat
            | Error _ -> incr probe_err))
    done;
    let nextra = int_of_float (duration /. 0.5) in
    for x = 0 to nextra - 1 do
      Engine.schedule w.engine
        ~delay:(float_of_int x *. 0.5)
        (fun () ->
          let u = Printf.sprintf "x%d" x in
          let vci = fresh_vci () in
          Shard.request_entry club ~client_host:w.client_host ~client:vci ~role:"Member"
            ~args:[ V.Str u ]
            ~creds:[ issue u vci ]
            (function
              (* Errors are legitimate while the owning shard is failing
                 over — an op that was never acked may be refused.  Only
                 the acked ones are held to survive. *)
              | Ok c -> acked_extra := (u, vci, c) :: !acked_extra
              | Error _ -> ()))
    done;
    for f = 0 to nfires - 1 do
      Engine.schedule w.engine
        ~delay:(float_of_int f *. 2.5)
        (fun () ->
          let u = users.(f) in
          Shard.revoke_role_instance club ~client_host:w.client_host ~revoker:chair
            ~role:"Member" ~args:[ V.Str u ] (function
            | Ok _ -> acked_fires := u :: !acked_fires
            | Error _ -> ()))
    done;
    if crash then
      Engine.schedule w.engine ~delay:(duration /. 2.0) (fun () ->
          Array.iter
            (fun g ->
              let h = Service.host (Replica.primary g) in
              Net.crash_host w.net h;
              if k = 1 then
                Engine.schedule w.engine ~delay:2.0 (fun () -> Net.restart_host w.net h))
            (Shard.replica_groups club));
    run_for w (duration +. 20.0);
    (* Audit, synchronously at each certificate's issuing shard (its
       current primary): acked memberships of never-fired users are
       valid, acked fires are blacklisted and their certificates dead. *)
    let status cert ~client =
      let g =
        match
          Array.to_seq (Shard.replica_groups club)
          |> Seq.find (fun g -> String.equal (Service.name (Replica.primary g)) cert.Cert.service)
        with
        | Some g -> g
        | None -> failwith ("e21: no shard issued " ^ cert.Cert.service)
      in
      Service.validate (Replica.primary g) ~client cert
    in
    let lost = ref 0 in
    let fired u = List.mem u !acked_fires in
    Array.iteri
      (fun i u ->
        match base.(i) with
        | None -> ()
        | Some c -> (
            match (status c ~client:clients.(i), fired u) with
            | Ok (), false | Error _, true -> ()
            | Error _, false | Ok (), true -> incr lost))
      users;
    List.iter
      (fun (_u, vci, c) -> if status c ~client:vci <> Ok () then incr lost)
      !acked_extra;
    List.iter
      (fun u -> if not (Shard.blacklisted club ~role:"Member" ~args:[ V.Str u ]) then incr lost)
      !acked_fires;
    let lat = List.sort compare !probe_lat |> Array.of_list in
    ( !lost,
      List.length !acked_extra,
      List.length !acked_fires,
      Array.length lat,
      !probe_err,
      pct lat 50.0,
      pct lat 99.0,
      (if Array.length lat = 0 then 0.0 else lat.(Array.length lat - 1)) )
  in
  row "%4s %6s %8s %8s %8s %8s %10s %10s %10s\n" "K" "crash" "lost" "entries" "fires" "errs"
    "p50 (s)" "p99 (s)" "max (s)";
  List.iter
    (fun k ->
      let ( lost_f, extra_f, fires_f, samples_f, err_f, p50_f, p99_f, max_f ) =
        run ~k ~crash:false
      in
      row "%4d %6s %8d %8d %8d %8d %10.4f %10.4f %10.4f\n" k "no" lost_f extra_f fires_f err_f
        p50_f p99_f max_f;
      let lost, extra, fires, samples, err, p50, p99, mx = run ~k ~crash:true in
      row "%4d %6s %8d %8d %8d %8d %10.4f %10.4f %10.4f\n" k "yes" lost extra fires err p50 p99 mx;
      if lost_f <> 0 then failwith (Printf.sprintf "e21: crash-free K=%d lost %d acked ops" k lost_f);
      if lost <> 0 then
        failwith (Printf.sprintf "e21: K=%d lost %d acked ops to a single replica crash" k lost);
      if k > 1 then begin
        if err > 0 then
          failwith
            (Printf.sprintf "e21: K=%d: %d probes failed during failover (must all answer)" k err);
        if p99 > p99_f +. heartbeat then
          failwith
            (Printf.sprintf "e21: K=%d probe p99 %.4fs exceeds crash-free %.4fs + 1 heartbeat" k
               p99 p99_f)
      end;
      let oc = open_out (Printf.sprintf "BENCH_e21_%d.json" k) in
      output_string oc
        (J.to_string
           (J.sorted
              (J.Obj
                 [
                   ("experiment", J.Str "e21");
                 ("backend", J.Str "sim");
                 ("clock_domain", J.Str "sim");
                   ("replicas", J.Int k);
                   ("shards", J.Int shards);
                   ("members", J.Int members);
                   ("heartbeat", J.Float heartbeat);
                   ("duration_s", J.Float duration);
                   ("lost_acked", J.Int lost);
                   ("acked_extra_entries", J.Int extra);
                   ("acked_fires", J.Int fires);
                   ( "probe",
                     J.Obj
                       [
                         ("samples", J.Int samples);
                         ("errors", J.Int err);
                         ("p50", J.Float p50);
                         ("p99", J.Float p99);
                         ("max", J.Float mx);
                         ("crash_free_samples", J.Int samples_f);
                         ("crash_free_p99", J.Float p99_f);
                       ] );
                 ])));
      output_string oc "\n";
      close_out oc;
      row "         snapshot written to BENCH_e21_%d.json\n" k)
    ks;
  row "shape: K=1 pays the full outage (probes fail closed until the restart); K=3\n";
  row "       absorbs the same crash inside the lease window — zero lost acks, zero\n";
  row "       failed probes, probe p99 within a heartbeat of the crash-free twin.\n"

(* ------------------------------------------------------------------ *)

let e22 () =
  let module Backend = Oasis_backend.Backend in
  let module Backend_unix = Oasis_backend.Backend_unix in
  let module Shard = Oasis_core.Shard in
  let module Remote = Oasis_core.Remote in
  header "E22: the e20 sharded-issue workload on the Unix backend — wall-clock loopback TCP";
  let members =
    match Sys.getenv_opt "OASIS_E22_MEMBERS" with Some s -> int_of_string s | None -> 1000
  in
  let shards =
    match Sys.getenv_opt "OASIS_E22_SHARDS" with Some s -> int_of_string s | None -> 2
  in
  if shards < 2 then failwith "e22: needs at least 2 shards";
  let window = 32 in
  (* One process, N shard services + a router — but every protocol hop is
     forced through real loopback TCP: wire names are aliases, never local
     host names, so the router reaches "its" shards (and the client its
     router) only through the backend's framed sockets, exactly as the
     multi-process [oasis_cli serve] deployment does.  The clock is the
     wall clock; acks ride real fsyncs. *)
  let b = Backend_unix.create () in
  let backend = Backend_unix.pack b in
  let net = Backend.net backend in
  let engine = Backend.engine backend in
  let reg = Service.create_registry () in
  let rolefile = {|
Admin <-
Login(u) <-
User(u) <- Login(u)* |>* Admin
|} in
  let port = Backend_unix.listen b () in
  let wire i = Printf.sprintf "wire.e22.s%d" i in
  let shard_wires = Array.init shards wire in
  Array.iteri
    (fun i _ ->
      let host = Net.add_host net (Printf.sprintf "h.e22.s%d" i) in
      let svc =
        match
          Service.create net host reg
            ~name:(Printf.sprintf "Gate22#%d" i)
            ~rolefile_id:"Gate22" ~rolefile ~compound_certificates:false
            ~disk:(Backend.disk backend host) ()
        with
        | Ok s -> s
        | Error e -> failwith ("e22 shard: " ^ e)
      in
      ignore (Remote.serve_shard net svc ~shard_id:i);
      Backend_unix.peer b ~name:(wire i) ~port;
      Backend_unix.alias b ~name:(wire i) ~local:(Net.host_name host))
    shard_wires;
  let router_host = Net.add_host net "h.e22.router" in
  ignore (Remote.serve_router net router_host ~ring:(Shard.Ring.make ~shards ()) ~shards:shard_wires);
  Backend_unix.peer b ~name:"wire.e22.router" ~port;
  Backend_unix.alias b ~name:"wire.e22.router" ~local:"h.e22.router";
  let client_host = Net.add_host net "h.e22.client" in
  let c = Remote.Client.create net client_host ~router:"wire.e22.router" in
  let committed = ref 0 and failed = ref 0 and next = ref 0 in
  let t0 = ref 0.0 and wall = ref 0.0 in
  let finish () =
    wall := Engine.now engine -. !t0;
    Backend.stop backend
  in
  let landed () =
    if !committed + !failed = members then finish ()
  in
  let rec drive () =
    if !next < members then begin
      let u = Printf.sprintf "u%d" !next in
      incr next;
      Remote.Client.place c ~role:"User" ~args:[ V.Str u ] (function
        | Error e -> failwith ("e22 place: " ^ e)
        | Ok owner ->
            Remote.Client.bootstrap c ~shard:owner ~client:u ~roles:[ "Login" ]
              ~args:[ V.Str u ] (function
              | Error e -> failwith ("e22 bootstrap: " ^ e)
              | Ok login ->
                  Remote.Client.issue c ~client:u ~role:"User" ~args:[ V.Str u ]
                    ~creds:[ login ] (fun r ->
                      (match r with
                      | Ok _ -> incr committed
                      | Error e ->
                          incr failed;
                          row "  e22 entry %s: %s\n" u e);
                      landed ();
                      drive ())))
    end
  in
  Engine.schedule engine ~delay:0.0 (fun () ->
      t0 := Engine.now engine;
      for _ = 1 to window do
        drive ()
      done);
  (* Wall-clock safety net: a wedged socket loop must fail the bench, not
     hang CI. *)
  Engine.schedule engine ~delay:600.0 (fun () -> finish ());
  Backend.run backend;
  Backend_unix.shutdown b;
  if !committed <> members then
    failwith (Printf.sprintf "e22: only %d/%d entries committed" !committed members);
  let thpt = float_of_int members /. !wall in
  row "%d members over %d shards: %.2fs wall, %.0f issues/s (loopback TCP, real fsync)\n"
    members shards !wall thpt;
  let oc = open_out (Printf.sprintf "BENCH_e22_%d.json" shards) in
  output_string oc
    (J.to_string
       (J.sorted
          (J.Obj
             [
               ("experiment", J.Str "e22");
               ("backend", J.Str (Backend.name backend));
               ("clock_domain", J.Str (Backend.clock_domain_label backend));
               ("shards", J.Int shards);
               ("members", J.Int members);
               ("window", J.Int window);
               ("issue_wall_s", J.Float !wall);
               ("issues_per_s", J.Float thpt);
             ])));
  output_string oc "\n";
  close_out oc;
  row "         snapshot written to BENCH_e22_%d.json\n" shards;
  row "shape: same protocol modules as e20, different substrate — the sim measures\n";
  row "       algorithmic cost in virtual time; this measures the deployed plane's\n";
  row "       real throughput: syscalls, TCP framing and fsyncs included.\n"

(* ------------------------------------------------------------------ *)
(* E23 — symbolic escalation prover: planted OASIS006-008 recall,        *)
(* symbolic tightening over the boolean bound, and prover scaling on     *)
(* generated chain federations.  Snapshot: BENCH_e23_<n>.json            *)
(* ------------------------------------------------------------------ *)

let e23 () =
  let module Analyze = Oasis_rdl.Analyze in
  let module FL = Oasis_core.Federation_lint in
  header "E23: symbolic escalation prover — recall, tightening and scaling";
  let parse = Oasis_rdl.Parser.parse in
  (* (a) Recall over a planted escalation corpus: one chain per new code.
     CorpA/CorpB form a bootstrap deadlock, so Locked and Peer are
     non-base holders with a non-empty escalation frontier; Prize consumes
     Locked without * (OASIS006), Gold needs a colluding Boss elector
     (OASIS007 at threshold 2), Bridge crosses realms through a reference
     to a service outside the federation (OASIS008). *)
  let corpus =
    [
      ( "CorpA",
        {|
Boss(c) <-
Locked(u) <- CorpB.Peer(u)*
Gold(u) <- Locked(u)* <| Boss(c)
|}
      );
      ( "CorpB",
        {|
Peer(u) <- CorpA.Locked(u)*
Prize(u) <- CorpA.Locked(u)
Bridge(u) <- CorpA.Locked(u)* /\ Outside.Badge(u)
|}
      );
    ]
  in
  let fed =
    FL.make
      (List.map
         (fun (name, src) -> { FL.fl_name = name; fl_file = name; fl_rolefile = parse src })
         corpus)
  in
  let diags = FL.check ~collusion_threshold:2 fed in
  let planted = [ "OASIS001"; "OASIS006"; "OASIS007"; "OASIS008" ] in
  List.iter
    (fun code ->
      if not (List.exists (fun d -> String.equal d.Analyze.code code) diags) then
        failwith ("e23: planted escalation defect not found: " ^ code))
    planted;
  row "recall: %d/%d planted escalation classes reported (%d diagnostics total)\n"
    (List.length planted) (List.length planted) (List.length diags);
  (* (b) Symbolic tightening: a chain whose per-hop constraints are each
     satisfiable but mutually contradictory along the path.  The boolean
     bound says reachable; the prover must prune it. *)
  let inf =
    FL.make
      [
        {
          FL.fl_name = "Inf";
          fl_file = "Inf";
          fl_rolefile =
            parse {|
A(u) <-
B(u) <- A(u)* : u = "a"
C(u) <- B(u)* : u = "b"
|};
        };
      ]
  in
  let holder = ("Inf", "A") and target = ("Inf", "C") in
  if not (FL.boolean_can_reach inf ~holder ~target) then
    failwith "e23: boolean bound lost the planted chain";
  if FL.can_reach inf ~holder ~target then
    failwith "e23: symbolic prover failed to prune an infeasible chain";
  row "tightening: infeasible A->B->C chain boolean-reachable, symbolically pruned\n";
  (* (c) Scaling: witness proving over e18-style chain federations from the
     deep axiom; every other role must be reached with a witness. *)
  let sizes =
    match Sys.getenv_opt "OASIS_E23_SIZES" with
    | Some s -> List.filter_map int_of_string_opt (String.split_on_char ',' s)
    | None -> [ 64; 256; 1024; 2048 ]
  in
  let roles_per_service = 8 in
  let gen_federation nroles =
    let nservices = max 1 (nroles / roles_per_service) in
    List.init nservices (fun i ->
        let buf = Buffer.create 256 in
        for j = 0 to roles_per_service - 1 do
          if i = 0 && j = 0 then Buffer.add_string buf "R0(u) <-\n"
          else if j = 0 then
            Buffer.add_string buf
              (Printf.sprintf "R0(u) <- S%d.R%d(u)* : u <> \"root\"\n" (i - 1)
                 (roles_per_service - 1))
          else Buffer.add_string buf (Printf.sprintf "R%d(u) <- R%d(u)*\n" j (j - 1))
        done;
        {
          FL.fl_name = Printf.sprintf "S%d" i;
          fl_file = Printf.sprintf "S%d.rdl" i;
          fl_rolefile = parse (Buffer.contents buf);
        })
  in
  row "%12s %12s %12s %14s %14s\n" "roles" "services" "witnesses" "prove (ms)" "us/role";
  List.iter
    (fun nroles ->
      let members = gen_federation nroles in
      let total = roles_per_service * List.length members in
      let fed = FL.make members in
      let t0 = Sys.time () in
      let wits = FL.witnesses fed ~holder:("S0", "R0") in
      let dt = (Sys.time () -. t0) *. 1000.0 in
      if List.length wits <> total - 1 then
        failwith
          (Printf.sprintf "e23: expected %d witnesses from the deep axiom, got %d" (total - 1)
             (List.length wits));
      List.iter
        (fun (w : FL.witness) ->
          if not w.FL.w_carried then
            failwith ("e23: all-starred chain reported blind at " ^ FL.node_str w.FL.w_target))
        wits;
      row "%12d %12d %12d %14.2f %14.2f\n" total (List.length members) (List.length wits) dt
        (dt *. 1000.0 /. float_of_int total);
      let oc = open_out (Printf.sprintf "BENCH_e23_%d.json" total) in
      output_string oc
        (J.to_string
           (J.sorted
              (J.Obj
                 [
                   ("experiment", J.Str "e23");
                   ("backend", J.Str "sim");
                   ("clock_domain", J.Str "sim");
                   ("roles", J.Int total);
                   ("services", J.Int (List.length members));
                   ("roles_per_service", J.Int roles_per_service);
                   ("witnesses", J.Int (List.length wits));
                   ("prove_ms", J.Float dt);
                   ("us_per_role", J.Float (dt *. 1000.0 /. float_of_int total));
                   ("planted_recall", J.Int (List.length planted));
                 ])));
      output_string oc "\n";
      close_out oc;
      row "         snapshot written to BENCH_e23_%d.json\n" total)
    sizes;
  row "shape: the agenda visits each (entry, witness) pair once (<=4 witnesses per\n";
  row "       node), but a witness carries its full chain, so on a single deep chain\n";
  row "       the materialized output is quadratic in roles; the per-path atom cap\n";
  row "       keeps each sat check bounded regardless of chain length.\n"

let experiments =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11); ("e12", e12);
    ("e13", e13); ("e14", e14); ("e15", e15); ("e16", e16); ("e17", e17); ("e18", e18);
    ("e19", e19); ("e20", e20); ("e21", e21); ("e22", e22); ("e23", e23);
  ]

let () =
  let selected =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as picks) -> picks
    | _ -> List.map fst experiments
  in
  let unknown =
    List.filter
      (fun name -> not (List.mem_assoc (String.lowercase_ascii name) experiments))
      selected
  in
  if unknown <> [] then begin
    Printf.eprintf "unknown experiment%s: %s\nregistered experiments: %s\n"
      (if List.length unknown > 1 then "s" else "")
      (String.concat " " unknown)
      (String.concat " " (List.map fst experiments));
    exit 1
  end;
  Printf.printf "OASIS benchmark harness — experiments: %s\n" (String.concat " " selected);
  List.iter (fun name -> (List.assoc (String.lowercase_ascii name) experiments) ()) selected
