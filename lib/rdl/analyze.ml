(** Static analysis of RDL rolefiles (lint).

    The role-entry engine (§3.2.2) starts every statement with an {e empty}
    environment: variables are bound by credential-argument matching, elector
    unification, and [x <- e] / [x = e] binds, and the head arguments are
    synthesised from that environment at the end.  A statement whose head or
    constraint mentions a variable that can never be bound does not fail
    loudly — it silently never fires.  This module turns that defect class
    (and several others) into diagnostics at registration time instead of
    silent denials at run time.

    Each diagnostic carries a stable code:

    - [RDL000] — source does not parse (from {!check_src});
    - [RDL001] — variable can never be bound (error);
    - [RDL002] — [x <- e] binder never used (warning);
    - [RDL003] — variable bound more than once by [<-] (warning);
    - [RDL004] — duplicate entry statement (warning);
    - [RDL005] — arity mismatch (error, from {!Infer});
    - [RDL006] — type error (error, from {!Infer});
    - [RDL007] — unknown extension function (error);
    - [RDL008] — unknown group in an [in] constraint (warning);
    - [RDL009] — unused import (warning);
    - [RDL010] — object type used in a [def] but never imported (warning);
    - [RDL011] — constraint is unsatisfiable, entry can never fire (error);
    - [RDL012] — entry subsumed by an earlier same-head statement with a
      strictly weaker constraint (warning).

    Federation-wide checks (cycles, reachability, revocation gaps) live in
    [Oasis.Federation_lint] and reuse this module's diagnostic type. *)

open Ast

type severity = Error | Warning | Info

type diag = {
  code : string;
  severity : severity;
  file : string;
  line : int;
  message : string;
}

type context = {
  infer : Infer.callbacks;
      (** Signature callbacks used for the arity/type pass (RDL005/RDL006). *)
  known_funcs : string list option;
      (** When [Some], extension-function names outside the list are RDL007.
          [None] disables the check (the function universe is unknown). *)
  known_groups : string list option;
      (** When [Some], group names outside the list are RDL008.  [None]
          disables the check (services create groups lazily). *)
  ambient : string list;
      (** Variables considered pre-bound in every entry (none in stock
          OASIS; hook for embedders with implicit parameters). *)
}

let default_context =
  { infer = Infer.no_callbacks; known_funcs = None; known_groups = None; ambient = [] }

let severity_to_string = function Error -> "error" | Warning -> "warning" | Info -> "info"

let pp_diag ppf d =
  Format.fprintf ppf "%s:%d: %s %s: %s" d.file d.line (severity_to_string d.severity) d.code
    d.message

let diag_to_string d = Format.asprintf "%a" pp_diag d

let diag_to_json d =
  Oasis_util.Json.Obj
    [
      ("file", Oasis_util.Json.Str d.file);
      ("line", Oasis_util.Json.Int d.line);
      ("severity", Oasis_util.Json.Str (severity_to_string d.severity));
      ("code", Oasis_util.Json.Str d.code);
      ("message", Oasis_util.Json.Str d.message);
    ]

let gates ~strict d =
  match d.severity with Error -> true | Warning -> strict | Info -> false

let errors diags = List.filter (fun d -> d.severity = Error) diags

(* ------------------------------------------------------------------ *)
(* Constraint satisfiability (RDL011).                                 *)
(* ------------------------------------------------------------------ *)

(* The checker is a sound "provably unsatisfiable" test: NNF, then DNF with a
   width cap, then per-conjunct reasoning — constant folding of literal
   relations (via Eval.compare_rel), same-variable comparisons, integer
   interval tracking per variable, equality/disequality sets, and
   opposite-polarity detection on syntactically identical opaque atoms.
   [`Sat] is only returned when some conjunct is fully decided. *)

let negate_rel = function Eq -> Ne | Ne -> Eq | Lt -> Ge | Ge -> Lt | Le -> Gt | Gt -> Le

(* An NNF literal: relops absorb negation into the operator, so only the
   other atom forms can appear negated. *)
type lit = Pos of constr | Neg of constr

exception Too_wide

let dnf_cap = 256

let rec dnf neg c : lit list list =
  match c with
  | Cand (a, b) -> if neg then dnf_union (dnf true a) (dnf true b) else dnf_product neg a b
  | Cor (a, b) -> if neg then dnf_product true a b else dnf_union (dnf false a) (dnf false b)
  | Cnot c -> dnf (not neg) c
  | Cstar c -> dnf neg c
  | Crel (op, a, b) -> [ [ Pos (Crel ((if neg then negate_rel op else op), a, b)) ] ]
  | (Cin _ | Csubset _ | Ccall _ | Cbind _) as atom ->
      [ [ (if neg then Neg atom else Pos atom) ] ]

and dnf_product neg a b =
  let da = dnf neg a and db = dnf neg b in
  if List.length da * List.length db > dnf_cap then raise Too_wide;
  List.concat_map (fun ca -> List.map (fun cb -> ca @ cb) db) da

and dnf_union da db = if List.length da + List.length db > dnf_cap then raise Too_wide; da @ db

(* Per-variable facts accumulated over a conjunct.  [lo]/[hi] are inclusive
   integer bounds (only consulted for integer-valued variables); [eqv] a
   required value; [nev] excluded values. *)
type facts = { mutable lo : int; mutable hi : int; mutable eqv : Value.t option; mutable nev : Value.t list }

exception Conj_unsat

(* Scan one DNF conjunct: verdict, the per-variable fact table, and the
   positively-required [in] atoms (the group memberships a model of the
   conjunct must provide — the witness compiler materialises them). *)
let scan_conjunct lits =
  let vars : (string, facts) Hashtbl.t = Hashtbl.create 8 in
  let pos_ins : (expr * string) list ref = ref [] in
  let opaque : (string, bool) Hashtbl.t = Hashtbl.create 8 in
  let certain = ref true in
  let fact v =
    match Hashtbl.find_opt vars v with
    | Some f -> f
    | None ->
        let f = { lo = min_int; hi = max_int; eqv = None; nev = [] } in
        Hashtbl.replace vars v f;
        f
  in
  let check_int_fact f =
    if f.lo > f.hi then raise Conj_unsat;
    match f.eqv with
    | Some (Value.Int k) -> if k < f.lo || k > f.hi then raise Conj_unsat
    | _ -> ()
  in
  let require_eq v value =
    let f = fact v in
    (match f.eqv with
    | Some v' -> if not (Value.equal v' value) then raise Conj_unsat
    | None -> f.eqv <- Some value);
    if List.exists (Value.equal value) f.nev then raise Conj_unsat;
    (match value with
    | Value.Int k ->
        f.lo <- max f.lo k;
        f.hi <- min f.hi k
    | _ -> ());
    check_int_fact f
  in
  let require_ne v value =
    let f = fact v in
    (match f.eqv with Some v' -> if Value.equal v' value then raise Conj_unsat | None -> ());
    if not (List.exists (Value.equal value) f.nev) then f.nev <- value :: f.nev
  in
  (* Bound [x op k]: updates the interval.  Lt/Gt shift to inclusive bounds,
     saturating at the integer limits. *)
  let require_bound v op k =
    let f = fact v in
    (match op with
    | Lt -> if k = min_int then raise Conj_unsat else f.hi <- min f.hi (k - 1)
    | Le -> f.hi <- min f.hi k
    | Gt -> if k = max_int then raise Conj_unsat else f.lo <- max f.lo (k + 1)
    | Ge -> f.lo <- max f.lo k
    | Eq | Ne -> ());
    check_int_fact f
  in
  (* Opaque atoms: canonical key + polarity; a key present with both
     polarities is a contradiction.  Eq/Ne normalise to a sorted "eq" key,
     the four orderings normalise to a strict "lt" key (y <= x  <=>  not
     (x < y) over integers). *)
  let expr_key e = Format.asprintf "%a" Pretty.pp_expr e in
  let register key pol =
    (match Hashtbl.find_opt opaque key with
    | Some pol' -> if pol <> pol' then raise Conj_unsat
    | None -> Hashtbl.replace opaque key pol);
    certain := false
  in
  let opaque_rel op a b =
    let pa = expr_key a and pb = expr_key b in
    match op with
    | Eq | Ne ->
        let lo, hi = if pa <= pb then (pa, pb) else (pb, pa) in
        register (Printf.sprintf "eq:%s|%s" lo hi) (op = Eq)
    | Lt -> register (Printf.sprintf "lt:%s|%s" pa pb) true
    | Gt -> register (Printf.sprintf "lt:%s|%s" pb pa) true
    | Ge -> register (Printf.sprintf "lt:%s|%s" pa pb) false
    | Le -> register (Printf.sprintf "lt:%s|%s" pb pa) false
  in
  let rel op a b =
    match (a, b) with
    | Elit va, Elit vb -> (
        match Eval.compare_rel op va vb with
        | Ok true -> ()
        | Ok false -> raise Conj_unsat
        (* An ill-typed comparison errors at run time, so the entry can
           never fire either way. *)
        | Error _ -> raise Conj_unsat)
    | Evar x, Evar y when String.equal x y -> (
        match op with Eq | Le | Ge -> () | Ne | Lt | Gt -> raise Conj_unsat)
    | Evar x, Elit v | Elit v, Evar x -> (
        let op = match a with Evar _ -> op | _ -> (* k op x  <=>  x op' k *)
          (match op with Lt -> Gt | Gt -> Lt | Le -> Ge | Ge -> Le | Eq -> Eq | Ne -> Ne)
        in
        match (op, v) with
        | Eq, _ -> require_eq x v
        | Ne, _ -> require_ne x v
        | (Lt | Le | Gt | Ge), Value.Int k -> require_bound x op k
        | (Lt | Le | Gt | Ge), _ ->
            (* Ordering against a non-integer literal errors at run time. *)
            raise Conj_unsat)
    | _ -> opaque_rel op a b
  in
  let atom pol = function
    | Crel (op, a, b) -> if pol then rel op a b else rel (negate_rel op) a b
    | Cin (e, g) ->
        if pol then pos_ins := (e, g) :: !pos_ins;
        register (Printf.sprintf "in:%s|%s" (expr_key e) g) pol
    | Csubset (Elit (Value.Set _ as va), Elit (Value.Set _ as vb)) ->
        if Value.set_subset va vb <> pol then raise Conj_unsat
    | Csubset (a, b) -> register (Printf.sprintf "sub:%s|%s" (expr_key a) (expr_key b)) pol
    | Ccall (name, args) ->
        register (Printf.sprintf "call:%s" (Pretty.constr_to_string (Ccall (name, args)))) pol
    | Cbind (x, e) ->
        (* After [x <- e] runs (bind or test), x = e holds; constant binds
           therefore behave like equalities for satisfiability. *)
        if pol then (match e with Elit v -> require_eq x v | _ -> certain := false)
        else certain := false
    | Cand _ | Cor _ | Cnot _ | Cstar _ -> certain := false (* not reachable after dnf *)
  in
  try
    List.iter (function Pos c -> atom true c | Neg c -> atom false c) lits;
    (* Final per-variable sweep: a fully pinned interval may still be
       emptied by the disequality set. *)
    Hashtbl.iter
      (fun _ f ->
        check_int_fact f;
        let ne_ints =
          List.sort_uniq compare
            (List.filter_map
               (function Value.Int k when k >= f.lo && k <= f.hi -> Some k | _ -> None)
               f.nev)
        in
        (* Same-sign bounds subtract without overflow; mixed signs mean the
           interval is far larger than any disequality list. *)
        if
          f.lo < 0 = (f.hi < 0)
          && f.hi - f.lo < List.length ne_ints
          && List.length ne_ints > 0
        then raise Conj_unsat;
        if f.lo = f.hi && List.mem f.lo ne_ints then raise Conj_unsat)
      vars;
    ((if !certain then `Sat else `Maybe), vars, List.rev !pos_ins)
  with Conj_unsat -> (`Unsat, vars, [])

let unsat_conjunct lits =
  let verdict, _, _ = scan_conjunct lits in
  verdict

let sat c =
  match dnf false c with
  | exception Too_wide -> `Unknown
  | conjuncts ->
      let verdicts = List.map unsat_conjunct conjuncts in
      if List.exists (( = ) `Sat) verdicts then `Sat
      else if List.exists (( = ) `Maybe) verdicts then `Unknown
      else `Unsat

(* [implies a b]: every model of [a] is a model of [b], proved by the
   unsatisfiability of [a /\ not b].  Sound but incomplete (false means
   "not proved"). *)
let implies a b = sat (Cand (a, Cnot b)) = `Unsat

(* ------------------------------------------------------------------ *)
(* Best-effort model extraction.                                       *)
(* ------------------------------------------------------------------ *)

(* Pick a value different from everything in [nev]; bumping strategies per
   value shape, giving up (best-effort) on shapes we cannot vary. *)
let distinct_from nev v0 =
  let bump = function
    | Value.Int k -> Some (Value.Int (k + 1))
    | Value.Str s -> Some (Value.Str (s ^ "x"))
    | _ -> None
  in
  let rec go v n =
    if n > List.length nev then v
    else if List.exists (Value.equal v) nev then
      match bump v with Some v' -> go v' (n + 1) | None -> v
    else v
  in
  go v0 0

(* An integer inside [f]'s interval avoiding its disequalities.  The scan
   already proved the conjunct not unsatisfiable, so at most [length nev]
   consecutive candidates are excluded. *)
let pick_int f =
  let excluded k = List.exists (Value.equal (Value.Int k)) f.nev in
  let start = if f.lo > min_int then f.lo else min 0 f.hi in
  let rec up k = if k > f.hi then None else if excluded k then up (k + 1) else Some k in
  let rec down k = if k < f.lo then None else if excluded k then down (k - 1) else Some k in
  match up start with
  | Some k -> Value.Int k
  | None -> ( match down start with Some k -> Value.Int k | None -> Value.Int start)

(* Best-effort model of a constraint: the first DNF conjunct not proved
   unsatisfiable yields a per-variable assignment (pinned values, interval
   picks, [default] for free variables nudged off the disequality set) and
   the positive group-membership atoms the conjunct requires.  [None] only
   when the constraint is provably unsatisfiable or too wide to normalise.
   The model is not guaranteed to satisfy opaque atoms — callers that need
   certainty replay it dynamically (the witness compiler does). *)
let model ?(default = fun _ -> Value.Str "w") c =
  match dnf false c with
  | exception Too_wide -> None
  | conjuncts ->
      let rec pick = function
        | [] -> None
        | lits :: rest -> (
            match scan_conjunct lits with
            | `Unsat, _, _ -> pick rest
            | (`Sat | `Maybe), vars, ins ->
                let assign : (string, Value.t) Hashtbl.t = Hashtbl.create 16 in
                Hashtbl.iter
                  (fun v f ->
                    let value =
                      match f.eqv with
                      | Some value -> value
                      | None ->
                          if f.lo > min_int || f.hi < max_int then pick_int f
                          else distinct_from f.nev (default v)
                    in
                    Hashtbl.replace assign v value)
                  vars;
                List.iter
                  (fun v ->
                    if not (Hashtbl.mem assign v) then Hashtbl.replace assign v (default v))
                  (Ast.constr_vars c);
                let bindings =
                  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) assign [])
                in
                Some (bindings, ins))
      in
      pick conjuncts

(* ------------------------------------------------------------------ *)
(* Binding analysis (RDL001-RDL003).                                   *)
(* ------------------------------------------------------------------ *)

(* Bind-capable constraint forms: [x <- e] always, and [x = e] which binds
   when x is still unbound (§3.2.4).  Collected everywhere in the
   constraint, including under or/not — an over-approximation that avoids
   false positives on disjunctive binding patterns. *)
let rec bind_forms acc = function
  | Cand (a, b) | Cor (a, b) -> bind_forms (bind_forms acc a) b
  | Cnot c | Cstar c -> bind_forms acc c
  | Cbind (x, e) -> (x, e) :: acc
  | Crel (Eq, Evar x, e) -> (x, e) :: acc
  | Crel _ | Cin _ | Csubset _ | Ccall _ -> acc

let ref_vars r = List.filter_map (function Avar v -> Some v | Alit _ -> None) r.ref_args

(* Least fixpoint of bindability: credential and elector arguments bind
   directly; a bind form [x <- e] binds x once every variable of e is
   bindable. *)
let bindable_vars context entry =
  let b : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace b v ()) context.ambient;
  let add_ref r = List.iter (fun v -> Hashtbl.replace b v ()) (ref_vars r) in
  List.iter add_ref entry.creds;
  Option.iter add_ref entry.elector;
  (* Revoker arguments are matched at revocation time; they bind nothing at
     role entry. *)
  let forms = match entry.constr with None -> [] | Some c -> bind_forms [] c in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (x, e) ->
        if (not (Hashtbl.mem b x)) && List.for_all (Hashtbl.mem b) (expr_vars e) then begin
          Hashtbl.replace b x ();
          changed := true
        end)
      forms
  done;
  b

(* An entry with no credentials, no elector and no constraint is the
   declaration idiom (e.g. [LoggedOn(u, h) <-]): it is never fired by the
   matching engine but bootstrapped via issue_arbitrary, so its head
   variables are parameters, not defects. *)
let is_axiom e = e.creds = [] && e.elector = None && e.constr = None

(* ------------------------------------------------------------------ *)
(* The per-rolefile checker.                                           *)
(* ------------------------------------------------------------------ *)

(* Names of extension functions and groups used in a constraint. *)
let rec funcs_used acc = function
  | Cand (a, b) | Cor (a, b) -> funcs_used (funcs_used acc a) b
  | Cnot c | Cstar c -> funcs_used acc c
  | Crel (_, a, b) | Csubset (a, b) -> expr_funcs (expr_funcs acc a) b
  | Cin (e, _) -> expr_funcs acc e
  | Ccall (name, args) -> List.fold_left expr_funcs (name :: acc) args
  | Cbind (_, e) -> expr_funcs acc e

and expr_funcs acc = function
  | Elit _ | Evar _ -> acc
  | Ecall (name, args) -> List.fold_left expr_funcs (name :: acc) args

let rec groups_used acc = function
  | Cand (a, b) | Cor (a, b) -> groups_used (groups_used acc a) b
  | Cnot c | Cstar c -> groups_used acc c
  | Cin (_, g) -> g :: acc
  | Crel _ | Csubset _ | Ccall _ | Cbind _ -> acc

(* Object type names mentioned by literals anywhere in an entry. *)
let entry_obj_types e =
  let acc = ref [] in
  let value = function Value.Obj (ty, _) -> acc := ty :: !acc | _ -> () in
  let arg = function Alit v -> value v | Avar _ -> () in
  let rec expr = function
    | Elit v -> value v
    | Evar _ -> ()
    | Ecall (_, args) -> List.iter expr args
  in
  let rec constr = function
    | Cand (a, b) | Cor (a, b) ->
        constr a;
        constr b
    | Cnot c | Cstar c -> constr c
    | Crel (_, a, b) | Csubset (a, b) ->
        expr a;
        expr b
    | Cin (x, _) -> expr x
    | Ccall (_, args) -> List.iter expr args
    | Cbind (_, x) -> expr x
  in
  List.iter arg (snd e.head);
  List.iter (fun r -> List.iter arg r.ref_args) e.creds;
  Option.iter (fun r -> List.iter arg r.ref_args) e.elector;
  Option.iter (fun r -> List.iter arg r.ref_args) e.revoker;
  Option.iter constr e.constr;
  !acc

let check ?(file = "<rolefile>") ?(context = default_context) rolefile =
  let diags = ref [] in
  let add ?(sev = Error) ~line code fmt =
    Format.kasprintf
      (fun message -> diags := { code; severity = sev; file; line; message } :: !diags)
      fmt
  in
  let ents = entries rolefile in

  (* RDL001/RDL002/RDL003: binding analysis per entry. *)
  List.iter
    (fun e ->
      if not (is_axiom e) then begin
        let b = bindable_vars context e in
        let name, args = e.head in
        List.iter
          (function
            | Avar v when not (Hashtbl.mem b v) ->
                add ~line:e.entry_line "RDL001"
                  "head parameter %s of %s can never be bound (no credential or elector \
                   argument, and no evaluable binding, mentions it); this statement can \
                   never fire"
                  v name
            | Avar _ | Alit _ -> ())
          args;
        Option.iter
          (fun c ->
            List.iter
              (fun v ->
                if not (Hashtbl.mem b v) then
                  add ~line:e.entry_line "RDL001"
                    "constraint variable %s can never be bound; this statement can never \
                     fire"
                    v)
              (constr_vars c))
          e.constr
      end;
      (* RDL002/RDL003 apply to explicit binds even in axiom-style entries
         (which cannot have constraints anyway). *)
      match e.constr with
      | None -> ()
      | Some c ->
          let positional : (string, unit) Hashtbl.t = Hashtbl.create 8 in
          List.iter
            (fun r -> List.iter (fun v -> Hashtbl.replace positional v ()) (ref_vars r))
            e.creds;
          Option.iter
            (fun r -> List.iter (fun v -> Hashtbl.replace positional v ()) (ref_vars r))
            e.elector;
          let head_vars =
            List.filter_map (function Avar v -> Some v | Alit _ -> None) (snd e.head)
          in
          (* Occurrences of each variable in expression (use) position:
             everything except the lhs of [x <- e]. *)
          let uses : (string, unit) Hashtbl.t = Hashtbl.create 8 in
          let use_expr x = List.iter (fun v -> Hashtbl.replace uses v ()) (expr_vars x) in
          let rec walk = function
            | Cand (a, b) | Cor (a, b) ->
                walk a;
                walk b
            | Cnot d | Cstar d -> walk d
            | Crel (_, a, b) | Csubset (a, b) ->
                use_expr a;
                use_expr b
            | Cin (x, _) -> use_expr x
            | Ccall (_, args) -> List.iter use_expr args
            | Cbind (_, x) -> use_expr x
          in
          walk c;
          (* Explicit [x <- e] binders, in source order. *)
          let explicit =
            let rec collect acc = function
              | Cand (a, b) | Cor (a, b) -> collect (collect acc a) b
              | Cnot d | Cstar d -> collect acc d
              | Cbind (x, _) -> x :: acc
              | Crel _ | Cin _ | Csubset _ | Ccall _ -> acc
            in
            List.rev (collect [] c)
          in
          List.iter
            (fun x ->
              if
                (not (Hashtbl.mem positional x))
                && (not (Hashtbl.mem uses x))
                && not (List.mem x head_vars)
              then
                add ~sev:Warning ~line:e.entry_line "RDL002"
                  "variable %s is bound with <- but never used" x)
            (List.sort_uniq compare explicit);
          let seen : (string, unit) Hashtbl.t = Hashtbl.create 8 in
          List.iter
            (fun x ->
              if Hashtbl.mem seen x then
                add ~sev:Warning ~line:e.entry_line "RDL003"
                  "variable %s is bound by <- more than once; the later binding \
                   degenerates to an equality test"
                  x
              else Hashtbl.replace seen x ())
            explicit)
    ents;

  (* RDL004: duplicate entries (structural equality modulo source lines). *)
  let seen_entries : (entry * int) list ref = ref [] in
  List.iter
    (fun e ->
      let key = { e with entry_line = 0 } in
      match List.find_opt (fun (k, _) -> k = key) !seen_entries with
      | Some (_, first) ->
          add ~sev:Warning ~line:e.entry_line "RDL004"
            "entry duplicates the statement at line %d" first
      | None -> seen_entries := (key, e.entry_line) :: !seen_entries)
    ents;

  (* RDL012: subsumption.  A statement whose head, credentials, elector and
     revoker structurally match an earlier statement's, and whose constraint
     is provably *strictly stronger* than the earlier one's, can never add a
     membership the earlier statement would not already have added (the
     engine fires statements in order).  Exact duplicates are RDL004's. *)
  let shape e = { e with entry_line = 0; constr = None } in
  let seen_shapes : (entry * int * constr option) list ref = ref [] in
  List.iter
    (fun e ->
      let k = shape e in
      let subsumed_by (k', _, earlier) =
        k' = k
        &&
        match (earlier, e.constr) with
        | None, Some c ->
            (* The earlier statement is unconditioned; unless the later
               constraint is a tautology (then it is a de-facto duplicate),
               it is strictly stronger. *)
            sat (Cnot c) <> `Unsat
        | Some c', Some c -> implies c c' && not (implies c' c)
        | _, None -> false
      in
      (match List.find_opt subsumed_by !seen_shapes with
      | Some (_, first, _) ->
          add ~sev:Warning ~line:e.entry_line "RDL012"
            "statement is subsumed by the statement at line %d (same head and \
             credentials, strictly weaker constraint); it can never add a membership"
            first
      | None -> ());
      seen_shapes := !seen_shapes @ [ (k, e.entry_line, e.constr) ])
    ents;

  (* RDL005/RDL006: arity and type checking via inference. *)
  (match Infer.infer_located ~callbacks:context.infer rolefile with
  | Ok _ -> ()
  | Error (line, msg) ->
      let lower = String.lowercase_ascii msg in
      let mentions s =
        let n = String.length s and m = String.length lower in
        let rec go i = i + n <= m && (String.sub lower i n = s || go (i + 1)) in
        go 0
      in
      if mentions "argument" || mentions "arity" then add ~line "RDL005" "%s" msg
      else add ~line "RDL006" "%s" msg);

  (* RDL007/RDL008: unknown extension functions and groups. *)
  List.iter
    (fun e ->
      match e.constr with
      | None -> ()
      | Some c ->
          (match context.known_funcs with
          | None -> ()
          | Some fns ->
              List.iter
                (fun f ->
                  if not (List.mem f fns) then
                    add ~line:e.entry_line "RDL007"
                      "unknown extension function %s (service provides: %s)" f
                      (match fns with [] -> "none" | _ -> String.concat ", " fns))
                (List.sort_uniq compare (funcs_used [] c)));
          (match context.known_groups with
          | None -> ()
          | Some gs ->
              List.iter
                (fun g ->
                  if not (List.mem g gs) then
                    add ~sev:Warning ~line:e.entry_line "RDL008" "unknown group %s" g)
                (List.sort_uniq compare (groups_used [] c))))
    ents;

  (* RDL009/RDL010: import hygiene. *)
  let imported =
    List.filter_map
      (function Import { line; service; tyname } -> Some (line, service, tyname) | _ -> None)
      rolefile
  in
  let used_types =
    List.concat_map entry_obj_types ents
    @ List.concat_map
        (fun d -> List.filter_map (fun (_, ty) -> match ty with Ty.Obj n -> Some n | _ -> None) d.param_types)
        (defs rolefile)
  in
  List.iter
    (fun (line, service, tyname) ->
      if not (List.mem tyname used_types) then
        add ~sev:Warning ~line "RDL009" "import %s.%s is never used" service tyname)
    imported;
  List.iter
    (fun d ->
      List.iter
        (fun (p, ty) ->
          match ty with
          | Ty.Obj n when not (List.exists (fun (_, _, t) -> String.equal t n) imported) ->
              add ~sev:Warning ~line:d.decl_line "RDL010"
                "parameter %s of %s has object type %s, which is not imported" p d.decl_name
                n
          | _ -> ())
        d.param_types)
    (defs rolefile);

  (* RDL011: unsatisfiable constraints. *)
  List.iter
    (fun e ->
      match e.constr with
      | Some c when sat c = `Unsat ->
          add ~line:e.entry_line "RDL011"
            "constraint is unsatisfiable; this statement can never fire"
      | _ -> ())
    ents;

  List.stable_sort (fun a b -> compare (a.line, a.code) (b.line, b.code)) (List.rev !diags)

let check_src ?(file = "<rolefile>") ?context ?resolve_literal src =
  match Parser.parse ?resolve_literal src with
  | rolefile -> check ~file ?context rolefile
  | exception Parser.Parse_error (msg, line) ->
      [ { code = "RDL000"; severity = Error; file; line; message = "parse error: " ^ msg } ]
  | exception Lexer.Lex_error (msg, line) ->
      [ { code = "RDL000"; severity = Error; file; line; message = "lex error: " ^ msg } ]
