test/test_integration.ml: Alcotest Array List Oasis_badge Oasis_core Oasis_esec Oasis_events Oasis_mssa Oasis_rdl Oasis_sim Option Result
