test/test_rdl.mli:
