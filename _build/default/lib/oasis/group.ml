module Value = Oasis_rdl.Value

type value = Value.t

type t = {
  g_table : Credrec.table;
  g_name : string;
  mutable g_members : value list;
  g_interesting : (string, Credrec.cref) Hashtbl.t;  (* marshalled member -> record *)
}

let create table name =
  { g_table = table; g_name = name; g_members = []; g_interesting = Hashtbl.create 16 }

let name g = g.g_name

let mem g v = List.exists (Value.equal v) g.g_members

let members g = g.g_members

let credential g v =
  let key = Value.marshal v in
  match Hashtbl.find_opt g.g_interesting key with
  | Some r when Credrec.live g.g_table r -> r
  | _ ->
      let state = if mem g v then Credrec.True else Credrec.False in
      let r = Credrec.leaf g.g_table ~state () in
      Hashtbl.replace g.g_interesting key r;
      r

let flip g v state =
  let key = Value.marshal v in
  match Hashtbl.find_opt g.g_interesting key with
  | Some r when Credrec.live g.g_table r -> Credrec.set_leaf g.g_table r state
  | Some _ -> Hashtbl.remove g.g_interesting key
  | None -> ()

let add g v =
  if not (mem g v) then begin
    g.g_members <- v :: g.g_members;
    flip g v Credrec.True
  end

let remove g v =
  if mem g v then begin
    g.g_members <- List.filter (fun m -> not (Value.equal m v)) g.g_members;
    flip g v Credrec.False
  end

let interesting g =
  Hashtbl.fold
    (fun _ r acc -> if Credrec.live g.g_table r then acc + 1 else acc)
    g.g_interesting 0
