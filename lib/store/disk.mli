(** Simulated per-host stable-storage device.

    The paper's services keep their §4.11 revocation databases and issued
    memberships on stable storage; the reproduction substitutes a
    deterministic simulated device attached to the discrete-event engine
    (see DESIGN.md, Substitutions: real disks -> simulated device).

    The model is a set of named append-only byte files per host:

    - {!append} lands in a volatile write buffer instantly (page cache);
    - {!fsync} makes the buffered prefix durable after a configurable
      latency (a base seek/flush cost plus bytes/bandwidth);
    - a host crash ({!Oasis_sim.Fault}) discards the unsynced buffer,
      except that a seeded-random prefix of it may survive — so the final
      record on disk can be {e torn}, exactly the failure a write-ahead
      log's checksum framing must detect;
    - an in-flight fsync or atomic write dies with the crash (epoch check),
      so durability callbacks never fire for a dead incarnation.

    All byte traffic is accounted in the network's {!Oasis_sim.Stats}
    under [store.*] categories; fsyncs record a latency histogram. *)

type t

val create :
  Oasis_sim.Net.t ->
  Oasis_sim.Net.host ->
  ?fsync_latency:float ->
  ?write_bandwidth:float ->
  ?read_bandwidth:float ->
  unit ->
  t
(** [fsync_latency] is the base cost of a flush in seconds (default 5e-4);
    [write_bandwidth] the sustained write throughput in bytes/second
    (default 1e8); [read_bandwidth] the sequential recovery-scan
    throughput (default 2e8). *)

type ops = {
  o_append : file:string -> string -> unit;
  o_fsync : file:string -> (unit -> unit) -> unit;
  o_write_atomic : file:string -> string -> (unit -> unit) -> unit;
  o_truncate : file:string -> unit;
  o_read : file:string -> string;
  o_durable_size : file:string -> int;
  o_unsynced : file:string -> int;
  o_scan_delay : bytes:int -> float;
  o_files : unit -> string list;
}
(** A real stable-storage device, injected by a backend
    ({!Oasis_backend.Backend_unix}): the same contract as the simulated
    device — [o_append] buffers, [o_fsync] makes the buffered prefix
    durable and calls back (synchronously is fine), [o_read] returns the
    durable prefix only — implemented against actual files.  A closure
    record rather than a functor keeps [lib/store] free of any unix
    dependency, so every existing test and model-checking schedule stays
    deterministic. *)

val create_ops : Oasis_sim.Net.t -> Oasis_sim.Net.host -> ops -> t
(** Wrap a real device behind the {!t} interface.  Byte accounting still
    lands in the network's stats; fsync latency histograms record
    {e measured} wall-clock costs read off the engine's backend clock
    (meaningful because {!Oasis_sim.Engine.now} dispatches to the backend
    time source). *)

val real : t -> bool
(** Whether this device is ops-backed (real files) rather than simulated. *)

val host : t -> Oasis_sim.Net.host
val net : t -> Oasis_sim.Net.t

val append : t -> file:string -> string -> unit
(** Buffer bytes at the end of [file].  Instant (page cache); not durable
    until a subsequent {!fsync} completes.  Ignored while the host is
    down. *)

val fsync : t -> file:string -> (unit -> unit) -> unit
(** Make everything appended so far durable.  The callback fires once the
    flush completes, [fsync_latency + pending/write_bandwidth] seconds
    later — unless the host crashes first, in which case it never fires
    (and the pending bytes are subject to the crash semantics above). *)

val write_atomic : t -> file:string -> string -> (unit -> unit) -> unit
(** Replace everything [file] contained {e at the call} in one step (the
    classic write-temp then rename).  Until the operation completes the
    old contents remain; a crash before completion leaves the old
    contents intact, never a mixture.  Bytes appended while the write is
    in flight survive after the new contents, so compacting a live log
    cannot drop racing appends.  Used for snapshots and log rewrites. *)

val truncate : t -> file:string -> unit
(** Discard [file]'s contents, durable and buffered.  Immediate; the
    caller sequences it after the snapshot write it depends on. *)

val read : t -> file:string -> string
(** Current durable contents (after a crash this includes any torn tail
    that survived). *)

val durable_size : t -> file:string -> int
val unsynced : t -> file:string -> int

val scan_delay : t -> bytes:int -> float
(** Time a recovery scan of [bytes] takes on this device. *)

val files : t -> string list

val fingerprint : t -> int64
(** SipHash over every file's name, durable length and full byte contents
    (durable prefix plus unsynced buffer).  Two devices with the same
    fingerprint hold the same bytes in the same commit state; the model
    checker folds it into a service's state hash for interleaving
    pruning. *)
