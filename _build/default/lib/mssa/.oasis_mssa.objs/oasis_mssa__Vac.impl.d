lib/mssa/vac.ml: Custode Format Hashtbl List Oasis_core Oasis_rdl Oasis_sim Option String Types
