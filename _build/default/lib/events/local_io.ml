module Pqueue = Oasis_util.Pqueue

type sub = {
  sub_tpl : Event.template;
  sub_cb : Event.t -> unit;
  mutable sub_live : bool;
}

type t = {
  mutable time : float;
  clock_uncertainty : float;
  retention : float;
  mutable subs : sub list;
  mutable retained : (float * Event.t) list;  (* newest first *)
  timers : (unit -> unit) Pqueue.t;
  horizons : (string, float) Hashtbl.t;  (* source -> horizon *)
  held : (string, unit) Hashtbl.t;
  mutable horizon_watchers : (unit -> unit) list;
}

let create ?(clock_uncertainty = 0.0) ?(retention = 1_000_000.0) () =
  {
    time = 0.0;
    clock_uncertainty;
    retention;
    subs = [];
    retained = [];
    timers = Pqueue.create ();
    horizons = Hashtbl.create 4;
    held = Hashtbl.create 4;
    horizon_watchers = [];
  }

let now t = t.time

let source_horizon t source =
  match Hashtbl.find_opt t.horizons source with Some h -> h | None -> t.time

let fire_horizon_watchers t = List.iter (fun f -> f ()) t.horizon_watchers

let advance_unheld t =
  Hashtbl.iter
    (fun source h ->
      if (not (Hashtbl.mem t.held source)) && h < t.time then
        Hashtbl.replace t.horizons source t.time)
    t.horizons

let set_time t at =
  if at < t.time then invalid_arg "Local_io.set_time: time cannot go backwards";
  let rec run_due () =
    match Pqueue.peek t.timers with
    | Some (due, _) when due <= at ->
        (match Pqueue.pop t.timers with
        | Some (due, action) ->
            t.time <- max t.time due;
            action ()
        | None -> ());
        run_due ()
    | _ -> ()
  in
  run_due ();
  t.time <- at;
  advance_unheld t;
  fire_horizon_watchers t

let signal t ?(source = "local") ?stamp name params =
  let stamp = match stamp with Some s -> s | None -> t.time in
  let e = Event.make ~name ~source ~stamp ~seq:(List.length t.retained) params in
  t.retained <- (t.time, e) :: List.filter (fun (tm, _) -> t.time -. tm <= t.retention) t.retained;
  if not (Hashtbl.mem t.held source) then begin
    let h = max (source_horizon t source) stamp in
    Hashtbl.replace t.horizons source h
  end
  else if not (Hashtbl.mem t.horizons source) then Hashtbl.replace t.horizons source 0.0;
  List.iter (fun sub -> if sub.sub_live && Event.matches sub.sub_tpl e <> None then sub.sub_cb e) t.subs;
  fire_horizon_watchers t;
  e

let hold_horizon t source =
  Hashtbl.replace t.held source ();
  if not (Hashtbl.mem t.horizons source) then Hashtbl.replace t.horizons source t.time

let release_horizon t source =
  Hashtbl.remove t.held source;
  Hashtbl.replace t.horizons source t.time;
  fire_horizon_watchers t

let io t =
  {
    Bead.subscribe =
      (fun tpl ~since cb ->
        let sub = { sub_tpl = tpl; sub_cb = cb; sub_live = true } in
        t.subs <- sub :: t.subs;
        (* Retrospective replay, oldest first. *)
        List.iter
          (fun (_, e) ->
            if sub.sub_live && e.Event.stamp >= since && Event.matches tpl e <> None then cb e)
          (List.rev t.retained);
        fun () ->
          sub.sub_live <- false;
          t.subs <- List.filter (fun s -> s != sub) t.subs);
    io_horizon =
      (fun tpls ->
        (* Min over the sources each template could match.  Unpinned
           templates cover every known source. *)
        let horizon_of tpl =
          match tpl.Event.tsource with
          | Some source -> source_horizon t source
          | None ->
              Hashtbl.fold (fun source _ acc -> min acc (source_horizon t source)) t.horizons t.time
        in
        List.fold_left (fun acc tpl -> min acc (horizon_of tpl)) infinity tpls);
    on_horizon =
      (fun f ->
        let live = ref true in
        let watcher () = if !live then f () in
        t.horizon_watchers <- watcher :: t.horizon_watchers;
        fun () -> live := false);
    io_now = (fun () -> t.time);
    io_after = (fun delay action -> Pqueue.push t.timers (t.time +. delay) action);
    clock_uncertainty = t.clock_uncertainty;
  }
