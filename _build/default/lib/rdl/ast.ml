(** Abstract syntax of RDL rolefiles (ch. 3).

    Concrete syntax used by the lexer/parser (ASCII renderings of the paper's
    symbols):

    {v
    rolefile  ::= item*
    item      ::= "import" IDENT "." IDENT
                | "def" IDENT "(" IDENT ("," IDENT)* ")" (IDENT ":" type)*
                | entry
    type      ::= "Integer" | "String" | "{" chars "}" | IDENT
    entry     ::= head "<-" [creds] [elect] [revoke] [":" constr]
    head      ::= IDENT ["(" arg ("," arg)* ")"]
    creds     ::= roleref ((wedge | "&&") roleref)*    -- wedge is slash-backslash
    roleref   ::= [IDENT ["[" IDENT "]"] "."] IDENT ["(" args ")"] ["*"]
    elect     ::= "<|" ["*"] roleref          -- the paper's ◁ (election)
    revoke    ::= "|>" ["*"] roleref          -- the paper's ▷ (role-based revocation)
    arg       ::= literal | IDENT
    literal   ::= INT | STRING | "{" chars "}" | "@" IDENT STRING
    constr    ::= or-expression over atoms; atoms may carry a "*" membership
                  annotation; see {!constr}
    v}

    The ["*"] annotations mark {e membership rules}: entry conditions whose
    continued validity is required for the lifetime of the certificate
    (§3.2.3). *)

type arg = Avar of string | Alit of Value.t

(** Reference to the service (and optionally the rolefile within it) that
    issues a role.  [service = None] means the local rolefile. *)
type service_ref = { service : string option; rolefile : string option }

let local_service = { service = None; rolefile = None }

type role_ref = {
  sref : service_ref;
  role : string;
  ref_args : arg list;
  starred : bool;  (** membership rule: revoke if this credential is revoked *)
}

type relop = Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Elit of Value.t
  | Evar of string
  | Ecall of string * expr list
      (** Server-specific extension function (§3.3.1), e.g. [unixacl],
          [creator], [acl]. *)

type constr =
  | Cand of constr * constr
  | Cor of constr * constr
  | Cnot of constr
  | Cstar of constr  (** membership-rule annotation on a sub-expression *)
  | Crel of relop * expr * expr
  | Cin of expr * string  (** group membership test: [expr in groupname] *)
  | Csubset of expr * expr
  | Ccall of string * expr list  (** boolean extension function *)
  | Cbind of string * expr
      (** [x <- e]: bind [x] if unbound, otherwise test equality.  [x = e]
          with [x] unbound behaves identically. *)

type entry = {
  head : string * arg list;
  creds : role_ref list;
  elector : role_ref option;  (** election form: candidate needs this elector *)
  elect_starred : bool;  (** [<|*]: revoke when the delegation is revoked *)
  revoker : role_ref option;  (** role-based revocation extension (§3.3.2) *)
  constr : constr option;
}

type decl = { decl_name : string; params : string list; param_types : (string * Ty.t) list }

type item = Import of string * string | Def of decl | Entry of entry

type rolefile = item list

let entries rolefile =
  List.filter_map (function Entry e -> Some e | Import _ | Def _ -> None) rolefile

let defs rolefile =
  List.filter_map (function Def d -> Some d | Import _ | Entry _ -> None) rolefile

let imports rolefile =
  List.filter_map (function Import (s, t) -> Some (s, t) | Def _ | Entry _ -> None) rolefile

(** All role names defined (by entry statements) in the file, in first
    occurrence order. *)
let defined_roles rolefile =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (function
      | Entry { head = name, _; _ } when not (Hashtbl.mem seen name) ->
          Hashtbl.add seen name ();
          Some name
      | Entry _ | Import _ | Def _ -> None)
    rolefile

(** Variables appearing in an expression, in order of first occurrence. *)
let rec expr_vars = function
  | Elit _ -> []
  | Evar v -> [ v ]
  | Ecall (_, args) -> List.concat_map expr_vars args

let rec constr_vars = function
  | Cand (a, b) | Cor (a, b) -> constr_vars a @ constr_vars b
  | Cnot c | Cstar c -> constr_vars c
  | Crel (_, a, b) | Csubset (a, b) -> expr_vars a @ expr_vars b
  | Cin (e, _) -> expr_vars e
  | Ccall (_, args) -> List.concat_map expr_vars args
  | Cbind (x, e) -> x :: expr_vars e
