lib/mssa/byte_segment.mli: Oasis_core Oasis_sim
