examples/legacy.mli:
