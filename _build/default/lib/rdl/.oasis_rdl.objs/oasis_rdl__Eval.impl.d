lib/rdl/eval.ml: Ast Int List Printf Result Value
