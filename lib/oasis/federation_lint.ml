(** Federation-wide static analysis of the cross-service role graph.

    Per-rolefile checks ({!Oasis_rdl.Analyze}) see one policy at a time; a
    federation of services can still be mis-wired as a whole: services grant
    roles on the strength of roles of other services (§2.10), so the
    credential graph can contain cycles no statement bootstraps (every
    service waits on the other — a bootstrap deadlock), roles no chain of
    statements can ever reach, and revocation gaps where a prerequisite is
    revocable but its consumer never hears about it (§3.2.3's [*]
    annotations only cascade along event channels between known services).

    The escalation queries are answered by a {e symbolic prover}: instead of
    the boolean least-fixpoint upper bound (kept as {!boolean_can_reach}),
    reachability is explored over derivation chains that carry a per-path
    {e witness} — the sequence of entry statements, the binding
    substitutions that connect them, and the elector/appointment obligations
    along the way.  Every statement's local variables are renamed into a
    path-global namespace, the symbolic arguments flowing along the chain
    are substituted into each hop's constraint, and a path whose accumulated
    constraint {!Oasis_rdl.Analyze.sat} proves unsatisfiable is pruned.  A
    [false] answer therefore means "no feasible symbolic path", not merely
    "no edge"; a [true] answer comes with replayable evidence (the witness
    compiles to a model-checker scenario — [Oasis_mc.Witness]).

    Diagnostic codes (continuing {!Oasis_rdl.Analyze}'s space):

    - [OASIS001] error — credential cycle with no bootstrap (deadlock);
    - [OASIS002] warning — role is unreachable from the federation's axioms;
    - [OASIS003] error — reference to a role the named federation service
      does not define;
    - [OASIS004] warning — starred prerequisite from a service outside the
      federation: there is no revocation channel to cascade over;
    - [OASIS005] info — revocable prerequisite consumed without [*]:
      revoking it will not cascade to the derived role;
    - [OASIS006] warning — revocation-blind escalation: a witness chain in
      which some hop consumes the holder's flow without [*], so firing the
      holder does not cascade to the target (§4.11 silently lapses);
    - [OASIS007] warning — low collusion budget: an escalation chain needs
      at most the configured number of colluding principals;
    - [OASIS008] warning — cross-realm escalation through interop/bootstrap
      roles (the ROADMAP gateway item's precondition). *)

module Ast = Oasis_rdl.Ast
module Infer = Oasis_rdl.Infer
module Analyze = Oasis_rdl.Analyze
module Subst = Oasis_rdl.Subst
module Value = Oasis_rdl.Value

type member = { fl_name : string; fl_file : string; fl_rolefile : Ast.rolefile }

type node = string * string (* service, role *)

type t = {
  members : member list;
  sigs : (string, Infer.result) Hashtbl.t;  (** per-member self inference *)
  mutable sym_base : (node, unit) Hashtbl.t option;
      (** memoized symbolic axiom closure (see [sym_base]) *)
}

let make members =
  let sigs = Hashtbl.create 8 in
  List.iter
    (fun m ->
      match Infer.infer m.fl_rolefile with
      | Ok r -> Hashtbl.replace sigs m.fl_name r
      | Error _ -> () (* the per-file pass reports it; sigs stay unknown *))
    members;
  { members; sigs; sym_base = None }

let of_registry reg =
  make
    (List.map
       (fun s ->
         { fl_name = Service.name s; fl_file = Service.name s; fl_rolefile = Service.rolefile s })
       (Service.services reg))

let members t = t.members

let member_names t = List.map (fun m -> m.fl_name) t.members

let signature t (svc, role) =
  match Hashtbl.find_opt t.sigs svc with
  | Some r -> Infer.signature r role
  | None -> None

(* Analysis context for any one member: external signatures resolve against
   the sibling members' inferred signatures. *)
let member_context t =
  {
    Analyze.default_context with
    Analyze.infer =
      {
        Infer.no_callbacks with
        Infer.external_sig =
          (fun ~service ~role ->
            match Hashtbl.find_opt t.sigs service with
            | Some r -> Infer.signature r role
            | None -> None);
      };
  }

(* Roles a member defines: by entry statement or by [def] declaration. *)
let defined_roles m =
  List.sort_uniq compare
    (Ast.defined_roles m.fl_rolefile
    @ List.map (fun d -> d.Ast.decl_name) (Ast.defs m.fl_rolefile))

let resolve_ref me (r : Ast.role_ref) : node =
  match r.Ast.sref.Ast.service with None -> (me, r.Ast.role) | Some s -> (s, r.Ast.role)

(* Prerequisite nodes of an entry: credentials plus the elector role (an
   election cannot happen until someone holds the elector role). *)
let prereqs me e =
  List.map (resolve_ref me) e.Ast.creds
  @ (match e.Ast.elector with Some r -> [ resolve_ref me r ] | None -> [])

(* The set of nodes derivable from the federation's axioms: an entry fires
   once all its prerequisites are reachable and its constraint is not
   provably unsatisfiable.  Nodes of services outside the federation are
   assumed reachable (we cannot see their policies), so the verdict is an
   over-approximation: a role reported unreachable really is. *)
let closure t (init : node list) =
  let known = member_names t in
  let reach : (node, unit) Hashtbl.t = Hashtbl.create 64 in
  let reachable n = Hashtbl.mem reach n || not (List.mem (fst n) known) in
  List.iter (fun n -> Hashtbl.replace reach n ()) init;
  let firable m e =
    (match e.Ast.constr with Some c -> Analyze.sat c <> `Unsat | None -> true)
    && List.for_all reachable (prereqs m.fl_name e)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun m ->
        List.iter
          (fun e ->
            let head = (m.fl_name, fst e.Ast.head) in
            if (not (Hashtbl.mem reach head)) && firable m e then begin
              Hashtbl.replace reach head ();
              changed := true
            end)
          (Ast.entries m.fl_rolefile))
      t.members
  done;
  reach

let reachable t = closure t []

(* The PR 5 boolean bound, kept as the symbolic prover's soundness
   reference: symbolic reachability is never looser (property-tested). *)
let boolean_can_reach t ~holder ~target =
  Hashtbl.mem (closure t [ holder ]) target || not (List.mem (fst target) (member_names t))

let node_str (s, r) = s ^ "." ^ r

(* ------------------------------------------------------------------ *)
(* The symbolic escalation prover.                                     *)
(* ------------------------------------------------------------------ *)

type hop = {
  h_node : node;  (** the role this hop enters *)
  h_file : string;
  h_line : int;
  h_entry : Ast.entry;  (** the statement, as written *)
  h_via : node;  (** the chain prerequisite this hop consumes *)
  h_via_starred : bool;
  h_elector : (node * Ast.expr list) option;
  h_obligations : (node * Ast.expr list * bool) list;
  h_args : Ast.expr list;  (** symbolic head arguments (path namespace) *)
  h_constr : Ast.constr option;  (** hop constraint, substituted *)
}

type witness = {
  w_holder : node;
  w_holder_args : Ast.expr list;
  w_target : node;
  w_hops : hop list;
  w_constr : Ast.constr option;
  w_carried : bool;
  w_colluders : int;
  w_cross_realm : bool;
  w_interop : bool;
}

exception Infeasible

(* Bound on witnesses kept per node: the prover keeps up to this many
   distinct chains to a node so a later consumer whose constraint conflicts
   with the first chain can still connect through an alternative one. *)
let max_witnesses_per_node = 4

(* Full-path satisfiability re-checks are capped at this many constraint
   atoms; beyond it only each hop's own (substituted) constraint is checked,
   keeping long chains linear.  Skipping a prune never loses soundness —
   the symbolic set only shrinks relative to the boolean bound. *)
let path_sat_atoms_cap = 128

let rec constr_atoms = function
  | Ast.Cand (a, b) | Ast.Cor (a, b) -> constr_atoms a + constr_atoms b
  | Ast.Cnot c | Ast.Cstar c -> constr_atoms c
  | Ast.Crel _ | Ast.Cin _ | Ast.Csubset _ | Ast.Ccall _ | Ast.Cbind _ -> 1

let node_arity t ((svc, role) as n : node) =
  match List.find_opt (fun m -> String.equal m.fl_name svc) t.members with
  | None -> ( match signature t n with Some tys -> List.length tys | None -> 0)
  | Some m -> (
      match
        List.find_opt (fun d -> String.equal d.Ast.decl_name role) (Ast.defs m.fl_rolefile)
      with
      | Some d -> List.length d.Ast.param_types
      | None -> (
          match
            List.find_opt
              (fun e -> String.equal (fst e.Ast.head) role)
              (Ast.entries m.fl_rolefile)
          with
          | Some e -> List.length (snd e.Ast.head)
          | None -> 0))

(* Does the member define [role] by an axiom-form entry (the bootstrap /
   issue_arbitrary idiom, §4.12)? *)
let is_bootstrap t ((svc, role) : node) =
  match List.find_opt (fun m -> String.equal m.fl_name svc) t.members with
  | None -> false
  | Some m ->
      List.exists
        (fun e -> String.equal (fst e.Ast.head) role && Analyze.is_axiom e)
        (Ast.entries m.fl_rolefile)

(* Internal chain representation: hops newest-first, plus bookkeeping the
   public record does not need. *)
type iw = {
  iw_id : int;
  iw_target : node;
  iw_args : Ast.expr list;
  iw_hops_rev : hop list;
  iw_constr : Ast.constr option;
  iw_atoms : int;  (** atom count of [iw_constr] (incremental) *)
}

let finalize t ~holder ~holder_args iw =
  let hops = List.rev iw.iw_hops_rev in
  let known = member_names t in
  let electors =
    List.sort_uniq compare (List.filter_map (fun h -> Option.map fst h.h_elector) hops)
  in
  let entry_refs_external e me =
    List.exists
      (fun r -> not (List.mem (fst (resolve_ref me r)) known))
      (e.Ast.creds
      @ (match e.Ast.elector with Some r -> [ r ] | None -> []))
  in
  {
    w_holder = holder;
    w_holder_args = holder_args;
    w_target = iw.iw_target;
    w_hops = hops;
    w_constr = iw.iw_constr;
    w_carried = hops <> [] && List.for_all (fun h -> h.h_via_starred) hops;
    w_colluders = 1 + List.length electors;
    w_cross_realm = List.exists (fun h -> fst h.h_node <> fst holder) hops;
    w_interop =
      List.exists
        (fun h ->
          entry_refs_external h.h_entry (fst h.h_node)
          || (h.h_node <> holder && is_bootstrap t h.h_node))
        hops;
  }

(* All witness chains a [holder] can derive.  One (first-found, i.e.
   breadth-ordered) witness per reachable node; internally up to
   {!max_witnesses_per_node} chains per node feed further derivation. *)
let prove t ~holder =
  let known = member_names t in
  let base = reachable t in
  let arity = node_arity t holder in
  (* Path-global fresh variables. *)
  let ctr = ref 0 in
  let fresh_var () =
    let v = Printf.sprintf "p%d" !ctr in
    incr ctr;
    Ast.Evar v
  in
  let holder_args = List.init arity (fun _ -> fresh_var ()) in
  (* Indexed entries: id -> (member, entry); prereq node -> consumers. *)
  let all_entries =
    List.concat_map
      (fun m -> List.map (fun e -> (m, e)) (Ast.entries m.fl_rolefile))
      t.members
    |> List.mapi (fun i (m, e) -> (i, m, e))
  in
  (* Cred positions: node -> (entry_id, position).  Any-prereq (incl.
     elector): node -> entry_id. *)
  let cred_index : (node, int * int) Hashtbl.t = Hashtbl.create 64 in
  let any_index : (node, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (id, m, e) ->
      List.iteri
        (fun pos r -> Hashtbl.add cred_index (resolve_ref m.fl_name r) (id, pos))
        e.Ast.creds;
      List.iter (fun p -> Hashtbl.add any_index p id) (prereqs m.fl_name e))
    all_entries;
  let entry_of : (int, member * Ast.entry) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun (id, m, e) -> Hashtbl.replace entry_of id (m, e)) all_entries;
  (* Per-node witness lists (newest first) and the attempt agenda. *)
  let wits : (node, iw list) Hashtbl.t = Hashtbl.create 64 in
  let first : (node, iw) Hashtbl.t = Hashtbl.create 64 in
  let order : node list ref = ref [] in
  let next_id = ref 0 in
  let agenda : (int * int * iw) Queue.t = Queue.create () in
  let pushed : (int * int * int, unit) Hashtbl.t = Hashtbl.create 256 in
  let push entry_id pos via_wit =
    let key = (entry_id, pos, via_wit.iw_id) in
    if not (Hashtbl.mem pushed key) then begin
      Hashtbl.replace pushed key ();
      Queue.add (entry_id, pos, via_wit) agenda
    end
  in
  let witnessed n = Hashtbl.mem wits n in
  let sym_reachable n = Hashtbl.mem base n || witnessed n || not (List.mem (fst n) known) in
  let add_witness n iw =
    let existing = try Hashtbl.find wits n with Not_found -> [] in
    if List.length existing < max_witnesses_per_node then begin
      let was_first = existing = [] in
      Hashtbl.replace wits n (iw :: existing);
      if was_first then begin
        Hashtbl.replace first n iw;
        order := n :: !order
      end;
      (* Entries consuming [n] as a credential can extend this chain. *)
      List.iter (fun (id, pos) -> push id pos iw) (Hashtbl.find_all cred_index n);
      (* [n] becoming derivable for the first time may unlock entries where
         it is a non-via obligation: re-attempt them through every known
         chain to any of their credential prerequisites. *)
      if was_first then
        List.iter
          (fun id ->
            let m, e = Hashtbl.find entry_of id in
            List.iteri
              (fun pos r ->
                let p = resolve_ref m.fl_name r in
                List.iter (fun w -> push id pos w) (try Hashtbl.find wits p with Not_found -> []))
              e.Ast.creds)
          (List.sort_uniq compare (Hashtbl.find_all any_index n))
    end
  in
  (* Attempt to fire [entry] consuming chain [via_wit] at cred position
     [pos]: unify, substitute, prune, extend. *)
  let attempt entry_id pos via_wit =
    let m, e = Hashtbl.find entry_of entry_id in
    let me = m.fl_name in
    let head_node = (me, fst e.Ast.head) in
    let rename = Subst.create () in
    let eqs = ref [] in
    let fresh v =
      let x = fresh_var () in
      Subst.bind rename v x;
      x
    in
    let sym_of_arg = function
      | Ast.Alit l -> Ast.Elit l
      | Ast.Avar v -> ( match Subst.find rename v with Some x -> x | None -> fresh v)
    in
    let unify_args ref_args sym_args =
      let rec go ra sa =
        match (ra, sa) with
        | [], _ | _, [] -> ()
        | Ast.Avar v :: ra', se :: sa' ->
            (match Subst.find rename v with
            | None -> Subst.bind rename v se
            | Some e' -> if e' <> se then eqs := Ast.Crel (Ast.Eq, e', se) :: !eqs);
            go ra' sa'
        | Ast.Alit l :: ra', se :: sa' ->
            (match se with
            | Ast.Elit l' -> if not (Value.equal l l') then raise Infeasible
            | se -> eqs := Ast.Crel (Ast.Eq, Ast.Elit l, se) :: !eqs);
            go ra' sa'
      in
      go ref_args sym_args
    in
    try
      (* 1. the via credential consumes the chain's symbolic arguments. *)
      let via_ref = List.nth e.Ast.creds pos in
      let via_node = resolve_ref me via_ref in
      if via_node <> via_wit.iw_target then raise Infeasible;
      unify_args via_ref.Ast.ref_args via_wit.iw_args;
      (* 2. every other prerequisite must be independently derivable. *)
      let obligations =
        List.concat
          (List.mapi
             (fun i r ->
               if i = pos then []
               else begin
                 let p = resolve_ref me r in
                 if not (sym_reachable p) then raise Infeasible;
                 [ (p, List.map sym_of_arg r.Ast.ref_args, r.Ast.starred) ]
               end)
             e.Ast.creds)
      in
      let elector =
        match e.Ast.elector with
        | None -> None
        | Some r ->
            let p = resolve_ref me r in
            if not (sym_reachable p) then raise Infeasible;
            Some (p, List.map sym_of_arg r.Ast.ref_args)
      in
      (* 3. substitute the statement's constraint into the path namespace. *)
      let entry_c =
        Option.map (Subst.constr ~fresh:(fun v -> fresh v) rename) e.Ast.constr
      in
      let eqs_c = match !eqs with [] -> None | l -> Some (List.fold_left (fun a c -> Ast.Cand (a, c)) (List.hd l) (List.tl l)) in
      let hop_c = Subst.conj eqs_c entry_c in
      (match hop_c with
      | Some c when Analyze.sat c = `Unsat -> raise Infeasible
      | _ -> ());
      let path_c = Subst.conj via_wit.iw_constr hop_c in
      let hop_atoms = match hop_c with None -> 0 | Some c -> constr_atoms c in
      let atoms = via_wit.iw_atoms + hop_atoms in
      (match path_c with
      | Some c when atoms <= path_sat_atoms_cap && Analyze.sat c = `Unsat -> raise Infeasible
      | _ -> ());
      (* 4. the new chain head. *)
      let head_args = List.map sym_of_arg (snd e.Ast.head) in
      let hop =
        {
          h_node = head_node;
          h_file = m.fl_file;
          h_line = e.Ast.entry_line;
          h_entry = e;
          h_via = via_node;
          h_via_starred = via_ref.Ast.starred;
          h_elector = elector;
          h_obligations = obligations;
          h_args = head_args;
          h_constr = hop_c;
        }
      in
      let iw =
        {
          iw_id = (incr next_id; !next_id);
          iw_target = head_node;
          iw_args = head_args;
          iw_hops_rev = hop :: via_wit.iw_hops_rev;
          iw_constr = path_c;
          iw_atoms = atoms;
        }
      in
      add_witness head_node iw
    with Infeasible -> ()
  in
  (* Seed: the holder's own (empty) chain. *)
  let seed =
    { iw_id = 0; iw_target = holder; iw_args = holder_args; iw_hops_rev = []; iw_constr = None; iw_atoms = 0 }
  in
  add_witness holder seed;
  let steps = ref 0 in
  while (not (Queue.is_empty agenda)) && !steps < 200_000 do
    incr steps;
    let entry_id, pos, via_wit = Queue.pop agenda in
    attempt entry_id pos via_wit
  done;
  let results =
    List.rev_map (fun n -> finalize t ~holder ~holder_args (Hashtbl.find first n)) !order
  in
  List.filter (fun w -> w.w_target <> holder) results
  |> List.sort (fun a b -> compare a.w_target b.w_target)

let witnesses t ~holder = prove t ~holder

(* Nodes symbolically derivable from the federation's axioms: every
   bootstrap role plus the union of witness targets over all of them.
   Tighter than the boolean [reachable] closure, which admits chains whose
   hops are each satisfiable but whose accumulated path constraint is
   contradictory; memoized, since the frontier tests below consult it per
   holder. *)
let sym_base t =
  match t.sym_base with
  | Some tbl -> tbl
  | None ->
      let tbl : (node, unit) Hashtbl.t = Hashtbl.create 64 in
      let axioms =
        List.sort_uniq compare
          (List.concat_map
             (fun m ->
               List.filter_map
                 (fun e ->
                   if Analyze.is_axiom e then Some (m.fl_name, fst e.Ast.head) else None)
                 (Ast.entries m.fl_rolefile))
             t.members)
      in
      List.iter (fun a -> Hashtbl.replace tbl a ()) axioms;
      List.iter
        (fun a -> List.iter (fun w -> Hashtbl.replace tbl w.w_target ()) (prove t ~holder:a))
        axioms;
      t.sym_base <- Some tbl;
      tbl

let escalation_witnesses t ~holder =
  let base = sym_base t in
  List.filter (fun w -> not (Hashtbl.mem base w.w_target)) (prove t ~holder)

let escalation t ~holder = List.map (fun w -> w.w_target) (escalation_witnesses t ~holder)

let can_reach t ~holder ~target =
  (not (List.mem (fst target) (member_names t)))
  || Hashtbl.mem (sym_base t) target
  || List.exists (fun w -> w.w_target = target) (prove t ~holder)

(* Interesting default holders for an [--escalation all] sweep: bootstrap
   (axiom-entry) roles — what issue_arbitrary seeds — plus every role not
   derivable from the axioms (exactly the nodes with a potentially non-empty
   frontier). *)
let default_holders t =
  let base = sym_base t in
  let nodes =
    List.concat_map
      (fun m ->
        List.filter_map
          (fun e ->
            let n = (m.fl_name, fst e.Ast.head) in
            if Analyze.is_axiom e || not (Hashtbl.mem base n) then Some n else None)
          (Ast.entries m.fl_rolefile))
      t.members
  in
  List.sort_uniq compare nodes

(* Diagnostic codes a single witness chain triggers (shared by {!check} and
   the CLI's per-witness report). *)
let witness_codes ?(collusion_threshold = 1) w =
  (if w.w_carried then [] else [ "OASIS006" ])
  @ (if w.w_colluders <= collusion_threshold then [ "OASIS007" ] else [])
  @ if w.w_cross_realm && w.w_interop then [ "OASIS008" ] else []

(* Strongly connected components (Tarjan) of the role-dependency graph
   restricted to federation nodes. *)
let sccs nodes edges =
  let index : (node, int) Hashtbl.t = Hashtbl.create 64 in
  let low : (node, int) Hashtbl.t = Hashtbl.create 64 in
  let on_stack : (node, unit) Hashtbl.t = Hashtbl.create 64 in
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace low v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace low v (min (Hashtbl.find low v) (Hashtbl.find low w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace low v (min (Hashtbl.find low v) (Hashtbl.find index w)))
      (try Hashtbl.find_all edges v with Not_found -> []);
    if Hashtbl.find low v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      out := pop [] :: !out
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) nodes;
  !out

let check ?(per_file = false) ?(collusion_threshold = 1) t =
  let diags = ref [] in
  let add ?(sev = Analyze.Error) ~file ~line code fmt =
    Format.kasprintf
      (fun message ->
        diags := { Analyze.code; severity = sev; file; line; message } :: !diags)
      fmt
  in
  let known = member_names t in
  let member name = List.find_opt (fun m -> String.equal m.fl_name name) t.members in
  (* Diagnostic anchor for a role: its first entry line, falling back to the
     [def] declaration, then the member's first item — never 0 for a parsed
     rolefile. *)
  let role_line name role =
    match member name with
    | None -> 0
    | Some m ->
        let first_entry =
          List.fold_left
            (fun acc e ->
              if acc = 0 && String.equal (fst e.Ast.head) role then e.Ast.entry_line else acc)
            0
            (Ast.entries m.fl_rolefile)
        in
        if first_entry > 0 then first_entry
        else
          let decl =
            List.fold_left
              (fun acc d ->
                if acc = 0 && String.equal d.Ast.decl_name role then d.Ast.decl_line else acc)
              0
              (Ast.defs m.fl_rolefile)
          in
          if decl > 0 then decl
          else
            List.fold_left (fun acc i -> if acc = 0 then Ast.item_line i else acc) 0 m.fl_rolefile
  in
  let role_file name = match member name with Some m -> m.fl_file | None -> name in

  (* Per-file diagnostics under each member's federation context. *)
  if per_file then
    List.iter
      (fun m ->
        diags :=
          List.rev_append
            (List.rev (Analyze.check ~file:m.fl_file ~context:(member_context t) m.fl_rolefile))
            !diags)
      t.members;

  (* OASIS003 / OASIS004 / OASIS005: per-reference checks. *)
  List.iter
    (fun m ->
      List.iter
        (fun e ->
          let line = e.Ast.entry_line in
          let refs =
            List.map (fun r -> (`Cred, r)) e.Ast.creds
            @ (match e.Ast.elector with Some r -> [ (`Elector, r) ] | None -> [])
            @ (match e.Ast.revoker with Some r -> [ (`Revoker, r) ] | None -> [])
          in
          List.iter
            (fun (kind, r) ->
              let svc, role = resolve_ref m.fl_name r in
              let external_ref = Option.is_some r.Ast.sref.Ast.service in
              if external_ref && List.mem svc known then begin
                match member svc with
                | Some peer when not (List.mem role (defined_roles peer)) ->
                    add ~file:m.fl_file ~line "OASIS003"
                      "service %s defines no role %s" svc role
                | _ -> ()
              end;
              if external_ref && r.Ast.starred && not (List.mem svc known) then
                add ~sev:Analyze.Warning ~file:m.fl_file ~line "OASIS004"
                  "starred prerequisite %s is issued outside the federation: there is \
                   no revocation channel to cascade over"
                  (node_str (svc, role));
              if kind = `Cred && (not r.Ast.starred) && List.mem svc known then
                add ~sev:Analyze.Info ~file:m.fl_file ~line "OASIS005"
                  "prerequisite %s is revocable but consumed without *; revoking it \
                   will not revoke %s"
                  (node_str (svc, role))
                  (fst e.Ast.head))
            refs)
        (Ast.entries m.fl_rolefile))
    t.members;

  (* Reachability and cycles. *)
  let reach = reachable t in
  let nodes =
    List.concat_map
      (fun m ->
        List.filter_map
          (fun role ->
            if
              List.exists
                (fun e -> String.equal (fst e.Ast.head) role)
                (Ast.entries m.fl_rolefile)
            then Some (m.fl_name, role)
            else None)
          (defined_roles m))
      t.members
  in
  (* head -> prerequisite edges, federation nodes only. *)
  let edges : (node, node) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun m ->
      List.iter
        (fun e ->
          let head = (m.fl_name, fst e.Ast.head) in
          List.iter
            (fun p -> if List.mem (fst p) known then Hashtbl.add edges head p)
            (prereqs m.fl_name e))
        (Ast.entries m.fl_rolefile))
    t.members;
  let in_deadlock : (node, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun scc ->
      let cyclic =
        match scc with
        | [ v ] -> List.exists (fun w -> w = v) (Hashtbl.find_all edges v)
        | _ -> List.length scc > 1
      in
      if cyclic && List.for_all (fun n -> not (Hashtbl.mem reach n)) scc then begin
        List.iter (fun n -> Hashtbl.replace in_deadlock n ()) scc;
        let anchor = List.hd (List.sort compare scc) in
        add
          ~file:(role_file (fst anchor))
          ~line:(role_line (fst anchor) (snd anchor))
          "OASIS001" "credential cycle %s has no bootstrap: no service can issue the \
                      first credential (deadlock)"
          (String.concat " -> " (List.map node_str (scc @ [ List.hd scc ])))
      end)
    (sccs nodes edges);
  List.iter
    (fun n ->
      if (not (Hashtbl.mem reach n)) && not (Hashtbl.mem in_deadlock n) then
        add ~sev:Analyze.Warning
          ~file:(role_file (fst n))
          ~line:(role_line (fst n) (snd n))
          "OASIS002" "role %s is unreachable: no chain of statements starting from the \
                      federation's axioms can enter it"
          (node_str n))
    nodes;

  (* OASIS006/OASIS007/OASIS008: escalation-frontier diagnostics.  Holders
     are the roles not derivable from the axioms — a base-reachable holder
     has an empty frontier by definition, so healthy federations pay
     nothing here. *)
  let holders =
    let base = sym_base t in
    List.filter (fun n -> not (Hashtbl.mem base n)) nodes
  in
  List.iter
    (fun h ->
      List.iter
        (fun w ->
          let file = role_file (fst w.w_target) and line = role_line (fst w.w_target) (snd w.w_target) in
          List.iter
            (fun code ->
              match code with
              | "OASIS006" ->
                  add ~sev:Analyze.Warning ~file ~line "OASIS006"
                    "revocation-blind escalation: a holder of %s can reach %s through a \
                     chain that consumes it without *; firing %s does not revoke %s \
                     (§4.11 lapses)"
                    (node_str h) (node_str w.w_target) (node_str h) (node_str w.w_target)
              | "OASIS007" ->
                  add ~sev:Analyze.Warning ~file ~line "OASIS007"
                    "low collusion budget: a holder of %s reaches %s with only %d \
                     colluding principal%s (threshold %d)"
                    (node_str h) (node_str w.w_target) w.w_colluders
                    (if w.w_colluders = 1 then "" else "s")
                    collusion_threshold
              | "OASIS008" ->
                  add ~sev:Analyze.Warning ~file ~line "OASIS008"
                    "cross-realm escalation: a holder of %s at %s reaches %s through \
                     interop/bootstrap roles"
                    (node_str h) (fst h) (node_str w.w_target)
              | _ -> ())
            (witness_codes ~collusion_threshold w))
        (escalation_witnesses t ~holder:h))
    holders;

  List.stable_sort
    (fun a b ->
      compare (a.Analyze.file, a.Analyze.line, a.Analyze.code)
        (b.Analyze.file, b.Analyze.line, b.Analyze.code))
    (List.rev !diags)

(* Extend [Service.create ?lint] gating to the federation-wide codes: the
   candidate service joins the already registered members and the combined
   federation is checked (the caller keeps only the candidate-anchored
   diagnostics).  Installed here because this module depends on [Service];
   see [Service.set_federation_linter]. *)
let () =
  Service.set_federation_linter (fun reg ~name ~rolefile ->
      let peers =
        List.map
          (fun s ->
            {
              fl_name = Service.name s;
              fl_file = Service.name s;
              fl_rolefile = Service.rolefile s;
            })
          (Service.services reg)
      in
      check (make (peers @ [ { fl_name = name; fl_file = name; fl_rolefile = rolefile } ])))
