module Net = Oasis_sim.Net
module Stats = Oasis_sim.Stats

type t = { s_disk : Disk.t; s_file : string }

let create disk ~file = { s_disk = disk; s_file = file }
let file t = t.s_file
let disk t = t.s_disk

let save t payload k =
  let framed = Wal.frame_with ~key:t.s_file payload in
  Stats.incr (Net.stats (Disk.net t.s_disk)) "store.snapshot";
  Stats.add_bytes (Net.stats (Disk.net t.s_disk)) "store.snapshot" (String.length framed);
  Disk.write_atomic t.s_disk ~file:t.s_file framed k

let load t =
  match Wal.decode_with ~key:t.s_file (Disk.read t.s_disk ~file:t.s_file) with
  | [ payload ] -> Some payload
  | _ -> None
