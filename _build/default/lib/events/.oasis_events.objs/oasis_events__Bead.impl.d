lib/events/bead.ml: Composite Event List
