lib/util/siphash.mli:
