(** Event broker: server-side signalling and client-side sessions (§6.2.2,
    §6.8, §4.10).

    A {!server} lives on a simulated host and signals events to connected
    {!session}s according to their registered templates.  The transport
    implements the paper's robustness machinery:

    - every notification carries a per-session stream sequence number; gaps
      are detected by the client, which nacks and triggers selective resend
      from the server's unacked buffer;
    - a {e heartbeat protocol}: the server sends a heartbeat every [t]
      seconds carrying an {e event-horizon timestamp} (a lower bound on the
      stamps of events yet to be signalled, §6.8.2); the client acknowledges
      every [i] heartbeats so the server can discard delivered state;
    - a client that sees neither events nor heartbeats for 1.5·[t] marks the
      session {e stale} and surfaces it (OASIS turns this into credential
      records entering the [Unknown] state, §4.10);
    - {e pre-registration} and {e retrospective registration} (§6.8.1): the
      server retains recent events for a bounded period; a registration with
      [~since] immediately replays retained matching events from that time
      before going live, closing the registration race;
    - {e crash recovery}: a host crash ({!Oasis_sim.Net.crash_host}) wipes
      the server's volatile per-session delivery state but not its
      retained-event log (stable storage) or its monotone identifier
      counters.  A client whose session stays stale for several heartbeat
      periods assumes the server died, reconnects with backed-off retries,
      and re-registers every template retrospectively from its last safe
      horizon — so no retained event is lost, and per-registration
      duplicate suppression (by monotone event seq) keeps delivery
      exactly-once across replays. *)

type server
type session
type registration

(** {1 Server side} *)

val create_server :
  Oasis_sim.Net.t ->
  Oasis_sim.Net.host ->
  name:string ->
  ?heartbeat:float ->
  ?ack_every:int ->
  ?retention:float ->
  ?horizon_lag:float ->
  ?coalesce:bool ->
  ?disk:Oasis_store.Disk.t ->
  unit ->
  server
(** Defaults: heartbeat 1.0 s, ack every 4 heartbeats, retention 10 s of
    events for retrospective registration, horizon lag 0 (events are
    signalled with monotone stamps), coalescing off.

    With [~disk], the retained-event log is durable: every signalled
    event is appended to a write-ahead log ([broker.<name>.wal]) on the
    given simulated device.  A host crash then drops the in-memory
    retained queue and a restart rebuilds it from the durable bytes —
    events whose group commit had not completed by the crash are
    genuinely lost, which is the honest durability window of group
    commit.  The log is compacted (atomically rewritten to the retained
    suffix) every 256 signals.  Without [~disk] the retained log is
    assumed to survive crashes by fiat, as before.

    With [~coalesce:true], matched events are not delivered immediately:
    they are buffered per session and flushed on the next heartbeat tick as
    a single message that both delivers the batch and carries the
    heartbeat, so steady-state traffic is O(sessions) per period instead of
    O(events).  The batch is buffered under a normal stream sequence
    number, so gap detection, nack/resend and exactly-once duplicate
    suppression are unchanged; latency is bounded by one heartbeat
    period. *)

val server_name : server -> string
val server_host : server -> Oasis_sim.Net.host

val server_heartbeat : server -> float
(** The server's heartbeat period (peers pace retries off it). *)

val signal : server -> ?stamp:float -> string -> Event.value list -> Event.t
(** [signal srv name params] stamps (from the host clock unless [stamp] is
    given), sequences, retains and delivers the event to all matching
    sessions.  Returns the concrete event. *)

val set_admission : server -> (credentials:string list -> bool) -> unit
(** Admission control applied at session establishment (§6.2.2); the
    default admits everyone.  Event security (ch. 7) installs real checks. *)

val set_registration_filter :
  server -> (credentials:string list -> Event.template -> Event.template option) -> unit
(** Policy hook consulted at registration time: may narrow the template or
    reject it ([None]).  ERDL preprocessing (fig 7.1) plugs in here. *)

val server_horizon : server -> float
(** Current event-horizon timestamp the server would advertise. *)

val on_heartbeat_tick : server -> (unit -> unit) -> unit
(** Run [f] at the top of every heartbeat tick (host up, server running),
    before per-session coalesce buffers are flushed — anything [f] signals
    on a coalescing server piggybacks on that same tick's heartbeat
    message.  Services use this to flush their invalidation digests. *)

val sessions : server -> int

val server_buffered : server -> int
(** Deliveries sitting in per-session resend buffers, awaiting
    acknowledgement (pruned by client acks). *)

val server_retained : server -> int
(** Events currently in the retrospective-registration retention log
    (after purging expired ones). *)

val shutdown_server : server -> unit
(** Stop the server: cancels its heartbeat timer (so the simulation can
    drain), drops all sessions and refuses new connections. *)

val fingerprint : server -> int64
(** Deterministic hash of the broker's protocol-visible state: monotone
    counters, the retained-event log, and every live session's stream
    position, unacked resend buffer and coalesce queue.  The model checker
    folds it into world state hashes for interleaving pruning. *)

(** {1 Client side} *)

val connect :
  Oasis_sim.Net.t ->
  Oasis_sim.Net.host ->
  server ->
  ?credentials:string list ->
  on_result:((session, string) result -> unit) ->
  unit ->
  unit
(** Establish a session (one network round trip; admission control runs at
    the server). *)

val register :
  session ->
  ?since:float ->
  Event.template ->
  (Event.t -> unit) ->
  registration
(** Register interest.  With [~since], performs retrospective registration:
    retained events with [stamp >= since] matching the template are
    delivered (in stamp order) before live ones.  The callback runs on the
    client host after notification latency.  Duplicate-suppressed. *)

val deregister : registration -> unit

val pre_register : session -> Event.template -> unit
(** Declare future interest so the server keeps matching events buffered
    (accounted; retention in this implementation is server-wide). *)

val horizon : session -> float
(** Latest event-horizon timestamp received from this server (the client's
    knowledge of "no more events before ..."). *)

val stale : session -> bool

val on_horizon : session -> (float -> unit) -> unit
(** Called whenever the session's horizon advances. *)

val on_staleness : session -> (bool -> unit) -> unit
(** Called with [true] when the session goes stale (missed heartbeats) and
    [false] on recovery. *)

val close : session -> unit

val session_server : session -> server
