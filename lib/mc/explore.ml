(* Exhaustive small-scope exploration of fault interleavings.

   Stateless, CHESS-style: a schedule is the list of choice indices taken at
   the counted decision points, and every run re-executes the whole
   deterministic scenario under its schedule (the engine and every PRNG are
   rebuilt from the seed, so a prefix of choices always reproduces the same
   prefix of states).  The DFS frontier holds schedules; running schedule
   [s] discovers, at every decision point at or beyond [length s], which
   alternative choices exist, and pushes [prefix @ [j]] for each.

   Two reductions, both sound:

   - {e sleep sets} (Godefroid).  When branch [j] of a node is explored,
     branches [0..j-1] join the child's sleep set; executing an event
     removes the sleeping events that do not commute with it.  A pending
     event found asleep at a node need not be explored there — the
     interleaving that runs it first is reachable from an already-pushed
     sibling.  Commutation is judged from the engine tags ([d:]/[t:]/[s:]
     events on different hosts commute) refined by observation: an event
     whose execution drew from the shared network PRNG is dependent on
     everything, since reordering it shifts the stream all later draws see.

   - {e fingerprint pruning}.  The world fingerprint (service credential
     tables, broker state, durable bytes, host liveness, pending event
     multiset) is taken at every frontier decision point.  If an equal
     state was already expanded with at least the remaining depth budget
     and a sleep set no larger than the current one, its alternatives are
     not pushed again.  The run itself still completes to the horizon so
     final invariants are always judged. *)

module Engine = Oasis_sim.Engine
module Net = Oasis_sim.Net
module Prng = Oasis_util.Prng
module Json = Oasis_util.Json

type params = {
  depth : int;  (* max counted decision points per run *)
  window : float;  (* reorder window: how far ahead of the earliest
                      deadline an event may be pulled *)
  max_branch : int;  (* eligible alternatives considered per point *)
  max_runs : int;
  reduce : bool;  (* sleep sets + fingerprint pruning *)
}

let default_params = { depth = 12; window = 0.1; max_branch = 3; max_runs = 100_000; reduce = true }

(* --- one run under a schedule --- *)

type decision = {
  d_fp : int64;  (* world fingerprint at hook entry (0 when not reducing) *)
  d_eligible : Engine.event array;
  d_choice : int;
  d_sleep : int list;  (* seqs asleep at node entry, sorted *)
}

type run_result = {
  r_decisions : decision list;  (* in execution order *)
  r_choices : int list;  (* the choices actually taken *)
  r_violations : (string * string) list;  (* (invariant, detail), oldest first *)
  r_marks : (string * string) list;
  r_outcomes : (string * string * string * string) list;
      (* principal, key, expected, found *)
}

let host_of_tag tag =
  let n = String.length tag in
  if n >= 2 && tag.[1] = ':' then
    match tag.[0] with
    | 'd' | 't' | 's' -> Some (String.sub tag 2 (n - 2))
    | _ -> None
  else None

let rec take n = function [] -> [] | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

let run_schedule ?seed ?twin (spec : Scenario.t) params schedule =
  let w = Scenario.instantiate ?seed spec in
  let engine = w.Scenario.w_engine in
  let prng = Net.prng w.Scenario.w_net in
  let lo, hi = spec.Scenario.sc_window in
  let schedule = Array.of_list schedule in
  let decisions = ref [] in
  let ndec = ref 0 in
  let sleep = ref [] in  (* (seq, tag) of pending events currently asleep *)
  let last = ref None in  (* tag of the event picked last step + draws then *)
  let sched evs =
    (* Attribute PRNG draws to the event executed since the previous hook
       call, and wake the sleeping events that do not commute with it. *)
    (match !last with
    | None -> ()
    | Some (tag, d0) ->
        let drew = Prng.draws prng > d0 in
        let h = host_of_tag tag in
        sleep :=
          List.filter
            (fun (_, tag') ->
              match (h, host_of_tag tag') with
              | Some a, Some b -> a <> b && not drew
              | _ -> false)
            !sleep);
    let default = List.hd evs in
    let min_at = default.Engine.ev_at in
    let chosen =
      if min_at < lo || min_at > hi || !ndec >= params.depth then default
      else begin
        let eligible =
          take params.max_branch
            (List.filter (fun e -> e.Engine.ev_at <= min_at +. params.window) evs)
        in
        match eligible with
        | [] | [ _ ] -> default
        | _ ->
            let eligible = Array.of_list eligible in
            let k = !ndec in
            let choice = if k < Array.length schedule then schedule.(k) else 0 in
            let choice = if choice >= Array.length eligible then 0 else choice in
            let fp = if params.reduce then Scenario.fingerprint w else 0L in
            Scenario.check_safety w spec;
            decisions :=
              {
                d_fp = fp;
                d_eligible = eligible;
                d_choice = choice;
                d_sleep = List.sort compare (List.map fst !sleep);
              }
              :: !decisions;
            incr ndec;
            if params.reduce then
              (* Branches below the chosen one are explored as siblings of
                 this node; their continuations cover running them first, so
                 they sleep in this child until something dependent runs. *)
              for i = 0 to choice - 1 do
                let e = eligible.(i) in
                if not (List.mem_assoc e.Engine.ev_seq !sleep) then
                  sleep := (e.Engine.ev_seq, e.Engine.ev_tag) :: !sleep
              done;
            eligible.(choice)
      end
    in
    last := Some (chosen.Engine.ev_tag, Prng.draws prng);
    Some chosen.Engine.ev_seq
  in
  Engine.set_scheduler engine (Some sched);
  Engine.run ~until:spec.Scenario.sc_horizon engine;
  Engine.set_scheduler engine None;
  Scenario.check_final ?twin w spec;
  let decisions = List.rev !decisions in
  {
    r_decisions = decisions;
    r_choices = List.map (fun d -> d.d_choice) decisions;
    r_violations = List.rev w.Scenario.w_violations;
    r_marks = Scenario.commit_marks w spec;
    r_outcomes =
      List.map
        (fun (p, key, exp, got) -> (p, key, Scenario.outcome_str exp, Scenario.outcome_str got))
        (Scenario.outcomes w spec);
  }

(* --- the crash-free twin (for Crash_equiv) --- *)

let needs_twin spec =
  List.exists (fun i -> i = Scenario.Crash_equiv) spec.Scenario.sc_invariants

let twin_of ?seed spec params =
  if not (needs_twin spec) then None
  else begin
    let stripped = Scenario.strip_faults spec in
    let w = Scenario.instantiate ?seed stripped in
    Engine.run ~until:spec.Scenario.sc_horizon w.Scenario.w_engine;
    ignore params;
    Some
      {
        Scenario.tw_marks = Scenario.commit_marks w spec;
        tw_outcomes = Scenario.final_outcome_table w spec;
      }
  end

(* --- exploration --- *)

type counterexample = {
  cx_schedule : int list;
  cx_invariant : string;
  cx_detail : string;
}

type stats = {
  mutable st_runs : int;
  mutable st_decisions : int;
  mutable st_pruned_sleep : int;
  mutable st_pruned_fp : int;
  mutable st_frontier_peak : int;
  mutable st_truncated : bool;  (* max_runs exhausted before the frontier *)
}

type report = {
  rp_runs : int;
  rp_decisions : int;
  rp_distinct_states : int;
  rp_pruned_sleep : int;
  rp_pruned_fp : int;
  rp_frontier_peak : int;
  rp_exhaustive : bool;
  rp_violations : counterexample list;  (* first-found order *)
}

let subset small big =
  (* both sorted *)
  let rec go s b =
    match (s, b) with
    | [], _ -> true
    | _, [] -> false
    | x :: s', y :: b' -> if x = y then go s' b' else if x > y then go s b' else false
  in
  go small big

let explore ?seed (spec : Scenario.t) params =
  let twin = twin_of ?seed spec params in
  let stats =
    {
      st_runs = 0;
      st_decisions = 0;
      st_pruned_sleep = 0;
      st_pruned_fp = 0;
      st_frontier_peak = 0;
      st_truncated = false;
    }
  in
  (* fp -> (remaining budget, sleep seqs) entries already expanded there *)
  let fp_table : (int64, (int * int list) list) Hashtbl.t = Hashtbl.create 1024 in
  let violations = ref [] in
  let nviol = ref 0 in
  let frontier = ref [ [] ] in
  let flen = ref 1 in
  let push s =
    frontier := s :: !frontier;
    incr flen;
    if !flen > stats.st_frontier_peak then stats.st_frontier_peak <- !flen
  in
  let covered fp budget slp =
    match Hashtbl.find_opt fp_table fp with
    | None -> false
    | Some entries -> List.exists (fun (b, s) -> b >= budget && subset s slp) entries
  in
  let record fp budget slp =
    let entries = Option.value (Hashtbl.find_opt fp_table fp) ~default:[] in
    if not (List.exists (fun (b, s) -> b >= budget && subset s slp) entries) then
      Hashtbl.replace fp_table fp ((budget, slp) :: entries)
  in
  let continue = ref true in
  while !continue do
    match !frontier with
    | [] -> continue := false
    | s :: rest ->
        frontier := rest;
        decr flen;
        if stats.st_runs >= params.max_runs then begin
          stats.st_truncated <- true;
          continue := false
        end
        else begin
          let r = run_schedule ?seed ?twin spec params s in
          stats.st_runs <- stats.st_runs + 1;
          stats.st_decisions <- stats.st_decisions + List.length r.r_decisions;
          (match r.r_violations with
          | [] -> ()
          | (inv, detail) :: _ ->
              if !nviol < 64 then begin
                violations :=
                  { cx_schedule = r.r_choices; cx_invariant = inv; cx_detail = detail }
                  :: !violations;
                incr nviol
              end);
          let base = List.length s in
          List.iteri
            (fun k d ->
              if k >= base then begin
                let budget = params.depth - k in
                let fresh = (not params.reduce) || not (covered d.d_fp budget d.d_sleep) in
                if not fresh then stats.st_pruned_fp <- stats.st_pruned_fp + 1
                else begin
                  let prefix = take k r.r_choices in
                  for j = Array.length d.d_eligible - 1 downto 1 do
                    let e = d.d_eligible.(j) in
                    if params.reduce && List.mem e.Engine.ev_seq d.d_sleep then
                      stats.st_pruned_sleep <- stats.st_pruned_sleep + 1
                    else push (prefix @ [ j ])
                  done
                end;
                if params.reduce then record d.d_fp budget d.d_sleep
              end)
            r.r_decisions
        end
  done;
  {
    rp_runs = stats.st_runs;
    rp_decisions = stats.st_decisions;
    rp_distinct_states = Hashtbl.length fp_table;
    rp_pruned_sleep = stats.st_pruned_sleep;
    rp_pruned_fp = stats.st_pruned_fp;
    rp_frontier_peak = stats.st_frontier_peak;
    rp_exhaustive = not stats.st_truncated;
    rp_violations = List.rev !violations;
  }

(* --- seed-sweep baseline --- *)

(* What testing without a model checker looks like: run the scenario under
   [n] different network seeds, default scheduling throughout.  Returns the
   violations found (with the seed in the detail). *)
let seed_sweep ?twin:_ (spec : Scenario.t) params ~seeds =
  let found = ref [] in
  for s = 1 to seeds do
    let seed = Int64.of_int s in
    let twin = twin_of ~seed spec params in
    let r = run_schedule ~seed ?twin spec { params with depth = 0 } [] in
    List.iter
      (fun (inv, detail) ->
        found :=
          {
            cx_schedule = [];
            cx_invariant = inv;
            cx_detail = Printf.sprintf "seed %d: %s" s detail;
          }
          :: !found)
      r.r_violations
  done;
  List.rev !found

(* --- counterexample minimization --- *)

(* Greedy: try zeroing each nonzero choice from the tail forward (a zero is
   the default schedule at that point), keep any zeroing that still violates
   the same invariant, then drop the trailing zeros.  Each probe is one
   re-execution. *)
let minimize ?seed (spec : Scenario.t) params cx =
  let twin = twin_of ?seed spec params in
  let still_fails choices =
    let r = run_schedule ?seed ?twin spec params choices in
    List.exists (fun (inv, _) -> inv = cx.cx_invariant) r.r_violations
  in
  let cur = Array.of_list cx.cx_schedule in
  for i = Array.length cur - 1 downto 0 do
    if cur.(i) <> 0 then begin
      let saved = cur.(i) in
      cur.(i) <- 0;
      if not (still_fails (Array.to_list cur)) then cur.(i) <- saved
    end
  done;
  let l = ref (Array.to_list cur) in
  let rec strip xs = match List.rev xs with 0 :: tl -> strip (List.rev tl) | _ -> xs in
  l := strip !l;
  let final = run_schedule ?seed ?twin spec params !l in
  let inv, detail =
    match List.find_opt (fun (inv, _) -> inv = cx.cx_invariant) final.r_violations with
    | Some v -> v
    | None -> (cx.cx_invariant, cx.cx_detail)
  in
  { cx_schedule = !l; cx_invariant = inv; cx_detail = detail }

(* --- persistent, replayable schedules --- *)

type schedule_file = {
  sf_scenario : string;
  sf_invariant : string;
  sf_detail : string;
  sf_choices : int list;
  sf_depth : int;
  sf_window : float;
  sf_max_branch : int;
  sf_seed : int64;
}

let schedule_file_of_cx (spec : Scenario.t) params ?seed cx =
  {
    sf_scenario = spec.Scenario.sc_name;
    sf_invariant = cx.cx_invariant;
    sf_detail = cx.cx_detail;
    sf_choices = cx.cx_schedule;
    sf_depth = params.depth;
    sf_window = params.window;
    sf_max_branch = params.max_branch;
    sf_seed = Option.value seed ~default:spec.Scenario.sc_seed;
  }

let schedule_to_json sf =
  Json.Obj
    [
      ("version", Json.Int 1);
      ("scenario", Json.Str sf.sf_scenario);
      ("invariant", Json.Str sf.sf_invariant);
      ("detail", Json.Str sf.sf_detail);
      ("choices", Json.Arr (List.map (fun c -> Json.Int c) sf.sf_choices));
      ("depth", Json.Int sf.sf_depth);
      ("window", Json.Float sf.sf_window);
      ("max_branch", Json.Int sf.sf_max_branch);
      ("seed", Json.Str (Int64.to_string sf.sf_seed));
    ]

let schedule_of_json j =
  let ( let* ) o f = match o with Some v -> f v | None -> Error "schedule: missing field" in
  let* scenario = Option.bind (Json.member "scenario" j) Json.to_str in
  let* invariant = Option.bind (Json.member "invariant" j) Json.to_str in
  let* choices = Option.bind (Json.member "choices" j) Json.to_list in
  let* depth = Option.bind (Json.member "depth" j) Json.to_int in
  let* window = Option.bind (Json.member "window" j) Json.to_float in
  let* max_branch = Option.bind (Json.member "max_branch" j) Json.to_int in
  let* seed = Option.bind (Json.member "seed" j) Json.to_str in
  let detail =
    Option.value (Option.bind (Json.member "detail" j) Json.to_str) ~default:""
  in
  match Int64.of_string_opt seed with
  | None -> Error "schedule: bad seed"
  | Some seed ->
      let choices = List.filter_map Json.to_int choices in
      Ok
        {
          sf_scenario = scenario;
          sf_invariant = invariant;
          sf_detail = detail;
          sf_choices = choices;
          sf_depth = depth;
          sf_window = window;
          sf_max_branch = max_branch;
          sf_seed = seed;
        }

let save_schedule path sf =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Json.to_string (schedule_to_json sf));
      Out_channel.output_char oc '\n')

let load_schedule path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | text -> (
      match Json.parse (String.trim text) with
      | Error e -> Error e
      | Ok j -> schedule_of_json j)

let replay (spec : Scenario.t) sf =
  let params =
    {
      default_params with
      depth = sf.sf_depth;
      window = sf.sf_window;
      max_branch = sf.sf_max_branch;
    }
  in
  let twin = twin_of ~seed:sf.sf_seed spec params in
  run_schedule ~seed:sf.sf_seed ?twin spec params sf.sf_choices
