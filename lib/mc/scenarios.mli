(** The built-in scenarios.

    - [golf_club] — the §3.2.2/§4.11 membership narrative: durable club
      service, Chair fires a member, host crashes mid-cascade, member must
      stay fired across recovery and re-enter only after re-hire.
    - [mssa] — the §5 hospital flavour: a partition between the admissions
      and records services traps a logoff's revocation cascade; the world
      must converge within the heartbeat bound of the heal, and a
      struck-off doctor stays struck off.
    - [planted] — a deliberately planted client bug (live-only
      re-registration after a crash, no [~since]) whose triggering
      ordering lies outside the latency envelope, so seed sweeps cannot
      reach it and exhaustive exploration must.
    - [cross_shard_fire] — the club instance-sharded across two durable
      shard services ({!Oasis_core.Shard}): alice's Editor on shard 1 is
      derived from her Member on shard 0, the Chair fires the Member, and
      the owning shard crashes while the revocation cascade, the
      cross-shard ModifiedBatch digest, the WAL group commit and the ack
      are all in flight.  Both shards must keep the §4.11 discipline,
      converge after recovery, and match the crash-free twin.
    - [replica_failover] — the club on one shard replicated K = 3
      ({!Oasis_core.Replica}): the Chair fires alice and the primary
      crashes mid-cascade, {e never to return}; a backup must win the
      lease election, adopt the majority log, and the §4.11 discipline,
      convergence and crash-free equivalence must all survive the
      promotion. *)

val golf_club : Scenario.t
val mssa : Scenario.t
val planted : Scenario.t
val cross_shard_fire : Scenario.t
val replica_failover : Scenario.t

val all : Scenario.t list
val find : string -> Scenario.t option
