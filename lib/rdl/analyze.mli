(** Static analysis of RDL rolefiles.

    The role-entry engine starts every statement with an empty environment
    (§3.2.2), so a statement mentioning a variable that can never be bound
    does not fail loudly — it silently never fires.  [check] turns that
    defect class, and several others, into diagnostics at registration time:

    {v
    code    severity  meaning
    RDL000  error     source does not parse (check_src only)
    RDL001  error     variable can never be bound; statement never fires
    RDL002  warning   x <- e binder never used
    RDL003  warning   variable bound by <- more than once
    RDL004  warning   duplicate entry statement
    RDL005  error     arity mismatch (role or extension function)
    RDL006  error     type error
    RDL007  error     unknown extension function
    RDL008  warning   unknown group in an `in' constraint
    RDL009  warning   unused import
    RDL010  warning   object type used in a def but never imported
    RDL011  error     constraint unsatisfiable; statement never fires
    RDL012  warning   statement subsumed by an earlier same-head statement
                      with a strictly weaker constraint
    v}

    Federation-wide checks (credential cycles, unreachable roles, revocation
    gaps) live in [Oasis.Federation_lint] and reuse {!diag}. *)

type severity = Error | Warning | Info

type diag = {
  code : string;  (** stable code, e.g. ["RDL001"] *)
  severity : severity;
  file : string;
  line : int;  (** 1-based source line; 0 when unknown *)
  message : string;
}

(** What the analyzer may assume about the hosting service. *)
type context = {
  infer : Infer.callbacks;
      (** Signature callbacks for the arity/type pass (RDL005/RDL006). *)
  known_funcs : string list option;
      (** When [Some], extension functions outside the list raise RDL007;
          [None] disables the check. *)
  known_groups : string list option;
      (** When [Some], groups outside the list raise RDL008; [None] disables
          the check (services create groups lazily). *)
  ambient : string list;
      (** Variables treated as pre-bound in every entry (none in stock
          OASIS). *)
}

val default_context : context
(** No callbacks, no known function/group universe, no ambient variables. *)

val check : ?file:string -> ?context:context -> Ast.rolefile -> diag list
(** All diagnostics for one rolefile, sorted by (line, code).  [file] is the
    anchor used in rendered diagnostics (default ["<rolefile>"]). *)

val check_src :
  ?file:string ->
  ?context:context ->
  ?resolve_literal:(string -> Value.t option) ->
  string ->
  diag list
(** [check] on source text; parse and lex failures become a single RDL000
    error diagnostic instead of an exception. *)

val sat : Ast.constr -> [ `Sat | `Unsat | `Unknown ]
(** Satisfiability of a constraint over unknown bindings: NNF, capped DNF,
    then per-conjunct constant folding (via {!Eval.compare_rel}), integer
    interval reasoning, equality/disequality sets and opposite-polarity
    detection on identical opaque atoms.  [`Unsat] is a proof; [`Sat] is only
    returned when some conjunct is fully decided; anything else is
    [`Unknown]. *)

val is_axiom : Ast.entry -> bool
(** An entry with no credentials, no elector and no constraint: the
    declaration idiom bootstrapped via [issue_arbitrary] (§4.12), never
    fired by the matching engine. *)

val implies : Ast.constr -> Ast.constr -> bool
(** [implies a b] proves every model of [a] satisfies [b] (the
    unsatisfiability of [a /\ not b]).  Sound but incomplete: [false] means
    "not proved", not "does not imply". *)

val model :
  ?default:(string -> Value.t) ->
  Ast.constr ->
  ((string * Value.t) list * (Ast.expr * string) list) option
(** Best-effort model of a constraint: a per-variable assignment read off
    the first DNF conjunct not proved unsatisfiable (pinned equalities,
    interval picks, [default] for free variables — default [fun _ -> Str
    "w"] — nudged off the disequality set), plus the positive
    group-membership atoms [(element, group)] the conjunct requires.  [None]
    only when the constraint is provably unsatisfiable (or too wide to
    normalise).  The model is not guaranteed to satisfy opaque atoms;
    callers needing certainty must replay it dynamically (the witness
    compiler in [Oasis_mc.Witness] does). *)

val gates : strict:bool -> diag -> bool
(** Should this diagnostic fail registration / a lint run?  Errors always
    gate; warnings gate when [strict]; infos never gate. *)

val errors : diag list -> diag list
(** The error-severity subset. *)

val severity_to_string : severity -> string
(** ["error"], ["warning"] or ["info"]. *)

val pp_diag : Format.formatter -> diag -> unit
(** Renders as [file:line: severity CODE: message]. *)

val diag_to_string : diag -> string

val diag_to_json : diag -> Oasis_util.Json.t
(** Object with [file], [line], [severity], [code], [message] fields. *)
