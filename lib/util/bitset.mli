(** Small bit-sets with a stable marshalled form.

    Certificates carry role memberships as a bit-set (§4.3: "Each role is
    represented by a specific bit") and RDL set-typed arguments marshal to a
    bit-set permitting equality and subset tests (§4.3). *)

type t

val empty : t
val singleton : int -> t
val of_list : int list -> t
val to_list : t -> int list
val add : int -> t -> t
val remove : int -> t -> t
val mem : int -> t -> bool
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool
val is_empty : t -> bool
val cardinal : t -> int
val compare : t -> t -> int

val marshal : t -> string
(** Host-independent encoding (hex of the underlying word). *)

val unmarshal : string -> t option
(** Strict inverse of {!marshal}: bare hex digits only (no underscores,
    signs or prefixes), rejecting any value with bits above the maximum
    element (62).  [None] on anything {!marshal} could not have produced. *)

val pp : Format.formatter -> t -> unit
