(** Causal spans over simulated time.

    The paper's revocation claim is about {e latency}: how long from a
    credential being invalidated at its issuer to every dependent service
    having recomputed.  Flat counters ({!Stats}) cannot answer that, so this
    module provides lightweight causal tracing: a {!span} is a named
    interval of sim time belonging to a trace; a {!ctx} is the portable part
    of a span (trace id, span id, root start time) that rides messages —
    {!Net.send} captures the ambient context at send time and restores it
    around delivery, and the event broker carries one per coalesced item, so
    causality survives batching, retries and heartbeat coalescing.

    Tracing is {b disabled by default} and, when disabled, every operation
    is a no-op returning a shared null span — instrumentation must not
    change behaviour or message counts of un-traced runs.  Finished spans
    land in a bounded ring buffer (oldest evicted, counted by {!dropped});
    the clock is the deterministic sim clock, so traces replay identically
    for a given seed. *)

type t

type span
(** A named interval; open until {!finish}ed. *)

type ctx
(** Portable causal context: trace id + span id + the true time the trace's
    root span started, so any hop can compute its distance from the root. *)

val create : ?capacity:int -> (unit -> float) -> t
(** [create ~capacity clock] — [clock] is the deterministic time source
    (e.g. [fun () -> Engine.now engine]); [capacity] (default 4096) bounds
    the finished-span ring buffer. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val clear : t -> unit
(** Drop all finished spans and the dropped counter (open spans too). *)

val start : t -> ?parent:ctx -> string -> span
(** Open a span.  [parent] defaults to the ambient context; with neither, a
    fresh trace is rooted here.  Returns the null span when disabled. *)

val finish : t -> span -> unit
(** Stamp the end time and move the span into the ring buffer.  Idempotent;
    no-op on the null span. *)

val add_attr : span -> string -> string -> unit

val ctx_of : span -> ctx

val current : t -> ctx option
(** The ambient context ([None] when disabled or outside any span). *)

val with_ctx : t -> ctx option -> (unit -> 'a) -> 'a
(** Run the closure with the ambient context replaced, restoring on exit
    (exception-safe).  This is what message-delivery wrappers use. *)

val with_span : t -> ?parent:ctx -> string -> (unit -> 'a) -> 'a
(** [start] + make it ambient + run + [finish], exception-safe. *)

val spans : t -> span list
(** Finished spans, oldest first. *)

val open_spans : t -> span list
(** Spans started but not yet finished (unordered) — a non-empty result
    after a burst has settled usually means lost instrumentation. *)

val dropped : t -> int
(** Finished spans evicted by ring-buffer overflow since the last {!clear}. *)

val span_name : span -> string
val span_trace : span -> int
val span_id : span -> int
val span_parent : span -> int option
val span_start : span -> float
val span_end : span -> float
(** [nan] while open. *)

val span_attrs : span -> (string * string) list
val duration : span -> float

val since_origin : t -> ctx -> float
(** Time elapsed since the context's trace root opened — the end-to-end
    latency of the causal chain at this hop. *)

val origin : ctx -> float

val to_json : t -> string
(** Snapshot of finished spans as one JSON object
    [{"dropped":n,"spans":[{"trace","span","parent","name","start","end","attrs"}...]}].
    Hand-rolled (no JSON dependency); strings are escaped. *)
