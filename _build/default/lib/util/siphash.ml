type key = { k0 : int64; k1 : int64 }

let key_of_int64s k0 k1 = { k0; k1 }

let key_of_string s =
  (* Fold the string into two 64-bit lanes with a splitmix-style mixer so that
     short human-readable secrets still produce full-width keys. *)
  let g = Prng.create 0x5A17BEEFCAFED00DL in
  let a = ref (Prng.bits64 g) and b = ref (Prng.bits64 g) in
  String.iteri
    (fun i c ->
      let x = Int64.of_int (Char.code c + (i * 131)) in
      if i land 1 = 0 then a := Int64.mul (Int64.logxor !a x) 0x100000001B3L
      else b := Int64.mul (Int64.logxor !b x) 0xC6A4A7935BD1E995L)
    s;
  { k0 = !a; k1 = !b }

let rotl x b = Int64.logor (Int64.shift_left x b) (Int64.shift_right_logical x (64 - b))

(* Read 8 little-endian bytes starting at [off]; the caller guarantees room. *)
let le64 s off =
  let b i = Int64.of_int (Char.code (String.unsafe_get s (off + i))) in
  let ( <| ) x n = Int64.shift_left x n in
  Int64.logor (b 0)
    (Int64.logor (b 1 <| 8)
       (Int64.logor (b 2 <| 16)
          (Int64.logor (b 3 <| 24)
             (Int64.logor (b 4 <| 32)
                (Int64.logor (b 5 <| 40) (Int64.logor (b 6 <| 48) (b 7 <| 56)))))))

let hash { k0; k1 } msg =
  let v0 = ref (Int64.logxor k0 0x736f6d6570736575L)
  and v1 = ref (Int64.logxor k1 0x646f72616e646f6dL)
  and v2 = ref (Int64.logxor k0 0x6c7967656e657261L)
  and v3 = ref (Int64.logxor k1 0x7465646279746573L) in
  let sipround () =
    v0 := Int64.add !v0 !v1;
    v1 := rotl !v1 13;
    v1 := Int64.logxor !v1 !v0;
    v0 := rotl !v0 32;
    v2 := Int64.add !v2 !v3;
    v3 := rotl !v3 16;
    v3 := Int64.logxor !v3 !v2;
    v0 := Int64.add !v0 !v3;
    v3 := rotl !v3 21;
    v3 := Int64.logxor !v3 !v0;
    v2 := Int64.add !v2 !v1;
    v1 := rotl !v1 17;
    v1 := Int64.logxor !v1 !v2;
    v2 := rotl !v2 32
  in
  let len = String.length msg in
  let nblocks = len / 8 in
  for i = 0 to nblocks - 1 do
    let m = le64 msg (i * 8) in
    v3 := Int64.logxor !v3 m;
    sipround ();
    sipround ();
    v0 := Int64.logxor !v0 m
  done;
  (* Final block: remaining bytes plus the length in the top byte. *)
  let b = ref (Int64.shift_left (Int64.of_int (len land 0xff)) 56) in
  for i = 0 to (len land 7) - 1 do
    b := Int64.logor !b (Int64.shift_left (Int64.of_int (Char.code msg.[(nblocks * 8) + i])) (8 * i))
  done;
  v3 := Int64.logxor !v3 !b;
  sipround ();
  sipround ();
  v0 := Int64.logxor !v0 !b;
  v2 := Int64.logxor !v2 0xffL;
  sipround ();
  sipround ();
  sipround ();
  sipround ();
  Int64.logxor (Int64.logxor !v0 !v1) (Int64.logxor !v2 !v3)

let hash_hex key msg = Printf.sprintf "%016Lx" (hash key msg)
