(* Command-line front end for the OASIS libraries: parse and type-check RDL
   rolefiles, parse composite event expressions, evaluate ACLs, and run a
   small interactive demonstration world.

   Examples:
     oasis_cli rdl --check rolefile.rdl
     echo 'Chair <- Login.LoggedOn("jmb", h)' | oasis_cli rdl -
     oasis_cli composite '$Seen(A, R); $Seen(B, R) - Seen(A, Rp)'
     oasis_cli acl --acl '+bob=rw -%student=w +other=r' --user bob --groups student
     oasis_cli demo *)

open Cmdliner

let read_input path =
  if path = "-" then In_channel.input_all In_channel.stdin
  else In_channel.with_open_text path In_channel.input_all

(* --- rdl subcommand --- *)

let rdl_cmd =
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"RDL rolefile ('-' for stdin)")
  in
  let check =
    Arg.(value & flag & info [ "check" ] ~doc:"Run type inference and report signatures")
  in
  let run path check =
    let src = read_input path in
    match Oasis_rdl.Parser.parse_result src with
    | Error e ->
        Printf.eprintf "error: %s\n" e;
        1
    | Ok rolefile ->
        print_endline (Oasis_rdl.Pretty.to_string rolefile);
        if check then begin
          match Oasis_rdl.Infer.infer rolefile with
          | Error e ->
              Printf.eprintf "type error: %s\n" e;
              2
          | Ok result ->
              print_endline "\n-- inferred signatures --";
              Hashtbl.iter
                (fun role tys ->
                  Printf.printf "%s(%s)\n" role
                    (String.concat ", " (List.map Oasis_rdl.Ty.to_string tys)))
                result.Oasis_rdl.Infer.sigs;
              List.iter
                (fun (role, i) -> Printf.printf "warning: %s parameter %d unresolved\n" role i)
                result.Oasis_rdl.Infer.unresolved;
              0
        end
        else 0
  in
  let doc = "Parse (and optionally type-check) an RDL rolefile" in
  Cmd.v (Cmd.info "rdl" ~doc) Term.(const run $ path $ check)

(* --- lint subcommand --- *)

let lint_cmd =
  let module Analyze = Oasis_rdl.Analyze in
  let module FL = Oasis_core.Federation_lint in
  let module Json = Oasis_util.Json in
  let paths =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"FILE"
          ~doc:
            "RDL rolefiles forming the federation.  Each file's service name \
             is its basename without extension (Login.rdl issues Login.* roles).")
  in
  let strict =
    Arg.(value & flag & info [ "strict" ] ~doc:"Fail on warnings as well as errors")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON on stdout") in
  let reach =
    Arg.(
      value
      & opt (some string) None
      & info [ "reach" ] ~docv:"SVC.ROLE"
          ~doc:
            "Also print the privilege-escalation frontier: every federation role a \
             holder of $(docv) can go on to acquire that is not derivable from the \
             axioms alone.")
  in
  let escalation =
    Arg.(
      value
      & opt ~vopt:(Some "all") (some string) None
      & info [ "escalation" ] ~docv:"HOLDER"
          ~doc:
            "Run the symbolic escalation prover from $(docv) (SVC.ROLE), or from \
             every bootstrap and non-axiom-derivable role when $(docv) is \
             $(b,all) (the default when the option is given bare).  Each \
             reachable target is reported with its witness chain's verdicts \
             (OASIS006-008).")
  in
  let witness =
    Arg.(
      value & flag
      & info [ "witness" ] ~doc:"Print each escalation chain hop by hop (implied by --confirm)")
  in
  let confirm =
    Arg.(
      value & flag
      & info [ "confirm" ]
          ~doc:
            "Compile every witness chain into a model-checker scenario and run it \
             under the explorer; exit 4 if any chain is refuted (a static/dynamic \
             disagreement).")
  in
  let threshold =
    Arg.(
      value & opt int 1
      & info [ "collusion-threshold" ] ~docv:"N"
          ~doc:"Arm OASIS007 for chains needing at most $(docv) colluding principals")
  in
  let service_name path = Filename.remove_extension (Filename.basename path) in
  let parse_node spec =
    match String.index_opt spec '.' with
    | None -> None
    | Some i ->
        Some (String.sub spec 0 i, String.sub spec (i + 1) (String.length spec - i - 1))
  in
  let run paths strict json reach escalation witness confirm threshold =
    let parsed, broken =
      List.partition_map
        (fun path ->
          let name = service_name path in
          match Oasis_rdl.Parser.parse_result (read_input path) with
          | Ok rf -> Left { FL.fl_name = name; fl_file = path; fl_rolefile = rf }
          | Error e ->
              let line =
                (* parse_result folds the line into the message; re-parse for it *)
                match Oasis_rdl.Parser.parse (read_input path) with
                | exception Oasis_rdl.Parser.Parse_error (_, l) -> l
                | exception Oasis_rdl.Lexer.Lex_error (_, l) -> l
                | _ -> 0
              in
              Right
                {
                  Analyze.code = "RDL000";
                  severity = Analyze.Error;
                  file = path;
                  line;
                  message = "parse error: " ^ e;
                })
        paths
    in
    let fed = FL.make parsed in
    let diags = broken @ FL.check ~per_file:true ~collusion_threshold:threshold fed in
    let count sev = List.length (List.filter (fun d -> d.Analyze.severity = sev) diags) in
    let errors = count Analyze.Error
    and warnings = count Analyze.Warning
    and infos = count Analyze.Info in
    let failed = List.exists (Analyze.gates ~strict) diags in
    let escal =
      match reach with
      | None -> None
      | Some spec ->
          Option.map (fun holder -> (holder, FL.escalation fed ~holder)) (parse_node spec)
    in
    (* --escalation: witness sweep (optionally model-checker confirmed) *)
    let module W = Oasis_mc.Witness in
    let base = FL.reachable fed in
    let sweep =
      match escalation with
      | None -> None
      | Some spec ->
          let holders =
            if spec = "all" then FL.default_holders fed
            else match parse_node spec with Some h -> [ h ] | None -> []
          in
          Some
            (List.concat_map
               (fun holder ->
                 List.map
                   (fun w -> (w, if confirm then Some (W.confirm ~fed w) else None))
                   (FL.witnesses fed ~holder))
               holders)
    in
    let refuted =
      match sweep with
      | None -> 0
      | Some rows ->
          List.length
            (List.filter
               (fun (_, v) -> match v with Some (W.Refuted _) -> true | _ -> false)
               rows)
    in
    let witness_json (w, verdict) =
      let hop_json (h : FL.hop) =
        Json.Obj
          ([
             ("node", Json.Str (FL.node_str h.FL.h_node));
             ("via", Json.Str (FL.node_str h.FL.h_via));
             ("starred", Json.Bool h.FL.h_via_starred);
             ("file", Json.Str h.FL.h_file);
             ("line", Json.Int h.FL.h_line);
           ]
          @
          match h.FL.h_elector with
          | None -> []
          | Some (n, _) -> [ ("elector", Json.Str (FL.node_str n)) ])
      in
      Json.Obj
        ([
           ("holder", Json.Str (FL.node_str w.FL.w_holder));
           ("target", Json.Str (FL.node_str w.FL.w_target));
           ("escalation", Json.Bool (not (Hashtbl.mem base w.FL.w_target)));
           ("carried", Json.Bool w.FL.w_carried);
           ("colluders", Json.Int w.FL.w_colluders);
           ( "codes",
             Json.Arr
               (List.map
                  (fun c -> Json.Str c)
                  (FL.witness_codes ~collusion_threshold:threshold w)) );
           ("hops", Json.Arr (List.map hop_json w.FL.w_hops));
         ]
        @
        match verdict with
        | None -> []
        | Some (W.Confirmed { vf_runs; vf_exhaustive }) ->
            [
              ( "confirm",
                Json.Obj
                  [
                    ("status", Json.Str "confirmed");
                    ("runs", Json.Int vf_runs);
                    ("exhaustive", Json.Bool vf_exhaustive);
                  ] );
            ]
        | Some (W.Refuted { vf_runs; vf_invariant; vf_detail }) ->
            [
              ( "confirm",
                Json.Obj
                  [
                    ("status", Json.Str "refuted");
                    ("runs", Json.Int vf_runs);
                    ("invariant", Json.Str vf_invariant);
                    ("detail", Json.Str vf_detail);
                  ] );
            ]
        | Some (W.Uncompilable reason) ->
            [
              ( "confirm",
                Json.Obj [ ("status", Json.Str "uncompilable"); ("reason", Json.Str reason) ]
              );
            ])
    in
    if json then
      print_endline
        (Json.to_string
           (Json.Obj
              ([
                 ("files", Json.Arr (List.map (fun p -> Json.Str p) paths));
                 ("diagnostics", Json.Arr (List.map Analyze.diag_to_json diags));
                 ( "summary",
                   Json.Obj
                     [
                       ("errors", Json.Int errors);
                       ("warnings", Json.Int warnings);
                       ("infos", Json.Int infos);
                       ("strict", Json.Bool strict);
                       ("ok", Json.Bool (not failed));
                     ] );
               ]
              @ (match escal with
                | None -> []
                | Some (holder, nodes) ->
                    [
                      ( "escalation",
                        Json.Obj
                          [
                            ("holder", Json.Str (FL.node_str holder));
                            ("reaches", Json.Arr (List.map (fun n -> Json.Str (FL.node_str n)) nodes));
                          ] );
                    ])
              @
              match sweep with
              | None -> []
              | Some rows ->
                  [
                    ("witnesses", Json.Arr (List.map witness_json rows));
                    ("refuted", Json.Int refuted);
                  ])))
    else begin
      List.iter (fun d -> print_endline (Analyze.diag_to_string d)) diags;
      (match escal with
      | None -> ()
      | Some (holder, nodes) ->
          Printf.printf "escalation: a holder of %s can also reach: %s\n" (FL.node_str holder)
            (match nodes with [] -> "(nothing)" | _ -> String.concat ", " (List.map FL.node_str nodes)));
      (match sweep with
      | None -> ()
      | Some rows ->
          List.iter
            (fun ((w : FL.witness), verdict) ->
              let codes = FL.witness_codes ~collusion_threshold:threshold w in
              Printf.printf "witness: %s => %s%s (%d hop(s), %d colluder(s))%s\n"
                (FL.node_str w.FL.w_holder) (FL.node_str w.FL.w_target)
                (if Hashtbl.mem base w.FL.w_target then "" else " [escalation]")
                (List.length w.FL.w_hops) w.FL.w_colluders
                (match codes with [] -> "" | _ -> " " ^ String.concat "," codes);
              if witness || confirm then
                List.iter
                  (fun (h : FL.hop) ->
                    Printf.printf "  enter %s via %s%s%s at %s:%d\n" (FL.node_str h.FL.h_node)
                      (FL.node_str h.FL.h_via)
                      (if h.FL.h_via_starred then "*" else "")
                      (match h.FL.h_elector with
                      | None -> ""
                      | Some (n, _) -> " elected by " ^ FL.node_str n)
                      h.FL.h_file h.FL.h_line)
                  w.FL.w_hops;
              match verdict with
              | None -> ()
              | Some v -> Printf.printf "  confirm: %s\n" (Oasis_mc.Witness.verdict_str v))
            rows;
          if confirm then
            Printf.printf "witnesses: %d chain(s), %d refuted\n" (List.length rows) refuted);
      Printf.printf "%d file(s): %d error(s), %d warning(s), %d info(s)%s\n" (List.length paths)
        errors warnings infos
        (if failed then " -- FAILED" else "")
    end;
    if refuted > 0 then 4 else if failed then 1 else 0
  in
  let doc = "Statically analyze RDL rolefiles and their cross-service role graph" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the per-rolefile analyzer (unbound variables, duplicate entries, \
         arity/type errors, unknown extension functions, unsatisfiable constraints, \
         subsumed statements, import hygiene: codes RDL001-RDL012) over every FILE, \
         then federation-wide checks over all of them together (credential cycles \
         with no bootstrap, unreachable roles, revocation gaps, escalation chains: \
         codes OASIS001-OASIS008).";
      `P
        "$(b,--escalation) runs the symbolic prover: reachability over the \
         cross-service role graph carrying per-path witness chains, with \
         constraint-infeasible paths pruned.  $(b,--confirm) compiles each chain \
         into a model-checker scenario (issue the holder, walk the chain, probe the \
         target, fire the holder) and explores it, checking the static verdict \
         dynamically.";
      `P
        "Exit status is 1 when any error-severity diagnostic is reported (with \
         $(b,--strict), warnings gate too), 4 when $(b,--confirm) refutes a \
         witness chain, 0 otherwise.";
    ]
  in
  Cmd.v
    (Cmd.info "lint" ~doc ~man)
    Term.(const run $ paths $ strict $ json $ reach $ escalation $ witness $ confirm $ threshold)

(* --- composite subcommand --- *)

let composite_cmd =
  let expr = Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPR" ~doc:"Composite event expression") in
  let run expr =
    match Oasis_events.Composite.parse_result expr with
    | Error e ->
        Printf.eprintf "error: %s\n" e;
        1
    | Ok c ->
        Printf.printf "parsed: %s\n" (Oasis_events.Composite.to_string c);
        Printf.printf "base templates:\n";
        List.iter
          (fun tpl -> Printf.printf "  %s\n" (Format.asprintf "%a" Oasis_events.Event.pp_template tpl))
          (Oasis_events.Composite.base_templates c);
        0
  in
  let doc = "Parse a composite event expression (ch. 6 language)" in
  Cmd.v (Cmd.info "composite" ~doc) Term.(const run $ expr)

(* --- acl subcommand --- *)

let acl_cmd =
  let acl = Arg.(required & opt (some string) None & info [ "acl" ] ~docv:"ACL" ~doc:"ACL text") in
  let user = Arg.(required & opt (some string) None & info [ "user" ] ~docv:"USER" ~doc:"User name") in
  let groups =
    Arg.(value & opt (list string) [] & info [ "groups" ] ~docv:"G1,G2" ~doc:"Groups the user is in")
  in
  let full = Arg.(value & opt string "adrwx" & info [ "full" ] ~doc:"Universe of rights") in
  let run acl user groups full =
    match Oasis_core.Acl.parse acl with
    | Error e ->
        Printf.eprintf "error: %s\n" e;
        1
    | Ok parsed ->
        let rights =
          Oasis_core.Acl.rights parsed ~user ~in_group:(fun g -> List.mem g groups) ~full
        in
        Printf.printf "%s gets {%s}\n" user rights;
        0
  in
  let doc = "Evaluate the §5.4.4 grant algorithm on an ACL" in
  Cmd.v (Cmd.info "acl" ~doc) Term.(const run $ acl $ user $ groups $ full)

(* --- erdl subcommand --- *)

let erdl_cmd =
  let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"ERDL policy ('-' for stdin)") in
  let run path =
    match Oasis_esec.Erdl.parse (read_input path) with
    | Error e ->
        Printf.eprintf "error: %s\n" e;
        1
    | Ok rules ->
        List.iter (fun r -> Format.printf "%a@." Oasis_esec.Erdl.pp_rule r) rules;
        0
  in
  let doc = "Parse an ERDL event-visibility policy (ch. 7)" in
  Cmd.v (Cmd.info "erdl" ~doc) Term.(const run $ path)

(* --- idl subcommand --- *)

let idl_cmd =
  let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"IDL file ('-' for stdin)") in
  let run path =
    match Oasis_events.Idl.parse (read_input path) with
    | Error e ->
        Printf.eprintf "error: %s\n" e;
        1
    | Ok iface ->
        Format.printf "%a@." Oasis_events.Idl.pp iface;
        0
  in
  let doc = "Parse an event/RPC interface definition (§6.2.1)" in
  Cmd.v (Cmd.info "idl" ~doc) Term.(const run $ path)

(* --- explore subcommand --- *)

let explore_cmd =
  let module Scenario = Oasis_mc.Scenario in
  let module Explore = Oasis_mc.Explore in
  let module Scenarios = Oasis_mc.Scenarios in
  let module Json = Oasis_util.Json in
  let scenario_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"SCENARIO"
          ~doc:"Scenario to explore (see $(b,--list)); not needed with $(b,--replay).")
  in
  let list_flag = Arg.(value & flag & info [ "list" ] ~doc:"List the built-in scenarios") in
  let depth =
    Arg.(value & opt int Explore.default_params.Explore.depth & info [ "depth" ] ~docv:"N" ~doc:"Max decision points per run")
  in
  let window =
    Arg.(
      value
      & opt float Explore.default_params.Explore.window
      & info [ "window" ] ~docv:"SEC" ~doc:"Reorder window in simulated seconds")
  in
  let max_branch =
    Arg.(
      value
      & opt int Explore.default_params.Explore.max_branch
      & info [ "max-branch" ] ~docv:"N" ~doc:"Alternatives considered per decision point")
  in
  let max_runs =
    Arg.(
      value
      & opt int Explore.default_params.Explore.max_runs
      & info [ "max-runs" ] ~docv:"N" ~doc:"Exploration budget in schedule executions")
  in
  let naive =
    Arg.(value & flag & info [ "naive" ] ~doc:"Disable sleep sets and fingerprint pruning")
  in
  let seeds =
    Arg.(
      value
      & opt (some int) None
      & info [ "seeds" ] ~docv:"N"
          ~doc:"Instead of exploring, run the seed-sweep baseline over N seeds")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON on stdout") in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the first (minimized) counterexample schedule to FILE")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE" ~doc:"Replay a persisted counterexample schedule")
  in
  let cx_json cx =
    Json.Obj
      [
        ("invariant", Json.Str cx.Explore.cx_invariant);
        ("detail", Json.Str cx.Explore.cx_detail);
        ("choices", Json.Arr (List.map (fun c -> Json.Int c) cx.Explore.cx_schedule));
      ]
  in
  let run scenario list_flag depth window max_branch max_runs naive seeds json out replay =
    if list_flag then begin
      List.iter
        (fun s ->
          Printf.printf "%-12s %d service(s), %d action(s), horizon %.1fs\n"
            s.Scenario.sc_name
            (List.length s.Scenario.sc_services)
            (List.length s.Scenario.sc_actions) s.Scenario.sc_horizon)
        Scenarios.all;
      0
    end
    else
      match replay with
      | Some file -> (
          match Explore.load_schedule file with
          | Error e ->
              Printf.eprintf "error: %s\n" e;
              1
          | Ok sf -> (
              match Scenarios.find sf.Explore.sf_scenario with
              | None ->
                  Printf.eprintf "error: unknown scenario %s\n" sf.Explore.sf_scenario;
                  1
              | Some spec ->
                  let r = Explore.replay spec sf in
                  if json then
                    print_endline
                      (Json.to_string
                         (Json.Obj
                            [
                              ("scenario", Json.Str sf.Explore.sf_scenario);
                              ( "violations",
                                Json.Arr
                                  (List.map
                                     (fun (inv, d) ->
                                       Json.Obj
                                         [ ("invariant", Json.Str inv); ("detail", Json.Str d) ])
                                     r.Explore.r_violations) );
                            ]))
                  else begin
                    Printf.printf "replayed %s: %d decision point(s)\n" sf.Explore.sf_scenario
                      (List.length r.Explore.r_decisions);
                    match r.Explore.r_violations with
                    | [] -> print_endline "no violations (schedule no longer fails)"
                    | vs ->
                        List.iter (fun (inv, d) -> Printf.printf "VIOLATION %s: %s\n" inv d) vs
                  end;
                  if r.Explore.r_violations = [] then 0 else 3))
      | None -> (
          match scenario with
          | None ->
              Printf.eprintf "error: SCENARIO required (or --list / --replay)\n";
              1
          | Some name -> (
              match Scenarios.find name with
              | None ->
                  Printf.eprintf "error: unknown scenario %s (try --list)\n" name;
                  1
              | Some spec -> (
                  let params =
                    {
                      Explore.depth;
                      window;
                      max_branch;
                      max_runs;
                      reduce = not naive;
                    }
                  in
                  match seeds with
                  | Some n ->
                      let found = Explore.seed_sweep spec params ~seeds:n in
                      if json then
                        print_endline
                          (Json.to_string
                             (Json.Obj
                                [
                                  ("scenario", Json.Str name);
                                  ("seeds", Json.Int n);
                                  ("violations", Json.Arr (List.map cx_json found));
                                ]))
                      else begin
                        Printf.printf "seed sweep over %d seed(s): %d violation(s)\n" n
                          (List.length found);
                        List.iter
                          (fun cx ->
                            Printf.printf "VIOLATION %s: %s\n" cx.Explore.cx_invariant
                              cx.Explore.cx_detail)
                          found
                      end;
                      if found = [] then 0 else 3
                  | None ->
                      let rp = Explore.explore spec params in
                      let minimized =
                        match rp.Explore.rp_violations with
                        | [] -> None
                        | cx :: _ -> Some (Explore.minimize spec params cx)
                      in
                      (match (out, minimized) with
                      | Some path, Some cx ->
                          Explore.save_schedule path (Explore.schedule_file_of_cx spec params cx)
                      | Some path, None ->
                          Printf.eprintf "note: no counterexample to write to %s\n" path
                      | None, _ -> ());
                      if json then
                        print_endline
                          (Json.to_string
                             (Json.Obj
                                [
                                  ("scenario", Json.Str name);
                                  ("runs", Json.Int rp.Explore.rp_runs);
                                  ("decisions", Json.Int rp.Explore.rp_decisions);
                                  ("distinct_states", Json.Int rp.Explore.rp_distinct_states);
                                  ("pruned_sleep", Json.Int rp.Explore.rp_pruned_sleep);
                                  ("pruned_fp", Json.Int rp.Explore.rp_pruned_fp);
                                  ("exhaustive", Json.Bool rp.Explore.rp_exhaustive);
                                  ( "violations",
                                    Json.Arr (List.map cx_json rp.Explore.rp_violations) );
                                  ( "minimized",
                                    match minimized with
                                    | None -> Json.Null
                                    | Some cx -> cx_json cx );
                                ]))
                      else begin
                        Printf.printf
                          "%s: %d run(s), %d decision point(s), %d distinct state(s)%s\n" name
                          rp.Explore.rp_runs rp.Explore.rp_decisions
                          rp.Explore.rp_distinct_states
                          (if rp.Explore.rp_exhaustive then " (exhaustive)"
                           else " (budget exhausted)");
                        Printf.printf "pruned: %d by sleep sets, %d by fingerprints\n"
                          rp.Explore.rp_pruned_sleep rp.Explore.rp_pruned_fp;
                        (match rp.Explore.rp_violations with
                        | [] -> print_endline "all invariants hold over every explored interleaving"
                        | vs ->
                            let shown = List.filteri (fun i _ -> i < 5) vs in
                            List.iter
                              (fun cx ->
                                Printf.printf "VIOLATION %s: %s\n  schedule: [%s]\n"
                                  cx.Explore.cx_invariant cx.Explore.cx_detail
                                  (String.concat ";"
                                     (List.map string_of_int cx.Explore.cx_schedule)))
                              shown;
                            let rest = List.length vs - List.length shown in
                            if rest > 0 then
                              Printf.printf "... and %d more violating schedule(s)\n" rest);
                        match minimized with
                        | None -> ()
                        | Some cx ->
                            Printf.printf "minimized counterexample: [%s]\n"
                              (String.concat ";" (List.map string_of_int cx.Explore.cx_schedule))
                      end;
                      if rp.Explore.rp_violations = [] then 0 else 3)))
  in
  let doc = "Exhaustively explore fault interleavings of a scenario (model checker)" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Takes over the simulator's event queue and drives every message-delivery / \
         crash / fsync interleaving of the scenario inside its branching window, up to \
         a bounded depth, checking safety (no re-entry while fired; fired-stays-fired \
         across recovery) and convergence (cascades settle within the heartbeat bound; \
         recovered state equals the crash-free twin) on every explored schedule.  \
         Sleep-set and state-fingerprint reduction keep the run count far below naive \
         enumeration; $(b,--naive) turns them off for comparison.";
      `P
        "Exit status: 0 when all invariants hold, 3 when a violation was found, 1 on \
         usage errors.  A found violation is minimized and can be persisted with \
         $(b,--out) and re-executed later with $(b,--replay).";
    ]
  in
  Cmd.v (Cmd.info "explore" ~doc ~man)
    Term.(
      const run $ scenario_arg $ list_flag $ depth $ window $ max_branch $ max_runs $ naive
      $ seeds $ json $ out $ replay)

(* --- shard subcommand --- *)

let shard_cmd =
  let module Shard = Oasis_core.Shard in
  let module V = Oasis_rdl.Value in
  let shards =
    Arg.(value & opt int 4 & info [ "shards" ] ~docv:"N" ~doc:"Number of shards in the ring")
  in
  let vnodes =
    Arg.(
      value & opt int 64
      & info [ "vnodes" ] ~docv:"V" ~doc:"Virtual nodes per shard (placement granularity)")
  in
  let keys =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"INSTANCE"
          ~doc:
            "Role instances to place, as $(b,Role) or $(b,Role(arg,...)); arguments are \
             treated as strings.  With no instances, a synthetic population is placed \
             instead.")
  in
  let population =
    Arg.(
      value & opt int 10_000
      & info [ "population" ] ~docv:"K"
          ~doc:"Synthetic population size for the balance/movement report")
  in
  let moved =
    Arg.(
      value & flag
      & info [ "moved" ]
          ~doc:"Also report how much of the population moves when one shard is added")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON") in
  (* "Member(alice,pc5)" -> ("Member", [Str "alice"; Str "pc5"]). *)
  let parse_instance s =
    match String.index_opt s '(' with
    | None -> Ok (s, [])
    | Some i when String.length s > 0 && s.[String.length s - 1] = ')' ->
        let role = String.sub s 0 i in
        let inner = String.sub s (i + 1) (String.length s - i - 2) in
        let args =
          if inner = "" then []
          else
            String.split_on_char ',' inner |> List.map String.trim
            |> List.map (fun a -> V.Str a)
        in
        if role = "" then Error (Printf.sprintf "%S: empty role name" s) else Ok (role, args)
    | Some _ -> Error (Printf.sprintf "%S: unbalanced parentheses" s)
  in
  let run shards vnodes keys population moved json =
    if shards < 1 then begin
      Printf.eprintf "error: --shards must be >= 1\n";
      1
    end
    else begin
      let ring = Shard.Ring.make ~vnodes ~shards () in
      let place role args = Shard.Ring.owner ring (Shard.route_key ~role ~args) in
      match keys with
      | _ :: _ -> (
          (* Explicit instances: print each one's owner. *)
          let rec collect acc = function
            | [] -> Ok (List.rev acc)
            | k :: rest -> (
                match parse_instance k with
                | Error e -> Error e
                | Ok inst -> collect (inst :: acc) rest)
          in
          match collect [] keys with
          | Error e ->
              Printf.eprintf "error: %s\n" e;
              1
          | Ok instances ->
              let placed =
                List.map (fun (role, args) -> (role, args, place role args)) instances
              in
              if json then
                let module Json = Oasis_util.Json in
                print_endline
                  (Json.to_string
                     (Json.sorted
                        (Json.Obj
                           [
                             ("shards", Json.Int shards);
                             ("vnodes", Json.Int vnodes);
                             ( "placements",
                               Json.Arr
                                 (List.map
                                    (fun (role, args, owner) ->
                                      Json.Obj
                                        [
                                          ("role", Json.Str role);
                                          ( "args",
                                            Json.Arr
                                              (List.map
                                                 (function
                                                   | V.Str s -> Json.Str s
                                                   | v -> Json.Str (V.to_string v))
                                                 args) );
                                          ("owner", Json.Int owner);
                                        ])
                                    placed) );
                           ])))
              else
                List.iter
                  (fun (role, args, owner) ->
                    Printf.printf "%s(%s) -> shard %d\n" role
                      (String.concat ", "
                         (List.map (function V.Str s -> s | v -> V.to_string v) args))
                      owner)
                  placed;
              0)
      | [] ->
          (* Synthetic population: balance, and optionally movement when the
             ring grows by one shard. *)
          let counts = Array.make shards 0 in
          for i = 0 to population - 1 do
            let owner = place "Member" [ V.Str (Printf.sprintf "u%d" i) ] in
            counts.(owner) <- counts.(owner) + 1
          done;
          let ideal = float_of_int population /. float_of_int shards in
          let worst = Array.fold_left max 0 counts in
          let moved_count =
            if not moved then None
            else begin
              let grown = Shard.Ring.add_shard ring in
              let n = ref 0 in
              for i = 0 to population - 1 do
                let key =
                  Shard.route_key ~role:"Member" ~args:[ V.Str (Printf.sprintf "u%d" i) ]
                in
                if Shard.Ring.owner ring key <> Shard.Ring.owner grown key then incr n
              done;
              Some !n
            end
          in
          if json then
            let module Json = Oasis_util.Json in
            print_endline
              (Json.to_string
                 (Json.sorted
                    (Json.Obj
                       ([
                          ("shards", Json.Int shards);
                          ("vnodes", Json.Int vnodes);
                          ("population", Json.Int population);
                          ( "counts",
                            Json.Arr (Array.to_list (Array.map (fun c -> Json.Int c) counts))
                          );
                          ("worst_over_ideal", Json.Float (float_of_int worst /. ideal));
                        ]
                       @
                       match moved_count with
                       | None -> []
                       | Some n ->
                           [
                             ("moved_on_add", Json.Int n);
                             ( "moved_fraction",
                               Json.Float (float_of_int n /. float_of_int population) );
                           ]))))
          else begin
            Printf.printf "%d shard(s), %d vnode(s) each, %d synthetic instance(s)\n" shards
              vnodes population;
            Array.iteri
              (fun i c ->
                Printf.printf "  shard %2d: %6d (%.2fx ideal)\n" i c (float_of_int c /. ideal))
              counts;
            Printf.printf "worst shard holds %.2fx its ideal share\n"
              (float_of_int worst /. ideal);
            match moved_count with
            | None -> ()
            | Some n ->
                Printf.printf
                  "adding shard %d moves %d instance(s) (%.1f%%; consistent-hash bound ~%.1f%%)\n"
                  shards n
                  (100.0 *. float_of_int n /. float_of_int population)
                  (100.0 /. float_of_int (shards + 1))
          end;
          0
    end
  in
  let doc = "Inspect consistent-hash placement of the sharded credential plane" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Builds the same SipHash consistent-hash ring the sharded deployment \
         ($(b,Oasis_core.Shard)) uses and reports where role instances land.  With \
         explicit $(b,Role(arg,...)) operands it prints each instance's owning shard; \
         with none it places a synthetic population and reports per-shard balance, and \
         with $(b,--moved) also how many instances change owner when one shard is added \
         (the consistent-hashing guarantee: about 1/(N+1) of the keyspace, not a full \
         reshuffle).";
    ]
  in
  Cmd.v (Cmd.info "shard" ~doc ~man)
    Term.(const run $ shards $ vnodes $ keys $ population $ moved $ json)

(* --- serve / client subcommands: the sharded plane on the Unix backend --- *)

(* The deployment convention shared by [serve], [client] and the CI smoke:
   a port base B gives the router B and shard I the port B+1+I; shard I's
   wire (and sim-host) name is [h.<name>.sI], matching the in-process
   plane's host naming, and its service name is [<name>#I].  Service names
   are distinct per process on purpose: credential-record references are
   table-relative, so a certificate presented to the wrong shard must fail
   closed (Wrong_context / unknown handle), never alias. *)

let serve_rolefile =
  {|
Admin <-
Login(u) <-
User(u) <- Login(u)* |>* Admin
|}

let wire_shard_host name i = Printf.sprintf "h.%s.s%d" name i
let wire_shard_port base i = base + 1 + i

let serve_cmd =
  let module Backend = Oasis_backend.Backend in
  let module Backend_unix = Oasis_backend.Backend_unix in
  let module Net = Oasis_sim.Net in
  let module Service = Oasis_core.Service in
  let module Remote = Oasis_core.Remote in
  let module Shard = Oasis_core.Shard in
  let role =
    Arg.(
      value
      & opt (enum [ ("shard", `Shard); ("router", `Router) ]) `Shard
      & info [ "role" ] ~docv:"ROLE" ~doc:"Process role: $(b,shard) or $(b,router)")
  in
  let id = Arg.(value & opt int 0 & info [ "id" ] ~docv:"I" ~doc:"Shard id (shard role)") in
  let shards =
    Arg.(value & opt int 2 & info [ "shards" ] ~docv:"N" ~doc:"Shard count (router role)")
  in
  let port_base =
    Arg.(
      value & opt int 7640
      & info [ "port-base" ] ~docv:"B"
          ~doc:"Loopback port base: router at B, shard I at B+1+I")
  in
  let name_a =
    Arg.(value & opt string "Gate" & info [ "name" ] ~docv:"NAME" ~doc:"Logical service name")
  in
  let data_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "data-dir" ] ~docv:"DIR" ~doc:"Durable-state directory (shard role)")
  in
  let rolefile =
    Arg.(
      value
      & opt (some string) None
      & info [ "rolefile" ] ~docv:"FILE" ~doc:"RDL rolefile (default: built-in Admin/User)")
  in
  let vnodes =
    Arg.(value & opt int 64 & info [ "vnodes" ] ~docv:"V" ~doc:"Ring virtual nodes per shard")
  in
  let run role id shards port_base name data_dir rolefile vnodes =
    let rolefile =
      match rolefile with Some f -> read_input f | None -> serve_rolefile
    in
    let b = Backend_unix.create ?data_dir () in
    let backend = Backend_unix.pack b in
    let net = Backend.net backend in
    match role with
    | `Router ->
        let host = Net.add_host net "router" in
        let ring = Shard.Ring.make ~vnodes ~shards () in
        let shard_names = Array.init shards (wire_shard_host name) in
        Array.iteri
          (fun i peer ->
            Backend_unix.peer b ~name:peer ~port:(wire_shard_port port_base i))
          shard_names;
        let _router = Remote.serve_router net host ~ring ~shards:shard_names in
        let port = Backend_unix.listen b ~port:port_base () in
        Printf.printf "router: %d shards of %s, listening on %d\n%!" shards name port;
        Backend.run backend;
        0
    | `Shard -> (
        let host = Net.add_host net (wire_shard_host name id) in
        let disk = Backend.disk backend host in
        let reg = Service.create_registry () in
        match
          Service.create net host reg
            ~name:(Printf.sprintf "%s#%d" name id)
            ~rolefile_id:name ~rolefile ~compound_certificates:false ~disk ()
        with
        | Error e ->
            Printf.eprintf "shard %d: %s\n" id e;
            1
        | Ok svc ->
            let _server = Remote.serve_shard net svc ~shard_id:id in
            let port = Backend_unix.listen b ~port:(wire_shard_port port_base id) () in
            Printf.printf "shard %d (%s): listening on %d, data in %s\n%!" id
              (Service.name svc) port (Backend_unix.data_dir b);
            Backend.run backend;
            0)
  in
  let doc = "Run one process of the sharded plane on the Unix backend (real sockets/disks)" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs a single shard (or the router) of the sharded OASIS credential plane as a \
         real process: wall-clock timers, loopback TCP with the WAL's length+SipHash \
         framing, and durable state on real files with fsync.  The protocol modules are \
         the same ones the simulator runs — only the backend differs.";
      `P
        "A 2-shard deployment on one machine:";
      `Pre
        "  oasis_cli serve --role shard --id 0 &\n\
        \  oasis_cli serve --role shard --id 1 &\n\
        \  oasis_cli serve --role router --shards 2 &\n\
        \  oasis_cli client smoke";
    ]
  in
  Cmd.v (Cmd.info "serve" ~doc ~man)
    Term.(const run $ role $ id $ shards $ port_base $ name_a $ data_dir $ rolefile $ vnodes)

let client_cmd =
  let module Backend = Oasis_backend.Backend in
  let module Backend_unix = Oasis_backend.Backend_unix in
  let module Net = Oasis_sim.Net in
  let module Remote = Oasis_core.Remote in
  let module V = Oasis_rdl.Value in
  let port_base =
    Arg.(
      value & opt int 7640
      & info [ "port-base" ] ~docv:"B" ~doc:"Loopback port base the deployment uses")
  in
  let op =
    Arg.(
      required
      & pos 0 (some (enum
           [ ("ping", `Ping); ("place", `Place); ("bootstrap", `Bootstrap);
             ("issue", `Issue); ("validate", `Validate); ("fire", `Fire);
             ("rehire", `Rehire); ("exit", `Exit); ("smoke", `Smoke) ])) None
      & info [] ~docv:"OP"
          ~doc:
            "One of $(b,ping), $(b,place), $(b,bootstrap), $(b,issue), $(b,validate), \
             $(b,fire), $(b,rehire), $(b,exit), $(b,smoke)")
  in
  let client =
    Arg.(value & opt string "alice" & info [ "client" ] ~docv:"NAME" ~doc:"Client identity")
  in
  let role_a =
    Arg.(value & opt string "User" & info [ "target-role" ] ~docv:"ROLE" ~doc:"Role name")
  in
  let args_a =
    Arg.(value & opt_all string [] & info [ "arg" ] ~docv:"S" ~doc:"Role argument (repeatable)")
  in
  let roles_a =
    Arg.(
      value & opt_all string []
      & info [ "bootstrap-role" ] ~docv:"ROLE" ~doc:"Bootstrap role (repeatable)")
  in
  let handle_a =
    Arg.(value & opt (some string) None & info [ "handle" ] ~docv:"H" ~doc:"Certificate handle")
  in
  let shard_a =
    Arg.(value & opt (some int) None & info [ "shard" ] ~docv:"I" ~doc:"Bootstrap placement")
  in
  let timeout_a =
    Arg.(value & opt float 15.0 & info [ "timeout" ] ~docv:"S" ~doc:"Give up after S seconds")
  in
  let run port_base op client role args roles handle shard timeout =
    let b = Backend_unix.create () in
    let backend = Backend_unix.pack b in
    let net = Backend.net backend in
    let host = Net.add_host net "client" in
    Backend_unix.peer b ~name:"router" ~port:port_base;
    let c = Remote.Client.create net host ~router:"router" in
    let args = List.map (fun s -> V.Str s) args in
    let rc = ref 3 (* timed out *) in
    let finish code =
      rc := code;
      Backend.stop backend
    in
    let done_ok pp = function
      | Ok v ->
          pp v;
          finish 0
      | Error e ->
          Printf.eprintf "error: %s\n%!" e;
          finish 1
    in
    let need_handle k =
      match handle with
      | Some h -> k h
      | None ->
          Printf.eprintf "error: --handle required\n%!";
          finish 2
    in
    (match op with
    | `Ping -> Remote.Client.ping c (done_ok (fun () -> print_endline "pong"))
    | `Place ->
        Remote.Client.place c ~role ~args (done_ok (fun s -> Printf.printf "shard %d\n" s))
    | `Bootstrap ->
        let roles = if roles = [] then [ "Admin" ] else roles in
        Remote.Client.bootstrap c ?shard ~client ~roles ~args
          (done_ok (fun h -> print_endline h))
    | `Issue ->
        let creds = match handle with Some h -> [ h ] | None -> [] in
        Remote.Client.issue c ~client ~role ~args ~creds (done_ok print_endline)
    | `Validate ->
        need_handle (fun handle ->
            Remote.Client.validate c ~client ~handle ~need_role:role
              (done_ok (fun () -> print_endline "valid")))
    | `Fire ->
        need_handle (fun revoker ->
            Remote.Client.fire c ~revoker ~role ~args
              (done_ok (fun n -> Printf.printf "revoked %d\n" n)))
    | `Rehire ->
        need_handle (fun revoker ->
            Remote.Client.rehire c ~revoker ~role ~args
              (done_ok (fun () -> print_endline "reinstated")))
    | `Exit ->
        need_handle (fun handle ->
            Remote.Client.exit_role c ~handle (done_ok (fun () -> print_endline "exited")))
    | `Smoke ->
        (* End-to-end over the wire: place -> colocated bootstrap -> issue
           -> validate -> fire -> validate fails (one revocation converges,
           durable at the owning shard).  Each step chains on the last. *)
        let u = client in
        let fail step e =
          Printf.eprintf "smoke %s: %s\n%!" step e;
          finish 1
        in
        Remote.Client.ping c (function
          | Error e -> fail "ping" e
          | Ok () ->
              Remote.Client.place c ~role:"User" ~args:[ V.Str u ] (function
                | Error e -> fail "place" e
                | Ok owner ->
                    Remote.Client.bootstrap c ~shard:owner ~client ~roles:[ "Admin" ]
                      ~args:[] (function
                      | Error e -> fail "bootstrap" e
                      | Ok admin ->
                          Remote.Client.bootstrap c ~shard:owner ~client
                            ~roles:[ "Login" ] ~args:[ V.Str u ] (function
                      | Error e -> fail "bootstrap-login" e
                      | Ok login ->
                          Remote.Client.issue c ~client ~role:"User" ~args:[ V.Str u ]
                            ~creds:[ login ] (function
                            | Error e -> fail "issue" e
                            | Ok user ->
                                Remote.Client.validate c ~client ~handle:user
                                  ~need_role:"User" (function
                                  | Error e -> fail "validate" e
                                  | Ok () ->
                                      Remote.Client.fire c ~revoker:admin ~role:"User"
                                        ~args:[ V.Str u ] (function
                                        | Error e -> fail "fire" e
                                        | Ok n ->
                                            Remote.Client.validate c ~client ~handle:user
                                              (function
                                              | Ok () ->
                                                  fail "post-fire validate"
                                                    "certificate still valid after fire"
                                              | Error _ ->
                                                  Printf.printf
                                                    "smoke ok: shard %d, revoked %d, \
                                                     validation now refused\n\
                                                     %!"
                                                    owner n;
                                                  finish 0)))))))));
    let module Engine = Oasis_sim.Engine in
    let engine = Backend.engine backend in
    Engine.schedule engine ~delay:timeout (fun () -> Engine.stop engine);
    Backend.run backend;
    !rc
  in
  let doc = "Drive a running [serve] deployment over loopback" in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(
      const run $ port_base $ op $ client $ role_a $ args_a $ roles_a $ handle_a $ shard_a
      $ timeout_a)

(* --- demo subcommand --- *)

let demo_cmd =
  let run () =
    (* A compressed tour: conference roles, revocation cascade, and a badge
       composite event, in one simulated world. *)
    let module Engine = Oasis_sim.Engine in
    let module Net = Oasis_sim.Net in
    let module Service = Oasis_core.Service in
    let module Group = Oasis_core.Group in
    let module Principal = Oasis_core.Principal in
    let module V = Oasis_rdl.Value in
    let engine = Engine.create () in
    let net = Net.create ~latency:(Net.Fixed 0.01) engine in
    let reg = Service.create_registry () in
    let client_host = Net.add_host net "client" in
    let login =
      Result.get_ok
        (Service.create net (Net.add_host net "lh") reg ~name:"Login"
           ~rolefile:{|
def LoggedOn(u, h) u: String h: String
LoggedOn(u, h) <-
|} ())
    in
    let conf =
      Result.get_ok
        (Service.create net (Net.add_host net "ch") reg ~name:"Conf"
           ~rolefile:{|
Chair <- Login.LoggedOn("jmb", h)
Member(u) <- Login.LoggedOn(u, h)* : (u in staff)*
|} ())
    in
    Group.add (Service.group conf "staff") (V.Str "dm");
    let ph = Principal.Host.create "client" in
    let dom = Principal.Host.boot_domain ph in
    let dm = Principal.Host.new_vci ph dom in
    let dm_login =
      Service.issue_arbitrary login ~client:dm ~roles:[ "LoggedOn" ]
        ~args:[ V.Str "dm"; V.Str "client" ]
    in
    let member = ref None in
    Service.request_entry conf ~client_host ~client:dm ~role:"Member" ~creds:[ dm_login ]
      (function Ok c -> member := Some c | Error e -> print_endline e);
    Engine.run ~until:2.0 engine;
    (match !member with
    | Some c ->
        Printf.printf "dm entered Member: %s\n" (Format.asprintf "%a" Oasis_core.Cert.pp_rmc c);
        Service.revoke_certificate login dm_login;
        Engine.run ~until:5.0 engine;
        (match Service.validate conf ~client:dm c with
        | Error _ -> print_endline "dm logged off at Login -> Member revoked at Conf (cascade)"
        | Ok () -> print_endline "unexpected: still valid")
    | None -> print_endline "entry failed");
    0
  in
  let doc = "Run a small end-to-end demonstration world" in
  Cmd.v (Cmd.info "demo" ~doc) Term.(const run $ const ())

let () =
  let doc = "OASIS: an open architecture for secure interworking services" in
  let info = Cmd.info "oasis_cli" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            rdl_cmd;
            lint_cmd;
            composite_cmd;
            acl_cmd;
            erdl_cmd;
            idl_cmd;
            explore_cmd;
            shard_cmd;
            serve_cmd;
            client_cmd;
            demo_cmd;
          ]))
