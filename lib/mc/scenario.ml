(* Scenario DSL: the paper's membership narratives (§3.2.2, §4.11, §5) as
   executable specs the model checker can instantiate, drive and judge.

   A scenario is declarative data: service specs, principal names, a timed
   action script (issue / enter / fire / re-hire / logoff / crash / restart /
   partition / heal), an expected-outcome table and a set of invariants.
   [instantiate] builds a fresh deterministic world from it; every action is
   scheduled as an engine event tagged [a:<label>], so the explorer can
   reorder actions against message deliveries, fsyncs and timers just like
   any other pending event.

   Outcome expectations are *conditional on action-completion marks*: under
   an adversarial ordering an action's request can legitimately be dropped
   (e.g. delivered into a crashed host) and never complete.  That is not a
   bug — the bug would be the action completing and its effect then being
   lost.  So [sc_expect] receives a [done_] predicate over action labels and
   states what must hold for the actions that actually committed. *)

module Engine = Oasis_sim.Engine
module Net = Oasis_sim.Net
module Fault = Oasis_sim.Fault
module Broker = Oasis_events.Broker
module Disk = Oasis_store.Disk
module Service = Oasis_core.Service
module Group = Oasis_core.Group
module Principal = Oasis_core.Principal
module Cert = Oasis_core.Cert
module V = Oasis_rdl.Value

(* --- specs --- *)

type svc_spec = {
  ss_name : string;
  ss_rolefile : string;
  ss_durable : bool;
  ss_snapshot_every : int;
  ss_heartbeat : float;
  ss_groups : (string * string list) list;
}

let svc ?(durable = false) ?(snapshot_every = 6) ?(heartbeat = 1.0) ?(groups = []) name rolefile =
  {
    ss_name = name;
    ss_rolefile = rolefile;
    ss_durable = durable;
    ss_snapshot_every = snapshot_every;
    ss_heartbeat = heartbeat;
    ss_groups = groups;
  }

type world = {
  w_engine : Engine.t;
  w_net : Net.t;
  w_reg : Service.registry;
  w_client_host : Net.host;
  mutable w_services : (string * Service.t) list;
  mutable w_hosts : (string * Net.host) list;
  w_principals : (string, principal) Hashtbl.t;
  w_marks : (string, string) Hashtbl.t;
  w_fired : (string, bool) Hashtbl.t;
  w_box : (string, string) Hashtbl.t;
  mutable w_brokers : (string * Broker.server) list;
  mutable w_violations : (string * string) list;
  mutable w_extra_fp : (unit -> int64) list;
}

and principal = {
  p_name : string;
  p_vci : Principal.vci;
  mutable p_login : Cert.rmc option;
  mutable p_certs : (string * Cert.rmc) list;  (* "Svc.Role" -> certs, newest first *)
}

type action =
  | Issue of { service : string; who : string }
  | Enter of { who : string; service : string; role : string }
  | Enter_with of { who : string; service : string; role : string; use : string list }
  | Fire of { by : string; service : string; role : string; arg : string }
  | Rehire of { by : string; service : string; role : string; arg : string }
  | Logoff of { service : string; who : string }
  | Crash of { host : string }
  | Restart of { host : string }
  | Partition of { a : string; b : string }
  | Heal of { a : string; b : string }
  | Act of (world -> unit)

type timed = { at : float; label : string; act : action }

let step ~at label act = { at; label; act }

type outcome = Valid | Revoked | Absent

let outcome_str = function Valid -> "valid" | Revoked -> "revoked" | Absent -> "absent"

type invariant =
  | No_reentry_without_rehire
  | Fired_stays_fired
  | Converges
  | Crash_equiv
  | Custom_safety of string * (world -> (unit, string) result)
  | Custom_final of string * (world -> (unit, string) result)

let invariant_name = function
  | No_reentry_without_rehire -> "no-reentry-without-rehire"
  | Fired_stays_fired -> "fired-stays-fired"
  | Converges -> "converges"
  | Crash_equiv -> "crash-equiv"
  | Custom_safety (n, _) | Custom_final (n, _) -> n

type t = {
  sc_name : string;
  sc_services : svc_spec list;
  sc_principals : string list;
  sc_actions : timed list;
  sc_expect : done_:(string -> bool) -> (string * string * outcome) list;
  sc_invariants : invariant list;
  sc_horizon : float;
  sc_window : float * float;
  sc_latency : Net.latency;
  sc_seed : int64;
  sc_custom : (world -> unit) option;
}

(* --- world helpers --- *)

let find_service w name =
  match List.assoc_opt name w.w_services with
  | Some s -> s
  | None -> invalid_arg ("scenario: unknown service " ^ name)

let principal w name =
  match Hashtbl.find_opt w.w_principals name with
  | Some p -> p
  | None -> invalid_arg ("scenario: unknown principal " ^ name)

let host_of w name =
  match List.assoc_opt name w.w_services with
  | Some s -> Service.host s
  | None -> (
      match List.assoc_opt name w.w_hosts with
      | Some h -> h
      | None -> invalid_arg ("scenario: unknown host " ^ name))

let mark w label status = Hashtbl.replace w.w_marks label status

let mark_done w label = Hashtbl.find_opt w.w_marks label = Some "ok"

let violate w inv detail =
  if not (List.mem (inv, detail) w.w_violations) then
    w.w_violations <- (inv, detail) :: w.w_violations

let instance_key service role arg = Printf.sprintf "%s.%s(%s)" service role arg

let fired w key = Hashtbl.find_opt w.w_fired key = Some true

(* The revoker credential for fire/re-hire: the principal's newest
   certificate at that service (in the scenarios this is the Chair/Custos
   membership obtained during setup). *)
let revoker_cert p service =
  let prefix = service ^ "." in
  List.find_map
    (fun (key, c) ->
      if String.length key >= String.length prefix
         && String.sub key 0 (String.length prefix) = prefix
      then Some c
      else None)
    p.p_certs

(* --- performing actions --- *)

(* Shared entry body: request entry at [service] presenting the login
   credential plus the listed ["Svc.Role"] certificates from the
   principal's wallet (missing keys are simply not presented — under an
   adversarial ordering the earlier entry may never have completed). *)
let do_enter w label ~who ~service ~role ~use =
  let p = principal w who in
  let svc = find_service w service in
  let login = match p.p_login with Some c -> [ c ] | None -> [] in
  let picked = List.filter_map (fun key -> List.assoc_opt key p.p_certs) use in
  Service.request_entry svc ~client_host:w.w_client_host ~client:p.p_vci ~role
    ~creds:(login @ picked)
    (function
      | Ok cert ->
          (* Safety, checked online: an entry that commits while the
             instance is fired is exactly the §4.11 violation. *)
          if fired w (instance_key service role who) then
            violate w "no-reentry-without-rehire"
              (Printf.sprintf "%s re-entered %s.%s while fired (action %s)" who service role
                 label);
          p.p_certs <- (service ^ "." ^ role, cert) :: p.p_certs;
          mark w label "ok"
      | Error e -> mark w label ("err:" ^ e))

let perform w { label; act; _ } =
  match act with
  | Issue { service; who } ->
      let p = principal w who in
      let cert =
        Service.issue_arbitrary (find_service w service) ~client:p.p_vci ~roles:[ "LoggedOn" ]
          ~args:[ V.Str who; V.Str "ely" ]
      in
      p.p_login <- Some cert;
      mark w label "ok"
  | Enter { who; service; role } -> do_enter w label ~who ~service ~role ~use:[]
  | Enter_with { who; service; role; use } -> do_enter w label ~who ~service ~role ~use
  | Fire { by; service; role; arg } -> (
      let p = principal w by in
      let svc = find_service w service in
      match revoker_cert p service with
      | None -> mark w label "err:no revoker credential"
      | Some rc ->
          Service.revoke_role_instance svc ~client_host:w.w_client_host ~revoker:rc ~role
            ~args:[ V.Str arg ] (function
            | Ok _n ->
                Hashtbl.replace w.w_fired (instance_key service role arg) true;
                mark w label "ok"
            | Error e -> mark w label ("err:" ^ e)))
  | Rehire { by; service; role; arg } -> (
      let p = principal w by in
      let svc = find_service w service in
      match revoker_cert p service with
      | None -> mark w label "err:no revoker credential"
      | Some rc ->
          Service.reinstate_role_instance svc ~client_host:w.w_client_host ~revoker:rc ~role
            ~args:[ V.Str arg ] (function
            | Ok () ->
                Hashtbl.replace w.w_fired (instance_key service role arg) false;
                mark w label "ok"
            | Error e -> mark w label ("err:" ^ e)))
  | Logoff { service; who } -> (
      let p = principal w who in
      match p.p_login with
      | None -> mark w label "err:not logged on"
      | Some c ->
          Service.revoke_certificate (find_service w service) c;
          mark w label "ok")
  | Crash { host } ->
      Net.crash_host w.w_net (host_of w host);
      mark w label "ok"
  | Restart { host } ->
      Net.restart_host w.w_net (host_of w host);
      mark w label "ok"
  | Partition { a; b } ->
      Net.partition w.w_net (host_of w a) (host_of w b);
      mark w label "ok"
  | Heal { a; b } ->
      Net.heal w.w_net (host_of w a) (host_of w b);
      mark w label "ok"
  | Act run ->
      run w;
      mark w label "ok"

(* Labels of the fault-injection actions; the crash-free twin run strips
   these, and crash-equivalence compares marks only over the rest. *)
let fault_labels spec =
  List.filter_map
    (fun s ->
      match s.act with
      | Crash _ | Restart _ | Partition _ | Heal _ -> Some s.label
      | _ -> None)
    spec.sc_actions

let strip_faults spec =
  {
    spec with
    sc_actions =
      List.filter
        (fun s -> match s.act with Crash _ | Restart _ | Partition _ | Heal _ -> false | _ -> true)
        spec.sc_actions;
  }

(* --- instantiation --- *)

let instantiate ?seed spec =
  let engine = Engine.create () in
  let seed = Option.value seed ~default:spec.sc_seed in
  let net = Net.create ~seed ~latency:spec.sc_latency engine in
  let reg = Service.create_registry () in
  let client_host = Net.add_host net "client" in
  let services =
    List.map
      (fun ss ->
        let host = Net.add_host net ("h." ^ ss.ss_name) in
        let disk = if ss.ss_durable then Some (Disk.create net host ()) else None in
        let svc =
          match
            Service.create net host reg ~name:ss.ss_name ~rolefile:ss.ss_rolefile ?disk
              ~snapshot_every:ss.ss_snapshot_every ~heartbeat:ss.ss_heartbeat ()
          with
          | Ok s -> s
          | Error e -> invalid_arg (Printf.sprintf "scenario %s: %s: %s" spec.sc_name ss.ss_name e)
        in
        List.iter
          (fun (g, members) ->
            List.iter (fun m -> Group.add (Service.group svc g) (V.Str m)) members)
          ss.ss_groups;
        (ss.ss_name, svc))
      spec.sc_services
  in
  let phost = Principal.Host.create "client" in
  let dom = Principal.Host.boot_domain phost in
  let principals = Hashtbl.create 8 in
  List.iter
    (fun name ->
      Hashtbl.replace principals name
        { p_name = name; p_vci = Principal.Host.new_vci phost dom; p_login = None; p_certs = [] })
    spec.sc_principals;
  let w =
    {
      w_engine = engine;
      w_net = net;
      w_reg = reg;
      w_client_host = client_host;
      w_services = services;
      w_hosts =
        ("client", client_host)
        :: List.map (fun (n, s) -> ("h." ^ n, Service.host s)) services;
      w_principals = principals;
      w_marks = Hashtbl.create 16;
      w_fired = Hashtbl.create 8;
      w_box = Hashtbl.create 8;
      w_brokers = [];
      w_violations = [];
      w_extra_fp = [];
    }
  in
  (match spec.sc_custom with Some f -> f w | None -> ());
  List.iter
    (fun s -> Engine.schedule_at engine ~tag:("a:" ^ s.label) ~at:s.at (fun () -> perform w s))
    spec.sc_actions;
  w

(* --- state fingerprint --- *)

let fp_key = Oasis_util.Siphash.key_of_string "oasis.mc.world.fingerprint"

(* Everything protocol-visible that distinguishes two world states: every
   service (credential tables, blacklists, durable bytes) and its broker,
   action marks and fired flags, host liveness and link state, the pending
   event set (deadline + tag, *not* queue sequence numbers, which depend on
   insertion order and would split equal states), and any extra hooks a
   custom scenario registered. *)
let fingerprint w =
  let b = Buffer.create 512 in
  List.iter
    (fun (name, svc) ->
      Printf.bprintf b "%s=%Lx,%Lx;" name (Service.fingerprint svc)
        (Broker.fingerprint (Service.broker svc)))
    w.w_services;
  let sorted tbl render =
    Hashtbl.fold (fun k v acc -> render k v :: acc) tbl [] |> List.sort compare
  in
  List.iter (fun s -> Buffer.add_string b s; Buffer.add_char b '\x02')
    (sorted w.w_marks (fun k v -> k ^ "=" ^ v));
  Buffer.add_char b '\x03';
  List.iter (fun s -> Buffer.add_string b s; Buffer.add_char b '\x02')
    (sorted w.w_fired (fun k v -> k ^ "=" ^ string_of_bool v));
  Buffer.add_char b '\x03';
  List.iter (fun s -> Buffer.add_string b s; Buffer.add_char b '\x02')
    (sorted w.w_box (fun k v -> k ^ "=" ^ v));
  List.iter
    (fun (n, srv) -> Printf.bprintf b "%s@%Lx;" n (Broker.fingerprint srv))
    (List.sort compare w.w_brokers);
  Buffer.add_char b '\x03';
  let f = Net.fault w.w_net in
  let hosts = List.sort compare w.w_hosts in
  List.iter
    (fun (n, h) -> Printf.bprintf b "%s%c" n (if Fault.up f (Net.host_addr h) then '+' else '-'))
    hosts;
  List.iter
    (fun (na, ha) ->
      List.iter
        (fun (nb, hb) ->
          if na < nb && not (Fault.link_ok f (Net.host_addr ha) (Net.host_addr hb)) then
            Printf.bprintf b "!%s/%s;" na nb)
        hosts)
    hosts;
  Buffer.add_char b '\x03';
  let pend =
    List.map (fun e -> (e.Engine.ev_at, e.Engine.ev_tag)) (Engine.events w.w_engine)
    |> List.sort compare
  in
  List.iter (fun (at, tag) -> Printf.bprintf b "%h:%s;" at tag) pend;
  List.iter (fun f -> Printf.bprintf b "x%Lx;" (f ())) w.w_extra_fp;
  Oasis_util.Siphash.hash fp_key (Buffer.contents b)

(* --- invariant evaluation --- *)

(* Safety invariants are cheap and side-effect-free; the explorer calls this
   at every decision point so a violation is pinned to the shortest prefix
   that exhibits it. *)
let check_safety w spec =
  List.iter
    (function
      | Custom_safety (name, f) -> (
          match f w with Ok () -> () | Error d -> violate w name d)
      | _ -> ())
    spec.sc_invariants

let outcome w pname key =
  let p = principal w pname in
  match List.assoc_opt key p.p_certs with
  | None -> Absent
  | Some cert -> (
      let service = String.sub key 0 (String.index key '.') in
      match Service.validate (find_service w service) ~client:p.p_vci cert with
      | Ok () -> Valid
      | Error _ -> Revoked)

let outcomes w spec =
  let done_ l = mark_done w l in
  List.map (fun (p, key, exp) -> (p, key, exp, outcome w p key)) (spec.sc_expect ~done_)

(* Marks of the non-fault actions, sorted — the completion signature a run
   is compared on for crash equivalence. *)
let commit_marks w spec =
  let faulty = fault_labels spec in
  Hashtbl.fold
    (fun k v acc -> if List.mem k faulty then acc else (k, v) :: acc)
    w.w_marks []
  |> List.sort compare

type twin = { tw_marks : (string * string) list; tw_outcomes : (string * string * string) list }

let final_outcome_table w spec =
  List.map (fun (p, key, _exp, got) -> (p, key, outcome_str got)) (outcomes w spec)

let check_final ?twin w spec =
  List.iter
    (function
      | No_reentry_without_rehire | Custom_safety _ -> () (* enforced online *)
      | Converges ->
          List.iter
            (fun (p, key, exp, got) ->
              if got <> exp then
                violate w "converges"
                  (Printf.sprintf "%s %s: expected %s, found %s at horizon" p key
                     (outcome_str exp) (outcome_str got)))
            (outcomes w spec)
      | Fired_stays_fired ->
          Hashtbl.iter
            (fun ik is_fired ->
              if is_fired then begin
                (* ik = "Svc.Role(arg)" *)
                let dot = String.index ik '.' in
                let paren = String.index ik '(' in
                let service = String.sub ik 0 dot in
                let role = String.sub ik (dot + 1) (paren - dot - 1) in
                let arg = String.sub ik (paren + 1) (String.length ik - paren - 2) in
                let svc = find_service w service in
                if not (Service.blacklisted svc ~role ~args:[ V.Str arg ]) then
                  violate w "fired-stays-fired" (ik ^ " no longer blacklisted at horizon");
                match Hashtbl.find_opt w.w_principals arg with
                | None -> ()
                | Some p ->
                    List.iter
                      (fun (key, cert) ->
                        if key = service ^ "." ^ role then
                          match Service.validate svc ~client:p.p_vci cert with
                          | Ok () ->
                              violate w "fired-stays-fired"
                                (Printf.sprintf "%s holds a live %s certificate while fired" arg ik)
                          | Error _ -> ())
                      p.p_certs
              end)
            w.w_fired
      | Crash_equiv -> (
          match twin with
          | None -> ()
          | Some tw ->
              (* Only comparable when the same set of operations committed:
                 an ordering that drops an action into a crash is a
                 different history, not a divergence. *)
              if commit_marks w spec = tw.tw_marks then begin
                let got = final_outcome_table w spec in
                if got <> tw.tw_outcomes then
                  let diff =
                    List.filter_map
                      (fun (p, key, o) ->
                        match
                          List.find_opt (fun (p', key', _) -> p' = p && key' = key) tw.tw_outcomes
                        with
                        | Some (_, _, o') when o' <> o ->
                            Some (Printf.sprintf "%s %s: crash-free %s, recovered %s" p key o' o)
                        | _ -> None)
                      got
                  in
                  violate w "crash-equiv"
                    (match diff with [] -> "outcome tables differ" | d -> String.concat "; " d)
              end)
      | Custom_final (name, f) -> (
          match f w with Ok () -> () | Error d -> violate w name d))
    spec.sc_invariants
