(* Secure storage on the MSSA (chapter 5).

   A byte-segment custode stores the bits; a flat-file custode on top
   manages files grouped under shared ACLs; an indexed value-adding custode
   sits above it.  The example shows: meta-access control, one certificate
   covering a whole project, per-file delegation to a printer, volatile
   ACLs (modifying the ACL revokes outstanding certificates), and custode
   bypassing with callback caching.

   Run with: dune exec examples/storage.exe *)

module Engine = Oasis_sim.Engine
module Net = Oasis_sim.Net
module Service = Oasis_core.Service
module Group = Oasis_core.Group
module Principal = Oasis_core.Principal
module Byte_segment = Oasis_mssa.Byte_segment
module Custode = Oasis_mssa.Custode
module Vac = Oasis_mssa.Vac
module Bypass = Oasis_mssa.Bypass
module V = Oasis_rdl.Value

let say fmt = Printf.printf (fmt ^^ "\n")

let () =
  let engine = Engine.create () in
  let net = Net.create ~latency:(Net.Fixed 0.01) engine in
  let registry = Service.create_registry () in
  let client_host = Net.add_host net "workstation" in
  let run dt = Engine.run ~until:(Engine.now engine +. dt) engine in

  let login =
    Result.get_ok
      (Service.create net (Net.add_host net "login") registry ~name:"Login"
         ~rolefile:{|
def LoggedOn(u, h) u: String h: String
LoggedOn(u, h) <-
|} ())
  in
  let principals = Principal.Host.create "workstation" in
  let dom = Principal.Host.boot_domain principals in
  let user name =
    let vci = Principal.Host.new_vci principals dom in
    ( vci,
      Service.issue_arbitrary login ~client:vci ~roles:[ "LoggedOn" ]
        ~args:[ V.Str name; V.Str "workstation" ] )
  in

  (* The storage stack: byte segments below, a flat file custode above. *)
  let bsc = Result.get_ok (Byte_segment.create net (Net.add_host net "bsc") registry ~name:"BSC") in
  let ffc =
    Result.get_ok
      (Custode.create net (Net.add_host net "ffc") registry ~name:"FFC" ~admins:[ "root" ]
         ~backing:bsc ())
  in
  say "custode stack: FFC (flat files, shared ACLs) over BSC (byte segments)";

  let access user_name acl =
    let vci, login_cert = user user_name in
    let out = ref None in
    Custode.request_access ffc ~client_host ~client:vci ~login:login_cert ~acl (fun r ->
        out := Some r);
    run 1.0;
    match !out with
    | Some (Ok c) -> (vci, c)
    | Some (Error e) -> failwith e
    | None -> failwith "no reply"
  in

  (* root holds the system ACL (which protects itself — the legal local
     cycle of fig 5.5) and creates a project ACL. *)
  let _, root = access "root" "system" in
  Result.get_ok
    (Custode.create_acl ffc ~cert:root ~id:"empire" ~entries:"+jeh=adrwx +%staff=r" ~meta:"system");
  Group.add (Service.group (Custode.service ffc) "staff") (V.Str "dm");
  say "ACL 'empire' created: jeh has everything, the staff group may read";

  (* jeh's single UseAcl certificate covers every project file. *)
  let jeh_vci, jeh = access "jeh" "empire" in
  let files =
    List.init 5 (fun i ->
        let f = Result.get_ok (Custode.create_file ffc ~cert:jeh ~acl:"empire" ~container:"empire" ()) in
        Result.get_ok (Custode.write_file ffc ~cert:jeh ~file:f (Printf.sprintf "chapter %d" i));
        f)
  in
  say "jeh created %d files under one certificate; container usage: %d files, %d bytes"
    (List.length files)
    (fst (Custode.container_usage ffc "empire"))
    (snd (Custode.container_usage ffc "empire"));

  (* dm (staff) can read but not write. *)
  let _, dm = access "dm" "empire" in
  (match Custode.read_file ffc ~cert:dm ~file:(List.hd files) with
  | Ok text -> say "dm (staff) reads: %S" text
  | Error e -> say "read failed: %s" e);
  (match Custode.write_file ffc ~cert:dm ~file:(List.hd files) "scribble" with
  | Error _ -> say "dm cannot write — r only"
  | Ok () -> say "unexpected write");

  (* Per-file delegation: jeh lets the print spooler read chapter 0 only. *)
  let printer = Principal.Host.new_vci principals dom in
  let delegated = ref None in
  Custode.delegate_file_access ffc ~client_host ~holder:jeh ~file:(List.hd files) ~rights:"r"
    ~candidate:printer ()
    (function Ok (c, r) -> delegated := Some (c, r) | Error e -> say "delegate failed: %s" e);
  run 1.0;
  let print_cert, print_revoke = Option.get !delegated in
  (match Custode.read_file ffc ~cert:print_cert ~file:(List.hd files) with
  | Ok _ -> say "printer reads chapter 0 with a UseFile certificate"
  | Error e -> say "printer read failed: %s" e);
  (match Custode.read_file ffc ~cert:print_cert ~file:(List.nth files 1) with
  | Error _ -> say "...but only chapter 0: UseFile is file-specific"
  | Ok _ -> say "unexpected");
  Service.request_revocation (Custode.service ffc) ~client_host print_revoke (fun _ -> ());
  run 1.0;
  (match Custode.read_file ffc ~cert:print_cert ~file:(List.hd files) with
  | Error _ -> say "jeh revoked the printer's access"
  | Ok _ -> say "unexpected");

  (* Volatile ACLs: tightening the ACL revokes outstanding certificates. *)
  Result.get_ok (Custode.modify_acl ffc ~cert:root ~id:"empire" ~entries:"+jeh=adrwx");
  (match Custode.read_file ffc ~cert:dm ~file:(List.hd files) with
  | Error _ -> say "ACL tightened: dm's certificate was revoked automatically (volatile ACLs)"
  | Ok _ -> say "unexpected");
  (match Custode.read_file ffc ~cert:jeh ~file:(List.hd files) with
  | Error _ -> say "note: jeh must re-request too — certificates are bound to ACL contents"
  | Ok _ -> say "unexpected");
  let _, jeh2 = access "jeh" "empire" in
  say "jeh re-entered under the new ACL: %s"
    (match Custode.read_file ffc ~cert:jeh2 ~file:(List.hd files) with
    | Ok _ -> "read ok"
    | Error e -> e);

  (* A value-adding custode and bypassing (§5.6). *)
  let _, vac_cert0 = access "root" "system" in
  ignore vac_cert0;
  ignore (Custode.create_acl ffc ~cert:root ~id:"vacdata" ~entries:"+vacuser=adrwx" ~meta:"system");
  let _, vac_below = access "vacuser" "vacdata" in
  let data_file = Result.get_ok (Custode.create_file ffc ~cert:vac_below ~acl:"vacdata" ()) in
  let vac =
    Result.get_ok
      (Vac.create net (Net.add_host net "vac") registry ~name:"Indexed"
         ~below:(Vac.Below_custode ffc) ~below_cert:vac_below)
  in
  let app = Principal.Host.new_vci principals dom in
  let app_cert = Vac.grant vac ~client:app in
  let done_ = ref false in
  Vac.write vac ~client_host ~cert:app_cert ~file:data_file "searchable indexed content"
    (fun _ -> done_ := true);
  run 1.0;
  let found = ref [] in
  Vac.search vac ~client_host ~cert:app_cert "indexed" (function
    | Ok fs -> found := fs
    | Error _ -> ());
  run 1.0;
  say "the indexed VAC adds search: keyword 'indexed' -> files %s"
    (String.concat "," (List.map string_of_int !found));
  let bp = Bypass.create ffc in
  Bypass.register_route bp ~top:vac;
  let t0 = Engine.now engine in
  Bypass.read bp ~client_host ~cert:app_cert ~file:data_file (fun _ -> ());
  run 1.0;
  let t_cold = Engine.now engine -. t0 in
  ignore t_cold;
  let t1 = Engine.now engine in
  let got = ref "" in
  Bypass.read bp ~client_host ~cert:app_cert ~file:data_file (function
    | Ok text -> got := text
    | Error e -> got := e);
  run 1.0;
  ignore t1;
  say "bypassed read (VAC skipped, callback cached): %S" !got;
  say "bypass callbacks made: %d (first read only)" (Bypass.callbacks_made bp);
  ignore jeh_vci
