(** Sharded credential plane: one logical service partitioned across N
    {!Service} replicas on distinct sim hosts.

    The paper's coherence machinery already does the hard part: cross-shard
    parent/child edges in the credential-record DAG are ordinary
    external/surrogate records (§4.9.1), kept coherent by [ModifiedBatch]
    digests and the §4.10 staleness/reread protocol, so a revocation
    cascade crosses shard boundaries exactly the way it crosses service
    boundaries today.  This module adds only {e placement} and a
    {e router}:

    - a consistent-hash ring (SipHash over the role-instance routing key,
      configurable shard count and virtual nodes) decides which shard owns
      each role instance's records;
    - a front-end router host forwards role-entry, fire/re-hire and
      certificate-validation requests to the owning shard
      ({!Oasis_sim.Net.rpc_async_retry} for the asynchronous operations —
      fire/re-hire acks ride the owning shard's WAL group commit and must
      not be answered early — and a plain {!Oasis_sim.Net.rpc_retry} hop
      for synchronous validation);
    - every shard journals to its own [lib/store] WAL/snapshot, so shards
      crash and recover independently.

    Shards are wired as {!Service.add_sibling} pairs: unqualified rolefile
    references accept sibling-issued memberships, and sibling certificates
    are accepted as revoker credentials after validation at their issuer.
    The router is itself a simulated host, not a replicated load balancer
    (see DESIGN.md, substitutions): it holds no credential state, so its
    loss is availability, never safety.

    With [replicas = K > 1] each shard is additionally a {!Replica} group:
    K durable service instances under the shard's one logical name, the
    primary shipping its WAL to backups and acking only at a majority, with
    deterministic lease/epoch failover.  The router re-resolves the owning
    group's {e current} primary at forward time, so requests follow a
    failover transparently; while a promotion is replaying, forwards are
    dropped (not answered) and the client-side retry re-delivers them.

    Correctness story: the differential harness in [test/test_shard.ml]
    runs identical seeded workloads against 1-shard and N-shard
    deployments (and against K = 1 vs K = 3 replica groups) and asserts
    observable equivalence under chaos faults; the [cross_shard_fire] and
    [replica_failover] model-checker scenarios explore shard/replica
    crashes in the middle of revocation cascades exhaustively. *)

type value = Oasis_rdl.Value.t

(** The consistent-hash ring, separated from any deployment so the
    placement function can be property-tested (and evolved) in isolation.
    Each shard contributes [vnodes] SipHash points; a key is owned by the
    first point clockwise from its own hash.  Adding or removing one shard
    therefore moves only the key ranges adjacent to that shard's points —
    at most ~[1/N] of the keyspace, bounded by [2/N] in the tests — and
    every other key keeps its owner, which is what makes resharding a
    record migration rather than a full reshuffle. *)
module Ring : sig
  type t

  val make : ?vnodes:int -> shards:int -> unit -> t
  (** A ring of shard ids [0 .. shards-1], [vnodes] (default 64) virtual
      points each.  Deterministic: same parameters, same placement. *)

  val shard_count : t -> int
  val vnodes : t -> int

  val shard_ids : t -> int list
  (** Live shard ids, ascending (contiguous only until {!remove_shard}). *)

  val owner : t -> string -> int
  (** The shard id owning a routing key. *)

  val add_shard : t -> t
  (** A new ring with one more shard (fresh id); existing keys move to the
      newcomer only where its points land. *)

  val remove_shard : t -> int -> t
  (** A new ring without [id]; only keys owned by [id] move.
      @raise Invalid_argument if [id] is not in the ring (a silent no-op
      here used to mask resharding bugs) or if removing it would empty
      the ring. *)
end

val route_key : role:string -> args:value list -> string
(** The routing key for a role instance: role name plus marshalled
    arguments.  Routing by instance (not by principal) lets one
    principal's roles land on different shards, so revocation cascades
    genuinely cross shard boundaries. *)

type t
(** A sharded deployment: router host, N shard services (named
    [name#0 .. name#N-1], each on its own host [h.name.sK]), and the
    ring binding them. *)

val create :
  Oasis_sim.Net.t ->
  Service.registry ->
  name:string ->
  rolefile:string ->
  shards:int ->
  ?vnodes:int ->
  ?heartbeat:float ->
  ?durable:bool ->
  ?snapshot_every:int ->
  ?groups:(string * string list) list ->
  ?lint:[ `Off | `Warn | `Strict ] ->
  ?replicas:int ->
  ?repl_heartbeat:float ->
  ?repl_lease:float ->
  ?repl_stagger:float ->
  unit ->
  (t, string) result
(** Build the deployment: one router host plus [shards] shard services,
    every shard loaded with the same [rolefile] (and the same [groups],
    seeded as string members), all pairs wired as siblings.  [durable]
    gives each shard its own simulated disk (WAL + snapshots,
    [snapshot_every] appends); shards then crash and recover
    independently under the fault plane.  [shards = 1] is the unsharded
    twin the differential tests compare against: same code path, same
    naming, one shard.

    [replicas] (default 1) sets the replication factor K of each shard's
    {!Replica} group; K > 1 requires [durable] (backups journal the
    shipped stream) and disables snapshot compaction on group members (the
    stream is in global record coordinates).  Replica [j] of shard [i]
    runs on host [h.name.sI] for [j = 0] (the historical name, so K = 1 is
    byte-identical to the pre-replication plane) and [h.name.sI.rJ]
    otherwise.  [repl_heartbeat]/[repl_lease]/[repl_stagger] tune the
    failover clock; see {!Replica.create} for defaults.  Use odd K.

    Compound certificates (§4.3) are disabled on every shard: folding
    same-argument roles into one record assumes all of a principal's roles
    live in one table, which is exactly what instance-sharding gives up.
    Each entered role gets its own certificate. *)

val name : t -> string
val ring : t -> Ring.t
val shard_count : t -> int
val router_host : t -> Oasis_sim.Net.host
val shards : t -> Service.t array
(** Current primaries, in shard order (a fresh array per call: primaries
    change across failovers, so do not cache across engine events). *)

val shard : t -> int -> Service.t
(** Shard [i]'s current primary. *)

val replica_groups : t -> Replica.t array
val replica_group : t -> int -> Replica.t
(** Shard [i]'s replica group (trivial when [replicas = 1]). *)

val owner_index : t -> role:string -> args:value list -> int
val owner : t -> role:string -> args:value list -> Service.t
(** The shard (current primary) owning a role instance (placement
    introspection for tests and scenarios). *)

val request_entry :
  t ->
  client_host:Oasis_sim.Net.host ->
  client:Principal.vci ->
  role:string ->
  args:value list ->
  ?creds:Cert.rmc list ->
  ((Cert.rmc, string) result -> unit) ->
  unit
(** Enter a role instance via the router, which forwards to the owning
    shard.  [args] is required (it is the routing key).  Clients should
    present exactly the credentials for the instance being entered;
    entry runs at the owning shard, validating cross-shard prerequisites
    at their issuers like any external credential (§2.10). *)

val revoke_role_instance :
  t ->
  client_host:Oasis_sim.Net.host ->
  revoker:Cert.rmc ->
  role:string ->
  args:value list ->
  ((int, string) result -> unit) ->
  unit
(** Fire via the router: the owning shard blacklists the instance,
    persists the fact, and acks only once durable; the cascade reaches
    other shards through the notification/reread machinery.  The revoker
    certificate may come from any sibling shard. *)

val reinstate_role_instance :
  t ->
  client_host:Oasis_sim.Net.host ->
  revoker:Cert.rmc ->
  role:string ->
  args:value list ->
  ((unit, string) result -> unit) ->
  unit

val validate :
  t ->
  client_host:Oasis_sim.Net.host ->
  client:Principal.vci ->
  ?need_role:string ->
  Cert.rmc ->
  ((unit, string) result -> unit) ->
  unit
(** Validate a certificate via the router: forwarded (one
    {!Oasis_sim.Net.rpc_retry} hop) to the shard that issued it, which is
    the only table where its record reference means anything.

    If the issuing shard stays unreachable past the forward budget, the
    router backs off one broker heartbeat, re-resolves the shard's primary
    (it may have failed over) and retries once; only then does it answer
    [Error "fail-closed: ..."] — an explicit, deliberate verdict meaning
    "could not be checked, treat as invalid", distinguishable from both a
    transport error and a genuine validation failure.  Validation never
    fails {e open}. *)

val exit_role :
  t -> client_host:Oasis_sim.Net.host -> Cert.rmc -> ((unit, string) result -> unit) -> unit

val blacklisted : t -> role:string -> args:value list -> bool
(** §4.11 introspection at the owning shard (direct, for tests). *)

val fingerprint : t -> int64
(** Combined fingerprint over every shard's protocol-visible state, in
    shard order; folded into model-checker state hashes.  For [replicas =
    1] this is byte-for-byte the pre-replication fingerprint (persisted
    schedules replay unchanged); for K > 1 it additionally folds every
    member's service fingerprint and the group's {!Replica.fingerprint}. *)

val durable_flush : t -> unit
(** Force every replica's WAL to disk (test determinism helper). *)
