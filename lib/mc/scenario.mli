(** Scenario DSL for the model checker: the paper's membership narratives
    (§3.2.2 club roles, §4.11 fire/re-hire, §5 MSSA) as declarative specs.

    A scenario names its services (rolefiles, durability, groups), its
    principals, a timed action script and the properties every explored
    interleaving must satisfy.  {!instantiate} builds a fresh deterministic
    world; each action becomes a pending engine event tagged [a:<label>],
    so the explorer ({!Explore}) reorders actions against message
    deliveries, stable-storage flushes, timers and fault injections. *)

type svc_spec = {
  ss_name : string;
  ss_rolefile : string;
  ss_durable : bool;  (** give the service a simulated disk + WAL *)
  ss_snapshot_every : int;
  ss_heartbeat : float;
  ss_groups : (string * string list) list;  (** initial group memberships *)
}

val svc :
  ?durable:bool ->
  ?snapshot_every:int ->
  ?heartbeat:float ->
  ?groups:(string * string list) list ->
  string ->
  string ->
  svc_spec
(** [svc name rolefile] with defaults: volatile, snapshot every 6 appends,
    1 s heartbeat, no groups. *)

(** A live instantiated scenario world. *)
type world = {
  w_engine : Oasis_sim.Engine.t;
  w_net : Oasis_sim.Net.t;
  w_reg : Oasis_core.Service.registry;
  w_client_host : Oasis_sim.Net.host;
  mutable w_services : (string * Oasis_core.Service.t) list;
      (** every judged service; custom builders (e.g. a sharded
          deployment) append theirs so outcomes, invariants and the
          fingerprint cover them *)
  mutable w_hosts : (string * Oasis_sim.Net.host) list;
      (** every named host; custom builders append theirs *)
  w_principals : (string, principal) Hashtbl.t;
  w_marks : (string, string) Hashtbl.t;
      (** action label -> ["ok"] or ["err:..."]; absent = never completed *)
  w_fired : (string, bool) Hashtbl.t;  (** "Svc.Role(arg)" -> currently fired *)
  w_box : (string, string) Hashtbl.t;
      (** free-form blackboard for custom scenarios (observations made by
          harness clients, read back by custom invariants); folded into the
          fingerprint *)
  mutable w_brokers : (string * Oasis_events.Broker.server) list;
      (** standalone broker servers a custom builder installed, by name;
          actions look them up, fingerprints fold them in *)
  mutable w_violations : (string * string) list;
      (** (invariant, detail), newest first *)
  mutable w_extra_fp : (unit -> int64) list;
      (** extra state hashes folded into {!fingerprint} (custom builders
          register their brokers/clients here) *)
}

and principal = {
  p_name : string;
  p_vci : Oasis_core.Principal.vci;
  mutable p_login : Oasis_core.Cert.rmc option;
  mutable p_certs : (string * Oasis_core.Cert.rmc) list;
      (** "Svc.Role" -> certificates, newest first *)
}

type action =
  | Issue of { service : string; who : string }
      (** authentication service issues LoggedOn(who, "ely") *)
  | Enter of { who : string; service : string; role : string }
  | Enter_with of { who : string; service : string; role : string; use : string list }
      (** like [Enter], additionally presenting the principal's newest
          certificate for each ["Svc.Role"] key in [use] — entries whose
          prerequisite roles live at another service (or another shard)
          need those credentials in the request; keys the wallet does not
          hold yet are silently not presented *)
  | Fire of { by : string; service : string; role : string; arg : string }
  | Rehire of { by : string; service : string; role : string; arg : string }
  | Logoff of { service : string; who : string }
  | Crash of { host : string }  (** host name, or a service name's host *)
  | Restart of { host : string }
  | Partition of { a : string; b : string }
  | Heal of { a : string; b : string }
  | Act of (world -> unit)  (** escape hatch for bespoke steps *)

type timed = { at : float; label : string; act : action }

val step : at:float -> string -> action -> timed

type outcome = Valid | Revoked | Absent

val outcome_str : outcome -> string

type invariant =
  | No_reentry_without_rehire
      (** §4.11 safety: an [Enter] that commits while its instance is fired
          (and not re-hired) is a violation.  Checked online in the entry
          callback. *)
  | Fired_stays_fired
      (** at the horizon, every fired instance is still blacklisted and all
          its certificates are dead — including across crash recovery *)
  | Converges
      (** at the horizon, the {!t.sc_expect} table holds *)
  | Crash_equiv
      (** the final outcome table equals the crash-free twin run's, whenever
          the same set of actions committed in both *)
  | Custom_safety of string * (world -> (unit, string) result)
      (** checked at every decision point *)
  | Custom_final of string * (world -> (unit, string) result)

val invariant_name : invariant -> string

type t = {
  sc_name : string;
  sc_services : svc_spec list;
  sc_principals : string list;
  sc_actions : timed list;
  sc_expect : done_:(string -> bool) -> (string * string * outcome) list;
      (** expected (principal, "Svc.Role", outcome) rows, conditional on
          which actions completed with ["ok"] *)
  sc_invariants : invariant list;
  sc_horizon : float;  (** virtual time at which final invariants are judged *)
  sc_window : float * float;
      (** the branching band: decision points are only counted while the
          earliest pending deadline lies inside it *)
  sc_latency : Oasis_sim.Net.latency;
  sc_seed : int64;
  sc_custom : (world -> unit) option;
      (** run once at instantiation, before actions are scheduled *)
}

(** {1 Instantiation and execution} *)

val instantiate : ?seed:int64 -> t -> world
(** Build the world (services, principals, scheduled actions).  [seed]
    overrides [sc_seed] (the seed-sweep baseline varies it). *)

val perform : world -> timed -> unit

val strip_faults : t -> t
(** The crash-free twin: the same scenario without crash / restart /
    partition / heal actions. *)

val fault_labels : t -> string list

(** {1 State and judgement} *)

val fingerprint : world -> int64
(** Deterministic hash of everything protocol-visible: service and broker
    fingerprints, marks, fired flags, host liveness, link state, the pending
    event multiset (deadline + tag, not insertion order) and custom extra
    hashes.  Equal fingerprints identify equal continuations; the explorer
    prunes on it. *)

val mark_done : world -> string -> bool
val violate : world -> string -> string -> unit
val fired : world -> string -> bool
val instance_key : string -> string -> string -> string

val check_safety : world -> t -> unit
(** Evaluate [Custom_safety] invariants now (side-effect-free on the
    simulation; violations accumulate in [w_violations]). *)

type twin = { tw_marks : (string * string) list; tw_outcomes : (string * string * string) list }

val commit_marks : world -> t -> (string * string) list
val final_outcome_table : world -> t -> (string * string * string) list

val outcomes : world -> t -> (string * string * outcome * outcome) list
(** Expected vs found, per expectation row: (principal, key, expected,
    found). *)

val check_final : ?twin:twin -> world -> t -> unit
(** Evaluate the final invariants at the horizon. *)
