examples/storage.ml: List Oasis_core Oasis_mssa Oasis_rdl Oasis_sim Option Printf Result String
