module Value = Oasis_rdl.Value
module Pqueue = Oasis_util.Pqueue

type value = Value.t

type handlers = {
  on_event : Bead.occurrence -> unit;
  on_fixed : Bead.occurrence -> unit;
  on_end : unit -> unit;
}

type t = {
  io : Bead.io;
  templates : Event.template list;
  queue : Bead.occurrence Pqueue.t;
  handlers : handlers;
  mutable detector : Bead.detector option;
  mutable until_detector : Bead.detector option;
  mutable unsub_horizon : unit -> unit;
  mutable ended : bool;
}

let queue_length t = Pqueue.length t.queue

let drain_fixed t =
  (* Pop every occurrence the covering horizon has passed: these form the
     newly fixed portion of the queue (fig 6.6). *)
  let horizon = t.io.Bead.io_horizon t.templates in
  let rec go () =
    match Pqueue.peek t.queue with
    | Some (at, _) when at <= horizon -> (
        match Pqueue.pop t.queue with
        | Some (_, o) ->
            if not t.ended then t.handlers.on_fixed o;
            go ()
        | None -> ())
    | _ -> ()
  in
  go ()

let stop t =
  if not t.ended then begin
    t.ended <- true;
    (* Whatever is queued is fixed by fiat at stream end. *)
    let rec flush () =
      match Pqueue.pop t.queue with
      | Some (_, o) ->
          t.handlers.on_fixed o;
          flush ()
      | None -> ()
    in
    flush ();
    t.unsub_horizon ();
    Option.iter Bead.stop t.detector;
    Option.iter Bead.stop t.until_detector;
    t.handlers.on_end ()
  end

let aggregate io ?(env = []) ?until comp handlers =
  let t =
    {
      io;
      templates = Composite.base_templates comp;
      queue = Pqueue.create ();
      handlers;
      detector = None;
      until_detector = None;
      unsub_horizon = (fun () -> ());
      ended = false;
    }
  in
  t.unsub_horizon <- io.Bead.on_horizon (fun () -> if not t.ended then drain_fixed t);
  t.detector <-
    Some
      (Bead.detect io ~env comp ~on_occur:(fun o ->
           if not t.ended then begin
             t.handlers.on_event o;
             Pqueue.push t.queue o.Bead.at o;
             drain_fixed t
           end));
  (match until with
  | None -> ()
  | Some u -> t.until_detector <- Some (Bead.detect io ~env u ~on_occur:(fun _ -> stop t)));
  t

(* --- the toy aggregation language (§6.10) --- *)

exception Program_error of string

type aexpr =
  | Aint of int
  | Astr of string
  | Alocal of string
  | Anew of string  (** [new.x] *)
  | Atime  (** [new.time] *)
  | Abin of char * aexpr * aexpr  (** '+' '-' '*' '/' '&' '|' *)
  | Acmp of string * aexpr * aexpr  (** "=" "<>" "<" "<=" ">" ">=" *)
  | Anot of aexpr
  | Aneg of aexpr

type stmt =
  | Sassign of string * aexpr
  | Sif of aexpr * stmt * stmt option
  | Ssignal of string * aexpr list
  | Sstop
  | Sblock of stmt list
  | Sskip

type program = {
  p_decls : (string * aexpr) list;
  p_expr : Composite.t;
  p_until : Composite.t option;
  p_event : stmt list;
  p_fixed : stmt list;
  p_end : stmt list;
}

(* lexer for the statement language *)

type atok =
  | AID of string
  | AINT of int
  | ASTR of string
  | APUNCT of string  (* ( ) { } , ; . = <> < <= > >= + - * / && || ! *)
  | AEOF

let alex src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let emit t = toks := t :: !toks in
  while !i < n do
    let c = src.[!i] in
    let two = if !i + 1 < n then String.sub src !i 2 else "" in
    match c with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | '"' ->
        incr i;
        let start = !i in
        while !i < n && src.[!i] <> '"' do
          incr i
        done;
        if !i >= n then raise (Program_error "unterminated string");
        emit (ASTR (String.sub src start (!i - start)));
        incr i
    | '0' .. '9' ->
        let start = !i in
        while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do
          incr i
        done;
        emit (AINT (int_of_string (String.sub src start (!i - start))))
    | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
        let start = !i in
        while
          !i < n
          && match src.[!i] with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false
        do
          incr i
        done;
        emit (AID (String.sub src start (!i - start)))
    | _ when List.mem two [ "<>"; "<="; ">="; "&&"; "||" ] ->
        emit (APUNCT two);
        i := !i + 2
    | '(' | ')' | '{' | '}' | ',' | ';' | '.' | '=' | '<' | '>' | '+' | '-' | '*' | '/' | '!' ->
        emit (APUNCT (String.make 1 c));
        incr i
    | c -> raise (Program_error (Printf.sprintf "unexpected character %C" c))
  done;
  emit AEOF;
  List.rev !toks

type astate = { mutable atoks : atok list }

let apk st = match st.atoks with t :: _ -> t | [] -> AEOF
let aadv st = match st.atoks with _ :: r -> st.atoks <- r | [] -> ()

let apunct st p =
  match apk st with
  | APUNCT q when String.equal p q ->
      aadv st;
      true
  | _ -> false

let aexpect st p = if not (apunct st p) then raise (Program_error ("expected '" ^ p ^ "'"))

let rec parse_aexpr st = parse_or st

and parse_or st =
  let l = parse_and st in
  if apunct st "||" then Abin ('|', l, parse_or st) else l

and parse_and st =
  let l = parse_cmp st in
  if apunct st "&&" then Abin ('&', l, parse_and st) else l

and parse_cmp st =
  let l = parse_add st in
  let try_op op = match apk st with APUNCT p when String.equal p op -> true | _ -> false in
  let ops = [ "<>"; "<="; ">="; "="; "<"; ">" ] in
  match List.find_opt try_op ops with
  | Some op ->
      aadv st;
      Acmp (op, l, parse_add st)
  | None -> l

and parse_add st =
  let l = parse_mul st in
  if apunct st "+" then Abin ('+', l, parse_add st)
  else if apunct st "-" then
    (* Left-associate subtraction to keep a - b - c = (a - b) - c. *)
    let rec chain acc =
      let r = parse_mul st in
      let acc = Abin ('-', acc, r) in
      if apunct st "-" then chain acc
      else if apunct st "+" then Abin ('+', acc, parse_add st)
      else acc
    in
    chain l
  else l

and parse_mul st =
  let l = parse_unary st in
  if apunct st "*" then Abin ('*', l, parse_mul st)
  else if apunct st "/" then
    let rec chain acc =
      let r = parse_unary st in
      let acc = Abin ('/', acc, r) in
      if apunct st "/" then chain acc
      else if apunct st "*" then Abin ('*', acc, parse_mul st)
      else acc
    in
    chain l
  else l

and parse_unary st =
  if apunct st "!" then Anot (parse_unary st)
  else if apunct st "-" then Aneg (parse_unary st)
  else parse_primary st

and parse_primary st =
  match apk st with
  | AINT n ->
      aadv st;
      Aint n
  | ASTR s ->
      aadv st;
      Astr s
  | AID "new" ->
      aadv st;
      aexpect st ".";
      (match apk st with
      | AID "time" ->
          aadv st;
          Atime
      | AID x ->
          aadv st;
          Anew x
      | _ -> raise (Program_error "expected parameter name after 'new.'"))
  | AID x ->
      aadv st;
      Alocal x
  | APUNCT "(" ->
      aadv st;
      let e = parse_aexpr st in
      aexpect st ")";
      e
  | _ -> raise (Program_error "expected expression")

let rec parse_stmt st =
  match apk st with
  | APUNCT ";" -> Sskip
  | APUNCT "{" ->
      aadv st;
      let body = parse_stmts st in
      aexpect st "}";
      Sblock body
  | AID "if" ->
      aadv st;
      aexpect st "(";
      let cond = parse_aexpr st in
      aexpect st ")";
      let then_ = parse_stmt st in
      let else_ =
        match apk st with
        | AID "else" ->
            aadv st;
            Some (parse_stmt st)
        | _ -> None
      in
      Sif (cond, then_, else_)
  | AID "signal" ->
      aadv st;
      let name =
        match apk st with
        | AID n ->
            aadv st;
            n
        | _ -> raise (Program_error "expected event name after 'signal'")
      in
      aexpect st "(";
      let args =
        if apunct st ")" then []
        else
          let rec go acc =
            let e = parse_aexpr st in
            if apunct st "," then go (e :: acc)
            else begin
              aexpect st ")";
              List.rev (e :: acc)
            end
          in
          go []
      in
      Ssignal (name, args)
  | AID "stop" ->
      aadv st;
      Sstop
  | AID x ->
      aadv st;
      aexpect st "=";
      Sassign (x, parse_aexpr st)
  | _ -> raise (Program_error "expected statement")

and parse_stmts st =
  let rec go acc =
    match apk st with
    | AEOF | APUNCT "}" -> List.rev acc
    | APUNCT ";" ->
        aadv st;
        go acc
    | _ ->
        let s = parse_stmt st in
        go (s :: acc)
  in
  go []

let parse_stmt_text text =
  let st = { atoks = alex text } in
  let stmts = parse_stmts st in
  if apk st <> AEOF then raise (Program_error "trailing input in statements");
  stmts

let parse_decls text =
  (* "int x = e;" or "var x = e;" declarations. *)
  let st = { atoks = alex text } in
  let rec go acc =
    match apk st with
    | AEOF -> List.rev acc
    | APUNCT ";" ->
        aadv st;
        go acc
    | AID ("int" | "var") -> (
        aadv st;
        match apk st with
        | AID x ->
            aadv st;
            aexpect st "=";
            let e = parse_aexpr st in
            go ((x, e) :: acc)
        | _ -> raise (Program_error "expected name in declaration"))
    | _ -> raise (Program_error "expected declaration")
  in
  go []

(* Section splitting: a section header is a line starting (after blanks) with
   "expr:", "until:", "event:", "fixed:" or "end:". *)
let parse_program src =
  let src =
    (* Strip optional surrounding braces. *)
    let s = String.trim src in
    if String.length s >= 2 && s.[0] = '{' && s.[String.length s - 1] = '}' then
      String.sub s 1 (String.length s - 2)
    else s
  in
  let lines = String.split_on_char '\n' src in
  let header line =
    let line = String.trim line in
    List.find_map
      (fun h ->
        let tag = h ^ ":" in
        if String.length line >= String.length tag && String.sub line 0 (String.length tag) = tag
        then Some (h, String.sub line (String.length tag) (String.length line - String.length tag))
        else None)
      [ "expr"; "until"; "event"; "fixed"; "var"; "end" ]
  in
  let sections = Hashtbl.create 8 in
  let current = ref "decls" in
  Hashtbl.replace sections "decls" (Buffer.create 64);
  List.iter
    (fun line ->
      match header line with
      | Some (h, rest) ->
          current := h;
          let buf =
            match Hashtbl.find_opt sections h with
            | Some b -> b
            | None ->
                let b = Buffer.create 64 in
                Hashtbl.replace sections h b;
                b
          in
          Buffer.add_string buf rest;
          Buffer.add_char buf '\n'
      | None ->
          let buf = Hashtbl.find sections !current in
          Buffer.add_string buf line;
          Buffer.add_char buf '\n')
    lines;
  let text h = match Hashtbl.find_opt sections h with Some b -> Buffer.contents b | None -> "" in
  let expr_text = String.trim (text "expr") in
  if expr_text = "" then raise (Program_error "missing expr: section");
  let comp =
    match Composite.parse_result expr_text with
    | Ok c -> c
    | Error e -> raise (Program_error ("expr: " ^ e))
  in
  let until =
    match String.trim (text "until") with
    | "" -> None
    | u -> (
        match Composite.parse_result u with
        | Ok c -> Some c
        | Error e -> raise (Program_error ("until: " ^ e)))
  in
  {
    p_decls = parse_decls (text "decls");
    p_expr = comp;
    p_until = until;
    p_event = parse_stmt_text (text "event");
    (* The paper spells the fixed-portion section "var:" (§6.10); accept
       both names. *)
    p_fixed = parse_stmt_text (text "fixed" ^ "\n" ^ text "var");
    p_end = parse_stmt_text (text "end");
  }

(* --- interpreter --- *)

type frame = {
  locals : (string, value) Hashtbl.t;
  mutable occurrence : Bead.occurrence option;
  on_signal : string -> value list -> unit;
  mutable want_stop : bool;
}

let to_int ctx = function
  | Value.Int n -> n
  | v -> raise (Program_error (ctx ^ ": expected integer, got " ^ Value.to_string v))

let rec eval_a frame = function
  | Aint n -> Value.Int n
  | Astr s -> Value.Str s
  | Alocal x -> (
      match Hashtbl.find_opt frame.locals x with
      | Some v -> v
      | None -> raise (Program_error ("unbound local " ^ x)))
  | Anew x -> (
      match frame.occurrence with
      | None -> raise (Program_error "'new' outside event context")
      | Some o -> (
          match List.assoc_opt x o.Bead.env with
          | Some v -> v
          | None -> raise (Program_error ("occurrence has no binding " ^ x))))
  | Atime -> (
      match frame.occurrence with
      | None -> raise (Program_error "'new.time' outside event context")
      | Some o -> Value.Int (int_of_float (o.Bead.at *. 1000.0)))
  | Aneg e -> Value.Int (-to_int "negation" (eval_a frame e))
  | Anot e -> Value.Int (if to_int "not" (eval_a frame e) = 0 then 1 else 0)
  | Abin (op, a, b) -> (
      match op with
      | '&' ->
          if to_int "&&" (eval_a frame a) = 0 then Value.Int 0
          else Value.Int (if to_int "&&" (eval_a frame b) = 0 then 0 else 1)
      | '|' ->
          if to_int "||" (eval_a frame a) <> 0 then Value.Int 1
          else Value.Int (if to_int "||" (eval_a frame b) = 0 then 0 else 1)
      | _ -> (
          let x = to_int "arithmetic" (eval_a frame a) in
          let y = to_int "arithmetic" (eval_a frame b) in
          match op with
          | '+' -> Value.Int (x + y)
          | '-' -> Value.Int (x - y)
          | '*' -> Value.Int (x * y)
          | '/' -> if y = 0 then raise (Program_error "division by zero") else Value.Int (x / y)
          | _ -> assert false))
  | Acmp (op, a, b) ->
      let va = eval_a frame a and vb = eval_a frame b in
      let bool_ b = Value.Int (if b then 1 else 0) in
      (match op with
      | "=" -> bool_ (Value.equal va vb)
      | "<>" -> bool_ (not (Value.equal va vb))
      | _ ->
          let x = to_int "comparison" va and y = to_int "comparison" vb in
          bool_
            (match op with
            | "<" -> x < y
            | "<=" -> x <= y
            | ">" -> x > y
            | ">=" -> x >= y
            | _ -> assert false))

let rec exec frame = function
  | Sskip -> ()
  | Sassign (x, e) -> Hashtbl.replace frame.locals x (eval_a frame e)
  | Sblock stmts -> List.iter (exec frame) stmts
  | Sif (cond, then_, else_) ->
      if to_int "if" (eval_a frame cond) <> 0 then exec frame then_
      else Option.iter (exec frame) else_
  | Ssignal (name, args) -> frame.on_signal name (List.map (eval_a frame) args)
  | Sstop -> frame.want_stop <- true

let run_program io ?env prog ~on_signal =
  let frame =
    { locals = Hashtbl.create 8; occurrence = None; on_signal; want_stop = false }
  in
  List.iter (fun (x, e) -> Hashtbl.replace frame.locals x (eval_a frame e)) prog.p_decls;
  let agg = ref None in
  let maybe_stop () =
    if frame.want_stop then Option.iter stop !agg
  in
  let run_section stmts o =
    (* Once the program has executed [stop], later handler invocations (for
       example the end-of-stream flush of still-queued occurrences) are
       skipped — except the end section itself, run with [o = None]. *)
    if (not frame.want_stop) || o = None then begin
      frame.occurrence <- o;
      List.iter (exec frame) stmts;
      frame.occurrence <- None
    end
  in
  let handlers =
    {
      on_event =
        (fun o ->
          run_section prog.p_event (Some o);
          maybe_stop ());
      on_fixed =
        (fun o ->
          run_section prog.p_fixed (Some o);
          maybe_stop ());
      on_end = (fun () -> run_section prog.p_end None);
    }
  in
  let t = aggregate io ?env ?until:prog.p_until prog.p_expr handlers in
  agg := Some t;
  (* A 'stop' executed during initial replay must still take effect. *)
  maybe_stop ();
  t

(* --- library aggregations --- *)

let count_program ~expr ~until ~signal =
  parse_program
    (Printf.sprintf "int n = 0;\nexpr: %s\nuntil: %s\nevent: n = n + 1\nend: signal %s(n)" expr
       until signal)

let maximum_program ~expr ~param ~until ~signal =
  parse_program
    (Printf.sprintf
       "int best = 0 - 1000000000; int seen = 0;\n\
        expr: %s\n\
        until: %s\n\
        event: { if (new.%s > best) best = new.%s; seen = 1 }\n\
        end: if (seen) signal %s(best)"
       expr until param param signal)

let once_program ~expr ~signal =
  parse_program (Printf.sprintf "expr: %s\nevent: { signal %s(new.time); stop }" expr signal)

let first_program ~expr ~signal =
  (* FIRST needs the fixed section: arrival order can differ from occurrence
     order under delay (§6.9.1). *)
  parse_program
    (Printf.sprintf "expr: %s\nfixed: { signal %s(new.time); stop }" expr signal)
