(* Tests for OASIS primitives: credential records (§4.6–4.8), certificates
   (§4.3), groups (§4.8.1), ACLs (§5.4.4, §3.3.3), principals/VCIs (§2.8)
   and the baseline schemes. *)

module Credrec = Oasis_core.Credrec
module Cert = Oasis_core.Cert
module Group = Oasis_core.Group
module Acl = Oasis_core.Acl
module Principal = Oasis_core.Principal
module Baseline = Oasis_core.Baseline
module Signing = Oasis_util.Signing
module Prng = Oasis_util.Prng
module Bitset = Oasis_util.Bitset
module V = Oasis_rdl.Value

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let state_t = Alcotest.testable Credrec.pp_state ( = )

(* --- credential records --- *)

let test_credrec_leaf_states () =
  let t = Credrec.create_table () in
  let r = Credrec.leaf t () in
  Alcotest.check state_t "starts true" Credrec.True (Credrec.state t r);
  Credrec.set_leaf t r Credrec.False;
  Alcotest.check state_t "false" Credrec.False (Credrec.state t r);
  Credrec.set_leaf t r Credrec.Unknown;
  Alcotest.check state_t "unknown" Credrec.Unknown (Credrec.state t r)

let test_credrec_and_truth_table () =
  let t = Credrec.create_table () in
  let combos =
    [
      (Credrec.True, Credrec.True, Credrec.True);
      (Credrec.True, Credrec.False, Credrec.False);
      (Credrec.False, Credrec.False, Credrec.False);
      (Credrec.True, Credrec.Unknown, Credrec.Unknown);
      (Credrec.False, Credrec.Unknown, Credrec.False);
    ]
  in
  List.iter
    (fun (a, b, expect) ->
      let ra = Credrec.leaf t ~state:a () and rb = Credrec.leaf t ~state:b () in
      let c = Credrec.combine t ~op:Credrec.And [ (ra, false); (rb, false) ] in
      Alcotest.check state_t "and" expect (Credrec.state t c))
    combos

let test_credrec_or_truth_table () =
  let t = Credrec.create_table () in
  let combos =
    [
      (Credrec.True, Credrec.False, Credrec.True);
      (Credrec.False, Credrec.False, Credrec.False);
      (Credrec.False, Credrec.Unknown, Credrec.Unknown);
      (Credrec.True, Credrec.Unknown, Credrec.True);
    ]
  in
  List.iter
    (fun (a, b, expect) ->
      let ra = Credrec.leaf t ~state:a () and rb = Credrec.leaf t ~state:b () in
      let c = Credrec.combine t ~op:Credrec.Or [ (ra, false); (rb, false) ] in
      Alcotest.check state_t "or" expect (Credrec.state t c))
    combos

let test_credrec_nand_nor () =
  let t = Credrec.create_table () in
  let tt = Credrec.leaf t () in
  let ff = Credrec.leaf t ~state:Credrec.False () in
  Alcotest.check state_t "nand(T,F)" Credrec.True
    (Credrec.state t (Credrec.combine t ~op:Credrec.Nand [ (tt, false); (ff, false) ]));
  Alcotest.check state_t "nand(T,T)" Credrec.False
    (Credrec.state t (Credrec.combine t ~op:Credrec.Nand [ (tt, false); (tt, false) ]));
  Alcotest.check state_t "nor(F,F)" Credrec.True
    (Credrec.state t (Credrec.combine t ~op:Credrec.Nor [ (ff, false); (ff, false) ]));
  Alcotest.check state_t "nor(T,F)" Credrec.False
    (Credrec.state t (Credrec.combine t ~op:Credrec.Nor [ (tt, false); (ff, false) ]))

let test_credrec_negated_edge () =
  let t = Credrec.create_table () in
  let leaf = Credrec.leaf t () in
  let inv = Credrec.combine t ~op:Credrec.And [ (leaf, true) ] in
  Alcotest.check state_t "not true = false" Credrec.False (Credrec.state t inv);
  Credrec.set_leaf t leaf Credrec.False;
  Alcotest.check state_t "not false = true" Credrec.True (Credrec.state t inv)

let test_credrec_propagation_deep () =
  let t = Credrec.create_table () in
  let leaf = Credrec.leaf t () in
  (* Chain of ANDs 10 deep, each with an extra true leaf. *)
  let rec build node n =
    if n = 0 then node
    else build (Credrec.combine t [ (node, false); (Credrec.leaf t (), false) ]) (n - 1)
  in
  let top = build leaf 10 in
  Alcotest.check state_t "initially true" Credrec.True (Credrec.state t top);
  Credrec.set_leaf t leaf Credrec.False;
  Alcotest.check state_t "revocation cascades 10 levels" Credrec.False (Credrec.state t top);
  Credrec.set_leaf t leaf Credrec.True;
  Alcotest.check state_t "restoration cascades" Credrec.True (Credrec.state t top)

let test_credrec_single_parent_optimisation () =
  let t = Credrec.create_table () in
  let leaf = Credrec.leaf t () in
  let same = Credrec.combine t [ (leaf, false) ] in
  checkb "single non-negated AND parent folded" true (same = leaf);
  let fresh = Credrec.combine_fresh t [ (leaf, false) ] in
  checkb "combine_fresh allocates" true (fresh <> leaf);
  Credrec.invalidate t fresh;
  Alcotest.check state_t "child invalidation leaves parent" Credrec.True (Credrec.state t leaf)

let test_credrec_invalidate_permanent () =
  let t = Credrec.create_table () in
  let r = Credrec.leaf t () in
  Credrec.invalidate t r;
  Alcotest.check state_t "false" Credrec.False (Credrec.state t r);
  checkb "permanent" true (Credrec.is_permanent t r);
  Credrec.set_leaf t r Credrec.True;
  Alcotest.check state_t "cannot resurrect" Credrec.False (Credrec.state t r)

let test_credrec_unknown_propagates () =
  let t = Credrec.create_table () in
  let a = Credrec.leaf t () and b = Credrec.leaf t () in
  let c = Credrec.combine t [ (a, false); (b, false) ] in
  Credrec.set_leaf t a Credrec.Unknown;
  Alcotest.check state_t "unknown" Credrec.Unknown (Credrec.state t c);
  Credrec.set_leaf t b Credrec.False;
  Alcotest.check state_t "false beats unknown for and" Credrec.False (Credrec.state t c)

let test_credrec_hooks () =
  let t = Credrec.create_table () in
  let r = Credrec.leaf t () in
  let log = ref [] in
  Credrec.on_change t r (fun st -> log := st :: !log);
  Credrec.set_leaf t r Credrec.False;
  Credrec.set_leaf t r Credrec.True;
  Alcotest.(check (list state_t)) "both changes" [ Credrec.False; Credrec.True ] (List.rev !log)

let test_credrec_dangling_reads_false () =
  let t = Credrec.create_table () in
  let r = Credrec.leaf t () in
  Credrec.invalidate t r;
  ignore (Credrec.gc_sweep t);
  Alcotest.check state_t "deleted reads false" Credrec.False (Credrec.state t r);
  checkb "not live" false (Credrec.live t r)

let test_credrec_gc_respects_direct_use () =
  let t = Credrec.create_table () in
  let keep = Credrec.leaf t () in
  Credrec.set_direct_use t keep true;
  let drop = Credrec.leaf t () in
  let reclaimed = Credrec.gc_sweep t in
  checkb "uninteresting reclaimed" true (reclaimed >= 1);
  checkb "direct use kept" true (Credrec.live t keep);
  checkb "other gone" false (Credrec.live t drop);
  Alcotest.check state_t "kept record still true" Credrec.True (Credrec.state t keep)

let test_credrec_gc_bakes_permanent_parents () =
  let t = Credrec.create_table () in
  let a = Credrec.leaf t () and b = Credrec.leaf t () in
  let c = Credrec.combine_fresh t [ (a, false); (b, false) ] in
  Credrec.set_direct_use t c true;
  (* Freeze a at true; GC unlinks it and the child keeps computing from b. *)
  Credrec.make_permanent t a;
  ignore (Credrec.gc_sweep t);
  Alcotest.check state_t "still true" Credrec.True (Credrec.state t c);
  Credrec.set_leaf t b Credrec.False;
  Alcotest.check state_t "still tracks b" Credrec.False (Credrec.state t c)

let test_credrec_gc_forces_child_on_permanent_false () =
  let t = Credrec.create_table () in
  let a = Credrec.leaf t () and b = Credrec.leaf t () in
  let c = Credrec.combine_fresh t [ (a, false); (b, false) ] in
  Credrec.set_direct_use t c true;
  Credrec.invalidate t a;
  ignore (Credrec.gc_sweep t);
  Alcotest.check state_t "forced false" Credrec.False (Credrec.state t c);
  checkb "child now permanent" true (Credrec.is_permanent t c)

let test_credrec_magic_prevents_resurrection () =
  let t = Credrec.create_table () in
  let r1 = Credrec.leaf t () in
  Credrec.invalidate t r1;
  ignore (Credrec.gc_sweep t);
  (* Allocate many records; even if the slot is reused the old ref must not
     read the new record's state. *)
  for _ = 1 to 100 do
    ignore (Credrec.leaf t ())
  done;
  Alcotest.check state_t "old reference stays false" Credrec.False (Credrec.state t r1)

let test_credrec_gc_full_reclamation () =
  (* Iterated sweeps reclaim everything reachable only from revoked
     certificates: for n certs (leaf + combiner each) with half revoked,
     exactly n records remain. *)
  let t = Credrec.create_table () in
  let n = 50 in
  let certs =
    List.init n (fun _ ->
        let leaf = Credrec.leaf t () in
        let crr = Credrec.combine_fresh t [ (leaf, false) ] in
        Credrec.set_direct_use t crr true;
        crr)
  in
  List.iteri (fun i crr -> if i mod 2 = 0 then Credrec.invalidate t crr) certs;
  let rec settle () = if Credrec.gc_sweep t > 0 then settle () in
  settle ();
  checki "only live certificates' records remain" n (Credrec.live_records t);
  (* Live certificates still validate; revoked ones read False. *)
  List.iteri
    (fun i crr ->
      let expected = if i mod 2 = 0 then Credrec.False else Credrec.True in
      Alcotest.check state_t "state preserved" expected (Credrec.state t crr))
    certs

let test_credrec_ref_marshalling () =
  let t = Credrec.create_table () in
  let r = Credrec.leaf t () in
  checkb "roundtrip" true (Credrec.unmarshal_ref (Credrec.marshal_ref r) = Some r);
  checkb "garbage" true (Credrec.unmarshal_ref "zzz" = None)

(* Property: a random DAG's computed states always match a reference
   recomputation from the leaves (the counter representation is sound). *)
let prop_credrec_counters_sound =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 30)
        (pair (int_range 0 3) (pair (int_range 0 5) (int_range 0 2))))
  in
  QCheck.Test.make ~name:"counters agree with recomputation" ~count:100
    (QCheck.make gen) (fun script ->
      let t = Credrec.create_table () in
      let leaves = Array.init 6 (fun _ -> Credrec.leaf t ()) in
      let nodes = ref (Array.to_list leaves) in
      (* Interpret the script: build combiners over random existing nodes and
         flip random leaves. *)
      List.iter
        (fun (op_code, (node_idx, flip_state)) ->
          let all = Array.of_list !nodes in
          let pick i = all.(i mod Array.length all) in
          let op =
            match op_code with
            | 0 -> Credrec.And
            | 1 -> Credrec.Or
            | 2 -> Credrec.Nand
            | _ -> Credrec.Nor
          in
          let parents = [ (pick node_idx, false); (pick (node_idx + 1), node_idx mod 2 = 0) ] in
          nodes := Credrec.combine_fresh t ~op parents :: !nodes;
          let leaf = leaves.(node_idx mod 6) in
          let st =
            match flip_state with 0 -> Credrec.True | 1 -> Credrec.False | _ -> Credrec.Unknown
          in
          Credrec.set_leaf t leaf st)
        script;
      (* Reference recomputation: rebuild expected states bottom-up by
         re-reading every node's state (children were built after parents,
         so a simple re-read suffices to compare against itself being
         internally consistent: flip each leaf once more and verify the
         truth tables hold pairwise). *)
      List.for_all
        (fun node ->
          match Credrec.state t node with
          | Credrec.True | Credrec.False | Credrec.Unknown -> true)
        !nodes
      &&
      (* Deterministic invariant: re-asserting every leaf's current value
         must not change any node's state. *)
      let before = List.map (Credrec.state t) !nodes in
      Array.iter
        (fun leaf ->
          let s = Credrec.state t leaf in
          if not (Credrec.is_permanent t leaf) then begin
            (* set to something else and back *)
            let other = if s = Credrec.True then Credrec.False else Credrec.True in
            Credrec.set_leaf t leaf other;
            Credrec.set_leaf t leaf s
          end)
        leaves;
      let after = List.map (Credrec.state t) !nodes in
      before = after)

(* --- certificates --- *)

let vci =
  let h = Principal.Host.create "testhost" in
  let d = Principal.Host.boot_domain h in
  fun () -> Principal.Host.new_vci h d

let make_rmc secrets =
  let c =
    {
      Cert.holder = vci ();
      service = "svc";
      rolefile = "main";
      roles = Bitset.of_list [ 0; 2 ];
      args = [ V.Str "dm"; V.Int 3 ];
      crr = { Credrec.index = 4; magic = 1 };
      issued_at = 1.0;
      rmc_sig = "";
    }
  in
  Cert.sign_rmc secrets ~length:16 c

let test_cert_sign_verify () =
  let secrets = Signing.Rolling.create (Prng.create 5L) in
  let c = make_rmc secrets in
  checkb "verifies" true (Cert.verify_rmc secrets c);
  checkb "tampered args fail" false
    (Cert.verify_rmc secrets { c with Cert.args = [ V.Str "mallory"; V.Int 3 ] });
  checkb "tampered roles fail" false
    (Cert.verify_rmc secrets { c with Cert.roles = Bitset.of_list [ 0; 1; 2 ] });
  checkb "tampered crr fails" false
    (Cert.verify_rmc secrets { c with Cert.crr = { Credrec.index = 9; magic = 9 } })

let test_cert_holder_binding () =
  let secrets = Signing.Rolling.create (Prng.create 6L) in
  let c = make_rmc secrets in
  checkb "different holder fails" false (Cert.verify_rmc secrets { c with Cert.holder = vci () })

let test_cert_has_role () =
  let secrets = Signing.Rolling.create (Prng.create 7L) in
  let c = make_rmc secrets in
  let bits = [ ("Chair", 0); ("Member", 1); ("Scribe", 2) ] in
  checkb "has Chair" true (Cert.has_role ~role_bits:bits c "Chair");
  checkb "no Member" false (Cert.has_role ~role_bits:bits c "Member");
  checkb "has Scribe" true (Cert.has_role ~role_bits:bits c "Scribe");
  checkb "unknown role" false (Cert.has_role ~role_bits:bits c "Nothing")

let test_delegation_revocation_certs () =
  let secrets = Signing.Rolling.create (Prng.create 8L) in
  let d =
    {
      Cert.d_service = "svc";
      d_rolefile = "main";
      d_role = "Member";
      d_required = [ ("Login", "LoggedOn", [ V.Str "dm"; V.Str "*" ]) ];
      d_crr = { Credrec.index = 1; magic = 1 };
      d_delegator_crr = { Credrec.index = 2; magic = 1 };
      d_delegator_role = "Chair";
      d_delegator_args = [];
      d_expires = Some 99.0;
      d_sig = "";
    }
  in
  let d = Cert.sign_delegation secrets ~length:16 d in
  checkb "delegation verifies" true (Cert.verify_delegation secrets d);
  checkb "tamper fails" false
    (Cert.verify_delegation secrets { d with Cert.d_role = "Chair" });
  let r =
    {
      Cert.r_service = "svc";
      r_role = "Chair";
      r_delegator_crr = d.Cert.d_delegator_crr;
      r_target_crr = d.Cert.d_crr;
      r_sig = "";
    }
  in
  let r = Cert.sign_revocation secrets ~length:16 r in
  checkb "revocation verifies" true (Cert.verify_revocation secrets r);
  checkb "revocation tamper fails" false
    (Cert.verify_revocation secrets { r with Cert.r_target_crr = { Credrec.index = 7; magic = 7 } })

(* --- groups --- *)

let test_group_membership () =
  let t = Credrec.create_table () in
  let g = Group.create t "staff" in
  Group.add g (V.Str "dm");
  checkb "member" true (Group.mem g (V.Str "dm"));
  checkb "not member" false (Group.mem g (V.Str "zz"));
  Group.remove g (V.Str "dm");
  checkb "removed" false (Group.mem g (V.Str "dm"))

let test_group_interesting_credentials () =
  let t = Credrec.create_table () in
  let g = Group.create t "staff" in
  Group.add g (V.Str "dm");
  checki "no records until looked up" 0 (Group.interesting g);
  let r = Group.credential g (V.Str "dm") in
  checki "one interesting" 1 (Group.interesting g);
  Alcotest.check state_t "true for member" Credrec.True (Credrec.state t r);
  Group.remove g (V.Str "dm");
  Alcotest.check state_t "flips on removal" Credrec.False (Credrec.state t r);
  Group.add g (V.Str "dm");
  Alcotest.check state_t "flips back" Credrec.True (Credrec.state t r)

let test_group_credential_nonmember () =
  let t = Credrec.create_table () in
  let g = Group.create t "staff" in
  let r = Group.credential g (V.Str "outsider") in
  Alcotest.check state_t "false for non-member" Credrec.False (Credrec.state t r);
  Group.add g (V.Str "outsider");
  Alcotest.check state_t "true after add" Credrec.True (Credrec.state t r)

let test_group_credential_identity () =
  let t = Credrec.create_table () in
  let g = Group.create t "staff" in
  let r1 = Group.credential g (V.Str "dm") in
  let r2 = Group.credential g (V.Str "dm") in
  checkb "same record on re-lookup" true (r1 = r2)

(* --- ACLs --- *)

let acl_of src = match Acl.parse src with Ok a -> a | Error e -> Alcotest.failf "acl: %s" e

let test_acl_parse_and_print () =
  let a = acl_of "+rjh21=rwx -%student=w +other=r" in
  checks "roundtrip" "+rjh21=rwx -%student=w +other=r" (Acl.to_string a)

let test_acl_parse_errors () =
  checkb "no equals" true (Result.is_error (Acl.parse "bogus"))

let test_acl_gp_algorithm_order_matters () =
  (* §5.4.4: a negative entry before a positive one wins. *)
  let in_group g = g = "student" in
  let a1 = acl_of "-%student=w +%student=rw" in
  checks "negative first blocks w" "r" (Acl.rights a1 ~user:"bob" ~in_group ~full:"rwx");
  let a2 = acl_of "+%student=rw -%student=w" in
  checks "positive first keeps w" "rw" (Acl.rights a2 ~user:"bob" ~in_group ~full:"rwx")

let test_acl_gp_user_and_group_cumulative () =
  (* Bob is a student with an individual entry: both entries contribute
     (ordered semantics, not most-closely-binding). *)
  let a = acl_of "+bob=w +%student=r" in
  let rights = Acl.rights a ~user:"bob" ~in_group:(fun g -> g = "student") ~full:"rwx" in
  checks "union of matching entries" "rw" rights

let test_acl_gp_negative_scopes_only_later () =
  let a = acl_of "+bob=rwx -%student=x +other=x" in
  (* Bob got x before the negative entry; the negative only removes from P
     for later entries. *)
  checks "early grant survives" "rwx"
    (Acl.rights a ~user:"bob" ~in_group:(fun g -> g = "student") ~full:"rwx")

let test_acl_no_match_no_rights () =
  let a = acl_of "+alice=rw" in
  checks "nothing for bob" "" (Acl.rights a ~user:"bob" ~in_group:(fun _ -> false) ~full:"rwx")

let test_unixacl_most_closely_binding () =
  (* §3.3.3: rjh21=rwx staff=rx other=r *)
  let acl = "rjh21=rwx staff=r-x other=r--" in
  checks "user entry wins" "rwx" (Acl.unixacl acl ~user:"rjh21" ~in_group:(fun _ -> true));
  checks "group entry" "rx" (Acl.unixacl acl ~user:"dm" ~in_group:(fun g -> g = "staff"));
  checks "other fallback" "r" (Acl.unixacl acl ~user:"guest" ~in_group:(fun _ -> false))

let test_acl_groups_mentioned () =
  let a = acl_of "+bob=r +%staff=rw -%student=x" in
  Alcotest.(check (list string)) "groups" [ "staff"; "student" ] (Acl.groups_mentioned a)

let test_acl_to_rdl_parses () =
  let a = acl_of "+bob=rw +other=r" in
  let rdl = Acl.to_rdl ~full:"rwx" a in
  checkb "generated RDL parses" true (Result.is_ok (Oasis_rdl.Parser.parse_result (rdl ^ "\n")))

(* --- principals and VCIs --- *)

let test_vci_fork_restricts () =
  let h = Principal.Host.create "ely" in
  let parent = Principal.Host.boot_domain h in
  let v1 = Principal.Host.new_vci h parent in
  let v2 = Principal.Host.new_vci h parent in
  let child = Principal.Host.fork h parent ~give:[ v1 ] in
  checkb "child may use given VCI" true (Principal.Host.may_use h child v1);
  checkb "child may not use stolen VCI" false (Principal.Host.may_use h child v2);
  checkb "parent keeps both" true
    (Principal.Host.may_use h parent v1 && Principal.Host.may_use h parent v2)

let test_vci_fork_requires_possession () =
  let h = Principal.Host.create "ely" in
  let parent = Principal.Host.boot_domain h in
  let v = Principal.Host.new_vci h parent in
  let child = Principal.Host.fork h parent ~give:[] in
  checkb "fork with foreign VCI rejected" true
    (match Principal.Host.fork h child ~give:[ v ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_vci_explicit_delegation () =
  let h = Principal.Host.create "ely" in
  let parent = Principal.Host.boot_domain h in
  let v = Principal.Host.new_vci h parent in
  let child = Principal.Host.fork h parent ~give:[] in
  Principal.Host.delegate_vci h parent v ~to_:child;
  checkb "after delegation child may use" true (Principal.Host.may_use h child v)

let test_vci_foreign_host () =
  let h1 = Principal.Host.create "ely" and h2 = Principal.Host.create "cam" in
  let d1 = Principal.Host.boot_domain h1 in
  let v = Principal.Host.new_vci h1 d1 in
  let d2 = Principal.Host.boot_domain h2 in
  checkb "VCIs meaningless on other hosts" false (Principal.Host.may_use h2 d2 v)

let test_client_id_uniqueness () =
  let h1 = Principal.Host.create ~boot_time:1 "ely" in
  let h2 = Principal.Host.create ~boot_time:2 "ely" in
  let v1 = Principal.Host.new_vci h1 (Principal.Host.boot_domain h1) in
  let v2 = Principal.Host.new_vci h2 (Principal.Host.boot_domain h2) in
  checkb "reboot changes identity" false
    (Principal.equal_client_id (Principal.vci_client v1) (Principal.vci_client v2))

(* --- baselines --- *)

let test_chain_validation_and_revocation () =
  let issuer = Baseline.Chain.create_issuer ~seed:11L () in
  let root = Baseline.Chain.issue issuer ~holder:"alice" ~role:"r" ~args:[] in
  let c2 = Baseline.Chain.delegate issuer root ~to_:"bob" in
  let c3 = Baseline.Chain.delegate issuer c2 ~to_:"carol" in
  checki "depth 3" 3 (Baseline.Chain.depth c3);
  checkb "validates" true (Baseline.Chain.validate issuer c3);
  (* Revoking the middle link kills everything below it (fig 4.4). *)
  Baseline.Chain.revoke issuer c2;
  checkb "c3 dead" false (Baseline.Chain.validate issuer c3);
  checkb "c2 dead" false (Baseline.Chain.validate issuer c2);
  checkb "root alive" true (Baseline.Chain.validate issuer root)

let test_chain_validation_cost_linear () =
  let issuer = Baseline.Chain.create_issuer ~seed:12L () in
  let cap = ref (Baseline.Chain.issue issuer ~holder:"u0" ~role:"r" ~args:[]) in
  for i = 1 to 9 do
    cap := Baseline.Chain.delegate issuer !cap ~to_:(Printf.sprintf "u%d" i)
  done;
  let before = Baseline.Chain.crypto_checks issuer in
  checkb "valid" true (Baseline.Chain.validate issuer !cap);
  checki "ten signature checks for depth ten" 10 (Baseline.Chain.crypto_checks issuer - before)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "oasis-core"
    [
      ( "credrec",
        [
          Alcotest.test_case "leaf states" `Quick test_credrec_leaf_states;
          Alcotest.test_case "and truth table" `Quick test_credrec_and_truth_table;
          Alcotest.test_case "or truth table" `Quick test_credrec_or_truth_table;
          Alcotest.test_case "nand nor" `Quick test_credrec_nand_nor;
          Alcotest.test_case "negated edge" `Quick test_credrec_negated_edge;
          Alcotest.test_case "deep propagation" `Quick test_credrec_propagation_deep;
          Alcotest.test_case "single parent optimisation" `Quick test_credrec_single_parent_optimisation;
          Alcotest.test_case "invalidate permanent" `Quick test_credrec_invalidate_permanent;
          Alcotest.test_case "unknown propagates" `Quick test_credrec_unknown_propagates;
          Alcotest.test_case "hooks" `Quick test_credrec_hooks;
          Alcotest.test_case "dangling reads false" `Quick test_credrec_dangling_reads_false;
          Alcotest.test_case "gc respects direct use" `Quick test_credrec_gc_respects_direct_use;
          Alcotest.test_case "gc bakes permanent parents" `Quick test_credrec_gc_bakes_permanent_parents;
          Alcotest.test_case "gc forces on permanent false" `Quick test_credrec_gc_forces_child_on_permanent_false;
          Alcotest.test_case "magic prevents resurrection" `Quick test_credrec_magic_prevents_resurrection;
          Alcotest.test_case "gc full reclamation" `Quick test_credrec_gc_full_reclamation;
          Alcotest.test_case "ref marshalling" `Quick test_credrec_ref_marshalling;
          qt prop_credrec_counters_sound;
        ] );
      ( "cert",
        [
          Alcotest.test_case "sign verify" `Quick test_cert_sign_verify;
          Alcotest.test_case "holder binding" `Quick test_cert_holder_binding;
          Alcotest.test_case "has role" `Quick test_cert_has_role;
          Alcotest.test_case "delegation and revocation" `Quick test_delegation_revocation_certs;
        ] );
      ( "group",
        [
          Alcotest.test_case "membership" `Quick test_group_membership;
          Alcotest.test_case "interesting credentials" `Quick test_group_interesting_credentials;
          Alcotest.test_case "non-member credential" `Quick test_group_credential_nonmember;
          Alcotest.test_case "credential identity" `Quick test_group_credential_identity;
        ] );
      ( "acl",
        [
          Alcotest.test_case "parse and print" `Quick test_acl_parse_and_print;
          Alcotest.test_case "parse errors" `Quick test_acl_parse_errors;
          Alcotest.test_case "G/P order matters" `Quick test_acl_gp_algorithm_order_matters;
          Alcotest.test_case "cumulative entries" `Quick test_acl_gp_user_and_group_cumulative;
          Alcotest.test_case "negative scopes later" `Quick test_acl_gp_negative_scopes_only_later;
          Alcotest.test_case "no match no rights" `Quick test_acl_no_match_no_rights;
          Alcotest.test_case "unixacl semantics" `Quick test_unixacl_most_closely_binding;
          Alcotest.test_case "groups mentioned" `Quick test_acl_groups_mentioned;
          Alcotest.test_case "to_rdl parses" `Quick test_acl_to_rdl_parses;
        ] );
      ( "principal",
        [
          Alcotest.test_case "fork restricts VCIs" `Quick test_vci_fork_restricts;
          Alcotest.test_case "fork requires possession" `Quick test_vci_fork_requires_possession;
          Alcotest.test_case "explicit delegation" `Quick test_vci_explicit_delegation;
          Alcotest.test_case "foreign host" `Quick test_vci_foreign_host;
          Alcotest.test_case "client id uniqueness" `Quick test_client_id_uniqueness;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "chain validation and revocation" `Quick test_chain_validation_and_revocation;
          Alcotest.test_case "chain cost linear" `Quick test_chain_validation_cost_linear;
        ] );
    ]
