lib/events/composite_service.ml: Array Bead Broker Broker_io Composite Event Hashtbl List Oasis_rdl Oasis_sim String
