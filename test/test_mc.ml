(* The scenario model checker (§3.2.2, §4.11): exhaustive small-scope
   exploration of fault interleavings, its reductions, and the planted bug
   that seed sweeps cannot reach.

   Everything here is deterministic — the explorer re-executes the whole
   scenario per schedule, so a failing schedule is its own reproduction. *)

module Explore = Oasis_mc.Explore
module Scenarios = Oasis_mc.Scenarios

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let quick_params depth = { Explore.default_params with depth; max_runs = 50_000 }

(* dune runtest runs us in test/; `dune exec test/test_mc.exe` from the
   root.  Accept either. *)
let schedule_path name = if Sys.file_exists "schedules" then "schedules/" ^ name else "test/schedules/" ^ name

(* --- the paper scenarios hold over every interleaving --- *)

let test_golf_club_exhaustive () =
  let rp = Explore.explore Scenarios.golf_club (quick_params 10) in
  checkb "exhaustive within budget" true rp.Explore.rp_exhaustive;
  checkb "many interleavings actually explored" true (rp.Explore.rp_runs > 100);
  checki "no violations" 0 (List.length rp.Explore.rp_violations)

let test_mssa_exhaustive () =
  let rp = Explore.explore Scenarios.mssa (quick_params 12) in
  checkb "exhaustive within budget" true rp.Explore.rp_exhaustive;
  checkb "many interleavings actually explored" true (rp.Explore.rp_runs > 50);
  checki "no violations" 0 (List.length rp.Explore.rp_violations)

let test_cross_shard_fire_exhaustive () =
  (* The sharded club: a fire whose cascade crosses a shard boundary while
     the owning shard crashes mid-flight.  Depth 10 reorders the crash
     against the revocation, the WAL group commit, the ack and the
     cross-shard ModifiedBatch digest. *)
  let rp = Explore.explore Scenarios.cross_shard_fire (quick_params 10) in
  checkb "exhaustive within budget" true rp.Explore.rp_exhaustive;
  checkb "many interleavings actually explored" true (rp.Explore.rp_runs > 100);
  checki "no violations" 0 (List.length rp.Explore.rp_violations)

let test_replica_failover_exhaustive () =
  (* The replicated club: the primary crashes mid-cascade and never
     returns; a backup promotes itself.  Depth 8 reorders the crash
     against the revocation, the local group commit, the log-shipping
     batches and the quorum ack — including the orderings where the fire
     is durable on a majority but its ack died with the primary. *)
  let rp = Explore.explore Scenarios.replica_failover (quick_params 8) in
  checkb "exhaustive within budget" true rp.Explore.rp_exhaustive;
  checkb "many interleavings actually explored" true (rp.Explore.rp_runs > 50);
  checki "no violations" 0 (List.length rp.Explore.rp_violations)

(* --- soundness of the reductions: sleep sets + fingerprints must not
   change the verdict, only the work --- *)

let test_reduction_sound_on_clean_scenario () =
  let p = { (quick_params 6) with max_runs = 100_000 } in
  let naive = Explore.explore Scenarios.golf_club { p with reduce = false } in
  let reduced = Explore.explore Scenarios.golf_club p in
  checkb "naive exhaustive" true naive.Explore.rp_exhaustive;
  checkb "reduced exhaustive" true reduced.Explore.rp_exhaustive;
  checki "naive finds nothing" 0 (List.length naive.Explore.rp_violations);
  checki "reduced finds nothing" 0 (List.length reduced.Explore.rp_violations);
  checkb "reduction strictly cheaper" true (reduced.Explore.rp_runs < naive.Explore.rp_runs)

let test_reduction_sound_on_buggy_scenario () =
  let p = quick_params 6 in
  let naive = Explore.explore Scenarios.planted { p with reduce = false } in
  let reduced = Explore.explore Scenarios.planted p in
  checkb "naive finds the bug" true (naive.Explore.rp_violations <> []);
  checkb "reduced still finds the bug" true (reduced.Explore.rp_violations <> []);
  let inv cx = cx.Explore.cx_invariant in
  checkb "same invariant violated" true
    (List.map inv naive.Explore.rp_violations = List.map inv naive.Explore.rp_violations
    && inv (List.hd reduced.Explore.rp_violations) = inv (List.hd naive.Explore.rp_violations))

(* --- the planted bug: invisible to seed sweeps, found exhaustively --- *)

let test_planted_bug_beyond_seed_sweeps () =
  let p = quick_params 8 in
  (* The conventional baseline: 50 different network seeds under default
     scheduling.  The violating ordering is outside the latency envelope,
     so every seed delivers the revocation before the crash. *)
  let sweep = Explore.seed_sweep Scenarios.planted p ~seeds:50 in
  checki "50-seed sweep finds nothing" 0 (List.length sweep);
  let rp = Explore.explore Scenarios.planted p in
  checkb "exhaustive exploration finds it" true (rp.Explore.rp_violations <> []);
  let cx = List.hd rp.Explore.rp_violations in
  Alcotest.(check string) "the planted invariant" "lost-revocation" cx.Explore.cx_invariant;
  (* Minimization keeps the violation and the minimized schedule replays to
     the same verdict. *)
  let m = Explore.minimize Scenarios.planted p cx in
  checkb "minimized no longer than original" true
    (List.length m.Explore.cx_schedule <= List.length cx.Explore.cx_schedule);
  let r = Explore.run_schedule Scenarios.planted p m.Explore.cx_schedule in
  checkb "minimized schedule still violates" true
    (List.exists (fun (i, _) -> i = "lost-revocation") r.Explore.r_violations)

(* --- persisted regression schedules --- *)

let test_regression_planted_replay () =
  match Explore.load_schedule (schedule_path "planted_lost_revocation.json") with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok sf -> (
      match Scenarios.find sf.Explore.sf_scenario with
      | None -> Alcotest.failf "unknown scenario %s" sf.Explore.sf_scenario
      | Some spec ->
          let r = Explore.replay spec sf in
          checkb "replayed schedule still violates lost-revocation" true
            (List.exists (fun (i, _) -> i = "lost-revocation") r.Explore.r_violations))

let test_regression_golf_club_ack_durable () =
  (* The adversarial ordering that once lost an acknowledged firing across a
     crash (fire ack outran the WAL group commit).  Fixed by deferring the
     ack until the record is durable; the schedule must stay clean. *)
  match Explore.load_schedule (schedule_path "golf_club_ack_durable.json") with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok sf -> (
      match Scenarios.find sf.Explore.sf_scenario with
      | None -> Alcotest.failf "unknown scenario %s" sf.Explore.sf_scenario
      | Some spec ->
          let r = Explore.replay spec sf in
          checki "no violations on the fixed code" 0 (List.length r.Explore.r_violations))

let test_regression_cross_shard_fire_durable () =
  (* The ordering under which an unpersisted firing was forgotten by the
     owning shard's recovery — the blacklist emptied, the fired member
     re-entered, while the other shard had already revoked the derived
     Editor: the logical service split across its shards.  Fixed by
     persisting the blacklist entry and the cascade's record deaths at
     fire time; the schedule must stay clean. *)
  match Explore.load_schedule (schedule_path "cross_shard_fire_fire_durable.json") with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok sf -> (
      match Scenarios.find sf.Explore.sf_scenario with
      | None -> Alcotest.failf "unknown scenario %s" sf.Explore.sf_scenario
      | Some spec ->
          let r = Explore.replay spec sf in
          checki "no violations on the fixed code" 0 (List.length r.Explore.r_violations))

(* --- schedule files round-trip --- *)

let test_schedule_roundtrip () =
  let sf =
    {
      Explore.sf_scenario = "golf-club";
      sf_invariant = "converges";
      sf_detail = "detail text";
      sf_choices = [ 0; 2; 1 ];
      sf_depth = 9;
      sf_window = 0.125;
      sf_max_branch = 4;
      sf_seed = 77L;
    }
  in
  match Explore.schedule_of_json (Explore.schedule_to_json sf) with
  | Error e -> Alcotest.failf "roundtrip: %s" e
  | Ok sf' -> checkb "roundtrip preserves everything" true (sf = sf')

(* --- witness compiler: static chains confirmed dynamically --- *)

module FL = Oasis_core.Federation_lint
module Witness = Oasis_mc.Witness

let example_dir =
  List.find Sys.file_exists [ "../examples/rolefiles"; "examples/rolefiles" ]

let examples_federation () =
  Sys.readdir example_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".rdl")
  |> List.sort compare
  |> List.map (fun f ->
         let src =
           In_channel.with_open_text (Filename.concat example_dir f) In_channel.input_all
         in
         {
           FL.fl_name = Filename.remove_extension f;
           fl_file = f;
           fl_rolefile = Oasis_rdl.Parser.parse src;
         })
  |> FL.make

let test_witnesses_confirmed () =
  (* every escalation chain the prover reports on the example federation
     must survive its own compiled scenario: zero static/dynamic
     disagreements (ISSUE acceptance) *)
  let fed = examples_federation () in
  let total = ref 0 in
  List.iter
    (fun holder ->
      List.iter
        (fun w ->
          incr total;
          match Witness.confirm ~fed w with
          | Witness.Confirmed _ -> ()
          | v ->
              Alcotest.failf "%s => %s: %s" (FL.node_str w.FL.w_holder)
                (FL.node_str w.FL.w_target) (Witness.verdict_str v))
        (FL.witnesses fed ~holder))
    (FL.default_holders fed);
  checkb "chains were actually exercised" true (!total > 0)

let test_witness_refutes_forgery () =
  (* sanity that Confirmed is not vacuous: lie about revocation carrying
     through a blind hop and the explorer must refute it *)
  let fed =
    FL.make
      [
        {
          FL.fl_name = "G";
          fl_file = "G.rdl";
          fl_rolefile = Oasis_rdl.Parser.parse "H(u) <-\nT(u) <- H(u)\n";
        };
      ]
  in
  match FL.witnesses fed ~holder:("G", "H") with
  | [ w ] -> (
      checkb "hop is blind" false w.FL.w_carried;
      match Witness.confirm ~fed { w with FL.w_carried = true } with
      | Witness.Refuted _ -> ()
      | v -> Alcotest.failf "forged carry flag not refuted: %s" (Witness.verdict_str v))
  | ws -> Alcotest.failf "expected one witness, got %d" (List.length ws)

let () =
  Alcotest.run "mc"
    [
      ( "scenarios",
        [
          Alcotest.test_case "golf club holds over every interleaving" `Quick
            test_golf_club_exhaustive;
          Alcotest.test_case "mssa holds over every interleaving" `Quick test_mssa_exhaustive;
          Alcotest.test_case "cross-shard fire holds over every interleaving" `Quick
            test_cross_shard_fire_exhaustive;
          Alcotest.test_case "replica failover holds over every interleaving" `Quick
            test_replica_failover_exhaustive;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "sound on a clean scenario" `Quick
            test_reduction_sound_on_clean_scenario;
          Alcotest.test_case "sound on a buggy scenario" `Quick
            test_reduction_sound_on_buggy_scenario;
        ] );
      ( "planted-bug",
        [
          Alcotest.test_case "found exhaustively, missed by 50 seeds" `Quick
            test_planted_bug_beyond_seed_sweeps;
        ] );
      ( "witnesses",
        [
          Alcotest.test_case "example-federation chains all confirmed" `Quick
            test_witnesses_confirmed;
          Alcotest.test_case "forged carry flag refuted" `Quick test_witness_refutes_forgery;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "planted counterexample still fails" `Quick
            test_regression_planted_replay;
          Alcotest.test_case "golf-club ack-durable schedule stays clean" `Quick
            test_regression_golf_club_ack_durable;
          Alcotest.test_case "cross-shard fire-durable schedule stays clean" `Quick
            test_regression_cross_shard_fire_durable;
          Alcotest.test_case "schedule files round-trip" `Quick test_schedule_roundtrip;
        ] );
    ]
