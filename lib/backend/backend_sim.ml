module Engine = Oasis_sim.Engine
module Net = Oasis_sim.Net
module Disk = Oasis_store.Disk

let create ?seed ?latency ?fsync_latency ?write_bandwidth ?read_bandwidth () : Backend.t =
  let engine = Engine.create () in
  let net = Net.create ?seed ?latency engine in
  let disks : (int, Disk.t) Hashtbl.t = Hashtbl.create 8 in
  (module struct
    let name = "sim"
    let clock_domain = `Sim
    let engine = engine
    let net = net

    let disk host =
      let addr = Net.host_addr host in
      match Hashtbl.find_opt disks addr with
      | Some d -> d
      | None ->
          let d = Disk.create net host ?fsync_latency ?write_bandwidth ?read_bandwidth () in
          Hashtbl.add disks addr d;
          d

    let run ?until () = Engine.run ?until engine
    let stop () = Engine.stop engine
  end)
