test/test_badge.mli:
