examples/legacy.ml: Oasis_core Oasis_rdl Oasis_sim Printf Result
