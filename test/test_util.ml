(* Unit and property tests for lib/util: prng, siphash, signing, bitset,
   pqueue. *)

module Prng = Oasis_util.Prng
module Siphash = Oasis_util.Siphash
module Signing = Oasis_util.Signing
module Bitset = Oasis_util.Bitset
module Pqueue = Oasis_util.Pqueue

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- prng --- *)

let test_prng_deterministic () =
  let a = Prng.create 42L and b = Prng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seeds_differ () =
  let a = Prng.create 1L and b = Prng.create 2L in
  checkb "different seeds diverge" true (Prng.bits64 a <> Prng.bits64 b)

let test_prng_split_independent () =
  let a = Prng.create 7L in
  let b = Prng.split a in
  let xs = List.init 50 (fun _ -> Prng.bits64 a) in
  let ys = List.init 50 (fun _ -> Prng.bits64 b) in
  checkb "split streams differ" true (xs <> ys)

let test_prng_int_bounds () =
  let g = Prng.create 3L in
  for _ = 1 to 1000 do
    let v = Prng.int g 17 in
    checkb "in range" true (v >= 0 && v < 17)
  done

let test_prng_int_invalid () =
  let g = Prng.create 3L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0))

let test_prng_float_bounds () =
  let g = Prng.create 11L in
  for _ = 1 to 1000 do
    let v = Prng.float g 2.5 in
    checkb "in range" true (v >= 0.0 && v < 2.5)
  done

let test_prng_exponential_positive () =
  let g = Prng.create 5L in
  let sum = ref 0.0 in
  for _ = 1 to 2000 do
    let v = Prng.exponential g ~mean:3.0 in
    checkb "positive" true (v >= 0.0);
    sum := !sum +. v
  done;
  let mean = !sum /. 2000.0 in
  checkb "mean approx 3" true (mean > 2.5 && mean < 3.5)

let test_prng_zipf_skew () =
  let g = Prng.create 9L in
  let counts = Array.make 10 0 in
  for _ = 1 to 5000 do
    let k = Prng.zipf g ~n:10 ~s:1.2 in
    counts.(k) <- counts.(k) + 1
  done;
  checkb "rank 0 most popular" true (counts.(0) > counts.(5));
  checkb "all in range" true (Array.for_all (fun c -> c >= 0) counts)

let test_prng_pick_shuffle () =
  let g = Prng.create 21L in
  let a = [| 1; 2; 3; 4; 5 |] in
  let picked = Prng.pick g a in
  checkb "picked member" true (Array.exists (( = ) picked) a);
  let b = Array.copy a in
  Prng.shuffle g b;
  Alcotest.(check (list int)) "permutation" (List.sort compare (Array.to_list a))
    (List.sort compare (Array.to_list b))

(* --- siphash --- *)

let test_siphash_reference_vector () =
  (* SipHash-2-4 reference test vector from the Aumasson/Bernstein paper:
     key = 000102...0f, input = 00 01 02 ... 0e (15 bytes). *)
  let key = Siphash.key_of_int64s 0x0706050403020100L 0x0f0e0d0c0b0a0908L in
  let input = String.init 15 Char.chr in
  Alcotest.(check string) "reference vector" "a129ca6149be45e5" (Siphash.hash_hex key input)

let test_siphash_key_sensitivity () =
  let k1 = Siphash.key_of_string "secret-1" and k2 = Siphash.key_of_string "secret-2" in
  checkb "different keys, different hash" true (Siphash.hash k1 "payload" <> Siphash.hash k2 "payload")

let test_siphash_input_sensitivity () =
  let k = Siphash.key_of_string "k" in
  checkb "bit flip changes hash" true (Siphash.hash k "payloadA" <> Siphash.hash k "payloadB")

let test_siphash_empty_and_long () =
  let k = Siphash.key_of_string "k" in
  let h1 = Siphash.hash k "" in
  let h2 = Siphash.hash k (String.make 1000 'x') in
  checkb "defined on empty" true (h1 <> 0L || true);
  checkb "long inputs hash" true (h1 <> h2)

let prop_siphash_deterministic =
  QCheck.Test.make ~name:"siphash deterministic" ~count:200 QCheck.string (fun s ->
      let k = Siphash.key_of_string "fixed" in
      Siphash.hash k s = Siphash.hash k s)

let prop_siphash_length_distinguishes =
  QCheck.Test.make ~name:"siphash distinguishes s from s+nul" ~count:200 QCheck.string (fun s ->
      let k = Siphash.key_of_string "fixed" in
      Siphash.hash k s <> Siphash.hash k (s ^ "\x00"))

(* --- signing --- *)

let test_sign_verify_roundtrip () =
  let s = Signing.secret_of_string "hunter2" in
  let signature = Signing.sign s "hello" in
  checkb "verifies" true (Signing.verify s "hello" signature)

let test_sign_tamper_detected () =
  let s = Signing.secret_of_string "hunter2" in
  let signature = Signing.sign s "hello" in
  checkb "tampered payload fails" false (Signing.verify s "hellO" signature);
  checkb "tampered signature fails" false
    (Signing.verify s "hello" (String.mapi (fun i c -> if i = 0 then (if c = '0' then '1' else '0') else c) signature))

let test_sign_lengths () =
  let s = Signing.secret_of_string "k" in
  List.iter
    (fun len ->
      let signature = Signing.sign ~length:len s "data" in
      checki "length respected" len (String.length signature);
      checkb "verifies at length" true (Signing.verify ~length:len s "data" signature))
    [ 4; 8; 16; 24; 32 ]

let test_sign_length_bounds () =
  let s = Signing.secret_of_string "k" in
  Alcotest.check_raises "too short" (Invalid_argument "Signing.sign: length must be in [4, 32]")
    (fun () -> ignore (Signing.sign ~length:2 s "x"))

let test_sign_key_separation () =
  let s1 = Signing.secret_of_string "a" and s2 = Signing.secret_of_string "b" in
  let signature = Signing.sign s1 "data" in
  checkb "wrong key fails" false (Signing.verify s2 "data" signature)

let test_verify_rejects_truncated () =
  (* Regression: verify used to take the expected length from the presented
     signature, so a prefix of a valid signature verified.  The expected
     length must come from the verifier's configuration. *)
  let s = Signing.secret_of_string "hunter2" in
  let signature = Signing.sign ~length:16 s "hello" in
  checkb "full signature verifies" true (Signing.verify ~length:16 s "hello" signature);
  List.iter
    (fun len ->
      checkb
        (Printf.sprintf "truncated to %d rejected" len)
        false
        (Signing.verify ~length:16 s "hello" (String.sub signature 0 len)))
    [ 4; 8; 15 ];
  checkb "default length is 16" false (Signing.verify s "hello" (String.sub signature 0 4))

let test_rolling_basic () =
  let t = Signing.Rolling.create (Prng.create 1L) in
  let signature = Signing.Rolling.sign t "payload" in
  checkb "verifies" true (Signing.Rolling.verify t "payload" signature);
  checkb "tamper fails" false (Signing.Rolling.verify t "payloadx" signature)

let test_rolling_old_secret_survives_within_capacity () =
  let t = Signing.Rolling.create ~capacity:3 (Prng.create 2L) in
  let signature = Signing.Rolling.sign t "p" in
  Signing.Rolling.roll t;
  Signing.Rolling.roll t;
  checkb "still valid (capacity 3)" true (Signing.Rolling.verify t "p" signature);
  Signing.Rolling.roll t;
  checkb "retired after capacity rolls" false (Signing.Rolling.verify t "p" signature)

let test_rolling_new_secret_signs () =
  let t = Signing.Rolling.create ~capacity:2 (Prng.create 3L) in
  Signing.Rolling.roll t;
  let signature = Signing.Rolling.sign t "q" in
  checkb "current secret verifies" true (Signing.Rolling.verify t "q" signature);
  checki "generation counted" 1 (Signing.Rolling.generation t)

let test_rolling_garbage_signature () =
  let t = Signing.Rolling.create (Prng.create 4L) in
  checkb "garbage rejected" false (Signing.Rolling.verify t "p" "zzzz");
  checkb "short rejected" false (Signing.Rolling.verify t "p" "ab")

let test_rolling_rejects_truncated () =
  let t = Signing.Rolling.create (Prng.create 5L) in
  let signature = Signing.Rolling.sign ~length:16 t "payload" in
  checkb "full verifies" true (Signing.Rolling.verify ~length:16 t "payload" signature);
  checkb "truncated rejected" false
    (Signing.Rolling.verify ~length:16 t "payload" (String.sub signature 0 4));
  checkb "truncated rejected at default" false
    (Signing.Rolling.verify t "payload" (String.sub signature 0 4))

(* --- bitset --- *)

let small_int_list = QCheck.(small_list (int_bound Bitset.(62)))

let prop_bitset_roundtrip =
  QCheck.Test.make ~name:"bitset marshal roundtrip" ~count:300 small_int_list (fun l ->
      let s = Bitset.of_list l in
      match Bitset.unmarshal (Bitset.marshal s) with
      | Some s' -> Bitset.equal s s'
      | None -> false)

let prop_bitset_mem_add =
  QCheck.Test.make ~name:"mem after add" ~count:300
    QCheck.(pair (int_bound 62) small_int_list)
    (fun (x, l) -> Bitset.mem x (Bitset.add x (Bitset.of_list l)))

let prop_bitset_union_superset =
  QCheck.Test.make ~name:"union is superset" ~count:300
    QCheck.(pair small_int_list small_int_list)
    (fun (a, b) ->
      let sa = Bitset.of_list a and sb = Bitset.of_list b in
      let u = Bitset.union sa sb in
      Bitset.subset sa u && Bitset.subset sb u)

let prop_bitset_inter_subset =
  QCheck.Test.make ~name:"intersection is subset" ~count:300
    QCheck.(pair small_int_list small_int_list)
    (fun (a, b) ->
      let sa = Bitset.of_list a and sb = Bitset.of_list b in
      let i = Bitset.inter sa sb in
      Bitset.subset i sa && Bitset.subset i sb)

let prop_bitset_diff_disjoint =
  QCheck.Test.make ~name:"diff disjoint from subtrahend" ~count:300
    QCheck.(pair small_int_list small_int_list)
    (fun (a, b) ->
      let d = Bitset.diff (Bitset.of_list a) (Bitset.of_list b) in
      Bitset.is_empty (Bitset.inter d (Bitset.of_list b)))

let prop_bitset_to_list_sorted =
  QCheck.Test.make ~name:"to_list sorted unique" ~count:300 small_int_list (fun l ->
      let out = Bitset.to_list (Bitset.of_list l) in
      out = List.sort_uniq compare l)

let test_bitset_range () =
  Alcotest.check_raises "negative element" (Invalid_argument "Bitset: element -1 out of range")
    (fun () -> ignore (Bitset.singleton (-1)));
  Alcotest.check_raises "too large" (Invalid_argument "Bitset: element 63 out of range") (fun () ->
      ignore (Bitset.singleton 63))

let test_bitset_cardinal () =
  checki "cardinal" 3 (Bitset.cardinal (Bitset.of_list [ 1; 5; 30 ]));
  checki "empty" 0 (Bitset.cardinal Bitset.empty)

let test_bitset_unmarshal_strict () =
  (* Regression: unmarshal used [int_of_string_opt ("0x" ^ s)], which accepts
     underscores anywhere and hex wider than the 0..62 domain. *)
  let rejects s = checkb (Printf.sprintf "%S rejected" s) true (Bitset.unmarshal s = None) in
  rejects "";
  rejects "1_0";
  rejects "_1";
  rejects "0x1";
  rejects "zz";
  rejects "-1";
  rejects " 1";
  rejects "8000000000000000";  (* bit 63: out of domain *)
  rejects "ffffffffffffffff";
  rejects "10000000000000000" (* 17 digits: wider than 64 bits *);
  (* The full 0..62 set is the widest legal value. *)
  (match Bitset.unmarshal "7fffffffffffffff" with
  | Some s -> checki "full set cardinal" 63 (Bitset.cardinal s)
  | None -> Alcotest.fail "full 0..62 set must unmarshal");
  (* Mixed-case hex and high single elements still roundtrip. *)
  (match Bitset.unmarshal (Bitset.marshal (Bitset.singleton 62)) with
  | Some s -> checkb "bit 62 roundtrips" true (Bitset.mem 62 s)
  | None -> Alcotest.fail "bit 62 must roundtrip");
  match Bitset.unmarshal "aB3" with
  | Some s -> checkb "mixed case accepted" true (Bitset.equal s (Bitset.of_list [ 0; 1; 4; 5; 7; 9; 11 ]))
  | None -> Alcotest.fail "mixed-case hex must parse"

(* --- pqueue --- *)

let test_pqueue_order () =
  let q = Pqueue.create () in
  List.iter (fun (p, v) -> Pqueue.push q p v) [ (3.0, "c"); (1.0, "a"); (2.0, "b") ];
  let pop () = match Pqueue.pop q with Some (_, v) -> v | None -> "?" in
  let x1 = pop () in
  let x2 = pop () in
  let x3 = pop () in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] [ x1; x2; x3 ]

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  List.iter (fun v -> Pqueue.push q 1.0 v) [ "first"; "second"; "third" ];
  let pop () = match Pqueue.pop q with Some (_, v) -> v | None -> "?" in
  let x1 = pop () in
  let x2 = pop () in
  let x3 = pop () in
  Alcotest.(check (list string)) "insertion order on ties" [ "first"; "second"; "third" ]
    [ x1; x2; x3 ]

let test_pqueue_empty () =
  let q = Pqueue.create () in
  checkb "empty pop" true (Pqueue.pop q = None);
  checkb "empty peek" true (Pqueue.peek q = None);
  checkb "is_empty" true (Pqueue.is_empty q)

let prop_pqueue_pop_sorted =
  QCheck.Test.make ~name:"pqueue pops in priority order" ~count:200
    QCheck.(small_list (float_bound_inclusive 100.0))
    (fun priorities ->
      let q = Pqueue.create () in
      List.iteri (fun i p -> Pqueue.push q p i) priorities;
      let rec drain acc =
        match Pqueue.pop q with Some (p, _) -> drain (p :: acc) | None -> List.rev acc
      in
      let out = drain [] in
      out = List.sort compare priorities)

let prop_pqueue_length =
  QCheck.Test.make ~name:"pqueue length tracks pushes/pops" ~count:200
    QCheck.(small_list (float_bound_inclusive 10.0))
    (fun ps ->
      let q = Pqueue.create () in
      List.iter (fun p -> Pqueue.push q p ()) ps;
      let n1 = Pqueue.length q = List.length ps in
      ignore (Pqueue.pop q);
      let n2 = Pqueue.length q = max 0 (List.length ps - 1) in
      n1 && n2)

let test_pqueue_to_list_nondestructive () =
  let q = Pqueue.create () in
  List.iter (fun p -> Pqueue.push q p (int_of_float p)) [ 2.0; 1.0; 3.0 ];
  let snapshot = Pqueue.to_list q in
  checki "still 3" 3 (Pqueue.length q);
  Alcotest.(check (list int)) "snapshot sorted" [ 1; 2; 3 ] (List.map snd snapshot)

(* --- json: sorted keys make emission order-independent --- *)

module Json = Oasis_util.Json

let test_json_sorted_key_order_independent () =
  (* The same document assembled in two different field orders (nested
     objects included) must render byte-identically after [sorted] — this
     is what keeps BENCH_*.json diffable run to run. *)
  let doc fields inner =
    Json.Obj
      (List.map
         (fun k ->
           ( k,
             if k = "nested" then Json.Obj (List.map (fun k' -> (k', Json.Int 1)) inner)
             else Json.Str k ))
         fields)
  in
  let a = doc [ "b"; "a"; "nested"; "c" ] [ "z"; "y"; "x" ] in
  let b = doc [ "c"; "nested"; "a"; "b" ] [ "x"; "z"; "y" ] in
  checkb "permuted fields render differently unsorted" true
    (Json.to_string a <> Json.to_string b);
  Alcotest.(check string)
    "sorted renders identically" (Json.to_string (Json.sorted a))
    (Json.to_string (Json.sorted b));
  (* Arrays keep their order — only object keys are sorted. *)
  let arr = Json.Arr [ Json.Int 3; Json.Int 1; Json.Int 2 ] in
  Alcotest.(check string) "arrays untouched" (Json.to_string arr)
    (Json.to_string (Json.sorted arr))

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_prng_seeds_differ;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_prng_int_invalid;
          Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
          Alcotest.test_case "exponential" `Quick test_prng_exponential_positive;
          Alcotest.test_case "zipf skew" `Quick test_prng_zipf_skew;
          Alcotest.test_case "pick and shuffle" `Quick test_prng_pick_shuffle;
        ] );
      ( "siphash",
        [
          Alcotest.test_case "reference vector" `Quick test_siphash_reference_vector;
          Alcotest.test_case "key sensitivity" `Quick test_siphash_key_sensitivity;
          Alcotest.test_case "input sensitivity" `Quick test_siphash_input_sensitivity;
          Alcotest.test_case "empty and long" `Quick test_siphash_empty_and_long;
          qt prop_siphash_deterministic;
          qt prop_siphash_length_distinguishes;
        ] );
      ( "signing",
        [
          Alcotest.test_case "roundtrip" `Quick test_sign_verify_roundtrip;
          Alcotest.test_case "tamper detected" `Quick test_sign_tamper_detected;
          Alcotest.test_case "lengths" `Quick test_sign_lengths;
          Alcotest.test_case "length bounds" `Quick test_sign_length_bounds;
          Alcotest.test_case "key separation" `Quick test_sign_key_separation;
          Alcotest.test_case "truncated signature rejected" `Quick test_verify_rejects_truncated;
          Alcotest.test_case "rolling basic" `Quick test_rolling_basic;
          Alcotest.test_case "rolling retires old" `Quick test_rolling_old_secret_survives_within_capacity;
          Alcotest.test_case "rolling new signs" `Quick test_rolling_new_secret_signs;
          Alcotest.test_case "rolling garbage" `Quick test_rolling_garbage_signature;
          Alcotest.test_case "rolling truncated rejected" `Quick test_rolling_rejects_truncated;
        ] );
      ( "bitset",
        [
          qt prop_bitset_roundtrip;
          qt prop_bitset_mem_add;
          qt prop_bitset_union_superset;
          qt prop_bitset_inter_subset;
          qt prop_bitset_diff_disjoint;
          qt prop_bitset_to_list_sorted;
          Alcotest.test_case "range errors" `Quick test_bitset_range;
          Alcotest.test_case "cardinal" `Quick test_bitset_cardinal;
          Alcotest.test_case "strict unmarshal" `Quick test_bitset_unmarshal_strict;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "order" `Quick test_pqueue_order;
          Alcotest.test_case "fifo ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "empty" `Quick test_pqueue_empty;
          qt prop_pqueue_pop_sorted;
          qt prop_pqueue_length;
          Alcotest.test_case "to_list" `Quick test_pqueue_to_list_nondestructive;
        ] );
      ( "json",
        [
          Alcotest.test_case "sorted keys are order-independent" `Quick
            test_json_sorted_key_order_independent;
        ] );
    ]
