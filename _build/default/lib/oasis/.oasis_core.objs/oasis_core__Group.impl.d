lib/oasis/group.ml: Credrec Hashtbl List Oasis_rdl
