(** Pretty printer producing concrete RDL syntax that re-parses to the same
    AST modulo source-line annotations: for every rolefile [rf],
    [Ast.strip_lines (Parser.parse (to_string rf)) =
     Ast.strip_lines rf] (round-trip property tested in [test/test_rdl.ml]
    and, over generated ASTs and every in-repo rolefile, in
    [test/test_analyze.ml]). *)

val pp_arg : Format.formatter -> Ast.arg -> unit
val pp_args : Format.formatter -> Ast.arg list -> unit
(** Parenthesised, comma-separated; prints nothing for [[]]. *)

val pp_role_ref : Format.formatter -> Ast.role_ref -> unit
val string_of_relop : Ast.relop -> string
val pp_expr : Format.formatter -> Ast.expr -> unit

val pp_constr : Format.formatter -> Ast.constr -> unit
(** Minimal parenthesisation: [or] < [and] < [not]/atoms. *)

val pp_entry : Format.formatter -> Ast.entry -> unit
val pp_item : Format.formatter -> Ast.item -> unit
val pp_rolefile : Format.formatter -> Ast.rolefile -> unit

val to_string : Ast.rolefile -> string
val entry_to_string : Ast.entry -> string
val constr_to_string : Ast.constr -> string
