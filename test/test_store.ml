(* The durable-state plane: simulated stable storage, the write-ahead log
   with group commit and checksum framing, snapshots, and crash recovery of
   services (§4.11 databases + issued memberships).

   Everything runs on the deterministic simulator: crashes tear the log at
   seeded points, so a failing case replays exactly. *)

module Engine = Oasis_sim.Engine
module Net = Oasis_sim.Net
module Stats = Oasis_sim.Stats
module Prng = Oasis_util.Prng
module Disk = Oasis_store.Disk
module Wal = Oasis_store.Wal
module Snapshot = Oasis_store.Snapshot
module Service = Oasis_core.Service
module Group = Oasis_core.Group
module Principal = Oasis_core.Principal
module V = Oasis_rdl.Value

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

type dworld = { engine : Engine.t; net : Net.t; host : Net.host; disk : Disk.t }

let make_dworld ?seed () =
  let engine = Engine.create () in
  let net = Net.create ?seed ~latency:(Net.Fixed 0.005) engine in
  let host = Net.add_host net "store" in
  let disk = Disk.create net host () in
  { engine; net; host; disk }

let drun w dt = Engine.run ~until:(Engine.now w.engine +. dt) w.engine

(* --- write-ahead log --- *)

let test_wal_roundtrip () =
  let w = make_dworld () in
  let wal = Wal.create w.disk ~file:"log" () in
  let records = List.init 50 (fun i -> Printf.sprintf "record-%d-%s" i (String.make (i mod 7) 'x')) in
  List.iter (fun r -> Wal.append wal r) records;
  let synced = ref false in
  Wal.sync wal (fun () -> synced := true);
  drun w 1.0;
  checkb "sync completed" true !synced;
  checkb "recover returns every record in order" true (Wal.recover wal = records);
  checki "lifetime append counter" 50 (Wal.appended wal)

let test_wal_group_commit_coalesces_fsyncs () =
  let appends = 1000 in
  let fsyncs_with each =
    let w = make_dworld () in
    let wal = Wal.create w.disk ~file:"log" ~flush_interval:0.01 ~fsync_each:each () in
    for i = 0 to appends - 1 do
      Engine.schedule_at w.engine ~at:(0.001 *. float_of_int i) (fun () ->
          Wal.append wal (Printf.sprintf "r%d" i))
    done;
    Engine.run ~until:5.0 w.engine;
    checkb "no record lost" true (List.length (Wal.recover wal) = appends);
    Stats.count (Net.stats w.net) "store.fsync"
  in
  let baseline = fsyncs_with true in
  let grouped = fsyncs_with false in
  checki "fsync-per-append baseline" appends baseline;
  checkb
    (Printf.sprintf "group commit reduces fsyncs >= 5x (%d -> %d)" baseline grouped)
    true
    (grouped * 5 <= baseline)

let test_wal_durability_callback_after_crash () =
  let w = make_dworld ~seed:5L () in
  let wal = Wal.create w.disk ~file:"log" () in
  let durable = ref [] in
  Wal.append wal ~on_durable:(fun () -> durable := "a" :: !durable) "a";
  Wal.sync wal (fun () -> ());
  drun w 1.0;
  (* The second record's group commit dies with the host: its callback must
     never fire, even after restart. *)
  Wal.append wal ~on_durable:(fun () -> durable := "b" :: !durable) "b";
  Net.crash_host w.net w.host;
  drun w 1.0;
  Net.restart_host w.net w.host;
  drun w 2.0;
  checkb "only the synced record's callback fired" true (!durable = [ "a" ])

(* A crash with unsynced appends leaves a (possibly torn) tail; recovery
   must yield a checksum-valid prefix, never raise, and keep everything
   that was fsynced. *)
let test_wal_crash_recovers_synced_prefix () =
  let torn = ref 0 in
  List.iter
    (fun seed ->
      let w = make_dworld ~seed () in
      let wal = Wal.create w.disk ~file:"log" () in
      let records = List.init 20 (fun i -> Printf.sprintf "record-%d" i) in
      let synced_part, unsynced_part =
        (List.filteri (fun i _ -> i < 10) records, List.filteri (fun i _ -> i >= 10) records)
      in
      List.iter (fun r -> Wal.append wal r) synced_part;
      Wal.sync wal (fun () -> ());
      drun w 1.0;
      List.iter (fun r -> Wal.append wal r) unsynced_part;
      Net.crash_host w.net w.host;
      drun w 0.5;
      Net.restart_host w.net w.host;
      let recovered = Wal.recover wal in
      let n = List.length recovered in
      checkb "at least the synced prefix" true (n >= 10);
      checkb "no record invented" true (n <= 20);
      checkb "exactly a prefix of what was appended" true
        (recovered = List.filteri (fun i _ -> i < n) records);
      if Stats.count (Net.stats w.net) "store.crash.torn" > 0 then incr torn)
    [ 1L; 2L; 3L; 4L; 5L; 6L; 7L; 8L ];
  (* The seeds must actually exercise the torn-write path, not only clean
     losses, or the checksum scan is untested. *)
  checkb "some seed tore the final record" true (!torn >= 1)

(* A rewrite over buffered plain appends is legal (compacting callers
   re-include them in the new contents), but a rewrite over a pending
   [on_durable] callback would silently drop a client ack — it must raise
   instead, and go through again once the buffer is synced. *)
let test_wal_rewrite_refuses_pending_callbacks () =
  let w = make_dworld () in
  let wal = Wal.create w.disk ~file:"log" () in
  Wal.append wal "keep-1";
  Wal.rewrite wal [ "keep-1" ] (fun () -> ());
  drun w 1.0;
  checkb "rewrite over a plain buffered append is legal" true (Wal.recover wal = [ "keep-1" ]);
  Wal.append wal ~on_durable:(fun () -> ()) "acked";
  (match Wal.rewrite wal [ "other" ] (fun () -> ()) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "rewrite over a pending durability callback must raise");
  let synced = ref false in
  Wal.sync wal (fun () -> synced := true);
  drun w 1.0;
  checkb "sync completed" true !synced;
  Wal.rewrite wal [ "fresh" ] (fun () -> ());
  drun w 1.0;
  checkb "rewrite goes through once the buffer is drained" true
    (Wal.recover wal = [ "fresh" ])

(* Property: the recovery scan is total and prefix-stable under arbitrary
   single-byte corruption and truncation of the framed bytes. *)
let test_wal_decoder_fuzz () =
  let records = List.init 12 (fun i -> Printf.sprintf "payload-%d-%s" i (String.make i 'y')) in
  let framed = String.concat "" (List.map (Wal.frame_with ~key:"log") records) in
  let is_prefix l = records = l @ List.filteri (fun i _ -> i >= List.length l) records in
  for seed = 1 to 50 do
    let prng = Prng.create (Int64.of_int seed) in
    let mutated =
      if Prng.bool prng then begin
        (* Flip one random byte. *)
        let b = Bytes.of_string framed in
        let i = Prng.int prng (Bytes.length b) in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 + Prng.int prng 255)));
        Bytes.to_string b
      end
      else String.sub framed 0 (Prng.int prng (String.length framed + 1))
    in
    let decoded =
      try Wal.decode_with ~key:"log" mutated
      with e -> Alcotest.failf "decoder raised on seed %d: %s" seed (Printexc.to_string e)
    in
    checkb
      (Printf.sprintf "seed %d decodes to a prefix" seed)
      true (is_prefix decoded);
    (* Wrong key: nothing validates. *)
    checkb "other file's key rejects all" true (Wal.decode_with ~key:"other" mutated = [])
  done

(* --- snapshots --- *)

let test_snapshot_atomic_across_crash () =
  let w = make_dworld ~seed:9L () in
  let snap = Snapshot.create w.disk ~file:"snap" in
  checkb "empty before first save" true (Snapshot.load snap = None);
  Snapshot.save snap "state-v1" (fun () -> ());
  drun w 1.0;
  checkb "v1 loads" true (Snapshot.load snap = Some "state-v1");
  (* Crash while the second save is in flight: the old image survives
     whole — never a torn mixture. *)
  Snapshot.save snap "state-v2-much-longer-payload" (fun () -> ());
  Net.crash_host w.net w.host;
  drun w 1.0;
  Net.restart_host w.net w.host;
  checkb "old snapshot intact after crashed save" true (Snapshot.load snap = Some "state-v1");
  Snapshot.save snap "state-v3" (fun () -> ());
  drun w 1.0;
  checkb "fresh save replaces it" true (Snapshot.load snap = Some "state-v3")

let test_snapshot_bounds_replay () =
  let w = make_dworld () in
  let wal = Wal.create w.disk ~file:"log" () in
  let snap = Snapshot.create w.disk ~file:"snap" in
  List.iter (fun r -> Wal.append wal r) [ "a"; "b"; "c" ];
  Wal.sync wal (fun () -> ());
  drun w 1.0;
  (* Checkpoint: image covers a,b,c; the log restarts empty. *)
  let truncated = ref false in
  Snapshot.save snap "a|b|c" (fun () ->
      Wal.truncate wal;
      truncated := true);
  drun w 1.0;
  checkb "log truncated after durable snapshot" true !truncated;
  List.iter (fun r -> Wal.append wal r) [ "d"; "e" ];
  Wal.sync wal (fun () -> ());
  drun w 1.0;
  checkb "snapshot + suffix" true
    (Snapshot.load snap = Some "a|b|c" && Wal.recover wal = [ "d"; "e" ])

(* --- service recovery (§4.11 persistence) --- *)

let meet_rolefile =
  {|
Chair <- Login.LoggedOn("jmb", h)
Member(u) <- Login.LoggedOn(u, h)* |>* Chair : u in staff
|}

let login_rolefile = {|
def LoggedOn(u, h) u: String h: String
LoggedOn(u, h) <-
|}

type sworld = {
  s_engine : Engine.t;
  s_net : Net.t;
  s_client_host : Net.host;
  s_login : Service.t;
  s_meet : Service.t;
}

let fresh_vci =
  let host = Principal.Host.create "storeclienthost" in
  let domain = Principal.Host.boot_domain host in
  fun () -> Principal.Host.new_vci host domain

let srun w dt = Engine.run ~until:(Engine.now w.s_engine +. dt) w.s_engine

let durable_world ?(seed = 42L) () =
  let engine = Engine.create () in
  let net = Net.create ~seed ~latency:(Net.Fixed 0.005) engine in
  let reg = Service.create_registry () in
  let client_host = Net.add_host net "client" in
  let login_host = Net.add_host net "h.login" in
  let meet_host = Net.add_host net "h.meet" in
  let disk = Disk.create net meet_host () in
  let mk name host rolefile extra =
    match extra (Service.create net host reg ~name ~rolefile) with
    | Ok s -> s
    | Error e -> Alcotest.failf "service %s: %s" name e
  in
  let login = mk "Login" login_host login_rolefile (fun f -> f ()) in
  let meet = mk "Meet" meet_host meet_rolefile (fun f -> f ~disk ()) in
  { s_engine = engine; s_net = net; s_client_host = client_host; s_login = login; s_meet = meet }

let entry w svc ~client ~role ?creds () =
  let result = ref None in
  Service.request_entry svc ~client_host:w.s_client_host ~client ~role ?creds (fun r ->
      result := Some r);
  srun w 2.0;
  match !result with Some r -> r | None -> Alcotest.fail "entry did not complete"

let entry_ok w svc ~client ~role ?creds () =
  match entry w svc ~client ~role ?creds () with
  | Ok c -> c
  | Error e -> Alcotest.failf "entry to %s failed: %s" role e

let logged_on w user =
  let vci = fresh_vci () in
  ( vci,
    Service.issue_arbitrary w.s_login ~client:vci ~roles:[ "LoggedOn" ]
      ~args:[ V.Str user; V.Str "ely" ] )

let fire w ~chair ~user =
  let result = ref None in
  Service.revoke_role_instance w.s_meet ~client_host:w.s_client_host ~revoker:chair
    ~role:"Member" ~args:[ V.Str user ] (fun r -> result := Some r);
  srun w 2.0;
  match !result with
  | Some (Ok n) -> n
  | Some (Error e) -> Alcotest.failf "fire %s: %s" user e
  | None -> Alcotest.fail "fire did not complete"

let crash_restart_meet w =
  (* Past the group-commit window, so acknowledged operations are on the
     platter; then a full crash/restart cycle plus recovery and reread. *)
  srun w 0.2;
  Net.crash_host w.s_net (Service.host w.s_meet);
  srun w 1.0;
  Net.restart_host w.s_net (Service.host w.s_meet);
  srun w 3.0

(* §4.11 regression: "fired is forever" must survive a crash of the
   service host.  The fired principal stays locked out after recovery; the
   control principal's certificate comes back to life. *)
let test_fired_stays_fired_across_crash () =
  let w = durable_world () in
  Group.add (Service.group w.s_meet "staff") (V.Str "fred");
  Group.add (Service.group w.s_meet "staff") (V.Str "mary");
  let jmb, jmb_cert = logged_on w "jmb" in
  let chair = entry_ok w w.s_meet ~client:jmb ~role:"Chair" ~creds:[ jmb_cert ] () in
  let fred, fred_cert = logged_on w "fred" in
  let mary, mary_cert = logged_on w "mary" in
  let fred_member = entry_ok w w.s_meet ~client:fred ~role:"Member" ~creds:[ fred_cert ] () in
  let mary_member = entry_ok w w.s_meet ~client:mary ~role:"Member" ~creds:[ mary_cert ] () in
  checki "fred revoked by role" 1 (fire w ~chair ~user:"fred");
  checkb "fred out before the crash" true
    (Service.validate w.s_meet ~client:fred fred_member = Error Service.Revoked);
  crash_restart_meet w;
  checkb "blacklist recovered" true
    (Service.blacklisted w.s_meet ~role:"Member" ~args:[ V.Str "fred" ]);
  checkb "fred still revoked after recovery" true
    (Service.validate w.s_meet ~client:fred fred_member = Error Service.Revoked);
  checkb "fred cannot re-enter after recovery" true
    (Result.is_error (entry w w.s_meet ~client:fred ~role:"Member" ~creds:[ fred_cert ] ()));
  (* Control: an unfired membership must recover to valid... *)
  checkb "mary's certificate survives the crash" true
    (Service.validate w.s_meet ~client:mary mary_member = Ok ());
  (* ...and the recovered revoker arm still works: firing mary AFTER
     recovery revokes the restored record. *)
  checki "mary fired after recovery" 1 (fire w ~chair ~user:"mary");
  checkb "mary revoked via recovered arm" true
    (Service.validate w.s_meet ~client:mary mary_member = Error Service.Revoked)

let test_rehire_survives_crash () =
  let w = durable_world ~seed:43L () in
  Group.add (Service.group w.s_meet "staff") (V.Str "fred");
  let jmb, jmb_cert = logged_on w "jmb" in
  let chair = entry_ok w w.s_meet ~client:jmb ~role:"Chair" ~creds:[ jmb_cert ] () in
  let fred, fred_cert = logged_on w "fred" in
  let _ = entry_ok w w.s_meet ~client:fred ~role:"Member" ~creds:[ fred_cert ] () in
  checki "fired" 1 (fire w ~chair ~user:"fred");
  let rehired = ref None in
  Service.reinstate_role_instance w.s_meet ~client_host:w.s_client_host ~revoker:chair
    ~role:"Member" ~args:[ V.Str "fred" ] (fun r -> rehired := Some r);
  srun w 2.0;
  checkb "re-hired" true (!rehired = Some (Ok ()));
  crash_restart_meet w;
  checkb "re-hire survived the crash" true
    (not (Service.blacklisted w.s_meet ~role:"Member" ~args:[ V.Str "fred" ]));
  checkb "fred can re-enter after recovery" true
    (Result.is_ok (entry w w.s_meet ~client:fred ~role:"Member" ~creds:[ fred_cert ] ()))

(* An unsynced issue lost with the crash must fail CLOSED: the certificate
   is unknown to the recovered service and validates as revoked, never as
   valid. *)
let test_lost_tail_fails_closed () =
  let w = durable_world ~seed:44L () in
  Group.add (Service.group w.s_meet "staff") (V.Str "fred");
  let fred, fred_cert = logged_on w "fred" in
  let member = entry_ok w w.s_meet ~client:fred ~role:"Member" ~creds:[ fred_cert ] () in
  (* Crash IMMEDIATELY: the issue record is (with these seeds) still in the
     group-commit window.  Whatever survives, validation must never say
     Ok while the backing record was not recovered. *)
  Net.crash_host w.s_net (Service.host w.s_meet);
  srun w 1.0;
  Net.restart_host w.s_net (Service.host w.s_meet);
  srun w 4.0;
  (match Service.validate w.s_meet ~client:fred member with
  | Ok () ->
      (* Legal only if the record made it to the platter and was restored. *)
      checkb "validated Ok implies the issue was recovered" true
        (Service.durable_issued w.s_meet >= 1)
  | Error _ -> ());
  (* And re-entry still works: recovery leaves a functioning service. *)
  checkb "service still issues after recovery" true
    (Result.is_ok (entry w w.s_meet ~client:fred ~role:"Member" ~creds:[ fred_cert ] ()))

let test_snapshot_checkpoint_in_service () =
  (* snapshot_every=8 forces several checkpoint cycles; recovery must load
     snapshot + suffix and still refuse the fired principal. *)
  let engine = Engine.create () in
  let net = Net.create ~seed:45L ~latency:(Net.Fixed 0.005) engine in
  let reg = Service.create_registry () in
  let client_host = Net.add_host net "client" in
  let login_host = Net.add_host net "h.login" in
  let meet_host = Net.add_host net "h.meet" in
  let disk = Disk.create net meet_host () in
  let login =
    match Service.create net login_host reg ~name:"Login" ~rolefile:login_rolefile () with
    | Ok s -> s
    | Error e -> Alcotest.failf "login: %s" e
  in
  let meet =
    match
      Service.create net meet_host reg ~name:"Meet" ~rolefile:meet_rolefile ~disk
        ~snapshot_every:8 ()
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "meet: %s" e
  in
  let w =
    { s_engine = engine; s_net = net; s_client_host = client_host; s_login = login; s_meet = meet }
  in
  let users = List.init 12 (fun i -> Printf.sprintf "u%d" i) in
  List.iter (fun u -> Group.add (Service.group meet "staff") (V.Str u)) users;
  let jmb, jmb_cert = logged_on w "jmb" in
  let chair = entry_ok w meet ~client:jmb ~role:"Chair" ~creds:[ jmb_cert ] () in
  let members =
    List.map
      (fun u ->
        let vci, cert = logged_on w u in
        (u, vci, entry_ok w meet ~client:vci ~role:"Member" ~creds:[ cert ] ()))
      users
  in
  checki "fired u3" 1 (fire w ~chair ~user:"u3");
  checkb "snapshot actually written" true
    (Stats.count (Net.stats net) "store.snapshot" >= 1);
  crash_restart_meet w;
  List.iter
    (fun (u, vci, m) ->
      if u = "u3" then
        checkb "fired user stays revoked" true
          (Service.validate meet ~client:vci m = Error Service.Revoked)
      else
        checkb (Printf.sprintf "%s survives via snapshot+log" u) true
          (Service.validate meet ~client:vci m = Ok ()))
    members;
  checkb "recovery instrumented" true (Stats.count (Net.stats net) "oasis.recover" >= 1)

let () =
  Alcotest.run "store"
    [
      ( "wal",
        [
          Alcotest.test_case "append/sync/recover roundtrip" `Quick test_wal_roundtrip;
          Alcotest.test_case "group commit coalesces fsyncs" `Quick
            test_wal_group_commit_coalesces_fsyncs;
          Alcotest.test_case "durability callbacks die with the host" `Quick
            test_wal_durability_callback_after_crash;
          Alcotest.test_case "crash recovers a checksummed prefix" `Quick
            test_wal_crash_recovers_synced_prefix;
          Alcotest.test_case "rewrite refuses pending durability callbacks" `Quick
            test_wal_rewrite_refuses_pending_callbacks;
          Alcotest.test_case "decoder total under corruption (fuzz)" `Quick test_wal_decoder_fuzz;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "atomic across crash" `Quick test_snapshot_atomic_across_crash;
          Alcotest.test_case "bounds replay to the log suffix" `Quick test_snapshot_bounds_replay;
        ] );
      ( "service-recovery",
        [
          Alcotest.test_case "fired stays fired across crash (§4.11)" `Quick
            test_fired_stays_fired_across_crash;
          Alcotest.test_case "re-hire survives crash" `Quick test_rehire_survives_crash;
          Alcotest.test_case "lost tail fails closed" `Quick test_lost_tail_fails_closed;
          Alcotest.test_case "snapshot checkpointing in the service" `Quick
            test_snapshot_checkpoint_in_service;
        ] );
    ]
