let encode s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let nibble = function
  | '0' .. '9' as c -> Char.code c - Char.code '0'
  | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
  | _ -> -1

let decode s =
  let n = String.length s in
  if n mod 2 <> 0 then None
  else begin
    let b = Buffer.create (n / 2) in
    let rec go i =
      if i >= n then Some (Buffer.contents b)
      else
        let hi = nibble s.[i] and lo = nibble s.[i + 1] in
        if hi < 0 || lo < 0 then None
        else begin
          Buffer.add_char b (Char.chr ((hi * 16) + lo));
          go (i + 2)
        end
    in
    go 0
  end
