(** Synthetic badge-movement workload (DESIGN.md substitution for the real
    IR sensor hardware).

    People wander between rooms of their site with exponentially distributed
    dwell times and Zipf room popularity, and occasionally travel to another
    site.  Every movement drives {!Site.sight} — exactly the event stream
    the physical sensors would produce. *)

type t

type person = { p_name : string; p_badge : int; p_home : string }

val create :
  Oasis_sim.Engine.t ->
  seed:int64 ->
  sites:Site.t list ->
  people_per_site:int ->
  ?mean_dwell:float ->
  ?travel_probability:float ->
  ?zipf_s:float ->
  unit ->
  t
(** Registers each person's badge at their home site. *)

val start : t -> unit
(** Begin scheduling movements on the engine; runs until the engine stops
    being driven. *)

val people : t -> person list
val sightings : t -> int
(** Total sightings generated so far. *)

val site_changes : t -> int
