lib/oasis/unixfs.ml: Acl Buffer Cert Group List Oasis_rdl Printf Service String
