lib/util/signing.mli: Prng
