test/test_rdl.ml: Alcotest List Oasis_rdl QCheck QCheck_alcotest Result
