module Value = Oasis_rdl.Value
module Bitset = Oasis_util.Bitset
module Signing = Oasis_util.Signing

type value = Value.t

type rmc = {
  holder : Principal.vci;
  service : string;
  rolefile : string;
  roles : Bitset.t;
  args : value list;
  crr : Credrec.cref;
  issued_at : float;
  rmc_sig : string;
}

type delegation = {
  d_service : string;
  d_rolefile : string;
  d_role : string;
  d_required : (string * string * value list) list;
  d_crr : Credrec.cref;
  d_delegator_crr : Credrec.cref;
  d_delegator_role : string;
  d_delegator_args : value list;
  d_expires : float option;
  d_sig : string;
}

type revocation = {
  r_service : string;
  r_role : string;
  r_delegator_crr : Credrec.cref;
  r_target_crr : Credrec.cref;
  r_sig : string;
}

let args_payload args = String.concat "\x01" (List.map Value.marshal args)

let rmc_payload c =
  String.concat "\x00"
    [
      Principal.vci_to_string c.holder;
      c.service;
      c.rolefile;
      Bitset.marshal c.roles;
      args_payload c.args;
      Credrec.marshal_ref c.crr;
      Printf.sprintf "%.6f" c.issued_at;
    ]

let delegation_payload d =
  String.concat "\x00"
    [
      d.d_service;
      d.d_rolefile;
      d.d_role;
      String.concat "\x02"
        (List.map
           (fun (svc, role, args) -> String.concat "\x01" [ svc; role; args_payload args ])
           d.d_required);
      Credrec.marshal_ref d.d_crr;
      Credrec.marshal_ref d.d_delegator_crr;
      d.d_delegator_role;
      args_payload d.d_delegator_args;
      (match d.d_expires with Some e -> Printf.sprintf "%.6f" e | None -> "-");
    ]

let revocation_payload r =
  String.concat "\x00"
    [
      r.r_service;
      r.r_role;
      Credrec.marshal_ref r.r_delegator_crr;
      Credrec.marshal_ref r.r_target_crr;
    ]

let sign_rmc secrets ~length c =
  { c with rmc_sig = Signing.Rolling.sign ~length secrets (rmc_payload c) }

let verify_rmc ?length secrets c = Signing.Rolling.verify ?length secrets (rmc_payload c) c.rmc_sig

let sign_delegation secrets ~length d =
  { d with d_sig = Signing.Rolling.sign ~length secrets (delegation_payload d) }

let verify_delegation ?length secrets d =
  Signing.Rolling.verify ?length secrets (delegation_payload d) d.d_sig

let sign_revocation secrets ~length r =
  { r with r_sig = Signing.Rolling.sign ~length secrets (revocation_payload r) }

let verify_revocation ?length secrets r =
  Signing.Rolling.verify ?length secrets (revocation_payload r) r.r_sig

let has_role ~role_bits c role =
  match List.assoc_opt role role_bits with
  | Some bit -> Bitset.mem bit c.roles
  | None -> false

let pp_rmc ppf c =
  Format.fprintf ppf "RMC{%s %s[%s] roles=%a args=(%s) crr=%s}"
    (Principal.vci_to_string c.holder)
    c.service c.rolefile Bitset.pp c.roles
    (String.concat ", " (List.map Value.to_string c.args))
    (Credrec.marshal_ref c.crr)
