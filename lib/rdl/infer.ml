open Ast

type result = {
  sigs : (string, Ty.t list) Hashtbl.t;
  unresolved : (string * int) list;
}

type callbacks = {
  external_sig : service:string -> role:string -> Ty.t list option;
  func_sig : string -> (Ty.t list option * Ty.t) option;
  group_element : string -> Ty.t option;
}

let no_callbacks =
  {
    external_sig = (fun ~service:_ ~role:_ -> None);
    func_sig = (fun _ -> None);
    group_element = (fun _ -> None);
  }

exception Fail of string

let fail fmt = Format.kasprintf (fun msg -> raise (Fail msg)) fmt

(* Source line of the item being checked, for located error reporting
   ([infer_located]).  Updated as the passes walk the rolefile. *)
let cur_line = ref 0

let unify_exn ctx a b =
  match Ty.unify a b with Ok () -> () | Error msg -> fail "%s: %s" ctx msg

(* Unify an expected type with a literal value.  Resolved set types accept any
   literal whose elements fall within the alphabet (see Ty.compatible_value);
   unresolved variables are bound to the literal's own type. *)
let unify_literal ctx ty v =
  match Ty.repr ty with
  | Ty.Var _ -> unify_exn ctx ty (Ty.of_value v)
  | resolved ->
      if not (Ty.compatible_value resolved v) then
        fail "%s: literal %s does not inhabit type %s" ctx (Value.to_string v)
          (Ty.to_string resolved)

let infer_located ?(callbacks = no_callbacks) rolefile =
  let sigs : (string, Ty.t list) Hashtbl.t = Hashtbl.create 16 in
  cur_line := 0;
  try
    (* Pass 1: explicit declarations. *)
    List.iter
      (fun d ->
        cur_line := d.decl_line;
        if Hashtbl.mem sigs d.decl_name then fail "duplicate def for role %s" d.decl_name;
        let types =
          List.map
            (fun p ->
              match List.assoc_opt p d.param_types with Some ty -> ty | None -> Ty.fresh ())
            d.params
        in
        Hashtbl.replace sigs d.decl_name types)
      (defs rolefile);
    (* Pass 2: seed signatures for roles defined by entry statements. *)
    List.iter
      (fun e ->
        cur_line := e.entry_line;
        let name, args = e.head in
        match Hashtbl.find_opt sigs name with
        | Some types ->
            if List.length types <> List.length args then
              fail "role %s used with %d argument(s) but declared with %d" name
                (List.length args) (List.length types)
        | None -> Hashtbl.replace sigs name (List.map (fun _ -> Ty.fresh ()) args))
      (entries rolefile);
    (* Per-statement inference. *)
    let infer_entry e =
      cur_line := e.entry_line;
      let vars : (string, Ty.t) Hashtbl.t = Hashtbl.create 8 in
      let var_ty v =
        match Hashtbl.find_opt vars v with
        | Some ty -> ty
        | None ->
            let ty = Ty.fresh () in
            Hashtbl.replace vars v ty;
            ty
      in
      let unify_args ctx types args =
        if List.length types <> List.length args then
          fail "%s: expected %d argument(s), got %d" ctx (List.length types) (List.length args);
        List.iter2
          (fun ty arg ->
            match arg with
            | Avar v -> unify_exn ctx ty (var_ty v)
            | Alit value -> unify_literal ctx ty value)
          types args
      in
      let role_ref_sig r =
        match r.sref.service with
        | None -> (
            match Hashtbl.find_opt sigs r.role with
            | Some types -> Some types
            | None -> fail "reference to undefined local role %s" r.role)
        | Some service -> callbacks.external_sig ~service ~role:r.role
      in
      let unify_role_ref r =
        match role_ref_sig r with
        | Some types -> unify_args ("role " ^ r.role) types r.ref_args
        | None ->
            (* Unknown external role: arguments are unconstrained but
               variables must still be brought into scope. *)
            List.iter (function Avar v -> ignore (var_ty v) | Alit _ -> ()) r.ref_args
      in
      let name, args = e.head in
      unify_args ("head of " ^ name) (Hashtbl.find sigs name) args;
      List.iter unify_role_ref e.creds;
      Option.iter unify_role_ref e.elector;
      Option.iter unify_role_ref e.revoker;
      (* Constraint expression types. *)
      let rec expr_ty = function
        | Elit v -> Ty.of_value v
        | Evar v -> var_ty v
        | Ecall (fname, fargs) -> (
            let arg_tys = List.map expr_ty fargs in
            match callbacks.func_sig fname with
            | Some (Some expected, ret) ->
                if List.length expected <> List.length arg_tys then
                  fail "function %s: arity mismatch" fname;
                List.iter2 (unify_exn ("function " ^ fname)) expected arg_tys;
                ret
            | Some (None, ret) -> ret
            | None -> Ty.fresh ())
      in
      (* Two set types with different alphabets still compare/subset
         sensibly when one side is a literal (e.g. [{x} subset r] with
         [r : {rwx}]), so set-vs-set positions skip alphabet unification. *)
      let unify_setish ctx ta tb =
        match (Ty.repr ta, Ty.repr tb) with
        | Ty.Set _, Ty.Set _ -> ()
        | _ -> unify_exn ctx ta tb
      in
      let rec constr_check = function
        | Cand (a, b) | Cor (a, b) ->
            constr_check a;
            constr_check b
        | Cnot c | Cstar c -> constr_check c
        | Crel ((Eq | Ne), a, b) -> unify_setish "comparison" (expr_ty a) (expr_ty b)
        | Crel ((Lt | Le | Gt | Ge), a, b) ->
            unify_exn "ordering" (expr_ty a) Ty.Int;
            unify_exn "ordering" (expr_ty b) Ty.Int
        | Cin (e, group) -> (
            let ty = expr_ty e in
            match callbacks.group_element group with
            | Some elem_ty -> unify_exn ("group " ^ group) ty elem_ty
            | None -> ())
        | Csubset (a, b) -> unify_setish "subset" (expr_ty a) (expr_ty b)
        | Ccall (fname, fargs) -> ignore (expr_ty (Ecall (fname, fargs)))
        | Cbind (x, e) -> unify_exn ("binding of " ^ x) (var_ty x) (expr_ty e)
      in
      Option.iter constr_check e.constr
    in
    List.iter infer_entry (entries rolefile);
    let unresolved =
      Hashtbl.fold
        (fun role types acc ->
          let _, pending =
            List.fold_left
              (fun (i, acc) ty ->
                (i + 1, if Ty.is_ground ty then acc else (role, i) :: acc))
              (0, acc) types
          in
          pending)
        sigs []
    in
    Ok { sigs; unresolved = List.sort compare unresolved }
  with Fail msg -> Error (!cur_line, msg)

let infer ?callbacks rolefile =
  Result.map_error (fun (_, msg) -> msg) (infer_located ?callbacks rolefile)

let signature result role = Hashtbl.find_opt result.sigs role
