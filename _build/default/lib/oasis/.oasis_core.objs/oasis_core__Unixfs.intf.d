lib/oasis/unixfs.mli: Cert Oasis_sim Principal Service
