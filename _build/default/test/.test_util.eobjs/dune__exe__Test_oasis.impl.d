test/test_oasis.ml: Alcotest Array List Oasis_core Oasis_rdl Oasis_util Printf QCheck QCheck_alcotest Result
