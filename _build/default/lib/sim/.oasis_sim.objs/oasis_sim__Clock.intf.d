lib/sim/clock.mli: Engine
