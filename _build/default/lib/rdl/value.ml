type t = Int of int | Str of string | Set of string | Obj of string * string

let normalise_set s =
  let chars = List.init (String.length s) (String.get s) in
  let sorted = List.sort_uniq Char.compare chars in
  String.init (List.length sorted) (List.nth sorted)

let set_of_chars s = Set (normalise_set s)

let equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Str x, Str y -> String.equal x y
  | Set x, Set y -> String.equal x y
  | Obj (t1, i1), Obj (t2, i2) -> String.equal t1 t2 && String.equal i1 i2
  | (Int _ | Str _ | Set _ | Obj _), _ -> false

let rank = function Int _ -> 0 | Str _ -> 1 | Set _ -> 2 | Obj _ -> 3

let compare a b =
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | Str x, Str y -> String.compare x y
  | Set x, Set y -> String.compare x y
  | Obj (t1, i1), Obj (t2, i2) ->
      let c = String.compare t1 t2 in
      if c <> 0 then c else String.compare i1 i2
  | _ -> Int.compare (rank a) (rank b)

let as_set ctx = function
  | Set s -> s
  | Int _ | Str _ | Obj _ -> invalid_arg (ctx ^ ": expected a set value")

let set_subset a b =
  let a = as_set "Value.set_subset" a and b = as_set "Value.set_subset" b in
  String.for_all (fun c -> String.contains b c) a

let set_mem c = function
  | Set s -> String.contains s c
  | Int _ | Str _ | Obj _ -> invalid_arg "Value.set_mem: expected a set value"

let set_union a b =
  set_of_chars (as_set "Value.set_union" a ^ as_set "Value.set_union" b)

let set_inter a b =
  let b = as_set "Value.set_inter" b in
  let a = as_set "Value.set_inter" a in
  let buf = Buffer.create 8 in
  String.iter (fun c -> if String.contains b c then Buffer.add_char buf c) a;
  set_of_chars (Buffer.contents buf)

let set_diff a b =
  let b = as_set "Value.set_diff" b in
  let a = as_set "Value.set_diff" a in
  let buf = Buffer.create 8 in
  String.iter (fun c -> if not (String.contains b c) then Buffer.add_char buf c) a;
  set_of_chars (Buffer.contents buf)

let marshal = function
  | Int n -> "I" ^ string_of_int n
  | Str s -> "S" ^ s
  | Set s -> "E" ^ s
  | Obj (ty, id) -> Printf.sprintf "O%d:%s%s" (String.length ty) ty id

let unmarshal s =
  if String.length s = 0 then None
  else
    let body = String.sub s 1 (String.length s - 1) in
    match s.[0] with
    | 'I' -> Option.map (fun n -> Int n) (int_of_string_opt body)
    | 'S' -> Some (Str body)
    | 'E' -> Some (set_of_chars body)
    | 'O' -> (
        match String.index_opt body ':' with
        | None -> None
        | Some colon -> (
            match int_of_string_opt (String.sub body 0 colon) with
            | None -> None
            | Some tylen ->
                let rest = String.sub body (colon + 1) (String.length body - colon - 1) in
                if String.length rest < tylen then None
                else
                  Some
                    (Obj
                       ( String.sub rest 0 tylen,
                         String.sub rest tylen (String.length rest - tylen) ))))
    | _ -> None

let pp ppf = function
  | Int n -> Format.fprintf ppf "%d" n
  | Str s -> Format.fprintf ppf "%S" s
  | Set s -> Format.fprintf ppf "{%s}" s
  | Obj (ty, id) -> Format.fprintf ppf "@%s\"%s\"" ty id

let to_string v = Format.asprintf "%a" pp v
