examples/quickstart.mli:
