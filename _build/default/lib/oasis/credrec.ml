type cref = { index : int; magic : int }

type state = True | False | Unknown

type op = And | Or | Nand | Nor

type record = {
  mutable magic : int;
  mutable used : bool;
  mutable is_leaf : bool;
  mutable op : op;
  mutable n_parents : int;
  mutable p_true : int;
  mutable p_false : int;
  mutable p_unknown : int;
  mutable children : (cref * bool) list;  (* (child, edge negated) *)
  mutable st : state;
  mutable permanent : bool;
  mutable direct_use : bool;
  mutable auto_revoke : bool;
  mutable hooks : (state -> unit) list;
}

type table = {
  mutable slots : record array;
  mutable free : int list;
  mutable high_water : int;
}

let blank () =
  {
    magic = 0;
    used = false;
    is_leaf = true;
    op = And;
    n_parents = 0;
    p_true = 0;
    p_false = 0;
    p_unknown = 0;
    children = [];
    st = True;
    permanent = false;
    direct_use = false;
    auto_revoke = false;
    hooks = [];
  }

let create_table () = { slots = Array.init 64 (fun _ -> blank ()); free = []; high_water = 0 }

let get t r =
  if r.index < 0 || r.index >= Array.length t.slots then None
  else
    let slot = t.slots.(r.index) in
    if slot.used && slot.magic = r.magic then Some slot else None

let alloc t =
  match t.free with
  | i :: rest ->
      t.free <- rest;
      i
  | [] ->
      if t.high_water >= Array.length t.slots then begin
        let bigger = Array.init (2 * Array.length t.slots) (fun _ -> blank ()) in
        Array.blit t.slots 0 bigger 0 (Array.length t.slots);
        t.slots <- bigger
      end;
      let i = t.high_water in
      t.high_water <- t.high_water + 1;
      i

let fresh t =
  let i = alloc t in
  let slot = t.slots.(i) in
  slot.used <- true;
  slot.magic <- slot.magic + 1;
  slot.is_leaf <- true;
  slot.op <- And;
  slot.n_parents <- 0;
  slot.p_true <- 0;
  slot.p_false <- 0;
  slot.p_unknown <- 0;
  slot.children <- [];
  slot.st <- True;
  slot.permanent <- false;
  slot.direct_use <- false;
  slot.auto_revoke <- false;
  slot.hooks <- [];
  ({ index = i; magic = slot.magic }, slot)

(* State of a combining record from its counters (§4.8). *)
let computed_state slot =
  let base =
    match slot.op with
    | And | Nand ->
        if slot.p_false > 0 then False else if slot.p_unknown > 0 then Unknown else True
    | Or | Nor ->
        if slot.p_true > 0 then True else if slot.p_unknown > 0 then Unknown else False
  in
  match (slot.op, base) with
  | (And | Or), s -> s
  | (Nand | Nor), True -> False
  | (Nand | Nor), False -> True
  | (Nand | Nor), Unknown -> Unknown

let seen_through negated s =
  if not negated then s else match s with True -> False | False -> True | Unknown -> Unknown

(* Propagate a state change of [r] (already applied to its slot) into its
   children, recursively, firing hooks along the way. *)
let rec propagate t r slot ~old_state =
  if slot.st <> old_state then begin
    List.iter (fun hook -> hook slot.st) slot.hooks;
    (* Visit children; prune dangling edges as we go. *)
    let live_children =
      List.filter
        (fun (child_ref, negated) ->
          match get t child_ref with
          | None -> false
          | Some child ->
              update_counters child ~from:(seen_through negated old_state)
                ~into:(seen_through negated slot.st);
              recompute t child_ref child;
              true)
        slot.children
    in
    slot.children <- live_children
  end

and update_counters child ~from ~into =
  if from <> into then begin
    (match from with
    | True -> child.p_true <- child.p_true - 1
    | False -> child.p_false <- child.p_false - 1
    | Unknown -> child.p_unknown <- child.p_unknown - 1);
    match into with
    | True -> child.p_true <- child.p_true + 1
    | False -> child.p_false <- child.p_false + 1
    | Unknown -> child.p_unknown <- child.p_unknown + 1
  end

and recompute t child_ref child =
  if not child.permanent then begin
    let old_state = child.st in
    child.st <- computed_state child;
    propagate t child_ref child ~old_state
  end

let leaf t ?(state = True) () =
  let r, slot = fresh t in
  slot.st <- state;
  r

let parent_contribution t (parent_ref, negated) =
  match get t parent_ref with
  | Some p -> seen_through negated p.st
  | None -> seen_through negated False

let add_parent t ~child ?(negated = false) parent_ref =
  match get t child with
  | None -> ()
  | Some child_slot ->
      if child_slot.is_leaf then invalid_arg "Credrec.add_parent: child is a leaf";
      (match get t parent_ref with
      | Some p -> p.children <- (child, negated) :: p.children
      | None -> ());
      child_slot.n_parents <- child_slot.n_parents + 1;
      (match parent_contribution t (parent_ref, negated) with
      | True -> child_slot.p_true <- child_slot.p_true + 1
      | False -> child_slot.p_false <- child_slot.p_false + 1
      | Unknown -> child_slot.p_unknown <- child_slot.p_unknown + 1);
      recompute t child child_slot

let combine_fresh t ?(op = And) parents =
  let r, slot = fresh t in
  slot.is_leaf <- false;
  slot.op <- op;
  slot.st <- computed_state slot;
  List.iter (fun (p, negated) -> add_parent t ~child:r ~negated p) parents;
  r

let combine t ?(op = And) parents =
  match (op, parents) with
  | And, [ (single, false) ] -> single (* §4.7's one-record optimisation *)
  | _ -> combine_fresh t ~op parents

let state t r = match get t r with Some slot -> slot.st | None -> False

let is_permanent t r = match get t r with Some slot -> slot.permanent | None -> true

let live t r = get t r <> None

let set_leaf t r new_state =
  match get t r with
  | None -> ()
  | Some slot ->
      if (not slot.permanent) && slot.st <> new_state then begin
        if not slot.is_leaf then invalid_arg "Credrec.set_leaf: not a leaf record";
        let old_state = slot.st in
        slot.st <- new_state;
        propagate t r slot ~old_state
      end

let make_permanent t r =
  match get t r with None -> () | Some slot -> slot.permanent <- true

let invalidate t r =
  match get t r with
  | None -> ()
  | Some slot ->
      if not slot.permanent then begin
        let old_state = slot.st in
        slot.st <- False;
        slot.permanent <- true;
        propagate t r slot ~old_state
      end

let set_direct_use t r v = match get t r with Some slot -> slot.direct_use <- v | None -> ()
let set_auto_revoke t r v = match get t r with Some slot -> slot.auto_revoke <- v | None -> ()

let on_change t r hook =
  match get t r with Some slot -> slot.hooks <- hook :: slot.hooks | None -> ()

let clear_hooks t r = match get t r with Some slot -> slot.hooks <- [] | None -> ()

(* Forced-input analysis for GC: for And/Nand a permanently-False parent
   forces the child; for Or/Nor a permanently-True parent does. *)
let forcing_input op = match op with And | Nand -> False | Or | Nor -> True

let gc_sweep t =
  let reclaimed = ref 0 in
  (* Phase 0: unlink dangling child edges left by deletions in earlier
     sweeps ("a periodic sweep algorithm unlinks these references", §4.8) —
     a record whose only children are dead becomes uninteresting below. *)
  for i = 0 to t.high_water - 1 do
    let slot = t.slots.(i) in
    if slot.used && slot.children <> [] then
      slot.children <- List.filter (fun (child_ref, _) -> get t child_ref <> None) slot.children
  done;
  (* Phase 1: unlink edges whose parent is permanent, baking the frozen
     contribution into the child. *)
  for i = 0 to t.high_water - 1 do
    let parent = t.slots.(i) in
    if parent.used && parent.permanent && parent.children <> [] then begin
      let parent_ref = { index = i; magic = parent.magic } in
      List.iter
        (fun (child_ref, negated) ->
          match get t child_ref with
          | None -> ()
          | Some child ->
              let contribution = seen_through negated parent.st in
              child.n_parents <- child.n_parents - 1;
              (match contribution with
              | True -> child.p_true <- child.p_true - 1
              | False -> child.p_false <- child.p_false - 1
              | Unknown -> child.p_unknown <- child.p_unknown - 1);
              if contribution = forcing_input child.op then begin
                (* The frozen input pins the child's output forever. *)
                let forced =
                  match child.op with And | Or -> contribution | Nand | Nor ->
                    seen_through true contribution
                in
                if not child.permanent then begin
                  let old_state = child.st in
                  child.st <- forced;
                  child.permanent <- true;
                  propagate t child_ref child ~old_state
                end
              end
              else recompute t child_ref child)
        parent.children;
      parent.children <- [];
      ignore parent_ref
    end
  done;
  (* Phase 2: delete records that can never again change an observable
     answer: a dangling reference reads permanently-False, so a record may
     go only when every future read would already be False (revoked) or when
     nobody can read it (uninteresting: no certificate embeds it, no
     children, no notify hooks). *)
  for i = 0 to t.high_water - 1 do
    let slot = t.slots.(i) in
    if slot.used && slot.children = [] && slot.hooks = [] then begin
      let uninteresting = not slot.direct_use in
      let dead_permanent = slot.permanent && (slot.st = False || not slot.direct_use) in
      if uninteresting || dead_permanent then begin
        slot.used <- false;
        slot.hooks <- [];
        slot.children <- [];
        t.free <- i :: t.free;
        incr reclaimed
      end
    end
  done;
  !reclaimed

let live_records t =
  let n = ref 0 in
  for i = 0 to t.high_water - 1 do
    if t.slots.(i).used then incr n
  done;
  !n

let marshal_ref r = Printf.sprintf "%x.%x" r.index r.magic

let unmarshal_ref s =
  match String.index_opt s '.' with
  | None -> None
  | Some dot -> (
      let a = String.sub s 0 dot and b = String.sub s (dot + 1) (String.length s - dot - 1) in
      match (int_of_string_opt ("0x" ^ a), int_of_string_opt ("0x" ^ b)) with
      | Some index, Some magic -> Some { index; magic }
      | _ -> None)

let pp_state ppf s =
  Format.pp_print_string ppf (match s with True -> "True" | False -> "False" | Unknown -> "Unknown")
