(** Baseline schemes OASIS is evaluated against (DESIGN.md experiments E1
    and E2).

    {b Capability chaining} (fig 4.4, after Redell): delegation indirects
    through the delegator's capability; use requires validating {e every}
    link of the chain, so validation cost grows linearly with delegation
    depth, and revocation breaks the chain at the severed link.

    {b Refresh-based capabilities} (§4.14's comparison with Lampson et al.):
    capabilities carry a lifetime and must be re-requested before expiry, so
    background traffic is proportional to the number of live capabilities
    regardless of whether any revocation happens; revocation latency is
    bounded by the lifetime. *)

type value = Oasis_rdl.Value.t

module Chain : sig
  type issuer

  type cap

  val create_issuer : ?sig_length:int -> seed:int64 -> unit -> issuer

  val issue : issuer -> holder:string -> role:string -> args:value list -> cap
  (** A root capability. *)

  val delegate : issuer -> cap -> to_:string -> cap
  (** Extend the chain by one link (the issuing service must countersign,
      as in I-Cap). *)

  val validate : issuer -> cap -> bool
  (** Walk and verify the whole chain: O(depth) signature checks. *)

  val revoke : issuer -> cap -> unit
  (** Break the chain at this link: this capability and everything
      delegated from it stop validating. *)

  val depth : cap -> int
  val crypto_checks : issuer -> int
end

module Refresh : sig
  type issuer

  type cap = { rc_holder : string; rc_role : string; rc_expires : float; rc_sig : string }

  val create_issuer :
    ?sig_length:int -> ?lifetime:float -> seed:int64 -> Oasis_sim.Net.t -> Oasis_sim.Net.host -> issuer

  val issue : issuer -> holder:string -> role:string -> cap

  val valid : issuer -> at:float -> cap -> bool

  val revoke : issuer -> holder:string -> role:string -> unit
  (** Takes effect when the current capability expires (no push). *)

  val start_refresher :
    issuer -> client_host:Oasis_sim.Net.host -> holder:string -> role:string ->
    on_refresh:(cap option -> unit) -> unit
  (** Client-side loop: re-request the capability every [lifetime]·0.8 over
      the network (counted in Net stats under ["refresh"]); stops when the
      issuer refuses (revoked). *)

  val lifetime : issuer -> float
end
