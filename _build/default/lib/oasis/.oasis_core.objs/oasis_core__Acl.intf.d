lib/oasis/acl.mli:
