(** Write-ahead log with checksum framing and group commit.

    Records are opaque strings framed as

    {v [length: 8 hex chars][SipHash-2-4 of payload: 16 hex chars][payload] v}

    and appended to one {!Disk} file.  The checksum key is derived from the
    file name — it provides {e integrity} against torn/corrupt tails, not
    secrecy.

    {b Group commit}: appends land in the device's write buffer immediately,
    but the fsync making them durable is coalesced — it fires when the
    pending bytes cross [flush_bytes], or on a timer [flush_interval] after
    the first uncommitted append, whichever comes first (mirroring the
    broker's heartbeat batching: many logical writes, one physical flush).
    [fsync_each:true] degrades to one fsync per append, the baseline the
    e17 experiment compares against.

    {b Recovery} scans the durable bytes and stops cleanly at the first
    record that is incomplete (torn) or fails its checksum, yielding a
    prefix of the appended records; it never raises on corrupt input. *)

type t

val create :
  Disk.t ->
  file:string ->
  ?flush_interval:float ->
  ?flush_bytes:int ->
  ?fsync_each:bool ->
  unit ->
  t
(** Defaults: [flush_interval] 0.05 s, [flush_bytes] 16384, [fsync_each]
    false. *)

val file : t -> string
val disk : t -> Disk.t

val append : t -> ?on_durable:(unit -> unit) -> string -> unit
(** Append one record.  [on_durable] fires when the record's group commit
    completes; after a crash, callbacks for unflushed records never fire. *)

val on_append : t -> (string -> unit) option -> unit
(** Install (or clear) the {e ship observer}: it sees every payload entering
    the log through {!append} — the authoritative record stream a
    replication layer forwards to followers.  Payloads arriving via
    {!follower_append} are invisible to it (they already came from the
    stream). *)

val follower_append : t -> string -> unit
(** Append a record that arrived {e from} the stream (a replicated copy of
    a primary's append): same framing, buffering and group commit as
    {!append}, but the ship observer is not notified, so a follower never
    re-ships what it was shipped. *)

val flush : t -> unit
(** Force the group commit now (no-op when nothing is pending). *)

val sync : t -> (unit -> unit) -> unit
(** Run the callback once everything appended so far is durable (flushes
    if needed; fires immediately when nothing is pending). *)

val truncate : t -> unit
(** Drop the log's contents (after a snapshot made them redundant). *)

val rewrite : t -> string list -> (unit -> unit) -> unit
(** Atomically replace the log's contents with exactly [records]
    (compaction).  Crash-safe: until the atomic write completes the old log
    remains.  Buffered appends may race a rewrite (compacting callers
    re-include them in [records]; appends landing while the replace is in
    flight survive it), but pending {!append}[ ~on_durable] callbacks may
    not — their commit bookkeeping would be forgotten, dropping acks — so
    the call raises [Invalid_argument] unless the caller {!sync}ed first. *)

val appended : t -> int
(** Records appended over this log's lifetime (not reset by truncation). *)

val recover : t -> string list
(** Decode the durable contents; records the scan in [store.recover]
    stats.  Use {!Disk.scan_delay} to charge the recovery time. *)

val decode : string -> string list
(** Pure decoding of a framed byte string (the recovery scan): the longest
    valid prefix of records.  Total on arbitrary input.  Checksums are
    validated against the key for file name [""] only when decoded via
    {!decode_with}; this variant is keyed by [key_for ""]. *)

val decode_with : key:string -> string -> string list
(** [decode_with ~key:file bytes] decodes with the checksum key of [file];
    {!recover} is [decode_with ~key:(file t) (Disk.read ...)]. *)

val frame_with : key:string -> string -> string
(** Frame one record under the checksum key of the named file; exposed for
    the corruption property tests. *)
