module Service = Oasis_core.Service
module Cert = Oasis_core.Cert

type t = {
  b_service : Service.t;
  b_segments : (int, Buffer.t) Hashtbl.t;
  b_owners : (int, string) Hashtbl.t;  (* segment -> holder vci string *)
  mutable b_next : int;
}

let rolefile = {|
def Segment(owner) owner: String
|}

let create net host registry ~name =
  match Service.create net host registry ~name ~rolefile () with
  | Error e -> Error e
  | Ok service ->
      Ok { b_service = service; b_segments = Hashtbl.create 64; b_owners = Hashtbl.create 64; b_next = 0 }

let name t = Service.name t.b_service
let service t = t.b_service

let attach t ~client =
  Service.issue_arbitrary t.b_service ~client ~roles:[ "Segment" ]
    ~args:[ Oasis_rdl.Value.Str (Oasis_core.Principal.vci_to_string client) ]

let check t ~cert =
  match Service.validate t.b_service ~client:cert.Cert.holder ~need_role:"Segment" cert with
  | Ok () -> Ok (Oasis_core.Principal.vci_to_string cert.Cert.holder)
  | Error f -> Error (Format.asprintf "segment access: %a" Service.pp_failure f)

let create_segment t ~cert =
  match check t ~cert with
  | Error e -> Error e
  | Ok owner ->
      let id = t.b_next in
      t.b_next <- id + 1;
      Hashtbl.replace t.b_segments id (Buffer.create 64);
      Hashtbl.replace t.b_owners id owner;
      Ok id

let owned t ~owner seg =
  match Hashtbl.find_opt t.b_owners seg with
  | Some o -> String.equal o owner
  | None -> false

let write t ~cert ~seg ~off data =
  match check t ~cert with
  | Error e -> Error e
  | Ok owner -> (
      if not (owned t ~owner seg) then Error "segment not owned by this client"
      else
        match Hashtbl.find_opt t.b_segments seg with
        | None -> Error "no such segment"
        | Some buf ->
            let existing = Buffer.contents buf in
            let len = max (String.length existing) (off + String.length data) in
            let merged =
              String.init len (fun i ->
                  if i >= off && i < off + String.length data then data.[i - off]
                  else if i < String.length existing then existing.[i]
                  else '\x00')
            in
            Buffer.clear buf;
            Buffer.add_string buf merged;
            Ok ())

let read t ~cert ~seg =
  match check t ~cert with
  | Error e -> Error e
  | Ok owner -> (
      if not (owned t ~owner seg) then Error "segment not owned by this client"
      else
        match Hashtbl.find_opt t.b_segments seg with
        | None -> Error "no such segment"
        | Some buf -> Ok (Buffer.contents buf))

let segment_count t = Hashtbl.length t.b_segments

let bytes_stored t = Hashtbl.fold (fun _ buf acc -> acc + Buffer.length buf) t.b_segments 0
