test/test_events.ml: Alcotest List Oasis_events Oasis_rdl Oasis_sim Option
