module Value = Oasis_rdl.Value
module Ast = Oasis_rdl.Ast
module Eval = Oasis_rdl.Eval
module Parser = Oasis_rdl.Parser
module Infer = Oasis_rdl.Infer
module Analyze = Oasis_rdl.Analyze
module Bitset = Oasis_util.Bitset
module Signing = Oasis_util.Signing
module Prng = Oasis_util.Prng
module Cache = Oasis_util.Cache
module Pretty = Oasis_rdl.Pretty
module Stats = Oasis_sim.Stats
module Trace = Oasis_sim.Trace
module Net = Oasis_sim.Net
module Engine = Oasis_sim.Engine
module Clock = Oasis_sim.Clock
module Broker = Oasis_events.Broker
module Event = Oasis_events.Event
module Disk = Oasis_store.Disk
module Wal = Oasis_store.Wal
module Snapshot = Oasis_store.Snapshot
module Hex = Oasis_util.Hex

type value = Value.t

type failure =
  | Wrong_client
  | Forged
  | Wrong_context
  | Insufficient
  | Revoked
  | Unknown_state

let pp_failure ppf f =
  Format.pp_print_string ppf
    (match f with
    | Wrong_client -> "wrong-client"
    | Forged -> "forged"
    | Wrong_context -> "wrong-context"
    | Insufficient -> "insufficient-rights"
    | Revoked -> "revoked"
    | Unknown_state -> "unknown-state")

type audit_kind = Fraud | Erroneous | Revocation_denied | Entry | Delegation | Revocation | Exit

type audit_entry = { at : float; kind : audit_kind; detail : string }

(* A peer link: the local face of another service (fig 4.8): one broker
   session plus the external records mirroring that peer's credential
   records. *)
type peer_link = {
  pl_peer : string;
  mutable pl_session : Broker.session option;
  mutable pl_connecting : bool;
  mutable pl_queued : (Broker.session -> unit) list;
  pl_externals : (string, Credrec.cref) Hashtbl.t;  (* remote ref -> local surrogate *)
  mutable pl_batch_reg : bool;  (* ModifiedBatch registration installed *)
  pl_reread_pending : (string, unit) Hashtbl.t;  (* keys awaiting post-heal reread *)
  mutable pl_rereading : bool;  (* a batched reread is in flight / scheduled *)
  mutable pl_bound_host : string;
      (* host the live session's broker runs on; when the peer's registry
         entry moves to another host (replica failover, see {!Replica}) the
         stale session can never heal and the link must rebind *)
  mutable pl_retargeting : bool;  (* a stale-session registry watch is scheduled *)
}

(* A compiled residual membership rule (§4.7): either a constant or a
   credential record seen through an optional negation. *)
type compiled = Const of bool | Ref of Credrec.cref * bool  (* negated *)

(* --- durable-state plane (§4.11 databases + issued memberships) ---

   With [~disk] the service journals the facts it promises to remember
   across failures — §4.11's hire/fire databases (the blacklist) and the
   certificates it has issued — to a write-ahead log on simulated stable
   storage, checkpointed by snapshots.  What a certificate's validity
   {e depends on} is recorded as a small dependency list so recovery can
   re-materialise the credential-record subgraph backing issued
   certificates; delegation ties and group-derived residuals are NOT
   persisted (a recovered record that depended on them reads the dangling
   reference as permanently False — fail closed, per the reference-magic
   convention). *)

type dep =
  | Dext of string * string  (* issuing peer service, remote record key *)
  | Dloc of string  (* key of a local record (itself issued/durable) *)

type issued = {
  mutable i_alive : bool;  (* False once explicitly invalidated *)
  i_deps : dep list;
  i_rbrs : (string * string * string) list;
      (* (role, marshalled args, revoker role): §4.11 revocation arms to
         re-create on recovery *)
}

type durable = {
  du_disk : Disk.t;
  du_wal : Wal.t;
  du_snap : Snapshot.t;
  du_snapshot_every : int;
  du_issued : (string, issued) Hashtbl.t;  (* marshalled local ref -> record *)
  mutable du_appends : int;  (* WAL appends since the last snapshot *)
  mutable du_tail : string list;
      (* newest-first records appended since the last checkpoint's
         serialize point — exactly what the log must still hold once that
         checkpoint's snapshot is durable *)
  mutable du_compacting : bool;  (* a snapshot+rewrite cycle is in flight *)
}

type t = {
  sv_net : Net.t;
  sv_host : Net.host;
  sv_registry : registry;
  sv_name : string;
  sv_rolefile_id : string;
  sv_rolefile : Ast.rolefile;
  sv_sigs : Infer.result;
  sv_role_bits : (string * int) list;
  sv_secrets : Signing.Rolling.t;
  sv_sig_length : int;
  sv_cache : bool;
  sv_compound : bool;
  sv_fixpoint : bool;
  sv_table : Credrec.table;
  sv_groups : (string, Group.t) Hashtbl.t;
  sv_funcs : (string * (value list -> (value, string) result)) list;
  sv_broker : Broker.server;
  sv_peers : (string, peer_link) Hashtbl.t;
  sv_notifying : (string, unit) Hashtbl.t;  (* local refs armed for Modified events *)
  sv_family : (string, unit) Hashtbl.t;
      (* sibling shards of the same logical service (see {!Shard}): their
         names satisfy unqualified rolefile references, their certificates
         are accepted as revoker credentials after validation at the
         issuing sibling.  Empty for an unsharded service. *)
  (* role-based revocation state (§4.11) *)
  sv_rbr : (string * string, (Ast.role_ref * Credrec.cref) list ref) Hashtbl.t;
      (* (role, marshalled args) -> revoker role + record, per live membership *)
  sv_blacklist : (string * string, unit) Hashtbl.t;
  mutable sv_audit : audit_entry list;
  sv_sig_cache : (string, unit) Cache.t;
  sv_batch : bool;
  sv_policy_hash : int;
  sv_pending_mods : (string, string) Hashtbl.t;  (* local ref -> latest state *)
  sv_pending_ctx : (string, Trace.ctx) Hashtbl.t;
      (* trace context ambient when each pending mod was recorded, so the
         digest flush can join the revocation trace that caused it *)
  sv_residuals : (string, compiled) Cache.t;
  sv_durable : durable option;
  mutable sv_repl_sync : ((unit -> unit) -> unit) option;
      (* replication quorum hook (see {!Replica}): when set, client acks
         wait for a write quorum instead of just the local group commit,
         and log compaction is disabled so the WAL stays in the replica
         group's global stream coordinates *)
  mutable sv_auto_recover : bool;
      (* run [recover] automatically from the host-restart hook; a replica
         group disables this and drives recovery through its epoch/promote
         protocol instead *)
  mutable sv_crypto_checks : int;
  mutable sv_cache_hits : int;
}

and registry = (string, t) Hashtbl.t

let create_registry () : registry = Hashtbl.create 16
let find_service reg n : t option = Hashtbl.find_opt reg n

let services reg =
  Hashtbl.fold (fun _ t acc -> t :: acc) reg []
  |> List.sort (fun a b -> String.compare a.sv_name b.sv_name)

let name t = t.sv_name
let host t = t.sv_host

let add_sibling t n = if not (String.equal n t.sv_name) then Hashtbl.replace t.sv_family n ()

(* A service name that unqualified rolefile references resolve to: the
   service itself, or any sibling shard of the same logical service. *)
let in_family t n = String.equal n t.sv_name || Hashtbl.mem t.sv_family n
let table t = t.sv_table
let broker t = t.sv_broker
let rolefile t = t.sv_rolefile
let registry t = t.sv_registry
let role_bits t = t.sv_role_bits
let crypto_checks t = t.sv_crypto_checks
let cache_hits t = t.sv_cache_hits
let audit_log t = t.sv_audit
let gc t = Credrec.gc_sweep t.sv_table

let now t = Clock.read (Net.host_clock t.sv_host)

let audit t kind detail = t.sv_audit <- { at = now t; kind; detail } :: t.sv_audit

let stats t = Net.stats t.sv_net
let tracer t = Net.trace t.sv_net

(* --- write-ahead-log records for the durable plane ---

   One record per logged transition; fields are separated by ['\x1f'],
   list items by ['\x1e'], item subfields by ['\x1d'].  Free-form bytes
   (role names, marshalled argument strings, peer names) are hex-encoded
   so they cannot collide with the separators; record keys are already
   separator-free ([Credrec.marshal_ref] is hex plus a dot).  The grammar:

   - [F role args]       fire: blacklist the role instance (§4.11)
   - [H role args]       re-hire: drop the blacklist entry
   - [I key deps rbrs]   certificate issued over record [key]
   - [V key]             record [key] explicitly invalidated

   A snapshot payload is the same records (current blacklist, then each
   issued record followed by its [V] if dead) joined with ['\x1c'];
   replaying the full log over a snapshot is idempotent because every
   record is an upsert. *)

let rec_fire (role, argskey) = String.concat "\x1f" [ "F"; Hex.encode role; Hex.encode argskey ]
let rec_hire (role, argskey) = String.concat "\x1f" [ "H"; Hex.encode role; Hex.encode argskey ]
let rec_invalidate key = String.concat "\x1f" [ "V"; key ]

let enc_dep = function
  | Dext (peer, rkey) -> String.concat "\x1d" [ "E"; Hex.encode peer; rkey ]
  | Dloc key -> String.concat "\x1d" [ "L"; key ]

let dec_dep s =
  match String.split_on_char '\x1d' s with
  | [ "E"; peer; rkey ] -> Option.map (fun p -> Dext (p, rkey)) (Hex.decode peer)
  | [ "L"; key ] -> Some (Dloc key)
  | _ -> None

let enc_rbr (role, argskey, revoker) =
  String.concat "\x1d" [ Hex.encode role; Hex.encode argskey; Hex.encode revoker ]

let dec_rbr s =
  match String.split_on_char '\x1d' s with
  | [ role; argskey; revoker ] ->
      let ( let* ) = Option.bind in
      let* role = Hex.decode role in
      let* argskey = Hex.decode argskey in
      let* revoker = Hex.decode revoker in
      Some (role, argskey, revoker)
  | _ -> None

let rec_issue key deps rbrs =
  String.concat "\x1f"
    [
      "I";
      key;
      String.concat "\x1e" (List.map enc_dep deps);
      String.concat "\x1e" (List.map enc_rbr rbrs);
    ]

let split_items s = if s = "" then [] else String.split_on_char '\x1e' s

(* Apply one log record to the durable mirror (blacklist + issued table).
   Total and idempotent: recovery replays snapshot then log in order. *)
let apply_record t du line =
  match String.split_on_char '\x1f' line with
  | [ "F"; role; argskey ] -> (
      match (Hex.decode role, Hex.decode argskey) with
      | Some role, Some argskey -> Hashtbl.replace t.sv_blacklist (role, argskey) ()
      | _ -> ())
  | [ "H"; role; argskey ] -> (
      match (Hex.decode role, Hex.decode argskey) with
      | Some role, Some argskey -> Hashtbl.remove t.sv_blacklist (role, argskey)
      | _ -> ())
  | [ "I"; key; deps; rbrs ] ->
      let deps = List.filter_map dec_dep (split_items deps) in
      let rbrs = List.filter_map dec_rbr (split_items rbrs) in
      Hashtbl.replace du.du_issued key { i_alive = true; i_deps = deps; i_rbrs = rbrs }
  | [ "V"; key ] -> (
      match Hashtbl.find_opt du.du_issued key with
      | Some i -> i.i_alive <- false
      | None -> ())
  | _ -> ()

(* Dead issued records are dropped from the checkpoint (and purged from
   the in-memory mirror), so the snapshot stays O(live state) under churn
   instead of O(history).  Dropping is safe: a dropped identity is never
   restored, so references to it dangle and read permanently False — the
   paper's licence to delete records whose value is false forever — and a
   later fresh allocation of the slot bumps the magic past the dropped
   identity, so old references cannot resurrect against new records. *)
let serialize_mirror t du =
  let dead =
    Hashtbl.fold (fun key i acc -> if i.i_alive then acc else key :: acc) du.du_issued []
  in
  List.iter (Hashtbl.remove du.du_issued) dead;
  let fires =
    Hashtbl.fold (fun key () acc -> rec_fire key :: acc) t.sv_blacklist []
    |> List.sort String.compare
  in
  let issues =
    Hashtbl.fold (fun key i acc -> rec_issue key i.i_deps i.i_rbrs :: acc) du.du_issued []
    |> List.sort String.compare
  in
  String.concat "\x1c" (fires @ issues)

(* Checkpoint: serialize the mirror (covering every record up to this
   instant), save it, then compact the log down to the records appended
   since the serialize point — [du_tail], which keeps accumulating while
   the snapshot write is in flight, and whose racing appends also survive
   the rewrite's atomic replace by {!Disk.write_atomic}'s append-preserving
   semantics.  Crash windows are safe at every step: before the snapshot
   is durable the old snapshot + old log recover; between snapshot and
   rewrite the new snapshot + old log recover (the log is a contiguous
   history suffix reaching past the snapshot point, so in-order replay
   over the snapshot converges on the pre-crash state). *)
let maybe_snapshot t du =
  (* Replicated services never compact: the WAL is the replica group's
     shipped record stream, and every member's log must stay a prefix of it
     in GLOBAL coordinates — a compacted primary and an uncompacted backup
     would disagree about what "record #n" is.  Recovery is O(history)
     for them; the replica protocol (tail fetch at promotion) depends on
     exactly that full history being present. *)
  if t.sv_repl_sync = None && du.du_appends >= du.du_snapshot_every && not du.du_compacting
  then begin
    du.du_appends <- 0;
    du.du_compacting <- true;
    du.du_tail <- [];
    Snapshot.save du.du_snap (serialize_mirror t du) (fun () ->
        Wal.rewrite du.du_wal (List.rev du.du_tail) (fun () -> du.du_compacting <- false))
  end

let persist_line t du line =
  Wal.append du.du_wal line;
  du.du_tail <- line :: du.du_tail;
  du.du_appends <- du.du_appends + 1;
  maybe_snapshot t du

let persist_fire t key =
  match t.sv_durable with Some du -> persist_line t du (rec_fire key) | None -> ()

let persist_hire t key =
  match t.sv_durable with Some du -> persist_line t du (rec_hire key) | None -> ()

(* Fire/re-hire acks must not outrun the WAL: if the service crashed in the
   group-commit window after replying Ok, recovery would resurrect a
   membership the revoker was told is gone.  So success replies ride the
   next fsync; a crash that loses the record also swallows the ack.  Under
   replication the bar is higher still: the ack waits for a write quorum
   of the replica group (the [sv_repl_sync] hook), so even losing the
   primary's disk entirely cannot lose an acknowledged transition. *)
let ack_when_durable t k =
  match t.sv_repl_sync with
  | Some quorum -> quorum k
  | None -> (
      match t.sv_durable with None -> k () | Some du -> Wal.sync du.du_wal k)

(* --- replication hooks (the {!Replica} module drives these) --- *)

let set_replication t ~sync = t.sv_repl_sync <- Some sync

let set_ship t obs =
  match t.sv_durable with Some du -> Wal.on_append du.du_wal obs | None -> ()

let set_auto_recover t b = t.sv_auto_recover <- b

let durable_sync t k =
  match t.sv_durable with None -> k () | Some du -> Wal.sync du.du_wal k

let follower_append t line =
  (* A record arriving FROM the replication stream: journal it verbatim
     (same framing and group commit), but bypass the durable-mirror
     bookkeeping — a backup's in-memory state is rebuilt from the log at
     promotion time, not maintained incrementally — and bypass the ship
     observer, so a follower never re-ships. *)
  match t.sv_durable with None -> () | Some du -> Wal.follower_append du.du_wal line

let durable_log_records t =
  match t.sv_durable with None -> [] | Some du -> Wal.recover du.du_wal

let durable_log_rewrite t records k =
  (* Replace the WAL wholesale with a reconciled stream prefix (divergence
     repair / promotion adoption).  Callers guarantee the group-commit
     buffer is empty (everything durable) before rewriting, so the atomic
     replace cannot race a buffered append.  Mirror bookkeeping is not
     rebuilt here: only replicated services rewrite, and they never
     compact, so the counters are inert. *)
  match t.sv_durable with None -> k () | Some du -> Wal.rewrite du.du_wal records k

let reregister t = Hashtbl.replace t.sv_registry t.sv_name t

let registered t =
  match find_service t.sv_registry t.sv_name with Some s -> s == t | None -> false

(* Only records backing issued certificates are logged: an invalidation of
   anything else either cascades from a logged fact at recovery or is
   reconstructed conservatively (dangling -> False). *)
let persist_invalidate t cref =
  match t.sv_durable with
  | None -> ()
  | Some du -> (
      let key = Credrec.marshal_ref cref in
      match Hashtbl.find_opt du.du_issued key with
      | Some i when i.i_alive ->
          i.i_alive <- false;
          persist_line t du (rec_invalidate key)
      | _ -> ())

(* Root a revocation trace at an invalidation entry point: the cascade runs
   inside the span, so the record-change hooks, the buffered digest, the
   broker flush and the peers' applies all inherit its context and the span
   tree reconstructs the paper's end-to-end revocation path. *)
let with_revocation_span t ~reason f =
  let tr = tracer t in
  let sp = Trace.start tr "revoke.invalidate" in
  Trace.add_attr sp "reason" reason;
  Fun.protect
    ~finally:(fun () -> Trace.finish tr sp)
    (fun () -> Trace.with_ctx tr (Some (Trace.ctx_of sp)) f)

let invalidate_traced t ~reason cref =
  with_revocation_span t ~reason (fun () -> Credrec.invalidate t.sv_table cref);
  persist_invalidate t cref

let roll_secret t =
  Signing.Rolling.roll t.sv_secrets;
  Cache.clear t.sv_sig_cache

let sig_cache_size t = Cache.length t.sv_sig_cache
let residual_cache_size t = Cache.length t.sv_residuals

let group t gname =
  match Hashtbl.find_opt t.sv_groups gname with
  | Some g -> g
  | None ->
      let g = Group.create t.sv_table gname in
      Hashtbl.replace t.sv_groups gname g;
      g

(* --- creation --- *)

let assign_role_bits rolefile =
  let from_entries = Ast.defined_roles rolefile in
  let from_defs = List.map (fun d -> d.Ast.decl_name) (Ast.defs rolefile) in
  let all = List.sort_uniq String.compare (from_entries @ from_defs) in
  (* Deterministic mapping fixed at initialisation (§4.3). *)
  if List.length all > 62 then Error "too many roles for the role bit-set (max 62)"
  else Ok (List.mapi (fun i r -> (r, i)) all)

(* Forward reference: [recover] needs the whole credential pipeline
   (external_record, reread, issue plumbing) defined below, but the restart
   hook is registered at creation time. *)
let recover_ref : (t -> unit) ref = ref (fun _ -> ())

(* Federation-wide lint hook.  [Federation_lint] depends on this module
   (its [of_registry] reads registered services), so registration gating on
   the OASIS00n codes cannot call it directly; the linter installs itself
   here at link time.  Until then the hook reports nothing, which matches
   the pre-federation-lint behaviour. *)
let federation_linter :
    (registry -> name:string -> rolefile:Ast.rolefile -> Analyze.diag list) ref =
  ref (fun _ ~name:_ ~rolefile:_ -> [])

let set_federation_linter f = federation_linter := f

let create net host reg ~name:sv_name ?(rolefile_id = "main") ~rolefile ?(funcs = [])
    ?resolve_literal ?(sig_length = 16) ?(cache_validation = true)
    ?(compound_certificates = true) ?(fixpoint_entry = false) ?(heartbeat = 1.0)
    ?(batch_notifications = true) ?(sig_cache_cap = 1024) ?disk ?(snapshot_every = 128)
    ?(lint = `Warn) ?(register = true) () =
  match Parser.parse_result ?resolve_literal rolefile with
  | Error e -> Error e
  | Ok parsed -> (
      let callbacks =
        {
          Infer.no_callbacks with
          Infer.external_sig =
            (fun ~service ~role ->
              match find_service reg service with
              | None -> None
              | Some peer ->
                  Option.map (fun tys -> tys) (Infer.signature peer.sv_sigs role));
        }
      in
      match Infer.infer ~callbacks parsed with
      | Error e -> Error ("type error: " ^ e)
      | Ok sigs -> (
          let lint_gate =
            match lint with
            | `Off -> None
            | (`Warn | `Strict) as mode ->
                let context =
                  {
                    Analyze.default_context with
                    Analyze.infer = callbacks;
                    known_funcs = Some (List.map fst funcs @ [ "unixacl"; "acl" ]);
                  }
                in
                let diags = Analyze.check ~file:sv_name ~context parsed in
                (* Federation-wide codes (OASIS001-008) over the already
                   registered peers plus this service, keeping only the
                   diagnostics anchored at this service: joining must not
                   fail on a defect that is a peer's alone. *)
                let diags =
                  if register then
                    diags
                    @ List.filter
                        (fun d -> String.equal d.Analyze.file sv_name)
                        (!federation_linter reg ~name:sv_name ~rolefile:parsed)
                  else diags
                in
                let gating = List.filter (Analyze.gates ~strict:(mode = `Strict)) diags in
                (match gating with
                | [] ->
                    (* Non-gating findings are logged, not fatal. *)
                    List.iter
                      (fun d -> Logs.warn (fun m -> m "%s" (Analyze.diag_to_string d)))
                      diags;
                    None
                | d :: _ ->
                    Some
                      (Printf.sprintf "lint: %s%s" (Analyze.diag_to_string d)
                         (match List.length gating with
                         | 1 -> ""
                         | n -> Printf.sprintf " (and %d more issue(s))" (n - 1))))
          in
          match lint_gate with
          | Some e -> Error e
          | None -> (
          match assign_role_bits parsed with
          | Error e -> Error e
          | Ok bits ->
              let prng = Prng.create (Int64.of_int (Hashtbl.hash sv_name + 7)) in
              let durable =
                Option.map
                  (fun d ->
                    {
                      du_disk = d;
                      du_wal = Wal.create d ~file:("svc." ^ sv_name ^ ".wal") ();
                      du_snap = Snapshot.create d ~file:("svc." ^ sv_name ^ ".snap");
                      du_snapshot_every = snapshot_every;
                      du_issued = Hashtbl.create 64;
                      du_appends = 0;
                      du_tail = [];
                      du_compacting = false;
                    })
                  disk
              in
              let t =
                {
                  sv_net = net;
                  sv_host = host;
                  sv_registry = reg;
                  sv_name;
                  sv_rolefile_id = rolefile_id;
                  sv_rolefile = parsed;
                  sv_sigs = sigs;
                  sv_role_bits = bits;
                  sv_secrets = Signing.Rolling.create prng;
                  sv_sig_length = sig_length;
                  sv_cache = cache_validation;
                  sv_compound = compound_certificates;
                  sv_fixpoint = fixpoint_entry;
                  sv_table = Credrec.create_table ();
                  sv_groups = Hashtbl.create 8;
                  sv_funcs = funcs;
                  sv_broker =
                    Broker.create_server net host ~name:sv_name ~heartbeat
                      ~coalesce:batch_notifications ?disk ();
                  sv_peers = Hashtbl.create 8;
                  sv_notifying = Hashtbl.create 64;
                  sv_family = Hashtbl.create 4;
                  sv_rbr = Hashtbl.create 16;
                  sv_blacklist = Hashtbl.create 16;
                  sv_audit = [];
                  sv_sig_cache = Cache.create sig_cache_cap;
                  sv_batch = batch_notifications;
                  sv_policy_hash = Hashtbl.hash rolefile;
                  sv_pending_mods = Hashtbl.create 64;
                  sv_pending_ctx = Hashtbl.create 64;
                  sv_residuals = Cache.create 4096;
                  sv_durable = durable;
                  sv_repl_sync = None;
                  sv_auto_recover = true;
                  sv_crypto_checks = 0;
                  sv_cache_hits = 0;
                }
              in
              (* Backup replicas share the primary's name but must not
                 shadow it in the registry; promotion re-registers. *)
              if register then Hashtbl.replace reg sv_name t;
              (match durable with
              | None -> ()
              | Some du ->
                  (* Crash: volatile state dies.  Every credential record
                     backing an issued certificate, every §4.11 revoker arm
                     and every external surrogate is forgotten from the
                     in-memory table (their children now read a dangling —
                     permanently False — reference: fail closed), sessions
                     drop, caches clear.  The durable mirror on [disk]
                     survives and is replayed by the restart hook. *)
                  Net.on_crash net host (fun () ->
                      Hashtbl.iter
                        (fun _ pl ->
                          Option.iter Broker.close pl.pl_session;
                          Hashtbl.iter
                            (fun _ surrogate -> Credrec.forget t.sv_table surrogate)
                            pl.pl_externals)
                        t.sv_peers;
                      Hashtbl.iter
                        (fun _ cell ->
                          List.iter (fun (_, rbr) -> Credrec.forget t.sv_table rbr) !cell)
                        t.sv_rbr;
                      Hashtbl.iter
                        (fun key _ ->
                          Hashtbl.remove t.sv_notifying key;
                          match Credrec.unmarshal_ref key with
                          | Some cref -> Credrec.forget t.sv_table cref
                          | None -> ())
                        du.du_issued;
                      Hashtbl.reset t.sv_peers;
                      Hashtbl.reset t.sv_rbr;
                      Hashtbl.reset t.sv_blacklist;
                      Hashtbl.reset du.du_issued;
                      Hashtbl.reset t.sv_pending_mods;
                      Hashtbl.reset t.sv_pending_ctx;
                      Cache.clear t.sv_sig_cache;
                      Cache.clear t.sv_residuals;
                      du.du_appends <- 0;
                      du.du_tail <- [];
                      du.du_compacting <- false);
                  Net.on_restart net host (fun () -> if t.sv_auto_recover then !recover_ref t));
              (* Batched notification: record changes accumulate in
                 [sv_pending_mods] and are flushed as ONE ModifiedBatch
                 digest at the top of each broker heartbeat tick, so the
                 digest rides that very tick's coalesced heartbeat message
                 (steady-state: O(peers) messages per period, §4.10). *)
              if batch_notifications then
                Broker.on_heartbeat_tick t.sv_broker (fun () ->
                    if Hashtbl.length t.sv_pending_mods > 0 then begin
                      let mods =
                        Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.sv_pending_mods []
                        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
                      in
                      Hashtbl.reset t.sv_pending_mods;
                      Stats.observe (Net.stats net) "oasis.mods.flush" (List.length mods);
                      let digest =
                        String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) mods)
                      in
                      (* The flush span's parent is the buffered context
                         with the earliest origin: a digest merging several
                         bursts is attributed to the oldest one it carries,
                         so no end-to-end latency is under-reported. *)
                      let tr = Net.trace net in
                      let parent =
                        Hashtbl.fold
                          (fun _ c acc ->
                            match acc with
                            | Some best when Trace.origin best <= Trace.origin c -> acc
                            | _ -> Some c)
                          t.sv_pending_ctx None
                      in
                      Hashtbl.reset t.sv_pending_ctx;
                      let sp = Trace.start tr ?parent "revoke.flush" in
                      Trace.add_attr sp "mods" (string_of_int (List.length mods));
                      Trace.with_ctx tr
                        (Some (Trace.ctx_of sp))
                        (fun () ->
                          ignore
                            (Broker.signal t.sv_broker "ModifiedBatch" [ Value.Str digest ]));
                      Trace.finish tr sp
                    end);
              Ok t)))

(* --- Modified event notification for records other services depend on --- *)

let arm_notification t cref =
  let key = Credrec.marshal_ref cref in
  if not (Hashtbl.mem t.sv_notifying key) then begin
    Hashtbl.replace t.sv_notifying key ();
    Credrec.on_change t.sv_table cref (fun st ->
        let state_str =
          match st with Credrec.True -> "true" | Credrec.False -> "false" | Credrec.Unknown -> "unknown"
        in
        if t.sv_batch then begin
          (* Coalesce: only the latest state per record matters; the
             heartbeat-tick hook turns the buffer into one digest event. *)
          Hashtbl.replace t.sv_pending_mods key state_str;
          match Trace.current (tracer t) with
          | Some ctx -> Hashtbl.replace t.sv_pending_ctx key ctx
          | None -> ()
        end
        else
          ignore (Broker.signal t.sv_broker "Modified" [ Value.Str key; Value.Str state_str ]))
  end

(* --- signature verification with caching (§4.2) --- *)

let verify_rmc_sig t cert =
  let key = cert.Cert.rmc_sig ^ "|" ^ Cert.rmc_payload cert in
  if t.sv_cache && Cache.find t.sv_sig_cache key <> None then begin
    t.sv_cache_hits <- t.sv_cache_hits + 1;
    Stats.incr (stats t) "oasis.sigcache.hit";
    true
  end
  else begin
    t.sv_crypto_checks <- t.sv_crypto_checks + 1;
    if t.sv_cache then Stats.incr (stats t) "oasis.sigcache.miss";
    let ok = Cert.verify_rmc ~length:t.sv_sig_length t.sv_secrets cert in
    if ok && t.sv_cache then Cache.set t.sv_sig_cache key ();
    ok
  end

let roles_of_cert t cert =
  List.filter_map
    (fun (role, bit) -> if Bitset.mem bit cert.Cert.roles then Some role else None)
    t.sv_role_bits

let check_crr t cert =
  match Credrec.state t.sv_table cert.Cert.crr with
  | Credrec.True -> Ok ()
  | Credrec.False -> Error Revoked
  | Credrec.Unknown -> Error Unknown_state

let validate t ~client ?need_role cert =
  if not (String.equal cert.Cert.service t.sv_name && String.equal cert.Cert.rolefile t.sv_rolefile_id)
  then begin
    audit t Erroneous ("certificate for " ^ cert.Cert.service ^ " presented out of context");
    Error Wrong_context
  end
  else if not (Principal.equal_vci cert.Cert.holder client) then begin
    audit t Fraud ("certificate of " ^ Principal.vci_to_string cert.Cert.holder ^ " presented by "
                   ^ Principal.vci_to_string client);
    Error Wrong_client
  end
  else if not (verify_rmc_sig t cert) then begin
    audit t Fraud "forged or tampered certificate";
    Error Forged
  end
  else
    match need_role with
    | Some role when not (Cert.has_role ~role_bits:t.sv_role_bits cert role) ->
        audit t Erroneous ("certificate lacks role " ^ role);
        Error Insufficient
    | _ -> check_crr t cert

let validate_for_peer t cert =
  if not (String.equal cert.Cert.service t.sv_name) then Error Wrong_context
  else if not (verify_rmc_sig t cert) then Error Forged
  else
    match check_crr t cert with
    | Error e -> Error e
    | Ok () ->
        arm_notification t cert.Cert.crr;
        Ok (roles_of_cert t cert, cert.Cert.args, cert.Cert.crr)

(* --- external records (§4.9, fig 4.8) --- *)

let peer_link t peer_name =
  match Hashtbl.find_opt t.sv_peers peer_name with
  | Some pl -> pl
  | None ->
      let pl =
        {
          pl_peer = peer_name;
          pl_session = None;
          pl_connecting = false;
          pl_queued = [];
          pl_externals = Hashtbl.create 16;
          pl_batch_reg = false;
          pl_reread_pending = Hashtbl.create 16;
          pl_rereading = false;
          pl_bound_host = "";
          pl_retargeting = false;
        }
      in
      Hashtbl.replace t.sv_peers peer_name pl;
      pl

(* Batched post-heal reread: one RPC per peer link carrying every pending
   key, instead of one RPC per external record.  The handler is a pure read,
   so when [rpc_retry] exhausts its budget mid-batch the WHOLE batch is
   simply retried after a heartbeat period — idempotent, and keys that were
   already answered by a racing digest event are reconciled last-writer-wins
   by [Credrec.set_leaf]. *)
let rec reread_pending t pl peer session =
  match pl.pl_session with
  | Some s when s == session && not (Broker.stale session) ->
      let keys =
        Hashtbl.fold (fun k () acc -> k :: acc) pl.pl_reread_pending []
        |> List.sort String.compare
      in
      if keys = [] then pl.pl_rereading <- false
      else begin
        pl.pl_rereading <- true;
        (* Post-heal recovery is its own trace root (staleness, not any one
           revocation, caused it); the span stays open across retries and
           closes when the batch lands or is rescheduled. *)
        let tr = tracer t in
        let sp = Trace.start tr "revoke.reread" in
        Trace.add_attr sp "keys" (string_of_int (List.length keys));
        Trace.with_ctx tr
          (Some (Trace.ctx_of sp))
          (fun () ->
            Net.rpc_retry t.sv_net ~category:"oasis.reread"
              ~size:(32 + (16 * List.length keys))
              ~src:t.sv_host ~dst:peer.sv_host
              (fun () ->
                Ok
                  (List.filter_map
                     (fun key ->
                       Option.map
                         (fun r -> (key, Credrec.state peer.sv_table r))
                         (Credrec.unmarshal_ref key))
                     keys))
              (function
                | Ok states ->
                    List.iter
                      (fun (key, st) ->
                        Hashtbl.remove pl.pl_reread_pending key;
                        match Hashtbl.find_opt pl.pl_externals key with
                        | Some local -> Credrec.set_leaf t.sv_table local st
                        | None -> ())
                      states;
                    Trace.finish tr sp;
                    (* Anything queued while the batch was in flight. *)
                    reread_pending t pl peer session
                | Error _ ->
                    Trace.finish tr sp;
                    Engine.schedule (Net.engine t.sv_net)
                      ~delay:(Broker.server_heartbeat (broker peer))
                      (fun () -> reread_pending t pl peer session)))
      end
  | _ -> pl.pl_rereading <- false

(* Forward reference: the stale-session registry watch needs the whole
   link plumbing (batch registration, reread) defined below, but is armed
   from the staleness hook installed at connect time. *)
let retarget_ref : (t -> peer_link -> Broker.session -> unit) ref = ref (fun _ _ _ -> ())

(* One connect attempt to a peer's broker.  Failure does not abandon the
   link: if continuations are still queued (a recovery-time reread, a
   pending notification registration) the attempt is retried after a peer
   heartbeat, for as long as this link is still the live one in
   [sv_peers] — a crash on our side resets the peer table and orphans the
   loop, which then stops. *)
let rec connect_peer t pl peer =
  pl.pl_connecting <- true;
  Broker.connect t.sv_net t.sv_host (broker peer)
    ~credentials:[ "service:" ^ t.sv_name ]
    ~on_result:(fun result ->
      pl.pl_connecting <- false;
      match result with
      | Error _ ->
          if pl.pl_queued <> [] then
            Engine.schedule (Net.engine t.sv_net)
              ~delay:(Broker.server_heartbeat (broker peer))
              (fun () ->
                let live =
                  match Hashtbl.find_opt t.sv_peers pl.pl_peer with
                  | Some pl' -> pl' == pl
                  | None -> false
                in
                if
                  live && pl.pl_session = None && (not pl.pl_connecting)
                  && pl.pl_queued <> []
                then connect_peer t pl peer)
      | Ok session ->
          pl.pl_session <- Some session;
          pl.pl_bound_host <- Net.host_name peer.sv_host;
          (* §4.10: missed heartbeats mark every external record
             from this peer Unknown; recovery batch-rereads the
             states over one reliable RPC per link. *)
          Broker.on_staleness session (fun is_stale ->
              if is_stale then begin
                Hashtbl.iter
                  (fun _ local_ref ->
                    Credrec.set_leaf t.sv_table local_ref Credrec.Unknown)
                  pl.pl_externals;
                (* While stale, watch the registry: if the peer's entry
                   moves to another host (replica failover), this session
                   can never heal — the watch rebinds the link to the new
                   primary's broker. *)
                if not pl.pl_retargeting then begin
                  pl.pl_retargeting <- true;
                  Engine.schedule (Net.engine t.sv_net)
                    ~delay:(Broker.server_heartbeat t.sv_broker)
                    (fun () -> !retarget_ref t pl session)
                end
              end
              else begin
                Hashtbl.iter
                  (fun key _ -> Hashtbl.replace pl.pl_reread_pending key ())
                  pl.pl_externals;
                match find_service t.sv_registry pl.pl_peer with
                | None -> ()
                | Some peer ->
                    if not pl.pl_rereading then reread_pending t pl peer session
              end);
          let queued = List.rev pl.pl_queued in
          pl.pl_queued <- [];
          List.iter (fun k -> k session) queued)
    ()

let with_peer_session t pl k =
  match pl.pl_session with
  | Some s -> k s
  | None ->
      pl.pl_queued <- k :: pl.pl_queued;
      if not pl.pl_connecting then (
        match find_service t.sv_registry pl.pl_peer with
        | None -> () (* unknown peer: queued actions never run; externals stay Unknown *)
        | Some peer -> connect_peer t pl peer)

let state_of_string = function
  | "true" -> Credrec.True
  | "false" -> Credrec.False
  | _ -> Credrec.Unknown

(* Apply one ModifiedBatch digest ("key=state;key=state;...") to the link's
   mirrored externals.  Keys not mirrored here are skipped; re-application
   (retries, retained-log replays after reconnect) is idempotent. *)
let apply_mod_digest t pl digest =
  let tr = tracer t in
  Trace.with_span tr "revoke.apply" (fun () ->
      List.iter
        (fun item ->
          match String.index_opt item '=' with
          | None -> ()
          | Some i -> (
              let key = String.sub item 0 i in
              let state = String.sub item (i + 1) (String.length item - i - 1) in
              match Hashtbl.find_opt pl.pl_externals key with
              | None -> ()
              | Some local -> Credrec.set_leaf t.sv_table local (state_of_string state)))
        (String.split_on_char ';' digest);
      (* This hop closes the paper's revocation path: invalidation at the
         issuer -> digest -> heartbeat flush -> this peer's recompute.  The
         context carries the root's start time, so the distance from it is
         the end-to-end propagation latency. *)
      match Trace.current tr with
      | Some ctx -> Stats.observe_latency (stats t) "oasis.revoke.e2e" (Trace.since_origin tr ctx)
      | None -> ())

(* One registration per peer link covers every mirrored record when the
   issuer batches; otherwise external records would each need their own
   template and the issuer's signal path would scan O(records)
   registrations per change. *)
let ensure_batch_registration t pl =
  if not pl.pl_batch_reg then begin
    pl.pl_batch_reg <- true;
    with_peer_session t pl (fun session ->
        let tpl = Event.template "ModifiedBatch" [ Event.Any ] in
        ignore
          (Broker.register session tpl (fun e ->
               match e.Event.params with
               | [| Value.Str digest |] -> apply_mod_digest t pl digest
               | _ -> ())))
  end

(* The stale-session registry watch (armed by the staleness hook in
   [connect_peer]): while a peer session is stale, poll the registry once
   per heartbeat.  If the peer's registered service has moved to a
   different host — a replica group promoted a backup — drop the dead
   session and rebind the link: re-register the ModifiedBatch template at
   the new primary's broker and queue every mirrored external for a
   reread there, so revocation digests flow again.  If the peer heals in
   place (same host restarted), the ordinary §4.10 reread path takes over
   and the watch stands down. *)
let rec retarget_watch t pl session =
  let live =
    match Hashtbl.find_opt t.sv_peers pl.pl_peer with Some pl' -> pl' == pl | None -> false
  in
  let current =
    match pl.pl_session with Some s -> s == session | None -> false
  in
  if not (live && current) then pl.pl_retargeting <- false
  else if not (Broker.stale session) then pl.pl_retargeting <- false
  else
    match find_service t.sv_registry pl.pl_peer with
    | Some peer when not (String.equal (Net.host_name peer.sv_host) pl.pl_bound_host) ->
        pl.pl_retargeting <- false;
        Broker.close session;
        pl.pl_session <- None;
        pl.pl_batch_reg <- false;
        pl.pl_rereading <- false;
        Stats.incr (stats t) "oasis.peer.retarget";
        Hashtbl.iter
          (fun key _ -> Hashtbl.replace pl.pl_reread_pending key ())
          pl.pl_externals;
        (* Per-record (unbatched) Modified templates are not re-registered
           here: every replicated deployment batches.  The reread below
           still heals current states once. *)
        if peer.sv_batch then ensure_batch_registration t pl;
        with_peer_session t pl (fun s ->
            if not pl.pl_rereading then reread_pending t pl peer s)
    | _ ->
        Engine.schedule (Net.engine t.sv_net)
          ~delay:(Broker.server_heartbeat t.sv_broker)
          (fun () -> retarget_watch t pl session)

let () = retarget_ref := retarget_watch

(* Create (or reuse) the local surrogate for a remote credential record and
   arm event notification for its changes. *)
let external_record t ~peer_name ~remote_ref ~initial =
  let pl = peer_link t peer_name in
  let key = Credrec.marshal_ref remote_ref in
  match Hashtbl.find_opt pl.pl_externals key with
  | Some local when Credrec.live t.sv_table local ->
      Credrec.set_leaf t.sv_table local initial;
      local
  | _ ->
      let local = Credrec.leaf t.sv_table ~state:initial () in
      Hashtbl.replace pl.pl_externals key local;
      let issuer_batches =
        match find_service t.sv_registry peer_name with
        | Some peer -> peer.sv_batch
        | None -> false
      in
      if issuer_batches then ensure_batch_registration t pl
      else
        with_peer_session t pl (fun session ->
            let tpl = Event.template "Modified" [ Event.Lit (Value.Str key); Event.Any ] in
            ignore
              (Broker.register session tpl (fun e ->
                   match e.Event.params with
                   | [| _; Value.Str state |] ->
                       Credrec.set_leaf t.sv_table local (state_of_string state)
                   | _ -> ())));
      local

(* --- constraint-evaluation context --- *)

let builtin_funcs t =
  [
    ( "unixacl",
      fun args ->
        match args with
        | [ Value.Str acl; Value.Str user ] ->
            let in_group g = Group.mem (group t g) (Value.Str user) in
            Ok (Value.set_of_chars (Acl.unixacl acl ~user ~in_group))
        | _ -> Error "unixacl(acl, user) expects two strings" );
    ( "acl",
      fun args ->
        match args with
        | [ Value.Str acl_text; Value.Str full; Value.Str user ] -> (
            match Acl.parse acl_text with
            | Error e -> Error e
            | Ok acl ->
                let in_group g = Group.mem (group t g) (Value.Str user) in
                Ok (Value.set_of_chars (Acl.rights acl ~user ~in_group ~full)) )
        | _ -> Error "acl(list, full, user) expects three strings" );
  ]

let eval_ctx t =
  {
    Eval.lookup_group = (fun gname v -> Group.mem (group t gname) v);
    call =
      (fun fname args ->
        match List.assoc_opt fname (t.sv_funcs @ builtin_funcs t) with
        | Some f -> f args
        | None -> Error ("unknown extension function " ^ fname));
  }

(* --- residual membership-rule compilation (§4.7) --- *)

let rec compile_residual t env constr =
  let ctx = eval_ctx t in
  match constr with
  | Ast.Cin (e, gname) -> (
      match Eval.eval_expr ctx env e with
      | Error _ -> Const false
      | Ok v -> Ref (Group.credential (group t gname) v, false))
  | Ast.Cstar c -> compile_residual t env c
  | Ast.Cnot c -> (
      match compile_residual t env c with
      | Const b -> Const (not b)
      | Ref (r, neg) -> Ref (r, not neg))
  | Ast.Cand (a, b) -> combine_residual t env Credrec.And false [ a; b ]
  | Ast.Cor (a, b) -> combine_residual t env Credrec.Or true [ a; b ]
  | Ast.Crel _ | Ast.Csubset _ | Ast.Ccall _ | Ast.Cbind _ -> (
      (* Constant under the captured bindings: evaluate once (§3.2.3's
         "substituting in the value of all the other subexpressions"). *)
      match Eval.eval ctx env constr with
      | Ok (truth, _, _) -> Const truth
      | Error _ -> Const false)

and combine_residual t env op unit_is_true parts =
  (* [unit_is_true]: the absorbing constant for Or is true, for And false. *)
  let compiled = List.map (compile_residual t env) parts in
  let absorbing = unit_is_true in
  if List.exists (function Const b -> b = absorbing | Ref _ -> false) compiled then
    Const absorbing
  else
    let refs = List.filter_map (function Ref (r, n) -> Some (r, n) | Const _ -> None) compiled in
    match refs with
    | [] -> Const (not absorbing)
    | [ (r, n) ] -> Ref (r, n)
    | refs -> Ref (Credrec.combine t.sv_table ~op refs, false)

(* Residual compile cache.  Only "pure-record" constraints — built solely
   from [in]-tests on variables/literals under and/or/not/star — are
   cacheable: their compiled form is a record DAG whose truth tracks group
   changes dynamically, so reusing it is semantics-preserving (the group
   credential leaves are already memoised by [Group.credential]).  Anything
   involving relations, subset tests, extension calls or binds is evaluated
   per entry as before, since those evaluate to constants captured at
   compile time. *)
let pure_expr = function Ast.Elit _ | Ast.Evar _ -> true | Ast.Ecall _ -> false

let rec pure_residual = function
  | Ast.Cin (e, _) -> pure_expr e
  | Ast.Cstar c | Ast.Cnot c -> pure_residual c
  | Ast.Cand (a, b) | Ast.Cor (a, b) -> pure_residual a && pure_residual b
  | Ast.Crel _ | Ast.Csubset _ | Ast.Ccall _ | Ast.Cbind _ -> false

let residual_key t env constr =
  let vars = List.sort_uniq String.compare (Ast.constr_vars constr) in
  let binding x =
    match List.assoc_opt x env with Some v -> x ^ "=" ^ Value.marshal v | None -> x ^ "=?"
  in
  Printf.sprintf "%d|%s|%s" t.sv_policy_hash
    (Pretty.constr_to_string constr)
    (String.concat "," (List.map binding vars))

let compile_residual_cached t env constr =
  if not (pure_residual constr) then compile_residual t env constr
  else
    let key = residual_key t env constr in
    let hit =
      match Cache.find t.sv_residuals key with
      | Some (Const _ as c) -> Some c
      | Some (Ref (r, _) as c) when Credrec.live t.sv_table r -> Some c
      | _ -> None (* absent, or the record was reclaimed by GC: recompile *)
    in
    match hit with
    | Some c ->
        Stats.incr (stats t) "oasis.residual.hit";
        c
    | None ->
        Stats.incr (stats t) "oasis.residual.miss";
        let c = compile_residual t env constr in
        Cache.set t.sv_residuals key c;
        c

(* --- memberships and the entry engine (fig 3.2) --- *)

type membership = {
  m_service : string;
  m_roles : string list;
  m_args : value list;
  m_crr : Credrec.cref;
  m_fresh : bool;  (* produced during this request (eligible for compounding) *)
  m_deps : dep list;  (* durable dependencies feeding [m_crr] *)
  m_rbrs : (string * string * string) list;  (* §4.11 revoker arms under [m_crr] *)
}

let match_args env ref_args actual =
  if List.length ref_args <> List.length actual then None
  else
    let rec go env = function
      | [] -> Some env
      | (Ast.Alit v, actual) :: rest -> if Value.equal v actual then go env rest else None
      | (Ast.Avar x, actual) :: rest -> (
          match List.assoc_opt x env with
          | Some bound -> if Value.equal bound actual then go env rest else None
          | None -> go ((x, actual) :: env) rest)
    in
    go env (List.combine ref_args actual)

let find_credential t env (role_ref : Ast.role_ref) memberships =
  let service_matches m =
    match role_ref.Ast.sref.Ast.service with
    | None -> in_family t m.m_service
    | Some svc -> String.equal m.m_service svc
  in
  let rec go = function
    | [] -> None
    | m :: rest -> (
        if service_matches m && List.mem role_ref.Ast.role m.m_roles then
          match match_args env role_ref.Ast.ref_args m.m_args with
          | Some env' -> Some (env', m)
          | None -> go rest
        else go rest)
  in
  go memberships

let head_args_values env args =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | Ast.Alit v :: rest -> go (v :: acc) rest
    | Ast.Avar x :: rest -> (
        match List.assoc_opt x env with Some v -> go (v :: acc) rest | None -> None)
  in
  go [] args

let blacklist_key role args = (role, String.concat "\x01" (List.map Value.marshal args))

(* Enumerate the ways a statement's credential references can be matched
   against the membership list.  Single-pass (fig 3.2) semantics use only
   the first assignment; the fixpoint ablation (and the Unix legacy
   adapter, which chains UseDir rules along a path) needs them all,
   Datalog-style. *)
let enumerate_matches t memberships creds =
  let rec go env used = function
    | [] -> [ (env, List.rev used) ]
    | (role_ref : Ast.role_ref) :: rest ->
        let service_matches m =
          match role_ref.Ast.sref.Ast.service with
          | None -> in_family t m.m_service
          | Some svc -> String.equal m.m_service svc
        in
        List.concat_map
          (fun m ->
            if service_matches m && List.mem role_ref.Ast.role m.m_roles then
              match match_args env role_ref.Ast.ref_args m.m_args with
              | Some env' -> go env' ((role_ref, m) :: used) rest
              | None -> []
            else [])
          memberships
  in
  go [] [] creds

(* Complete one credential assignment into a membership: elector-argument
   unification, constraint evaluation, head-argument synthesis, blacklist
   check, and credential-record assembly (fig 4.6). *)
let complete_match t (entry : Ast.entry) dcerts (env, used) =
  let head_name, head_args = entry.Ast.head in
  let env =
    List.fold_left
      (fun acc d ->
        match (acc, entry.Ast.elector) with
        | None, _ | _, None -> acc
        | Some env, Some er ->
            if not (String.equal er.Ast.role d.Cert.d_delegator_role) then None
            else if er.Ast.ref_args = [] then Some env
            else match_args env er.Ast.ref_args d.Cert.d_delegator_args)
      (Some env) dcerts
  in
  match env with
  | None -> None
  | Some env -> (
      let constraint_result =
        match entry.Ast.constr with
        | None -> Some (env, [])
        | Some c -> (
            match Eval.eval (eval_ctx t) env c with
            | Ok (true, env', mrules) -> Some (env', mrules)
            | Ok (false, _, _) | Error _ -> None)
      in
      match constraint_result with
      | None -> None
      | Some (env, mrules) -> (
          match head_args_values env head_args with
          | None -> None
          | Some args ->
              if
                entry.Ast.revoker <> None
                && Hashtbl.mem t.sv_blacklist (blacklist_key head_name args)
              then None (* negated Revoked(instance) fails (§3.3.2) *)
              else begin
                (* Assemble membership-rule parents (fig 4.6).  Durable
                   dependencies and revoker arms propagate from the starred
                   credentials actually used, so an eventually-issued
                   certificate's log record names every persisted fact its
                   validity hangs on. *)
                let parents = ref [] in
                let deps = ref [] in
                let rbrs = ref [] in
                List.iter
                  (fun ((role_ref : Ast.role_ref), m) ->
                    if role_ref.Ast.starred then begin
                      parents := (m.m_crr, false) :: !parents;
                      deps := m.m_deps @ !deps;
                      rbrs := m.m_rbrs @ !rbrs
                    end)
                  used;
                List.iter
                  (fun d ->
                    if entry.Ast.elect_starred then parents := (d.Cert.d_crr, false) :: !parents;
                    match entry.Ast.elector with
                    | Some er when er.Ast.starred ->
                        parents := (d.Cert.d_delegator_crr, false) :: !parents
                    | _ -> ())
                  dcerts;
                List.iter
                  (fun (mr : Eval.mrule) ->
                    match compile_residual_cached t mr.Eval.bindings mr.Eval.residual with
                    | Const true -> ()
                    | Const false ->
                        (* A membership rule already false: represent it
                           with a permanently-false parent. *)
                        parents :=
                          (Credrec.leaf t.sv_table ~state:Credrec.False (), false) :: !parents
                    | Ref (r, neg) -> parents := (r, neg) :: !parents)
                  mrules;
                (* Role-based revocation arms its own record (fig 4.9). *)
                (match entry.Ast.revoker with
                | None -> ()
                | Some revoker ->
                    let rbr = Credrec.leaf t.sv_table ~state:Credrec.True () in
                    Credrec.set_direct_use t.sv_table rbr true;
                    parents := (rbr, false) :: !parents;
                    let key = blacklist_key head_name args in
                    let cell =
                      match Hashtbl.find_opt t.sv_rbr key with
                      | Some c -> c
                      | None ->
                          let c = ref [] in
                          Hashtbl.replace t.sv_rbr key c;
                          c
                    in
                    cell := (revoker, rbr) :: !cell;
                    rbrs := (head_name, snd key, revoker.Ast.role) :: !rbrs);
                let crr =
                  match !parents with
                  | [] -> Credrec.combine t.sv_table []
                  | parents -> Credrec.combine t.sv_table parents
                in
                Some
                  {
                    m_service = t.sv_name;
                    m_roles = [ head_name ];
                    m_args = args;
                    m_crr = crr;
                    m_fresh = true;
                    m_deps = !deps;
                    m_rbrs = !rbrs;
                  }
              end))

(* Try to apply one entry statement given current memberships.  In
   single-pass mode the first suitable credential assignment yields at most
   one membership (fig 3.2); with [all_matches] every distinct assignment
   is completed. *)
let apply_statement t ~delegation ~deleg_required_ok ~all_matches (entry : Ast.entry) memberships
    =
  let head_name, _ = entry.Ast.head in
  (* Election statements only fire when a matching delegation certificate
     accompanies the request (§4.4: separate entry paths). *)
  let delegation_ok =
    match entry.Ast.elector with
    | None -> Some []
    | Some _ -> (
        match delegation with
        | Some d
          when String.equal d.Cert.d_role head_name
               && String.equal d.Cert.d_service t.sv_name
               && deleg_required_ok ->
            if Credrec.state t.sv_table d.Cert.d_crr = Credrec.True then Some [ d ] else None
        | _ -> None)
  in
  match delegation_ok with
  | None -> []
  | Some dcerts ->
      let assignments = enumerate_matches t memberships entry.Ast.creds in
      if all_matches then List.filter_map (complete_match t entry dcerts) assignments
      else
        (* First suitable assignment only (fig 3.2). *)
        let rec first = function
          | [] -> []
          | a :: rest -> (
              match complete_match t entry dcerts a with
              | Some m -> [ m ]
              | None -> first rest)
        in
        first assignments

let run_entry_engine t ~delegation ~deleg_required_ok ~initial =
  Trace.with_span (tracer t) "rdl.entry" @@ fun () ->
  let memberships = ref initial in
  let have m =
    List.exists
      (fun m' ->
        String.equal m'.m_service m.m_service
        && m'.m_roles = m.m_roles
        && List.length m'.m_args = List.length m.m_args
        && List.for_all2 Value.equal m'.m_args m.m_args)
      !memberships
  in
  let pass ~all_matches =
    let produced = ref false in
    List.iter
      (fun entry ->
        List.iter
          (fun m ->
            (* In single-pass mode duplicates cannot arise (each statement
               fires once); in fixpoint mode they must not count as
               progress or the loop never converges. *)
            if not (all_matches && have m) then begin
              memberships := !memberships @ [ m ];
              produced := true
            end)
          (apply_statement t ~delegation ~deleg_required_ok ~all_matches entry !memberships))
      (Ast.entries t.sv_rolefile);
    !produced
  in
  if t.sv_fixpoint then begin
    (* Fixpoint mode: iterate with full credential enumeration until no new
       membership appears (bounded).  Needed for recursive rule sets such
       as the Unix directory rules of section 3.3.3. *)
    let rec loop n = if n > 0 && pass ~all_matches:true then loop (n - 1) in
    loop 16
  end
  else ignore (pass ~all_matches:false);
  !memberships

(* --- certificate issue --- *)

(* Log the issue to stable storage: the record's identity plus what it
   depends on, so recovery can re-materialise the backing subgraph.
   Records already logged (re-validation of an outstanding certificate)
   are not re-logged. *)
let persist_issue t ~crr ~deps ~rbrs =
  match t.sv_durable with
  | None -> ()
  | Some du ->
      let key = Credrec.marshal_ref crr in
      if not (Hashtbl.mem du.du_issued key) then begin
        let deps = List.sort_uniq compare deps in
        let rbrs = List.sort_uniq compare rbrs in
        Hashtbl.replace du.du_issued key { i_alive = true; i_deps = deps; i_rbrs = rbrs };
        persist_line t du (rec_issue key deps rbrs)
      end

let issue_cert t ?(deps = []) ?(rbrs = []) ~client ~roles ~args ~crr () =
  Credrec.set_direct_use t.sv_table crr true;
  persist_issue t ~crr ~deps ~rbrs;
  let bits =
    List.fold_left
      (fun acc role ->
        match List.assoc_opt role t.sv_role_bits with
        | Some bit -> Bitset.add bit acc
        | None -> acc)
      Bitset.empty roles
  in
  let cert =
    {
      Cert.holder = client;
      service = t.sv_name;
      rolefile = t.sv_rolefile_id;
      roles = bits;
      args;
      crr;
      issued_at = now t;
      rmc_sig = "";
    }
  in
  Cert.sign_rmc t.sv_secrets ~length:t.sv_sig_length cert

(* Sequentially run an async action over a list. *)
let rec seq_map f list k =
  match list with
  | [] -> k []
  | x :: rest -> f x (fun y -> seq_map f rest (fun ys -> k (y :: ys)))

(* Validate one supplied credential, local or external, producing a
   membership (or None, with audit). *)
let validate_credential t (cert : Cert.rmc) k =
  if String.equal cert.Cert.service t.sv_name then
    (* Local certificate: direct validation. *)
    if not (verify_rmc_sig t cert) then begin
      audit t Fraud "forged local credential in entry request";
      k None
    end
    else (
      match check_crr t cert with
      | Error _ -> k None
      | Ok () ->
          k
            (Some
               {
                 m_service = t.sv_name;
                 m_roles = roles_of_cert t cert;
                 m_args = cert.Cert.args;
                 m_crr = cert.Cert.crr;
                 m_fresh = false;
                 m_deps = [ Dloc (Credrec.marshal_ref cert.Cert.crr) ];
                 m_rbrs = [];
               }))
  else
    (* External certificate: RPC to the issuing service (§2.10), then mirror
       its credential record locally. *)
    match find_service t.sv_registry cert.Cert.service with
    | None ->
        audit t Erroneous ("credential from unknown service " ^ cert.Cert.service);
        k None
    | Some issuer ->
        (* Reliable: a dropped validation reply would reject a perfectly
           good credential.  [validate_for_peer] is idempotent (the
           Modified-notification arm is guarded), so retries are safe.  The
           budget is kept short (~7.5 s worst case): validation gates an
           entry decision, which must still fail closed promptly when the
           issuer is genuinely unreachable (§4.2). *)
        Net.rpc_retry t.sv_net ~category:"oasis.validate" ~attempts:3 ~backoff:0.5
          ~src:t.sv_host ~dst:issuer.sv_host
          (fun () ->
            match validate_for_peer issuer cert with
            | Ok r -> Ok r
            | Error f -> Error (Format.asprintf "%a" pp_failure f))
          (function
            | Error _ -> k None
            | Ok (roles, args, remote_ref) ->
                let local =
                  external_record t ~peer_name:cert.Cert.service ~remote_ref
                    ~initial:Credrec.True
                in
                k
                  (Some
                     {
                       m_service = cert.Cert.service;
                       m_roles = roles;
                       m_args = args;
                       m_crr = local;
                       m_fresh = false;
                       m_deps = [ Dext (cert.Cert.service, Credrec.marshal_ref remote_ref) ];
                       m_rbrs = [];
                     }))

let delegation_required_ok t (d : Cert.delegation) memberships =
  (* Every required (service, role, args) must be covered by a validated
     membership; Str "*" arguments are wildcards. *)
  List.for_all
    (fun (svc, role, req_args) ->
      List.exists
        (fun m ->
          String.equal m.m_service svc && List.mem role m.m_roles
          && List.length req_args = List.length m.m_args
          && List.for_all2
               (fun req actual ->
                 match req with Value.Str "*" -> true | v -> Value.equal v actual)
               req_args m.m_args)
        memberships)
    d.Cert.d_required

let request_entry t ~client_host ~client ~role ?args ?(creds = []) ?delegation k =
  (* Client -> service request, then async validation of each credential. *)
  Net.send t.sv_net ~category:"oasis.entry" ~size:(128 + (96 * List.length creds))
    ~src:client_host ~dst:t.sv_host (fun () ->
      let reply result =
        Net.send t.sv_net ~category:"oasis.entry.reply" ~size:160 ~src:t.sv_host ~dst:client_host
          (fun () -> k result)
      in
      seq_map (validate_credential t) creds (fun validated ->
          let initial = List.filter_map Fun.id validated in
          (* Delegation certificate checks (§4.4). *)
          let delegation_checked =
            match delegation with
            | None -> Ok None
            | Some d ->
                if not (String.equal d.Cert.d_service t.sv_name) then Error "delegation for another service"
                else if not (Cert.verify_delegation ~length:t.sv_sig_length t.sv_secrets d) then
                  Error "bad delegation signature"
                else (
                  match d.Cert.d_expires with
                  | Some e when now t > e -> Error "delegation expired"
                  | _ -> Ok (Some d))
          in
          match delegation_checked with
          | Error e -> reply (Error e)
          | Ok delegation -> (
              let deleg_required_ok =
                match delegation with
                | None -> true
                | Some d -> delegation_required_ok t d initial
              in
              let memberships =
                run_entry_engine t ~delegation ~deleg_required_ok ~initial
              in
              (* First suitable membership (fig 3.2). *)
              let suitable m =
                String.equal m.m_service t.sv_name
                && List.mem role m.m_roles
                &&
                match args with
                | None -> true
                | Some want ->
                    List.length want = List.length m.m_args
                    && List.for_all2 Value.equal want m.m_args
              in
              match List.find_opt suitable memberships with
              | None ->
                  audit t Erroneous
                    (Printf.sprintf "entry to %s denied for %s" role
                       (Principal.vci_to_string client));
                  reply (Error ("entry to role " ^ role ^ " denied"))
              | Some chosen ->
                  (* Compound certificate: fold in other fresh local roles
                     with identical arguments (§4.3). *)
                  let companions =
                    if t.sv_compound then
                      List.filter
                        (fun m ->
                          m.m_fresh && m != chosen
                          && String.equal m.m_service t.sv_name
                          && List.length m.m_args = List.length chosen.m_args
                          && List.for_all2 Value.equal m.m_args chosen.m_args)
                        memberships
                    else []
                  in
                  let roles = List.concat_map (fun m -> m.m_roles) (chosen :: companions) in
                  let crr =
                    match companions with
                    | [] -> chosen.m_crr
                    | _ ->
                        Credrec.combine t.sv_table
                          (List.map (fun m -> (m.m_crr, false)) (chosen :: companions))
                  in
                  let cert =
                    issue_cert t
                      ~deps:(List.concat_map (fun m -> m.m_deps) (chosen :: companions))
                      ~rbrs:(List.concat_map (fun m -> m.m_rbrs) (chosen :: companions))
                      ~client ~roles ~args:chosen.m_args ~crr ()
                  in
                  audit t Entry
                    (Printf.sprintf "%s entered %s" (Principal.vci_to_string client)
                       (String.concat "+" roles));
                  reply (Ok cert))))

(* --- delegation (§4.4) --- *)

let election_statements t role =
  List.filter
    (fun (e : Ast.entry) -> fst e.Ast.head = role && e.Ast.elector <> None)
    (Ast.entries t.sv_rolefile)

let request_delegation t ~client_host ~delegator ~using ~role ~required ?expires_in
    ?(revoke_on_exit = false) k =
  Net.send t.sv_net ~category:"oasis.delegate" ~size:160 ~src:client_host ~dst:t.sv_host
    (fun () ->
      let reply result =
        Net.send t.sv_net ~category:"oasis.delegate.reply" ~size:200 ~src:t.sv_host
          ~dst:client_host (fun () -> k result)
      in
      (* The delegator must hold an elector role for some election statement
         defining [role]. *)
      match validate t ~client:delegator using with
      | Error f -> reply (Error (Format.asprintf "delegator credential: %a" pp_failure f))
      | Ok () -> (
          let holder_roles = roles_of_cert t using in
          let statement_ok (e : Ast.entry) =
            match e.Ast.elector with
            | Some er -> (
                (* The elector reference must be a local role the delegator
                   holds; argument constraints are checked against the
                   delegator's certificate arguments. *)
                er.Ast.sref.Ast.service = None
                && List.mem er.Ast.role holder_roles
                &&
                match match_args [] er.Ast.ref_args using.Cert.args with
                | Some _ -> true
                | None -> er.Ast.ref_args = [])
            | None -> false
          in
          match List.find_opt statement_ok (election_statements t role) with
          | None ->
              audit t Revocation_denied ("delegation of " ^ role ^ " refused");
              reply (Error ("no election statement permits delegating " ^ role))
          | Some chosen_statement -> (
            match chosen_statement.Ast.elector with
            | None ->
                (* A matched statement without an elector cannot name the
                   delegator's role.  This request arrives off the wire, so
                   a malformed shape must be answered with a protocol error
                   — crashing the whole host here would let any client take
                   the service down. *)
                audit t Erroneous
                  ("delegation request for " ^ role ^ " matched a statement with no elector");
                reply (Error ("statement defining " ^ role ^ " has no elector"))
            | Some er ->
              let delegator_role = er.Ast.role in
              (* The delegation's own credential record; tied to the
                 delegator's membership when revoke_on_exit is set. *)
              let d_crr =
                if revoke_on_exit then begin
                  let r = Credrec.combine_fresh t.sv_table [ (using.Cert.crr, false) ] in
                  Credrec.set_auto_revoke t.sv_table r true;
                  r
                end
                else Credrec.leaf t.sv_table ()
              in
              Credrec.set_direct_use t.sv_table d_crr true;
              let expires = Option.map (fun dt -> now t +. dt) expires_in in
              (match expires with
              | Some at ->
                  Engine.schedule (Net.engine t.sv_net)
                    ~delay:(max 0.0 (at -. now t))
                    (fun () -> invalidate_traced t ~reason:"expire" d_crr)
              | None -> ());
              let d =
                {
                  Cert.d_service = t.sv_name;
                  d_rolefile = t.sv_rolefile_id;
                  d_role = role;
                  d_required = required;
                  d_crr;
                  d_delegator_crr = using.Cert.crr;
                  d_delegator_role = delegator_role;
                  d_delegator_args = using.Cert.args;
                  d_expires = expires;
                  d_sig = "";
                }
              in
              let d = Cert.sign_delegation t.sv_secrets ~length:t.sv_sig_length d in
              let r =
                {
                  Cert.r_service = t.sv_name;
                  r_role = delegator_role;
                  r_delegator_crr = using.Cert.crr;
                  r_target_crr = d_crr;
                  r_sig = "";
                }
              in
              let r = Cert.sign_revocation t.sv_secrets ~length:t.sv_sig_length r in
              audit t Delegation
                (Printf.sprintf "%s delegated %s" (Principal.vci_to_string delegator) role);
              reply (Ok (d, r)))))

let request_revocation t ~client_host (rcert : Cert.revocation) k =
  Net.send t.sv_net ~category:"oasis.revoke" ~size:96 ~src:client_host ~dst:t.sv_host (fun () ->
      let reply result =
        Net.send t.sv_net ~category:"oasis.revoke.reply" ~size:32 ~src:t.sv_host ~dst:client_host
          (fun () -> k result)
      in
      if not (String.equal rcert.Cert.r_service t.sv_name) then
        reply (Error "revocation certificate for another service")
      else if not (Cert.verify_revocation ~length:t.sv_sig_length t.sv_secrets rcert) then begin
        audit t Fraud "forged revocation certificate";
        reply (Error "bad revocation signature")
      end
      else if Credrec.state t.sv_table rcert.Cert.r_delegator_crr <> Credrec.True then begin
        (* fig 4.3: the delegator must still be a member of the delegating
           role to revoke. *)
        audit t Revocation_denied "revoker no longer holds the delegating role";
        reply (Error "revoker no longer holds the delegating role")
      end
      else begin
        invalidate_traced t ~reason:"revoke" rcert.Cert.r_target_crr;
        audit t Revocation "delegation revoked";
        reply (Ok ())
      end)

let exit_role t ~client_host (cert : Cert.rmc) k =
  Net.send t.sv_net ~category:"oasis.exit" ~size:96 ~src:client_host ~dst:t.sv_host (fun () ->
      let reply result =
        Net.send t.sv_net ~category:"oasis.exit.reply" ~size:32 ~src:t.sv_host ~dst:client_host
          (fun () -> k result)
      in
      if not (verify_rmc_sig t cert) then reply (Error "bad certificate")
      else begin
        invalidate_traced t ~reason:"exit" cert.Cert.crr;
        audit t Exit (Principal.vci_to_string cert.Cert.holder ^ " exited");
        reply (Ok ())
      end)

(* --- role-based revocation (§4.11) --- *)

let revoker_matches t (revoker_ref : Ast.role_ref) (cert : Cert.rmc) =
  revoker_ref.Ast.sref.Ast.service = None
  && Cert.has_role ~role_bits:t.sv_role_bits cert revoker_ref.Ast.role

(* Validate a fire/re-hire revoker credential, which may have been issued
   by a sibling shard of the same logical service (see {!Shard}).  Sibling
   certificates are checked at their issuer over the reliable validation
   RPC (§2.10) and mirrored here as external records, so the revocation
   right is judged against the issuer's own signature and live credential
   state — never against this shard's table, whose record refs the
   sibling's (index, magic) pairs would silently alias. *)
let validate_revoker t (revoker : Cert.rmc) k =
  if String.equal revoker.Cert.service t.sv_name then
    match validate t ~client:revoker.Cert.holder revoker with
    | Error f -> k (Error (Format.asprintf "%a" pp_failure f))
    | Ok () -> k (Ok ())
  else if not (Hashtbl.mem t.sv_family revoker.Cert.service) then begin
    audit t Erroneous
      ("revoker certificate for " ^ revoker.Cert.service ^ " presented out of context");
    k (Error (Format.asprintf "%a" pp_failure Wrong_context))
  end
  else
    match find_service t.sv_registry revoker.Cert.service with
    | None -> k (Error ("unknown sibling shard " ^ revoker.Cert.service))
    | Some issuer ->
        Net.rpc_retry t.sv_net ~category:"oasis.validate" ~attempts:3 ~backoff:0.5
          ~src:t.sv_host ~dst:issuer.sv_host
          (fun () ->
            match validate_for_peer issuer revoker with
            | Ok r -> Ok r
            | Error f -> Error (Format.asprintf "%a" pp_failure f))
          (function
            | Error e -> k (Error e)
            | Ok (_roles, _args, remote_ref) ->
                (* Mirror the revoker's record so a later revocation of the
                   revoker's own role propagates here like any other
                   external dependency. *)
                ignore
                  (external_record t ~peer_name:revoker.Cert.service ~remote_ref
                     ~initial:Credrec.True);
                k (Ok ()))

let revoke_role_instance t ~client_host ~revoker ~role ~args k =
  Net.send t.sv_net ~category:"oasis.rbr" ~size:128 ~src:client_host ~dst:t.sv_host (fun () ->
      let reply result =
        Net.send t.sv_net ~category:"oasis.rbr.reply" ~size:32 ~src:t.sv_host ~dst:client_host
          (fun () -> k result)
      in
      validate_revoker t revoker (function
      | Error e -> reply (Error ("revoker credential: " ^ e))
      | Ok () -> (
          let key = blacklist_key role args in
          match Hashtbl.find_opt t.sv_rbr key with
          | None ->
              (* No live memberships; still blacklist if the rolefile allows
                 this revoker for the role. *)
              let allowed =
                List.exists
                  (fun (e : Ast.entry) ->
                    fst e.Ast.head = role
                    &&
                    match e.Ast.revoker with
                    | Some r -> revoker_matches t r revoker
                    | None -> false)
                  (Ast.entries t.sv_rolefile)
              in
              if allowed then begin
                Hashtbl.replace t.sv_blacklist key ();
                persist_fire t key;
                audit t Revocation (Printf.sprintf "%s(%s) blacklisted" role "");
                ack_when_durable t (fun () -> reply (Ok 0))
              end
              else reply (Error "no revocation right for this role")
          | Some cell ->
              let eligible, rest =
                List.partition (fun (r, _) -> revoker_matches t r revoker) !cell
              in
              if eligible = [] then begin
                (* Nothing armed for this revoker.  Distinguish a wrong
                   revoker from a RETRY of a fire that already committed:
                   the first attempt emptied the cell and blacklisted the
                   key, then its ack was lost (crash, dropped reply).  The
                   right is judged against the rolefile, exactly as in the
                   no-membership branch; re-firing a blacklisted instance
                   is idempotent success, acked durably like the original
                   (the ack waits out any still-pending group commit). *)
                let allowed =
                  List.exists
                    (fun (e : Ast.entry) ->
                      fst e.Ast.head = role
                      &&
                      match e.Ast.revoker with
                      | Some r -> revoker_matches t r revoker
                      | None -> false)
                    (Ast.entries t.sv_rolefile)
                in
                if allowed && Hashtbl.mem t.sv_blacklist key then
                  ack_when_durable t (fun () -> reply (Ok 0))
                else reply (Error "revoker role does not match")
              end
              else begin
                with_revocation_span t ~reason:"role" (fun () ->
                    List.iter (fun (_, rbr) -> Credrec.invalidate t.sv_table rbr) eligible);
                (* The F record alone is not durable evidence of these
                   deaths: a later re-hire removes the blacklist entry, and
                   recovery would then re-arm the revoker records and
                   resurrect the fired memberships.  Persist the death of
                   each issued record the cascade just killed. *)
                (match t.sv_durable with
                | None -> ()
                | Some du ->
                    Hashtbl.fold
                      (fun key i acc -> if i.i_alive then key :: acc else acc)
                      du.du_issued []
                    |> List.iter (fun key ->
                           match Credrec.unmarshal_ref key with
                           | Some cref when Credrec.state t.sv_table cref = Credrec.False ->
                               persist_invalidate t cref
                           | _ -> ()));
                cell := rest;
                Hashtbl.replace t.sv_blacklist key ();
                persist_fire t key;
                audit t Revocation
                  (Printf.sprintf "%d membership(s) of %s revoked by role" (List.length eligible)
                     role);
                ack_when_durable t (fun () -> reply (Ok (List.length eligible)))
              end)))

let reinstate_role_instance t ~client_host ~revoker ~role ~args k =
  Net.send t.sv_net ~category:"oasis.rbr" ~size:128 ~src:client_host ~dst:t.sv_host (fun () ->
      let reply result =
        Net.send t.sv_net ~category:"oasis.rbr.reply" ~size:32 ~src:t.sv_host ~dst:client_host
          (fun () -> k result)
      in
      validate_revoker t revoker (function
      | Error e -> reply (Error ("revoker credential: " ^ e))
      | Ok () ->
          let allowed =
            List.exists
              (fun (e : Ast.entry) ->
                fst e.Ast.head = role
                && match e.Ast.revoker with Some r -> revoker_matches t r revoker | None -> false)
              (Ast.entries t.sv_rolefile)
          in
          if not allowed then reply (Error "no revocation right for this role")
          else begin
            Hashtbl.remove t.sv_blacklist (blacklist_key role args);
            persist_hire t (blacklist_key role args);
            ack_when_durable t (fun () -> reply (Ok ()))
          end))

(* --- interworking (§4.12) --- *)

let issue_arbitrary t ~client ~roles ~args =
  let crr = Credrec.leaf t.sv_table () in
  issue_cert t ~client ~roles ~args ~crr ()

let issue_with_record t ~client ~roles ~args ~crr = issue_cert t ~client ~roles ~args ~crr ()

let import_remote_record t ~peer ~remote =
  external_record t ~peer_name:peer ~remote_ref:remote ~initial:Credrec.True

let mint_delegation_record t ~delegator_crr ?expires_in ?(revoke_on_exit = false) () =
  let d_crr =
    if revoke_on_exit then begin
      let r = Credrec.combine_fresh t.sv_table [ (delegator_crr, false) ] in
      Credrec.set_auto_revoke t.sv_table r true;
      r
    end
    else Credrec.leaf t.sv_table ()
  in
  Credrec.set_direct_use t.sv_table d_crr true;
  (match expires_in with
  | Some dt ->
      Engine.schedule (Net.engine t.sv_net) ~delay:dt (fun () ->
          invalidate_traced t ~reason:"expire" d_crr)
  | None -> ());
  let r =
    {
      Cert.r_service = t.sv_name;
      r_role = "";
      r_delegator_crr = delegator_crr;
      r_target_crr = d_crr;
      r_sig = "";
    }
  in
  (d_crr, Cert.sign_revocation t.sv_secrets ~length:t.sv_sig_length r)

let revoke_certificate t (cert : Cert.rmc) =
  invalidate_traced t ~reason:"certificate" cert.Cert.crr

(* Delegating the right to revoke (§4.4): a special delegation that passes a
   revocation certificate on, under the fixed policy that the recipient must
   themselves be a member of the elector role. *)
let delegate_revocation t ~client_host ~rcert ~to_cert k =
  Net.send t.sv_net ~category:"oasis.redelegate" ~size:128 ~src:client_host ~dst:t.sv_host
    (fun () ->
      let reply result =
        Net.send t.sv_net ~category:"oasis.redelegate.reply" ~size:160 ~src:t.sv_host
          ~dst:client_host (fun () -> k result)
      in
      if not (String.equal rcert.Cert.r_service t.sv_name) then
        reply (Error "revocation certificate for another service")
      else if not (Cert.verify_revocation ~length:t.sv_sig_length t.sv_secrets rcert) then
        reply (Error "bad revocation signature")
      else if String.equal rcert.Cert.r_role "" then
        reply (Error "this revocation certificate cannot be re-delegated")
      else if not (verify_rmc_sig t to_cert) then reply (Error "bad candidate certificate")
      else if not (Cert.has_role ~role_bits:t.sv_role_bits to_cert rcert.Cert.r_role) then begin
        (* The fixed policy of §4.4. *)
        audit t Revocation_denied
          ("revocation right refused: candidate does not hold " ^ rcert.Cert.r_role);
        reply (Error ("candidate must hold the " ^ rcert.Cert.r_role ^ " role"))
      end
      else begin
        let fresh =
          {
            Cert.r_service = t.sv_name;
            r_role = rcert.Cert.r_role;
            r_delegator_crr = to_cert.Cert.crr;
            r_target_crr = rcert.Cert.r_target_crr;
            r_sig = "";
          }
        in
        audit t Delegation ("revocation right re-delegated for role " ^ rcert.Cert.r_role);
        reply (Ok (Cert.sign_revocation t.sv_secrets ~length:t.sv_sig_length fresh))
      end)

(* --- crash recovery (the restart hook registered in [create]) --- *)

(* Replay snapshot + log suffix and re-materialise the credential-record
   subgraph backing issued certificates:

   1. Rebuild the durable mirror (blacklist + issued table) by applying
      the snapshot's records, then the whole log — idempotent upserts, so
      an un-truncated log over a snapshot is harmless.
   2. Restore EVERY persisted record identity (alive and dead) before any
      fresh allocation, so a fresh record can never mint an (index, magic)
      pair colliding with a reference embedded in an outstanding
      certificate.
   3. Re-attach what each record's validity hangs on: local dependency
      parents (dangling ones read permanently False — certificates whose
      issue record was lost with the unsynced tail fail closed), external
      surrogates re-mirrored at Unknown and healed by the §4.10 reread
      machinery, and §4.11 revoker arms — re-armed, or invalidated
      outright when the instance is blacklisted.

   The whole pass is charged [Disk.scan_delay] for the durable bytes read
   and traced as one [oasis.recover.e2e] span. *)
let recover ?on_done t =
  match t.sv_durable with
  | None -> Option.iter (fun k -> k ()) on_done
  | Some du ->
      let disk = du.du_disk in
      let bytes =
        Disk.durable_size disk ~file:(Wal.file du.du_wal)
        + Disk.durable_size disk ~file:(Snapshot.file du.du_snap)
      in
      let tr = tracer t in
      let sp = Trace.start tr "oasis.recover.e2e" in
      Trace.add_attr sp "bytes" (string_of_int bytes);
      let t0 = Engine.now (Net.engine t.sv_net) in
      Engine.schedule (Net.engine t.sv_net) ~delay:(Disk.scan_delay disk ~bytes) (fun () ->
          let up = Net.host_up t.sv_net t.sv_host in
          (if up then
             Trace.with_ctx tr
               (Some (Trace.ctx_of sp))
               (fun () ->
                 let snap_records =
                   match Snapshot.load du.du_snap with
                   | None | Some "" -> []
                   | Some payload -> String.split_on_char '\x1c' payload
                 in
                 let log_records = Wal.recover du.du_wal in
                 List.iter (apply_record t du) (snap_records @ log_records);
                 let keys =
                   Hashtbl.fold (fun k _ acc -> k :: acc) du.du_issued []
                   |> List.sort String.compare
                 in
                 let restored =
                   List.filter_map
                     (fun key ->
                       match Credrec.unmarshal_ref key with
                       | None -> None
                       | Some cref ->
                           if Credrec.restore t.sv_table cref then begin
                             Credrec.set_direct_use t.sv_table cref true;
                             arm_notification t cref;
                             Some (key, cref)
                           end
                           else None)
                     keys
                 in
                 List.iter
                   (fun (key, cref) ->
                     match Hashtbl.find_opt du.du_issued key with
                     | None ->
                         (* The mirror lost this record between the restore
                            scan and re-attachment (a crash racing the
                            delayed recovery closure can do this).  Fail
                            safe — the orphaned slot reads False — and
                            audit instead of raising out of the engine. *)
                         audit t Erroneous ("recovery: issued record vanished: " ^ key);
                         Credrec.invalidate t.sv_table cref
                     | Some i when not i.i_alive -> Credrec.invalidate t.sv_table cref
                     | Some i -> begin
                       List.iter
                         (fun dep ->
                           match dep with
                           | Dloc dkey -> (
                               match Credrec.unmarshal_ref dkey with
                               | Some dref -> Credrec.add_parent t.sv_table ~child:cref dref
                               | None -> ())
                           | Dext (peer_name, rkey) -> (
                               match Credrec.unmarshal_ref rkey with
                               | None -> ()
                               | Some remote_ref ->
                                   let local =
                                     external_record t ~peer_name ~remote_ref
                                       ~initial:Credrec.Unknown
                                   in
                                   Credrec.add_parent t.sv_table ~child:cref local))
                         i.i_deps;
                       List.iter
                         (fun (role, argskey, revoker_role) ->
                           let rbr = Credrec.leaf t.sv_table ~state:Credrec.True () in
                           Credrec.set_direct_use t.sv_table rbr true;
                           Credrec.add_parent t.sv_table ~child:cref rbr;
                           if Hashtbl.mem t.sv_blacklist (role, argskey) then
                             Credrec.invalidate t.sv_table rbr
                           else begin
                             let cell =
                               match Hashtbl.find_opt t.sv_rbr (role, argskey) with
                               | Some c -> c
                               | None ->
                                   let c = ref [] in
                                   Hashtbl.replace t.sv_rbr (role, argskey) c;
                                   c
                             in
                             let revoker_ref =
                               {
                                 Ast.sref = Ast.local_service;
                                 role = revoker_role;
                                 ref_args = [];
                                 starred = false;
                               }
                             in
                             cell := (revoker_ref, rbr) :: !cell
                           end)
                         i.i_rbrs
                     end)
                   restored;
                 (* Kick the reread machinery: every re-mirrored external is
                    Unknown until its issuer answers (§4.10). *)
                 Hashtbl.iter
                   (fun peer_name pl ->
                     Hashtbl.iter
                       (fun key _ -> Hashtbl.replace pl.pl_reread_pending key ())
                       pl.pl_externals;
                     match find_service t.sv_registry peer_name with
                     | None -> ()
                     | Some peer ->
                         with_peer_session t pl (fun session ->
                             if not pl.pl_rereading then reread_pending t pl peer session))
                   t.sv_peers;
                 Stats.incr (stats t) "oasis.recover";
                 Stats.observe (stats t) "oasis.recover.records"
                   (List.length snap_records + List.length log_records)));
          Trace.finish tr sp;
          Stats.observe_latency (stats t) "oasis.recover.e2e"
            (Engine.now (Net.engine t.sv_net) -. t0);
          (* The completion hook only fires when the replay actually ran: a
             crash racing the delayed closure aborts the recovery, and the
             caller (a replica promotion) must not treat it as finished. *)
          if up then Option.iter (fun k -> k ()) on_done)

let () = recover_ref := fun t -> recover t

(* --- durability introspection (tests and benches) --- *)

let durable_enabled t = Option.is_some t.sv_durable

let durable_issued t =
  match t.sv_durable with
  | None -> 0
  | Some du -> Hashtbl.fold (fun _ i n -> if i.i_alive then n + 1 else n) du.du_issued 0

let durable_flush t =
  match t.sv_durable with None -> () | Some du -> Wal.flush du.du_wal

let blacklisted t ~role ~args = Hashtbl.mem t.sv_blacklist (blacklist_key role args)

(* --- state fingerprint (model checking) --- *)

let fp_key = Oasis_util.Siphash.key_of_string "oasis.service.fingerprint"

let fingerprint t =
  let b = Buffer.create 512 in
  let add_sorted xs =
    List.iter
      (fun x ->
        Buffer.add_string b x;
        Buffer.add_char b '\x02')
      (List.sort String.compare xs)
  in
  Buffer.add_string b (Int64.to_string (Credrec.fingerprint t.sv_table));
  Buffer.add_char b '\x03';
  add_sorted
    (Hashtbl.fold (fun (r, a) () acc -> (r ^ "\x01" ^ a) :: acc) t.sv_blacklist []);
  Buffer.add_char b '\x03';
  add_sorted (Hashtbl.fold (fun k v acc -> (k ^ "=" ^ v) :: acc) t.sv_pending_mods []);
  Buffer.add_char b '\x03';
  (match t.sv_durable with
  | None -> ()
  | Some du ->
      add_sorted
        (Hashtbl.fold
           (fun k i acc -> (k ^ if i.i_alive then "+" else "-") :: acc)
           du.du_issued []);
      Buffer.add_char b '\x03';
      Buffer.add_string b (Int64.to_string (Disk.fingerprint du.du_disk)));
  Oasis_util.Siphash.hash fp_key (Buffer.contents b)
