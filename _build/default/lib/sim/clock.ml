type t = { engine : Engine.t; mutable rate : float; mutable offset : float }

let create ?(rate = 1.0) ?(offset = 0.0) engine = { engine; rate; offset }
let read t = (t.rate *. Engine.now t.engine) +. t.offset
let true_time t = Engine.now t.engine
let set_rate t rate = t.rate <- rate
let set_offset t offset = t.offset <- offset
