(** The wall-clock backend: a monotonic time source, a [select]-driven
    event loop, length-prefixed TCP messaging over loopback sockets, and
    real files with [fsync] behind the {!Oasis_store.Disk} interface.

    {b Clock} — {!Oasis_sim.Engine.now} reads [Unix.gettimeofday]
    normalized to the backend's start, so traces and percentiles are in
    seconds-since-start just like the simulator's virtual clock.

    {b Messaging} — in-process hosts talk through {!Oasis_sim.Net}
    unchanged (zero latency); the serialized named-port surface
    ({!Oasis_sim.Net.call}) additionally reaches {e remote} hosts
    registered with {!peer}.  Frames on the wire reuse the WAL's
    length+SipHash framing idiom: [%08x] payload length, 16 hex chars of
    SipHash-2-4 over the payload, then the payload.  A checksum mismatch
    means a desynchronized stream and drops the connection; outstanding
    calls are answered by their {!Oasis_sim.Net} timeouts.

    {b Storage} — one directory per host under {!data_dir}.  [append]
    buffers in memory (the page-cache analogue); [fsync] writes the
    buffered tail and calls [Unix.fsync]; abandoning the handle loses the
    unsynced tail, mirroring the simulated device's crash contract. *)

type t

val create :
  ?data_dir:string -> ?seed:int64 -> ?latency:Oasis_sim.Net.latency -> unit -> t
(** [data_dir] defaults to a fresh per-pid directory under the system temp
    dir.  [latency] (default [Fixed 0.0]) applies to {e in-process}
    delivery only — the wire provides its own, real, latency.  [seed]
    seeds retry jitter. *)

val pack : t -> Backend.t

val data_dir : t -> string

val listen : t -> ?port:int -> unit -> int
(** Accept remote connections on loopback.  [port] defaults to [0]
    (ephemeral); returns the actual port bound. *)

val peer : t -> name:string -> port:int -> unit
(** Register remote host [name] as reachable at loopback:[port].
    {!Oasis_sim.Net.call}s addressed to a name that is not a local host
    are framed and sent there. *)

val alias : t -> name:string -> local:string -> unit
(** Rewrite inbound envelope destination [name] to local host [local] —
    lets a process address its own hosts over the wire (bench [e22]) and
    decouples wire names from host names. *)

val disk : t -> Oasis_sim.Net.host -> Oasis_store.Disk.t
(** The host's real-file device (memoized; directory
    [data_dir/<host name>]). *)

val reopen_disk : t -> Oasis_sim.Net.host -> Oasis_store.Disk.t
(** Crash-and-recover: drop the open handle — losing in-memory unsynced
    tails — and re-attach a fresh device to the same directory.  The new
    device sees exactly the durable prefix. *)

val shutdown : t -> unit
(** Close all sockets (listeners and connections). *)
