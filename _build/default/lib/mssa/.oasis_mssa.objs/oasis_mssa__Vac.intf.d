lib/mssa/vac.mli: Custode Oasis_core Oasis_sim
