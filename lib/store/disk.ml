module Net = Oasis_sim.Net
module Engine = Oasis_sim.Engine
module Stats = Oasis_sim.Stats
module Prng = Oasis_util.Prng

(* One byte file: [data] is everything ever appended this incarnation,
   [synced] the length of the durable prefix.  A crash truncates [data] to
   [synced] plus a seeded-random surviving prefix of the unsynced tail, then
   marks the survivor durable — the classic torn final write. *)
type file = { mutable data : Buffer.t; mutable synced : int }

type t = {
  d_net : Net.t;
  d_host : Net.host;
  d_fsync_latency : float;
  d_write_bw : float;
  d_read_bw : float;
  d_files : (string, file) Hashtbl.t;
  mutable d_epoch : int;  (* bumped on crash: in-flight flushes die *)
}

let stats t = Net.stats t.d_net
let host t = t.d_host
let net t = t.d_net

let file t name =
  match Hashtbl.find_opt t.d_files name with
  | Some f -> f
  | None ->
      let f = { data = Buffer.create 256; synced = 0 } in
      Hashtbl.add t.d_files name f;
      f

let create net host ?(fsync_latency = 5e-4) ?(write_bandwidth = 1e8) ?(read_bandwidth = 2e8) ()
    =
  let t =
    {
      d_net = net;
      d_host = host;
      d_fsync_latency = fsync_latency;
      d_write_bw = write_bandwidth;
      d_read_bw = read_bandwidth;
      d_files = Hashtbl.create 4;
      d_epoch = 0;
    }
  in
  Net.on_crash net host (fun () ->
      t.d_epoch <- t.d_epoch + 1;
      let prng = Net.prng net in
      Hashtbl.iter
        (fun _ f ->
          let len = Buffer.length f.data in
          let pending = len - f.synced in
          if pending > 0 then begin
            (* A random prefix of the unsynced tail reached the platter. *)
            let keep = Prng.int prng (pending + 1) in
            let survivor = Buffer.sub f.data 0 (f.synced + keep) in
            let b = Buffer.create (String.length survivor + 256) in
            Buffer.add_string b survivor;
            f.data <- b;
            f.synced <- f.synced + keep;
            Stats.add_bytes (stats t) "store.crash.lost" (pending - keep);
            if keep > 0 && keep < pending then Stats.incr (stats t) "store.crash.torn"
          end)
        t.d_files);
  t

let append t ~file:name data =
  if Net.host_up t.d_net t.d_host then begin
    let f = file t name in
    Buffer.add_string f.data data;
    Stats.observe (stats t) "store.write" (String.length data)
  end

let flush_delay t pending = t.d_fsync_latency +. (float_of_int pending /. t.d_write_bw)

let fsync t ~file:name k =
  if Net.host_up t.d_net t.d_host then begin
    let f = file t name in
    let target = Buffer.length f.data in
    let pending = target - f.synced in
    let epoch = t.d_epoch in
    let delay = flush_delay t pending in
    Engine.schedule (Net.engine t.d_net) ~tag:("s:" ^ Net.host_name t.d_host) ~delay (fun () ->
        if epoch = t.d_epoch && Net.host_up t.d_net t.d_host then begin
          if target > f.synced then f.synced <- target;
          Stats.incr (stats t) "store.fsync";
          Stats.observe_latency (stats t) "store.fsync" delay;
          k ()
        end)
  end

let write_atomic t ~file:name data k =
  if Net.host_up t.d_net t.d_host then begin
    let f = file t name in
    let epoch = t.d_epoch in
    let baseline = Buffer.length f.data in
    let delay = flush_delay t (String.length data) in
    Stats.observe (stats t) "store.write" (String.length data);
    Engine.schedule (Net.engine t.d_net) ~tag:("s:" ^ Net.host_name t.d_host) ~delay (fun () ->
        if epoch = t.d_epoch && Net.host_up t.d_net t.d_host then begin
          (* The rename lands: everything that existed at the call is
             replaced in one step.  Bytes appended while the write was in
             flight are preserved after the new contents (the compacting
             caller wrote a temp file, renamed it, then re-appended the
             journal tail) — without this, a log compaction racing live
             appends would silently drop records. *)
          let tail = Buffer.sub f.data baseline (Buffer.length f.data - baseline) in
          let synced_tail = max 0 (f.synced - baseline) in
          let b = Buffer.create (String.length data + String.length tail + 256) in
          Buffer.add_string b data;
          Buffer.add_string b tail;
          f.data <- b;
          f.synced <- String.length data + synced_tail;
          Stats.incr (stats t) "store.fsync";
          Stats.observe_latency (stats t) "store.fsync" delay;
          k ()
        end)
  end

let truncate t ~file:name =
  let f = file t name in
  f.data <- Buffer.create 256;
  f.synced <- 0;
  Stats.incr (stats t) "store.truncate"

let read t ~file:name =
  let f = file t name in
  Buffer.sub f.data 0 f.synced

let durable_size t ~file:name = (file t name).synced
let unsynced t ~file:name =
  let f = file t name in
  Buffer.length f.data - f.synced

let scan_delay t ~bytes = t.d_fsync_latency +. (float_of_int bytes /. t.d_read_bw)

let files t = Hashtbl.fold (fun k _ acc -> k :: acc) t.d_files [] |> List.sort String.compare

let fp_key = Oasis_util.Siphash.key_of_string "oasis.disk.fingerprint"

let fingerprint t =
  let b = Buffer.create 256 in
  List.iter
    (fun name ->
      let f = file t name in
      Buffer.add_string b name;
      Buffer.add_char b '\x00';
      Buffer.add_string b (string_of_int f.synced);
      Buffer.add_char b '\x00';
      Buffer.add_buffer b f.data;
      Buffer.add_char b '\x01')
    (files t);
  Oasis_util.Siphash.hash fp_key (Buffer.contents b)
