module Prng = Oasis_util.Prng

type latency = Fixed of float | Uniform of float * float | Exponential of float

type host = { addr : int; name : string; clock : Clock.t }

type t = {
  engine : Engine.t;
  stats : Stats.t;
  prng : Prng.t;
  mutable default_latency : latency;
  link_latency : (int * int, latency) Hashtbl.t;
  mutable loss : float;
  partitions : (int * int, unit) Hashtbl.t;
  mutable hosts : host list;
  mutable next_addr : int;
}

let create ?(seed = 42L) ?(latency = Fixed 0.002) engine =
  {
    engine;
    stats = Stats.create ();
    prng = Prng.create seed;
    default_latency = latency;
    link_latency = Hashtbl.create 16;
    loss = 0.0;
    partitions = Hashtbl.create 16;
    hosts = [];
    next_addr = 0;
  }

let engine t = t.engine
let stats t = t.stats
let prng t = t.prng

let add_host t ?(clock_rate = 1.0) ?(clock_offset = 0.0) name =
  let host =
    {
      addr = t.next_addr;
      name;
      clock = Clock.create ~rate:clock_rate ~offset:clock_offset t.engine;
    }
  in
  t.next_addr <- t.next_addr + 1;
  t.hosts <- host :: t.hosts;
  host

let host_name h = h.name
let host_clock h = h.clock
let host_addr h = h.addr
let find_host t name = List.find_opt (fun h -> String.equal h.name name) t.hosts
let set_default_latency t l = t.default_latency <- l
let set_link_latency t src dst l = Hashtbl.replace t.link_latency (src.addr, dst.addr) l

let set_loss t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Net.set_loss: probability out of range";
  t.loss <- p

let partition t a b =
  Hashtbl.replace t.partitions (a.addr, b.addr) ();
  Hashtbl.replace t.partitions (b.addr, a.addr) ()

let heal t a b =
  Hashtbl.remove t.partitions (a.addr, b.addr);
  Hashtbl.remove t.partitions (b.addr, a.addr)

let partitioned t a b = Hashtbl.mem t.partitions (a.addr, b.addr)

let sample_latency t src dst =
  let model =
    match Hashtbl.find_opt t.link_latency (src.addr, dst.addr) with
    | Some l -> l
    | None -> t.default_latency
  in
  match model with
  | Fixed d -> d
  | Uniform (lo, hi) -> Prng.uniform_in t.prng ~lo ~hi
  | Exponential mean -> 0.001 +. Prng.exponential t.prng ~mean

let account t category size =
  Stats.incr t.stats category;
  Stats.add_bytes t.stats category size

let send t ?(category = "msg") ?(size = 64) ~src ~dst action =
  account t category size;
  if src.addr = dst.addr then Engine.schedule t.engine ~delay:0.0 action
  else if partitioned t src dst then Stats.incr t.stats (category ^ ".partitioned")
  else if t.loss > 0.0 && Prng.float t.prng 1.0 < t.loss then
    Stats.incr t.stats (category ^ ".lost")
  else Engine.schedule t.engine ~delay:(sample_latency t src dst) action

let rpc t ?(category = "rpc") ?size ?(timeout = 2.0) ~src ~dst handler k =
  let done_ = ref false in
  Engine.schedule t.engine ~delay:timeout (fun () ->
      if not !done_ then begin
        done_ := true;
        Stats.incr t.stats (category ^ ".timeout");
        k (Error "timeout")
      end);
  send t ~category ?size ~src ~dst (fun () ->
      let result = handler () in
      send t ~category:(category ^ ".reply") ?size ~src:dst ~dst:src (fun () ->
          if not !done_ then begin
            done_ := true;
            k result
          end))

let local_call t ?(category = "local") f =
  Stats.incr t.stats category;
  f ()
