test/test_extensions.ml: Alcotest Array Format Int64 List Oasis_badge Oasis_core Oasis_esec Oasis_events Oasis_rdl Oasis_sim Option QCheck QCheck_alcotest Result String
