examples/badge_monitor.ml: Array List Oasis_badge Oasis_core Oasis_esec Oasis_events Oasis_rdl Oasis_sim Printf Result
