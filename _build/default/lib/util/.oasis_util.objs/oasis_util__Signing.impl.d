lib/util/signing.ml: List Printf Prng Siphash String
