(* Randomized credential-record DAG suite (§4.6–4.8).

   A seeded generator builds random DAGs (random depth, fan-out, operators
   and negated parent edges) and drives them through arbitrary interleavings
   of leaf flips, revocations, edge attachment, permanence and GC sweeps.
   After every operation the implementation is audited against a pure model
   evaluator:

   - {!Credrec.self_check}: edge/back-index symmetry, counter sums, state
     consistency with counters (no dangling child refs);
   - every live record's state equals the model's three-valued evaluation;
   - a cascade fires change hooks on a subset of the dependent set that
     covers every record whose settled state changed (the cascade reaches
     exactly the dependent set, up to transient glitches inside it);
   - replaying a seed reproduces the identical final state vector.

   A second, service-level half replays random revoke/crash interleavings
   against two identically-seeded worlds — one with batched (heartbeat
   coalesced) notifications, one with per-event notifications — and checks
   that both converge to identical validation outcomes. *)

module Credrec = Oasis_core.Credrec
module Service = Oasis_core.Service
module Group = Oasis_core.Group
module Principal = Oasis_core.Principal
module Engine = Oasis_sim.Engine
module Net = Oasis_sim.Net
module Prng = Oasis_util.Prng
module V = Oasis_rdl.Value

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* The pure model                                                      *)
(* ------------------------------------------------------------------ *)

(* A model edge remembers the parent's node id, the negation mark and
   whether the parent was already dead when the edge was added (a dead
   parent contributes a frozen False, §4.8's dangling-reference rule). *)
type medge = { pid : int; neg : bool; frozen_false : bool }

type mnode = {
  id : int;
  cref : Credrec.cref;
  is_leaf : bool;
  mop : Credrec.op;
  mutable leaf_st : Credrec.state;
  mutable parents : medge list;
  (* [Some s]: the node is frozen at [s] forever (explicit permanence,
     revocation, or observed initial pin).  GC-forced permanence is not
     tracked: a forced value is dominated by a pinned forcing input, so the
     plain evaluation below stays correct. *)
  mutable pinned : Credrec.state option;
  hooked : bool;
  mutable fired : int;
}

let seen neg s =
  if not neg then s
  else match s with Credrec.True -> Credrec.False | Credrec.False -> Credrec.True | u -> u

(* Mirrors [Credrec.computed_state]: counter logic over the inputs, with
   output inversion for Nand/Nor. *)
let comb_eval op inputs =
  let base =
    match op with
    | Credrec.And | Credrec.Nand ->
        if List.mem Credrec.False inputs then Credrec.False
        else if List.mem Credrec.Unknown inputs then Credrec.Unknown
        else Credrec.True
    | Credrec.Or | Credrec.Nor ->
        if List.mem Credrec.True inputs then Credrec.True
        else if List.mem Credrec.Unknown inputs then Credrec.Unknown
        else Credrec.False
  in
  match op with Credrec.And | Credrec.Or -> base | Credrec.Nand | Credrec.Nor -> seen true base

let rec meval nodes id =
  let n = nodes.(id) in
  match n.pinned with
  | Some s -> s
  | None ->
      if n.is_leaf then n.leaf_st
      else
        comb_eval n.mop
          (List.map
             (fun e -> seen e.neg (if e.frozen_false then Credrec.False else meval nodes e.pid))
             n.parents)

(* Transitive dependent set of [src] over the model adjacency (frozen edges
   never propagate), including [src] itself. *)
let descendants nodes src =
  let n = Array.length nodes in
  let inset = Array.make n false in
  inset.(src) <- true;
  let again = ref true in
  while !again do
    again := false;
    Array.iter
      (fun nd ->
        if not inset.(nd.id) then
          if
            List.exists (fun e -> (not e.frozen_false) && inset.(e.pid)) nd.parents
          then begin
            inset.(nd.id) <- true;
            again := true
          end)
      nodes
  done;
  inset

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)
(* ------------------------------------------------------------------ *)

let ops_arr = [| Credrec.And; Credrec.Or; Credrec.Nand; Credrec.Nor |]
let states_arr = [| Credrec.True; Credrec.False; Credrec.Unknown |]

let build_graph rng t =
  let n_leaves = 4 + Prng.int rng 6 in
  let n_combs = 6 + Prng.int rng 10 in
  let nodes = ref [] in
  let k = ref 0 in
  for _ = 1 to n_leaves do
    let st = Prng.pick rng states_arr in
    let r = Credrec.leaf t ~state:st () in
    nodes :=
      { id = !k; cref = r; is_leaf = true; mop = Credrec.And; leaf_st = st; parents = [];
        pinned = None; hooked = Prng.bool rng; fired = 0 }
      :: !nodes;
    incr k
  done;
  for _ = 1 to n_combs do
    let mop = Prng.pick rng ops_arr in
    let nparents = 1 + Prng.int rng 3 in
    let parents =
      List.init nparents (fun _ ->
          { pid = Prng.int rng !k; neg = Prng.bool rng; frozen_false = false })
    in
    let r =
      Credrec.combine_fresh t ~op:mop
        (List.map (fun e -> ((List.nth !nodes (!k - 1 - e.pid)).cref, e.neg)) parents)
    in
    nodes :=
      { id = !k; cref = r; is_leaf = false; mop; leaf_st = Credrec.True; parents;
        pinned = None; hooked = Prng.bool rng; fired = 0 }
      :: !nodes;
    incr k
  done;
  let arr = Array.of_list (List.rev !nodes) in
  Array.iter
    (fun nd ->
      Credrec.set_direct_use t nd.cref (Prng.bool rng);
      if nd.hooked then Credrec.on_change t nd.cref (fun _ -> nd.fired <- nd.fired + 1))
    arr;
  arr

let check_states t nodes ctx =
  (match Credrec.self_check t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: self_check: %s" ctx e);
  Array.iter
    (fun nd ->
      if Credrec.live t nd.cref then
        let want = meval nodes nd.id in
        let got = Credrec.state t nd.cref in
        if got <> want then
          Alcotest.failf "%s: node %d: impl %a, model %a" ctx nd.id Credrec.pp_state got
            Credrec.pp_state want)
    nodes

(* One random operation, mirrored on implementation and model.  Returns the
   source node id when the op is a direct state change (so the caller can
   check the fired set against the dependent set). *)
let random_op rng t nodes =
  let pick_node () = nodes.(Prng.int rng (Array.length nodes)) in
  match Prng.int rng 100 with
  | x when x < 35 -> (
      (* flip a leaf *)
      let nd = pick_node () in
      if nd.is_leaf && Credrec.live t nd.cref then begin
        let st = Prng.pick rng states_arr in
        Credrec.set_leaf t nd.cref st;
        match nd.pinned with
        | Some _ -> None (* permanent: implementation ignores it too *)
        | None ->
            let changed = nd.leaf_st <> st in
            nd.leaf_st <- st;
            if changed then Some nd.id else None
      end
      else None)
  | x when x < 45 ->
      (* revoke *)
      let nd = pick_node () in
      if Credrec.live t nd.cref && not (Credrec.is_permanent t nd.cref) then begin
        Credrec.invalidate t nd.cref;
        nd.pinned <- Some Credrec.False;
        Some nd.id
      end
      else None
  | x when x < 65 ->
      (* attach an extra parent to a combining record; keep the DAG by only
         wiring lower ids into higher ones *)
      let child = pick_node () in
      if (not child.is_leaf) && Credrec.live t child.cref && child.id > 0 then begin
        let parent = nodes.(Prng.int rng child.id) in
        let neg = Prng.bool rng in
        Credrec.add_parent t ~child:child.cref ~negated:neg parent.cref;
        child.parents <-
          { pid = parent.id; neg; frozen_false = not (Credrec.live t parent.cref) }
          :: child.parents
      end;
      None
  | x when x < 75 ->
      (* freeze at the current value (skip Unknown: baking a frozen Unknown
         input is not meaningful — permanence in OASIS freezes settled
         beliefs) *)
      let nd = pick_node () in
      if Credrec.live t nd.cref && not (Credrec.is_permanent t nd.cref) then begin
        let st = Credrec.state t nd.cref in
        if st <> Credrec.Unknown then begin
          Credrec.make_permanent t nd.cref;
          nd.pinned <- Some st
        end
      end;
      None
  | x when x < 85 ->
      let nd = pick_node () in
      if Credrec.live t nd.cref then Credrec.set_direct_use t nd.cref (Prng.bool rng);
      None
  | _ ->
      ignore (Credrec.gc_sweep t);
      None

let run_case seed =
  let rng = Prng.create (Int64.of_int (0x5eed0000 + seed)) in
  let t = Credrec.create_table () in
  let nodes = build_graph rng t in
  check_states t nodes (Printf.sprintf "seed %d: after build" seed);
  let n_ops = 30 + Prng.int rng 20 in
  for opi = 1 to n_ops do
    Array.iter (fun nd -> nd.fired <- 0) nodes;
    let live_before =
      Array.map (fun nd -> if Credrec.live t nd.cref then Some (meval nodes nd.id) else None) nodes
    in
    let source = random_op rng t nodes in
    let ctx = Printf.sprintf "seed %d: op %d" seed opi in
    check_states t nodes ctx;
    (* Cascade coverage: on a direct state change, hooks must have fired on
       every hooked dependent whose settled state changed, and only inside
       the dependent set. *)
    match source with
    | None -> ()
    | Some src ->
        let dep = descendants nodes src in
        Array.iteri
          (fun i nd ->
            if nd.fired > 0 && not dep.(i) then
              Alcotest.failf "%s: hook fired outside the dependent set (node %d)" ctx i;
            match live_before.(i) with
            | Some before
              when nd.hooked && Credrec.live t nd.cref && meval nodes i <> before
                   && nd.fired = 0 ->
                Alcotest.failf "%s: node %d changed state but its hook never fired" ctx i
            | _ -> ())
          nodes
  done;
  (* Final state vector for replay comparison. *)
  Array.map
    (fun nd -> if Credrec.live t nd.cref then Some (Credrec.state t nd.cref) else None)
    nodes

let test_randomized_dags () =
  for seed = 0 to 219 do
    let v1 = run_case seed in
    (* Replay-identical per seed. *)
    let v2 = run_case seed in
    if v1 <> v2 then Alcotest.failf "seed %d: replay diverged" seed
  done

(* ------------------------------------------------------------------ *)
(* Cascade shape: each record recomputed once per settled change        *)
(* ------------------------------------------------------------------ *)

(* A stack of diamonds: root -> (a_i, b_i) -> join_i -> (a_{i+1}, ...).
   Flipping the root must fire each join's hook exactly once — the
   generation-stamped worklist recomputes each record with settled
   counters instead of once per path (2^depth paths here). *)
let test_diamond_visits_once () =
  let t = Credrec.create_table () in
  let root = Credrec.leaf t () in
  let depth = 12 in
  let fires = Array.make depth 0 in
  let top = ref root in
  for i = 0 to depth - 1 do
    let a = Credrec.combine_fresh t [ (!top, false) ] in
    let b = Credrec.combine_fresh t [ (!top, false) ] in
    let join = Credrec.combine_fresh t [ (a, false); (b, false) ] in
    Credrec.on_change t join (fun _ -> fires.(i) <- fires.(i) + 1);
    top := join
  done;
  let ops_before = Credrec.edge_ops t in
  Credrec.set_leaf t root Credrec.False;
  checkb "cascade reached the sink" true (Credrec.state t !top = Credrec.False);
  Array.iteri (fun i n -> checki (Printf.sprintf "join %d fired once" i) 1 n) fires;
  (* 3 edges per diamond plus the root fan-out: strictly linear in depth. *)
  checkb "edge work linear in depth" true (Credrec.edge_ops t - ops_before <= 4 * depth)

(* ------------------------------------------------------------------ *)
(* O(1) detach under GC (the old code rebuilt the child list per death)  *)
(* ------------------------------------------------------------------ *)

let test_detach_is_constant_time () =
  let t = Credrec.create_table () in
  let parent = Credrec.leaf t () in
  let n = 10_000 in
  let kids =
    Array.init n (fun _ ->
        let c = Credrec.combine_fresh t [ (parent, false) ] in
        Credrec.set_direct_use t c true;
        c)
  in
  checki "all edges attached" n (Credrec.children_count t parent);
  (* Retire the first 2000 children one sweep at a time: each death must
     cost O(1) edge operations, not a rebuild of the 10k-entry child set. *)
  let singles = 2000 in
  let ops0 = Credrec.edge_ops t in
  for i = 0 to singles - 1 do
    Credrec.set_direct_use t kids.(i) false;
    checki (Printf.sprintf "sweep %d reclaims one" i) 1 (Credrec.gc_sweep t)
  done;
  let spent = Credrec.edge_ops t - ops0 in
  checkb
    (Printf.sprintf "detach cost linear in deaths (%d ops for %d deaths)" spent singles)
    true
    (spent < 50 * singles);
  checki "survivors still attached" (n - singles) (Credrec.children_count t parent);
  (* Bulk death: one sweep reclaims all remaining children... *)
  for i = singles to n - 1 do
    Credrec.set_direct_use t kids.(i) false
  done;
  checki "bulk sweep reclaims the rest" (n - singles) (Credrec.gc_sweep t);
  checki "parent now childless" 0 (Credrec.children_count t parent);
  (* ...and the parent itself goes on the next sweep (candidates are decided
     before frees — the paper's iterated-sweep settling). *)
  Credrec.set_direct_use t parent false;
  checki "parent collected next sweep" 1 (Credrec.gc_sweep t);
  checki "table empty" 0 (Credrec.live_records t);
  match Credrec.self_check t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "self_check after churn: %s" e

(* ------------------------------------------------------------------ *)
(* Service level: batched and per-event notification are equivalent     *)
(* ------------------------------------------------------------------ *)

let login_rolefile = {|
def LoggedOn(u, h) u: String h: String
LoggedOn(u, h) <-
|}

let fresh_vci =
  let host = Principal.Host.create "credgraphclient" in
  let domain = Principal.Host.boot_domain host in
  fun () -> Principal.Host.new_vci host domain

type fault_op = Revoke of int | Crash | Restart | Wait of float

(* Pre-draw the schedule so both worlds replay the identical interleaving. *)
let draw_schedule rng ~users =
  List.init
    (4 + Prng.int rng 5)
    (fun _ ->
      match Prng.int rng 10 with
      | x when x < 4 -> Revoke (Prng.int rng users)
      | x when x < 6 -> Crash
      | x when x < 8 -> Restart
      | _ -> Wait (0.2 +. Prng.float rng 1.8))

(* Build a Login+Conf world, enter [users] memberships, replay [schedule]
   (crashes hit the issuing service's host only), heal, settle, and return
   the per-user validation outcome vector. *)
let interleaving_outcomes ~batch ~seed schedule users =
  let engine = Engine.create () in
  let net = Net.create ~seed ~latency:(Net.Fixed 0.005) engine in
  let reg = Service.create_registry () in
  let client_host = Net.add_host net "client" in
  let mk name rolefile =
    let host = Net.add_host net ("h." ^ name) in
    match
      Service.create net host reg ~name ~rolefile ~batch_notifications:batch ()
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "service %s: %s" name e
  in
  let login = mk "Login" login_rolefile in
  let conf = mk "Conf" {|
Member(u) <- Login.LoggedOn(u, h)* : (u in staff)*
|} in
  let staff = Service.group conf "staff" in
  let run dt = Engine.run ~until:(Engine.now engine +. dt) engine in
  let clients = Array.init users (fun _ -> fresh_vci ()) in
  let login_certs =
    Array.mapi
      (fun i u ->
        Group.add staff (V.Str u);
        Service.issue_arbitrary login ~client:clients.(i) ~roles:[ "LoggedOn" ]
          ~args:[ V.Str u; V.Str "ely" ])
      (Array.init users (fun i -> Printf.sprintf "u%d" i))
  in
  let members = Array.make users None in
  Array.iteri
    (fun i _ ->
      Service.request_entry conf ~client_host ~client:clients.(i) ~role:"Member"
        ~creds:[ login_certs.(i) ]
        (function Ok c -> members.(i) <- Some c | Error e -> Alcotest.failf "entry: %s" e))
    clients;
  run 3.0;
  let members = Array.map (function Some c -> c | None -> Alcotest.fail "entry hung") members in
  let down = ref false in
  List.iter
    (fun op ->
      match op with
      | Revoke i -> Service.revoke_certificate login login_certs.(i)
      | Crash ->
          if not !down then begin
            Net.crash_host net (Service.host login);
            down := true
          end
      | Restart ->
          if !down then begin
            Net.restart_host net (Service.host login);
            down := false
          end
      | Wait dt -> run dt)
    schedule;
  if !down then Net.restart_host net (Service.host login);
  run 10.0;
  Array.mapi (fun i m -> Service.validate conf ~client:clients.(i) m = Ok ()) members

let test_batched_equals_unbatched () =
  for seed = 0 to 24 do
    let rng = Prng.create (Int64.of_int (0xba7c4 + seed)) in
    let users = 4 + Prng.int rng 5 in
    let schedule = draw_schedule rng ~users in
    let revoked = Array.make users false in
    List.iter (function Revoke i -> revoked.(i) <- true | _ -> ()) schedule;
    let netseed = Int64.of_int (7000 + seed) in
    let batched = interleaving_outcomes ~batch:true ~seed:netseed schedule users in
    let unbatched = interleaving_outcomes ~batch:false ~seed:netseed schedule users in
    if batched <> unbatched then
      Alcotest.failf "seed %d: batched and unbatched final states diverge" seed;
    Array.iteri
      (fun i ok ->
        if ok <> not revoked.(i) then
          Alcotest.failf "seed %d: user %d converged to the wrong state" seed i)
      batched;
    (* Replay-identical per seed. *)
    if seed < 2 then begin
      let again = interleaving_outcomes ~batch:true ~seed:netseed schedule users in
      if again <> batched then Alcotest.failf "seed %d: batched replay diverged" seed
    end
  done

let () =
  Alcotest.run "credgraph"
    [
      ( "randomized",
        [
          Alcotest.test_case "220 seeded DAG interleavings" `Quick test_randomized_dags;
          Alcotest.test_case "batched = unbatched under faults (25 seeds)" `Quick
            test_batched_equals_unbatched;
        ] );
      ( "asymptotics",
        [
          Alcotest.test_case "diamond cascade visits once" `Quick test_diamond_visits_once;
          Alcotest.test_case "O(1) detach at 10k children" `Quick test_detach_is_constant_time;
        ] );
    ]
