(* Quickstart: the paper's running example (fig 3.1).

   A Login service names users; a conference service defines Chair and
   Member roles in RDL.  jmb logs on and becomes Chair; dm is elected a
   Member by delegation; removing dm from the staff group revokes the
   membership instantly — the membership rule (u in staff)* at work.

   Run with: dune exec examples/quickstart.exe *)

module Engine = Oasis_sim.Engine
module Net = Oasis_sim.Net
module Service = Oasis_core.Service
module Group = Oasis_core.Group
module Principal = Oasis_core.Principal
module V = Oasis_rdl.Value

let say fmt = Printf.printf (fmt ^^ "\n")

let () =
  (* A simulated world: an engine, a network, three hosts. *)
  let engine = Engine.create () in
  let net = Net.create ~latency:(Net.Fixed 0.01) engine in
  let registry = Service.create_registry () in
  let login_host = Net.add_host net "login-host" in
  let conf_host = Net.add_host net "conf-host" in
  let client_host = Net.add_host net "ely" in
  let run dt = Engine.run ~until:(Engine.now engine +. dt) engine in

  (* The Login service: LoggedOn(user, host) certificates, issued by the
     bootstrap mechanism (a password exchange in real life, §3.4.3). *)
  let login =
    Result.get_ok
      (Service.create net login_host registry ~name:"Login"
         ~rolefile:{|
def LoggedOn(u, h) u: String h: String
LoggedOn(u, h) <-
|} ())
  in

  (* The conference service — the rolefile of fig 3.1, verbatim (modulo
     ASCII): Chair for jmb; Members elected by the Chair, staff only, with
     starred membership rules. *)
  let conf =
    Result.get_ok
      (Service.create net conf_host registry ~name:"Conf"
         ~rolefile:
           {|
Chair <- Login.LoggedOn("jmb", h)
Member(u) <- Login.LoggedOn(u, h)* <|* Chair : (u in staff)*
|}
         ())
  in
  Group.add (Service.group conf "staff") (V.Str "dm");
  say "rolefile loaded:\n%s" (Oasis_rdl.Pretty.to_string (Service.rolefile conf));

  (* Principals: processes on the client host, each with a VCI (§2.8). *)
  let host = Principal.Host.create "ely" in
  let domain = Principal.Host.boot_domain host in
  let jmb = Principal.Host.new_vci host domain in
  let dm = Principal.Host.new_vci host domain in

  (* Log both users on. *)
  let jmb_login =
    Service.issue_arbitrary login ~client:jmb ~roles:[ "LoggedOn" ]
      ~args:[ V.Str "jmb"; V.Str "ely" ]
  in
  let dm_login =
    Service.issue_arbitrary login ~client:dm ~roles:[ "LoggedOn" ]
      ~args:[ V.Str "dm"; V.Str "ely" ]
  in
  say "jmb and dm hold LoggedOn certificates from the Login service";

  (* jmb enters Chair, presenting the Login certificate as a credential
     from another service (§2.9). *)
  let chair = ref None in
  Service.request_entry conf ~client_host ~client:jmb ~role:"Chair" ~creds:[ jmb_login ]
    (function
      | Ok c ->
          chair := Some c;
          say "jmb entered Chair: %s" (Format.asprintf "%a" Oasis_core.Cert.pp_rmc c)
      | Error e -> say "chair entry failed: %s" e);
  run 1.0;
  let chair = Option.get !chair in

  (* The Chair delegates Member to whoever can prove they are dm (§4.4). *)
  let dcert = ref None and rcert = ref None in
  Service.request_delegation conf ~client_host ~delegator:jmb ~using:chair ~role:"Member"
    ~required:[ ("Login", "LoggedOn", [ V.Str "dm"; V.Str "*" ]) ]
    (function
      | Ok (d, r) ->
          dcert := Some d;
          rcert := Some r;
          say "jmb obtained a delegation certificate for Member (and a revocation certificate)"
      | Error e -> say "delegation failed: %s" e);
  run 1.0;

  (* dm accepts the election, supplying both the delegation certificate and
     the required Login credential. *)
  let member = ref None in
  Service.request_entry conf ~client_host ~client:dm ~role:"Member" ~creds:[ dm_login ]
    ~delegation:(Option.get !dcert)
    (function
      | Ok c ->
          member := Some c;
          say "dm entered Member(dm)"
      | Error e -> say "member entry failed: %s" e);
  run 1.0;
  let member = Option.get !member in

  (* Use the certificate. *)
  (match Service.validate conf ~client:dm ~need_role:"Member" member with
  | Ok () -> say "dm's Member certificate validates"
  | Error f -> say "unexpected: %s" (Format.asprintf "%a" Service.pp_failure f));

  (* Membership rules in action: dm leaves the staff group. *)
  Group.remove (Service.group conf "staff") (V.Str "dm");
  (match Service.validate conf ~client:dm member with
  | Error Service.Revoked -> say "dm removed from staff -> Member certificate revoked instantly"
  | _ -> say "unexpected: certificate still valid");

  (* Re-hire dm, re-enter, then revoke the delegation explicitly. *)
  Group.add (Service.group conf "staff") (V.Str "dm");
  let member2 = ref None in
  Service.request_entry conf ~client_host ~client:dm ~role:"Member" ~creds:[ dm_login ]
    ~delegation:(Option.get !dcert)
    (function Ok c -> member2 := Some c | Error e -> say "re-entry failed: %s" e);
  run 1.0;
  Service.request_revocation conf ~client_host (Option.get !rcert) (function
    | Ok () -> say "jmb used the revocation certificate"
    | Error e -> say "revocation failed: %s" e);
  run 1.0;
  (match Service.validate conf ~client:dm (Option.get !member2) with
  | Error Service.Revoked -> say "the delegated membership is gone"
  | _ -> say "unexpected: still valid");

  (* The audit trail (§4.13). *)
  say "\naudit log at the conference service (newest first):";
  List.iter
    (fun e -> say "  [%6.2fs] %s" e.Service.at e.Service.detail)
    (Service.audit_log conf)
