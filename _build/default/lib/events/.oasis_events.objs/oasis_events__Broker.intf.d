lib/events/broker.mli: Event Oasis_sim
