(** Constraint-expression evaluation (§3.2.4) with membership-rule capture.

    Evaluation happens at role-entry time, in an environment of variable
    bindings accumulated while matching role references.  Starred
    sub-expressions are returned as {e residual membership rules}: the
    residual constraint plus the bindings in force when it was evaluated
    (§3.2.4: "a membership rule is formed by substituting in the value of all
    the other subexpressions at the time of role entry").  The role-entry
    engine turns each residual into a credential record whose parents are the
    group-membership facts the residual mentions.

    Boolean extension functions (§3.3.1) return [Value.Int]; non-zero is
    true. *)

type env = (string * Value.t) list

type mrule = {
  residual : Ast.constr;
      (** The starred sub-expression, polarity-adjusted (wrapped in [Cnot]
          for each enclosing [not]); must remain true for the certificate to
          stay valid. *)
  bindings : env;  (** Variable values at capture time. *)
}

type ctx = {
  lookup_group : string -> Value.t -> bool;
      (** [lookup_group name member]: current membership fact. *)
  call : string -> Value.t list -> (Value.t, string) result;
      (** Server-specific extension functions ([unixacl], [creator], ...). *)
}

val pure_ctx : ctx
(** A context with no groups and no functions; any use of them errors. *)

val eval_expr : ctx -> env -> Ast.expr -> (Value.t, string) result

val compare_rel : Ast.relop -> Value.t -> Value.t -> (bool, string) result
(** Total relational comparison: [Eq]/[Ne] compare any two values,
    [Lt]/[Le]/[Gt]/[Ge] require integers (error otherwise).  Shared by the
    evaluator and the static analyzer's constant folder. *)

val eval : ctx -> env -> Ast.constr -> (bool * env * mrule list, string) result
(** [eval ctx env c] returns the truth value, the (possibly extended)
    bindings, and membership rules captured from starred sub-expressions.
    Bindings made inside a failed [or]-branch or under [not] are discarded.
    Unbound variables in test position are an error. *)

val groups_mentioned : Ast.constr -> env -> (string * Value.t) list
(** The ground group-membership atoms a residual depends on: for each
    [Cin (e, g)] whose expression evaluates under the bindings, the pair
    [(g, member)].  Used to wire credential records to group facts. *)
