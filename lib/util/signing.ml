type secret = Siphash.key

let secret_of_string = Siphash.key_of_string

let fresh_secret g = Siphash.key_of_int64s (Prng.bits64 g) (Prng.bits64 g)

type signature = string

let sign ?(length = 16) secret payload =
  if length < 4 || length > 32 then invalid_arg "Signing.sign: length must be in [4, 32]";
  let h1 = Siphash.hash_hex secret payload in
  if length <= 16 then String.sub h1 0 length
  else
    let h2 = Siphash.hash_hex secret (h1 ^ payload) in
    h1 ^ String.sub h2 0 (length - 16)

(* The expected length must come from the verifier's configuration, never
   from the signature being checked: deriving it from the attacker-supplied
   string would let a 4-hex-char prefix of a valid signature verify against
   a service configured for 16. *)
let verify ?(length = 16) secret payload signature =
  String.length signature = length && String.equal (sign ~length secret payload) signature

module Rolling = struct
  type slot = { id : int; secret : secret }

  type t = {
    capacity : int;
    mutable slots : slot list; (* newest first *)
    mutable next_id : int;
    prng : Prng.t;
  }

  let create ?(capacity = 4) prng =
    if capacity < 1 then invalid_arg "Rolling.create: capacity must be >= 1";
    let t = { capacity; slots = []; next_id = 0; prng } in
    t.slots <- [ { id = 0; secret = fresh_secret prng } ];
    t.next_id <- 1;
    t

  let roll t =
    let slot = { id = t.next_id; secret = fresh_secret t.prng } in
    t.next_id <- t.next_id + 1;
    let keep = if List.length t.slots >= t.capacity then t.capacity - 1 else List.length t.slots in
    t.slots <- slot :: List.filteri (fun i _ -> i < keep) t.slots

  let current t =
    match t.slots with
    | s :: _ -> s
    | [] -> assert false

  let sign ?length t payload =
    let s = current t in
    Printf.sprintf "%04x%s" (s.id land 0xffff) (sign ?length s.secret payload)

  let verify ?length t payload signature =
    if String.length signature < 4 then false
    else
      match int_of_string_opt ("0x" ^ String.sub signature 0 4) with
      | None -> false
      | Some id -> (
          let body = String.sub signature 4 (String.length signature - 4) in
          match List.find_opt (fun s -> s.id land 0xffff = id) t.slots with
          | None -> false
          | Some s -> verify ?length s.secret payload body)

  let generation t = t.next_id - 1
end
