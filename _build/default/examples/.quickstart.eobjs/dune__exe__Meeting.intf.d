examples/meeting.mli:
