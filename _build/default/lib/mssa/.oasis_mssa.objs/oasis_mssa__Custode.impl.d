lib/mssa/custode.ml: Byte_segment Format Hashtbl List Oasis_core Oasis_rdl Oasis_sim Option Printf String Types
