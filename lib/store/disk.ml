module Net = Oasis_sim.Net
module Engine = Oasis_sim.Engine
module Stats = Oasis_sim.Stats
module Prng = Oasis_util.Prng

(* One byte file: [data] is everything ever appended this incarnation,
   [synced] the length of the durable prefix.  A crash truncates [data] to
   [synced] plus a seeded-random surviving prefix of the unsynced tail, then
   marks the survivor durable — the classic torn final write. *)
type file = { mutable data : Buffer.t; mutable synced : int }

type sim = {
  d_fsync_latency : float;
  d_write_bw : float;
  d_read_bw : float;
  d_files : (string, file) Hashtbl.t;
  mutable d_epoch : int;  (* bumped on crash: in-flight flushes die *)
}

(* A real stable-storage device, injected by a backend ([lib/backend]):
   the same contract as the simulated device — [o_append] buffers,
   [o_fsync] makes the buffered prefix durable and calls back (possibly
   synchronously), [o_read] returns the durable prefix only — against
   actual files.  Keeping it a closure record keeps [lib/store] free of
   any unix dependency. *)
type ops = {
  o_append : file:string -> string -> unit;
  o_fsync : file:string -> (unit -> unit) -> unit;
  o_write_atomic : file:string -> string -> (unit -> unit) -> unit;
  o_truncate : file:string -> unit;
  o_read : file:string -> string;
  o_durable_size : file:string -> int;
  o_unsynced : file:string -> int;
  o_scan_delay : bytes:int -> float;
  o_files : unit -> string list;
}

type impl = Sim of sim | Ops of ops

type t = { d_net : Net.t; d_host : Net.host; d_impl : impl }

let stats t = Net.stats t.d_net
let host t = t.d_host
let net t = t.d_net
let real t = match t.d_impl with Ops _ -> true | Sim _ -> false

let file s name =
  match Hashtbl.find_opt s.d_files name with
  | Some f -> f
  | None ->
      let f = { data = Buffer.create 256; synced = 0 } in
      Hashtbl.add s.d_files name f;
      f

let create net host ?(fsync_latency = 5e-4) ?(write_bandwidth = 1e8) ?(read_bandwidth = 2e8) ()
    =
  let s =
    {
      d_fsync_latency = fsync_latency;
      d_write_bw = write_bandwidth;
      d_read_bw = read_bandwidth;
      d_files = Hashtbl.create 4;
      d_epoch = 0;
    }
  in
  let t = { d_net = net; d_host = host; d_impl = Sim s } in
  Net.on_crash net host (fun () ->
      s.d_epoch <- s.d_epoch + 1;
      let prng = Net.prng net in
      Hashtbl.iter
        (fun _ f ->
          let len = Buffer.length f.data in
          let pending = len - f.synced in
          if pending > 0 then begin
            (* A random prefix of the unsynced tail reached the platter. *)
            let keep = Prng.int prng (pending + 1) in
            let survivor = Buffer.sub f.data 0 (f.synced + keep) in
            let b = Buffer.create (String.length survivor + 256) in
            Buffer.add_string b survivor;
            f.data <- b;
            f.synced <- f.synced + keep;
            Stats.add_bytes (stats t) "store.crash.lost" (pending - keep);
            if keep > 0 && keep < pending then Stats.incr (stats t) "store.crash.torn"
          end)
        s.d_files);
  t

let create_ops net host ops = { d_net = net; d_host = host; d_impl = Ops ops }

let append t ~file:name data =
  match t.d_impl with
  | Ops o ->
      o.o_append ~file:name data;
      Stats.observe (stats t) "store.write" (String.length data)
  | Sim s ->
      if Net.host_up t.d_net t.d_host then begin
        let f = file s name in
        Buffer.add_string f.data data;
        Stats.observe (stats t) "store.write" (String.length data)
      end

let flush_delay s pending = s.d_fsync_latency +. (float_of_int pending /. s.d_write_bw)

let fsync t ~file:name k =
  match t.d_impl with
  | Ops o ->
      (* Real device: the flush happens now (synchronously); the histogram
         records the measured wall-clock cost, read off the engine's
         backend clock. *)
      let engine = Net.engine t.d_net in
      let before = Engine.now engine in
      o.o_fsync ~file:name (fun () ->
          Stats.incr (stats t) "store.fsync";
          Stats.observe_latency (stats t) "store.fsync" (Engine.now engine -. before);
          k ())
  | Sim s ->
      if Net.host_up t.d_net t.d_host then begin
        let f = file s name in
        let target = Buffer.length f.data in
        let pending = target - f.synced in
        let epoch = s.d_epoch in
        let delay = flush_delay s pending in
        Engine.schedule (Net.engine t.d_net) ~tag:("s:" ^ Net.host_name t.d_host) ~delay
          (fun () ->
            if epoch = s.d_epoch && Net.host_up t.d_net t.d_host then begin
              if target > f.synced then f.synced <- target;
              Stats.incr (stats t) "store.fsync";
              Stats.observe_latency (stats t) "store.fsync" delay;
              k ()
            end)
      end

let write_atomic t ~file:name data k =
  match t.d_impl with
  | Ops o ->
      let engine = Net.engine t.d_net in
      let before = Engine.now engine in
      Stats.observe (stats t) "store.write" (String.length data);
      o.o_write_atomic ~file:name data (fun () ->
          Stats.incr (stats t) "store.fsync";
          Stats.observe_latency (stats t) "store.fsync" (Engine.now engine -. before);
          k ())
  | Sim s ->
      if Net.host_up t.d_net t.d_host then begin
        let f = file s name in
        let epoch = s.d_epoch in
        let baseline = Buffer.length f.data in
        let delay = flush_delay s (String.length data) in
        Stats.observe (stats t) "store.write" (String.length data);
        Engine.schedule (Net.engine t.d_net) ~tag:("s:" ^ Net.host_name t.d_host) ~delay
          (fun () ->
            if epoch = s.d_epoch && Net.host_up t.d_net t.d_host then begin
              (* The rename lands: everything that existed at the call is
                 replaced in one step.  Bytes appended while the write was in
                 flight are preserved after the new contents (the compacting
                 caller wrote a temp file, renamed it, then re-appended the
                 journal tail) — without this, a log compaction racing live
                 appends would silently drop records. *)
              let tail = Buffer.sub f.data baseline (Buffer.length f.data - baseline) in
              let synced_tail = max 0 (f.synced - baseline) in
              let b = Buffer.create (String.length data + String.length tail + 256) in
              Buffer.add_string b data;
              Buffer.add_string b tail;
              f.data <- b;
              f.synced <- String.length data + synced_tail;
              Stats.incr (stats t) "store.fsync";
              Stats.observe_latency (stats t) "store.fsync" delay;
              k ()
            end)
      end

let truncate t ~file:name =
  (match t.d_impl with
  | Ops o -> o.o_truncate ~file:name
  | Sim s ->
      let f = file s name in
      f.data <- Buffer.create 256;
      f.synced <- 0);
  Stats.incr (stats t) "store.truncate"

let read t ~file:name =
  match t.d_impl with
  | Ops o -> o.o_read ~file:name
  | Sim s ->
      let f = file s name in
      Buffer.sub f.data 0 f.synced

let durable_size t ~file:name =
  match t.d_impl with Ops o -> o.o_durable_size ~file:name | Sim s -> (file s name).synced

let unsynced t ~file:name =
  match t.d_impl with
  | Ops o -> o.o_unsynced ~file:name
  | Sim s ->
      let f = file s name in
      Buffer.length f.data - f.synced

let scan_delay t ~bytes =
  match t.d_impl with
  | Ops o -> o.o_scan_delay ~bytes
  | Sim s -> s.d_fsync_latency +. (float_of_int bytes /. s.d_read_bw)

let files t =
  match t.d_impl with
  | Ops o -> List.sort String.compare (o.o_files ())
  | Sim s -> Hashtbl.fold (fun k _ acc -> k :: acc) s.d_files [] |> List.sort String.compare

let fp_key = Oasis_util.Siphash.key_of_string "oasis.disk.fingerprint"

let fingerprint t =
  let b = Buffer.create 256 in
  List.iter
    (fun name ->
      Buffer.add_string b name;
      Buffer.add_char b '\x00';
      Buffer.add_string b (string_of_int (durable_size t ~file:name));
      Buffer.add_char b '\x00';
      (match t.d_impl with
      | Ops o -> Buffer.add_string b (o.o_read ~file:name)
      | Sim s -> Buffer.add_buffer b (file s name).data);
      Buffer.add_char b '\x01')
    (files t);
  Oasis_util.Siphash.hash fp_key (Buffer.contents b)
