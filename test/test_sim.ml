(* Tests for the discrete-event engine, clocks and the simulated network. *)

module Engine = Oasis_sim.Engine
module Clock = Oasis_sim.Clock
module Net = Oasis_sim.Net
module Stats = Oasis_sim.Stats
module Trace = Oasis_sim.Trace

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* --- engine --- *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:2.0 (fun () -> log := "b" :: !log);
  Engine.schedule e ~delay:1.0 (fun () -> log := "a" :: !log);
  Engine.schedule e ~delay:3.0 (fun () -> log := "c" :: !log);
  Engine.run e;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log)

let test_engine_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:1.0 (fun () -> log := 1 :: !log);
  Engine.schedule e ~delay:1.0 (fun () -> log := 2 :: !log);
  Engine.schedule e ~delay:1.0 (fun () -> log := 3 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "fifo at same instant" [ 1; 2; 3 ] (List.rev !log)

let test_engine_now_advances () =
  let e = Engine.create () in
  let seen = ref 0.0 in
  Engine.schedule e ~delay:5.5 (fun () -> seen := Engine.now e);
  Engine.run e;
  checkf "now at event" 5.5 !seen

let test_engine_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.schedule e ~delay:1.0 (fun () -> incr fired);
  Engine.schedule e ~delay:10.0 (fun () -> incr fired);
  Engine.run ~until:5.0 e;
  checki "only first fired" 1 !fired;
  checkf "now clamped to until" 5.0 (Engine.now e);
  Engine.run e;
  checki "second fires later" 2 !fired

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:1.0 (fun () ->
      log := "outer" :: !log;
      Engine.schedule e ~delay:1.0 (fun () -> log := "inner" :: !log));
  Engine.run e;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  checkf "time" 2.0 (Engine.now e)

let test_engine_cancel_timer () =
  let e = Engine.create () in
  let fired = ref false in
  let tm = Engine.timer e ~delay:1.0 (fun () -> fired := true) in
  Engine.cancel tm;
  Engine.run e;
  checkb "cancelled timer silent" false !fired;
  checkb "cancelled" true (Engine.cancelled tm)

let test_engine_every () =
  let e = Engine.create () in
  let count = ref 0 in
  let handle = Engine.every e ~period:1.0 (fun () -> incr count) in
  Engine.run ~until:5.5 e;
  checki "five periods" 5 !count;
  Engine.cancel handle;
  Engine.run ~until:10.0 e;
  checki "stopped after cancel" 5 !count

let test_engine_every_pathological_jitter () =
  (* Regression: jitter <= -period used to clamp the re-arm delay to 0.0,
     re-arming at the same instant forever — [run ~until] never returned.
     The delay is now clamped to a positive floor, so time advances. *)
  let e = Engine.create () in
  let count = ref 0 in
  ignore (Engine.every e ~period:1.0 ~jitter:(fun () -> -5.0) (fun () -> incr count));
  Engine.run ~until:2.0 e;
  checkb "terminates with finite fires" true (!count > 0 && !count <= 2001);
  checkf "time advanced to until" 2.0 (Engine.now e)

let test_engine_negative_delay_clamped () =
  let e = Engine.create () in
  let fired = ref false in
  Engine.schedule e ~delay:5.0 (fun () ->
      Engine.schedule e ~delay:(-3.0) (fun () -> fired := true));
  Engine.run e;
  checkb "fired at clamped time" true !fired;
  checkf "no time travel" 5.0 (Engine.now e)

(* --- clock --- *)

let test_clock_drift () =
  let e = Engine.create () in
  let fast = Clock.create ~rate:1.01 e in
  let slow = Clock.create ~rate:0.99 ~offset:0.5 e in
  Engine.schedule e ~delay:100.0 (fun () -> ());
  Engine.run e;
  checkf "fast clock" 101.0 (Clock.read fast);
  checkf "slow clock" (99.0 +. 0.5) (Clock.read slow);
  checkf "true time" 100.0 (Clock.true_time fast)

(* --- stats --- *)

let test_stats_counting () =
  let s = Stats.create () in
  Stats.incr s "a";
  Stats.incr s ~n:4 "a";
  Stats.add_bytes s "a" 100;
  checki "count" 5 (Stats.count s "a");
  checki "bytes" 100 (Stats.bytes s "a");
  checki "missing" 0 (Stats.count s "zzz");
  Stats.reset s;
  checki "after reset" 0 (Stats.count s "a")

let test_stats_report_includes_max () =
  (* Regression: [report]/[pp] used to drop the observed max entirely. *)
  let s = Stats.create () in
  Stats.observe s "batch" 3;
  Stats.observe s "batch" 11;
  Stats.observe s "batch" 7;
  checki "max_of" 11 (Stats.max_of s "batch");
  match Stats.report s with
  | [ r ] ->
      Alcotest.(check string) "category" "batch" r.Stats.r_cat;
      checki "count" 3 r.Stats.r_count;
      checki "max surfaced in report" 11 r.Stats.r_max
  | rows -> Alcotest.failf "expected one row, got %d" (List.length rows)

let test_stats_latency_histogram () =
  let s = Stats.create () in
  List.iter (fun v -> Stats.observe_latency s "lat" v) [ 0.001; 0.002; 0.004; 0.008; 0.8 ];
  checki "samples" 5 (Stats.latency_samples s "lat");
  checkf "exact max kept" 0.8 (Stats.latency_max s "lat");
  (* Bucket upper bounds are 1e-6 * 2^i: percentiles are exact to an octave. *)
  let p50 = Stats.percentile s "lat" 50.0 in
  checkb "p50 brackets the median" true (p50 >= 0.002 && p50 <= 0.008);
  let p99 = Stats.percentile s "lat" 99.0 in
  checkb "p99 brackets the max" true (p99 >= 0.8 && p99 <= 1.6);
  checkf "no samples" 0.0 (Stats.percentile s "other" 50.0);
  Alcotest.check_raises "percentile out of range"
    (Invalid_argument "Stats.percentile: p must be in [0, 100]") (fun () ->
      ignore (Stats.percentile s "lat" 101.0));
  (* Negative and NaN samples are clamped, not dropped or propagated. *)
  Stats.observe_latency s "lat" (-1.0);
  Stats.observe_latency s "lat" Float.nan;
  checki "clamped samples counted" 7 (Stats.latency_samples s "lat");
  (* The latency summary rides the report rows and the JSON snapshot. *)
  (match List.find_opt (fun r -> r.Stats.r_cat = "lat") (Stats.report s) with
  | Some r ->
      checki "row samples" 7 r.Stats.r_samples;
      checkb "row p99 positive" true (r.Stats.r_p99 > 0.0)
  | None -> Alcotest.fail "lat row missing");
  let js = Stats.to_json s in
  checkb "json has latency member" true (contains js "\"latency\"")

(* --- trace --- *)

let test_trace_disabled_noop () =
  let now = ref 0.0 in
  let tr = Trace.create (fun () -> !now) in
  checkb "disabled by default" false (Trace.enabled tr);
  let sp = Trace.start tr "x" in
  Trace.finish tr sp;
  checkb "no spans recorded" true (Trace.spans tr = []);
  checkb "no ambient ctx" true (Trace.current tr = None);
  checki "nothing dropped" 0 (Trace.dropped tr)

let test_trace_parenting_and_duration () =
  let now = ref 1.0 in
  let tr = Trace.create (fun () -> !now) in
  Trace.set_enabled tr true;
  let root = Trace.start tr "root" in
  Trace.add_attr root "k" "v";
  now := 2.0;
  let child = Trace.start tr ~parent:(Trace.ctx_of root) "child" in
  now := 3.5;
  Trace.finish tr child;
  now := 4.0;
  Trace.finish tr root;
  match Trace.spans tr with
  | [ c; r ] ->
      Alcotest.(check string) "child first (finish order)" "child" (Trace.span_name c);
      checkb "same trace" true (Trace.span_trace c = Trace.span_trace r);
      checkb "child parented to root" true (Trace.span_parent c = Some (Trace.span_id r));
      checkb "root has no parent" true (Trace.span_parent r = None);
      checkf "child duration" 1.5 (Trace.duration c);
      checkf "root duration" 3.0 (Trace.duration r);
      checkb "attr kept" true (List.mem_assoc "k" (Trace.span_attrs r));
      checkf "origin is root start" 1.0 (Trace.origin (Trace.ctx_of c));
      checkf "since_origin" 3.0 (Trace.since_origin tr (Trace.ctx_of c))
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l)

let test_trace_ctx_rides_net_send () =
  let e = Engine.create () in
  let net = Net.create ~latency:(Net.Fixed 0.25) e in
  let tr = Net.trace net in
  Trace.set_enabled tr true;
  let a = Net.add_host net "a" and b = Net.add_host net "b" in
  let remote_ctx = ref None in
  Trace.with_span tr "send-side" (fun () ->
      Net.send net ~src:a ~dst:b (fun () -> remote_ctx := Trace.current tr));
  Engine.run e;
  (match (!remote_ctx, Trace.spans tr) with
  | Some ctx, [ s ] ->
      checkb "delivery sees sender's trace" true
        (Trace.origin ctx = Trace.span_start s && Trace.span_name s = "send-side")
  | None, _ -> Alcotest.fail "ambient context did not ride the message"
  | Some _, l -> Alcotest.failf "expected 1 span, got %d" (List.length l));
  checkb "ctx cleared outside delivery" true (Trace.current tr = None)

let test_trace_ctx_rides_rpc_retry () =
  let e = Engine.create () in
  let net = Net.create ~latency:(Net.Fixed 0.01) e in
  let tr = Net.trace net in
  Trace.set_enabled tr true;
  let a = Net.add_host net "a" and b = Net.add_host net "b" in
  Net.partition net a b;
  Engine.schedule e ~delay:2.0 (fun () -> Net.heal net a b);
  let seen = ref None in
  Trace.with_span tr "origin" (fun () ->
      Net.rpc_retry net ~timeout:0.5 ~src:a ~dst:b
        (fun () ->
          seen := Trace.current tr;
          Ok ())
        (fun _ -> ()));
  Engine.run ~until:30.0 e;
  checkb "retried rpc still carries the originating ctx" true (!seen <> None)

let test_trace_ring_bound () =
  let now = ref 0.0 in
  let tr = Trace.create ~capacity:4 (fun () -> !now) in
  Trace.set_enabled tr true;
  for i = 1 to 10 do
    now := float_of_int i;
    let sp = Trace.start tr (Printf.sprintf "s%d" i) in
    Trace.finish tr sp
  done;
  let kept = Trace.spans tr in
  checki "ring keeps capacity" 4 (List.length kept);
  checki "evictions counted" 6 (Trace.dropped tr);
  Alcotest.(check (list string)) "oldest evicted, order kept" [ "s7"; "s8"; "s9"; "s10" ]
    (List.map Trace.span_name kept);
  Trace.clear tr;
  checki "clear resets" 0 (Trace.dropped tr);
  checkb "clear empties" true (Trace.spans tr = [])

let test_trace_json_shape () =
  let now = ref 0.0 in
  let tr = Trace.create (fun () -> !now) in
  Trace.set_enabled tr true;
  let sp = Trace.start tr "na\"me" in
  Trace.add_attr sp "key" "va\\lue";
  now := 0.5;
  Trace.finish tr sp;
  let js = Trace.to_json tr in
  checkb "dropped field" true (contains js "\"dropped\":0");
  checkb "escaped name" true (contains js "na\\\"me");
  checkb "escaped attr" true (contains js "va\\\\lue");
  checkb "start field" true (contains js "\"start\":")

(* --- net --- *)

let make_net ?latency () =
  let e = Engine.create () in
  let net = Net.create ?latency e in
  (e, net)

let test_net_send_latency () =
  let e, net = make_net ~latency:(Net.Fixed 0.25) () in
  let a = Net.add_host net "a" and b = Net.add_host net "b" in
  let arrived = ref 0.0 in
  Net.send net ~src:a ~dst:b (fun () -> arrived := Engine.now e);
  Engine.run e;
  checkf "one hop latency" 0.25 !arrived

let test_net_same_host_instant () =
  let e, net = make_net ~latency:(Net.Fixed 0.25) () in
  let a = Net.add_host net "a" in
  let arrived = ref (-1.0) in
  Net.send net ~src:a ~dst:a (fun () -> arrived := Engine.now e);
  Engine.run e;
  checkf "local delivery" 0.0 !arrived

let test_net_rpc_roundtrip () =
  let e, net = make_net ~latency:(Net.Fixed 0.1) () in
  let a = Net.add_host net "a" and b = Net.add_host net "b" in
  let got = ref None and at = ref 0.0 in
  Net.rpc net ~src:a ~dst:b
    (fun () -> Ok 42)
    (fun r ->
      got := Some r;
      at := Engine.now e);
  Engine.run ~until:10.0 e;
  checkb "result" true (!got = Some (Ok 42));
  checkf "two hops" 0.2 !at

let test_net_partition_blocks () =
  let e, net = make_net () in
  let a = Net.add_host net "a" and b = Net.add_host net "b" in
  Net.partition net a b;
  let arrived = ref false in
  Net.send net ~src:a ~dst:b (fun () -> arrived := true);
  Engine.run ~until:5.0 e;
  checkb "blocked" false !arrived;
  Net.heal net a b;
  Net.send net ~src:a ~dst:b (fun () -> arrived := true);
  Engine.run ~until:10.0 e;
  checkb "healed" true !arrived

let test_net_rpc_timeout_on_partition () =
  let e, net = make_net () in
  let a = Net.add_host net "a" and b = Net.add_host net "b" in
  Net.partition net a b;
  let result = ref None in
  Net.rpc net ~timeout:1.0 ~src:a ~dst:b (fun () -> Ok ()) (fun r -> result := Some r);
  Engine.run ~until:5.0 e;
  checkb "timed out" true (!result = Some (Error "timeout"))

let test_net_loss () =
  let e, net = make_net () in
  let a = Net.add_host net "a" and b = Net.add_host net "b" in
  Net.set_loss net 1.0;
  let arrived = ref false in
  Net.send net ~src:a ~dst:b (fun () -> arrived := true);
  Engine.run ~until:1.0 e;
  checkb "all lost" false !arrived;
  checki "loss accounted" 1 (Stats.count (Net.stats net) "msg.lost")

let test_net_loss_bounds () =
  let _, net = make_net () in
  Alcotest.check_raises "negative loss" (Invalid_argument "Net.set_loss: probability out of range")
    (fun () -> Net.set_loss net (-0.1))

let test_net_stats_categories () =
  let e, net = make_net () in
  let a = Net.add_host net "a" and b = Net.add_host net "b" in
  Net.send net ~category:"foo" ~size:10 ~src:a ~dst:b (fun () -> ());
  Net.send net ~category:"foo" ~size:20 ~src:a ~dst:b (fun () -> ());
  Net.send net ~category:"bar" ~src:a ~dst:b (fun () -> ());
  Engine.run e;
  checki "foo count" 2 (Stats.count (Net.stats net) "foo");
  checki "foo bytes" 30 (Stats.bytes (Net.stats net) "foo");
  checki "bar count" 1 (Stats.count (Net.stats net) "bar")

let test_net_link_latency_override () =
  let e, net = make_net ~latency:(Net.Fixed 0.1) () in
  let a = Net.add_host net "a" and b = Net.add_host net "b" in
  Net.set_link_latency net a b (Net.Fixed 2.0);
  let at = ref 0.0 in
  Net.send net ~src:a ~dst:b (fun () -> at := Engine.now e);
  Engine.run e;
  checkf "slow link" 2.0 !at;
  let back = ref 0.0 in
  Net.send net ~src:b ~dst:a (fun () -> back := Engine.now e);
  Engine.run e;
  checkf "reverse default" 2.1 !back

let test_net_find_host () =
  let _, net = make_net () in
  let a = Net.add_host net "alpha" in
  checkb "found" true (Net.find_host net "alpha" = Some a);
  checkb "missing" true (Net.find_host net "beta" = None)

let prop_uniform_latency_in_range =
  QCheck.Test.make ~name:"uniform latency within bounds" ~count:50 QCheck.unit (fun () ->
      let e = Engine.create () in
      let net = Net.create ~latency:(Net.Uniform (0.1, 0.2)) e in
      let a = Net.add_host net "a" and b = Net.add_host net "b" in
      let at = ref 0.0 in
      Net.send net ~src:a ~dst:b (fun () -> at := Engine.now e);
      Engine.run e;
      !at >= 0.1 && !at < 0.2)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "ordering" `Quick test_engine_ordering;
          Alcotest.test_case "same-time fifo" `Quick test_engine_same_time_fifo;
          Alcotest.test_case "now advances" `Quick test_engine_now_advances;
          Alcotest.test_case "run until" `Quick test_engine_until;
          Alcotest.test_case "nested schedule" `Quick test_engine_nested_schedule;
          Alcotest.test_case "cancel timer" `Quick test_engine_cancel_timer;
          Alcotest.test_case "every" `Quick test_engine_every;
          Alcotest.test_case "every survives pathological jitter" `Quick
            test_engine_every_pathological_jitter;
          Alcotest.test_case "negative delay clamped" `Quick test_engine_negative_delay_clamped;
        ] );
      ("clock", [ Alcotest.test_case "drift and offset" `Quick test_clock_drift ]);
      ( "stats",
        [
          Alcotest.test_case "counting" `Quick test_stats_counting;
          Alcotest.test_case "report includes max" `Quick test_stats_report_includes_max;
          Alcotest.test_case "latency histogram" `Quick test_stats_latency_histogram;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_trace_disabled_noop;
          Alcotest.test_case "parenting and duration" `Quick test_trace_parenting_and_duration;
          Alcotest.test_case "ctx rides Net.send" `Quick test_trace_ctx_rides_net_send;
          Alcotest.test_case "ctx rides rpc_retry" `Quick test_trace_ctx_rides_rpc_retry;
          Alcotest.test_case "ring bound" `Quick test_trace_ring_bound;
          Alcotest.test_case "json shape" `Quick test_trace_json_shape;
        ] );
      ( "net",
        [
          Alcotest.test_case "send latency" `Quick test_net_send_latency;
          Alcotest.test_case "same host instant" `Quick test_net_same_host_instant;
          Alcotest.test_case "rpc roundtrip" `Quick test_net_rpc_roundtrip;
          Alcotest.test_case "partition blocks" `Quick test_net_partition_blocks;
          Alcotest.test_case "rpc timeout" `Quick test_net_rpc_timeout_on_partition;
          Alcotest.test_case "loss" `Quick test_net_loss;
          Alcotest.test_case "loss bounds" `Quick test_net_loss_bounds;
          Alcotest.test_case "stats categories" `Quick test_net_stats_categories;
          Alcotest.test_case "link latency override" `Quick test_net_link_latency_override;
          Alcotest.test_case "find host" `Quick test_net_find_host;
          qt prop_uniform_latency_in_range;
        ] );
    ]
