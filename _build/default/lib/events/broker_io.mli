(** {!Bead.io} over a set of live broker sessions: the distributed composite
    event service of §6.7–6.8.  Registrations use retrospective registration
    against each relevant server; horizons come from heartbeat traffic, so a
    stalled or partitioned server stalls only the [without] beads that
    depend on it. *)

val make :
  Oasis_sim.Net.t ->
  Oasis_sim.Net.host ->
  ?clock_uncertainty:float ->
  Broker.session list ->
  Bead.io
