lib/oasis/group.mli: Credrec Oasis_rdl
