module Value = Oasis_rdl.Value

type t = {
  u_service : Service.t;
  u_tree : (string * string) list;
}

let parent_of path =
  if String.equal path "/" then None
  else
    match String.rindex_opt path '/' with
    | Some 0 -> Some "/"
    | Some i -> Some (String.sub path 0 i)
    | None -> None

let depth path = List.length (String.split_on_char '/' path)

let bool_value b = Value.Int (if b then 1 else 0)

let create net host registry ~name ~tree =
  if not (List.mem_assoc "/" tree) then Error "tree must contain the root \"/\""
  else begin
    (* nodeacl needs the (not-yet-created) service's groups, so it closes
       over a forward reference. *)
    let service_ref : Service.t option ref = ref None in
    let in_group user g =
      match !service_ref with
      | None -> false
      | Some svc -> Group.mem (Service.group svc g) (Value.Str user)
    in
    (* One ACL statement per node (§3.3.3: "we represent each ACL as an
       entry within a single rolefile"), parents before children, followed
       by the generic directory rules. *)
    let sorted = List.sort (fun (a, _) (b, _) -> compare (depth a, a) (depth b, b)) tree in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "import Login.userid\n";
    Buffer.add_string buf "def ACL(r, f) r: {rwx} f: String\n";
    Buffer.add_string buf "def UseDir(d) d: String\n";
    Buffer.add_string buf "def UseFile(f, r) f: String r: {rwx}\n";
    List.iter
      (fun (path, _acl) ->
        Buffer.add_string buf
          (Printf.sprintf "ACL(r, %S) <- Login.LoggedOn(u, h) : r = nodeacl(%S, u)\n" path path))
      sorted;
    Buffer.add_string buf "UseDir(d) <- ACL(r, d) : Root(d) and {x} subset r\n";
    Buffer.add_string buf "UseDir(d) <- ACL(r, d) /\\ UseDir(p) : InDir(d, p) and {x} subset r\n";
    Buffer.add_string buf "UseFile(f, r) <- ACL(r, f) /\\ UseDir(p) : InDir(f, p)\n";
    let funcs =
      [
        ( "nodeacl",
          fun args ->
            match args with
            | [ Value.Str path; Value.Str user ] -> (
                match List.assoc_opt path tree with
                | None -> Error ("no such node " ^ path)
                | Some acl ->
                    Ok (Value.set_of_chars (Acl.unixacl acl ~user ~in_group:(in_group user))))
            | _ -> Error "nodeacl(path, user)" );
        ( "InDir",
          fun args ->
            match args with
            | [ Value.Str f; Value.Str d ] -> Ok (bool_value (parent_of f = Some d))
            | _ -> Error "InDir(file, dir)" );
        ( "Root",
          fun args ->
            match args with
            | [ Value.Str d ] -> Ok (bool_value (String.equal d "/"))
            | _ -> Error "Root(dir)" );
      ]
    in
    match
      Service.create net host registry ~name ~rolefile:(Buffer.contents buf) ~funcs
        ~fixpoint_entry:true ()
    with
    | Error e -> Error e
    | Ok service ->
        service_ref := Some service;
        Ok { u_service = service; u_tree = tree }
  end

let service t = t.u_service
let paths t = List.map fst t.u_tree

let request_use t ~client_host ~client ~login ~path k =
  match List.assoc_opt path t.u_tree with
  | None -> k (Error ("no such path " ^ path))
  | Some acl ->
      (* Predict the rights the file's own ACL would yield, then request the
         exact certificate.  The engine re-derives everything through the
         RDL rules — in particular the recursive UseDir chain — so a parent
         directory without 'x' still denies entry. *)
      let user = match login.Cert.args with Value.Str u :: _ -> u | _ -> "" in
      let in_group g = Group.mem (Service.group t.u_service g) (Value.Str user) in
      let rights = Acl.unixacl acl ~user ~in_group in
      if String.length rights = 0 then k (Error ("no rights for " ^ user ^ " on " ^ path))
      else
        Service.request_entry t.u_service ~client_host ~client ~role:"UseFile"
          ~args:[ Value.Str path; Value.set_of_chars rights ]
          ~creds:[ login ]
          (function
            | Ok cert -> k (Ok (cert, rights))
            | Error e -> k (Error e))
