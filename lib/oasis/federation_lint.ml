(** Federation-wide static analysis of the cross-service role graph.

    Per-rolefile checks ({!Oasis_rdl.Analyze}) see one policy at a time; a
    federation of services can still be mis-wired as a whole: services grant
    roles on the strength of roles of other services (§2.10), so the
    credential graph can contain cycles no statement bootstraps (every
    service waits on the other — a bootstrap deadlock), roles no chain of
    statements can ever reach, and revocation gaps where a prerequisite is
    revocable but its consumer never hears about it (§3.2.3's [*]
    annotations only cascade along event channels between known services).

    Diagnostic codes (continuing {!Oasis_rdl.Analyze}'s space):

    - [OASIS001] error — credential cycle with no bootstrap (deadlock);
    - [OASIS002] warning — role is unreachable from the federation's axioms;
    - [OASIS003] error — reference to a role the named federation service
      does not define;
    - [OASIS004] warning — starred prerequisite from a service outside the
      federation: there is no revocation channel to cascade over;
    - [OASIS005] info — revocable prerequisite consumed without [*]:
      revoking it will not cascade to the derived role. *)

module Ast = Oasis_rdl.Ast
module Infer = Oasis_rdl.Infer
module Analyze = Oasis_rdl.Analyze

type member = { fl_name : string; fl_file : string; fl_rolefile : Ast.rolefile }

type node = string * string (* service, role *)

type t = {
  members : member list;
  sigs : (string, Infer.result) Hashtbl.t;  (** per-member self inference *)
}

let make members =
  let sigs = Hashtbl.create 8 in
  List.iter
    (fun m ->
      match Infer.infer m.fl_rolefile with
      | Ok r -> Hashtbl.replace sigs m.fl_name r
      | Error _ -> () (* the per-file pass reports it; sigs stay unknown *))
    members;
  { members; sigs }

let of_registry reg =
  make
    (List.map
       (fun s ->
         { fl_name = Service.name s; fl_file = Service.name s; fl_rolefile = Service.rolefile s })
       (Service.services reg))

let member_names t = List.map (fun m -> m.fl_name) t.members

(* Analysis context for any one member: external signatures resolve against
   the sibling members' inferred signatures. *)
let member_context t =
  {
    Analyze.default_context with
    Analyze.infer =
      {
        Infer.no_callbacks with
        Infer.external_sig =
          (fun ~service ~role ->
            match Hashtbl.find_opt t.sigs service with
            | Some r -> Infer.signature r role
            | None -> None);
      };
  }

(* Roles a member defines: by entry statement or by [def] declaration. *)
let defined_roles m =
  List.sort_uniq compare
    (Ast.defined_roles m.fl_rolefile
    @ List.map (fun d -> d.Ast.decl_name) (Ast.defs m.fl_rolefile))

let resolve_ref me (r : Ast.role_ref) : node =
  match r.Ast.sref.Ast.service with None -> (me, r.Ast.role) | Some s -> (s, r.Ast.role)

(* Prerequisite nodes of an entry: credentials plus the elector role (an
   election cannot happen until someone holds the elector role). *)
let prereqs me e =
  List.map (resolve_ref me) e.Ast.creds
  @ (match e.Ast.elector with Some r -> [ resolve_ref me r ] | None -> [])

(* The set of nodes derivable from the federation's axioms: an entry fires
   once all its prerequisites are reachable and its constraint is not
   provably unsatisfiable.  Nodes of services outside the federation are
   assumed reachable (we cannot see their policies), so the verdict is an
   over-approximation: a role reported unreachable really is. *)
let closure t (init : node list) =
  let known = member_names t in
  let reach : (node, unit) Hashtbl.t = Hashtbl.create 64 in
  let reachable n = Hashtbl.mem reach n || not (List.mem (fst n) known) in
  List.iter (fun n -> Hashtbl.replace reach n ()) init;
  let firable m e =
    (match e.Ast.constr with Some c -> Analyze.sat c <> `Unsat | None -> true)
    && List.for_all reachable (prereqs m.fl_name e)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun m ->
        List.iter
          (fun e ->
            let head = (m.fl_name, fst e.Ast.head) in
            if (not (Hashtbl.mem reach head)) && firable m e then begin
              Hashtbl.replace reach head ();
              changed := true
            end)
          (Ast.entries m.fl_rolefile))
      t.members
  done;
  reach

let reachable t = closure t []

let can_reach t ~holder ~target =
  Hashtbl.mem (closure t [ holder ]) target || not (List.mem (fst target) (member_names t))

(* Roles a holder of [holder] can go on to acquire that are not derivable
   without it — the privilege-escalation frontier.  Elector prerequisites
   are treated as satisfied whenever the elector role is itself acquirable
   (a colluding elector), and constraints as satisfiable unless provably
   not, so the set is an upper bound on what the holder can reach. *)
let escalation t ~holder =
  let base = reachable t in
  let with_holder = closure t [ holder ] in
  Hashtbl.fold
    (fun n () acc -> if Hashtbl.mem base n then acc else n :: acc)
    with_holder []
  |> List.filter (fun n -> n <> holder)
  |> List.sort compare

(* Strongly connected components (Tarjan) of the role-dependency graph
   restricted to federation nodes. *)
let sccs nodes edges =
  let index : (node, int) Hashtbl.t = Hashtbl.create 64 in
  let low : (node, int) Hashtbl.t = Hashtbl.create 64 in
  let on_stack : (node, unit) Hashtbl.t = Hashtbl.create 64 in
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace low v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace low v (min (Hashtbl.find low v) (Hashtbl.find low w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace low v (min (Hashtbl.find low v) (Hashtbl.find index w)))
      (try Hashtbl.find_all edges v with Not_found -> []);
    if Hashtbl.find low v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      out := pop [] :: !out
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) nodes;
  !out

let node_str (s, r) = s ^ "." ^ r

let check ?(per_file = false) t =
  let diags = ref [] in
  let add ?(sev = Analyze.Error) ~file ~line code fmt =
    Format.kasprintf
      (fun message ->
        diags := { Analyze.code; severity = sev; file; line; message } :: !diags)
      fmt
  in
  let known = member_names t in
  let member name = List.find_opt (fun m -> String.equal m.fl_name name) t.members in
  (* First entry line for a role, as the diagnostic anchor. *)
  let role_line name role =
    match member name with
    | None -> 0
    | Some m ->
        List.fold_left
          (fun acc e ->
            if acc = 0 && String.equal (fst e.Ast.head) role then e.Ast.entry_line else acc)
          0
          (Ast.entries m.fl_rolefile)
  in
  let role_file name = match member name with Some m -> m.fl_file | None -> name in

  (* Per-file diagnostics under each member's federation context. *)
  if per_file then
    List.iter
      (fun m ->
        diags :=
          List.rev_append
            (List.rev (Analyze.check ~file:m.fl_file ~context:(member_context t) m.fl_rolefile))
            !diags)
      t.members;

  (* OASIS003 / OASIS004 / OASIS005: per-reference checks. *)
  List.iter
    (fun m ->
      List.iter
        (fun e ->
          let line = e.Ast.entry_line in
          let refs =
            List.map (fun r -> (`Cred, r)) e.Ast.creds
            @ (match e.Ast.elector with Some r -> [ (`Elector, r) ] | None -> [])
            @ (match e.Ast.revoker with Some r -> [ (`Revoker, r) ] | None -> [])
          in
          List.iter
            (fun (kind, r) ->
              let svc, role = resolve_ref m.fl_name r in
              let external_ref = Option.is_some r.Ast.sref.Ast.service in
              if external_ref && List.mem svc known then begin
                match member svc with
                | Some peer when not (List.mem role (defined_roles peer)) ->
                    add ~file:m.fl_file ~line "OASIS003"
                      "service %s defines no role %s" svc role
                | _ -> ()
              end;
              if external_ref && r.Ast.starred && not (List.mem svc known) then
                add ~sev:Analyze.Warning ~file:m.fl_file ~line "OASIS004"
                  "starred prerequisite %s is issued outside the federation: there is \
                   no revocation channel to cascade over"
                  (node_str (svc, role));
              if kind = `Cred && (not r.Ast.starred) && List.mem svc known then
                add ~sev:Analyze.Info ~file:m.fl_file ~line "OASIS005"
                  "prerequisite %s is revocable but consumed without *; revoking it \
                   will not revoke %s"
                  (node_str (svc, role))
                  (fst e.Ast.head))
            refs)
        (Ast.entries m.fl_rolefile))
    t.members;

  (* Reachability and cycles. *)
  let reach = reachable t in
  let nodes =
    List.concat_map
      (fun m ->
        List.filter_map
          (fun role ->
            if
              List.exists
                (fun e -> String.equal (fst e.Ast.head) role)
                (Ast.entries m.fl_rolefile)
            then Some (m.fl_name, role)
            else None)
          (defined_roles m))
      t.members
  in
  (* head -> prerequisite edges, federation nodes only. *)
  let edges : (node, node) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun m ->
      List.iter
        (fun e ->
          let head = (m.fl_name, fst e.Ast.head) in
          List.iter
            (fun p -> if List.mem (fst p) known then Hashtbl.add edges head p)
            (prereqs m.fl_name e))
        (Ast.entries m.fl_rolefile))
    t.members;
  let in_deadlock : (node, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun scc ->
      let cyclic =
        match scc with
        | [ v ] -> List.exists (fun w -> w = v) (Hashtbl.find_all edges v)
        | _ -> List.length scc > 1
      in
      if cyclic && List.for_all (fun n -> not (Hashtbl.mem reach n)) scc then begin
        List.iter (fun n -> Hashtbl.replace in_deadlock n ()) scc;
        let anchor = List.hd (List.sort compare scc) in
        add
          ~file:(role_file (fst anchor))
          ~line:(role_line (fst anchor) (snd anchor))
          "OASIS001" "credential cycle %s has no bootstrap: no service can issue the \
                      first credential (deadlock)"
          (String.concat " -> " (List.map node_str (scc @ [ List.hd scc ])))
      end)
    (sccs nodes edges);
  List.iter
    (fun n ->
      if (not (Hashtbl.mem reach n)) && not (Hashtbl.mem in_deadlock n) then
        add ~sev:Analyze.Warning
          ~file:(role_file (fst n))
          ~line:(role_line (fst n) (snd n))
          "OASIS002" "role %s is unreachable: no chain of statements starting from the \
                      federation's axioms can enter it"
          (node_str n))
    nodes;
  List.stable_sort
    (fun a b ->
      compare (a.Analyze.file, a.Analyze.line, a.Analyze.code)
        (b.Analyze.file, b.Analyze.line, b.Analyze.code))
    (List.rev !diags)
