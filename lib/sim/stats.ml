(* Latency histograms use fixed log-spaced buckets: bucket [i] holds samples
   of at most [1e-6 * 2^i] seconds (the last bucket is unbounded).  Fixed
   boundaries keep observation O(log range), merging trivial, and the
   percentile error bounded by one octave — plenty for the order-of-magnitude
   questions the experiments ask. *)

let lat_buckets = 64

let bucket_bound i = 1e-6 *. (2.0 ** float_of_int i)

let bucket_of v =
  let rec go i bound = if i >= lat_buckets - 1 || v <= bound then i else go (i + 1) (bound *. 2.0) in
  go 0 1e-6

type lat = { hist : int array; mutable n : int; mutable sum : float; mutable lmax : float }

type cell = {
  mutable count : int;
  mutable bytes : int;
  mutable vmax : int;
  mutable lat : lat option;  (* allocated on first [observe_latency] *)
}

type t = (string, cell) Hashtbl.t

type row = {
  r_cat : string;
  r_count : int;
  r_bytes : int;
  r_max : int;
  r_samples : int;
  r_p50 : float;
  r_p99 : float;
  r_lat_max : float;
}

let create () : t = Hashtbl.create 32

let cell t cat =
  match Hashtbl.find_opt t cat with
  | Some c -> c
  | None ->
      let c = { count = 0; bytes = 0; vmax = 0; lat = None } in
      Hashtbl.add t cat c;
      c

let incr t ?(n = 1) cat =
  let c = cell t cat in
  c.count <- c.count + n

let add_bytes t cat n =
  let c = cell t cat in
  c.bytes <- c.bytes + n

let observe t cat n =
  let c = cell t cat in
  c.count <- c.count + 1;
  c.bytes <- c.bytes + n;
  if n > c.vmax then c.vmax <- n

let observe_latency t cat v =
  let v = if v < 0.0 || Float.is_nan v then 0.0 else v in
  let c = cell t cat in
  let l =
    match c.lat with
    | Some l -> l
    | None ->
        let l = { hist = Array.make lat_buckets 0; n = 0; sum = 0.0; lmax = 0.0 } in
        c.lat <- Some l;
        l
  in
  let b = bucket_of v in
  l.hist.(b) <- l.hist.(b) + 1;
  l.n <- l.n + 1;
  l.sum <- l.sum +. v;
  if v > l.lmax then l.lmax <- v

let count t cat = match Hashtbl.find_opt t cat with Some c -> c.count | None -> 0
let max_of t cat = match Hashtbl.find_opt t cat with Some c -> c.vmax | None -> 0
let bytes t cat = match Hashtbl.find_opt t cat with Some c -> c.bytes | None -> 0

let lat_of t cat =
  match Hashtbl.find_opt t cat with Some { lat = Some l; _ } -> Some l | _ -> None

let latency_samples t cat = match lat_of t cat with Some l -> l.n | None -> 0
let latency_max t cat = match lat_of t cat with Some l -> l.lmax | None -> 0.0

let percentile t cat p =
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p must be in [0, 100]";
  match lat_of t cat with
  | None -> 0.0
  | Some l when l.n = 0 -> 0.0
  | Some l ->
      let rank = Stdlib.max 1 (int_of_float (Float.ceil (p /. 100.0 *. float_of_int l.n))) in
      let rec go i seen =
        let seen = seen + l.hist.(i) in
        if seen >= rank || i = lat_buckets - 1 then bucket_bound i else go (i + 1) seen
      in
      go 0 0

let reset = Hashtbl.reset

let categories t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort String.compare

let row t cat =
  {
    r_cat = cat;
    r_count = count t cat;
    r_bytes = bytes t cat;
    r_max = max_of t cat;
    r_samples = latency_samples t cat;
    r_p50 = percentile t cat 50.0;
    r_p99 = percentile t cat 99.0;
    r_lat_max = latency_max t cat;
  }

let report t = List.map (row t) (categories t)

let pp ppf t =
  List.iter
    (fun r ->
      Format.fprintf ppf "%-32s %8d msgs %10d bytes" r.r_cat r.r_count r.r_bytes;
      if r.r_max > 0 then Format.fprintf ppf " max %d" r.r_max;
      if r.r_samples > 0 then
        Format.fprintf ppf " lat[n=%d p50=%.6fs p99=%.6fs max=%.6fs]" r.r_samples r.r_p50 r.r_p99
          r.r_lat_max;
      Format.fprintf ppf "@.")
    (report t)

let to_json t =
  let module J = Oasis_util.Json in
  let row_json r =
    let base = [ ("count", J.Int r.r_count); ("bytes", J.Int r.r_bytes); ("max", J.Int r.r_max) ] in
    let latency =
      if r.r_samples = 0 then []
      else
        let mean =
          match lat_of t r.r_cat with
          | Some l when l.n > 0 -> l.sum /. float_of_int l.n
          | _ -> 0.0
        in
        [
          ( "latency",
            J.Obj
              [
                ("samples", J.Int r.r_samples);
                ("p50", J.Float r.r_p50);
                ("p99", J.Float r.r_p99);
                ("mean", J.Float mean);
                ("max", J.Float r.r_lat_max);
              ] );
        ]
    in
    (r.r_cat, J.Obj (base @ latency))
  in
  J.to_string (J.Obj (List.map row_json (report t)))
