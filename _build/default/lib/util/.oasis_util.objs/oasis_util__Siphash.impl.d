lib/util/siphash.ml: Char Int64 Printf Prng String
