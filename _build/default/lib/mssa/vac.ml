module Value = Oasis_rdl.Value
module Net = Oasis_sim.Net
module Service = Oasis_core.Service
module Cert = Oasis_core.Cert
module Credrec = Oasis_core.Credrec

type t = {
  v_net : Net.t;
  v_host : Net.host;
  v_service : Service.t;
  v_below : below;
  v_below_cert : Cert.rmc;
  mutable v_grant_record : Credrec.cref;
  v_index : (string, int list) Hashtbl.t;
}

and below = Below_custode of Custode.t | Below_vac of t

let rolefile = {|
def UseAcl(a, r) a: String r: {adrwx}
|}

let create net host registry ~name ~below ~below_cert =
  match Service.create net host registry ~name ~rolefile () with
  | Error e -> Error e
  | Ok service ->
      let grant_record = Credrec.leaf (Service.table service) () in
      Credrec.set_direct_use (Service.table service) grant_record true;
      Ok
        {
          v_net = net;
          v_host = host;
          v_service = service;
          v_below = below;
          v_below_cert = below_cert;
          v_grant_record = grant_record;
          v_index = Hashtbl.create 64;
        }

let name t = Service.name t.v_service
let service t = t.v_service
let host t = t.v_host
let below_cert t = t.v_below_cert

let rec bottom t =
  match t.v_below with Below_custode c -> c | Below_vac v -> bottom v

let rec bottom_exec_cert t =
  match t.v_below with Below_custode _ -> t.v_below_cert | Below_vac v -> bottom_exec_cert v

let rec depth t = match t.v_below with Below_custode _ -> 2 | Below_vac v -> 1 + depth v

let grant t ~client =
  let table = Service.table t.v_service in
  (* The grant depends on this VAC's own standing below: revocation at any
     level cascades to the VAC's clients.  The below-certificate's record
     lives in another service's table, so mirror it as an external record. *)
  let below_validity =
    Service.import_remote_record t.v_service ~peer:t.v_below_cert.Cert.service
      ~remote:t.v_below_cert.Cert.crr
  in
  let crr =
    Credrec.combine_fresh table [ (t.v_grant_record, false); (below_validity, false) ]
  in
  Service.issue_with_record t.v_service ~client ~roles:[ "UseAcl" ]
    ~args:[ Value.Str "vac"; Value.set_of_chars Types.full_rights ]
    ~crr

let revoke_grants t =
  Credrec.invalidate (Service.table t.v_service) t.v_grant_record;
  let fresh = Credrec.leaf (Service.table t.v_service) () in
  Credrec.set_direct_use (Service.table t.v_service) fresh true;
  t.v_grant_record <- fresh

let check t ~cert =
  match Service.validate t.v_service ~client:cert.Cert.holder ~need_role:"UseAcl" cert with
  | Ok () -> Ok ()
  | Error f -> Error (Format.asprintf "%a" Service.pp_failure f)

(* Forward an operation one level down.  [k] runs back at [t]'s host; every
   hop, down and up, is charged network latency (fig 5.8a). *)
let rec forward_read t ~file k =
  match t.v_below with
  | Below_custode c ->
      Net.rpc t.v_net ~category:"mssa.stack" ~src:t.v_host ~dst:(Custode.host c)
        (fun () -> Custode.read_file c ~cert:t.v_below_cert ~file)
        k
  | Below_vac v ->
      let reply r =
        Net.send t.v_net ~category:"mssa.stack.reply" ~src:v.v_host ~dst:t.v_host (fun () -> k r)
      in
      Net.send t.v_net ~category:"mssa.stack" ~src:t.v_host ~dst:v.v_host (fun () ->
          match check v ~cert:t.v_below_cert with
          | Error e -> reply (Error e)
          | Ok () -> forward_read v ~file reply)

let rec forward_write t ~file data k =
  match t.v_below with
  | Below_custode c ->
      Net.rpc t.v_net ~category:"mssa.stack" ~src:t.v_host ~dst:(Custode.host c)
        (fun () -> Custode.write_file c ~cert:t.v_below_cert ~file data)
        k
  | Below_vac v ->
      let reply r =
        Net.send t.v_net ~category:"mssa.stack.reply" ~src:v.v_host ~dst:t.v_host (fun () -> k r)
      in
      Net.send t.v_net ~category:"mssa.stack" ~src:t.v_host ~dst:v.v_host (fun () ->
          match check v ~cert:t.v_below_cert with
          | Error e -> reply (Error e)
          | Ok () -> forward_write v ~file data reply)

let index_words t ~file data =
  String.split_on_char ' ' data
  |> List.iter (fun w ->
         if w <> "" then
           let existing = Option.value ~default:[] (Hashtbl.find_opt t.v_index w) in
           if not (List.mem file existing) then Hashtbl.replace t.v_index w (file :: existing))

let read t ~client_host ~cert ~file k =
  Net.send t.v_net ~category:"mssa.op" ~src:client_host ~dst:t.v_host (fun () ->
      let reply r =
        Net.send t.v_net ~category:"mssa.op.reply" ~src:t.v_host ~dst:client_host (fun () -> k r)
      in
      match check t ~cert with
      | Error e -> reply (Error e)
      | Ok () -> forward_read t ~file reply)

let write t ~client_host ~cert ~file data k =
  Net.send t.v_net ~category:"mssa.op" ~src:client_host ~dst:t.v_host (fun () ->
      let reply r =
        Net.send t.v_net ~category:"mssa.op.reply" ~src:t.v_host ~dst:client_host (fun () -> k r)
      in
      match check t ~cert with
      | Error e -> reply (Error e)
      | Ok () ->
          index_words t ~file data;
          forward_write t ~file data reply)

let search t ~client_host ~cert word k =
  Net.rpc t.v_net ~category:"mssa.op" ~src:client_host ~dst:t.v_host
    (fun () ->
      match check t ~cert with
      | Error e -> Error e
      | Ok () -> Ok (Option.value ~default:[] (Hashtbl.find_opt t.v_index word)))
    k
