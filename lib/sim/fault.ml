module Prng = Oasis_util.Prng

type action =
  | Crash of int
  | Restart of int
  | Link_down of int * int
  | Link_up of int * int

type t = {
  engine : Engine.t;
  stats : Stats.t;
  prng : Prng.t;
  down : (int, unit) Hashtbl.t;
  dead_links : (int * int, unit) Hashtbl.t;
  mutable crash_hooks : (int -> unit) list;
  mutable restart_hooks : (int -> unit) list;
}

let create ?(seed = 0xFA17L) engine stats =
  {
    engine;
    stats;
    prng = Prng.create seed;
    down = Hashtbl.create 8;
    dead_links = Hashtbl.create 8;
    crash_hooks = [];
    restart_hooks = [];
  }

let up t addr = not (Hashtbl.mem t.down addr)
let link_ok t a b = not (Hashtbl.mem t.dead_links (a, b))

let crash t addr =
  if up t addr then begin
    Hashtbl.replace t.down addr ();
    Stats.incr t.stats "fault.crash";
    List.iter (fun f -> f addr) (List.rev t.crash_hooks)
  end

let restart t addr =
  if not (up t addr) then begin
    Hashtbl.remove t.down addr;
    Stats.incr t.stats "fault.restart";
    List.iter (fun f -> f addr) (List.rev t.restart_hooks)
  end

let link_down t a b =
  if link_ok t a b then begin
    Hashtbl.replace t.dead_links (a, b) ();
    Hashtbl.replace t.dead_links (b, a) ();
    Stats.incr t.stats "fault.link_down"
  end

let link_up t a b =
  if not (link_ok t a b) then begin
    Hashtbl.remove t.dead_links (a, b);
    Hashtbl.remove t.dead_links (b, a);
    Stats.incr t.stats "fault.link_up"
  end

let on_crash t f = t.crash_hooks <- f :: t.crash_hooks
let on_restart t f = t.restart_hooks <- f :: t.restart_hooks

let apply t = function
  | Crash a -> crash t a
  | Restart a -> restart t a
  | Link_down (a, b) -> link_down t a b
  | Link_up (a, b) -> link_up t a b

let script t steps =
  List.iter
    (fun (at, action) -> Engine.schedule_at t.engine ~tag:"f:" ~at (fun () -> apply t action))
    steps

let flap t ~a ~b ~every ~down_for ~until =
  if every <= 0.0 || down_for <= 0.0 then invalid_arg "Fault.flap: periods must be positive";
  let rec go at =
    if at < until then begin
      Engine.schedule_at t.engine ~tag:"f:" ~at (fun () -> link_down t a b);
      Engine.schedule_at t.engine ~tag:"f:" ~at:(min (at +. down_for) until) (fun () ->
          link_up t a b);
      go (at +. every)
    end
  in
  go (Engine.now t.engine +. every);
  (* Whatever the flap schedule did, the link is healed by [until]. *)
  Engine.schedule_at t.engine ~tag:"f:" ~at:until (fun () -> link_up t a b)

let chaos t ~hosts ~mtbf ~mttr ~until =
  if mtbf <= 0.0 || mttr <= 0.0 then invalid_arg "Fault.chaos: means must be positive";
  List.iter
    (fun addr ->
      let rec cycle at =
        let at_crash = at +. Prng.exponential t.prng ~mean:mtbf in
        if at_crash < until then begin
          let at_restart = at_crash +. Prng.exponential t.prng ~mean:mttr in
          Engine.schedule_at t.engine ~tag:"f:" ~at:at_crash (fun () -> crash t addr);
          Engine.schedule_at t.engine ~tag:"f:" ~at:(min at_restart until) (fun () ->
              restart t addr);
          cycle at_restart
        end
      in
      cycle (Engine.now t.engine))
    hosts
