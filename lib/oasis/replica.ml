(* Per-shard primary/backup replication (see replica.mli for the design
   story).  The invariant everything here leans on: every member
   reconciled with the current epoch holds a WAL that is a prefix of ONE
   logical record stream (the primary's append order, in global
   coordinates — compaction is disabled for replicated services).

   A member can fall OFF that invariant: a primary that syncs records
   locally, fails to ship them, and crashes leaves an unacked tail on its
   disk that the next epoch overwrites with different records at the same
   positions.  Two mechanisms repair this, VSR-style:

   - every promotion appends an {e epoch barrier} record to the stream
     (skipped by Service replay), so a log's own content names the last
     epoch it was reconciled with;
   - shipping verifies content, not just counts: after a promotion resets
     every ack cursor to 0, the first batches re-walk each backup's log
     against the stream and rewrite the log at the first divergence (and
     truncate any tail reaching past the stream's end).

   Promotion then picks, among the candidate's and all reachable peers'
   full logs, the one with the greatest (last barrier epoch, length) —
   which provably contains every acked record: an ack quorum and a
   promotion quorum always intersect, the intersection member's log embeds
   the acking epoch's barrier below the acked record, and logs of one
   epoch are prefixes of one stream.

   Fault model: fail-stop host crashes and restarts (the sim's fault
   plane).  Network partitions *between group members* are out of scope. *)

module Net = Oasis_sim.Net
module Engine = Oasis_sim.Engine
module Stats = Oasis_sim.Stats
module Wal = Oasis_store.Wal

type member = {
  m_svc : Service.t;
  m_host : Net.host;
  mutable m_acked : int;  (* primary's view: stream records durable at this member *)
  mutable m_have : int;  (* receiver's view: records in its local log *)
  mutable m_log : string array;  (* receiver's cache of those records, [0..m_have) *)
  mutable m_have_dirty : bool;  (* rebuild [m_log]/[m_have] from disk before trusting *)
  mutable m_inflight : bool;  (* one ship RPC outstanding to this member *)
  mutable m_promoting : bool;  (* this member has a promotion fetch in flight *)
  mutable m_last_hb : float;  (* when this member last heard the primary *)
}

type t = {
  g_net : Net.t;
  g_engine : Engine.t;
  g_name : string;
  g_members : member array;
  g_heartbeat : float;
  g_lease : float;
  g_stagger : float;
  g_stream_key : string;  (* checksum-key name for shipped record batches *)
  mutable g_primary : int;
  mutable g_epoch : int;
  mutable g_ready : bool;  (* primary finished its promotion replay *)
  mutable g_log : string array;  (* the stream, oldest first; grows by doubling *)
  mutable g_count : int;
  mutable g_local_durable : int;  (* stream records known durable at the primary *)
  mutable g_waiters : (int * (unit -> unit)) list;  (* newest first *)
  mutable g_on_promote : (Service.t -> unit) list;
  mutable g_promotions : int;
}

let primary t = t.g_members.(t.g_primary).m_svc
let primary_index t = t.g_primary
let epoch t = t.g_epoch
let ready t = t.g_ready
let replica_count t = Array.length t.g_members
let promotions t = t.g_promotions
let members t = Array.to_list (Array.map (fun m -> m.m_svc) t.g_members)
let member t i = t.g_members.(i).m_svc
let stream t = Array.to_list (Array.sub t.g_log 0 t.g_count)
let on_promote t f = t.g_on_promote <- f :: t.g_on_promote

(* Majority quorum for BOTH acks and promotion: any promotion majority
   intersects any ack majority, so an acknowledged record is always present
   in some log the promotion could reach — acked writes survive any
   minority of simultaneous crashes.  (Even K buys no extra tolerance over
   K-1; deploy odd K.) *)
let majority t = (Array.length t.g_members / 2) + 1

let push_log t line =
  if t.g_count = Array.length t.g_log then begin
    let bigger = Array.make (max 64 (2 * Array.length t.g_log)) "" in
    Array.blit t.g_log 0 bigger 0 t.g_count;
    t.g_log <- bigger
  end;
  t.g_log.(t.g_count) <- line;
  t.g_count <- t.g_count + 1

let durable_at t i = if i = t.g_primary then t.g_local_durable else t.g_members.(i).m_acked

let quorum_durable t s =
  let n = ref 0 in
  Array.iteri (fun i _ -> if durable_at t i >= s then incr n) t.g_members;
  !n >= majority t

let check_waiters t =
  let fire, wait = List.partition (fun (s, _) -> quorum_durable t s) t.g_waiters in
  t.g_waiters <- wait;
  List.iter (fun (_, k) -> k ()) (List.rev fire)

(* --- epoch barriers --- *)

(* A barrier is an ordinary stream record shaped like a journal record with
   the reserved tag "B" (Service.apply_record ignores unknown tags), so a
   log's content carries its own reconciliation history: [last_barrier] of
   a member's log is the last epoch whose stream the log is known to be a
   prefix of. *)
let barrier epoch = String.concat "\x1f" [ "B"; string_of_int epoch ]

let last_barrier records =
  List.fold_left
    (fun acc r ->
      match String.split_on_char '\x1f' r with
      | [ "B"; e ] -> ( match int_of_string_opt e with Some e -> e | None -> acc)
      | _ -> acc)
    0 records

(* --- the receiver-side log cache --- *)

let set_cache m recs =
  let n = List.length recs in
  let log = Array.make (max 64 n) "" in
  List.iteri (fun i r -> log.(i) <- r) recs;
  m.m_log <- log;
  m.m_have <- n;
  m.m_have_dirty <- false

let reload m = if m.m_have_dirty then set_cache m (Service.durable_log_records m.m_svc)

let cache_push m r =
  if m.m_have = Array.length m.m_log then begin
    let bigger = Array.make (max 64 (2 * Array.length m.m_log)) "" in
    Array.blit m.m_log 0 bigger 0 m.m_have;
    m.m_log <- bigger
  end;
  m.m_log.(m.m_have) <- r;
  m.m_have <- m.m_have + 1

(* --- log shipping (primary -> one backup, one RPC in flight each) --- *)

let ship_batch = 256

let rec ship_to t j =
  let p = t.g_members.(t.g_primary) in
  let m = t.g_members.(j) in
  if
    t.g_ready
    && j <> t.g_primary
    && (not m.m_inflight)
    && m.m_acked < t.g_count
    && Net.host_up t.g_net p.m_host
    && Net.host_up t.g_net m.m_host
  then begin
    m.m_inflight <- true;
    let epoch = t.g_epoch in
    let shipper = t.g_primary in
    let start = max 0 m.m_acked in
    let total = t.g_count in
    let n = min (total - start) ship_batch in
    let records = Array.to_list (Array.sub t.g_log start n) in
    (* Framed exactly as the WAL frames them (length + SipHash under the
       group's stream key): the receiver re-validates before applying. *)
    let payload =
      String.concat "" (List.map (Wal.frame_with ~key:t.g_stream_key) records)
    in
    Net.rpc_async t.g_net ~category:"repl.ship"
      ~size:(32 + String.length payload)
      ~timeout:(3.0 *. t.g_heartbeat) ~src:p.m_host ~dst:m.m_host
      (fun reply ->
        (* At the backup.  Drain the group-commit buffer first: the log
           repair below may rewrite the WAL, which must not race a
           buffered append from an earlier epoch's ship. *)
        if t.g_epoch <> epoch then reply (Error "stale epoch")
        else
          Service.durable_sync m.m_svc (fun () ->
              if t.g_epoch <> epoch then reply (Error "stale epoch")
              else begin
                reload m;
                if start > m.m_have then
                  (* We lack records below [start]: tell the primary how
                     far we really are so it rewinds its cursor. *)
                  reply (Ok m.m_have)
                else begin
                  let records =
                    Array.of_list (Wal.decode_with ~key:t.g_stream_key payload)
                  in
                  let n = Array.length records in
                  (* Verify the overlap against the stream instead of
                     blindly skipping it: after a failover our tail may be
                     a dead epoch's unacked appends under different
                     content at the same positions. *)
                  let overlap = min m.m_have (start + n) - start in
                  let rec first_div i =
                    if i >= overlap then None
                    else if String.equal m.m_log.(start + i) records.(i) then
                      first_div (i + 1)
                    else Some i
                  in
                  let repair fixed =
                    Service.durable_log_rewrite m.m_svc fixed (fun () ->
                        set_cache m fixed;
                        Stats.incr (Net.stats t.g_net) "repl.repair";
                        reply (Ok m.m_have))
                  in
                  match first_div 0 with
                  | Some i ->
                      (* Diverged at [start + i]: everything from there on
                         is the dead epoch's junk; replace it with the
                         shipped stream content. *)
                      repair
                        (Array.to_list (Array.sub m.m_log 0 (start + i))
                        @ Array.to_list (Array.sub records i (n - i)))
                  | None ->
                      for i = m.m_have - start to n - 1 do
                        Service.follower_append m.m_svc records.(i);
                        cache_push m records.(i)
                      done;
                      if start + n >= total && m.m_have > start + n then
                        (* Verified up to the stream's end as of this
                           ship; the remaining tail reaches past it — a
                           dead epoch's junk.  Truncate. *)
                        repair (Array.to_list (Array.sub m.m_log 0 (start + n)))
                      else begin
                        (* Ack only the content-verified prefix [0, start+n):
                           when our log runs past the shipped batch but the
                           batch stops short of the stream's end, the tail
                           beyond [start+n] has not been compared yet and may
                           be a dead epoch's junk.  Acking [m_have] here would
                           mark those positions quorum-durable, advance the
                           primary's cursor past them, and leave the
                           divergence unrepaired forever — the quorum
                           intersection argument dies with it. *)
                        let have = min m.m_have (start + n) in
                        (* The ack rides the backup's own group commit: an
                           acked record is durable AT THIS MEMBER, not
                           merely received. *)
                        Service.durable_sync m.m_svc (fun () -> reply (Ok have))
                      end
                end
              end))
      (fun result ->
        (* Back at the primary. *)
        m.m_inflight <- false;
        if t.g_primary = shipper && t.g_epoch = epoch then
          match result with
          | Ok acked ->
              m.m_acked <- min acked t.g_count;
              check_waiters t;
              ship_to t j
          | Error _ -> () (* the next heartbeat tick re-kicks *))
  end

let ship_all t = Array.iteri (fun j _ -> ship_to t j) t.g_members

(* --- the quorum ack hook (Service.ack_when_durable lands here) --- *)

let quorum_sync t j k =
  let m = t.g_members.(j) in
  if t.g_primary <> j then
    (* Direct (unrouted) use of a non-primary member: degrade to local
       durability rather than hanging; the routed path never gets here. *)
    Service.durable_sync m.m_svc k
  else begin
    let s = t.g_count in
    let epoch = t.g_epoch in
    t.g_waiters <- (s, k) :: t.g_waiters;
    Service.durable_sync m.m_svc (fun () ->
        if t.g_primary = j && t.g_epoch = epoch then begin
          if s > t.g_local_durable then t.g_local_durable <- s;
          check_waiters t
        end);
    ship_all t
  end

(* --- failover: epoch-CAS promotion --- *)

(* [promote t ~member ~from_epoch] makes [member] the primary of epoch
   [from_epoch + 1].  Phases:

   1. FETCH (read-only): ask every other member for its full durable log.
      Peers that are down just time out.
   2. CAS COMMIT (synchronous): abandoned unless the epoch is still
      [from_epoch] (another promotion won) and a majority was reachable
      (candidate + responders) — without that majority an acked record
      could exist only on unreachable logs.  Otherwise: bump the epoch,
      take primaryship, move the ship observer, clear waiters (their acks
      died with the old primary; clients retry against the new one).
   3. REPLAY (async, epoch-guarded): flush the candidate's own buffered
      tail, pick the winning log — greatest (last barrier epoch, length)
      among the candidate's and every fetched log, which is guaranteed to
      contain every acked record (see the module header) — append the new
      epoch's barrier, rewrite the candidate's WAL to exactly that,
      replay it (Service.recover), re-register under the logical name,
      open for business, resume shipping (which reconciles the others).

   Calling it twice with the same [from_epoch] — two backups racing after
   the same lease expiry, or a double force in a test — commits exactly
   once: the loser's CAS fails.  A candidate that crashes mid-replay
   leaves the group not-ready until another lease expiry promotes someone
   else (the epoch guard abandons the corpse's replay). *)
let promote t ~member:j ~from_epoch =
  let cand = t.g_members.(j) in
  if t.g_epoch = from_epoch && (not cand.m_promoting) && Net.host_up t.g_net cand.m_host
  then begin
    cand.m_promoting <- true;
    let others =
      Array.to_list t.g_members
      |> List.mapi (fun i m -> (i, m))
      |> List.filter (fun (i, _) -> i <> j)
    in
    let replies = ref [] in
    let pending = ref (List.length others) in
    let finished = ref false in
    let finish () =
      finished := true;
      cand.m_promoting <- false;
      if
        t.g_epoch = from_epoch
        && Net.host_up t.g_net cand.m_host
        && 1 + List.length !replies >= majority t
      then begin
        (* CAS commit. *)
        let target = from_epoch + 1 in
        t.g_epoch <- target;
        t.g_primary <- j;
        t.g_ready <- false;
        t.g_promotions <- t.g_promotions + 1;
        t.g_waiters <- [];
        let now = Engine.now t.g_engine in
        Array.iteri
          (fun i m ->
            m.m_inflight <- false;
            m.m_last_hb <- now;
            if i <> j then begin
              m.m_have_dirty <- true;
              m.m_acked <- 0;
              Service.set_ship m.m_svc None
            end)
          t.g_members;
        Service.set_ship cand.m_svc
          (Some
             (fun line ->
               push_log t line;
               ship_all t));
        Stats.incr (Net.stats t.g_net) "repl.promote";
        (* Replay phase.  First make the candidate's own buffered tail
           durable (shipped records still in its group-commit window must
           be on disk before the logs are compared), then select, rewrite,
           replay. *)
        Service.durable_sync cand.m_svc (fun () ->
            if t.g_epoch = target && Net.host_up t.g_net cand.m_host then begin
              let mine = Service.durable_log_records cand.m_svc in
              let won =
                List.fold_left
                  (fun best log ->
                    let score = (last_barrier log, List.length log) in
                    match best with
                    | Some (bscore, _) when bscore >= score -> best
                    | _ -> Some (score, log))
                  None
                  (mine :: List.map snd !replies)
                |> function Some (_, log) -> log | None -> mine
              in
              let full = won @ [ barrier target ] in
              Service.durable_log_rewrite cand.m_svc full (fun () ->
                  if t.g_epoch = target && Net.host_up t.g_net cand.m_host then
                    Service.recover cand.m_svc ~on_done:(fun () ->
                        if t.g_epoch = target && Net.host_up t.g_net cand.m_host then begin
                          (* Rebuild the stream bookkeeping from what we
                             actually hold: anything beyond it was never
                             quorum-acked and is gone for good. *)
                          let n = List.length full in
                          let log = Array.make (max 64 n) "" in
                          List.iteri (fun i r -> log.(i) <- r) full;
                          t.g_log <- log;
                          t.g_count <- n;
                          t.g_local_durable <- n;
                          set_cache cand full;
                          Service.reregister cand.m_svc;
                          t.g_ready <- true;
                          List.iter
                            (fun f -> f cand.m_svc)
                            (List.rev t.g_on_promote);
                          ship_all t
                        end))
            end)
      end
    in
    if others = [] then finish ()
    else
      List.iter
        (fun (i, other) ->
          Net.rpc t.g_net ~category:"repl.fetch" ~size:64
            ~timeout:(2.0 *. t.g_heartbeat) ~src:cand.m_host ~dst:other.m_host
            (fun () -> Ok (Service.durable_log_records other.m_svc))
            (fun result ->
              (match result with
              | Ok log -> replies := (i, log) :: !replies
              | Error _ -> ());
              decr pending;
              (* Commit as soon as a majority is assembled instead of
                 sitting out the dead peers' fetch timeouts — a majority
                 already guarantees the winning log carries every acked
                 record, and failover latency is the product being sold
                 here.  Late replies find [finished] set.  With no
                 majority, the final reply still runs [finish] so the
                 abort path clears [m_promoting]. *)
              if
                (not !finished)
                && (1 + List.length !replies >= majority t || !pending = 0)
              then finish ()))
        others
  end

let force_promote t j = promote t ~member:j ~from_epoch:t.g_epoch

(* --- heartbeats and leases (one STATIC periodic timer per member) --- *)

(* The timers are created once and never cancelled: whether a member acts
   as primary (announce liveness, re-kick shipping) or as backup (check
   the lease) is decided by data each tick, so crash/restart cycles cannot
   leak or lose timers — the PR 1 heartbeat-leak class is structurally
   impossible here, and test_shard.ml asserts the pending-timer count is
   crash-invariant. *)
let tick t j () =
  let m = t.g_members.(j) in
  if Net.host_up t.g_net m.m_host then begin
    if t.g_primary = j then begin
      let epoch = t.g_epoch in
      Array.iteri
        (fun i other ->
          if i <> j then
            Net.send t.g_net ~category:"repl.hb" ~size:24 ~src:m.m_host ~dst:other.m_host
              (fun () ->
                if t.g_epoch = epoch && Net.host_up t.g_net other.m_host then
                  other.m_last_hb <- Engine.now t.g_engine))
        t.g_members;
      ship_all t
    end
    else begin
      (* Staggered leases: the lowest-indexed live backup's lease expires
         first, and its promotion commit refreshes everyone's [m_last_hb],
         so later candidates stand down — deterministic, no elections. *)
      let lease = t.g_lease +. (t.g_stagger *. float_of_int j) in
      if Engine.now t.g_engine -. m.m_last_hb > lease && not m.m_promoting then
        promote t ~member:j ~from_epoch:t.g_epoch
    end
  end

let create net ~members:svcs ?(heartbeat = 0.2) ?(lease = 0.45) ?(stagger = 0.15) () =
  if Array.length svcs = 0 then invalid_arg "Replica.create: empty group";
  let engine = Net.engine net in
  let now = Engine.now engine in
  let members =
    Array.map
      (fun svc ->
        {
          m_svc = svc;
          m_host = Service.host svc;
          m_acked = 0;
          m_have = 0;
          m_log = Array.make 64 "";
          m_have_dirty = false;
          m_inflight = false;
          m_promoting = false;
          m_last_hb = now;
        })
      svcs
  in
  let name = Service.name svcs.(0) in
  let t =
    {
      g_net = net;
      g_engine = engine;
      g_name = name;
      g_members = members;
      g_heartbeat = heartbeat;
      g_lease = lease;
      g_stagger = stagger;
      g_stream_key = "repl:" ^ name;
      g_primary = 0;
      g_epoch = 0;
      g_ready = true;
      g_log = Array.make 64 "";
      g_count = 0;
      g_local_durable = 0;
      g_waiters = [];
      g_on_promote = [];
      g_promotions = 0;
    }
  in
  if Array.length members > 1 then begin
    Array.iteri
      (fun j m ->
        Service.set_auto_recover m.m_svc false;
        Service.set_replication m.m_svc ~sync:(fun k -> quorum_sync t j k);
        Net.on_crash net m.m_host (fun () ->
            m.m_have_dirty <- true;
            m.m_inflight <- false;
            m.m_promoting <- false;
            if t.g_primary = j then begin
              (* In-flight client acks die with the primary: the routed
                 retry re-runs the (idempotent) op against whoever leads
                 next. *)
              t.g_waiters <- [];
              Array.iter (fun o -> o.m_inflight <- false) t.g_members
            end);
        Net.on_restart net m.m_host (fun () ->
            m.m_have_dirty <- true;
            m.m_last_hb <- Engine.now engine;
            if t.g_primary = j then
              (* The group never moved off us (no majority could form, or
                 the lease never expired): resume through the same promote
                 path, re-fetching any suffix that out-lived our buffer. *)
              promote t ~member:j ~from_epoch:t.g_epoch);
        ignore
          (Engine.every engine
             ~tag:("t:" ^ Net.host_name m.m_host)
             ~period:heartbeat (tick t j)))
      members;
    Service.set_ship members.(0).m_svc
      (Some
         (fun line ->
           push_log t line;
           ship_all t))
  end;
  t

(* --- fingerprint (model checking) --- *)

let fp_key = Oasis_util.Siphash.key_of_string "oasis.replica.fingerprint"

let fingerprint t =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "%s|e%d|p%d|r%b|c%d|d%d|w%d" t.g_name t.g_epoch t.g_primary t.g_ready
       t.g_count t.g_local_durable
       (List.length t.g_waiters));
  (* In-flight progress is state: two worlds with equal cursors but one
     pending promotion (or ship RPC, or un-fired ack waiter) reach
     different futures, and hashing them as identical would let the model
     checker prune interleavings that differ only in failover progress. *)
  Array.iter
    (fun m ->
      Buffer.add_string b
        (Printf.sprintf ";a%d,h%d,i%b,p%b" m.m_acked m.m_have m.m_inflight m.m_promoting))
    t.g_members;
  Oasis_util.Siphash.hash fp_key (Buffer.contents b)
