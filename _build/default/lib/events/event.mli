(** Generic event objects and templates (§6.2).

    Events are named, parametrised occurrences signalled by an event server.
    The IDL preprocessor of the paper marshals concrete events into a generic
    form that event services (composite detectors, multiplexers) manipulate
    without knowing the concrete type; this module {e is} that generic form.

    Acceptance expressions are {e event templates}: an instance of an event
    with wildcard or variable parameters (§6.2.2, cf. query-by-example). *)

type value = Oasis_rdl.Value.t

type t = {
  name : string;  (** event type, e.g. ["Seen"] *)
  source : string;  (** name of the issuing service instance *)
  params : value array;
  stamp : float;  (** timestamp from the source host's clock *)
  seq : int;  (** per-source sequence number, assigned by the broker *)
}

val make : name:string -> source:string -> ?stamp:float -> ?seq:int -> value list -> t

type pattern =
  | Lit of value  (** parameter must equal this value *)
  | Var of string  (** binds (or must equal an existing binding) *)
  | Any  (** wildcard [*] *)

type template = {
  tname : string;
  tsource : string option;  (** [None]: accept from any source *)
  pats : pattern array;
}

val template : ?source:string -> string -> pattern list -> template

type env = (string * value) list

val matches : ?env:env -> template -> t -> env option
(** [matches ~env tpl e] is [Some env'] when [e] matches [tpl] under the
    existing bindings: a [Var] already bound in [env] must equal the
    parameter; an unbound [Var] extends the environment (§6.4.2).  Arity
    must agree exactly. *)

val instantiate : env -> template -> template
(** Replace bound [Var]s with literals; used when registering interest so
    that only genuinely interesting events are notified (§6.4.2). *)

val specificity : template -> int
(** Number of literal positions; a crude measure used in tests/benches. *)

val pp : Format.formatter -> t -> unit
val pp_template : Format.formatter -> template -> unit
val to_string : t -> string
val marshal : t -> string
(** Stable encoding for traffic-size accounting and hashing. *)
