(* Tests for the Active Badge system (§6.3) and event security (ch. 7):
   sites, the inter-site protocol, the Namer active database, the synthetic
   workload, ERDL policies and proxies. *)

module Engine = Oasis_sim.Engine
module Net = Oasis_sim.Net
module Stats = Oasis_sim.Stats
module Event = Oasis_events.Event
module Broker = Oasis_events.Broker
module Service = Oasis_core.Service
module Principal = Oasis_core.Principal
module Site = Oasis_badge.Site
module Workload = Oasis_badge.Workload
module Erdl = Oasis_esec.Erdl
module Policy = Oasis_esec.Policy
module V = Oasis_rdl.Value

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

type world = { engine : Engine.t; net : Net.t; reg : Service.registry }

let make_world () =
  let engine = Engine.create () in
  let net = Net.create ~latency:(Net.Fixed 0.005) engine in
  { engine; net; reg = Service.create_registry () }

let run w dt = Engine.run ~until:(Engine.now w.engine +. dt) w.engine

(* --- sites and inter-site protocol --- *)

let test_home_registration_and_owner () =
  let w = make_world () in
  let cl = Site.create w.net w.reg ~name:"CL" ~rooms:[ "T14"; "T15" ] () in
  Site.register_badge cl ~badge:12 ~user:"rjh21";
  checkb "owner known" true (Site.owner cl ~badge:12 = Some "rjh21");
  checkb "unknown badge" true (Site.owner cl ~badge:99 = None);
  checkb "badge lookup" true (Site.lookup_badge cl ~user:"rjh21" = Some 12)

let test_sighting_signals_seen () =
  let w = make_world () in
  let cl = Site.create w.net w.reg ~name:"CL" ~rooms:[ "T14" ] () in
  Site.register_badge cl ~badge:12 ~user:"rjh21";
  let client = Net.add_host w.net "watcher" in
  let got = ref [] in
  Broker.connect w.net client (Site.master cl)
    ~on_result:(function
      | Ok s ->
          ignore
            (Broker.register s (Event.template "Seen" [ Event.Any; Event.Any ]) (fun e ->
                 got := e :: !got))
      | Error _ -> ())
    ();
  run w 1.0;
  Site.sight cl ~badge:12 ~home:"CL" ~room:"T14";
  run w 1.0;
  checki "one Seen event" 1 (List.length !got);
  match !got with
  | [ e ] -> checkb "params" true (e.Event.params = [| V.Int 12; V.Str "T14" |])
  | _ -> ()

let test_intersite_protocol_fig62 () =
  (* fig 6.2: badge homed at A is seen at B, then at C.  B learns naming
     info from A; when the badge moves to C, A purges B and signals
     MovedSite. *)
  let w = make_world () in
  let a = Site.create w.net w.reg ~name:"A" ~rooms:[ "a1" ] () in
  let b = Site.create w.net w.reg ~name:"B" ~rooms:[ "b1" ] () in
  let c = Site.create w.net w.reg ~name:"C" ~rooms:[ "c1" ] () in
  Site.register_badge a ~badge:7 ~user:"karen";
  (* Watch MovedSite events at A's namer. *)
  let moved = ref [] in
  let watcher = Net.add_host w.net "watcher" in
  Broker.connect w.net watcher (Site.namer a)
    ~on_result:(function
      | Ok s ->
          ignore
            (Broker.register s (Event.template "MovedSite" [ Event.Any; Event.Any; Event.Any ])
               (fun e -> moved := e :: !moved))
      | Error _ -> ())
    ();
  run w 1.0;
  (* Seen at B. *)
  Site.sight b ~badge:7 ~home:"A" ~room:"b1";
  run w 1.0;
  checkb "B learned the owner" true (Site.owner b ~badge:7 = Some "karen");
  checkb "home tracks location" true (Site.home_location a ~badge:7 = Some "B");
  checki "one move event" 1 (List.length !moved);
  (* Seen at C: B's cache must be purged by the home site. *)
  Site.sight c ~badge:7 ~home:"A" ~room:"c1";
  run w 1.0;
  checkb "C learned the owner" true (Site.owner c ~badge:7 = Some "karen");
  checkb "home now says C" true (Site.home_location a ~badge:7 = Some "C");
  checkb "B purged" true (Site.owner b ~badge:7 = None);
  checki "second move event" 2 (List.length !moved)

let test_intersite_message_efficiency () =
  (* E11's property: repeated sightings of a cached foreign badge cost no
     inter-site messages. *)
  let w = make_world () in
  let a = Site.create w.net w.reg ~name:"A" ~rooms:[ "a1" ] () in
  let b = Site.create w.net w.reg ~name:"B" ~rooms:[ "b1"; "b2" ] () in
  ignore a;
  Site.register_badge a ~badge:7 ~user:"karen";
  Site.sight b ~badge:7 ~home:"A" ~room:"b1";
  run w 1.0;
  let before = Stats.count (Net.stats w.net) "badge.intersite" in
  for _ = 1 to 50 do
    Site.sight b ~badge:7 ~home:"A" ~room:"b2"
  done;
  run w 1.0;
  checki "no further intersite traffic" before (Stats.count (Net.stats w.net) "badge.intersite")

let test_home_badge_returning () =
  let w = make_world () in
  let a = Site.create w.net w.reg ~name:"A" ~rooms:[ "a1" ] () in
  let b = Site.create w.net w.reg ~name:"B" ~rooms:[ "b1" ] () in
  Site.register_badge a ~badge:7 ~user:"karen";
  Site.sight b ~badge:7 ~home:"A" ~room:"b1";
  run w 1.0;
  checkb "away" true (Site.home_location a ~badge:7 = Some "B");
  Site.sight a ~badge:7 ~home:"A" ~room:"a1";
  run w 1.0;
  checkb "back home" true (Site.home_location a ~badge:7 = Some "A");
  checkb "B purged on return" true (Site.owner b ~badge:7 = None)

let test_namer_dbregister_pattern () =
  (* §6.3.3: atomic lookup+register via retrospective registration — no race
     between reading OwnsBadge and hearing about later changes. *)
  let w = make_world () in
  let cl = Site.create w.net w.reg ~name:"CL" ~rooms:[ "T14" ] () in
  Site.register_badge cl ~badge:12 ~user:"rjh21";
  run w 1.0;
  let client = Net.add_host w.net "monitor" in
  let events = ref [] in
  Broker.connect w.net client (Site.namer cl)
    ~on_result:(function
      | Ok s ->
          (* DBRegister: since:0 replays the existing tuple, then updates
             flow live. *)
          ignore
            (Broker.register s ~since:0.0
               (Event.template "OwnsBadge" [ Event.Lit (V.Str "rjh21"); Event.Any ])
               (fun e -> events := e :: !events))
      | Error _ -> ())
    ();
  run w 1.0;
  checki "existing tuple replayed" 1 (List.length !events);
  (* Flat battery: badge reassigned; the monitor hears about it. *)
  Site.reassign_badge cl ~user:"rjh21" ~badge:13;
  run w 1.0;
  checki "update delivered" 2 (List.length !events);
  match !events with
  | newest :: _ -> checkb "new badge" true (newest.Event.params = [| V.Str "rjh21"; V.Int 13 |])
  | [] -> ()

(* --- workload --- *)

let test_workload_generates_sightings () =
  let w = make_world () in
  let a = Site.create w.net w.reg ~name:"A" ~rooms:[ "a1"; "a2"; "a3" ] () in
  let b = Site.create w.net w.reg ~name:"B" ~rooms:[ "b1"; "b2" ] () in
  let wl =
    Workload.create w.engine ~seed:7L ~sites:[ a; b ] ~people_per_site:5 ~mean_dwell:1.0
      ~travel_probability:0.2 ()
  in
  checki "ten people" 10 (List.length (Workload.people wl));
  Workload.start wl;
  Engine.run ~until:60.0 w.engine;
  checkb "sightings happened" true (Workload.sightings wl > 100);
  checkb "site changes happened" true (Workload.site_changes wl > 0)

let test_workload_deterministic () =
  let run_once () =
    let w = make_world () in
    (* Fresh directory entries shadow older ones because Site.create
       replaces by name. *)
    let a = Site.create w.net w.reg ~name:"A" ~rooms:[ "a1"; "a2" ] () in
    let wl = Workload.create w.engine ~seed:99L ~sites:[ a ] ~people_per_site:3 () in
    Workload.start wl;
    Engine.run ~until:30.0 w.engine;
    Workload.sightings wl
  in
  checki "same seed, same trace" (run_once ()) (run_once ())

(* --- ERDL --- *)

let parse_rules src =
  match Erdl.parse src with Ok r -> r | Error e -> Alcotest.failf "erdl: %s" e

let test_erdl_parse () =
  let rules =
    parse_rules
      {|
# visibility policy
allow Namer.OwnsBadge(u, b) : Seen(b, *)
allow Login.LoggedOn("boss", h) : Seen(*, *)
deny * : Seen(*, "directors-office")
|}
  in
  checki "three rules" 3 (List.length rules);
  let r0 = List.nth rules 0 in
  checkb "allow" true r0.Erdl.allow;
  checkb "deny star subject" true ((List.nth rules 2).Erdl.role = None)

let test_erdl_parse_errors () =
  checkb "bad line" true (Result.is_error (Erdl.parse "nonsense here"));
  checkb "missing colon" true (Result.is_error (Erdl.parse "allow Foo Seen(b)"))

let test_erdl_instantiate_binds_credential_args () =
  let rules = parse_rules "allow Namer.OwnsBadge(u, b) : Seen(b, *)" in
  let vis = Erdl.instantiate rules ~creds:[ ("Namer", [ "OwnsBadge" ], [ V.Str "rjh"; V.Int 12 ]) ] in
  checki "one allowed template" 1 (List.length vis.Erdl.vis_allowed);
  let tpl = List.hd vis.Erdl.vis_allowed in
  checkb "badge literal bound" true (tpl.Event.pats.(0) = Event.Lit (V.Int 12))

let test_erdl_filter_narrows () =
  let rules = parse_rules "allow Namer.OwnsBadge(u, b) : Seen(b, *)" in
  let vis = Erdl.instantiate rules ~creds:[ ("Namer", [ "OwnsBadge" ], [ V.Str "rjh"; V.Int 12 ]) ] in
  (* Client asks for everything; policy narrows to its own badge. *)
  let wide = Event.template "Seen" [ Event.Any; Event.Any ] in
  (match Erdl.filter vis wide with
  | Some narrowed -> checkb "narrowed to badge 12" true (narrowed.Event.pats.(0) = Event.Lit (V.Int 12))
  | None -> Alcotest.fail "should narrow, not reject");
  (* Asking for someone else's badge is rejected. *)
  let other = Event.template "Seen" [ Event.Lit (V.Int 99); Event.Any ] in
  checkb "other badge rejected" true (Erdl.filter vis other = None)

let test_erdl_deny_overrides () =
  let rules =
    parse_rules {|
allow Login.LoggedOn(u, h) : Seen(*, *)
deny * : Seen(*, "directors-office")
|}
  in
  let vis = Erdl.instantiate rules ~creds:[ ("Login", [ "LoggedOn" ], [ V.Str "u"; V.Str "h" ]) ] in
  let office = Event.template "Seen" [ Event.Any; Event.Lit (V.Str "directors-office") ] in
  checkb "denied room rejected" true (Erdl.filter vis office = None);
  let lab = Event.template "Seen" [ Event.Any; Event.Lit (V.Str "lab") ] in
  checkb "other room fine" true (Erdl.filter vis lab <> None)

let test_erdl_no_credentials_no_visibility () =
  let rules = parse_rules "allow Namer.OwnsBadge(u, b) : Seen(b, *)" in
  let vis = Erdl.instantiate rules ~creds:[] in
  checkb "nothing allowed" true (vis.Erdl.vis_allowed = [])

(* --- policy installation on brokers --- *)

let badge_policy_world () =
  let w = make_world () in
  let site = Site.create w.net w.reg ~name:"CL" ~rooms:[ "T14"; "T15" ] () in
  Site.register_badge site ~badge:12 ~user:"rjh21";
  Site.register_badge site ~badge:13 ~user:"other";
  (* An OASIS service issues OwnsBadge role certificates. *)
  let nsvc_host = Net.add_host w.net "namersvc" in
  let nsvc =
    Result.get_ok
      (Service.create w.net nsvc_host w.reg ~name:"Namer"
         ~rolefile:{|
def OwnsBadge(u, b) u: String b: Integer
OwnsBadge(u, b) <-
|} ())
  in
  let rules = parse_rules "allow Namer.OwnsBadge(u, b) : Seen(b, *)" in
  Policy.install (Site.master site) ~registry:w.reg ~rules;
  (w, site, nsvc)

let fresh_vci =
  let host = Principal.Host.create "clienthost" in
  let domain = Principal.Host.boot_domain host in
  fun () -> Principal.Host.new_vci host domain

let test_policy_admission_and_filtering () =
  let w, site, nsvc = badge_policy_world () in
  let me = fresh_vci () in
  let my_cert =
    Service.issue_arbitrary nsvc ~client:me ~roles:[ "OwnsBadge" ] ~args:[ V.Str "rjh21"; V.Int 12 ]
  in
  let client = Net.add_host w.net "monitor" in
  (* Without credentials: refused outright. *)
  let refused = ref false in
  Broker.connect w.net client (Site.master site)
    ~on_result:(function Error _ -> refused := true | Ok _ -> ())
    ();
  run w 1.0;
  checkb "no credentials, no session" true !refused;
  (* With a certificate: admitted, but sees only own badge. *)
  let got = ref [] in
  Broker.connect w.net client (Site.master site)
    ~credentials:[ Policy.token_of_cert my_cert ]
    ~on_result:(function
      | Ok s ->
          ignore
            (Broker.register s (Event.template "Seen" [ Event.Any; Event.Any ]) (fun e ->
                 got := e :: !got))
      | Error e -> Alcotest.failf "connect: %s" e)
    ();
  run w 1.0;
  Site.sight site ~badge:12 ~home:"CL" ~room:"T14";
  Site.sight site ~badge:13 ~home:"CL" ~room:"T14";
  run w 1.0;
  checki "only own badge seen" 1 (List.length !got);
  match !got with
  | [ e ] -> checkb "badge 12" true (e.Event.params.(0) = V.Int 12)
  | _ -> ()

let test_policy_revoked_credential_no_visibility () =
  let w, site, nsvc = badge_policy_world () in
  let me = fresh_vci () in
  let my_cert =
    Service.issue_arbitrary nsvc ~client:me ~roles:[ "OwnsBadge" ] ~args:[ V.Str "rjh21"; V.Int 12 ]
  in
  Service.revoke_certificate nsvc my_cert;
  let client = Net.add_host w.net "monitor" in
  let refused = ref false in
  Broker.connect w.net client (Site.master site)
    ~credentials:[ Policy.token_of_cert my_cert ]
    ~on_result:(function Error _ -> refused := true | Ok _ -> ())
    ();
  run w 1.0;
  checkb "revoked certificate refused" true !refused

let test_remote_policy_proxy () =
  (* fig 7.3: remote clients reach the site's Master only through a proxy
     that applies the exporting site's policy; the Master itself stays
     unpoliced for trusted local infrastructure. *)
  let w = make_world () in
  let site = Site.create w.net w.reg ~name:"CLX" ~rooms:[ "T14"; "T15" ] () in
  Site.register_badge site ~badge:12 ~user:"rjh21";
  Site.register_badge site ~badge:13 ~user:"other";
  let nsvc_host = Net.add_host w.net "namersvcx" in
  let nsvc =
    Result.get_ok
      (Service.create w.net nsvc_host w.reg ~name:"NamerX"
         ~rolefile:{|
def OwnsBadge(u, b) u: String b: Integer
OwnsBadge(u, b) <-
|} ())
  in
  let proxy_host = Net.add_host w.net "proxy" in
  let rules = parse_rules "allow NamerX.OwnsBadge(u, b) : Seen(b, *)" in
  let proxy =
    Policy.Proxy.create w.net proxy_host ~name:"CL-export" ~upstream:(Site.master site)
      ~registry:w.reg ~rules ()
  in
  run w 1.0;
  let me = fresh_vci () in
  let my_cert =
    Service.issue_arbitrary nsvc ~client:me ~roles:[ "OwnsBadge" ] ~args:[ V.Str "rjh21"; V.Int 12 ]
  in
  let remote_client = Net.add_host w.net "remote" in
  let got = ref [] in
  Broker.connect w.net remote_client (Policy.Proxy.broker proxy)
    ~credentials:[ Policy.token_of_cert my_cert ]
    ~on_result:(function
      | Ok s ->
          ignore
            (Broker.register s (Event.template "Seen" [ Event.Any; Event.Any ]) (fun e ->
                 got := e :: !got))
      | Error e -> Alcotest.failf "proxy connect: %s" e)
    ();
  run w 1.0;
  Site.sight site ~badge:12 ~home:"CLX" ~room:"T14";
  Site.sight site ~badge:13 ~home:"CLX" ~room:"T15";
  run w 1.0;
  checki "policy applied at proxy" 1 (List.length !got);
  checkb "one upstream registration" true (Policy.Proxy.upstream_registrations proxy >= 1)

let () =
  Alcotest.run "badge"
    [
      ( "sites",
        [
          Alcotest.test_case "home registration" `Quick test_home_registration_and_owner;
          Alcotest.test_case "sighting signals Seen" `Quick test_sighting_signals_seen;
          Alcotest.test_case "inter-site protocol (fig 6.2)" `Quick test_intersite_protocol_fig62;
          Alcotest.test_case "message efficiency" `Quick test_intersite_message_efficiency;
          Alcotest.test_case "home badge returning" `Quick test_home_badge_returning;
          Alcotest.test_case "namer DBRegister" `Quick test_namer_dbregister_pattern;
        ] );
      ( "workload",
        [
          Alcotest.test_case "generates sightings" `Quick test_workload_generates_sightings;
          Alcotest.test_case "deterministic" `Quick test_workload_deterministic;
        ] );
      ( "erdl",
        [
          Alcotest.test_case "parse" `Quick test_erdl_parse;
          Alcotest.test_case "parse errors" `Quick test_erdl_parse_errors;
          Alcotest.test_case "instantiate binds args" `Quick test_erdl_instantiate_binds_credential_args;
          Alcotest.test_case "filter narrows" `Quick test_erdl_filter_narrows;
          Alcotest.test_case "deny overrides" `Quick test_erdl_deny_overrides;
          Alcotest.test_case "no credentials" `Quick test_erdl_no_credentials_no_visibility;
        ] );
      ( "policy",
        [
          Alcotest.test_case "admission and filtering" `Quick test_policy_admission_and_filtering;
          Alcotest.test_case "revoked credential" `Quick test_policy_revoked_credential_no_visibility;
          Alcotest.test_case "remote policy proxy (fig 7.3)" `Quick test_remote_policy_proxy;
        ] );
    ]
