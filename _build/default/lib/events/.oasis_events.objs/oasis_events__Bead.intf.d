lib/events/bead.mli: Composite Event
