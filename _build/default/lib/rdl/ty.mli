(** RDL types and unification.

    Argument types are 'Integer', 'String', a set type such as [{rwx}] or the
    name of an object type (§3.2.1).  Types are simple: no sub-typing.  RDL
    provides comprehensive type inference; declaration statements may be
    omitted whenever types are inferable (§3.2.1). *)

type t =
  | Int
  | Str
  | Set of string  (** alphabet of admissible element characters, sorted *)
  | Obj of string  (** object type name *)
  | Var of var ref

and var = Unbound of int | Link of t

val fresh : unit -> t
(** A fresh unification variable. *)

val repr : t -> t
(** Follow links to the representative. *)

val unify : t -> t -> (unit, string) result
(** Unify two types; set alphabets must be equal. *)

val of_value : Value.t -> t
(** The (ground) type of a runtime value.  A [Set] value's type alphabet is
    its own element set; unification against a declared set type therefore
    uses {!compatible_value} rather than alphabet equality. *)

val compatible_value : t -> Value.t -> bool
(** Does the value inhabit the (resolved) type?  For set types the value's
    elements must be a subset of the alphabet. *)

val is_ground : t -> bool

val equal : t -> t -> bool
(** Structural equality of resolved types (unbound vars equal only to
    themselves). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
