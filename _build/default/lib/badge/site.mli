(** One site of the global Active Badge system (§6.3, figs 6.2–6.3).

    Each site runs a {e Master} (interfacing with the sensors and signalling
    raw [Seen(badge, sensor)] events), a {e Sighting Cache} (a client of the
    Master that maintains the set of badges currently on site and drives the
    inter-site protocol when a previously unknown badge appears), and a
    {e Namer} (an active database mapping badges to users and signalling
    database changes as events, so long-running monitors never miss a badge
    re-assignment — the atomic lookup+register of §6.3.3 is the broker's
    retrospective registration).

    Inter-site protocol (fig 6.2): every badge carries a pointer to its home
    site.  When a site first sees a foreign badge it asks the badge's home
    for naming information; the home records the badge's current site,
    instructs the previous site to discard its cached information, and
    signals [MovedSite(badge, oldsite, newsite)] from its Namer. *)

type t

val create :
  Oasis_sim.Net.t ->
  Oasis_core.Service.registry ->
  name:string ->
  rooms:string list ->
  ?heartbeat:float ->
  unit ->
  t

val name : t -> string
val rooms : t -> string list
val host : t -> Oasis_sim.Net.host

val master : t -> Oasis_events.Broker.server
(** Signals [Seen(badge : Int, room : Str)]. *)

val namer : t -> Oasis_events.Broker.server
(** Signals [OwnsBadge(user : Str, badge : Int)], [MovedSite(badge : Int,
    oldsite : Str, newsite : Str)] and [BadgeArrived(badge : Int)]. *)

val register_badge : t -> badge:int -> user:string -> unit
(** Home registration: this site becomes the badge's home. *)

val sight : t -> badge:int -> home:string -> room:string -> unit
(** A sensor reading: badge (whose stored home pointer reads [home]) seen in
    [room].  Signals [Seen]; unknown foreign badges trigger the inter-site
    protocol. *)

val owner : t -> badge:int -> string option
(** Naming information available at this site (home or cached foreign). *)

val on_site : t -> int list
(** Badges the sighting cache currently believes are on site. *)

val home_location : t -> badge:int -> string option
(** For a badge homed here: the site it is currently at. *)

val lookup_badge : t -> user:string -> int option
(** Namer database query: the badge currently assigned to the user. *)

val reassign_badge : t -> user:string -> badge:int -> unit
(** Change a user's badge (flat battery, lost badge); signals the database
    change so monitors can re-register (§6.3.3). *)
