module Value = Oasis_rdl.Value
module Signing = Oasis_util.Signing
module Prng = Oasis_util.Prng
module Net = Oasis_sim.Net
module Engine = Oasis_sim.Engine

type value = Value.t

module Chain = struct
  type cap = {
    c_holder : string;
    c_role : string;
    c_args : value list;
    c_parent : cap option;
    c_sig : string;
  }

  type issuer = {
    i_secret : Signing.secret;
    i_sig_length : int;
    i_revoked : (string, unit) Hashtbl.t;  (* revoked link signatures *)
    mutable i_crypto : int;
  }

  let create_issuer ?(sig_length = 16) ~seed () =
    {
      i_secret = Signing.fresh_secret (Prng.create seed);
      i_sig_length = sig_length;
      i_revoked = Hashtbl.create 16;
      i_crypto = 0;
    }

  let payload cap =
    String.concat "\x00"
      [
        cap.c_holder;
        cap.c_role;
        String.concat "\x01" (List.map Value.marshal cap.c_args);
        (match cap.c_parent with Some p -> p.c_sig | None -> "root");
      ]

  let sign issuer cap =
    { cap with c_sig = Signing.sign ~length:issuer.i_sig_length issuer.i_secret (payload cap) }

  let issue issuer ~holder ~role ~args =
    sign issuer { c_holder = holder; c_role = role; c_args = args; c_parent = None; c_sig = "" }

  let delegate issuer cap ~to_ =
    sign issuer { cap with c_holder = to_; c_parent = Some cap; c_sig = "" }

  let rec validate issuer cap =
    issuer.i_crypto <- issuer.i_crypto + 1;
    Signing.verify ~length:issuer.i_sig_length issuer.i_secret (payload cap) cap.c_sig
    && (not (Hashtbl.mem issuer.i_revoked cap.c_sig))
    && match cap.c_parent with None -> true | Some p -> validate issuer p

  let revoke issuer cap = Hashtbl.replace issuer.i_revoked cap.c_sig ()

  let rec depth cap = match cap.c_parent with None -> 1 | Some p -> 1 + depth p

  let crypto_checks issuer = issuer.i_crypto
end

module Refresh = struct
  type cap = { rc_holder : string; rc_role : string; rc_expires : float; rc_sig : string }

  type issuer = {
    r_secret : Signing.secret;
    r_sig_length : int;
    r_lifetime : float;
    r_net : Net.t;
    r_host : Net.host;
    r_revoked : (string * string, unit) Hashtbl.t;
  }

  let create_issuer ?(sig_length = 16) ?(lifetime = 5.0) ~seed net host =
    {
      r_secret = Signing.fresh_secret (Prng.create seed);
      r_sig_length = sig_length;
      r_lifetime = lifetime;
      r_net = net;
      r_host = host;
      r_revoked = Hashtbl.create 16;
    }

  let payload c = Printf.sprintf "%s\x00%s\x00%.6f" c.rc_holder c.rc_role c.rc_expires

  let issue issuer ~holder ~role =
    let expires = Engine.now (Net.engine issuer.r_net) +. issuer.r_lifetime in
    let c = { rc_holder = holder; rc_role = role; rc_expires = expires; rc_sig = "" } in
    { c with rc_sig = Signing.sign ~length:issuer.r_sig_length issuer.r_secret (payload c) }

  let valid issuer ~at c =
    at <= c.rc_expires
    && Signing.verify ~length:issuer.r_sig_length issuer.r_secret (payload c) c.rc_sig

  let revoke issuer ~holder ~role = Hashtbl.replace issuer.r_revoked (holder, role) ()

  let lifetime issuer = issuer.r_lifetime

  let start_refresher issuer ~client_host ~holder ~role ~on_refresh =
    let engine = Net.engine issuer.r_net in
    let period = issuer.r_lifetime *. 0.8 in
    let rec refresh () =
      Net.rpc issuer.r_net ~category:"refresh" ~src:client_host ~dst:issuer.r_host
        (fun () ->
          if Hashtbl.mem issuer.r_revoked (holder, role) then Error "revoked"
          else Ok (issue issuer ~holder ~role))
        (function
          | Ok cap ->
              on_refresh (Some cap);
              Engine.schedule engine ~delay:period refresh
          | Error _ -> on_refresh None)
    in
    refresh ()
end
