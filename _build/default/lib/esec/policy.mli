(** Installing ERDL policy on event brokers, and proxies for remote policy
    (§7.4–7.5, figs 7.1 and 7.3).

    Clients present role membership certificates as session credentials.
    Certificates are conveyed as opaque tokens ({!token_of_cert}); at
    admission the policy layer resolves each token, validates the
    certificate with its issuing service, and computes the session's
    visibility.  Registrations are then narrowed or rejected by
    {!Erdl.filter} — the event server never monitors what the client cannot
    see. *)

val token_of_cert : Oasis_core.Cert.rmc -> string
(** Turn a certificate into a session-credential token (also performs the
    marshalling a real transport would). *)

val install :
  Oasis_events.Broker.server ->
  registry:Oasis_core.Service.registry ->
  rules:Erdl.rule list ->
  unit
(** Arm the broker's admission control and registration filter with the
    policy.  Sessions presenting no valid certificate are admitted only if
    some rule has a [*] subject. *)

(** Remote policy enforcement by proxy (fig 7.3): a site's events are
    exported to other sites only through a proxy broker that applies the
    {e exporting} site's policy to the remote clients' credentials. *)
module Proxy : sig
  type t

  val create :
    Oasis_sim.Net.t ->
    Oasis_sim.Net.host ->
    name:string ->
    upstream:Oasis_events.Broker.server ->
    registry:Oasis_core.Service.registry ->
    rules:Erdl.rule list ->
    ?heartbeat:float ->
    unit ->
    t
  (** A broker that re-signals upstream events.  Remote clients connect to
      the proxy; their registrations are policy-filtered, then mirrored
      upstream, and matching upstream events are re-signalled (with their
      original stamps) on the proxy. *)

  val broker : t -> Oasis_events.Broker.server
  val upstream_registrations : t -> int
end
