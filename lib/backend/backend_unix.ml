module Engine = Oasis_sim.Engine
module Net = Oasis_sim.Net
module Disk = Oasis_store.Disk
module Siphash = Oasis_util.Siphash

(* ------------------------------------------------------------------ *)
(* Wire framing: the WAL's length+SipHash idiom (lib/store/wal.ml),    *)
(* applied to a TCP byte stream.  A frame is                           *)
(*   [length: 8 hex][SipHash-2-4 of payload: 16 hex][payload]          *)
(* and the checksum provides integrity against a desynchronized or     *)
(* truncated stream, not secrecy.                                      *)
(* ------------------------------------------------------------------ *)

let frame_key = Siphash.key_of_string "oasis.wal:tcp"

let max_frame = 1 lsl 26 (* 64 MiB: anything larger is a desynced stream *)

let frame payload =
  Printf.sprintf "%08x%s%s" (String.length payload) (Siphash.hash_hex frame_key payload) payload

let hex_val = function
  | '0' .. '9' as c -> Char.code c - Char.code '0'
  | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
  | _ -> -1

exception Corrupt_stream

(* One frame from [buf] starting at [off], if complete: (payload, next_off).
   Raises [Corrupt_stream] on a bad header or checksum — the connection is
   beyond recovery and must be dropped. *)
let decode_frame buf off =
  let total = Buffer.length buf in
  if off + 24 > total then None
  else begin
    let len =
      let rec go i acc =
        if i = 8 then acc
        else
          let v = hex_val (Buffer.nth buf (off + i)) in
          if v < 0 then raise Corrupt_stream else go (i + 1) ((acc * 16) + v)
      in
      go 0 0
    in
    if len > max_frame then raise Corrupt_stream
    else if off + 24 + len > total then None
    else
      let sum = Buffer.sub buf (off + 8) 16 in
      let payload = Buffer.sub buf (off + 24) len in
      if String.equal (Siphash.hash_hex frame_key payload) sum then Some (payload, off + 24 + len)
      else raise Corrupt_stream
  end

(* Length-prefixed field packing for the RPC envelope (8-bit clean). *)
let enc_fields fields =
  let b = Buffer.create 128 in
  List.iter
    (fun f ->
      Buffer.add_string b (Printf.sprintf "%08x" (String.length f));
      Buffer.add_string b f)
    fields;
  Buffer.contents b

let dec_fields s =
  let total = String.length s in
  let rec go off acc =
    if off = total then Some (List.rev acc)
    else if off + 8 > total then None
    else
      let len =
        let rec h i acc =
          if i = 8 then acc
          else
            let v = hex_val s.[off + i] in
            if v < 0 then -1 else h (i + 1) ((acc * 16) + v)
        in
        h 0 0
      in
      if len < 0 || off + 8 + len > total then None
      else go (off + 8 + len) (String.sub s (off + 8) len :: acc)
  in
  go 0 []

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

type conn = {
  c_fd : Unix.file_descr;
  c_buf : Buffer.t;  (* received, not yet decoded *)
  mutable c_off : int;  (* decoded prefix of c_buf *)
  mutable c_alive : bool;
}

type t = {
  b_engine : Engine.t Lazy.t ref;
      (* tied after Engine.create because the source closes over [t] *)
  mutable b_net : Net.t option;
  b_t0 : float;
  b_data_dir : string;
  mutable b_listeners : Unix.file_descr list;
  mutable b_conns : conn list;
  b_peers : (string, Unix.sockaddr) Hashtbl.t;
  b_outgoing : (string, conn) Hashtbl.t;
  b_aliases : (string, string) Hashtbl.t;
  b_pending : (string, (string, string) result -> unit) Hashtbl.t;
  mutable b_next_id : int;
  b_disks : (int, Disk.t) Hashtbl.t;
}

let now t () = Unix.gettimeofday () -. t.b_t0

let engine t = Lazy.force !(t.b_engine)
let net t = match t.b_net with Some n -> n | None -> assert false

let close_conn t c =
  if c.c_alive then begin
    c.c_alive <- false;
    (try Unix.close c.c_fd with Unix.Unix_error _ -> ());
    t.b_conns <- List.filter (fun c' -> c' != c) t.b_conns;
    Hashtbl.iter
      (fun name c' -> if c' == c then Hashtbl.remove t.b_outgoing name)
      (Hashtbl.copy t.b_outgoing)
  end

let write_all t c s =
  let bytes = Bytes.of_string s in
  let len = Bytes.length bytes in
  let rec go off =
    if off < len then
      match Unix.write c.c_fd bytes off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (_, _, _) -> close_conn t c
  in
  go 0

(* --- the RPC envelope ---

   Q frames: ["Q"; id; src; dst; port; payload]   (request)
   R frames: ["R"; id; marker ^ payload]          (reply; marker K=Ok, E=Error)

   Replies return over the connection the request arrived on, so only the
   caller needs to know addresses. *)

let send_reply t c id result =
  if c.c_alive then
    let body = match result with Ok s -> "K" ^ s | Error e -> "E" ^ e in
    write_all t c (frame (enc_fields [ "R"; id; body ]))

let on_frame t c payload =
  match dec_fields payload with
  | Some [ "Q"; id; _src; dst; port; body ] ->
      let dst =
        match Hashtbl.find_opt t.b_aliases dst with Some local -> local | None -> dst
      in
      Net.dispatch (net t) ~dst ~port body (fun result -> send_reply t c id result)
  | Some [ "R"; id; body ] -> (
      match Hashtbl.find_opt t.b_pending id with
      | None -> () (* caller timed out and was already answered *)
      | Some k ->
          Hashtbl.remove t.b_pending id;
          if String.length body >= 1 && body.[0] = 'K' then
            k (Ok (String.sub body 1 (String.length body - 1)))
          else if String.length body >= 1 && body.[0] = 'E' then
            k (Error (String.sub body 1 (String.length body - 1)))
          else k (Error "malformed reply"))
  | _ -> close_conn t c

let drain_conn t c =
  let rec go () =
    match decode_frame c.c_buf c.c_off with
    | None ->
        (* Compact once the decoded prefix dominates the buffer. *)
        if c.c_off > 65536 then begin
          let rest = Buffer.sub c.c_buf c.c_off (Buffer.length c.c_buf - c.c_off) in
          Buffer.clear c.c_buf;
          Buffer.add_string c.c_buf rest;
          c.c_off <- 0
        end
    | Some (payload, next) ->
        c.c_off <- next;
        on_frame t c payload;
        if c.c_alive then go ()
    | exception Corrupt_stream -> close_conn t c
  in
  go ()

let read_chunk = Bytes.create 65536

let on_readable t c =
  match Unix.read c.c_fd read_chunk 0 (Bytes.length read_chunk) with
  | 0 -> close_conn t c
  | n ->
      Buffer.add_subbytes c.c_buf read_chunk 0 n;
      drain_conn t c
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> close_conn t c

let accept_conn t lfd =
  match Unix.accept lfd with
  | fd, _ ->
      Unix.setsockopt fd Unix.TCP_NODELAY true;
      t.b_conns <- { c_fd = fd; c_buf = Buffer.create 4096; c_off = 0; c_alive = true } :: t.b_conns
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> ()

let connect_to t name =
  match Hashtbl.find_opt t.b_outgoing name with
  | Some c when c.c_alive -> Some c
  | _ -> (
      match Hashtbl.find_opt t.b_peers name with
      | None -> None
      | Some addr -> (
          let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
          match Unix.connect fd addr with
          | () ->
              Unix.setsockopt fd Unix.TCP_NODELAY true;
              let c = { c_fd = fd; c_buf = Buffer.create 4096; c_off = 0; c_alive = true } in
              t.b_conns <- c :: t.b_conns;
              Hashtbl.replace t.b_outgoing name c;
              Some c
          | exception Unix.Unix_error (_, _, _) ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              None))

let rm_call t ~src ~dst ~port payload k =
  match connect_to t dst with
  | None -> () (* unreachable peer: the caller's timeout answers *)
  | Some c ->
      let id = Printf.sprintf "%016x" t.b_next_id in
      t.b_next_id <- t.b_next_id + 1;
      Hashtbl.replace t.b_pending id k;
      write_all t c (frame (enc_fields [ "Q"; id; src; dst; port; payload ]))

(* ------------------------------------------------------------------ *)
(* The waiter: the engine's real-time run loop parks here between      *)
(* timer deadlines; socket readiness is dispatched inline.             *)
(* ------------------------------------------------------------------ *)

let wait t ~until =
  let fds = t.b_listeners @ List.map (fun c -> c.c_fd) t.b_conns in
  if fds = [] && until = None then false
  else begin
    let timeout =
      match until with None -> -1.0 | Some d -> Float.max 0.0 (d -. now t ())
    in
    (match Unix.select fds [] [] timeout with
    | ready, _, _ ->
        List.iter
          (fun fd ->
            if List.mem fd t.b_listeners then accept_conn t fd
            else
              match List.find_opt (fun c -> c.c_fd == fd && c.c_alive) t.b_conns with
              | Some c -> on_readable t c
              | None -> ())
          ready
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    true
  end

(* ------------------------------------------------------------------ *)
(* Real stable storage: one directory per host, one file per WAL /     *)
(* snapshot.  Appends buffer in memory (the page-cache analogue);      *)
(* fsync writes the buffered tail and calls Unix.fsync, so the durable *)
(* prefix on disk is exactly what the Disk contract promises —         *)
(* abandoning the handle (a process crash) loses the unsynced tail,    *)
(* mirroring the simulated device's crash semantics.                   *)
(* ------------------------------------------------------------------ *)

let sanitize name =
  String.map (fun c -> if c = '/' || c = '\\' || c = '\x00' then '_' else c) name

let mkdir_p dir =
  let rec go d =
    if not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

type rfile = {
  rf_path : string;
  mutable rf_fd : Unix.file_descr;
  rf_pending : Buffer.t;
  mutable rf_durable : int;
}

let disk_ops dir =
  mkdir_p dir;
  let files : (string, rfile) Hashtbl.t = Hashtbl.create 4 in
  let rfile name =
    let name = sanitize name in
    match Hashtbl.find_opt files name with
    | Some f -> f
    | None ->
        let path = Filename.concat dir name in
        let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
        let durable = (Unix.fstat fd).Unix.st_size in
        let f = { rf_path = path; rf_fd = fd; rf_pending = Buffer.create 256; rf_durable = durable }
        in
        Hashtbl.add files name f;
        f
  in
  {
    Disk.o_append = (fun ~file data -> Buffer.add_string (rfile file).rf_pending data);
    o_fsync =
      (fun ~file k ->
        let f = rfile file in
        if Buffer.length f.rf_pending > 0 then begin
          let data = Buffer.contents f.rf_pending in
          Buffer.clear f.rf_pending;
          ignore (Unix.lseek f.rf_fd 0 Unix.SEEK_END);
          let bytes = Bytes.of_string data in
          let rec go off =
            if off < Bytes.length bytes then
              go (off + Unix.write f.rf_fd bytes off (Bytes.length bytes - off))
          in
          go 0;
          Unix.fsync f.rf_fd;
          f.rf_durable <- f.rf_durable + String.length data
        end;
        k ());
    o_write_atomic =
      (fun ~file data k ->
        let f = rfile file in
        let tmp = f.rf_path ^ ".tmp" in
        let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
        let bytes = Bytes.of_string data in
        let rec go off =
          if off < Bytes.length bytes then
            go (off + Unix.write fd bytes off (Bytes.length bytes - off))
        in
        go 0;
        Unix.fsync fd;
        Unix.close fd;
        Unix.rename tmp f.rf_path;
        Unix.close f.rf_fd;
        f.rf_fd <- Unix.openfile f.rf_path [ Unix.O_RDWR ] 0o644;
        f.rf_durable <- String.length data;
        (* Bytes appended while the replace was "in flight" stay pending:
           the next fsync lands them after the new contents, which is the
           contract the compacting callers rely on. *)
        k ());
    o_truncate =
      (fun ~file ->
        let f = rfile file in
        Unix.ftruncate f.rf_fd 0;
        Buffer.clear f.rf_pending;
        f.rf_durable <- 0);
    o_read =
      (fun ~file ->
        let f = rfile file in
        ignore (Unix.lseek f.rf_fd 0 Unix.SEEK_SET);
        let b = Bytes.create f.rf_durable in
        let rec go off =
          if off < f.rf_durable then
            match Unix.read f.rf_fd b off (f.rf_durable - off) with
            | 0 -> off
            | n -> go (off + n)
          else off
        in
        let got = go 0 in
        Bytes.sub_string b 0 got);
    o_durable_size = (fun ~file -> (rfile file).rf_durable);
    o_unsynced = (fun ~file -> Buffer.length (rfile file).rf_pending);
    o_scan_delay = (fun ~bytes:_ -> 0.0);
    o_files =
      (fun () ->
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun n -> not (Filename.check_suffix n ".tmp")));
  }

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let default_data_dir () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "oasis-unix-%d" (Unix.getpid ()))

let create ?data_dir ?seed ?(latency = Net.Fixed 0.0) () =
  let t =
    {
      b_engine = ref (lazy (assert false));
      b_net = None;
      b_t0 = Unix.gettimeofday ();
      b_data_dir = (match data_dir with Some d -> d | None -> default_data_dir ());
      b_listeners = [];
      b_conns = [];
      b_peers = Hashtbl.create 8;
      b_outgoing = Hashtbl.create 8;
      b_aliases = Hashtbl.create 8;
      b_pending = Hashtbl.create 64;
      b_next_id = 0;
      b_disks = Hashtbl.create 8;
    }
  in
  let source =
    { Engine.src_now = now t; src_wait = (fun ~until -> wait t ~until) }
  in
  let engine = Engine.create ~source () in
  t.b_engine := lazy engine;
  let net = Net.create ?seed ~latency engine in
  t.b_net <- Some net;
  Net.set_remote net
    (Some { Net.rm_call = (fun ~src ~dst ~port payload k -> rm_call t ~src ~dst ~port payload k) });
  t

let data_dir t = t.b_data_dir

let listen t ?(port = 0) () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  t.b_listeners <- fd :: t.b_listeners;
  match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port

let peer t ~name ~port =
  Hashtbl.replace t.b_peers name (Unix.ADDR_INET (Unix.inet_addr_loopback, port))

let alias t ~name ~local = Hashtbl.replace t.b_aliases name local

let disk t host =
  let addr = Net.host_addr host in
  match Hashtbl.find_opt t.b_disks addr with
  | Some d -> d
  | None ->
      let dir = Filename.concat t.b_data_dir (sanitize (Net.host_name host)) in
      let d = Disk.create_ops (net t) host (disk_ops dir) in
      Hashtbl.add t.b_disks addr d;
      d

let reopen_disk t host =
  (* Forget the open handle — in-memory pending buffers and all — and
     re-attach to the same directory: the new device sees exactly the
     durable bytes, which is what surviving a process crash means. *)
  Hashtbl.remove t.b_disks (Net.host_addr host);
  disk t host

let shutdown t =
  List.iter (fun c -> close_conn t c) t.b_conns;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.b_listeners;
  t.b_listeners <- []

let pack t : Backend.t =
  let e = engine t and n = net t in
  (module struct
    let name = "unix"
    let clock_domain = `Wall
    let engine = e
    let net = n
    let disk host = disk t host
    let run ?until () = Engine.run ?until e
    let stop () = Engine.stop e
  end)
