lib/rdl/infer.ml: Ast Format Hashtbl List Option Ty Value
