(** Per-category traffic and operation accounting.

    Several experiments (E2, E6, E7, E11 in DESIGN.md) compare message counts
    and bytes between schemes; every network send and every interesting
    operation increments a named counter here. *)

type t

val create : unit -> t
val incr : t -> ?n:int -> string -> unit
val add_bytes : t -> string -> int -> unit
val count : t -> string -> int
val bytes : t -> string -> int
val reset : t -> unit

val categories : t -> string list
(** Sorted list of categories seen since the last reset. *)

val report : t -> (string * int * int) list
(** [(category, count, bytes)] rows, sorted by category. *)

val pp : Format.formatter -> t -> unit
