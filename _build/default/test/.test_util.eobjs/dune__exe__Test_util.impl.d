test/test_util.ml: Alcotest Array Char List Oasis_util QCheck QCheck_alcotest String
