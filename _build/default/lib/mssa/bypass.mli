(** Custode bypassing (§5.6, fig 5.8).

    Operations a VAC passes through unmodified can go straight to the bottom
    custode.  The bottom custode does not understand the top-level VAC's
    certificates, so on first use it makes a {e callback} to the top-level
    service to validate the certificate; the validated credential record is
    mirrored locally (an external record kept fresh by [Modified] event
    notification), after which repeated uses are a local state check — never
    less efficient than the full stack walk, and much cheaper once warm. *)

type t

val create : Custode.t -> t
(** Bypass state co-located with the bottom custode. *)

val register_route : t -> top:Vac.t -> unit
(** Allow certificates issued by [top] to be used directly at the bottom
    custode; operations execute under the lowest VAC's own certificate
    (fig 5.8b). *)

val read :
  t ->
  client_host:Oasis_sim.Net.host ->
  cert:Oasis_core.Cert.rmc ->
  file:int ->
  ((string, string) result -> unit) ->
  unit
(** One client→bottom round trip, plus (on cold cache) one callback round
    trip to the issuing VAC. *)

val cache_size : t -> int
val callbacks_made : t -> int
