lib/oasis/cert.mli: Credrec Format Oasis_rdl Oasis_util Principal
