lib/events/event.mli: Format Oasis_rdl
