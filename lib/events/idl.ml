module Ty = Oasis_rdl.Ty
module Value = Oasis_rdl.Value

type ty = Ty.t

type operation = { op_name : string; op_params : (string * ty) list; op_returns : ty }

type event_decl = { ev_name : string; ev_params : (string * ty) list }

type interface = {
  if_name : string;
  if_operations : operation list;
  if_events : event_decl list;
}

exception Idl_error of string

(* A tiny hand lexer: identifiers, punctuation, set types. *)
type tok = ID of string | PUNCT of char | SET of string | EOF

let lex src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    match src.[!i] with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | '#' ->
        while !i < n && src.[!i] <> '\n' do
          incr i
        done
    | ('a' .. 'z' | 'A' .. 'Z' | '_') ->
        let start = !i in
        while
          !i < n
          && match src.[!i] with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false
        do
          incr i
        done;
        toks := ID (String.sub src start (!i - start)) :: !toks
    | '{' ->
        (* '{' opens either a set type ({rwx}) or the interface body; it is
           a set type exactly when the text up to the next '}' is a plain
           run of lowercase characters. *)
        let j = ref (!i + 1) in
        while !j < n && src.[!j] <> '}' && src.[!j] >= 'a' && src.[!j] <= 'z' do
          incr j
        done;
        if !j < n && src.[!j] = '}' && !j > !i + 1 then begin
          toks := SET (String.sub src (!i + 1) (!j - !i - 1)) :: !toks;
          i := !j + 1
        end
        else begin
          toks := PUNCT '{' :: !toks;
          incr i
        end
    | ('(' | ')' | ':' | ';' | ',' | '}') as c ->
        toks := PUNCT c :: !toks;
        incr i
    | c -> raise (Idl_error (Printf.sprintf "unexpected character %C" c))
  done;
  List.rev (EOF :: !toks)

type st = { mutable toks : tok list }

let peek st = match st.toks with t :: _ -> t | [] -> EOF
let adv st = match st.toks with _ :: r -> st.toks <- r | [] -> ()

let expect_punct st c =
  match peek st with
  | PUNCT c' when c = c' -> adv st
  | _ -> raise (Idl_error (Printf.sprintf "expected '%c'" c))

let ident st =
  match peek st with
  | ID name ->
      adv st;
      name
  | _ -> raise (Idl_error "expected identifier")

let parse_ty st =
  match peek st with
  | ID "Integer" ->
      adv st;
      Ty.Int
  | ID "String" ->
      adv st;
      Ty.Str
  | SET alphabet ->
      adv st;
      Ty.Set (Value.normalise_set alphabet)
  | ID name ->
      adv st;
      Ty.Obj name
  | _ -> raise (Idl_error "expected type")

let parse_params st =
  expect_punct st '(';
  match peek st with
  | PUNCT ')' ->
      adv st;
      []
  | _ ->
      let rec go acc =
        let name = ident st in
        expect_punct st ':';
        let ty = parse_ty st in
        match peek st with
        | PUNCT ',' ->
            adv st;
            go ((name, ty) :: acc)
        | PUNCT ')' ->
            adv st;
            List.rev ((name, ty) :: acc)
        | _ -> raise (Idl_error "expected ',' or ')'")
      in
      go []

let parse src =
  try
    let st = { toks = lex src } in
    (match peek st with
    | ID "interface" -> adv st
    | _ -> raise (Idl_error "expected 'interface'"));
    let if_name = ident st in
    expect_punct st '{';
    let operations = ref [] and events = ref [] in
    let rec items () =
      match peek st with
      | EOF | PUNCT '}' -> ()
      | ID "event" ->
          adv st;
          let ev_name = ident st in
          let ev_params = parse_params st in
          expect_punct st ';';
          events := { ev_name; ev_params } :: !events;
          items ()
      | ID _ ->
          let op_name = ident st in
          let op_params = parse_params st in
          expect_punct st ':';
          let op_returns = parse_ty st in
          expect_punct st ';';
          operations := { op_name; op_params; op_returns } :: !operations;
          items ()
      | _ -> raise (Idl_error "expected operation or event declaration")
    in
    items ();
    Ok { if_name; if_operations = List.rev !operations; if_events = List.rev !events }
  with Idl_error msg -> Error msg

let find_event iface name = List.find_opt (fun e -> String.equal e.ev_name name) iface.if_events

let construct iface name args ~source ?stamp () =
  match find_event iface name with
  | None -> Error (Printf.sprintf "interface %s declares no event %s" iface.if_name name)
  | Some decl ->
      if List.length args <> List.length decl.ev_params then
        Error
          (Printf.sprintf "event %s expects %d parameter(s), got %d" name
             (List.length decl.ev_params) (List.length args))
      else
        let rec check = function
          | [] -> Ok (Event.make ~name ~source ?stamp args)
          | ((pname, ty), v) :: rest ->
              if Ty.compatible_value ty v then check rest
              else
                Error
                  (Printf.sprintf "event %s parameter %s: %s does not inhabit %s" name pname
                     (Value.to_string v) (Ty.to_string ty))
        in
        check (List.combine decl.ev_params args)

let destruct iface (e : Event.t) =
  match find_event iface e.Event.name with
  | None -> Error (Printf.sprintf "interface %s declares no event %s" iface.if_name e.Event.name)
  | Some decl ->
      if Array.length e.Event.params <> List.length decl.ev_params then
        Error (Printf.sprintf "event %s has the wrong arity" e.Event.name)
      else
        Ok (List.mapi (fun i (pname, _) -> (pname, e.Event.params.(i))) decl.ev_params)

let template_of iface name constraints =
  match find_event iface name with
  | None -> Error (Printf.sprintf "interface %s declares no event %s" iface.if_name name)
  | Some decl -> (
      match
        List.find_opt (fun (c, _) -> not (List.mem_assoc c decl.ev_params)) constraints
      with
      | Some (bad, _) -> Error (Printf.sprintf "event %s has no parameter %s" name bad)
      | None ->
          let pats =
            List.map
              (fun (pname, _) ->
                match List.assoc_opt pname constraints with
                | Some pat -> pat
                | None -> Event.Any)
              decl.ev_params
          in
          Ok (Event.template name pats))

let pp ppf iface =
  Format.fprintf ppf "interface %s {@\n" iface.if_name;
  List.iter
    (fun op ->
      Format.fprintf ppf "  %s(%s) : %s;@\n" op.op_name
        (String.concat ", "
           (List.map (fun (n, t) -> n ^ ": " ^ Ty.to_string t) op.op_params))
        (Ty.to_string op.op_returns))
    iface.if_operations;
  List.iter
    (fun ev ->
      Format.fprintf ppf "  event %s(%s);@\n" ev.ev_name
        (String.concat ", "
           (List.map (fun (n, t) -> n ^ ": " ^ Ty.to_string t) ev.ev_params)))
    iface.if_events;
  Format.fprintf ppf "}"
