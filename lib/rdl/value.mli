(** RDL runtime values.

    Certificate arguments are strongly typed and marshalled into a
    host-independent form so that other services can examine them (§4.3).
    Object identifiers may only be compared for equality, in marshalled form;
    sets marshal to a form permitting equality and subset tests. *)

type t =
  | Int of int
  | Str of string
  | Set of string
      (** Sorted string of distinct element characters, e.g. ["aer"] for the
          rights set [{aer}]. *)
  | Obj of string * string
      (** [(type_name, marshalled_identifier)].  Equality-only semantics. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val set_of_chars : string -> t
(** Normalise (sort, dedup) an arbitrary character string into a [Set]. *)

val normalise_set : string -> string
(** The normalised (sorted, deduplicated) element string itself — what
    [set_of_chars] wraps.  Lets alphabet consumers ({!Ty.Set}) share the
    normalisation without matching on the [Set] constructor. *)

val set_subset : t -> t -> bool
(** [set_subset a b] when both are sets and every element of [a] is in [b].
    Raises [Invalid_argument] on non-set values. *)

val set_union : t -> t -> t
val set_inter : t -> t -> t
val set_diff : t -> t -> t
val set_mem : char -> t -> bool

val marshal : t -> string
(** Stable, host-independent encoding: a tag character then the payload. *)

val unmarshal : string -> t option

val pp : Format.formatter -> t -> unit
val to_string : t -> string
