module J = Oasis_util.Json
module Net = Oasis_sim.Net
module Value = Oasis_rdl.Value

let shard_port = "oasis.shard"
let router_port = "oasis.router"

(* ------------------------------------------------------------------ *)
(* Wire encoding                                                       *)
(* ------------------------------------------------------------------ *)

let get_str key j =
  match J.member key j with Some v -> J.to_str v | None -> None

let get_int key j =
  match J.member key j with Some v -> J.to_int v | None -> None

let get_strs key j =
  match J.member key j with
  | Some (J.Arr l) ->
      List.fold_right
        (fun v acc ->
          match (J.to_str v, acc) with Some s, Some l -> Some (s :: l) | _ -> None)
        l (Some [])
  | Some J.Null | None -> Some []
  | Some _ -> None

(* Certificate arguments cross the wire as JSON scalars: strings and ints
   cover every rolefile the remote surface serves; richer values
   ([Set]/[Obj]) fall back to their stable marshalled form. *)
let value_to_json = function
  | Value.Str s -> J.Str s
  | Value.Int n -> J.Int n
  | v -> J.Obj [ ("marshalled", J.Str (Value.marshal v)) ]

let value_of_json = function
  | J.Str s -> Some (Value.Str s)
  | J.Int n -> Some (Value.Int n)
  | J.Obj [ ("marshalled", J.Str m) ] -> Value.unmarshal m
  | _ -> None

let get_args j =
  match J.member "args" j with
  | Some (J.Arr l) ->
      List.fold_right
        (fun v acc ->
          match (value_of_json v, acc) with
          | Some x, Some l -> Some (x :: l)
          | _ -> None)
        l (Some [])
  | Some J.Null | None -> Some []
  | Some _ -> None

let ok_doc fields = Ok (J.to_string (J.sorted (J.Obj fields)))

(* Certificate handles: certificates never cross the wire (a [vci] is
   meaningless outside its host, §2.8, and [Credrec.cref]s are
   table-relative) — the issuing shard keeps the certificate and hands the
   client an opaque handle ["<shard>:<idx>"].  The shard prefix is what
   lets the router route handle-bearing operations to the one table where
   the handle means anything. *)

let handle_to_string ~shard ~idx = Printf.sprintf "%d:%d" shard idx

let handle_of_string s =
  match String.index_opt s ':' with
  | None -> None
  | Some i -> (
      match
        ( int_of_string_opt (String.sub s 0 i),
          int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) )
      with
      | Some shard, Some idx when shard >= 0 && idx >= 0 -> Some (shard, idx)
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Shard server                                                        *)
(* ------------------------------------------------------------------ *)

type shard_server = {
  ss_service : Service.t;
  ss_id : int;
  ss_certs : (int, Cert.rmc) Hashtbl.t;
  mutable ss_next : int;
  ss_vcis : (string, Principal.vci) Hashtbl.t;
  ss_phost : Principal.Host.t;
  ss_pdom : Principal.Host.domain;
}

let vci_for ss client =
  match Hashtbl.find_opt ss.ss_vcis client with
  | Some v -> v
  | None ->
      let v = Principal.Host.new_vci ss.ss_phost ss.ss_pdom in
      Hashtbl.add ss.ss_vcis client v;
      v

let remember ss cert =
  let idx = ss.ss_next in
  ss.ss_next <- idx + 1;
  Hashtbl.add ss.ss_certs idx cert;
  handle_to_string ~shard:ss.ss_id ~idx

let resolve ss handle =
  match handle_of_string handle with
  | Some (shard, idx) when shard = ss.ss_id -> Hashtbl.find_opt ss.ss_certs idx
  | _ -> None

let resolve_all ss handles =
  List.fold_right
    (fun h acc ->
      match (resolve ss h, acc) with
      | Some c, Some l -> Some (c :: l)
      | _ -> None)
    handles (Some [])

let shard_handle ss j reply =
  let svc = ss.ss_service in
  let self = Service.host svc in
  match get_str "op" j with
  | Some "ping" ->
      reply
        (ok_doc
           [ ("pong", J.Str (Service.name svc)); ("shard", J.Int ss.ss_id) ])
  | Some "bootstrap" -> (
      match (get_str "client" j, get_strs "roles" j, get_args j) with
      | Some client, Some roles, Some args when roles <> [] ->
          let cert =
            Service.issue_arbitrary svc ~client:(vci_for ss client) ~roles ~args
          in
          reply (ok_doc [ ("handle", J.Str (remember ss cert)) ])
      | _ -> reply (Error "bootstrap: need client, roles, args"))
  | Some "issue" -> (
      match (get_str "client" j, get_str "role" j, get_args j, get_strs "creds" j) with
      | Some client, Some role, Some args, Some creds -> (
          match resolve_all ss creds with
          | None -> reply (Error "issue: unknown credential handle")
          | Some creds ->
              Service.request_entry svc ~client_host:self ~client:(vci_for ss client)
                ~role ~args ~creds (function
                | Error e -> reply (Error e)
                | Ok cert -> reply (ok_doc [ ("handle", J.Str (remember ss cert)) ])))
      | _ -> reply (Error "issue: need client, role, args, creds"))
  | Some "validate" -> (
      match (get_str "client" j, get_str "handle" j) with
      | Some client, Some handle -> (
          match resolve ss handle with
          | None -> reply (Error "validate: unknown handle")
          | Some cert -> (
              let need_role = get_str "need_role" j in
              match Service.validate svc ~client:(vci_for ss client) ?need_role cert with
              | Ok () -> reply (ok_doc [ ("valid", J.Bool true) ])
              | Error f -> reply (Error (Format.asprintf "%a" Service.pp_failure f))))
      | _ -> reply (Error "validate: need client, handle"))
  | Some "fire" -> (
      match (get_str "revoker" j, get_str "role" j, get_args j) with
      | Some revoker, Some role, Some args -> (
          match resolve ss revoker with
          | None -> reply (Error "fire: unknown revoker handle")
          | Some cert ->
              Service.revoke_role_instance svc ~client_host:self ~revoker:cert ~role
                ~args (function
                | Error e -> reply (Error e)
                | Ok n -> reply (ok_doc [ ("revoked", J.Int n) ])))
      | _ -> reply (Error "fire: need revoker, role, args"))
  | Some "rehire" -> (
      match (get_str "revoker" j, get_str "role" j, get_args j) with
      | Some revoker, Some role, Some args -> (
          match resolve ss revoker with
          | None -> reply (Error "rehire: unknown revoker handle")
          | Some cert ->
              Service.reinstate_role_instance svc ~client_host:self ~revoker:cert
                ~role ~args (function
                | Error e -> reply (Error e)
                | Ok () -> reply (ok_doc [ ("reinstated", J.Bool true) ])))
      | _ -> reply (Error "rehire: need revoker, role, args"))
  | Some "exit" -> (
      match get_str "handle" j with
      | Some handle -> (
          match resolve ss handle with
          | None -> reply (Error "exit: unknown handle")
          | Some cert ->
              Service.exit_role svc ~client_host:self cert (function
                | Error e -> reply (Error e)
                | Ok () -> reply (ok_doc [ ("exited", J.Bool true) ])))
      | _ -> reply (Error "exit: need handle"))
  | Some op -> reply (Error ("unknown op: " ^ op))
  | None -> reply (Error "missing op")

let serve_shard net service ~shard_id =
  let phost = Principal.Host.create ("clients@" ^ Service.name service) in
  let ss =
    {
      ss_service = service;
      ss_id = shard_id;
      ss_certs = Hashtbl.create 64;
      ss_next = 0;
      ss_vcis = Hashtbl.create 16;
      ss_phost = phost;
      ss_pdom = Principal.Host.boot_domain phost;
    }
  in
  Net.bind net (Service.host service) ~port:shard_port (fun req reply ->
      match J.parse req with
      | Error e -> reply (Error ("bad request: " ^ e))
      | Ok j -> shard_handle ss j reply);
  ss

let shard_server_certs ss = Hashtbl.length ss.ss_certs

(* ------------------------------------------------------------------ *)
(* Router                                                              *)
(* ------------------------------------------------------------------ *)

type router = {
  r_net : Net.t;
  r_host : Net.host;
  r_ring : Shard.Ring.t;
  r_shards : string array;  (* wire name of shard [i]'s host *)
}

let router_owner r ~role ~args = Shard.Ring.owner r.r_ring (Shard.route_key ~role ~args)

let forward r ~shard req reply =
  if shard < 0 || shard >= Array.length r.r_shards then
    reply (Error (Printf.sprintf "no such shard: %d" shard))
  else
    Net.call_retry r.r_net ~category:"oasis.router.forward" ~src:r.r_host
      ~dst:r.r_shards.(shard) ~port:shard_port req reply

let handle_shard_of j key =
  match get_str key j with
  | None -> None
  | Some h -> ( match handle_of_string h with Some (s, _) -> Some s | None -> None)

let router_handle r req j reply =
  match get_str "op" j with
  | Some "ping" ->
      reply
        (ok_doc
           [ ("pong", J.Str "router"); ("shards", J.Int (Array.length r.r_shards)) ])
  | Some "place" -> (
      match (get_str "role" j, get_args j) with
      | Some role, Some args ->
          reply (ok_doc [ ("shard", J.Int (router_owner r ~role ~args)) ])
      | _ -> reply (Error "place: need role, args"))
  | Some "bootstrap" -> (
      (* §4.12 issue outside policy: placement is advisory, so an explicit
         [shard] wins over the ring — how clients colocate prerequisite
         certificates with the instance they will be used on. *)
      match (get_strs "roles" j, get_args j) with
      | Some (role :: _), Some args ->
          let owner =
            match get_int "shard" j with
            | Some s -> s
            | None -> router_owner r ~role ~args
          in
          forward r ~shard:owner req reply
      | _ -> reply (Error "bootstrap: need roles, args"))
  | Some "issue" -> (
      match (get_str "role" j, get_args j) with
      | Some role, Some args ->
          let owner = router_owner r ~role ~args in
          let creds = Option.value ~default:[] (get_strs "creds" j) in
          let colocated h =
            match handle_of_string h with Some (s, _) -> s = owner | None -> false
          in
          if List.for_all colocated creds then forward r ~shard:owner req reply
          else
            reply
              (Error
                 (Printf.sprintf
                    "credential not colocated with %s's shard %d (handles are \
                     table-relative; bootstrap prerequisites at the owning shard)"
                    role owner))
      | _ -> reply (Error "issue: need role, args"))
  | Some ("validate" | "exit") -> (
      let key = if get_str "handle" j <> None then "handle" else "revoker" in
      match handle_shard_of j key with
      | Some shard -> forward r ~shard req reply
      | None -> reply (Error "need a valid handle"))
  | Some ("fire" | "rehire") -> (
      match (get_str "role" j, get_args j, handle_shard_of j "revoker") with
      | Some role, Some args, Some revoker_shard ->
          let owner = router_owner r ~role ~args in
          if revoker_shard = owner then forward r ~shard:owner req reply
          else
            reply
              (Error
                 (Printf.sprintf
                    "revoker certificate lives at shard %d but %s's instance is owned \
                     by shard %d; present a revoker issued at the owning shard"
                    revoker_shard role owner))
      | _ -> reply (Error "need revoker, role, args"))
  | Some op -> reply (Error ("unknown op: " ^ op))
  | None -> reply (Error "missing op")

let serve_router net host ~ring ~shards =
  let r = { r_net = net; r_host = host; r_ring = ring; r_shards = shards } in
  Net.bind net host ~port:router_port (fun req reply ->
      match J.parse req with
      | Error e -> reply (Error ("bad request: " ^ e))
      | Ok j -> router_handle r req j reply);
  r

(* ------------------------------------------------------------------ *)
(* Client stubs                                                        *)
(* ------------------------------------------------------------------ *)

module Client = struct
  type t = { c_net : Net.t; c_host : Net.host; c_router : string }

  let create net host ~router = { c_net = net; c_host = host; c_router = router }

  let request c doc k =
    Net.call_retry c.c_net ~category:"oasis.client" ~src:c.c_host ~dst:c.c_router
      ~port:router_port
      (J.to_string (J.Obj doc))
      (function
        | Error e -> k (Error e)
        | Ok s -> (
            match J.parse s with
            | Ok j -> k (Ok j)
            | Error e -> k (Error ("bad reply: " ^ e))))

  let field name extract k = function
    | Error e -> k (Error e)
    | Ok j -> (
        match extract name j with
        | Some v -> k (Ok v)
        | None -> k (Error ("reply missing " ^ name)))

  let args_json args = J.Arr (List.map value_to_json args)
  let strs l = J.Arr (List.map (fun s -> J.Str s) l)

  let ping c k = request c [ ("op", J.Str "ping") ] (fun r -> k (Result.map ignore r))

  let place c ~role ~args k =
    request c
      [ ("op", J.Str "place"); ("role", J.Str role); ("args", args_json args) ]
      (field "shard" get_int k)

  let bootstrap c ?shard ~client ~roles ~args k =
    request c
      ([
         ("op", J.Str "bootstrap");
         ("client", J.Str client);
         ("roles", strs roles);
         ("args", args_json args);
       ]
      @ match shard with Some s -> [ ("shard", J.Int s) ] | None -> [])
      (field "handle" get_str k)

  let issue c ~client ~role ~args ~creds k =
    request c
      [
        ("op", J.Str "issue");
        ("client", J.Str client);
        ("role", J.Str role);
        ("args", args_json args);
        ("creds", strs creds);
      ]
      (field "handle" get_str k)

  let validate c ~client ~handle ?need_role k =
    request c
      ([ ("op", J.Str "validate"); ("client", J.Str client); ("handle", J.Str handle) ]
      @ match need_role with Some r -> [ ("need_role", J.Str r) ] | None -> [])
      (fun r -> k (Result.map ignore r))

  let fire c ~revoker ~role ~args k =
    request c
      [
        ("op", J.Str "fire");
        ("revoker", J.Str revoker);
        ("role", J.Str role);
        ("args", args_json args);
      ]
      (field "revoked" get_int k)

  let rehire c ~revoker ~role ~args k =
    request c
      [
        ("op", J.Str "rehire");
        ("revoker", J.Str revoker);
        ("role", J.Str role);
        ("args", args_json args);
      ]
      (fun r -> k (Result.map ignore r))

  let exit_role c ~handle k =
    request c
      [ ("op", J.Str "exit"); ("handle", J.Str handle) ]
      (fun r -> k (Result.map ignore r))
end
