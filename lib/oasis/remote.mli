(** The serialized shard/router protocol: the sharded credential plane's
    client-facing operations (role entry, validation, fire/re-hire, exit —
    {!Shard}) expressed over {!Oasis_sim.Net.call}'s named-port surface,
    so the same adapters run in-process on the simulator and across
    processes on a real backend ([oasis_cli serve] / [client]).

    {b What crosses the wire.}  JSON requests and replies only — never
    certificates.  A {!Principal.vci} is meaningless outside its host
    (§2.8) and a {!Credrec.cref} is table-relative, so the issuing shard
    retains every certificate it issues and hands back an opaque {e
    handle} ["<shard>:<idx>"].  The shard prefix is the routing
    information: the router sends handle-bearing operations (validate,
    exit, fire) to the one table where the handle resolves.  A handle
    presented to any other shard fails closed ([unknown handle]), the
    wire analogue of {!Service.validate}'s [Wrong_context].

    {b Colocation.}  Cross-shard sibling validation ({!Service.add_sibling})
    rides the in-process registry, which a multi-process deployment does
    not share; the router therefore refuses [issue] with credentials from
    a shard other than the target instance's owner, and [fire]/[rehire]
    with a revoker not issued at the owning shard, each with an error
    naming the owner — clients discover placement with [place] and
    bootstrap prerequisites at the owning shard.  In-process deployments
    (bench [e22]) share the same discipline so both paths exercise one
    protocol. *)

val shard_port : string
val router_port : string

(** {1 Shard server} *)

type shard_server

val serve_shard : Oasis_sim.Net.t -> Service.t -> shard_id:int -> shard_server
(** Bind the shard protocol on the service's host at {!shard_port}.
    Ops: [ping], [bootstrap] (§4.12 {!Service.issue_arbitrary}), [issue]
    ({!Service.request_entry}), [validate], [fire], [rehire], [exit].
    Client identities are per-name VCIs minted at this shard. *)

val shard_server_certs : shard_server -> int
(** Certificates retained in the handle table. *)

(** {1 Router} *)

type router

val serve_router :
  Oasis_sim.Net.t ->
  Oasis_sim.Net.host ->
  ring:Shard.Ring.t ->
  shards:string array ->
  router
(** Bind the router protocol at {!router_port}.  [shards.(i)] is the wire
    name ({!Oasis_sim.Net.call} destination) of shard [i]'s host; instance
    ownership is [ring] over {!Shard.route_key}, exactly the in-process
    router's placement function. *)

(** {1 Client stubs} *)

module Client : sig
  type t

  val create : Oasis_sim.Net.t -> Oasis_sim.Net.host -> router:string -> t

  val ping : t -> ((unit, string) result -> unit) -> unit

  val place :
    t ->
    role:string ->
    args:Oasis_rdl.Value.t list ->
    ((int, string) result -> unit) ->
    unit
  (** The shard id owning the role instance. *)

  val bootstrap :
    t ->
    ?shard:int ->
    client:string ->
    roles:string list ->
    args:Oasis_rdl.Value.t list ->
    ((string, string) result -> unit) ->
    unit
  (** §4.12 bootstrap issue outside RDL policy; returns a handle.
      [shard] overrides ring placement (issue outside policy is also issue
      outside placement) — how prerequisites are colocated with the
      instance they will authorize. *)

  val issue :
    t ->
    client:string ->
    role:string ->
    args:Oasis_rdl.Value.t list ->
    creds:string list ->
    ((string, string) result -> unit) ->
    unit
  (** Role entry with credential handles; returns the new handle. *)

  val validate :
    t ->
    client:string ->
    handle:string ->
    ?need_role:string ->
    ((unit, string) result -> unit) ->
    unit

  val fire :
    t ->
    revoker:string ->
    role:string ->
    args:Oasis_rdl.Value.t list ->
    ((int, string) result -> unit) ->
    unit
  (** Returns the number of memberships revoked. *)

  val rehire :
    t ->
    revoker:string ->
    role:string ->
    args:Oasis_rdl.Value.t list ->
    ((unit, string) result -> unit) ->
    unit

  val exit_role : t -> handle:string -> ((unit, string) result -> unit) -> unit
end
