module Net = Oasis_sim.Net
module Engine = Oasis_sim.Engine
module Clock = Oasis_sim.Clock

let make net host ?(clock_uncertainty = 0.0) sessions =
  let engine = Net.engine net in
  let relevant tpl =
    match tpl.Event.tsource with
    | Some source ->
        List.filter
          (fun s -> String.equal (Broker.server_name (Broker.session_server s)) source)
          sessions
    | None -> sessions
  in
  {
    Bead.subscribe =
      (fun tpl ~since cb ->
        let regs = List.map (fun s -> Broker.register s ~since tpl cb) (relevant tpl) in
        fun () -> List.iter Broker.deregister regs);
    io_horizon =
      (fun tpls ->
        List.fold_left
          (fun acc tpl ->
            List.fold_left (fun acc s -> min acc (Broker.horizon s)) acc (relevant tpl))
          infinity tpls);
    on_horizon =
      (fun f ->
        let live = ref true in
        List.iter (fun s -> Broker.on_horizon s (fun _ -> if !live then f ())) sessions;
        fun () -> live := false);
    io_now = (fun () -> Clock.read (Net.host_clock host));
    io_after = (fun delay action -> Engine.schedule engine ~delay action);
    clock_uncertainty;
  }
