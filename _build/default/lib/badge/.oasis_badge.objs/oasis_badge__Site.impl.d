lib/badge/site.ml: Hashtbl Oasis_core Oasis_events Oasis_rdl Oasis_sim Option String
