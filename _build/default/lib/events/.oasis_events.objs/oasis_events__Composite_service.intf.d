lib/events/composite_service.mli: Broker Composite Event Oasis_sim
