(** Per-shard primary/backup replication: K durable {!Service} hosts, one
    logical service, zero-cost crashes.

    A replica group runs K full services under ONE service name (so they
    share name-derived signing secrets: certificates issued by any epoch's
    primary verify at every later primary) on K distinct hosts.  The
    primary serves every request; its WAL append stream — in {e global}
    record coordinates, compaction disabled (see {!Service.set_replication})
    — is shipped to backups as checksum-framed batches over the simulated
    network ({!Oasis_store.Wal.frame_with}), journalled by
    {!Service.follower_append}, and acked only once durable at the
    receiver.  Client acks ({!Service.ack_when_durable}) wait for a
    majority write quorum (⌈(K+1)/2⌉): losing any minority of replicas —
    including the primary and its disk — loses no acknowledged operation.

    {b Failover} is deterministic lease/epoch promotion on the sim clock:
    the primary heartbeats every [heartbeat]; a backup whose lease
    ([lease + stagger·index], staggered so candidates do not race) expires
    promotes itself via an epoch compare-and-swap — fetch the durable log
    from every reachable peer, require a majority (which must intersect
    every ack quorum), bump the epoch, adopt the winning log, replay it
    ({!Service.recover}) and re-register under the logical name.  Every
    promotion stamps an {e epoch barrier} record into the stream, and the
    winning log is the greatest (last barrier, length) — VSR's view-change
    rule — so a dead epoch's unacked tail on a rejoining disk can never
    outrank a log carrying later acked records; shipping then repairs such
    tails by content comparison ({!Service.durable_log_rewrite}).  Double
    promotion in one epoch commits exactly once; a candidate that dies
    mid-replay is superseded at the next lease expiry.  A restarted
    ex-primary re-promotes itself through the same path, re-fetching any
    acked suffix its crash lost.

    Members never cancel or re-arm timers: each has one static periodic
    timer whose primary/backup behaviour is decided by data per tick, so
    crash/restart cycles cannot leak timers (the PR 1 heartbeat-leak
    class), which [test_shard.ml] asserts via
    {!Oasis_sim.Engine.pending_tagged}.

    Fault model: fail-stop crashes and restarts.  Partitions {e between
    group members} are out of scope (the harnesses never create them);
    under crashes only, member logs cannot diverge.  [K = 1] is a trivial
    group: no hooks, no timers, byte-identical to an unreplicated
    service. *)

type t

val create :
  Oasis_sim.Net.t ->
  members:Service.t array ->
  ?heartbeat:float ->
  ?lease:float ->
  ?stagger:float ->
  unit ->
  t
(** Wrap [members] (same name, distinct hosts; index 0 is the initial
    primary, and only it should be registry-registered) into a group.  For
    K >= 2 installs the quorum-ack and ship hooks, disables per-member
    auto-recovery, and arms the static heartbeat/lease timers.  Defaults:
    [heartbeat] 0.2 s, [lease] 0.45 s, [stagger] 0.15 s — failover in
    under a second of sim time.  Use odd K: an even K tolerates no more
    crashes than K-1. *)

val primary : t -> Service.t
(** The current epoch's primary — resolve per request, never cache across
    engine events (the router does exactly this). *)

val primary_index : t -> int
val epoch : t -> int

val ready : t -> bool
(** False from a promotion commit until its replay finishes; the router
    drops (does not answer) forwarded requests while false, so the
    client-side retry re-forwards to the settled primary. *)

val replica_count : t -> int
val members : t -> Service.t list
val member : t -> int -> Service.t

val promotions : t -> int
(** Committed promotions so far (the idempotence tests count these). *)

val stream : t -> string list
(** The authoritative record stream, oldest first (epoch barriers
    included).  At quiescence every live member's durable log
    ({!Service.durable_log_records}) is a prefix of it — the log-shipping
    invariant; a freshly rejoined member may briefly hold a dead epoch's
    tail until shipping repairs it. *)

val promote : t -> member:int -> from_epoch:int -> unit
(** Begin promoting [member] against the epoch it observed.  A no-op
    unless the group's epoch still equals [from_epoch] when the fetch
    completes (the CAS), the candidate is up, and a majority of the group
    is reachable.  Exposed for tests; the lease timers and restart hooks
    call it internally. *)

val force_promote : t -> int -> unit
(** [promote] from the current epoch (test convenience). *)

val on_promote : t -> (Service.t -> unit) -> unit
(** Called (in registration order) each time a promotion's replay
    completes, with the new primary — how a scenario rebinds names that
    were resolved to a service value at build time. *)

val fingerprint : t -> int64
(** Replication-plane state hash (epoch, primary, readiness, stream and
    ack cursors); folded into {!Shard.fingerprint} for K >= 2 so the model
    checker distinguishes failover states. *)
