module Value = Oasis_rdl.Value
module Net = Oasis_sim.Net
module Service = Oasis_core.Service
module Cert = Oasis_core.Cert
module Credrec = Oasis_core.Credrec
module Acl = Oasis_core.Acl
module Group = Oasis_core.Group
module Principal = Oasis_core.Principal

type value = Value.t

type file = {
  f_id : int;
  f_kind : Types.kind;
  mutable f_acl : string;
  f_container : string;
  mutable f_segment : int option;
  mutable f_data : string;
  mutable f_children : Types.file_ref list;
}

type aclrec = {
  a_id : string;
  a_fid : int;
  mutable a_entries : Acl.t;
  a_meta : string;
  mutable a_record : Credrec.cref;
}

type container = { mutable co_files : int; mutable co_bytes : int }

type t = {
  c_net : Net.t;
  c_host : Net.host;
  c_service : Service.t;
  c_registry : Service.registry;
  c_backing : (Byte_segment.t * Cert.rmc) option;
  c_files : (int, file) Hashtbl.t;
  c_acls : (string, aclrec) Hashtbl.t;
  c_containers : (string, container) Hashtbl.t;
  mutable c_next_fid : int;
}

let rolefile =
  {|
def UseAcl(a, r) a: String r: {adrwx}
def UseFile(f, r) f: String r: {adrwx}
|}

let name t = Service.name t.c_service
let service t = t.c_service
let host t = t.c_host
let net t = t.c_net

let container t cname =
  match Hashtbl.find_opt t.c_containers cname with
  | Some c -> c
  | None ->
      let c = { co_files = 0; co_bytes = 0 } in
      Hashtbl.replace t.c_containers cname c;
      c

let table t = Service.table t.c_service

let new_file t ~kind ~acl ~container:cname =
  let id = t.c_next_fid in
  t.c_next_fid <- id + 1;
  let f =
    {
      f_id = id;
      f_kind = kind;
      f_acl = acl;
      f_container = cname;
      f_segment = None;
      f_data = "";
      f_children = [];
    }
  in
  Hashtbl.replace t.c_files id f;
  let co = container t cname in
  co.co_files <- co.co_files + 1;
  f

let install_acl t ~id ~entries ~meta =
  match Acl.parse entries with
  | Error e -> Error e
  | Ok parsed ->
      let f = new_file t ~kind:Types.Acl_file ~acl:meta ~container:"system" in
      f.f_data <- entries;
      let record = Credrec.leaf (table t) () in
      Credrec.set_direct_use (table t) record true;
      Hashtbl.replace t.c_acls id
        { a_id = id; a_fid = f.f_id; a_entries = parsed; a_meta = meta; a_record = record };
      Ok ()

let create net host registry ~name ?(admins = []) ?backing () =
  match Service.create net host registry ~name ~rolefile () with
  | Error e -> Error e
  | Ok service ->
      let backing =
        Option.map
          (fun bsc ->
            (* The custode is itself a client of the byte-segment custode
               below (fig 5.1); it authenticates with its own VCI. *)
            let h = Principal.Host.create (Net.host_name host ^ ".os") in
            let vci = Principal.Host.new_vci h (Principal.Host.boot_domain h) in
            (bsc, Byte_segment.attach bsc ~client:vci))
          backing
      in
      let t =
        {
          c_net = net;
          c_host = host;
          c_service = service;
          c_registry = registry;
          c_backing = backing;
          c_files = Hashtbl.create 64;
          c_acls = Hashtbl.create 16;
          c_containers = Hashtbl.create 8;
          c_next_fid = 0;
        }
      in
      (* Bootstrap "system" ACL: protects itself — a logical cycle that the
         placement constraint makes harmless (fig 5.5). *)
      let admin_entries =
        String.concat " " (("+%admins=" ^ Types.full_rights) :: List.map (fun a -> "+" ^ a ^ "=" ^ Types.full_rights) admins)
      in
      (match install_acl t ~id:"system" ~entries:admin_entries ~meta:"system" with
      | Ok () -> ()
      | Error _ -> assert false);
      Ok t

(* --- rights evaluation against a certificate --- *)

let cert_rights cert =
  (* Both UseAcl(a, r) and UseFile(f, r) carry the rights set as the second
     argument. *)
  match cert.Cert.args with
  | [ _; Value.Set r ] -> Some r
  | _ -> None

let cert_scope cert =
  match cert.Cert.args with [ Value.Str s; _ ] -> Some s | _ -> None

(* Validate a certificate for an operation needing [right] on [file]. *)
let check_file_access t ~cert ~file ~right =
  match Hashtbl.find_opt t.c_files file with
  | None -> Error "no such file"
  | Some f -> (
      let role_needed =
        if Cert.has_role ~role_bits:(Service.role_bits t.c_service) cert "UseAcl" then `Acl
        else if Cert.has_role ~role_bits:(Service.role_bits t.c_service) cert "UseFile" then `File
        else `None
      in
      match role_needed with
      | `None -> Error "certificate embodies no storage role"
      | (`Acl | `File) as which -> (
          match Service.validate t.c_service ~client:cert.Cert.holder cert with
          | Error failure -> Error (Format.asprintf "%a" Service.pp_failure failure)
          | Ok () -> (
              match (cert_scope cert, cert_rights cert) with
              | Some scope, Some rights ->
                  let scope_ok =
                    match which with
                    | `Acl -> String.equal scope f.f_acl
                    | `File -> String.equal scope (string_of_int file)
                  in
                  if not scope_ok then Error "certificate does not cover this file"
                  else if not (String.contains rights right) then
                    Error (Printf.sprintf "right %c not granted" right)
                  else Ok f
              | _ -> Error "malformed certificate arguments")))

let check_acl_admin t ~cert ~acl_id ~right =
  (* Rights over an ACL are governed by its meta ACL (§5.3.2). *)
  match Hashtbl.find_opt t.c_acls acl_id with
  | None -> Error "no such ACL"
  | Some a -> (
      match check_file_access t ~cert ~file:a.a_fid ~right with
      | Ok _ -> Ok a
      | Error e -> Error e)

(* --- ACL management --- *)

let create_acl t ~cert ~id ~entries ~meta =
  if Hashtbl.mem t.c_acls id then Error ("ACL " ^ id ^ " already exists")
  else
    (* Placement constraint (§5.4.2): the protecting ACL must be local. *)
    match Hashtbl.find_opt t.c_acls meta with
    | None -> Error ("meta ACL " ^ meta ^ " does not reside in this custode")
    | Some _ -> (
        match check_acl_admin t ~cert ~acl_id:meta ~right:'a' with
        | Error e -> Error e
        | Ok _ -> install_acl t ~id ~entries ~meta)

let modify_acl t ~cert ~id ~entries =
  match Hashtbl.find_opt t.c_acls id with
  | None -> Error ("no such ACL " ^ id)
  | Some a -> (
      match check_acl_admin t ~cert ~acl_id:a.a_meta ~right:'a' with
      | Error e -> Error e
      | Ok _ -> (
          match Acl.parse entries with
          | Error e -> Error e
          | Ok parsed ->
              a.a_entries <- parsed;
              (Hashtbl.find t.c_files a.a_fid).f_data <- entries;
              (* Volatile ACLs (§5.5.2): retire the record representing
                 certificates issued from the old contents. *)
              Credrec.invalidate (table t) a.a_record;
              let fresh = Credrec.leaf (table t) () in
              Credrec.set_direct_use (table t) fresh true;
              a.a_record <- fresh;
              Ok ()))

let read_acl t ~cert ~id =
  match Hashtbl.find_opt t.c_acls id with
  | None -> Error ("no such ACL " ^ id)
  | Some a -> (
      match check_acl_admin t ~cert ~acl_id:a.a_meta ~right:'r' with
      | Error e -> Error e
      | Ok _ -> Ok (Acl.to_string a.a_entries))

let acl_record t id = Option.map (fun a -> a.a_record) (Hashtbl.find_opt t.c_acls id)
let acl_count t = Hashtbl.length t.c_acls

(* --- access requests --- *)

let request_access t ~client_host ~client ~login ~acl k =
  Net.send t.c_net ~category:"mssa.access" ~size:160 ~src:client_host ~dst:t.c_host (fun () ->
      let reply r =
        Net.send t.c_net ~category:"mssa.access.reply" ~size:160 ~src:t.c_host ~dst:client_host
          (fun () -> k r)
      in
      match Hashtbl.find_opt t.c_acls acl with
      | None -> reply (Error ("no such ACL " ^ acl))
      | Some a -> (
          (* Validate the login certificate with its issuer, mirroring its
             credential record locally (§4.9). *)
          match Service.find_service t.c_registry login.Cert.service with
          | None -> reply (Error ("unknown login service " ^ login.Cert.service))
          | Some issuer ->
              Net.rpc t.c_net ~category:"mssa.validate" ~src:t.c_host ~dst:(Service.host issuer)
                (fun () ->
                  match Service.validate_for_peer issuer login with
                  | Ok r -> Ok r
                  | Error f -> Error (Format.asprintf "%a" Service.pp_failure f))
                (function
                  | Error e -> reply (Error ("login certificate: " ^ e))
                  | Ok (_roles, args, remote_ref) -> (
                      match args with
                      | Value.Str user :: _ ->
                          let login_record =
                            Service.import_remote_record t.c_service
                              ~peer:login.Cert.service ~remote:remote_ref
                          in
                          (* Track which group memberships the grant used so
                             that only those become membership rules. *)
                          let used_groups = ref [] in
                          let in_group g =
                            let member = Group.mem (Service.group t.c_service g) (Value.Str user) in
                            if member && not (List.mem g !used_groups) then
                              used_groups := g :: !used_groups;
                            member
                          in
                          let rights =
                            Acl.rights a.a_entries ~user ~in_group ~full:Types.full_rights
                          in
                          if String.length rights = 0 then
                            reply (Error ("no rights for " ^ user ^ " on ACL " ^ acl))
                          else begin
                            let group_parents =
                              List.map
                                (fun g ->
                                  (Group.credential (Service.group t.c_service g) (Value.Str user), false))
                                !used_groups
                            in
                            let crr =
                              Credrec.combine_fresh (table t)
                                ((login_record, false) :: (a.a_record, false) :: group_parents)
                            in
                            let cert =
                              Service.issue_with_record t.c_service ~client
                                ~roles:[ "UseAcl" ]
                                ~args:[ Value.Str acl; Value.Set rights ]
                                ~crr
                            in
                            reply (Ok cert)
                          end
                      | _ -> reply (Error "login certificate carries no user identity")))))

let delegate_file_access t ~client_host ~holder ~file ~rights ~candidate ?expires_in () k =
  Net.send t.c_net ~category:"mssa.delegate" ~size:160 ~src:client_host ~dst:t.c_host (fun () ->
      let reply r =
        Net.send t.c_net ~category:"mssa.delegate.reply" ~size:200 ~src:t.c_host ~dst:client_host
          (fun () -> k r)
      in
      (* The delegator needs the rights being delegated on the file. *)
      let rec check_rights = function
        | [] -> Ok ()
        | c :: rest -> (
            match check_file_access t ~cert:holder ~file ~right:c with
            | Ok _ -> check_rights rest
            | Error e -> Error e)
      in
      match check_rights (List.init (String.length rights) (String.get rights)) with
      | Error e -> reply (Error e)
      | Ok () ->
          let d_crr, rcert =
            Service.mint_delegation_record t.c_service ~delegator_crr:holder.Cert.crr
              ?expires_in ()
          in
          (* The delegated certificate depends on the delegation record and
             the file's ACL record — not on the delegator's own certificate
             (§5.5.2: the elector need no longer be present). *)
          let acl_parent =
            match Hashtbl.find_opt t.c_files file with
            | Some f -> (
                match Hashtbl.find_opt t.c_acls f.f_acl with
                | Some a -> [ (a.a_record, false) ]
                | None -> [])
            | None -> []
          in
          let crr = Credrec.combine_fresh (table t) ((d_crr, false) :: acl_parent) in
          let cert =
            Service.issue_with_record t.c_service ~client:candidate ~roles:[ "UseFile" ]
              ~args:[ Value.Str (string_of_int file); Value.set_of_chars rights ]
              ~crr
          in
          reply (Ok (cert, rcert)))

(* --- file operations --- *)

let create_file t ~cert ~acl ?(container = "default") ?(kind = Types.Flat) () =
  match Hashtbl.find_opt t.c_acls acl with
  | None -> Error ("no such ACL " ^ acl)
  | Some a ->
      (* Creating under an ACL requires 'w' on that ACL's file group: check
         against the ACL itself via a probe on rights. *)
      (match (cert_scope cert, cert_rights cert) with
      | Some scope, Some rights
        when String.equal scope acl && String.contains rights 'w' -> (
          match Service.validate t.c_service ~client:cert.Cert.holder ~need_role:"UseAcl" cert with
          | Error f -> Error (Format.asprintf "%a" Service.pp_failure f)
          | Ok () ->
              let f = new_file t ~kind ~acl:a.a_id ~container in
              Ok f.f_id)
      | _ -> Error "certificate does not grant write under this ACL")

let with_backing t f ~local ~backed =
  match t.c_backing with None -> local () | Some (bsc, cert) -> backed bsc cert f

let read_file t ~cert ~file =
  match check_file_access t ~cert ~file ~right:'r' with
  | Error e -> Error e
  | Ok f ->
      with_backing t f
        ~local:(fun () -> Ok f.f_data)
        ~backed:(fun bsc bcert f ->
          match f.f_segment with
          | None -> Ok ""
          | Some seg -> Byte_segment.read bsc ~cert:bcert ~seg)

let write_file t ~cert ~file data =
  match check_file_access t ~cert ~file ~right:'w' with
  | Error e -> Error e
  | Ok f ->
      let co = container t f.f_container in
      co.co_bytes <- co.co_bytes + String.length data - String.length f.f_data;
      with_backing t f
        ~local:(fun () ->
          f.f_data <- data;
          Ok ())
        ~backed:(fun bsc bcert f ->
          let seg =
            match f.f_segment with
            | Some s -> Ok s
            | None -> (
                match Byte_segment.create_segment bsc ~cert:bcert with
                | Ok s ->
                    f.f_segment <- Some s;
                    Ok s
                | Error e -> Error e)
          in
          match seg with
          | Error e -> Error e
          | Ok seg ->
              f.f_data <- data;
              Byte_segment.write bsc ~cert:bcert ~seg ~off:0 data)

let delete_file t ~cert ~file =
  match check_file_access t ~cert ~file ~right:'d' with
  | Error e -> Error e
  | Ok f ->
      Hashtbl.remove t.c_files file;
      let co = container t f.f_container in
      co.co_files <- co.co_files - 1;
      co.co_bytes <- co.co_bytes - String.length f.f_data;
      Ok ()

let stat_file t ~cert ~file =
  match check_file_access t ~cert ~file ~right:'r' with
  | Error e -> Error e
  | Ok f -> Ok (f.f_acl, f.f_kind)

let continuous_only f =
  if f.f_kind <> Types.Continuous then Error "not a continuous-medium file" else Ok f

let play_file t ~cert ~file =
  match check_file_access t ~cert ~file ~right:'r' with
  | Error e -> Error e
  | Ok f -> (
      match continuous_only f with
      | Error e -> Error e
      | Ok f ->
          with_backing t f
            ~local:(fun () -> Ok f.f_data)
            ~backed:(fun bsc bcert f ->
              match f.f_segment with
              | None -> Ok ""
              | Some seg -> Byte_segment.read bsc ~cert:bcert ~seg))

let record_file t ~cert ~file data =
  match check_file_access t ~cert ~file ~right:'w' with
  | Error e -> Error e
  | Ok f -> (
      match continuous_only f with
      | Error e -> Error e
      | Ok f ->
          f.f_data <- data;
          Ok ())

let add_child t ~cert ~file child =
  match check_file_access t ~cert ~file ~right:'w' with
  | Error e -> Error e
  | Ok f ->
      if f.f_kind <> Types.Structured then Error "not a structured file"
      else begin
        f.f_children <- f.f_children @ [ child ];
        Ok ()
      end

let children t ~cert ~file =
  match check_file_access t ~cert ~file ~right:'r' with
  | Error e -> Error e
  | Ok f -> Ok f.f_children

let container_usage t cname =
  match Hashtbl.find_opt t.c_containers cname with
  | Some c -> (c.co_files, c.co_bytes)
  | None -> (0, 0)

let file_count t = Hashtbl.length t.c_files
let file_acl t fid = Option.map (fun f -> f.f_acl) (Hashtbl.find_opt t.c_files fid)
