(* Tests for the RDL language: values, types, lexer, parser, pretty printer
   round trips, type inference and constraint evaluation — including every
   rolefile example from chapter 3 of the paper. *)

module Value = Oasis_rdl.Value
module Ty = Oasis_rdl.Ty
module Ast = Oasis_rdl.Ast
module Lexer = Oasis_rdl.Lexer
module Parser = Oasis_rdl.Parser
module Pretty = Oasis_rdl.Pretty
module Infer = Oasis_rdl.Infer
module Eval = Oasis_rdl.Eval

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let parse_ok src =
  match Parser.parse_result src with
  | Ok rf -> rf
  | Error e -> Alcotest.failf "parse failed: %s" e

(* --- values --- *)

let test_value_set_normalisation () =
  checkb "sorted dedup" true (Value.equal (Value.set_of_chars "rrwx") (Value.set_of_chars "xwr"))

let test_value_set_ops () =
  let a = Value.set_of_chars "rw" and b = Value.set_of_chars "wx" in
  checkb "subset yes" true (Value.set_subset (Value.set_of_chars "r") a);
  checkb "subset no" false (Value.set_subset a b);
  checkb "union" true (Value.equal (Value.set_union a b) (Value.set_of_chars "rwx"));
  checkb "inter" true (Value.equal (Value.set_inter a b) (Value.set_of_chars "w"));
  checkb "diff" true (Value.equal (Value.set_diff a b) (Value.set_of_chars "r"));
  checkb "mem" true (Value.set_mem 'r' a);
  checkb "not mem" false (Value.set_mem 'x' a)

let test_value_obj_equality () =
  checkb "same" true (Value.equal (Value.Obj ("doc", "x1")) (Value.Obj ("doc", "x1")));
  checkb "different id" false (Value.equal (Value.Obj ("doc", "x1")) (Value.Obj ("doc", "x2")));
  checkb "different type" false (Value.equal (Value.Obj ("doc", "x1")) (Value.Obj ("file", "x1")))

let value_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun n -> Value.Int n) small_signed_int;
        map (fun s -> Value.Str s) (string_size ~gen:(char_range 'a' 'z') (int_range 0 10));
        map (fun s -> Value.set_of_chars s) (string_size ~gen:(char_range 'a' 'z') (int_range 0 6));
        map2 (fun t i -> Value.Obj (t, i))
          (string_size ~gen:(char_range 'a' 'z') (int_range 1 6))
          (string_size ~gen:(char_range 'a' 'z') (int_range 0 8));
      ])

let value_arb = QCheck.make ~print:Value.to_string value_gen

let prop_value_marshal_roundtrip =
  QCheck.Test.make ~name:"value marshal roundtrip" ~count:500 value_arb (fun v ->
      match Value.unmarshal (Value.marshal v) with
      | Some v' -> Value.equal v v'
      | None -> false)

let prop_value_compare_consistent =
  QCheck.Test.make ~name:"compare consistent with equal" ~count:500
    (QCheck.pair value_arb value_arb)
    (fun (a, b) -> Value.equal a b = (Value.compare a b = 0))

(* --- types --- *)

let test_ty_unify_basic () =
  checkb "int/int" true (Ty.unify Ty.Int Ty.Int = Ok ());
  checkb "int/str fails" true (Result.is_error (Ty.unify Ty.Int Ty.Str));
  checkb "set alphabets equal" true (Ty.unify (Ty.Set "rw") (Ty.Set "rw") = Ok ());
  checkb "set alphabets differ" true (Result.is_error (Ty.unify (Ty.Set "rw") (Ty.Set "rx")))

let test_ty_unify_vars () =
  let v = Ty.fresh () in
  checkb "var binds" true (Ty.unify v Ty.Int = Ok ());
  checkb "bound var ground" true (Ty.is_ground v);
  checkb "transitively int" true (Ty.equal v Ty.Int)

let test_ty_unify_var_chain () =
  let a = Ty.fresh () and b = Ty.fresh () in
  checkb "var/var" true (Ty.unify a b = Ok ());
  checkb "chain binds both" true (Ty.unify a (Ty.Obj "userid") = Ok ());
  checkb "b resolved" true (Ty.equal b (Ty.Obj "userid"))

let test_ty_compatible_value () =
  checkb "set literal within alphabet" true
    (Ty.compatible_value (Ty.Set "aef") (Value.set_of_chars "ae"));
  checkb "set literal outside alphabet" false
    (Ty.compatible_value (Ty.Set "aef") (Value.set_of_chars "az"));
  checkb "obj type" true (Ty.compatible_value (Ty.Obj "doc") (Value.Obj ("doc", "1")));
  checkb "wrong obj type" false (Ty.compatible_value (Ty.Obj "doc") (Value.Obj ("x", "1")))

(* --- lexer --- *)

let test_lexer_tokens () =
  let toks = List.map fst (Lexer.tokenize {|Member(u) <- Login.LoggedOn(u, h)* <|* Chair : (u in staff)*|}) in
  checkb "has elect" true (List.mem Lexer.ELECT toks);
  checkb "has arrow" true (List.mem Lexer.ARROW toks);
  checkb "has star" true (List.mem Lexer.STAR toks);
  checkb "has in" true (List.mem Lexer.KW_IN toks)

let test_lexer_comments () =
  let toks = List.map fst (Lexer.tokenize "# comment line\nFoo <- Bar -- trailing\n") in
  (* Foo, <-, Bar, EOF: both comment styles stripped. *)
  checki "only four tokens" 4 (List.length toks)

let test_lexer_string_escapes () =
  match Lexer.tokenize {|"a\"b"|} with
  | (Lexer.STRING s, _) :: _ -> checks "escape" {|a"b|} s
  | _ -> Alcotest.fail "expected string token"

let test_lexer_errors () =
  checkb "unterminated string" true
    (match Lexer.tokenize "\"abc" with
    | exception Lexer.Lex_error _ -> true
    | _ -> false);
  checkb "stray pipe" true
    (match Lexer.tokenize "a | b" with exception Lexer.Lex_error _ -> true | _ -> false)

(* --- parser: chapter 3 examples --- *)

let conference = {|
Chair <- Login.LoggedOn("jmb", h)
Member(u) <- Login.LoggedOn(u, h)* <|* Chair : (u in staff)*
|}

let high_score = {|
def Write()
Write <- Loader.Running("game")
Read <- Login.LoggedOn(u, h)
|}

let open_meeting = {|
Chair <- Login.LoggedOn("jmb", h)
Member <- Login.LoggedOn(u, h) : u in staff
Member <- <|* Member
Candidate(u) <- Login.LoggedOn(u, h) : u in staff
Member2(u) <- Candidate(u) |>* Chair
|}

let login_service = {|
def Login(l, u) l: Integer
Login(3, u) <- Pw.Passwd(u, "Login") : h in secure
Login(2, u) <- Pw.Passwd(u, "Login") : h in hosts
Login(1, u) <- Pw.Passwd(u, "Login")
Login(0, u) <-
|}

let shared_authorship = {|
Author <- Login.LoggedOn(u) : u = creator("DOC")
Editor <- Login.LoggedOn("MrEd")
def Rights(r) r: {aef}
Rights({ae}) <- Author
Rights({af}) <- Editor
Rights({a}) <- Author
Rights({a}) <- Editor
|}

let golf_club = {|
def Candidate(p) p: String
def Member(p) p: String
Candidate(p) <- <| Member(q) : p <> q
Member(p) <- Candidate(p)* /\ Candidate(p)* <| Member(q) : p <> q
|}

let test_parse_conference () =
  let rf = parse_ok conference in
  checki "two entries" 2 (List.length (Ast.entries rf));
  let member = List.nth (Ast.entries rf) 1 in
  checkb "elector present" true (member.Ast.elector <> None);
  checkb "elect starred" true member.Ast.elect_starred;
  (match member.Ast.creds with
  | [ c ] ->
      checkb "starred cred" true c.Ast.starred;
      checkb "external service" true (c.Ast.sref.Ast.service = Some "Login")
  | _ -> Alcotest.fail "expected one credential");
  match member.Ast.constr with
  | Some (Ast.Cstar (Ast.Cin (Ast.Evar "u", "staff"))) -> ()
  | _ -> Alcotest.fail "expected starred group constraint"

let test_parse_high_score () = ignore (parse_ok high_score)

let test_parse_open_meeting () =
  let rf = parse_ok open_meeting in
  let entries = Ast.entries rf in
  checki "five entries" 5 (List.length entries);
  let rbr = List.nth entries 4 in
  checkb "revoker parsed" true (rbr.Ast.revoker <> None);
  match rbr.Ast.revoker with
  | Some r -> checks "revoker role" "Chair" r.Ast.role
  | None -> ()

let test_parse_login_levels () =
  let rf = parse_ok login_service in
  let entries = Ast.entries rf in
  checki "four rules" 4 (List.length entries);
  let visitor = List.nth entries 3 in
  checkb "empty credentials allowed" true (visitor.Ast.creds = []);
  match (List.nth entries 0).Ast.head with
  | _, [ Ast.Alit (Value.Int 3); Ast.Avar "u" ] -> ()
  | _ -> Alcotest.fail "literal head argument expected"

let test_parse_shared_authorship () =
  let rf = parse_ok shared_authorship in
  let entries = Ast.entries rf in
  checki "entries" 6 (List.length entries);
  (* Set literal argument checked against declared alphabet. *)
  match (List.nth entries 2).Ast.head with
  | "Rights", [ Ast.Alit (Value.Set "ae") ] -> ()
  | _ -> Alcotest.fail "set literal head expected"

let test_parse_golf_club () =
  let rf = parse_ok golf_club in
  let entries = Ast.entries rf in
  let member = List.nth entries 1 in
  checki "quorum needs two candidate creds" 2 (List.length member.Ast.creds);
  checkb "both starred" true (List.for_all (fun c -> c.Ast.starred) member.Ast.creds)

let test_parse_imports_and_rolefile_refs () =
  let rf = parse_ok {|
import Login.userid
def Member(u) u: userid
Member(u) <- Svc[rf42].Role(u)
|} in
  checkb "import recorded" true (Ast.imports rf = [ ("Login", "userid") ]);
  match Ast.entries rf with
  | [ { Ast.creds = [ c ]; _ } ] ->
      checkb "service and rolefile" true
        (c.Ast.sref = { Ast.service = Some "Svc"; rolefile = Some "rf42" })
  | _ -> Alcotest.fail "single entry expected"

let test_parse_object_literal () =
  let rf = parse_ok {|Author <- Login.LoggedOn(u) : u <- creator(@fileid"DOC")|} in
  match Ast.entries rf with
  | [ { Ast.constr = Some (Ast.Cbind ("u", Ast.Ecall ("creator", [ Ast.Elit (Value.Obj ("fileid", "DOC")) ]))); _ } ] -> ()
  | _ -> Alcotest.fail "object literal in call expected"

let test_parse_resolve_literal_table () =
  let resolve = function "DOC" -> Some (Value.Obj ("fileid", "doc-17")) | _ -> None in
  let rf =
    match Parser.parse_result ~resolve_literal:resolve {|Author <- L.On(u) : u = creator(DOC)|} with
    | Ok rf -> rf
    | Error e -> Alcotest.failf "parse: %s" e
  in
  match Ast.entries rf with
  | [ { Ast.constr = Some (Ast.Crel (Ast.Eq, _, Ast.Ecall ("creator", [ Ast.Elit (Value.Obj ("fileid", "doc-17")) ]))); _ } ] -> ()
  | _ -> Alcotest.fail "resolved literal expected"

let test_parse_acl_expression () =
  let rf = parse_ok {|UseFile(r) <- LoggedOn(u) /\ Helper(u) : r = unixacl("rjh21=rwx staff=rx other=r", u)
Helper(u) <- |} in
  checki "entries" 2 (List.length (Ast.entries rf))

let test_parse_errors () =
  let bad = [ "Foo <- : "; "def 42()"; "Foo(x <- Bar"; "import Login"; "Foo <- Bar : x" ] in
  List.iter
    (fun src ->
      match Parser.parse_result src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse error for %S" src)
    bad

let test_parse_constraint_precedence () =
  let rf = parse_ok {|R <- A : x = 1 and y = 2 or z = 3
A <- |} in
  match Ast.entries rf with
  | { Ast.constr = Some (Ast.Cor (Ast.Cand (_, _), _)); _ } :: _ -> ()
  | _ -> Alcotest.fail "and binds tighter than or"

let test_parse_not_and_subset () =
  let rf = parse_ok {|R <- A : not (u in staff) and r subset {rwx}
A <- |} in
  match Ast.entries rf with
  | { Ast.constr = Some (Ast.Cand (Ast.Cnot (Ast.Cin _), Ast.Csubset _)); _ } :: _ -> ()
  | _ -> Alcotest.fail "not/subset structure"

(* --- pretty round trip --- *)

let roundtrip_sources =
  [ conference; open_meeting; login_service; shared_authorship; golf_club; high_score ]

let test_pretty_roundtrip () =
  List.iter
    (fun src ->
      let rf = parse_ok src in
      let printed = Pretty.to_string rf in
      let rf2 = parse_ok printed in
      (* Line annotations are positional, not syntax: strip before comparing. *)
      if Ast.strip_lines rf <> Ast.strip_lines rf2 then
        Alcotest.failf "round trip failed for:\n%s\nprinted as:\n%s" src printed)
    roundtrip_sources

let test_pretty_stable () =
  (* pp ∘ parse ∘ pp = pp *)
  List.iter
    (fun src ->
      let p1 = Pretty.to_string (parse_ok src) in
      let p2 = Pretty.to_string (parse_ok p1) in
      checks "fixpoint" p1 p2)
    roundtrip_sources

(* --- inference --- *)

let infer_ok ?callbacks src =
  match Infer.infer ?callbacks (parse_ok src) with
  | Ok r -> r
  | Error e -> Alcotest.failf "infer failed: %s" e

let test_infer_simple () =
  let r = infer_ok {|
def LoggedOn(u, h) u: String h: String
LoggedOn(u, h) <-
Chair <- LoggedOn("jmb", h)
Member(u) <- LoggedOn(u, h)
|} in
  (match Infer.signature r "Member" with
  | Some [ ty ] -> checkb "Member(u): String inferred" true (Ty.equal ty Ty.Str)
  | _ -> Alcotest.fail "Member signature");
  checki "nothing unresolved" 0 (List.length r.Infer.unresolved)

let test_infer_through_literals () =
  let r = infer_ok {|
Login(3, u) <- Passwd(u)
Passwd(u) <-
|} in
  match Infer.signature r "Login" with
  | Some [ t1; _t2 ] -> checkb "first param Integer" true (Ty.equal t1 Ty.Int)
  | _ -> Alcotest.fail "Login signature"

let test_infer_set_literals_against_def () =
  let r = infer_ok shared_authorship in
  match Infer.signature r "Rights" with
  | Some [ ty ] -> checkb "declared set type kept" true (Ty.equal ty (Ty.Set "aef"))
  | _ -> Alcotest.fail "Rights signature"

let test_infer_type_conflict () =
  match Infer.infer (parse_ok {|
def Foo(x) x: Integer
Foo("hello") <- Bar
Bar <-
|}) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected type conflict"

let test_infer_arity_conflict () =
  match Infer.infer (parse_ok {|
Foo(a) <- Bar
Foo(a, b) <- Bar
Bar <-
|}) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected arity error"

let test_infer_undefined_local_role () =
  match Infer.infer (parse_ok {|Foo <- Mystery|}) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected undefined-role error"

let test_infer_unresolved_reported () =
  let r = infer_ok {|Foo(x) <- Ext.Thing(x)|} in
  checkb "x unresolved" true (List.mem ("Foo", 0) r.Infer.unresolved)

let test_infer_external_callback () =
  let callbacks =
    {
      Infer.no_callbacks with
      Infer.external_sig =
        (fun ~service ~role ->
          if service = "Login" && role = "LoggedOn" then Some [ Ty.Str; Ty.Str ] else None);
    }
  in
  let r = infer_ok ~callbacks {|Member(u) <- Login.LoggedOn(u, h)|} in
  match Infer.signature r "Member" with
  | Some [ ty ] -> checkb "propagated from external" true (Ty.equal ty Ty.Str)
  | _ -> Alcotest.fail "Member signature"

let test_infer_group_callback () =
  let callbacks =
    { Infer.no_callbacks with Infer.group_element = (fun g -> if g = "staff" then Some Ty.Str else None) }
  in
  let r = infer_ok ~callbacks {|Member(u) <- Cand(u) : u in staff
Cand(u) <- |} in
  match Infer.signature r "Cand" with
  | Some [ ty ] -> checkb "from group element type" true (Ty.equal ty Ty.Str)
  | _ -> Alcotest.fail "Cand signature"

(* --- constraint evaluation --- *)

let ctx_with ?(groups = []) ?(funcs = []) () =
  {
    Eval.lookup_group =
      (fun g v -> List.exists (fun (g', v') -> g = g' && Value.equal v v') groups);
    call =
      (fun f args ->
        match List.assoc_opt f funcs with
        | Some fn -> fn args
        | None -> Error ("no function " ^ f));
  }

let eval_ok ctx env c =
  match Eval.eval ctx env c with
  | Ok r -> r
  | Error e -> Alcotest.failf "eval failed: %s" e

let constr_of src =
  (* Parse "R <- A : <constr>" and extract the constraint. *)
  match Ast.entries (parse_ok ("R <- A : " ^ src ^ "\nA <- ")) with
  | { Ast.constr = Some c; _ } :: _ -> c
  | _ -> Alcotest.fail "no constraint parsed"

let test_eval_relops () =
  let ctx = ctx_with () in
  let t, _, _ = eval_ok ctx [ ("x", Value.Int 5) ] (constr_of "x > 3") in
  checkb "5 > 3" true t;
  let t, _, _ = eval_ok ctx [ ("x", Value.Int 5) ] (constr_of "x <= 4") in
  checkb "5 <= 4" false t

let test_eval_binding_by_equality () =
  let ctx = ctx_with ~funcs:[ ("f", fun _ -> Ok (Value.Int 9)) ] () in
  let t, env, _ = eval_ok ctx [] (constr_of "r = f() and r > 8") in
  checkb "bound and used" true t;
  checkb "r bound" true (List.assoc_opt "r" env = Some (Value.Int 9))

let test_eval_bind_form () =
  let ctx = ctx_with ~funcs:[ ("creator", fun _ -> Ok (Value.Str "rjh21")) ] () in
  let t, env, _ = eval_ok ctx [] (constr_of {|u <- creator(@fileid"D")|}) in
  checkb "true" true t;
  checkb "u bound" true (List.assoc_opt "u" env = Some (Value.Str "rjh21"))

let test_eval_bind_tests_when_bound () =
  let ctx = ctx_with ~funcs:[ ("f", fun _ -> Ok (Value.Int 1)) ] () in
  let t, _, _ = eval_ok ctx [ ("x", Value.Int 2) ] (constr_of "x <- f()") in
  checkb "mismatch fails" false t

let test_eval_group_membership () =
  let ctx = ctx_with ~groups:[ ("staff", Value.Str "dm") ] () in
  let t, _, _ = eval_ok ctx [ ("u", Value.Str "dm") ] (constr_of "u in staff") in
  checkb "member" true t;
  let t, _, _ = eval_ok ctx [ ("u", Value.Str "zz") ] (constr_of "u in staff") in
  checkb "not member" false t

let test_eval_or_backtracks_bindings () =
  let ctx = ctx_with ~funcs:[ ("f", fun _ -> Ok (Value.Int 1)) ] () in
  (* Left branch binds r then fails; right branch must not see the binding. *)
  let t, env, _ = eval_ok ctx [] (constr_of "(r = f() and r > 5) or r = f()") in
  checkb "true via right" true t;
  checkb "binding from right branch" true (List.assoc_opt "r" env = Some (Value.Int 1))

let test_eval_not_discards_bindings () =
  let ctx = ctx_with ~funcs:[ ("f", fun _ -> Ok (Value.Int 1)) ] () in
  let t, env, _ = eval_ok ctx [] (constr_of "not (r = f() and r > 5)") in
  checkb "negation true" true t;
  checkb "no leak" true (List.assoc_opt "r" env = None)

let test_eval_star_captures_mrule () =
  let ctx = ctx_with ~groups:[ ("staff", Value.Str "dm") ] () in
  let t, _, rules = eval_ok ctx [ ("u", Value.Str "dm") ] (constr_of "(u in staff)*") in
  checkb "true" true t;
  checki "one rule" 1 (List.length rules);
  match rules with
  | [ { Eval.residual = Ast.Cin (Ast.Evar "u", "staff"); bindings } ] ->
      checkb "bindings captured" true (List.assoc_opt "u" bindings = Some (Value.Str "dm"))
  | _ -> Alcotest.fail "rule shape"

let test_eval_star_under_not_polarity () =
  let ctx = ctx_with ~groups:[] () in
  let t, _, rules = eval_ok ctx [ ("u", Value.Str "dm") ] (constr_of "not (u in banned)*") in
  checkb "true (not banned)" true t;
  match rules with
  | [ { Eval.residual = Ast.Cnot (Ast.Cin _); _ } ] -> ()
  | _ -> Alcotest.fail "polarity-adjusted residual expected"

let test_eval_subset () =
  let ctx = ctx_with () in
  let t, _, _ =
    eval_ok ctx [ ("r", Value.set_of_chars "ae") ] (constr_of "r subset {aef}")
  in
  checkb "subset" true t;
  let t, _, _ =
    eval_ok ctx [ ("r", Value.set_of_chars "az") ] (constr_of "r subset {aef}")
  in
  checkb "not subset" false t

let test_eval_unbound_var_errors () =
  let ctx = ctx_with () in
  checkb "unbound errors" true (Result.is_error (Eval.eval ctx [] (constr_of "x > 3")))

let test_eval_groups_mentioned () =
  let c = constr_of "(u in staff)* and (u in opera)*" in
  let gs = Eval.groups_mentioned c [ ("u", Value.Str "dm") ] in
  Alcotest.(check (list (pair string (testable Value.pp Value.equal))))
    "both groups"
    [ ("staff", Value.Str "dm"); ("opera", Value.Str "dm") ]
    gs

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "rdl"
    [
      ( "value",
        [
          Alcotest.test_case "set normalisation" `Quick test_value_set_normalisation;
          Alcotest.test_case "set ops" `Quick test_value_set_ops;
          Alcotest.test_case "obj equality" `Quick test_value_obj_equality;
          qt prop_value_marshal_roundtrip;
          qt prop_value_compare_consistent;
        ] );
      ( "types",
        [
          Alcotest.test_case "unify basic" `Quick test_ty_unify_basic;
          Alcotest.test_case "unify vars" `Quick test_ty_unify_vars;
          Alcotest.test_case "var chain" `Quick test_ty_unify_var_chain;
          Alcotest.test_case "compatible values" `Quick test_ty_compatible_value;
        ] );
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "string escapes" `Quick test_lexer_string_escapes;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "conference (fig 3.1)" `Quick test_parse_conference;
          Alcotest.test_case "high score (3.4.1)" `Quick test_parse_high_score;
          Alcotest.test_case "open meeting (3.4.2)" `Quick test_parse_open_meeting;
          Alcotest.test_case "login levels (3.4.3)" `Quick test_parse_login_levels;
          Alcotest.test_case "shared authorship (3.4.4)" `Quick test_parse_shared_authorship;
          Alcotest.test_case "golf club quorum (3.4.5)" `Quick test_parse_golf_club;
          Alcotest.test_case "imports and rolefile refs" `Quick test_parse_imports_and_rolefile_refs;
          Alcotest.test_case "object literal" `Quick test_parse_object_literal;
          Alcotest.test_case "literal resolver table" `Quick test_parse_resolve_literal_table;
          Alcotest.test_case "acl expression (3.3.3)" `Quick test_parse_acl_expression;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "constraint precedence" `Quick test_parse_constraint_precedence;
          Alcotest.test_case "not and subset" `Quick test_parse_not_and_subset;
        ] );
      ( "pretty",
        [
          Alcotest.test_case "round trip" `Quick test_pretty_roundtrip;
          Alcotest.test_case "printing fixpoint" `Quick test_pretty_stable;
        ] );
      ( "infer",
        [
          Alcotest.test_case "simple" `Quick test_infer_simple;
          Alcotest.test_case "through literals" `Quick test_infer_through_literals;
          Alcotest.test_case "set literals vs def" `Quick test_infer_set_literals_against_def;
          Alcotest.test_case "type conflict" `Quick test_infer_type_conflict;
          Alcotest.test_case "arity conflict" `Quick test_infer_arity_conflict;
          Alcotest.test_case "undefined local role" `Quick test_infer_undefined_local_role;
          Alcotest.test_case "unresolved reported" `Quick test_infer_unresolved_reported;
          Alcotest.test_case "external callback" `Quick test_infer_external_callback;
          Alcotest.test_case "group callback" `Quick test_infer_group_callback;
        ] );
      ( "eval",
        [
          Alcotest.test_case "relops" `Quick test_eval_relops;
          Alcotest.test_case "binding by equality" `Quick test_eval_binding_by_equality;
          Alcotest.test_case "bind form" `Quick test_eval_bind_form;
          Alcotest.test_case "bind tests when bound" `Quick test_eval_bind_tests_when_bound;
          Alcotest.test_case "group membership" `Quick test_eval_group_membership;
          Alcotest.test_case "or backtracks bindings" `Quick test_eval_or_backtracks_bindings;
          Alcotest.test_case "not discards bindings" `Quick test_eval_not_discards_bindings;
          Alcotest.test_case "star captures mrule" `Quick test_eval_star_captures_mrule;
          Alcotest.test_case "star under not" `Quick test_eval_star_under_not_polarity;
          Alcotest.test_case "subset" `Quick test_eval_subset;
          Alcotest.test_case "unbound var errors" `Quick test_eval_unbound_var_errors;
          Alcotest.test_case "groups mentioned" `Quick test_eval_groups_mentioned;
        ] );
    ]
