lib/rdl/eval.mli: Ast Value
