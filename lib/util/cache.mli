(** Capped two-generation cache with cheap eviction.

    Bounded replacement for the unbounded [Hashtbl]s on hot paths (RMC
    signature verification, compiled-residual reuse).  Entries are kept in
    two generations; inserting into a full young generation drops the old
    one wholesale, so the cache holds at most [cap] entries, eviction is
    O(1) amortised, and entries touched since the last rotation survive it. *)

type ('k, 'v) t

val create : int -> ('k, 'v) t
(** [create cap] bounds the cache to at most [cap] entries.
    Raises [Invalid_argument] if [cap < 2]. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup; a hit in the old generation is promoted so it survives the next
    rotation. *)

val set : ('k, 'v) t -> 'k -> 'v -> unit
val mem : ('k, 'v) t -> 'k -> bool

val length : ('k, 'v) t -> int
(** Current number of entries; always [<= capacity]. *)

val capacity : ('k, 'v) t -> int
val clear : ('k, 'v) t -> unit
