lib/oasis/principal.mli: Format
