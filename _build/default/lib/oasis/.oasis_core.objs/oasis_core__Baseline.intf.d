lib/oasis/baseline.mli: Oasis_rdl Oasis_sim
