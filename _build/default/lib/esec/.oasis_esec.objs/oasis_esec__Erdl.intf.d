lib/esec/erdl.mli: Format Oasis_events Oasis_rdl
