open Ast

type env = (string * Value.t) list

type mrule = { residual : Ast.constr; bindings : env }

type ctx = {
  lookup_group : string -> Value.t -> bool;
  call : string -> Value.t list -> (Value.t, string) result;
}

let pure_ctx =
  {
    lookup_group = (fun g _ -> invalid_arg ("Eval.pure_ctx: no group " ^ g));
    call = (fun f _ -> Error ("unknown function " ^ f));
  }

let ( let* ) = Result.bind

let rec eval_expr ctx env = function
  | Elit v -> Ok v
  | Evar x -> (
      match List.assoc_opt x env with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "unbound variable %s" x))
  | Ecall (fname, args) ->
      let* values =
        List.fold_left
          (fun acc e ->
            let* acc = acc in
            let* v = eval_expr ctx env e in
            Ok (v :: acc))
          (Ok []) args
      in
      ctx.call fname (List.rev values)

let truthy = function
  | Value.Int n -> Ok (n <> 0)
  | v -> Error (Printf.sprintf "expected boolean (integer) value, got %s" (Value.to_string v))

(* Total over every [(relop, value, value)] combination: equality relops
   compare any values, ordering relops require integers.  The inner match is
   total too (no [assert false] arm): on integers [Eq]/[Ne] reduce to the
   comparison result, consistent with [Value.equal]. *)
let holds op cmp =
  match op with
  | Eq -> cmp = 0
  | Ne -> cmp <> 0
  | Lt -> cmp < 0
  | Le -> cmp <= 0
  | Gt -> cmp > 0
  | Ge -> cmp >= 0

let compare_rel op a b =
  match (op, a, b) with
  | Eq, _, _ -> Ok (Value.equal a b)
  | Ne, _, _ -> Ok (not (Value.equal a b))
  | (Lt | Le | Gt | Ge), Value.Int x, Value.Int y -> Ok (holds op (Int.compare x y))
  | (Lt | Le | Gt | Ge), _, _ ->
      Error
        (Printf.sprintf "ordering comparison requires integers: %s vs %s" (Value.to_string a)
           (Value.to_string b))

(* [negations] counts enclosing [not]s so captured membership rules carry the
   right polarity. *)
let eval ctx env constr =
  let rec go env negations rules = function
    | Cand (a, b) ->
        let* truth_a, env, rules = go env negations rules a in
        if truth_a then go env negations rules b else Ok (false, env, rules)
    | Cor (a, b) -> (
        match go env negations rules a with
        | Ok (true, env', rules') -> Ok (true, env', rules')
        | Ok (false, _, _) | Error _ -> go env negations rules b)
    | Cnot c ->
        let* truth, _env_inside, rules = go env (negations + 1) rules c in
        (* Bindings under negation do not escape. *)
        Ok (not truth, env, rules)
    | Cstar c ->
        let* truth, env', rules = go env negations rules c in
        let residual = if negations land 1 = 1 then Cnot c else c in
        Ok (truth, env', { residual; bindings = env' } :: rules)
    | Crel (Eq, Evar x, e) when not (List.mem_assoc x env) ->
        (* Equality against an unbound variable binds it (assignment form). *)
        let* v = eval_expr ctx env e in
        Ok (true, (x, v) :: env, rules)
    | Crel (op, a, b) ->
        let* va = eval_expr ctx env a in
        let* vb = eval_expr ctx env b in
        let* truth = compare_rel op va vb in
        Ok (truth, env, rules)
    | Cin (e, group) ->
        let* v = eval_expr ctx env e in
        Ok (ctx.lookup_group group v, env, rules)
    | Csubset (a, b) ->
        let* va = eval_expr ctx env a in
        let* vb = eval_expr ctx env b in
        (match (va, vb) with
        | Value.Set _, Value.Set _ -> Ok (Value.set_subset va vb, env, rules)
        | _ -> Error "subset requires set values")
    | Ccall (fname, args) ->
        let* v = eval_expr ctx env (Ecall (fname, args)) in
        let* truth = truthy v in
        Ok (truth, env, rules)
    | Cbind (x, e) -> (
        let* v = eval_expr ctx env e in
        match List.assoc_opt x env with
        | Some existing -> Ok (Value.equal existing v, env, rules)
        | None -> Ok (true, (x, v) :: env, rules))
  in
  let* truth, env, rules = go env 0 [] constr in
  Ok (truth, env, List.rev rules)

let groups_mentioned constr env =
  let ctx = { pure_ctx with lookup_group = (fun _ _ -> true) } in
  let rec collect acc = function
    | Cand (a, b) | Cor (a, b) -> collect (collect acc a) b
    | Cnot c | Cstar c -> collect acc c
    | Cin (e, group) -> (
        match eval_expr ctx env e with
        | Ok v -> (group, v) :: acc
        | Error _ -> acc)
    | Crel _ | Csubset _ | Ccall _ | Cbind _ -> acc
  in
  List.rev (collect [] constr)
