(* The sharded credential plane, attacked from two sides:

   - property tests on the consistent-hash ring (determinism, bounded key
     movement on membership change, balance);
   - a differential harness: the same seeded workload — entries, a
     cross-shard revocation cascade, fire/re-hire, chaos faults on every
     shard host and the router — run against a 1-shard and an N-shard
     deployment, asserting the observable credential state converges to
     the same table within 3 heartbeats of the final heal, for
     N in {2, 4, 16} over 25 seeds, with bit-identical replays. *)

module Engine = Oasis_sim.Engine
module Net = Oasis_sim.Net
module Fault = Oasis_sim.Fault
module Stats = Oasis_sim.Stats
module Prng = Oasis_util.Prng
module Service = Oasis_core.Service
module Shard = Oasis_core.Shard
module Replica = Oasis_core.Replica
module Principal = Oasis_core.Principal
module Cert = Oasis_core.Cert
module V = Oasis_rdl.Value

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- the ring --- *)

(* 10k routing keys shaped like real ones (role name + marshalled args),
   generated from a seeded stream so the sample is arbitrary but fixed. *)
let sample_keys n =
  let prng = Prng.create 424242L in
  Array.init n (fun _ ->
      Shard.route_key
        ~role:(Printf.sprintf "Role%d" (Prng.int prng 7))
        ~args:[ V.Str (Printf.sprintf "u%Ld" (Prng.bits64 prng)) ])

let test_ring_deterministic () =
  let r1 = Shard.Ring.make ~shards:8 () in
  let r2 = Shard.Ring.make ~shards:8 () in
  let keys = sample_keys 1_000 in
  Array.iter
    (fun k -> checki "same placement on equal rings" (Shard.Ring.owner r1 k) (Shard.Ring.owner r2 k))
    keys;
  checki "shard count" 8 (Shard.Ring.shard_count r1);
  checki "vnodes default" 64 (Shard.Ring.vnodes r1)

(* Adding one shard may steal at most ~1/(n+1) of the keyspace (we allow
   2x for hash variance), and every stolen key must land on the newcomer —
   nobody else's keys are allowed to move. *)
let test_ring_movement_on_add () =
  let keys = sample_keys 10_000 in
  List.iter
    (fun n ->
      let before = Shard.Ring.make ~shards:n () in
      let after = Shard.Ring.add_shard before in
      let fresh =
        List.filter (fun i -> not (List.mem i (Shard.Ring.shard_ids before)))
          (Shard.Ring.shard_ids after)
      in
      let fresh = match fresh with [ f ] -> f | _ -> Alcotest.fail "exactly one fresh id" in
      let moved = ref 0 in
      Array.iter
        (fun k ->
          let o = Shard.Ring.owner before k and o' = Shard.Ring.owner after k in
          if o <> o' then begin
            incr moved;
            checki (Printf.sprintf "moved key goes to the newcomer (n=%d)" n) fresh o'
          end)
        keys;
      let bound = 2 * Array.length keys / (n + 1) in
      checkb
        (Printf.sprintf "n=%d: %d moved <= %d" n !moved bound)
        true (!moved <= bound);
      checkb (Printf.sprintf "n=%d: something moved" n) true (!moved > 0))
    [ 2; 4; 8; 16 ]

(* Removing a shard evicts exactly its own keys, at most ~2/n of the
   keyspace; every other key keeps its owner. *)
let test_ring_movement_on_remove () =
  let keys = sample_keys 10_000 in
  List.iter
    (fun n ->
      let before = Shard.Ring.make ~shards:n () in
      let victim = n / 2 in
      let after = Shard.Ring.remove_shard before victim in
      checki "one fewer shard" (n - 1) (Shard.Ring.shard_count after);
      let moved = ref 0 in
      Array.iter
        (fun k ->
          let o = Shard.Ring.owner before k and o' = Shard.Ring.owner after k in
          if o <> o' then begin
            incr moved;
            checki (Printf.sprintf "only the victim's keys move (n=%d)" n) victim o
          end;
          checkb "no key maps to the removed shard" true (o' <> victim))
        keys;
      let bound = 2 * Array.length keys / n in
      checkb
        (Printf.sprintf "n=%d: %d moved <= %d" n !moved bound)
        true (!moved <= bound))
    [ 2; 4; 8; 16 ]

let test_ring_balance () =
  let keys = sample_keys 10_000 in
  List.iter
    (fun n ->
      let ring = Shard.Ring.make ~vnodes:64 ~shards:n () in
      let counts = Array.make n 0 in
      Array.iter (fun k -> let o = Shard.Ring.owner ring k in counts.(o) <- counts.(o) + 1) keys;
      let ideal = Array.length keys / n in
      Array.iteri
        (fun i c ->
          checkb
            (Printf.sprintf "shard %d/%d load %d <= 2x ideal %d" i n c ideal)
            true (c <= 2 * ideal))
        counts)
    [ 8; 16 ]

(* Removing an id the ring does not hold used to be a silent no-op; it
   must raise like [make] does, and a real removal must still work. *)
let test_ring_remove_unknown_raises () =
  let r = Shard.Ring.make ~shards:4 () in
  (match Shard.Ring.remove_shard r 7 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "remove of unknown shard id must raise");
  (match Shard.Ring.remove_shard r (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "remove of negative shard id must raise");
  let r' = Shard.Ring.remove_shard r 2 in
  checki "real removal still works" 3 (Shard.Ring.shard_count r');
  (match Shard.Ring.remove_shard r' 2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "double removal must raise the second time")

(* --- the differential harness --- *)

let login_rolefile = {|
def LoggedOn(u, h) u: String h: String
LoggedOn(u, h) <-
|}

(* Editor depends on an unqualified Member reference: when the two role
   instances land on different shards, the dependency is an external
   record between siblings — the cross-shard cascade under test. *)
let club_rolefile =
  {|
Chair <- Login.LoggedOn("jmb", h)
Member(u) <- Login.LoggedOn(u, h)* |>* Chair : u in staff
Editor(u) <- Member(u)* |>* Chair
|}

type world = { w_engine : Engine.t; w_net : Net.t; w_client : Net.host }

let srun w dt = Engine.run ~until:(Engine.now w.w_engine +. dt) w.w_engine

let fresh_vci =
  let host = Principal.Host.create "shardclienthost" in
  let domain = Principal.Host.boot_domain host in
  fun () -> Principal.Host.new_vci host domain

let users = [ "u0"; "u1"; "u2"; "u3"; "u4"; "u5" ]

let make_world ?(replicas = 1) ~seed ~shards () =
  let engine = Engine.create () in
  let net = Net.create ~seed ~latency:(Net.Fixed 0.005) engine in
  let reg = Service.create_registry () in
  let client = Net.add_host net "client" in
  let login_host = Net.add_host net "h.Login" in
  let login =
    match Service.create net login_host reg ~name:"Login" ~rolefile:login_rolefile () with
    | Ok s -> s
    | Error e -> Alcotest.failf "login: %s" e
  in
  let club =
    match
      Shard.create net reg ~name:"Club" ~rolefile:club_rolefile ~shards ~durable:true
        ~snapshot_every:8 ~groups:[ ("staff", users) ] ~replicas ()
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "shard deploy: %s" e
  in
  ({ w_engine = engine; w_net = net; w_client = client }, login, club)

(* Drive one routed operation to completion, retrying the whole operation
   when it fails or stalls: under chaos an attempt can exhaust its retry
   budget (router or owning shard down too long) or be denied transiently
   (sibling revoker validation giving up).  Completions are polled on the
   virtual clock, so the schedule stays a deterministic function of the
   seed.  Stale completions of an abandoned attempt land in that attempt's
   own cell — harmless, all the routed ops are idempotent. *)
let rec until_ok ?(last = "never completed") w label tries op =
  if tries = 0 then Alcotest.failf "%s: retries exhausted (last: %s)" label last
  else begin
    let cell = ref None in
    op (fun r -> cell := Some r);
    let rec wait budget =
      match !cell with
      | Some (Ok v) -> v
      | Some (Error e) ->
          srun w 0.5;
          until_ok ~last:e w label (tries - 1) op
      | None ->
          if budget <= 0.0 then until_ok ~last w label (tries - 1) op
          else begin
            srun w 0.25;
            wait (budget -. 0.25)
          end
    in
    wait 40.0
  end

type creds = {
  c_chair : Cert.rmc;
  c_members : (string * Principal.vci * Cert.rmc) list;
  c_editors : (string * Principal.vci * Cert.rmc) list;
}

let setup w login club =
  let jmb = fresh_vci () in
  let jmb_login =
    Service.issue_arbitrary login ~client:jmb ~roles:[ "LoggedOn" ]
      ~args:[ V.Str "jmb"; V.Str "ely" ]
  in
  let enter ~client ~role ~args ~creds label =
    until_ok w label 8 (fun k ->
        Shard.request_entry club ~client_host:w.w_client ~client ~role ~args ~creds k)
  in
  let chair = enter ~client:jmb ~role:"Chair" ~args:[] ~creds:[ jmb_login ] "enter-chair" in
  let members =
    List.map
      (fun u ->
        let vci = fresh_vci () in
        let lc =
          Service.issue_arbitrary login ~client:vci ~roles:[ "LoggedOn" ]
            ~args:[ V.Str u; V.Str "ely" ]
        in
        let m =
          enter ~client:vci ~role:"Member" ~args:[ V.Str u ] ~creds:[ lc ] ("enter-member-" ^ u)
        in
        (u, vci, m))
      users
  in
  let editors =
    List.filter_map
      (fun (u, vci, m) ->
        if List.mem u [ "u0"; "u1"; "u2"; "u3" ] then
          Some
            (u, vci, enter ~client:vci ~role:"Editor" ~args:[ V.Str u ] ~creds:[ m ] ("enter-editor-" ^ u))
        else None)
      members
  in
  { c_chair = chair; c_members = members; c_editors = editors }

let status_at_issuer club ~client cert =
  let issuer =
    match
      Array.to_seq (Shard.shards club)
      |> Seq.find (fun s -> String.equal (Service.name s) cert.Cert.service)
    with
    | Some s -> s
    | None -> Alcotest.failf "no shard issued %s" cert.Cert.service
  in
  match Service.validate issuer ~client cert with
  | Ok () -> "ok"
  | Error f -> Format.asprintf "%a" Service.pp_failure f

(* The observable table: per-certificate status as seen at the issuing
   shard, plus the §4.11 blacklist bits.  Shard names vary with N
   (Club#0..Club#N-1), so rows are keyed by workload-level labels. *)
let observe club creds ~u1_new ~u1_vci =
  let member_row (u, vci, m) = ("member." ^ u, status_at_issuer club ~client:vci m) in
  let editor_row (u, vci, e) = ("editor." ^ u, status_at_issuer club ~client:vci e) in
  let chair_row =
    ("chair", status_at_issuer club ~client:creds.c_chair.Cert.holder creds.c_chair)
  in
  (chair_row :: List.map member_row creds.c_members)
  @ List.map editor_row creds.c_editors
  @ [ ("member.u1.new", status_at_issuer club ~client:u1_vci u1_new) ]
  @ List.map
      (fun u -> ("bl.member." ^ u, string_of_bool (Shard.blacklisted club ~role:"Member" ~args:[ V.Str u ])))
      users
  @ List.map
      (fun u -> ("bl.editor." ^ u, string_of_bool (Shard.blacklisted club ~role:"Editor" ~args:[ V.Str u ])))
      users

(* One full run: setup, chaos over every shard host and the router, the
   mutation workload driven to completion during the chaos, heal,
   convergence within 3 heartbeats, then the observable table. *)
let differential_run ?(replicas = 1) ~seed ~shards () =
  let w, login, club = make_world ~replicas ~seed ~shards () in
  srun w 0.2;
  let creds = setup w login club in
  srun w 2.0;
  (* Everyone's in; start the storm.  Chaos targets every replica of every
     shard, not just the primaries. *)
  let f = Net.fault w.w_net in
  let hosts =
    Net.host_addr (Shard.router_host club)
    :: (Array.to_list (Shard.replica_groups club)
       |> List.concat_map (fun g ->
              List.map (fun s -> Net.host_addr (Service.host s)) (Replica.members g)))
  in
  (* Per-host MTBF scales with the host count so the GLOBAL fault pressure
     is the same at every shard count (~3-4 crashes per window): the
     differential compares deployments under comparable weather, and the
     routed operations keep a fighting chance of finding the router and
     the owning shard up within one retry budget even at 16 shards. *)
  let mtbf = 1.5 *. float_of_int (List.length hosts) in
  Fault.chaos f ~hosts ~mtbf ~mttr:1.0 ~until:(Engine.now w.w_engine +. 10.0);
  srun w 1.0;
  let fire u =
    ignore
      (until_ok w ("fire-" ^ u) 8 (fun k ->
           Shard.revoke_role_instance club ~client_host:w.w_client ~revoker:creds.c_chair
             ~role:"Member" ~args:[ V.Str u ] k))
  in
  (* u0: fired, cascading into Editor(u0) on (usually) another shard.
     u1: fired, re-hired, re-enters — old certs stay revoked, the new
     membership is valid.  u3 loses Editor only.  u2/u4/u5 untouched. *)
  fire "u0";
  fire "u1";
  until_ok w "rehire-u1" 8 (fun k ->
      Shard.reinstate_role_instance club ~client_host:w.w_client ~revoker:creds.c_chair
        ~role:"Member" ~args:[ V.Str "u1" ] k);
  let u1_vci, u1_login =
    let _, vci, _ = List.find (fun (u, _, _) -> u = "u1") creds.c_members in
    ( vci,
      Service.issue_arbitrary login ~client:vci ~roles:[ "LoggedOn" ]
        ~args:[ V.Str "u1"; V.Str "ely" ] )
  in
  let u1_new =
    until_ok w "reenter-u1" 8 (fun k ->
        Shard.request_entry club ~client_host:w.w_client ~client:u1_vci ~role:"Member"
          ~args:[ V.Str "u1" ] ~creds:[ u1_login ] k)
  in
  ignore
    (until_ok w "fire-editor-u3" 8 (fun k ->
         Shard.revoke_role_instance club ~client_host:w.w_client ~revoker:creds.c_chair
           ~role:"Editor" ~args:[ V.Str "u3" ] k));
  (* Let chaos run its course, then wait for the final heal of every host. *)
  srun w 10.0;
  let rec await_heal budget =
    if List.for_all (Fault.up f) hosts then Engine.now w.w_engine
    else if budget <= 0.0 then Alcotest.fail "chaos never healed"
    else begin
      srun w 0.05;
      await_heal (budget -. 0.05)
    end
  in
  let healed = await_heal 5.0 in
  checkb "chaos actually crashed something" true
    (Stats.count (Net.stats w.w_net) "fault.crash" >= 1);
  (* §4.10 under sharding: the cross-shard cascade must be visible
     everywhere within 3 heartbeats (heartbeat = 1.0) of the heal. *)
  let sentinel (u, vci, c) want =
    String.equal (status_at_issuer club ~client:vci c) want
  in
  let member u = List.find (fun (x, _, _) -> x = u) creds.c_members in
  let editor u = List.find (fun (x, _, _) -> x = u) creds.c_editors in
  let converged () =
    sentinel (member "u0") "revoked"
    && sentinel (member "u1") "revoked"
    && sentinel (editor "u0") "revoked"
    && sentinel (editor "u1") "revoked"
    && sentinel (editor "u3") "revoked"
    && sentinel ("u1", u1_vci, u1_new) "ok"
  in
  let deadline = healed +. 3.0 in
  let rec poll () =
    if converged () then ()
    else if Engine.now w.w_engine >= deadline then
      let s (u, vci, c) = status_at_issuer club ~client:vci c in
      Alcotest.failf
        "no convergence within 3 heartbeats of heal (seed %Ld, %d shards): m.u0=%s m.u1=%s \
         e.u0=%s e.u1=%s e.u3=%s m.u1.new=%s"
        seed shards
        (s (member "u0")) (s (member "u1")) (s (editor "u0")) (s (editor "u1"))
        (s (editor "u3"))
        (s ("u1", u1_vci, u1_new))
    else begin
      srun w 0.05;
      poll ()
    end
  in
  poll ();
  (observe club creds ~u1_new ~u1_vci, Stats.report (Net.stats w.w_net))

let expected_table =
  [
    ("chair", "ok");
    ("member.u0", "revoked");
    ("member.u1", "revoked");
    ("member.u2", "ok");
    ("member.u3", "ok");
    ("member.u4", "ok");
    ("member.u5", "ok");
    ("editor.u0", "revoked");
    ("editor.u1", "revoked");
    ("editor.u2", "ok");
    ("editor.u3", "revoked");
    ("member.u1.new", "ok");
    ("bl.member.u0", "true");
    ("bl.member.u1", "false");
    ("bl.member.u2", "false");
    ("bl.member.u3", "false");
    ("bl.member.u4", "false");
    ("bl.member.u5", "false");
    ("bl.editor.u0", "false");
    ("bl.editor.u1", "false");
    ("bl.editor.u2", "false");
    ("bl.editor.u3", "true");
    ("bl.editor.u4", "false");
    ("bl.editor.u5", "false");
  ]

let table = Alcotest.(list (pair string string))

let test_differential_sharded_equals_unsharded () =
  for s = 1 to 25 do
    let seed = Int64.of_int (100 + s) in
    let base, _ = differential_run ~seed ~shards:1 () in
    Alcotest.check table
      (Printf.sprintf "seed %d: unsharded run reaches the expected state" s)
      expected_table base;
    List.iter
      (fun n ->
        let t, _ = differential_run ~seed ~shards:n () in
        Alcotest.check table
          (Printf.sprintf "seed %d: %d-shard state equals unsharded" s n)
          base t)
      [ 2; 4; 16 ]
  done

(* Same differential, replication axis: K = 3 replica groups under chaos
   over every replica host must converge to the same observable table as
   the unreplicated deployment — a replica (or primary) crash is invisible
   to the workload's final state. *)
let test_differential_replicated_equals_unreplicated () =
  for s = 1 to 25 do
    let seed = Int64.of_int (300 + s) in
    let base, _ = differential_run ~seed ~shards:2 ~replicas:1 () in
    Alcotest.check table
      (Printf.sprintf "seed %d: K=1 run reaches the expected state" s)
      expected_table base;
    let repl, _ = differential_run ~seed ~shards:2 ~replicas:3 () in
    Alcotest.check table
      (Printf.sprintf "seed %d: K=3 state equals K=1" s)
      base repl
  done

let test_differential_replay_identical () =
  List.iter
    (fun n ->
      let r = differential_run ~seed:7L ~shards:n () in
      let r' = differential_run ~seed:7L ~shards:n () in
      checkb (Printf.sprintf "%d shards: same seed, same run" n) true (r = r'))
    [ 1; 2; 4 ];
  let r = differential_run ~seed:7L ~shards:2 ~replicas:3 () in
  let r' = differential_run ~seed:7L ~shards:2 ~replicas:3 () in
  checkb "K=3: same seed, same run" true (r = r')

(* The router path itself (entry, validate, exit) in calm weather: routed
   validation answers from the issuing shard, exit revokes. *)
let test_router_validate_and_exit () =
  let w, login, club = make_world ~seed:5L ~shards:4 () in
  srun w 0.2;
  let creds = setup w login club in
  srun w 2.0;
  let _, u4, m4 = List.find (fun (u, _, _) -> u = "u4") creds.c_members in
  let vres = ref None in
  Shard.validate club ~client_host:w.w_client ~client:u4 m4 (fun r -> vres := Some r);
  srun w 2.0;
  checkb "routed validate ok" true (!vres = Some (Ok ()));
  let eres = ref None in
  Shard.exit_role club ~client_host:w.w_client m4 (fun r -> eres := Some r);
  srun w 2.0;
  checkb "routed exit ok" true (!eres = Some (Ok ()));
  srun w 3.0;
  checkb "exited membership no longer validates" true
    (status_at_issuer club ~client:u4 m4 <> "ok");
  (* Instances really are spread: with 4 shards and 11 instances the ring
     must use more than one shard (holds for this fixed workload). *)
  let owners =
    List.sort_uniq compare
      (List.map (fun u -> Shard.owner_index club ~role:"Member" ~args:[ V.Str u ]) users)
  in
  checkb "members spread over several shards" true (List.length owners > 1)

(* --- replication (K = 3 replica groups) --- *)

let is_prefix xs ys =
  let rec go = function
    | [], _ -> true
    | _, [] -> false
    | (a : string) :: at, b :: bt -> String.equal a b && go (at, bt)
  in
  go (xs, ys)

(* The log-shipping invariant, checked at quiescence: every live member's
   durable WAL is a prefix of its group's record stream. *)
let assert_stream_prefixes w club label =
  Array.iteri
    (fun i g ->
      let stream = Replica.stream g in
      List.iteri
        (fun j svc ->
          if Net.host_up w.w_net (Service.host svc) then
            checkb
              (Printf.sprintf "%s: shard %d replica %d log is a stream prefix" label i j)
              true
              (is_prefix (Service.durable_log_records svc) stream))
        (Replica.members g))
    (Shard.replica_groups club)

let fire_member w club creds u =
  ignore
    (until_ok w ("fire-" ^ u) 8 (fun k ->
         Shard.revoke_role_instance club ~client_host:w.w_client ~revoker:creds.c_chair
           ~role:"Member" ~args:[ V.Str u ] k))

let test_log_shipping_prefix () =
  let w, login, club = make_world ~replicas:3 ~seed:21L ~shards:2 () in
  srun w 0.2;
  let creds = setup w login club in
  srun w 2.0;
  let quiesce () =
    Shard.durable_flush club;
    srun w 1.5
  in
  quiesce ();
  assert_stream_prefixes w club "after setup";
  let f = Net.fault w.w_net in
  let g0 = Shard.replica_group club 0 in
  (* A backup crash loses its unsynced tail; the primary's cursor rewinds
     and re-ships.  The workload keeps running meanwhile (quorum 2/3). *)
  let backup = Replica.member g0 ((Replica.primary_index g0 + 1) mod 3) in
  Fault.crash f (Net.host_addr (Service.host backup));
  fire_member w club creds "u0";
  srun w 1.0;
  Fault.restart f (Net.host_addr (Service.host backup));
  quiesce ();
  assert_stream_prefixes w club "after a backup crash cycle";
  (* A primary crash forces a failover; the ex-primary rejoins holding a
     possibly-divergent unacked tail, which shipping must repair. *)
  let old_primary = Replica.primary g0 in
  Fault.crash f (Net.host_addr (Service.host old_primary));
  fire_member w club creds "u1";
  srun w 3.0;
  checkb "the crash actually failed over" true (Replica.promotions g0 >= 1);
  Fault.restart f (Net.host_addr (Service.host old_primary));
  quiesce ();
  assert_stream_prefixes w club "after failover and ex-primary rejoin";
  (* The stream carries what was acked: both fires are visible. *)
  checkb "fire u0 survived" true (Shard.blacklisted club ~role:"Member" ~args:[ V.Str "u0" ]);
  checkb "fire u1 survived" true (Shard.blacklisted club ~role:"Member" ~args:[ V.Str "u1" ]);
  ignore login

(* The ack-overrun bug: shipping verifies content batch by batch (256
   records), and the no-divergence branch used to ack the backup's WHOLE
   log length whenever the log ran past the shipped batch — so a rejoining
   ex-primary whose dead-epoch tail diverged only beyond the first batch
   was marked quorum-durable for junk positions, shipping stopped short,
   and the divergence survived forever.  Build that world directly: pad
   every log past one ship batch with ignorable records (unknown tags are
   skipped by replay, exactly like epoch barriers), give the primary a
   divergent never-shipped tail on top, crash it, fail over (the new
   stream = padded log + its barrier, > 256 records), rejoin the
   ex-primary — shipping must walk past batch #1, find the divergence and
   repair the tail back to a true stream prefix. *)
let test_repair_divergence_past_first_batch () =
  let w, login, club = make_world ~replicas:3 ~seed:71L ~shards:1 () in
  srun w 0.2;
  let creds = setup w login club in
  srun w 2.0;
  let g = Shard.replica_group club 0 in
  let quiesce () =
    Shard.durable_flush club;
    srun w 1.5
  in
  quiesce ();
  let base = Replica.stream g in
  let pad = List.init 300 (fun i -> Printf.sprintf "P\x1fpad%d" i) in
  let junk = List.init 30 (fun i -> Printf.sprintf "D\x1fjunk%d" i) in
  let padded = base @ pad in
  checkb "padded history exceeds one ship batch" true (List.length padded > 256);
  let old_primary = Replica.primary g in
  let rewrote = ref 0 in
  List.iteri
    (fun j svc ->
      let log = if j = Replica.primary_index g then padded @ junk else padded in
      Service.durable_log_rewrite svc log (fun () -> incr rewrote))
    (Replica.members g);
  srun w 2.0;
  checki "all three logs rewritten" 3 !rewrote;
  let f = Net.fault w.w_net in
  Fault.crash f (Net.host_addr (Service.host old_primary));
  srun w 3.0;
  checkb "a backup took over" true (Replica.promotions g >= 1 && Replica.ready g);
  checkb "the new stream runs past one ship batch" true
    (List.length (Replica.stream g) > 256);
  Fault.restart f (Net.host_addr (Service.host old_primary));
  srun w 3.0;
  quiesce ();
  let rejoined = Service.durable_log_records old_primary in
  checkb "ex-primary's junk tail was repaired away" true
    (not (List.exists (fun r -> String.length r >= 1 && r.[0] = 'D') rejoined));
  checkb "ex-primary's log is a stream prefix again" true
    (is_prefix rejoined (Replica.stream g));
  (* And the group still quorum-acks new writes over the repaired logs. *)
  fire_member w club creds "u4";
  srun w 3.0;
  checkb "post-repair fire acked and applied" true
    (Shard.blacklisted club ~role:"Member" ~args:[ V.Str "u4" ]);
  quiesce ();
  assert_stream_prefixes w club "after repair and new appends";
  ignore login

let test_failover_idempotent () =
  let w, login, club = make_world ~replicas:3 ~seed:31L ~shards:1 () in
  srun w 0.2;
  let creds = setup w login club in
  srun w 2.0;
  let g = Shard.replica_group club 0 in
  checki "initial epoch" 0 (Replica.epoch g);
  checki "no promotions yet" 0 (Replica.promotions g);
  let f = Net.fault w.w_net in
  Fault.crash f (Net.host_addr (Service.host (Replica.primary g)));
  (* Two candidates race the same epoch (plus a literal double call):
     exactly one CAS commits. *)
  Replica.promote g ~member:1 ~from_epoch:0;
  Replica.promote g ~member:1 ~from_epoch:0;
  Replica.promote g ~member:2 ~from_epoch:0;
  srun w 3.0;
  checki "exactly one promotion committed" 1 (Replica.promotions g);
  checki "epoch bumped exactly once" 1 (Replica.epoch g);
  checkb "replay finished" true (Replica.ready g);
  checkb "a backup took over" true (Replica.primary_index g <> 0);
  (* A late promotion against the dead epoch is a no-op. *)
  Replica.promote g ~member:2 ~from_epoch:0;
  srun w 2.0;
  checki "stale-epoch promotion is a no-op" 1 (Replica.promotions g);
  checki "epoch unchanged" 1 (Replica.epoch g);
  (* And the promoted primary actually serves. *)
  let _, vci, m = List.find (fun (u, _, _) -> u = "u2") creds.c_members in
  let res = ref None in
  Shard.validate club ~client_host:w.w_client ~client:vci m (fun r -> res := Some r);
  srun w 3.0;
  checkb "validates at the new primary" true (!res = Some (Ok ()));
  ignore login

(* PR 1's bug class, replication edition: crash/restart/failover cycles
   must not leave extra timers armed.  Measured at a quiesced state (all
   replicas down, in-flight one-shots drained) before and after the
   cycles: the per-host armed-timer counts must be identical. *)
let test_failover_timer_hygiene () =
  let w, login, club = make_world ~replicas:3 ~seed:41L ~shards:1 () in
  srun w 0.2;
  let creds = setup w login club in
  srun w 2.0;
  let g = Shard.replica_group club 0 in
  let f = Net.fault w.w_net in
  let hosts = List.map Service.host (Replica.members g) in
  let measure () =
    List.iter (fun h -> Fault.crash f (Net.host_addr h)) hosts;
    srun w 3.0;
    let counts =
      List.concat_map
        (fun h ->
          let n = Net.host_name h in
          List.map (fun p -> Engine.pending_tagged w.w_engine (p ^ n)) [ "t:"; "s:"; "d:" ])
        hosts
    in
    List.iter (fun h -> Fault.restart f (Net.host_addr h)) hosts;
    srun w 3.0;
    counts
  in
  let base = measure () in
  for _ = 1 to 3 do
    Fault.crash f (Net.host_addr (Service.host (Replica.primary g)));
    srun w 2.0;
    fire_member w club creds "u5";
    List.iter
      (fun h -> if not (Fault.up f (Net.host_addr h)) then Fault.restart f (Net.host_addr h))
      hosts;
    srun w 2.0;
    ignore
      (until_ok w "rehire-u5" 8 (fun k ->
           Shard.reinstate_role_instance club ~client_host:w.w_client ~revoker:creds.c_chair
             ~role:"Member" ~args:[ V.Str "u5" ] k))
  done;
  let after = measure () in
  checkb
    (Printf.sprintf "armed-timer counts are crash-invariant (%s -> %s)"
       (String.concat "," (List.map string_of_int base))
       (String.concat "," (List.map string_of_int after)))
    true (base = after);
  ignore login

(* Satellite regression: with the owning shard down, routed validation
   must answer an explicit fail-closed verdict, not leak the transport's
   "timeout" giveup — and must recover once the shard does. *)
let test_validate_fail_closed () =
  let w, login, club = make_world ~seed:51L ~shards:2 () in
  srun w 0.2;
  let creds = setup w login club in
  srun w 2.0;
  let _, u4, m4 = List.find (fun (u, _, _) -> u = "u4") creds.c_members in
  let issuer =
    match
      Array.to_seq (Shard.shards club)
      |> Seq.find (fun s -> String.equal (Service.name s) m4.Cert.service)
    with
    | Some s -> s
    | None -> Alcotest.fail "no shard issued m4"
  in
  let f = Net.fault w.w_net in
  Fault.crash f (Net.host_addr (Service.host issuer));
  let res = ref None in
  Shard.validate club ~client_host:w.w_client ~client:u4 m4 (fun r -> res := Some r);
  srun w 8.0;
  (match !res with
  | Some (Error e) ->
      checkb
        (Printf.sprintf "explicit fail-closed verdict (got %S)" e)
        true
        (String.length e >= 11 && String.equal (String.sub e 0 11) "fail-closed")
  | Some (Ok ()) -> Alcotest.fail "validated against a dead shard"
  | None -> Alcotest.fail "validate never answered");
  Fault.restart f (Net.host_addr (Service.host issuer));
  srun w 3.0;
  let res2 = ref None in
  Shard.validate club ~client_host:w.w_client ~client:u4 m4 (fun r -> res2 := Some r);
  srun w 3.0;
  checkb "validates again after the shard heals" true (!res2 = Some (Ok ()));
  ignore login

(* The tentpole's headline: killing one replica of each shard mid-workload
   loses nothing acked and keeps validation down for at most one (service)
   heartbeat. *)
let test_single_replica_crash_costs_nothing () =
  let w, login, club = make_world ~replicas:3 ~seed:61L ~shards:2 () in
  srun w 0.2;
  let creds = setup w login club in
  srun w 2.0;
  fire_member w club creds "u0";
  srun w 5.0;
  let obs () =
    List.map
      (fun (u, vci, m) -> ("m." ^ u, status_at_issuer club ~client:vci m))
      creds.c_members
    @ List.map
        (fun (u, vci, e) -> ("e." ^ u, status_at_issuer club ~client:vci e))
        creds.c_editors
    @ List.map
        (fun u ->
          ("bl." ^ u, string_of_bool (Shard.blacklisted club ~role:"Member" ~args:[ V.Str u ])))
        users
  in
  let before = obs () in
  let f = Net.fault w.w_net in
  let g0 = Shard.replica_group club 0 and g1 = Shard.replica_group club 1 in
  (* One replica of EACH shard: the primary of shard 0 (forcing a
     failover) and a backup of shard 1 (which must cost nothing at all). *)
  let crash_t = Engine.now w.w_engine in
  Fault.crash f (Net.host_addr (Service.host (Replica.primary g0)));
  Fault.crash f
    (Net.host_addr (Service.host (Replica.member g1 ((Replica.primary_index g1 + 1) mod 3))));
  (* Probe with a certificate issued by shard 0 — the failover path.
     Unavailability = time until a freshly issued validate answers Ok
     PROMPTLY (within 0.1 s, so the answer cannot be the product of the
     router's internal backoff-retry); must be within one service
     heartbeat (1.0 s) of the crash. *)
  let _, pvci, pm =
    List.find (fun (_, _, m) -> String.equal m.Cert.service "Club#0") creds.c_members
  in
  let ok_starts = ref [] in
  for _ = 1 to 60 do
    let t0 = Engine.now w.w_engine in
    Shard.validate club ~client_host:w.w_client ~client:pvci pm (fun r ->
        if r = Ok () && Engine.now w.w_engine -. t0 <= 0.1 then ok_starts := t0 :: !ok_starts);
    srun w 0.05
  done;
  srun w 2.0;
  let gap =
    match List.sort compare !ok_starts with
    | [] -> Alcotest.fail "validation never came back promptly"
    | first :: _ -> first -. crash_t
  in
  checkb (Printf.sprintf "validation gap %.2fs within one heartbeat" gap) true (gap <= 1.0);
  (* Acked operations survived: the observable table is unchanged. *)
  srun w 3.0;
  Alcotest.check table "no acked state lost across the crashes" before (obs ());
  (* And the group still takes writes (quorum 2/3 on both shards). *)
  fire_member w club creds "u3";
  srun w 3.0;
  checkb "post-crash fire acked and applied" true
    (Shard.blacklisted club ~role:"Member" ~args:[ V.Str "u3" ]);
  ignore login

let () =
  Alcotest.run "shard"
    [
      ( "ring",
        [
          Alcotest.test_case "deterministic placement" `Quick test_ring_deterministic;
          Alcotest.test_case "bounded movement on add" `Quick test_ring_movement_on_add;
          Alcotest.test_case "bounded movement on remove" `Quick test_ring_movement_on_remove;
          Alcotest.test_case "balance within 2x ideal" `Quick test_ring_balance;
          Alcotest.test_case "remove of unknown shard raises" `Quick
            test_ring_remove_unknown_raises;
        ] );
      ( "router",
        [
          Alcotest.test_case "routed validate and exit" `Quick test_router_validate_and_exit;
          Alcotest.test_case "validate fails closed while owner is down" `Quick
            test_validate_fail_closed;
        ] );
      ( "replication",
        [
          Alcotest.test_case "log shipping keeps prefix invariant" `Quick
            test_log_shipping_prefix;
          Alcotest.test_case "divergence past the first ship batch is repaired, not acked"
            `Quick test_repair_divergence_past_first_batch;
          Alcotest.test_case "failover is epoch-idempotent" `Quick test_failover_idempotent;
          Alcotest.test_case "failover leaves no timers armed" `Quick
            test_failover_timer_hygiene;
          Alcotest.test_case "one replica crash per shard costs nothing" `Quick
            test_single_replica_crash_costs_nothing;
        ] );
      ( "differential",
        [
          Alcotest.test_case "sharded = unsharded under chaos (25 seeds, N in {2,4,16})" `Slow
            test_differential_sharded_equals_unsharded;
          Alcotest.test_case "replicated = unreplicated under chaos (25 seeds, K in {1,3})"
            `Slow test_differential_replicated_equals_unreplicated;
          Alcotest.test_case "replay identity" `Quick test_differential_replay_identical;
        ] );
    ]
