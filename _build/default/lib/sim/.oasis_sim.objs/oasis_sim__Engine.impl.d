lib/sim/engine.ml: Oasis_util
