test/test_service.ml: Alcotest List Oasis_core Oasis_rdl Oasis_sim Oasis_util Printf Result
