(** Type inference over a rolefile (§3.2.1).

    Explicit [def] statements seed role signatures; remaining parameter types
    are inferred by unification across every statement that mentions the
    role.  Only types that cannot be inferred need declaring; a rolefile in
    which some parameter type remains unresolved is reported via
    [unresolved] so the hosting service can reject or default it. *)

type result = {
  sigs : (string, Ty.t list) Hashtbl.t;
      (** Signature (parameter types, in order) for every role defined in the
          file. *)
  unresolved : (string * int) list;
      (** [(role, parameter index)] pairs whose types could not be
          inferred. *)
}

type callbacks = {
  external_sig : service:string -> role:string -> Ty.t list option;
      (** Types of a role issued by another service ([gettypes], §4.3). *)
  func_sig : string -> (Ty.t list option * Ty.t) option;
      (** Signature of a server-specific extension function; [None] argument
          list means variadic/unchecked. *)
  group_element : string -> Ty.t option;
      (** Element type of a named group used in [in] constraints. *)
}

val no_callbacks : callbacks

val infer : ?callbacks:callbacks -> Ast.rolefile -> (result, string) Stdlib.result

val infer_located :
  ?callbacks:callbacks -> Ast.rolefile -> (result, int * string) Stdlib.result
(** Like {!infer}, but a failure also carries the source line of the [def] or
    entry statement being checked when unification failed (0 if unknown).
    Used by the static analyzer ({!Analyze}) to anchor diagnostics. *)

val signature : result -> string -> Ty.t list option
