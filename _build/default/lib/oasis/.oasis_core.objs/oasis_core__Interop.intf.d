lib/oasis/interop.mli: Cert Oasis_rdl Principal Service
