module Ast = Oasis_rdl.Ast
module Value = Oasis_rdl.Value
module Event = Oasis_events.Event

type rule = {
  allow : bool;
  role : Ast.role_ref option;
  event : string;
  pats : Event.pattern list;
}

(* Rules are line-oriented:
     ("allow" | "deny") (roleref | "*") ":" Name(pat, ...)
   Patterns: "*", integer/string literals, or variables (bound by the role's
   arguments).  The roleref reuses RDL's lexer via a tiny adapter. *)

let parse_pattern_token = function
  | "*" -> Event.Any
  | tok -> (
      match int_of_string_opt tok with
      | Some n -> Event.Lit (Value.Int n)
      | None ->
          if String.length tok >= 2 && tok.[0] = '"' && tok.[String.length tok - 1] = '"' then
            Event.Lit (Value.Str (String.sub tok 1 (String.length tok - 2)))
          else Event.Var tok)

let parse_role_text text =
  (* "Service.Role(args)" or "Role(args)" — parse with the RDL machinery by
     wrapping it into a synthetic entry statement. *)
  let src = Printf.sprintf "Synthetic__ <- %s" (String.trim text) in
  match Oasis_rdl.Parser.parse_result src with
  | Ok [ Ast.Entry { creds = [ r ]; _ } ] -> Ok r
  | Ok _ -> Error ("malformed role reference: " ^ text)
  | Error e -> Error e

let parse_event_text text =
  let text = String.trim text in
  match String.index_opt text '(' with
  | None -> Ok (text, [])
  | Some lp ->
      if text.[String.length text - 1] <> ')' then Error ("malformed event template: " ^ text)
      else
        let name = String.sub text 0 lp in
        let inner = String.sub text (lp + 1) (String.length text - lp - 2) in
        let parts =
          if String.trim inner = "" then []
          else List.map String.trim (String.split_on_char ',' inner)
        in
        Ok (name, List.map parse_pattern_token parts)

let parse_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else
    let allow, rest =
      if String.length line > 6 && String.sub line 0 6 = "allow " then (true, String.sub line 6 (String.length line - 6))
      else if String.length line > 5 && String.sub line 0 5 = "deny " then (false, String.sub line 5 (String.length line - 5))
      else (true, "")
    in
    if rest = "" then Error ("expected 'allow' or 'deny': " ^ line)
    else
      match String.index_opt rest ':' with
      | None -> Error ("missing ':' in rule: " ^ line)
      | Some colon -> (
          let role_text = String.trim (String.sub rest 0 colon) in
          let event_text = String.sub rest (colon + 1) (String.length rest - colon - 1) in
          let role =
            if role_text = "*" then Ok None
            else Result.map Option.some (parse_role_text role_text)
          in
          match role with
          | Error e -> Error e
          | Ok role -> (
              match parse_event_text event_text with
              | Error e -> Error e
              | Ok (event, pats) -> Ok (Some { allow; role; event; pats })))

let parse src =
  let lines = String.split_on_char '\n' src in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match parse_line line with
        | Ok None -> go acc rest
        | Ok (Some r) -> go (r :: acc) rest
        | Error e -> Error e)
  in
  go [] lines

let pp_rule ppf r =
  Format.fprintf ppf "%s %s : %s(%s)"
    (if r.allow then "allow" else "deny")
    (match r.role with
    | None -> "*"
    | Some rr -> Format.asprintf "%a" Oasis_rdl.Pretty.pp_role_ref rr)
    r.event
    (String.concat ", "
       (List.map
          (function
            | Event.Any -> "*"
            | Event.Var v -> v
            | Event.Lit l -> Value.to_string l)
          r.pats))

type visibility = {
  vis_allowed : Event.template list;
  vis_denied : Event.template list;
}

(* Match a rule's role reference against one credential; on success return
   the variable bindings from the credential's arguments. *)
let role_matches (rr : Ast.role_ref) (service, roles, args) =
  let service_ok =
    match rr.Ast.sref.Ast.service with
    | None -> true (* unqualified: match a role from any validated credential *)
    | Some s -> String.equal s service
  in
  if (not service_ok) || not (List.mem rr.Ast.role roles) then None
  else if rr.Ast.ref_args = [] then Some []
  else if List.length rr.Ast.ref_args <> List.length args then None
  else
    let rec go env = function
      | [] -> Some env
      | (Ast.Alit v, actual) :: rest -> if Value.equal v actual then go env rest else None
      | (Ast.Avar x, actual) :: rest -> (
          match List.assoc_opt x env with
          | Some bound -> if Value.equal bound actual then go env rest else None
          | None -> go ((x, actual) :: env) rest)
    in
    go [] (List.combine rr.Ast.ref_args args)

let ground_template rule env =
  let pats =
    List.map
      (function
        | Event.Var x as p -> (
            match List.assoc_opt x env with Some v -> Event.Lit v | None -> p)
        | p -> p)
      rule.pats
  in
  (* Any variable still free after binding acts as a wildcard. *)
  let pats = List.map (function Event.Var _ -> Event.Any | p -> p) pats in
  Event.template rule.event pats

let instantiate rules ~creds =
  let allowed = ref [] and denied = ref [] in
  List.iter
    (fun rule ->
      let envs =
        match rule.role with
        | None -> [ [] ]
        | Some rr -> List.filter_map (role_matches rr) creds
      in
      List.iter
        (fun env ->
          let tpl = ground_template rule env in
          if rule.allow then allowed := tpl :: !allowed else denied := tpl :: !denied)
        envs)
    rules;
  { vis_allowed = List.rev !allowed; vis_denied = List.rev !denied }

let intersect_pattern a b =
  match (a, b) with
  | Event.Any, p | p, Event.Any -> Some p
  | Event.Lit x, Event.Lit y -> if Value.equal x y then Some a else None
  | Event.Var _, p | p, Event.Var _ -> Some p

let intersect a b =
  if a.Event.tname <> "*" && b.Event.tname <> "*" && not (String.equal a.Event.tname b.Event.tname)
  then None
  else if
    Array.length a.Event.pats <> Array.length b.Event.pats
    && Array.length a.Event.pats <> 0 && Array.length b.Event.pats <> 0
  then None
  else
    let name = if String.equal a.Event.tname "*" then b.Event.tname else a.Event.tname in
    let base, other =
      if Array.length a.Event.pats >= Array.length b.Event.pats then (a.Event.pats, b.Event.pats)
      else (b.Event.pats, a.Event.pats)
    in
    let merged =
      Array.mapi
        (fun i p -> if i < Array.length other then intersect_pattern p other.(i) else Some p)
        base
    in
    if Array.exists Option.is_none merged then None
    else
      Some
        {
          Event.tname = name;
          tsource = (match a.Event.tsource with Some s -> Some s | None -> b.Event.tsource);
          pats = Array.map Option.get merged;
        }

(* Would a denied template cover every event the narrowed template can
   deliver?  Conservative: reject when they merely overlap. *)
let overlaps a b = intersect a b <> None

let filter vis requested =
  let candidates = List.filter_map (fun allowed -> intersect requested allowed) vis.vis_allowed in
  List.find_opt
    (fun narrowed -> not (List.exists (fun d -> overlaps narrowed d) vis.vis_denied))
    candidates
