examples/storage.mli:
