lib/events/globalview.mli: Bead
