lib/events/idl.ml: Array Event Format List Oasis_rdl Printf String
