module Net = Oasis_sim.Net
module Engine = Oasis_sim.Engine
module Stats = Oasis_sim.Stats
module Siphash = Oasis_util.Siphash

type t = {
  w_disk : Disk.t;
  w_file : string;
  w_key : Siphash.key;
  w_interval : float;
  w_flush_bytes : int;
  w_fsync_each : bool;
  mutable w_pending_bytes : int;
  mutable w_pending_records : int;
  mutable w_armed : bool;  (* a timer-tick flush is scheduled *)
  mutable w_on_durable : (unit -> unit) list;  (* reverse order *)
  mutable w_appended : int;
  mutable w_observer : (string -> unit) option;
      (* replication ship hook: sees every payload entering the log via
         [append] (the authoritative stream), but NOT via
         [follower_append] — records arriving from the stream must not
         re-enter it *)
}

let key_for file = Siphash.key_of_string ("oasis.wal:" ^ file)

let frame key payload =
  Printf.sprintf "%08x%s%s" (String.length payload) (Siphash.hash_hex key payload) payload

let frame_with ~key payload = frame (key_for key) payload

let hex_val = function
  | '0' .. '9' as c -> Char.code c - Char.code '0'
  | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
  | _ -> -1

(* Strict 8-hex length field; [-1] on any non-hex character (a torn or
   corrupted header must stop the scan, not parse as garbage). *)
let parse_len s off =
  let rec go i acc =
    if i = 8 then acc
    else
      let v = hex_val s.[off + i] in
      if v < 0 then -1 else go (i + 1) ((acc * 16) + v)
  in
  go 0 0

let decode_key key bytes =
  let total = String.length bytes in
  let rec go off acc =
    if off + 24 > total then List.rev acc
    else
      let len = parse_len bytes off in
      if len < 0 || off + 24 + len > total then List.rev acc
      else
        let sum = String.sub bytes (off + 8) 16 in
        let payload = String.sub bytes (off + 24) len in
        if String.equal (Siphash.hash_hex key payload) sum then
          go (off + 24 + len) (payload :: acc)
        else List.rev acc
  in
  go 0 []

let decode_with ~key bytes = decode_key (key_for key) bytes
let decode bytes = decode_with ~key:"" bytes

let stats t = Net.stats (Disk.net t.w_disk)

let create disk ~file ?(flush_interval = 0.05) ?(flush_bytes = 16384) ?(fsync_each = false) ()
    =
  let t =
    {
      w_disk = disk;
      w_file = file;
      w_key = key_for file;
      w_interval = flush_interval;
      w_flush_bytes = flush_bytes;
      w_fsync_each = fsync_each;
      w_pending_bytes = 0;
      w_pending_records = 0;
      w_armed = false;
      w_on_durable = [];
      w_appended = 0;
      w_observer = None;
    }
  in
  (* The device already tears/loses the buffered bytes on crash; the log's
     own job is to forget the commit bookkeeping for them. *)
  Net.on_crash (Disk.net disk) (Disk.host disk) (fun () ->
      t.w_pending_bytes <- 0;
      t.w_pending_records <- 0;
      t.w_on_durable <- []);
  t

let file t = t.w_file
let disk t = t.w_disk
let appended t = t.w_appended

let flush t =
  if t.w_pending_records > 0 then begin
    let records = t.w_pending_records in
    let callbacks = List.rev t.w_on_durable in
    t.w_pending_bytes <- 0;
    t.w_pending_records <- 0;
    t.w_on_durable <- [];
    Stats.observe (stats t) "store.fsync.batch" records;
    Disk.fsync t.w_disk ~file:t.w_file (fun () -> List.iter (fun k -> k ()) callbacks)
  end

let append_common t ?on_durable ~notify payload =
  let framed = frame t.w_key payload in
  Disk.append t.w_disk ~file:t.w_file framed;
  t.w_appended <- t.w_appended + 1;
  t.w_pending_bytes <- t.w_pending_bytes + String.length framed;
  t.w_pending_records <- t.w_pending_records + 1;
  (match on_durable with Some k -> t.w_on_durable <- k :: t.w_on_durable | None -> ());
  Stats.observe (stats t) "store.wal.append" (String.length framed);
  (if notify then match t.w_observer with Some obs -> obs payload | None -> ());
  if t.w_fsync_each || t.w_pending_bytes >= t.w_flush_bytes then flush t
  else if not t.w_armed then begin
    (* One-shot arming: the first uncommitted append starts the clock; the
       tick commits everything that accumulated behind it. *)
    t.w_armed <- true;
    Engine.schedule
      (Net.engine (Disk.net t.w_disk))
      ~tag:("s:" ^ Net.host_name (Disk.host t.w_disk))
      ~delay:t.w_interval
      (fun () ->
        t.w_armed <- false;
        flush t)
  end

let append t ?on_durable payload = append_common t ?on_durable ~notify:true payload
let follower_append t payload = append_common t ~notify:false payload
let on_append t obs = t.w_observer <- obs

let sync t k =
  if t.w_pending_records = 0 then k ()
  else begin
    t.w_on_durable <- k :: t.w_on_durable;
    flush t
  end

let truncate t =
  t.w_pending_bytes <- 0;
  t.w_pending_records <- 0;
  t.w_on_durable <- [];
  Disk.truncate t.w_disk ~file:t.w_file

let rewrite t records k =
  (* Buffered APPENDS may legally race a rewrite (the compacting callers
     re-include them in [records] via their own tail bookkeeping, and
     [Disk.write_atomic] preserves bytes appended while the replace is in
     flight), but buffered DURABILITY CALLBACKS may not: the rewrite
     forgets the commit bookkeeping, so a pending callback would be a
     client ack silently dropped.  Callers with commit traffic
     ([Replica]'s repair/adoption paths) must [sync] first; surface a
     violation instead of losing the ack. *)
  if t.w_on_durable <> [] then
    invalid_arg
      (Printf.sprintf "Wal.rewrite %s: %d durability callback(s) pending (sync first)"
         t.w_file
         (List.length t.w_on_durable));
  let b = Buffer.create 1024 in
  List.iter (fun r -> Buffer.add_string b (frame t.w_key r)) records;
  t.w_pending_bytes <- 0;
  t.w_pending_records <- 0;
  Disk.write_atomic t.w_disk ~file:t.w_file (Buffer.contents b) k

let recover t =
  let bytes = Disk.read t.w_disk ~file:t.w_file in
  let records = decode_key t.w_key bytes in
  let st = stats t in
  Stats.incr st "store.recover";
  Stats.add_bytes st "store.recover" (String.length bytes);
  Stats.observe (st : Stats.t) "store.recover.records" (List.length records);
  Stats.observe_latency st "store.recover" (Disk.scan_delay t.w_disk ~bytes:(String.length bytes));
  records
