(** Discrete-event simulation engine.

    The paper evaluated OASIS on a live testbed; we substitute a deterministic
    simulator (see DESIGN.md, Substitutions).  Virtual time is a float in
    seconds.  All services, networks and workloads schedule closures here.

    Every scheduling entry point accepts an optional [tag] — a short string
    classifying the pending event ([d:<host>] message delivery, [t:<host>]
    timer, [s:<host>] stable-storage flush, [f:] fault injection, [a:<name>]
    scenario action).  Tags cost nothing in normal runs; the model checker
    ({!Oasis_mc.Explore}) reads them to decide which pending events commute
    and to label counterexample schedules. *)

type t

type source = {
  src_now : unit -> float;
  src_wait : until:float option -> bool;
}
(** An external substrate driving the engine in {e real} time — the seam the
    pluggable backend plugs into ({!Oasis_backend.Backend_unix}).  [src_now]
    is a monotonic clock in seconds; [src_wait ~until] blocks until roughly
    the absolute instant [until] (in [src_now]'s timebase) or until external
    work (socket readiness) was dispatched, and returns [false] only when no
    external work can ever arrive again — which lets {!run} terminate.
    Without a source the engine is the deterministic discrete-event
    simulator: virtual time jumps from deadline to deadline. *)

val create : ?source:source -> unit -> t
(** [create ()] is the deterministic simulator, byte-identical to the
    pre-backend engine.  [create ~source ()] runs the same timer queue
    against the external clock and waiter. *)

val now : t -> float
(** Current time: virtual by default, [src_now ()] under a source.  This is
    the {e single} time source for the whole stack — traces, latency
    histograms and host clocks all read it — so wall-clock runs report
    wall-clock latencies with no further threading. *)

val real_time : t -> bool
(** Whether a source is installed (time is wall-clock, not virtual). *)

val schedule : t -> ?tag:string -> delay:float -> (unit -> unit) -> unit
(** Run the closure [delay] seconds from now.  Negative delays are clamped to
    zero (fire this instant, after currently-queued same-time events). *)

val schedule_at : t -> ?tag:string -> at:float -> (unit -> unit) -> unit

type timer
(** A cancellable scheduled action. *)

val timer : t -> ?tag:string -> delay:float -> (unit -> unit) -> timer
val cancel : timer -> unit
val cancelled : timer -> bool

val every :
  t -> ?tag:string -> period:float -> ?jitter:(unit -> float) -> (unit -> unit) -> timer
(** Periodic action; cancelling the returned timer stops the series.  If
    [jitter] is given, its value is added to each period; the effective
    delay is clamped to a positive floor ([period / 1000]) so a pathological
    jitter cannot re-arm the timer at the same instant forever. *)

val step : t -> bool
(** Execute the next pending event; [false] if the queue is empty.  With a
    scheduler installed (see {!set_scheduler}), the scheduler picks which
    pending event runs instead of the earliest-deadline default. *)

val run : ?until:float -> t -> unit
(** Drain the event queue, or stop once the next event lies beyond [until]
    (advancing [now] to [until] in that case; [now] is never moved
    backwards).  Under a source, the loop instead fires timers as the real
    clock passes their deadlines, waits in [src_wait] between deadlines
    (dispatching I/O), and returns when [until] is reached, {!stop} is
    called from a handler, or the queue is empty and the source reports no
    further external work. *)

val stop : t -> unit
(** Make a running real-time {!run} loop return after the current handler.
    No effect on the virtual-time loop (which always drains). *)

val pending : t -> int

val pending_tagged : t -> string -> int
(** Live (non-cancelled) pending events whose tag starts with the given
    prefix.  Used by tests asserting that crash/restart cycles do not leak
    timers: a component whose periodic timers are static has a constant
    tagged-pending count at quiescence. *)

(** {1 Single-step scheduling (model checking)} *)

type event = { ev_at : float; ev_seq : int; ev_tag : string }
(** A live pending entry: its deadline, its queue-lifetime-unique insertion
    sequence (stable across deterministic replays of the same prefix) and
    its tag. *)

type scheduler = event list -> int option
(** Consulted by {!step} with the live pending events in earliest-first
    order; returns the [ev_seq] to execute next, or [None] for the default
    (earliest) choice.  Executing an event whose deadline lies beyond the
    earliest one advances virtual time to that deadline; earlier events then
    run late, at the advanced clock — this is exactly the adversarial
    reordering the model checker explores. *)

val events : t -> event list
(** The live (non-cancelled) pending events, earliest first. *)

val set_scheduler : t -> scheduler option -> unit
(** Install or remove the single-step scheduler hook. *)
