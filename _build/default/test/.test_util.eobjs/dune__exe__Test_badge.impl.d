test/test_badge.ml: Alcotest Array List Oasis_badge Oasis_core Oasis_esec Oasis_events Oasis_rdl Oasis_sim Result
