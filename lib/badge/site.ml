module Value = Oasis_rdl.Value
module Net = Oasis_sim.Net
module Trace = Oasis_sim.Trace
module Broker = Oasis_events.Broker
module Service = Oasis_core.Service

type home_record = {
  mutable hr_user : string;
  mutable hr_site : string;  (* current site, as known at home *)
}

type t = {
  s_net : Net.t;
  s_registry : Service.registry;
  s_name : string;
  s_rooms : string list;
  s_host : Net.host;
  s_master : Broker.server;
  s_namer : Broker.server;
  s_home_badges : (int, home_record) Hashtbl.t;  (* badges homed here *)
  s_foreign : (int, string * string) Hashtbl.t;  (* badge -> (user, home site) *)
  s_on_site : (int, string) Hashtbl.t;  (* badge -> current room *)
  s_user_badge : (string, int) Hashtbl.t;  (* namer db: user -> badge *)
}

(* The per-simulation site directory: the paper's name server, through which
   sites resolve each other's Masters and Namers. *)
let directory : (string, t) Hashtbl.t = Hashtbl.create 8

let create net registry ~name ~rooms ?(heartbeat = 1.0) () =
  let host = Net.add_host net ("site." ^ name) in
  let master = Broker.create_server net host ~name:("Master@" ^ name) ~heartbeat () in
  let namer = Broker.create_server net host ~name:("Namer@" ^ name) ~heartbeat ~retention:1e9 () in
  let t =
    {
      s_net = net;
      s_registry = registry;
      s_name = name;
      s_rooms = rooms;
      s_host = host;
      s_master = master;
      s_namer = namer;
      s_home_badges = Hashtbl.create 32;
      s_foreign = Hashtbl.create 32;
      s_on_site = Hashtbl.create 32;
      s_user_badge = Hashtbl.create 32;
    }
  in
  Hashtbl.replace directory name t;
  t

let name t = t.s_name
let rooms t = t.s_rooms
let host t = t.s_host
let master t = t.s_master
let namer t = t.s_namer

let register_badge t ~badge ~user =
  Hashtbl.replace t.s_home_badges badge { hr_user = user; hr_site = t.s_name };
  Hashtbl.replace t.s_user_badge user badge;
  ignore (Broker.signal t.s_namer "OwnsBadge" [ Value.Str user; Value.Int badge ])

let lookup_badge t ~user = Hashtbl.find_opt t.s_user_badge user

let reassign_badge t ~user ~badge =
  Hashtbl.replace t.s_user_badge user badge;
  (match Hashtbl.find_opt t.s_home_badges badge with
  | Some hr -> hr.hr_user <- user
  | None -> Hashtbl.replace t.s_home_badges badge { hr_user = user; hr_site = t.s_name });
  ignore (Broker.signal t.s_namer "OwnsBadge" [ Value.Str user; Value.Int badge ])

let owner t ~badge =
  match Hashtbl.find_opt t.s_home_badges badge with
  | Some hr -> Some hr.hr_user
  | None -> Option.map fst (Hashtbl.find_opt t.s_foreign badge)

let on_site t = Hashtbl.fold (fun b _ acc -> b :: acc) t.s_on_site []

let home_location t ~badge =
  Option.map (fun hr -> hr.hr_site) (Hashtbl.find_opt t.s_home_badges badge)

(* Home-side handling of "badge b arrived at site s" (fig 6.2): record the
   new location, tell the previous site to discard its cache, answer with
   naming information, and signal the movement. *)
let badge_arrived_at_home t ~badge ~at_site =
  match Hashtbl.find_opt t.s_home_badges badge with
  | None -> Error "badge not homed here"
  | Some hr ->
      let old_site = hr.hr_site in
      if not (String.equal old_site at_site) then begin
        hr.hr_site <- at_site;
        (* Invalidate the cache at the previous holder (if not home itself). *)
        (match Hashtbl.find_opt directory old_site with
        | Some prev when not (String.equal old_site t.s_name) ->
            Net.send t.s_net ~category:"badge.purge" ~src:t.s_host ~dst:prev.s_host (fun () ->
                Hashtbl.remove prev.s_foreign badge;
                Hashtbl.remove prev.s_on_site badge)
        | _ ->
            Hashtbl.remove t.s_on_site badge);
        ignore
          (Broker.signal t.s_namer "MovedSite"
             [ Value.Int badge; Value.Str old_site; Value.Str at_site ])
      end;
      Ok hr.hr_user

let sight t ~badge ~home ~room =
  (* One trace per sensor sighting: the Master/Namer signals, the inter-site
     lookup (with its retries) and the home side's purge all join it. *)
  Trace.with_span (Net.trace t.s_net) "badge.sight" @@ fun () ->
  (* Raw sensor event, always signalled by the Master (fig 6.3). *)
  ignore (Broker.signal t.s_master "Seen" [ Value.Int badge; Value.Str room ]);
  let known = Hashtbl.mem t.s_home_badges badge || Hashtbl.mem t.s_foreign badge in
  Hashtbl.replace t.s_on_site badge room;
  if String.equal home t.s_name then begin
    (* A home badge returning (possibly from another site). *)
    match Hashtbl.find_opt t.s_home_badges badge with
    | Some hr when not (String.equal hr.hr_site t.s_name) ->
        ignore (badge_arrived_at_home t ~badge ~at_site:t.s_name)
    | _ -> ()
  end
  else if not known then begin
    (* Foreign, previously unknown badge: consult its home (fig 6.2). *)
    ignore (Broker.signal t.s_namer "BadgeArrived" [ Value.Int badge ]);
    match Hashtbl.find_opt directory home with
    | None -> ()
    | Some home_site ->
        (* Reliable: a lost lookup would leave the badge anonymous here
           until it moves again.  [badge_arrived_at_home] is idempotent
           for a repeated (badge, at_site) pair, so retries are safe. *)
        Net.rpc_retry t.s_net ~category:"badge.intersite" ~src:t.s_host ~dst:home_site.s_host
          (fun () -> badge_arrived_at_home home_site ~badge ~at_site:t.s_name)
          (function
            | Ok user ->
                Hashtbl.replace t.s_foreign badge (user, home);
                ignore (Broker.signal t.s_namer "OwnsBadge" [ Value.Str user; Value.Int badge ])
            | Error _ -> ())
  end
  (* Known badges need no inter-site traffic: the home purges our cached
     naming information when the badge moves on, so a cache hit means the
     home already believes the badge is here. *)
